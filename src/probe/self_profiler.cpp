#include "probe/self_profiler.hpp"

#include <string>

#include "telemetry/metrics_registry.hpp"

namespace hcsim::probe {

const char* SelfProfiler::name(Bucket b) {
  switch (b) {
    case Bucket::Dispatch: return "dispatch";
    case Bucket::Callback: return "callback";
    case Bucket::Solve: return "solve";
    case Bucket::Telemetry: return "telemetry";
    case Bucket::Sink: return "sink";
  }
  return "unknown";
}

void SelfProfiler::reset() { slots_.fill(Slot{}); }

void SelfProfiler::exportTo(telemetry::MetricsRegistry& reg) const {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const Bucket b = static_cast<Bucket>(i);
    reg.gauge(std::string("self.") + name(b) + "_s", slots_[i].seconds);
    reg.counter(std::string("self.") + name(b) + "_scopes",
                static_cast<double>(slots_[i].count));
  }
}

}  // namespace hcsim::probe
