#pragma once
// SelfProfiler — sampling-free, scoped wall-clock profiling of the
// simulator itself.
//
// Each instrumented region opens a Scope; the steady_clock delta is
// aggregated per subsystem bucket. There is no sampling thread and no
// signal handler, so the profiler works identically under sanitizers
// and in CI. Disabled (the default) every hook is a branch on a bool —
// no clock reads — preserving the bench_engine perf floor.
//
// Caveats (see docs/PROBE.md): timings are *inclusive* — the dispatch
// bucket does not include model callbacks (they are scoped separately),
// but a solve triggered from inside a callback is charged to both
// `solve` and `callback`; buckets therefore do not sum to wall time.
// Values are wall-clock and thus NOT deterministic: sweep trials that
// collect `self.*` bypass the trial cache, and no identity gate ever
// compares them.

#include <array>
#include <chrono>
#include <cstdint>

namespace hcsim::telemetry {
class MetricsRegistry;
}

namespace hcsim::probe {

class SelfProfiler {
 public:
  enum class Bucket : std::size_t {
    Dispatch = 0,   ///< event-queue maintenance in Simulator::dispatchRoot
    Callback = 1,   ///< model/event callbacks (`fn()` bodies)
    Solve = 2,      ///< FlowNetwork max-min rate computation
    Telemetry = 3,  ///< span charging / metric export
    Sink = 4,       ///< JSONL/CSV/table rendering
  };
  static constexpr std::size_t kBuckets = 5;

  static const char* name(Bucket b);

  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(Bucket b, double seconds) {
    auto& s = slots_[static_cast<std::size_t>(b)];
    s.seconds += seconds;
    ++s.count;
  }

  double seconds(Bucket b) const { return slots_[static_cast<std::size_t>(b)].seconds; }
  std::uint64_t count(Bucket b) const { return slots_[static_cast<std::size_t>(b)].count; }
  void reset();

  /// `self.<bucket>_s` gauges plus `self.<bucket>_scopes` counters.
  void exportTo(telemetry::MetricsRegistry& reg) const;

  /// RAII timing scope. A null or disabled profiler reduces the whole
  /// scope to two branches — no clock reads.
  class Scope {
   public:
    Scope(SelfProfiler* p, Bucket b) : p_(p && p->enabled() ? p : nullptr), b_(b) {
      if (p_) start_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (p_) {
        const auto end = std::chrono::steady_clock::now();
        p_->add(b_, std::chrono::duration<double>(end - start_).count());
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SelfProfiler* p_;
    Bucket b_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  struct Slot {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  bool enabled_ = false;
  std::array<Slot, kBuckets> slots_{};
};

}  // namespace hcsim::probe
