#pragma once
// ZipfSampler — Zipf(theta)-distributed object popularity for the
// open-loop generator: object k (0-based) is drawn with probability
// proportional to 1/(k+1)^theta. theta = 0 degenerates to uniform;
// theta around 0.99 is the classic YCSB/web-cache skew. The CDF is
// precomputed once, so sampling is a binary search — deterministic
// given the caller's Rng stream.

#include <cstddef>
#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace hcsim::workload {

class ZipfSampler {
 public:
  ZipfSampler(std::size_t objects, double theta) {
    cdf_.reserve(objects);
    double total = 0.0;
    for (std::size_t k = 0; k < objects; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t objects() const { return cdf_.size(); }

  /// Draw an object index in [0, objects).
  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size();
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid - 1] <= u) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;  ///< cumulative popularity, last entry == 1
};

}  // namespace hcsim::workload
