#include "telemetry/metrics_registry.hpp"

#include <sstream>

namespace hcsim::telemetry {

Histogram& MetricsRegistry::histogram(const std::string& name, double minValue, double maxValue,
                                      std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(minValue, maxValue, bins)).first->second;
}

const Histogram* MetricsRegistry::findHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

double MetricsRegistry::counterOr(const std::string& name, double fallback) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? fallback : it->second;
}

double MetricsRegistry::gaugeOr(const std::string& name, double fallback) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

JsonValue MetricsRegistry::toJson() const {
  JsonObject counters;
  for (const auto& [name, v] : counters_) counters[name] = v;
  JsonObject gauges;
  for (const auto& [name, v] : gauges_) gauges[name] = v;
  JsonObject hists;
  for (const auto& [name, h] : histograms_) {
    JsonObject o;
    o["count"] = static_cast<double>(h.total());
    o["p50"] = h.quantile(0.5);
    o["p90"] = h.quantile(0.9);
    o["p99"] = h.quantile(0.99);
    hists[name] = JsonValue(std::move(o));
  }
  JsonObject root;
  root["counters"] = JsonValue(std::move(counters));
  root["gauges"] = JsonValue(std::move(gauges));
  root["histograms"] = JsonValue(std::move(hists));
  return JsonValue(std::move(root));
}

std::string MetricsRegistry::renderTable() const {
  std::ostringstream os;
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : counters_) os << "  " << name << " = " << v << "\n";
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [name, v] : gauges_) os << "  " << name << " = " << v << "\n";
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << name << ": n=" << h.total() << " p50=" << h.quantile(0.5)
         << " p90=" << h.quantile(0.9) << " p99=" << h.quantile(0.99) << "\n";
    }
  }
  return os.str();
}

}  // namespace hcsim::telemetry
