#pragma once
// OpenLoopSource — arrival-rate clients, the first step toward the
// "highly configurable storage for a million users" north star: each of
// `clients` independent ranks issues requests at Poisson arrivals of
// `ratePerClientHz` for `horizonSec`, targeting objects drawn from a
// Zipf(theta) popularity distribution (hot objects dominate, as in any
// shared-service trace). Unlike the closed-loop benchmarks, arrivals do
// NOT wait for completions — when the storage degrades (chaos
// fail-slow), queues build and the goodput timeline shows the dip and
// the recovery, which is what the openloop+chaos composition test pins.

#include <memory>
#include <vector>

#include "util/random.hpp"
#include "workload/workload_source.hpp"
#include "workload/zipf.hpp"

namespace hcsim::workload {

struct OpenLoopConfig {
  std::size_t clients = 8;         ///< independent op streams (flow classes)
  std::size_t clientsPerNode = 4;  ///< maps client -> compute node
  double ratePerClientHz = 50.0;   ///< mean Poisson arrival rate
  Seconds horizonSec = 10.0;       ///< arrivals stop after this
  std::size_t objects = 1024;      ///< object-store population
  double zipfTheta = 0.99;         ///< 0 = uniform popularity
  Bytes objectBytes = 4 * units::MiB;
  Bytes requestBytes = 128 * units::KiB;
  double readFraction = 0.9;       ///< rest are writes
  std::uint64_t seed = 0x09e71007ull;
  /// Goodput timeline sampling interval (0 = horizon/20).
  Seconds sampleIntervalSec = 0.0;

  /// Flow-class aggregation (hcsim::scale): each of the `clients` ranks
  /// stands for this many colocated identical clients issuing in
  /// lockstep — requests carry `members = clientsPerRank`, so
  /// clients * clientsPerRank clients are simulated with per-class
  /// cost. 1 = legacy per-client streams, byte-identically.
  std::size_t clientsPerRank = 1;
  /// All ranks draw from ONE rng stream (the raw seed, no per-rank
  /// perturbation): every rank issues the identical arrival sequence.
  /// This is what makes class-partition invariance exact — splitting a
  /// class of 2N into two classes of N leaves every draw unchanged.
  bool sharedStream = false;
  /// Lognormal sigma of deterministic per-rank demand multipliers
  /// (scale::demandMultipliers): rank i's arrival rate becomes
  /// ratePerClientHz * mult[i], mean preserved. 0 = homogeneous.
  double demandSigma = 0.0;

  std::size_t nodes() const {
    return (clients + clientsPerNode - 1) / std::max<std::size_t>(1, clientsPerNode);
  }
  std::size_t totalClients() const { return clients * std::max<std::size_t>(1, clientsPerRank); }
};

class OpenLoopSource : public WorkloadSource {
 public:
  explicit OpenLoopSource(const OpenLoopConfig& cfg) : cfg_(cfg) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;

 private:
  struct RankState {
    ClientId client{};
    Seconds clock = 0.0;   ///< cumulative arrival time
    double rateHz = 0.0;   ///< this rank's arrival rate (demand multiplier applied)
    Rng rng;
  };

  std::string name_ = "openloop";
  OpenLoopConfig cfg_;
  std::vector<RankState> ranks_;
  std::unique_ptr<ZipfSampler> zipf_;
};

}  // namespace hcsim::workload
