#include "replay/trace_replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "dlio/dlio_runner.hpp"
#include "trace/trace_import.hpp"

namespace hcsim {
namespace {

TraceLog syntheticTrace(std::size_t pids, std::size_t readsPerPid, Bytes bytes) {
  TraceLog log;
  for (std::uint32_t pid = 0; pid < pids; ++pid) {
    Seconds t = 0.0;
    for (std::size_t i = 0; i < readsPerPid; ++i) {
      log.recordRead(pid, 1, t, 0.01, bytes);
      t += 0.01;
      log.recordCompute(pid, 0, t, 0.05);
      t += 0.05;
    }
  }
  return log;
}

TEST(TraceReplay, ValidatesConfig) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  ReplayConfig cfg;
  cfg.pidsPerNode = 0;
  EXPECT_THROW(replayer.replay(TraceLog{}, cfg), std::invalid_argument);
  cfg = ReplayConfig{};
  cfg.transferSize = 0;
  EXPECT_THROW(replayer.replay(TraceLog{}, cfg), std::invalid_argument);
}

TEST(TraceReplay, EmptyTraceIsEmptyResult) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  const ReplayResult r = replayer.replay(TraceLog{});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_DOUBLE_EQ(r.ioSlowdown(), 0.0);
}

TEST(TraceReplay, ReplaysAllEventsWithSameBytes) {
  TestBench bench(Machine::wombat(), 2);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  const TraceLog input = syntheticTrace(4, 8, units::MiB);
  const ReplayResult r = replayer.replay(input);
  EXPECT_EQ(r.trace.count(TraceEventKind::Read), input.count(TraceEventKind::Read));
  EXPECT_EQ(r.trace.count(TraceEventKind::Compute), input.count(TraceEventKind::Compute));
  EXPECT_EQ(r.trace.totalBytes(TraceEventKind::Read),
            input.totalBytes(TraceEventKind::Read));
  EXPECT_GT(r.replayedIoTime, 0.0);
}

TEST(TraceReplay, SkipComputeCompressesTimeline) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  const TraceLog input = syntheticTrace(2, 8, units::MiB);

  ReplayConfig withCompute;
  const ReplayResult a = replayer.replay(input, withCompute);
  ReplayConfig noCompute;
  noCompute.replayCompute = false;
  const ReplayResult b = replayer.replay(input, noCompute);

  const auto spanOf = [](const TraceLog& t) {
    const auto [lo, hi] = t.timeSpan();
    return hi - lo;
  };
  EXPECT_LT(spanOf(b.trace), spanOf(a.trace));
  EXPECT_EQ(b.trace.count(TraceEventKind::Compute), 0u);
}

TEST(TraceReplay, SlowerTargetYieldsHigherSlowdown) {
  // Capture a ResNet-50 run on GPFS, then replay it on TCP-attached VAST
  // (slower) and on GPFS again (similar): the slowdown factors order.
  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.workload.samples = 32;
  cfg.nodes = 1;
  cfg.procsPerNode = 2;
  const DlioResult captured = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);

  Environment slow = makeEnvironment(Site::Lassen, StorageKind::Vast, 1);
  TraceReplayer slowReplayer(*slow.bench, *slow.fs);
  ReplayConfig rc;
  rc.pidsPerNode = 2;
  rc.transferSize = 150 * units::KB;
  const ReplayResult onVast = slowReplayer.replay(captured.trace, rc);

  Environment same = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  TraceReplayer sameReplayer(*same.bench, *same.fs);
  const ReplayResult onGpfs = sameReplayer.replay(captured.trace, rc);

  EXPECT_GT(onVast.ioSlowdown(), onGpfs.ioSlowdown());
  EXPECT_GT(onVast.ioSlowdown(), 1.5);  // TCP VAST clearly slower
}

TEST(TraceReplay, PerPidOrderingPreserved) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  // Two reads per pid; the replayed second read must start after the
  // first ends (sequential per-process semantics).
  TraceLog input;
  input.recordRead(0, 1, 0.0, 0.1, units::MiB, "first");
  input.recordRead(0, 1, 0.2, 0.1, units::MiB, "second");
  const ReplayResult r = replayer.replay(input);
  ASSERT_EQ(r.trace.size(), 2u);
  const TraceEvent* first = nullptr;
  const TraceEvent* second = nullptr;
  for (const auto& e : r.trace.events()) {
    if (e.name == "first") first = &e;
    if (e.name == "second") second = &e;
  }
  ASSERT_TRUE(first && second);
  EXPECT_GE(second->start, first->end() - 1e-12);
}

TEST(TraceReplay, SkipsAndCountsMalformedRecords) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  TraceLog input;
  input.recordRead(0, 1, 0.0, 0.01, units::MiB, "good");
  input.recordRead(0, 1, 0.02, 0.01, 0, "empty");       // zero-byte I/O
  input.recordCompute(0, 0, 0.04, -0.05, "backwards");  // negative span
  input.recordRead(0, 1, 0.1, 0.01, units::MiB, "good2");
  const ReplayResult r = replayer.replay(input);
  EXPECT_EQ(r.skippedOps, 2u);
  EXPECT_EQ(r.trace.count(TraceEventKind::Read), 2u);
}

TEST(TraceReplay, TruncatedTraceFileIsSalvagedAndReplayable) {
  // A killed run truncates the chrome-trace file mid-line; the importer
  // must salvage the complete lines and the replay must still run.
  std::ostringstream doc;
  doc << "{\"traceEvents\":[\n";
  for (int i = 0; i < 20; ++i) {
    doc << R"({"ph":"X","cat":"read","name":"r)" << i << R"(","pid":)" << (i % 2)
        << R"(,"tid":0,"ts":)" << i * 2000 << R"(,"dur":1000,"args":{"bytes":1048576}},)" << "\n";
  }
  doc << "]}\n";
  const std::string full = doc.str();
  const std::string truncated = full.substr(0, full.size() * 6 / 10);
  const std::string path = std::string(::testing::TempDir()) + "truncated_trace.json";
  {
    std::ofstream f(path, std::ios::trunc);
    f << truncated;
  }

  TraceLog imported;
  TraceImportStats stats;
  ASSERT_TRUE(readChromeTrace(path, imported, &stats));
  EXPECT_GT(stats.imported, 0u);
  EXPECT_LT(stats.imported, 20u);  // the cut really dropped events

  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  TraceReplayer replayer(bench, *fs);
  ReplayConfig cfg;
  cfg.pidsPerNode = 2;
  const ReplayResult r = replayer.replay(imported, cfg);
  EXPECT_EQ(r.trace.count(TraceEventKind::Read), stats.imported);
  EXPECT_GT(r.replayedIoTime, 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcsim
