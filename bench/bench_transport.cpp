// Transport-subsystem throughput: drive IOR trials through the DAOS
// backend — the model that routes every byte through hcsim::transport —
// across the endpoint classes the subsystem models (single-stream TCP,
// nconnect-8 TCP, RDMA, and an RDMA incast that stresses the send-queue
// and doorbell paths), and report both the simulated goodput and the
// wall-clock rate of transport postings (ops posted per wall second) —
// the number the check.sh perf gate floors against BENCH_transport.json.
//
//   bench_transport                       human-readable table
//   bench_transport --hcsim_json OUT      write machine-readable results
//   bench_transport --hcsim_compare REF   fail (exit 1) when any
//       [--hcsim_max_regress 0.30]        scenario's wall ops/sec drops
//                                         below REF * (1 - tolerance)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

struct ScenarioResult {
  std::string scenario;
  sweep::TrialMetrics metrics;
  double wallSec = 0.0;
  double wallOpsPerSec() const {
    return wallSec > 0.0 ? metrics.transportOps / wallSec : 0.0;
  }
};

/// The endpoint classes the transport layer distinguishes, all on the
/// DAOS pool (whose 48 GB/s of targets leave the endpoint binding).
std::vector<std::pair<std::string, std::string>> benchSpecs() {
  return {
      {"tcp-single", R"({"site":"lassen","storage":"daos",
        "ior":{"access":"seq-read","nodes":2,"procsPerNode":8,
               "segments":4000,"repetitions":1},
        "transport":{"kind":"tcp"}})"},
      {"tcp-nconnect8", R"({"site":"lassen","storage":"daos",
        "ior":{"access":"seq-read","nodes":2,"procsPerNode":8,
               "segments":4000,"repetitions":1},
        "transport":{"kind":"tcp","lanes":8}})"},
      {"rdma", R"({"site":"lassen","storage":"daos",
        "ior":{"access":"seq-read","nodes":2,"procsPerNode":8,
               "segments":4000,"repetitions":1},
        "transport":{"kind":"rdma"}})"},
      {"rdma-incast", R"({"site":"lassen","storage":"daos",
        "ior":{"access":"seq-write","nodes":4,"procsPerNode":16,
               "segments":400,"repetitions":1},
        "transport":{"kind":"rdma"}})"},
  };
}

ScenarioResult runOne(const std::string& scenario, const std::string& specText) {
  JsonValue cfg;
  if (!parseJson(specText, cfg)) {
    std::cerr << "bench_transport: internal spec for '" << scenario << "' does not parse\n";
    std::exit(2);
  }
  // Each measurement amortizes INNER identical trials (flow-class
  // aggregation makes a single trial finish in well under a millisecond,
  // too short for a stable rate), and best-of-3 keeps the fastest
  // measurement — the closest to the machine's true capability (the same
  // trial simulates identical events every time).
  constexpr int kInner = 10;
  ScenarioResult r;
  r.scenario = scenario;
  for (int rep = 0; rep < 3; ++rep) {
    sweep::TrialMetrics m;
    const auto t0 = std::chrono::steady_clock::now();
    for (int inner = 0; inner < kInner; ++inner) m = sweep::runTrial("ior", cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() / kInner;
    if (!m.ok) {
      std::cerr << "bench_transport: '" << scenario << "' failed: " << m.error << "\n";
      std::exit(2);
    }
    if (!m.hasTransport || m.transportOps <= 0.0) {
      std::cerr << "bench_transport: '" << scenario << "' posted nothing on the fabric\n";
      std::exit(2);
    }
    if (rep == 0 || wall < r.wallSec) {
      r.metrics = std::move(m);
      r.wallSec = wall;
    }
  }
  return r;
}

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "bench_transport: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int compareAgainst(const std::vector<ScenarioResult>& results, const std::string& refPath,
                   double maxRegress) {
  JsonValue ref;
  if (!parseJson(readFileOrDie(refPath), ref)) {
    std::cerr << "bench_transport: " << refPath << " is not valid JSON\n";
    return 2;
  }
  const JsonValue* scens = ref.find("scenarios");
  if (scens == nullptr || !scens->isObject()) {
    std::cerr << "bench_transport: " << refPath << " has no \"scenarios\" object\n";
    return 2;
  }
  int failures = 0;
  for (const ScenarioResult& r : results) {
    const JsonValue* entry = scens->find(r.scenario);
    const JsonValue* rate = entry != nullptr ? entry->find("wall_ops_per_sec") : nullptr;
    if (rate == nullptr || rate->number() == nullptr) {
      std::cout << "perf skip " << r.scenario << ": no reference rate\n";
      continue;
    }
    const double floor = *rate->number() * (1.0 - maxRegress);
    if (r.wallOpsPerSec() < floor) {
      std::cerr << "PERF FAIL " << r.scenario << ": wall_ops_per_sec " << r.wallOpsPerSec()
                << " < floor " << floor << " (ref " << *rate->number() << ", tolerance "
                << maxRegress * 100.0 << "%)\n";
      ++failures;
    } else {
      std::cout << "perf ok " << r.scenario << ": wall_ops_per_sec " << r.wallOpsPerSec()
                << " vs ref " << *rate->number() << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

void writeJsonOut(const std::vector<ScenarioResult>& results, const std::string& path) {
  JsonObject scens;
  for (const ScenarioResult& r : results) {
    JsonObject s;
    s["transport_ops"] = r.metrics.transportOps;
    s["transport_bytes"] = r.metrics.transportBytes;
    s["sim_elapsed_sec"] = r.metrics.elapsedSec;
    s["goodput_gbs"] = r.metrics.meanGBs;
    s["wall_ops_per_sec"] = r.wallOpsPerSec();
    scens[r.scenario] = JsonValue(std::move(s));
  }
  JsonObject doc;
  doc["schema"] = std::string("hcsim-bench-transport-v1");
  doc["scenarios"] = JsonValue(std::move(scens));
  std::ofstream f(path, std::ios::trunc);
  f << writeJson(JsonValue(std::move(doc)), 2) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut;
  std::string compareRef;
  double maxRegress = 0.30;
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag, std::string& dst) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::cerr << "bench_transport: " << flag << " needs a value\n";
        std::exit(2);
      }
      dst = argv[++i];
      return true;
    };
    std::string tol;
    if (takeValue("--hcsim_json", jsonOut)) {
    } else if (takeValue("--hcsim_compare", compareRef)) {
    } else if (takeValue("--hcsim_max_regress", tol)) {
      maxRegress = std::stod(tol);
    } else {
      std::cerr << "bench_transport: unknown argument " << argv[i] << "\n";
      return 2;
    }
  }

  std::vector<ScenarioResult> results;
  for (auto& [scenario, specText] : benchSpecs()) {
    results.push_back(runOne(scenario, specText));
  }

  ResultTable t("transport endpoint classes on daos@lassen (IOR trials)");
  t.setHeader({"scenario", "posted ops", "GiB", "sim s", "goodput GB/s", "wall ms",
               "wall kops/s"});
  for (const ScenarioResult& r : results) {
    char ops[32], gib[32], sim[32], gbs[32], wall[32], rate[32];
    std::snprintf(ops, sizeof ops, "%.0f", r.metrics.transportOps);
    std::snprintf(gib, sizeof gib, "%.2f",
                  r.metrics.transportBytes / (1024.0 * 1024.0 * 1024.0));
    std::snprintf(sim, sizeof sim, "%.2f", r.metrics.elapsedSec);
    std::snprintf(gbs, sizeof gbs, "%.3f", r.metrics.meanGBs);
    std::snprintf(wall, sizeof wall, "%.1f", r.wallSec * 1e3);
    std::snprintf(rate, sizeof rate, "%.1f", r.wallOpsPerSec() / 1e3);
    t.addRow({r.scenario, ops, gib, sim, gbs, wall, rate});
  }
  std::printf("%s", t.toString().c_str());

  if (!jsonOut.empty()) writeJsonOut(results, jsonOut);
  if (!compareRef.empty()) return compareAgainst(results, compareRef, maxRegress);
  return 0;
}
