#include "device/hdd_raid.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsim {

HddSpec HddSpec::nearlineSas() {
  HddSpec s;
  s.name = "NL-SAS-HDD";
  s.streamBandwidth = units::gbs(0.25);  // ~250 MB/s outer tracks
  s.seekTime = units::msec(8);           // avg seek + half-rotation @7.2k
  return s;
}

HddRaid::HddRaid(HddSpec spec, std::size_t spindles, double parityOverhead)
    : spec_(std::move(spec)), spindles_(spindles), parityOverhead_(parityOverhead) {
  if (spindles_ == 0) throw std::invalid_argument("HddRaid: spindles must be > 0");
  if (parityOverhead_ < 0.0 || parityOverhead_ >= 1.0) {
    throw std::invalid_argument("HddRaid: parityOverhead must be in [0,1)");
  }
}

Bandwidth HddRaid::effectiveBandwidth(AccessPattern pattern, Bytes requestSize) const {
  const double req = std::max<double>(1.0, static_cast<double>(requestSize));
  const Bandwidth stream = spec_.streamBandwidth;
  Bandwidth perSpindle;
  if (isSequential(pattern)) {
    perSpindle = stream;
  } else {
    perSpindle = req / (spec_.seekTime + req / stream);
  }
  double total = perSpindle * static_cast<double>(spindles_);
  if (!isRead(pattern)) total *= (1.0 - parityOverhead_);
  return total;
}

Seconds HddRaid::requestLatency(AccessPattern pattern) const {
  return isSequential(pattern) ? spec_.seekTime * 0.05 : spec_.seekTime;
}

}  // namespace hcsim
