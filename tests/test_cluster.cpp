#include "cluster/deployments.hpp"
#include "cluster/machine.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(Machine, TableOneValues) {
  const Machine lassen = Machine::lassen();
  EXPECT_EQ(lassen.nodes, 795u);
  EXPECT_EQ(lassen.coresPerNode, 44u);
  EXPECT_EQ(lassen.gpusPerNode, 4u);
  EXPECT_EQ(lassen.ramGiB, 256u);
  EXPECT_EQ(lassen.arch, "IBM Power9");
  EXPECT_EQ(lassen.network, "IB EDR");

  const Machine ruby = Machine::ruby();
  EXPECT_EQ(ruby.nodes, 1512u);
  EXPECT_EQ(ruby.coresPerNode, 56u);
  EXPECT_EQ(ruby.network, "Omni-Path");

  const Machine quartz = Machine::quartz();
  EXPECT_EQ(quartz.nodes, 3018u);
  EXPECT_EQ(quartz.coresPerNode, 36u);
  EXPECT_EQ(quartz.ramGiB, 128u);

  const Machine wombat = Machine::wombat();
  EXPECT_EQ(wombat.nodes, 8u);
  EXPECT_EQ(wombat.coresPerNode, 48u);
  EXPECT_EQ(wombat.gpusPerNode, 2u);
  EXPECT_EQ(wombat.arch, "ARM Fujitsu A64fx");
}

TEST(Machine, FullNodeProcsMatchPaperRuns) {
  // "44 processes per node on Lassen and 48 processes per node on Wombat".
  EXPECT_EQ(Machine::lassen().fullNodeProcs(), 44u);
  EXPECT_EQ(Machine::wombat().fullNodeProcs(), 48u);
}

TEST(Deployments, GatewaysMatchSectionIvB) {
  const VastConfig lassen = vastOnLassen();
  EXPECT_EQ(lassen.gateway.nodes, 1u);          // single gateway node
  EXPECT_EQ(lassen.gateway.linksPerNode, 2u);   // 2x100Gb
  EXPECT_DOUBLE_EQ(lassen.gateway.linkBandwidth, units::gbps(100));

  const VastConfig ruby = vastOnRuby();
  EXPECT_EQ(ruby.gateway.nodes, 8u);  // 1x40Gb on eight gateways
  EXPECT_EQ(ruby.gateway.linksPerNode, 1u);
  EXPECT_DOUBLE_EQ(ruby.gateway.linkBandwidth, units::gbps(40));

  const VastConfig quartz = vastOnQuartz();
  EXPECT_EQ(quartz.gateway.nodes, 32u);  // 2x1Gb on 32 gateways
  EXPECT_EQ(quartz.gateway.linksPerNode, 2u);
  EXPECT_DOUBLE_EQ(quartz.gateway.linkBandwidth, units::gbps(1));

  EXPECT_FALSE(vastOnWombat().gateway.present);  // RDMA, no gateway
}

TEST(Deployments, ConfigsValidate) {
  vastOnLassen().validate();
  vastOnRuby().validate();
  vastOnQuartz().validate();
  vastOnWombat().validate();
  gpfsOnLassen().validate();
  lustreOnQuartz().validate();
  lustreOnRuby().validate();
  nvmeOnWombat().validate();
}

TEST(TestBench, WiresRequestedNodes) {
  TestBench bench(Machine::lassen(), 16);
  EXPECT_EQ(bench.nodesUsed(), 16u);
  EXPECT_EQ(bench.clientNics().size(), 16u);
  EXPECT_EQ(bench.machine().name, "Lassen");
  // NIC links exist in the topology with the machine's injection rate.
  const Link& nic = bench.topo().network().link(bench.clientNics().front());
  EXPECT_DOUBLE_EQ(nic.capacity, Machine::lassen().nodeInjection);
}

TEST(TestBench, ClampsToMachineSize) {
  TestBench bench(Machine::wombat(), 100);
  EXPECT_EQ(bench.nodesUsed(), 8u);  // Wombat only has 8 nodes
  TestBench zero(Machine::wombat(), 0);
  EXPECT_EQ(zero.nodesUsed(), 1u);
}

TEST(TestBench, AttachesAllStorageKinds) {
  TestBench bench(Machine::lassen(), 2);
  auto vast = bench.attachVast(vastOnLassen());
  auto gpfs = bench.attachGpfs(gpfsOnLassen());
  EXPECT_EQ(vast->name(), "VAST@Lassen");
  EXPECT_EQ(gpfs->name(), "GPFS@Lassen");

  TestBench wombat(Machine::wombat(), 2);
  auto nvme = wombat.attachNvme(nvmeOnWombat());
  EXPECT_EQ(nvme->name(), "NVMe@Wombat");

  TestBench quartz(Machine::quartz(), 2);
  auto lustre = quartz.attachLustre(lustreOnQuartz());
  EXPECT_EQ(lustre->name(), "Lustre@Quartz");
}

TEST(TestBench, TwoModelsCoexistOnOneBench) {
  // The paper compares fs on the same machine; both models must wire
  // into one topology without name clashes.
  TestBench bench(Machine::lassen(), 2);
  auto vast = bench.attachVast(vastOnLassen());
  auto gpfs = bench.attachGpfs(gpfsOnLassen());
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  vast->beginPhase(ph);
  gpfs->beginPhase(ph);
  SimTime endV = 0, endG = 0;
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  vast->submit(req, [&](const IoResult& r) { endV = r.endTime; });
  gpfs->submit(req, [&](const IoResult& r) { endG = r.endTime; });
  bench.sim().run();
  EXPECT_GT(endV, 0.0);
  EXPECT_GT(endG, 0.0);
}

}  // namespace
}  // namespace hcsim
