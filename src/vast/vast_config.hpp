#pragma once
// VastConfig — every knob of the "highly configurable" VAST DataStore
// model: hardware inventory (CNodes, DBoxes, SCM/QLC SSDs), internal
// fabric, data-reduction behaviour, and — decisively for the paper —
// the NFS frontend deployment (TCP through gateway nodes vs RDMA with
// nconnect and multipathing).

#include <cstddef>
#include <string>

#include "device/ssd.hpp"
#include "util/units.hpp"

namespace hcsim {

/// How compute nodes mount the VAST NFS export.
enum class NfsTransport {
  Tcp,   ///< NFS/TCP through Ethernet gateway nodes (LC clusters)
  Rdma,  ///< NFS/RDMA (RoCE), optionally nconnect + multipath (Wombat)
};

const char* toString(NfsTransport t);

/// Ethernet gateway pool between the cluster fabric and VAST's network.
/// On Lassen: 1 node x 2x100Gb; Ruby: 8 x 1x40Gb; Quartz: 32 x 2x1Gb.
struct GatewaySpec {
  bool present = false;
  std::size_t nodes = 1;
  std::size_t linksPerNode = 1;
  Bandwidth linkBandwidth = 0.0;
  Seconds latency = 0.0;

  std::size_t totalLinks() const { return nodes * linksPerNode; }
  Bandwidth totalBandwidth() const { return static_cast<double>(totalLinks()) * linkBandwidth; }
};

struct VastConfig {
  std::string name = "VAST";

  // ---- Hardware inventory (paper §III-A, §IV-B) ----
  std::size_t cnodes = 16;
  std::size_t dboxes = 5;        ///< HA enclosures; 2 DNodes each
  std::size_t dnodesPerBox = 2;
  std::size_t qlcPerBox = 22;
  std::size_t scmPerBox = 6;
  SsdSpec qlcSpec = SsdSpec::qlc();
  SsdSpec scmSpec = SsdSpec::scm();
  Bytes qlcCapacityEach = 47 * units::TB;  ///< sized so LC totals ~5.2 PB
  Bytes scmCapacityEach = units::TB * 16 / 10;

  // ---- CNode processing ceilings ----
  /// Per-CNode read-path throughput (NFS serving + erasure decode).
  Bandwidth cnodeReadBandwidth = units::gbs(3.0);
  /// Per-CNode write-path throughput: lower than read because writes do
  /// similarity-based data arrangement + compression on the CNode
  /// ("during write operations the CNodes are burdened with similarity-
  /// based data arrangement and compression", paper §V-B).
  Bandwidth cnodeWriteBandwidth = units::gbs(1.0);

  // ---- CBox <-> DBox NVMe-oF fabric ----
  std::size_t fabricLinksPerBox = 2;
  Bandwidth fabricLinkBandwidth = units::gbps(100);  ///< EDR IB on LC
  Seconds fabricLatency = units::usec(5);

  // ---- Data path behaviour ----
  /// Fraction of client bytes removed by similarity reduction +
  /// compression before hitting QLC flash.
  double dataReductionRatio = 0.35;
  /// DNode-side read cache (NVRAM/SCM in front of QLC), total bytes.
  Bytes dnodeCacheBytes = 0;
  /// Fallback read-cache hit ratio when the phase working set is unknown.
  double defaultReadCacheHitRatio = 0.0;

  // ---- NFS frontend deployment (the paper's main variable) ----
  NfsTransport transport = NfsTransport::Tcp;
  std::size_t nconnect = 1;  ///< NFS sessions per client mount
  bool multipath = false;    ///< spread sessions over parallel paths
  GatewaySpec gateway;       ///< TCP deployments hop through this pool
  /// Single NFS/TCP session ceiling — the "single TCP link" that throttles
  /// VAST on Lassen to ~1 GB/s per node.
  Bandwidth tcpSessionCap = units::gbs(1.15);
  /// Per RDMA session (QP) ceiling; nconnect multiplies sessions.
  Bandwidth rdmaSessionCap = units::gbs(2.5);
  /// Optional per-gateway-node TCP forwarding ceiling (processing or a
  /// single forwarding stream). The default is high enough that the
  /// gateway's *physical* Ethernet binds instead: on Lassen each client
  /// mount is one ~1.15 GB/s TCP session, so aggregate bandwidth grows
  /// per-node until the 2x100 GbE gateway (~25 GB/s) saturates — the
  /// paper's "abrupt stagnation after 32 nodes" at "the maximum
  /// available bandwidth on the network". Lower it to model a gateway
  /// whose forwarding path, not its links, is the limit (see the
  /// frontend ablation bench).
  Bandwidth tcpGatewayPipeCap = units::gbs(1000.0);
  Seconds tcpRpcLatency = units::usec(250);
  Seconds rdmaRpcLatency = units::usec(25);
  /// Server-side stable-write commit (stage into mirrored SCM + ack).
  Seconds commitLatency = units::usec(400);
  /// Serialized per-CNode commit service time under fsync storms
  /// (excludes the SCM data transfer, which is added per request size).
  Seconds cnodeCommitService = units::msec(0.45);
  /// Per-op metadata service on a CNode (element store lookup in SCM —
  /// the stateless shared-everything design needs no cross-CNode chat).
  Seconds metadataServiceTime = units::usec(80);
  /// Shared-directory serialization penalty (element-store lock).
  double metadataSharedDirPenalty = 2.0;
  /// N-1 shared-file costs: NFS writes to one file serialize on the
  /// owning CNode's element lock.
  Seconds sharedFileLockLatency = units::usec(400);
  double sharedFileEfficiency = 0.8;

  // ---- Derived ----
  Bytes totalCapacity() const {
    return static_cast<Bytes>(dboxes) * qlcPerBox * qlcCapacityEach;
  }
  Bytes totalScmBytes() const {
    return static_cast<Bytes>(dboxes) * scmPerBox * scmCapacityEach;
  }
  std::size_t sessionsPerClient() const { return nconnect == 0 ? 1 : nconnect; }
  Bandwidth sessionCap() const {
    return transport == NfsTransport::Tcp ? tcpSessionCap : rdmaSessionCap;
  }
  Seconds rpcLatency() const {
    return transport == NfsTransport::Tcp ? tcpRpcLatency : rdmaRpcLatency;
  }

  /// Throws std::invalid_argument when structurally inconsistent.
  void validate() const;

  // ---- Presets matching the paper's two instances ----

  /// The LC-cluster instance (§IV-B): 16 CNodes, 5 DBoxes (10 DNodes),
  /// 22 QLC + 6 SCM per box, NFS over TCP through a gateway pool that the
  /// caller fills per machine (see cluster/deployments).
  static VastConfig lcInstance();

  /// The Wombat instance (§IV-B): 8 CNodes, 8 DNodes (BlueField DPUs) in
  /// 4 HA pairs with 11 SSDs + 4 NVRAMs each, RDMA/RoCE with nconnect=16
  /// and multipathing, no gateway hop.
  static VastConfig wombatInstance();
};

}  // namespace hcsim
