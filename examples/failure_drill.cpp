// failure_drill — operate the VAST model like an SRE: run a steady
// full-node write workload, kill components mid-run, watch the max-min
// re-rating respond, and verify the HA story (§III-A) end to end.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "util/units.hpp"

using namespace hcsim;

int main() {
  std::printf("== Failure drill: VAST on Wombat, 4 nodes writing ==\n\n");

  TestBench bench(Machine::wombat(), 4);
  auto fs = bench.attachVast(vastOnWombat());

  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  ph.nodes = 4;
  ph.procsPerNode = 16;
  fs->beginPhase(ph);

  // 4 nodes x 16 aggregated streams x 1 GiB each.
  SimTime lastEnd = 0;
  std::size_t done = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    for (std::uint32_t s = 0; s < 16; ++s) {
      IoRequest req;
      req.client = {n, s};
      req.fileId = n * 16 + s + 1;
      req.bytes = units::GiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = 1024;
      fs->submit(req, [&](const IoResult& r) {
        lastEnd = std::max(lastEnd, r.endTime);
        ++done;
      });
    }
  }

  // The incident timeline.
  auto report = [&](const char* what) {
    std::printf("  t=%6.2fs  %-34s alive: %zu/8 CNodes, %zu/4 DBoxes\n", bench.sim().now(),
                what, fs->aliveCNodes(), fs->aliveDBoxes());
  };
  bench.sim().schedule(2.0, [&] {
    fs->failCNode(0);
    fs->failCNode(1);
    report("two CNodes crash");
  });
  bench.sim().schedule(4.0, [&] {
    fs->failDNode(0);
    report("DNode fails (HA pair degraded)");
  });
  bench.sim().schedule(6.0, [&] {
    fs->restoreCNode(0);
    fs->restoreCNode(1);
    fs->restoreDNode(0);
    report("everything repaired");
  });

  report("steady state");
  bench.sim().run();
  fs->endPhase();

  const double totalGiB = 64.0;
  std::printf("\n  all %zu streams finished at t=%.2fs (%.2f GB/s average; a\n", done, lastEnd,
              totalGiB * 1.073741824 / lastEnd);
  std::printf("  healthy run finishes in ~%.2fs — the drill cost the difference,\n",
              totalGiB * 1.073741824 / 8.0);
  std::printf("  but no I/O failed: stateless CNodes + HA enclosures absorbed it.)\n");
  return 0;
}
