#pragma once
// Network links for the flow-level model.
//
// A Link is a capacity + propagation latency. It carries no per-packet
// state: the FlowNetwork allocates bandwidth among the flows crossing it
// (max-min fair), which is the right granularity for reproducing the
// paper's results — every effect reported (gateway bottlenecks, RDMA
// multipath scaling, CNode saturation) is a bandwidth-sharing effect.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace hcsim {

/// Index of a link inside its FlowNetwork.
struct LinkId {
  std::uint32_t value = UINT32_MAX;
  bool valid() const { return value != UINT32_MAX; }
  friend bool operator==(LinkId a, LinkId b) { return a.value == b.value; }
};

/// An ordered list of links a flow traverses (client NIC -> gateway ->
/// server NIC -> fabric -> device port, ...).
using Route = std::vector<LinkId>;

struct Link {
  std::string name;
  Bandwidth capacity = 0.0;  ///< bytes/sec
  Seconds latency = 0.0;     ///< one-way propagation + switching latency

  /// Fault-injection multiplier in [0, 1] on the effective capacity,
  /// orthogonal to `capacity` so phase-driven capacity changes compose
  /// with chaos degradation: 1 = healthy, 0 = failed (fail-stop), an
  /// intermediate value models fail-slow ("link at 30% rate" = 0.3).
  double health = 1.0;

  /// Lifetime counters (for tests and utilization reports).
  double bytesCarried = 0.0;
};

/// Utilization snapshot used by reports/tests.
struct LinkStats {
  std::string name;
  Bandwidth capacity = 0.0;
  Seconds latency = 0.0;
  Bandwidth allocated = 0.0;  ///< sum of current flow rates through it
  double bytesCarried = 0.0;
};

}  // namespace hcsim
