#!/usr/bin/env bash
# Release-build gate: configure + build EVERYTHING (library, tests,
# benches, examples — a bench that fails to compile fails this script),
# run the full test suite, then smoke-test the sweep engine end to end.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${HCSIM_CHECK_BUILD_DIR:-$ROOT/build-check}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$JOBS"

ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

# Sweep smoke: the fig2 grid must complete, emit parseable JSONL/CSV,
# and be independent of the job count.
OUT="$BUILD/check-sweep"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 8 \
    --out "$OUT-8.jsonl" --csv "$OUT-8.csv" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 1 \
    --out "$OUT-1.jsonl" >/dev/null
cmp "$OUT-8.jsonl" "$OUT-1.jsonl"
test "$(wc -l < "$OUT-8.jsonl")" -ge 24
grep -q '"ok":true' "$OUT-8.jsonl"
head -1 "$OUT-8.csv" | grep -q '^trial,'

echo "check.sh: OK"
