#include "ior/ior_runner.hpp"

#include <stdexcept>

#include "workload/ior_source.hpp"
#include "workload/workload_runner.hpp"

namespace hcsim {

IorResult IorRunner::run(const IorConfig& cfg) {
  cfg.validate();
  if (cfg.nodes > bench_.nodesUsed()) {
    throw std::invalid_argument("IorRunner: config uses more nodes than the TestBench wired");
  }
  IorResult result;
  Rng noise(cfg.seed ^ 0x5eedull);
  RunningStats elapsedStats;
  // A coalesced run is fully deterministic, so one simulation serves all
  // repetitions; the run-to-run spread of a shared production system is
  // then layered on as multiplicative noise. Per-op runs re-simulate
  // (their request streams are seed-dependent).
  const bool simulateEachRep = cfg.mode == IorConfig::Mode::PerOp;
  const RunOutcome base = simulateEachRep ? RunOutcome{} : runOnce(cfg);
  result.totalBytes = simulateEachRep ? 0 : base.bytes;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    const RunOutcome outcome = simulateEachRep ? runOnce(cfg) : base;
    if (rep == 0) {
      result.totalBytes = outcome.bytes;
      result.opLatency = summarize(outcome.opLatencies);
    }
    Seconds elapsed = outcome.elapsed;
    if (cfg.noiseStdDevFrac > 0.0 && cfg.repetitions > 1) {
      elapsed *= noise.normalAtLeast(1.0, cfg.noiseStdDevFrac, 0.2);
    }
    elapsedStats.add(elapsed);
    result.samples.push_back(static_cast<double>(outcome.bytes) / elapsed);
  }
  result.bandwidth = summarize(result.samples);
  result.meanElapsed = elapsedStats.mean();
  return result;
}

IorRunner::RunOutcome IorRunner::runOnce(const IorConfig& cfg) {
  // One simulated benchmark run = one IorSource driven by the generic
  // WorkloadRunner (phase begin/end, channel slots, tracing and retry
  // all live there now).
  workload::IorSource source(cfg);
  workload::WorkloadRunner runner(bench_, fs_);
  runner.setTraceLog(trace_);
  workload::WorkloadOutcome out = runner.run(source);
  RunOutcome outcome;
  outcome.elapsed = out.elapsed;
  // Coalesced reports the configured volume (the aggregated flows always
  // move it all); per-op reports bytes actually completed so stonewalled
  // runs score only what they moved.
  outcome.bytes = cfg.mode == IorConfig::Mode::Coalesced ? cfg.totalBytes() : out.bytesMoved;
  outcome.opLatencies = std::move(out.opLatencies);
  return outcome;
}

}  // namespace hcsim
