// hcsim::chaos tests: scenario parsing + schedule validation, FlowNetwork
// link-health/abort primitives, the client retry/backoff layer, fault
// hooks on the storage models (including the GPFS mid-phase hit-ratio
// staleness regression), zero-cost empty schedules, and the committed
// CNode-failover acceptance scenario.

#include "chaos/chaos_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/deployments.hpp"
#include "net/topology.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/trial_cache.hpp"
#include "util/units.hpp"

namespace hcsim {
namespace {

using chaos::ChaosSpec;

JsonValue parseOrDie(const std::string& text) {
  JsonValue j;
  EXPECT_TRUE(parseJson(text, j)) << text;
  return j;
}

ChaosSpec specFromText(const std::string& text) {
  ChaosSpec spec;
  std::string err;
  EXPECT_TRUE(chaos::parseChaosSpec(parseOrDie(text), spec, err)) << err;
  return spec;
}

std::string parseError(const std::string& text) {
  ChaosSpec spec;
  std::string err;
  EXPECT_FALSE(chaos::parseChaosSpec(parseOrDie(text), spec, err));
  return err;
}

// ---------- spec parsing ----------

TEST(ChaosSpec, MinimalSpecGetsDefaults) {
  const ChaosSpec spec = specFromText("{}");
  EXPECT_EQ(spec.site, Site::Lassen);
  EXPECT_EQ(spec.storage, StorageKind::Vast);
  EXPECT_EQ(spec.workload.nodes, 4u);
  EXPECT_EQ(spec.workload.procsPerNode, 8u);
  EXPECT_EQ(spec.workload.access, AccessPattern::SequentialWrite);
  EXPECT_DOUBLE_EQ(spec.horizon, 90.0);
  EXPECT_DOUBLE_EQ(spec.interval, 5.0);
  EXPECT_TRUE(spec.retryEnabled);
  EXPECT_TRUE(spec.events.empty());
}

TEST(ChaosSpec, FullSpecParses) {
  const ChaosSpec spec = specFromText(R"({
    "name": "drill", "site": "wombat", "storage": "nvme",
    "workload": {"nodes": 2, "procsPerNode": 4, "access": "seq-read",
                 "requestBytes": 1048576},
    "horizonSec": 30, "intervalSec": 2,
    "retry": {"timeoutSec": 5, "maxRetries": 2, "backoffBaseSec": 0.1,
              "backoffMultiplier": 3},
    "events": [
      {"atSec": 5, "action": "fail-slow", "component": "drive", "index": 1,
       "severity": 0.4},
      {"atSec": 15, "action": "restore", "component": "drive", "index": 1,
       "rebuildGiB": 2.5}
    ]})");
  EXPECT_EQ(spec.name, "drill");
  EXPECT_EQ(spec.site, Site::Wombat);
  EXPECT_EQ(spec.storage, StorageKind::NvmeLocal);
  EXPECT_EQ(spec.workload.access, AccessPattern::SequentialRead);
  EXPECT_DOUBLE_EQ(spec.retry.timeout, 5.0);
  EXPECT_EQ(spec.retry.maxRetries, 2u);
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].fault.action, FaultAction::FailSlow);
  EXPECT_EQ(spec.events[0].fault.component, "drive");
  EXPECT_DOUBLE_EQ(spec.events[0].fault.severity, 0.4);
  EXPECT_EQ(spec.events[1].fault.action, FaultAction::Restore);
  EXPECT_DOUBLE_EQ(spec.events[1].rebuildGiB, 2.5);
}

TEST(ChaosSpec, RetryFalseDisablesTheLayer) {
  const ChaosSpec spec = specFromText(R"({"retry": false})");
  EXPECT_FALSE(spec.retryEnabled);
}

TEST(ChaosSpec, ParseRejectsBadEvents) {
  EXPECT_NE(parseError(R"({"events": [{"atSec": -1, "action": "fail",
                           "component": "cnode"}]})")
                .find("'atSec'"),
            std::string::npos);
  EXPECT_NE(parseError(R"({"events": [{"atSec": 1, "action": "explode",
                           "component": "cnode"}]})")
                .find("fail|fail-slow|restore"),
            std::string::npos);
  EXPECT_NE(parseError(R"({"events": [{"atSec": 1, "action": "fail"}]})")
                .find("'component'"),
            std::string::npos);
  EXPECT_NE(parseError(R"({"events": [{"atSec": 1, "action": "fail",
                           "component": "cnode", "rebuildGiB": 4}]})")
                .find("restore"),
            std::string::npos);
  // The index of the offending event is part of the message.
  EXPECT_NE(parseError(R"({"events": [{"atSec": 1, "action": "fail",
                           "component": "cnode"},
                          {"atSec": 2, "action": "bogus", "component": "cnode"}]})")
                .find("events[1]"),
            std::string::npos);
}

// ---------- schedule validation against a deployment ----------

struct ValidationHarness {
  ValidationHarness() : bench(Machine::lassen(), 4), fs(bench.attachVast(vastOnLassen())) {}
  TestBench bench;
  std::unique_ptr<VastModel> fs;

  std::vector<std::string> validate(const std::string& text) {
    const ChaosSpec spec = specFromText(text);
    return chaos::validateSchedule(spec, *fs, bench.topo());
  }
};

TEST(ChaosValidate, EmptyScheduleIsValid) {
  ValidationHarness h;
  EXPECT_TRUE(h.validate("{}").empty());
}

TEST(ChaosValidate, UnknownComponentListsSupportedKinds) {
  ValidationHarness h;
  const auto problems = h.validate(
      R"({"events": [{"atSec": 1, "action": "fail", "component": "oss"}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown component 'oss'"), std::string::npos);
  // A VAST deployment advertises its own kinds, not Lustre's.
  EXPECT_NE(problems[0].find("cnode"), std::string::npos);
  EXPECT_NE(problems[0].find("link"), std::string::npos);
  EXPECT_EQ(problems[0].find("|oss"), std::string::npos);
}

TEST(ChaosValidate, IndexOutOfRangeNamesTheCount) {
  ValidationHarness h;
  const auto problems = h.validate(
      R"({"events": [{"atSec": 1, "action": "fail", "component": "cnode", "index": 99}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("index 99 out of range"), std::string::npos);
  EXPECT_NE(problems[0].find("16"), std::string::npos);  // Lassen preset has 16 CNodes
}

TEST(ChaosValidate, UnknownLinkRejected) {
  ValidationHarness h;
  const auto problems = h.validate(
      R"({"events": [{"atSec": 1, "action": "fail", "link": "no-such-link"}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown link 'no-such-link'"), std::string::npos);
}

TEST(ChaosValidate, OutOfOrderTimesRejected) {
  ValidationHarness h;
  const auto problems = h.validate(R"({"events": [
    {"atSec": 10, "action": "fail", "component": "cnode", "index": 0},
    {"atSec": 5, "action": "fail", "component": "cnode", "index": 1}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("goes backwards"), std::string::npos);
}

TEST(ChaosValidate, EventAtOrAfterHorizonRejected) {
  ValidationHarness h;
  const auto problems = h.validate(R"({"horizonSec": 20, "events": [
    {"atSec": 20, "action": "fail", "component": "cnode", "index": 0}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("never fire"), std::string::npos);
}

TEST(ChaosValidate, OverlappingFaultStateMachine) {
  ValidationHarness h;
  // fail twice without restore
  auto problems = h.validate(R"({"events": [
    {"atSec": 1, "action": "fail", "component": "cnode", "index": 0},
    {"atSec": 2, "action": "fail", "component": "cnode", "index": 0}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("already failed"), std::string::npos);

  // restore something healthy
  problems = h.validate(R"({"events": [
    {"atSec": 1, "action": "restore", "component": "cnode", "index": 0}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("already healthy"), std::string::npos);

  // fail-slow on a failed component
  problems = h.validate(R"({"events": [
    {"atSec": 1, "action": "fail", "component": "cnode", "index": 0},
    {"atSec": 2, "action": "fail-slow", "component": "cnode", "index": 0,
     "severity": 0.5}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("restore it before"), std::string::npos);

  // fail/restore/fail on the same target is legal
  EXPECT_TRUE(h.validate(R"({"events": [
    {"atSec": 1, "action": "fail", "component": "cnode", "index": 0},
    {"atSec": 2, "action": "restore", "component": "cnode", "index": 0},
    {"atSec": 3, "action": "fail", "component": "cnode", "index": 0}]})")
                  .empty());
}

TEST(ChaosValidate, FailSlowSeverityMustBeFractional) {
  ValidationHarness h;
  const auto problems = h.validate(R"({"events": [
    {"atSec": 1, "action": "fail-slow", "component": "cnode", "index": 0,
     "severity": 1.0}]})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("(0, 1)"), std::string::npos);
}

// ---------- FlowNetwork link health / abort ----------

TEST(LinkHealth, FailSlowThrottlesAnActiveFlow) {
  Simulator sim;
  FlowNetwork net{sim};
  const LinkId l = net.addLink("l", 100.0);
  SimTime end = -1;
  net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });
  // Half the bytes at full rate, then the link drops to 30% health.
  sim.schedule(5.0, [&] { net.setLinkHealth(l, 0.3); });
  sim.run();
  // 500 B at 100 B/s + 500 B at 30 B/s.
  EXPECT_NEAR(end, 5.0 + 500.0 / 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.linkHealth(l), 0.3);
}

TEST(LinkHealth, FailStopStallsAndRestoreResumes) {
  Simulator sim;
  FlowNetwork net{sim};
  const LinkId l = net.addLink("l", 100.0);
  SimTime end = -1;
  net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });
  sim.schedule(2.0, [&] { net.failLink(l); });
  sim.schedule(12.0, [&] { net.restoreLink(l); });
  sim.run();
  // 200 B, a 10 s outage, then the remaining 800 B at full rate.
  EXPECT_NEAR(end, 12.0 + 800.0 / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.linkHealth(l), 1.0);
}

TEST(LinkHealth, AbortFlowCancelsItsCompletion) {
  Simulator sim;
  FlowNetwork net{sim};
  const LinkId l = net.addLink("l", 100.0);
  bool fired = false;
  SimTime otherEnd = -1;
  const FlowId doomed = net.startFlow({1000, {l}}, [&](const FlowCompletion&) { fired = true; });
  net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { otherEnd = c.endTime; });
  sim.schedule(5.0, [&] { EXPECT_TRUE(net.abortFlow(doomed)); });
  sim.run();
  EXPECT_FALSE(fired);
  // The survivor had half the link for 5 s (250 B done), then all of it.
  EXPECT_NEAR(otherEnd, 5.0 + 750.0 / 100.0, 1e-9);
  EXPECT_FALSE(net.abortFlow(doomed));  // unknown id -> false
}

// ---------- client retry / backoff ----------

struct NvmeRetryHarness {
  NvmeRetryHarness() : bench(Machine::wombat(), 2), fs(bench.attachNvme(nvmeOnWombat())) {
    PhaseSpec phase;
    phase.pattern = AccessPattern::SequentialWrite;
    phase.requestSize = units::MiB;
    phase.nodes = 2;
    phase.procsPerNode = 1;
    fs->beginPhase(phase);
  }
  TestBench bench;
  std::unique_ptr<NvmeLocalModel> fs;
};

TEST(Retry, OpFailsAfterExhaustingRetriesAgainstDeadDrive) {
  NvmeRetryHarness h;
  ClientSession session(*h.fs, ClientId{0, 0}, 0);
  RetryPolicy policy;
  policy.timeout = 1.0;
  policy.maxRetries = 2;
  policy.backoffBase = 0.5;
  session.enableRetry(h.bench.sim(), policy);

  // Local NVMe has no failover: a dead drive strands its node's I/O.
  FaultSpec dead;
  dead.action = FaultAction::Fail;
  dead.component = "drive";
  dead.index = 0;
  ASSERT_TRUE(h.fs->applyFault(dead));

  IoResult result;
  bool done = false;
  session.write(units::MiB, false, [&](const IoResult& r) {
    result = r;
    done = true;
  });
  h.bench.sim().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.bytes, 0u);
  EXPECT_EQ(session.retries(), 2u);
  EXPECT_EQ(session.failedOps(), 1u);
  // attempt(1s) + backoff(0.5) + attempt(1s) + backoff(1.0) + attempt(1s)
  EXPECT_NEAR(result.elapsed(), 4.5, 1e-9);
}

TEST(Retry, OpSucceedsWhenDriveRestoresBeforeRetriesRunOut) {
  NvmeRetryHarness h;
  ClientSession session(*h.fs, ClientId{0, 0}, 0);
  RetryPolicy policy;
  policy.timeout = 1.0;
  policy.maxRetries = 4;
  policy.backoffBase = 0.5;
  session.enableRetry(h.bench.sim(), policy);

  FaultSpec dead;
  dead.action = FaultAction::Fail;
  dead.component = "drive";
  dead.index = 0;
  ASSERT_TRUE(h.fs->applyFault(dead));
  FaultSpec alive = dead;
  alive.action = FaultAction::Restore;
  h.bench.sim().schedule(2.0, [&] { h.fs->applyFault(alive); });

  IoResult result;
  bool done = false;
  session.write(units::MiB, false, [&](const IoResult& r) {
    result = r;
    done = true;
  });
  h.bench.sim().run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.bytes, units::MiB);
  EXPECT_GE(session.retries(), 1u);
  EXPECT_EQ(session.failedOps(), 0u);
}

TEST(Retry, DisabledLayerPassesThroughUnchanged) {
  NvmeRetryHarness h;
  ClientSession plain(*h.fs, ClientId{0, 0}, 0);
  IoResult result;
  plain.write(units::MiB, false, [&](const IoResult& r) { result = r; });
  h.bench.sim().run();
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.bytes, units::MiB);
  EXPECT_EQ(plain.retries(), 0u);
}

// ---------- model fault hooks ----------

TEST(FaultHooks, ComponentCountsMatchDeployments) {
  TestBench bench(Machine::lassen(), 2);
  auto vast = bench.attachVast(vastOnLassen());
  EXPECT_EQ(vast->faultComponentCount("cnode"), vastOnLassen().cnodes);
  EXPECT_EQ(vast->faultComponentCount("dbox"), vastOnLassen().dboxes);
  EXPECT_EQ(vast->faultComponentCount("nsd"), 0u);

  TestBench gbench(Machine::lassen(), 2);
  auto gpfs = gbench.attachGpfs(gpfsOnLassen());
  EXPECT_EQ(gpfs->faultComponentCount("nsd"), gpfsOnLassen().nsdServers);
  EXPECT_EQ(gpfs->faultComponentCount("cnode"), 0u);

  TestBench qbench(Machine::quartz(), 2);
  auto lustre = qbench.attachLustre(lustreOnQuartz());
  EXPECT_EQ(lustre->faultComponentCount("oss"), lustreOnQuartz().ossCount);
  EXPECT_EQ(lustre->faultComponentCount("mds"), lustreOnQuartz().mdsCount);

  TestBench wbench(Machine::wombat(), 3);
  auto nvme = wbench.attachNvme(nvmeOnWombat());
  EXPECT_EQ(nvme->faultComponentCount("drive"), 3u);
}

TEST(FaultHooks, InvalidFaultsThrow) {
  TestBench bench(Machine::lassen(), 2);
  auto vast = bench.attachVast(vastOnLassen());
  FaultSpec f;
  f.component = "cnode";
  f.index = 1000;
  EXPECT_THROW(vast->applyFault(f), std::out_of_range);
  // DBoxes are HA enclosures: fail-slow is not a defined transition.
  f.component = "dbox";
  f.index = 0;
  f.action = FaultAction::FailSlow;
  f.severity = 0.5;
  EXPECT_THROW(vast->applyFault(f), std::invalid_argument);
  f.component = "unknown-kind";
  EXPECT_FALSE(vast->applyFault(f));
}

/// Satellite regression: GPFS recomputes its cached random-read hit
/// ratio when an NSD server fails *mid-phase*. Before the fix the hit
/// ratio was computed only at phase boundaries, so a mid-phase fault
/// kept serving the stale pre-fault ratio.
TEST(FaultHooks, GpfsMidPhaseNsdLossMatchesPreArrangedLoss) {
  const auto elapsedWithFault = [](bool faultBeforePhase) {
    TestBench bench(Machine::lassen(), 2);
    auto fs = bench.attachGpfs(gpfsOnLassen());
    PhaseSpec phase;
    phase.pattern = AccessPattern::RandomRead;
    phase.requestSize = units::MiB;
    phase.nodes = 2;
    phase.procsPerNode = 4;
    // Working set larger than the (surviving) pagepool, so the hit
    // ratio depends on how many NSD servers are alive.
    phase.workingSetBytes = 4ull * gpfsOnLassen().serverCacheBytes * gpfsOnLassen().nsdServers;
    if (faultBeforePhase) fs->failNsdServer(0);
    fs->beginPhase(phase);
    if (!faultBeforePhase) fs->failNsdServer(0);

    IoRequest req;
    req.client = {0, 0};
    req.fileId = 0;
    req.bytes = 64 * units::MiB;
    req.pattern = AccessPattern::RandomRead;
    SimTime end = -1;
    fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    bench.sim().run();
    return end;
  };
  const SimTime preArranged = elapsedWithFault(true);
  const SimTime midPhase = elapsedWithFault(false);
  ASSERT_GT(preArranged, 0.0);
  // Identical surviving capacity must serve identical requests in
  // identical time, whether the NSD died before or during the phase.
  EXPECT_NEAR(midPhase, preArranged, preArranged * 1e-9);
}

// ---------- runner ----------

JsonValue acceptanceScenario() {
  return parseOrDie(R"({
    "name": "cnode-failover",
    "site": "lassen", "storage": "vast",
    "storageConfig": {"cnodes": 8},
    "workload": {"nodes": 12, "procsPerNode": 8, "access": "seq-write",
                 "requestBytes": 16777216},
    "horizonSec": 90, "intervalSec": 5,
    "retry": {"timeoutSec": 10, "maxRetries": 4, "backoffBaseSec": 0.25,
              "backoffMultiplier": 2.0},
    "events": [
      {"atSec": 30, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 30, "action": "fail", "component": "cnode", "index": 1},
      {"atSec": 60, "action": "restore", "component": "cnode", "index": 0,
       "rebuildGiB": 32},
      {"atSec": 60, "action": "restore", "component": "cnode", "index": 1,
       "rebuildGiB": 32}
    ]})");
}

/// The committed example scenario (examples/specs/cnode_failover.json
/// carries the same JSON): failing 2 of 8 CNodes dips write bandwidth
/// to ~75% and the restore brings it back within 2% of healthy.
TEST(ChaosRunner, CNodeFailoverAcceptanceScenario) {
  ChaosSpec spec;
  std::string err;
  ASSERT_TRUE(chaos::parseChaosSpec(acceptanceScenario(), spec, err)) << err;
  const chaos::ChaosOutcome out = chaos::runChaos(spec);

  ASSERT_EQ(out.timeline.size(), 18u);
  ASSERT_GT(out.healthyGBs, 0.0);
  // Outage slices (t in [30,60)) sit at ~75% of healthy: 6 of 8 CNodes.
  double outageMean = 0.0;
  for (std::size_t i = 6; i < 12; ++i) outageMean += out.timeline[i].gbs;
  outageMean /= 6.0;
  EXPECT_NEAR(outageMean / out.healthyGBs, 0.75, 0.05);
  for (std::size_t i = 6; i < 12; ++i) {
    EXPECT_TRUE(out.timeline[i].degraded) << "slice " << i;
    EXPECT_EQ(out.timeline[i].activeFaults, 2u) << "slice " << i;
  }
  // Recovery: back within 2% of healthy steady state after the restore.
  EXPECT_NEAR(out.finalGBs, out.healthyGBs, out.healthyGBs * 0.02);
  EXPECT_GE(out.timeToRecover, 0.0);
  EXPECT_LE(out.timeToRecover, 5.0 + 1e-9);  // first slice after the restore
  EXPECT_DOUBLE_EQ(out.degradedSeconds, 30.0);
  // The rebuild traffic drained (2 x 32 GiB over the fabric).
  EXPECT_EQ(out.rebuildBytes, 64ull * units::GiB);
  EXPECT_GT(out.rebuildCompletedAt, 60.0);
}

TEST(ChaosRunner, TimelineIsDeterministic) {
  ChaosSpec spec;
  std::string err;
  ASSERT_TRUE(chaos::parseChaosSpec(acceptanceScenario(), spec, err)) << err;
  // Smaller run, same shape.
  spec.horizon = 30.0;
  spec.events.resize(2);
  spec.events[0].at = spec.events[1].at = 10.0;
  const chaos::ChaosOutcome a = chaos::runChaos(spec);
  const chaos::ChaosOutcome b = chaos::runChaos(spec);
  EXPECT_EQ(chaos::toJsonl(a), chaos::toJsonl(b));
}

TEST(ChaosRunner, InvalidScheduleThrowsWithEveryProblem) {
  ChaosSpec spec = specFromText(R"({"events": [
    {"atSec": 1, "action": "restore", "component": "cnode", "index": 0},
    {"atSec": 2, "action": "fail", "component": "bogus"}]})");
  try {
    chaos::runChaos(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("already healthy"), std::string::npos);
    EXPECT_NE(what.find("unknown component 'bogus'"), std::string::npos);
  }
}

TEST(ChaosRunner, RendersAndExports) {
  ChaosSpec spec = specFromText(R"({
    "workload": {"nodes": 2, "procsPerNode": 4},
    "horizonSec": 10, "intervalSec": 2})");
  const chaos::ChaosOutcome out = chaos::runChaos(spec);
  const ResultTable t = chaos::renderTimeline(out);
  EXPECT_EQ(t.rowCount(), out.timeline.size());
  EXPECT_EQ(t.columnCount(), 6u);

  const std::string jsonl = chaos::toJsonl(out);
  // One summary line + one line per interval.
  EXPECT_EQ(static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n')),
            1 + out.timeline.size());

  telemetry::MetricsRegistry reg;
  chaos::exportTo(out, reg);
  EXPECT_GT(reg.gaugeOr("chaos.healthy_gbs", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("chaos.degraded_sec", -1.0), out.degradedSeconds);
}

// ---------- zero-cost contract + sweep integration ----------

TEST(ChaosSweep, EmptyChaosSectionLeavesIorTrialByteIdentical) {
  const JsonValue plain = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 2, "procsPerNode": 8, "segments": 16}})");
  const JsonValue withEmpty = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 2, "procsPerNode": 8, "segments": 16},
    "chaos": {"events": []}})");
  const sweep::TrialMetrics a = sweep::runTrial("ior", plain, {});
  const sweep::TrialMetrics b = sweep::runTrial("ior", withEmpty, {});
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.meanGBs, b.meanGBs);
  EXPECT_EQ(a.minGBs, b.minGBs);
  EXPECT_EQ(a.maxGBs, b.maxGBs);
  EXPECT_EQ(a.elapsedSec, b.elapsedSec);
  EXPECT_EQ(a.bytesMoved, b.bytesMoved);
}

TEST(ChaosSweep, MidRunCNodeFaultDegradesIorTrial) {
  const JsonValue plain = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 4, "procsPerNode": 16, "segments": 64}})");
  const JsonValue faulted = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 4, "procsPerNode": 16, "segments": 64},
    "chaos": {"events": [
      {"atSec": 0.5, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 0.5, "action": "fail", "component": "cnode", "index": 1}]}})");
  const sweep::TrialMetrics a = sweep::runTrial("ior", plain, {});
  const sweep::TrialMetrics b = sweep::runTrial("ior", faulted, {});
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_LT(b.meanGBs, a.meanGBs * 0.95);
}

TEST(ChaosSweep, ChaosExperimentTrialReportsTimelineMetrics) {
  const JsonValue config = parseOrDie(R"({
    "site": "lassen", "storage": "vast", "storageConfig": {"cnodes": 4},
    "workload": {"nodes": 4, "procsPerNode": 8, "requestBytes": 8388608},
    "horizonSec": 20, "intervalSec": 2,
    "events": [
      {"atSec": 4, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 12, "action": "restore", "component": "cnode", "index": 0}]})");
  const sweep::TrialMetrics m = sweep::runTrial("chaos", config, {});
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.meanGBs, 0.0);
  EXPECT_LT(m.minGBs, m.maxGBs);  // the dip is visible in the spread
  EXPECT_DOUBLE_EQ(m.elapsedSec, 20.0);
  EXPECT_GT(m.bytesMoved, 0.0);
}

TEST(ChaosSweep, BadChaosSectionFailsTheTrialWithActionableError) {
  const JsonValue bad = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 2, "procsPerNode": 8, "segments": 16},
    "chaos": {"events": [
      {"atSec": 1, "action": "fail", "component": "nsd"}]}})");
  const sweep::TrialMetrics m = sweep::runTrial("ior", bad, {});
  EXPECT_FALSE(m.ok);
  EXPECT_NE(m.error.find("unknown component 'nsd'"), std::string::npos);
}

TEST(ChaosSweep, ScheduleIsPartOfTheTrialCacheKey) {
  const JsonValue plain = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 2, "procsPerNode": 8, "segments": 16}})");
  const JsonValue faulted = parseOrDie(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 2, "procsPerNode": 8, "segments": 16},
    "chaos": {"events": [
      {"atSec": 0.5, "action": "fail", "component": "cnode", "index": 0}]}})");
  EXPECT_NE(sweep::trialKey("ior", plain), sweep::trialKey("ior", faulted));
}

}  // namespace
}  // namespace hcsim
