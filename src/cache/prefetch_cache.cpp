#include "cache/prefetch_cache.hpp"

#include <stdexcept>

namespace hcsim {

PrefetchCache::PrefetchCache(Bytes capacity, Bytes blockSize, std::size_t readahead,
                             std::size_t runThreshold)
    : lru_(capacity), blockSize_(blockSize), readahead_(readahead), runThreshold_(runThreshold) {
  if (blockSize_ == 0) throw std::invalid_argument("PrefetchCache: blockSize must be > 0");
}

CacheReadResult PrefetchCache::read(std::uint64_t fileId, Bytes offset, Bytes size) {
  CacheReadResult result;
  if (size == 0) return result;
  const std::uint64_t firstBlock = offset / blockSize_;
  const std::uint64_t lastBlock = (offset + size - 1) / blockSize_;
  Stream& stream = streams_[fileId];

  for (std::uint64_t b = firstBlock; b <= lastBlock; ++b) {
    // Bytes of this request inside block b.
    const Bytes blockStart = b * blockSize_;
    const Bytes lo = offset > blockStart ? offset : blockStart;
    const Bytes hi = (offset + size) < (blockStart + blockSize_) ? (offset + size)
                                                                 : (blockStart + blockSize_);
    const Bytes span = hi - lo;

    if (lru_.touch(packKey(fileId, b))) {
      result.cachedBytes += span;
    } else {
      result.backendBytes += span;
      lru_.insert(packKey(fileId, b), blockSize_);
    }

    // Sequential-run detection (per file).
    if (stream.lastBlock != UINT64_MAX && b == stream.lastBlock + 1) {
      ++stream.runLength;
    } else if (b != stream.lastBlock) {
      stream.runLength = 1;
    }
    stream.lastBlock = b;

    if (readahead_ > 0 && stream.runLength >= runThreshold_) {
      prefetch(fileId, b + 1, result);
    }
  }
  return result;
}

void PrefetchCache::prefetch(std::uint64_t fileId, std::uint64_t fromBlock,
                             CacheReadResult& result) {
  for (std::size_t i = 0; i < readahead_; ++i) {
    const std::uint64_t b = fromBlock + i;
    const std::uint64_t key = packKey(fileId, b);
    if (lru_.contains(key)) continue;
    lru_.insert(key, blockSize_);
    prefetchedBytes_ += blockSize_;
    result.backendBytes += blockSize_;  // readahead consumes backend bandwidth
  }
}

void PrefetchCache::writeAllocate(std::uint64_t fileId, Bytes offset, Bytes size) {
  if (size == 0) return;
  const std::uint64_t firstBlock = offset / blockSize_;
  const std::uint64_t lastBlock = (offset + size - 1) / blockSize_;
  for (std::uint64_t b = firstBlock; b <= lastBlock; ++b) {
    lru_.insert(packKey(fileId, b), blockSize_);
  }
}

void PrefetchCache::invalidateAll() {
  lru_.clear();
  streams_.clear();
}

void PrefetchCache::resetCounters() {
  lru_.resetCounters();
  prefetchedBytes_ = 0;
}

}  // namespace hcsim
