#pragma once
// InlineFunction — a move-only type-erased callable with a small-buffer
// inline store, built for the event engine's hot path.
//
// std::function is the wrong shape for a discrete-event scheduler: it
// must be copyable (so captures pay for copyability they never use) and
// its small-object buffer on common ABIs is 16 bytes, which spills every
// realistic simulation callback (`[this, fid]` plus a moved-in
// continuation) to the heap. InlineFunction stores any callable whose
// size fits kInlineFunctionCapacity (48 bytes — chosen to hold a
// this-pointer plus a moved std::function continuation plus one scalar,
// the dominant capture shape in the storage models) directly in the
// event slot, so scheduling allocates nothing. Larger callables fall
// back to a single heap cell; behaviour is identical either way.
//
// Only the operations the engine needs are provided: construct from any
// callable, move, invoke, destroy, test for emptiness. No copy, no
// target(), no allocator support.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hcsim {

inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <class Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {
    if constexpr (fitsInline<D>()) {
      ::new (storage()) D(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (*std::launder(static_cast<D*>(s)))(std::forward<Args>(args)...);
      };
      manage_ = [](void* s, void* dst) {
        D* self = std::launder(static_cast<D*>(s));
        if (dst != nullptr) ::new (dst) D(std::move(*self));
        self->~D();
      };
    } else {
      ::new (storage()) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* s, Args... args) -> R {
        return (**std::launder(static_cast<D**>(s)))(std::forward<Args>(args)...);
      };
      manage_ = [](void* s, void* dst) {
        D** self = std::launder(static_cast<D**>(s));
        if (dst != nullptr) {
          ::new (dst) D*(*self);  // pointer itself is trivially destructible
        } else {
          delete *self;
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { moveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) { return invoke_(storage(), std::forward<Args>(args)...); }

  /// True when callable type F is stored in the inline buffer (exposed
  /// so tests can pin the no-allocation guarantee for hot-path shapes).
  template <class F>
  static constexpr bool storesInline() {
    return fitsInline<std::decay_t<F>>();
  }

 private:
  template <class D>
  static constexpr bool fitsInline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void* storage() { return static_cast<void*>(buf_); }

  void reset() {
    if (manage_ != nullptr) manage_(storage(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void moveFrom(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) other.manage_(other.storage(), storage());
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(void*, void*) = nullptr;
};

}  // namespace hcsim
