#pragma once
// DlioRunner — executes a DlioConfig against a FileSystemModel: every
// rank runs an input pipeline (ioThreads concurrent sample fetches
// feeding a bounded prefetch queue) and a trainer consuming batches in
// order, computing for computeTimePerBatch each. All reads and computes
// are recorded into a TraceLog (the DFTracer substitute), from which the
// Fig 4-6 metrics are derived.

#include <memory>

#include "cluster/deployments.hpp"
#include "dlio/dlio_config.hpp"
#include "fs/file_system_model.hpp"
#include "trace/overlap_analysis.hpp"
#include "trace/trace_log.hpp"
#include "util/random.hpp"

namespace hcsim {

struct DlioResult {
  IoTimeBreakdown breakdown;
  ThroughputReport throughput;
  Seconds runtime = 0.0;       ///< wall time of the training run
  Bytes bytesRead = 0;         ///< total bytes fetched (epochs included)
  Bytes bytesCheckpointed = 0; ///< checkpoint writes (unet3d-style)
  Bytes datasetBytes = 0;      ///< dataset size on storage
  std::size_t batchesTrained = 0;
  TraceLog trace;              ///< full event log (chrome-trace exportable)
};

class DlioRunner {
 public:
  DlioRunner(TestBench& bench, FileSystemModel& fs) : bench_(bench), fs_(fs) {}

  /// Run the emulated training to completion and analyze the trace.
  DlioResult run(const DlioConfig& cfg);

 private:
  TestBench& bench_;
  FileSystemModel& fs_;
};

}  // namespace hcsim
