# Empty compiler generated dependencies file for bench_burstbuffer.
# This may be replaced when dependencies are built.
