// Fig 6 — "Cosmoflow Throughput": application and system throughput on
// VAST vs GPFS, strong scaling, 4 epochs.
//
// Expected shape (paper §VI-C): GPFS serves Cosmoflow clearly better —
// the larger dataset and the input pipeline's mere 4 I/O threads leave
// much of VAST's I/O unhidden, so both application and system throughput
// favour GPFS.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  std::printf("== Fig 6: Cosmoflow throughput on Lassen (strong scaling) ==\n\n");
  ResultTable t("Fig 6: Cosmoflow application vs system throughput (GB/s)");
  t.setHeader({"nodes", "VAST app", "GPFS app", "VAST system", "GPFS system"});
  t.setPrecision(3);
  for (std::size_t nodes = 1; nodes <= 32; nodes *= 2) {
    DlioConfig cfg;
    cfg.workload = DlioWorkload::cosmoflow();
    cfg.nodes = nodes;
    cfg.procsPerNode = 4;
    const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
    const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
    t.addRow({static_cast<double>(nodes), units::toGBs(vast.throughput.application),
              units::toGBs(gpfs.throughput.application),
              units::toGBs(vast.throughput.system), units::toGBs(gpfs.throughput.system)});
  }
  std::printf("%s\nCSV:\n%s\n", t.toString().c_str(), t.toCsv().c_str());
  return 0;
}
