#include "workload/dlio_source.hpp"

#include <algorithm>

namespace hcsim::workload {

namespace {
// onComplete tokens: sample ops carry their batch index; these mark the
// trainer's compute step and the checkpoint write.
constexpr std::uint64_t kTrainToken = ~0ull;
constexpr std::uint64_t kCheckpointToken = ~0ull - 1;
}  // namespace

WorkloadPlan DlioSource::load(const WorkloadContext& ctx) {
  (void)ctx;
  const DlioWorkload& w = cfg_.workload;
  WorkloadPlan plan;
  plan.phase.pattern = AccessPattern::RandomRead;
  plan.phase.requestSize = w.transferSize;
  plan.phase.nodes = static_cast<std::uint32_t>(cfg_.nodes);
  plan.phase.procsPerNode = static_cast<std::uint32_t>(cfg_.procsPerNode);
  // DLIO generates the dataset on one set of nodes and trains on another
  // (paper §VI-A) so client caches never serve the reads.
  plan.phase.readerDiffersFromWriter = true;
  plan.phase.workingSetBytes = cfg_.datasetBytes();

  samplesPerRank_ = cfg_.samplesPerRank();
  const std::size_t batchesPerEpoch = std::max<std::size_t>(1, samplesPerRank_ / w.batchSize);
  totalBatches_ = batchesPerEpoch * w.epochs;

  ranks_.resize(cfg_.totalRanks());
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    for (std::uint32_t p = 0; p < cfg_.procsPerNode; ++p) {
      RankState& st = ranks_[n * cfg_.procsPerNode + p];
      st.pid = n * static_cast<std::uint32_t>(cfg_.procsPerNode) + p;
      st.client = ClientId{n, p};
      st.fileBase = static_cast<std::uint64_t>(st.pid) * samplesPerRank_ + 1;
      st.ready.assign(totalBatches_, false);
      st.rng.reseed(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (st.pid + 1)));
    }
  }
  plan.ranks = ranks_.size();
  return plan;
}

std::size_t DlioSource::window() const {
  return std::max(cfg_.workload.prefetchDepth, cfg_.workload.ioThreads);
}

void DlioSource::sampleOp(RankState& st, WorkloadOp& out) {
  const DlioWorkload& w = cfg_.workload;
  const std::size_t batch = st.emitBatch;
  const std::size_t s = st.emitSample++;
  const std::size_t sampleIdx = (batch * w.batchSize + s) % samplesPerRank_;
  out.kind = OpKind::Io;
  out.io.client = st.client;
  out.io.fileId = st.fileBase + sampleIdx;
  out.io.offset = 0;
  out.io.bytes = w.sampleSize;
  out.io.pattern = AccessPattern::RandomRead;  // shuffled sample order
  out.io.ops = w.transfersPerSample();
  out.token = batch;
  out.traced = true;
  out.label = "sample-read";
  out.tracePid = st.pid;
  out.traceTid = static_cast<std::uint32_t>(1 + batch % w.ioThreads);
}

NextStatus DlioSource::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  if (st.done) return NextStatus::End;
  if (totalBatches_ == 0) {
    st.done = true;
    return NextStatus::End;
  }
  const DlioWorkload& w = cfg_.workload;

  // Finish handing out the batch currently being fetched: a batch =
  // batchSize samples, each its own file, read concurrently by this
  // worker; the batch is ready when its last sample arrives.
  if (st.emitSample < st.emitCount) {
    sampleOp(st, out);
    return NextStatus::Op;
  }

  // Checkpoint queued by the trainer (rank 0 of the node writes model
  // state synchronously; training stalls until it is durable).
  if (st.checkpointDue) {
    st.checkpointDue = false;
    out.kind = OpKind::Io;
    out.io.client = st.client;
    out.io.fileId = st.fileBase + 1000000 + st.nextTrain;
    out.io.offset = 0;
    out.io.bytes = w.checkpointBytes;
    out.io.pattern = AccessPattern::SequentialWrite;
    out.io.ops = std::max<std::uint64_t>(1, w.checkpointBytes / (4 * units::MiB));
    out.token = kCheckpointToken;
    out.traced = true;
    out.label = "checkpoint";
    out.tracePid = st.pid;
    out.traceTid = 0;
    return NextStatus::Op;
  }

  // Pump the prefetch pipeline.
  if (st.nextFetch < totalBatches_ && st.inFlight < w.ioThreads &&
      st.nextFetch - st.nextTrain < window()) {
    ++st.inFlight;
    st.emitBatch = st.nextFetch++;
    st.remaining[st.emitBatch] = w.batchSize;
    st.emitSample = 0;
    st.emitCount = w.batchSize;
    sampleOp(st, out);
    return NextStatus::Op;
  }

  // Train the next in-order batch once it is buffered.
  if (!st.trainerBusy && st.nextTrain < totalBatches_ && st.ready[st.nextTrain]) {
    st.trainerBusy = true;
    const Seconds mean = w.computeTimePerBatch;
    out.kind = OpKind::Compute;
    out.compute = cfg_.computeJitterFrac > 0.0
                      ? st.rng.normalAtLeast(mean, mean * cfg_.computeJitterFrac, mean * 0.1)
                      : mean;
    out.token = kTrainToken;
    out.traced = true;
    out.label = "train-step";
    out.tracePid = st.pid;
    out.traceTid = 0;
    return NextStatus::Op;
  }

  return NextStatus::Wait;
}

void DlioSource::onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
  (void)result;
  RankState& st = ranks_[rank];
  const DlioWorkload& w = cfg_.workload;

  if (op.kind == OpKind::Compute && op.token == kTrainToken) {
    st.trainerBusy = false;
    ++st.nextTrain;
    ++st.batchesTrained;
    if (w.checkpointEvery > 0 && w.checkpointBytes > 0 && st.client.proc == 0 &&
        st.nextTrain % w.checkpointEvery == 0 && st.nextTrain < totalBatches_) {
      st.trainerBusy = true;
      st.checkpointDue = true;
      return;
    }
    if (st.nextTrain >= totalBatches_) st.done = true;
    return;
  }

  if (op.token == kCheckpointToken) {
    st.trainerBusy = false;
    return;
  }

  // A sample read finished; the batch becomes ready with its last one.
  auto it = st.remaining.find(op.token);
  if (it != st.remaining.end() && --it->second == 0) {
    st.remaining.erase(it);
    --st.inFlight;
    st.ready[op.token] = true;
  }
}

std::size_t DlioSource::batchesTrained() const {
  std::size_t total = 0;
  for (const RankState& st : ranks_) total += st.batchesTrained;
  return total;
}

}  // namespace hcsim::workload
