#include "gpfs/gpfs_model.hpp"

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"

namespace hcsim {
namespace {

PhaseSpec phase(AccessPattern p, Bytes ws = 0) {
  PhaseSpec ph;
  ph.pattern = p;
  ph.requestSize = units::MiB;
  ph.nodes = 1;
  ph.procsPerNode = 1;
  ph.workingSetBytes = ws;
  return ph;
}

Bandwidth measure(GpfsModel& fs, TestBench& bench, AccessPattern pattern, Bytes ws,
                  std::uint32_t streams = 44) {
  PhaseSpec ph = phase(pattern, ws);
  ph.procsPerNode = streams;
  fs.beginPhase(ph);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = static_cast<Bytes>(streams) * units::GiB;
  req.pattern = pattern;
  req.ops = static_cast<std::uint64_t>(streams) * 1024;
  req.streams = streams;
  SimTime end = 0;
  fs.submit(req, [&](const IoResult& r) { end = r.endTime; });
  const SimTime start = bench.sim().now();
  bench.sim().run();
  fs.endPhase();
  return static_cast<double>(req.bytes) / (end - start);
}

TEST(GpfsConfig, ValidateRejectsBadValues) {
  GpfsConfig c;
  c.nsdServers = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GpfsConfig{};
  c.raidParityOverhead = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GpfsConfig{};
  c.clientReadCap = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(GpfsConfig, LassenPresetMatchesPaper) {
  const GpfsConfig c = GpfsConfig::lassen();
  EXPECT_EQ(c.nsdServers, 16u);  // "16 PowerPC64 storage nodes"
  EXPECT_EQ(c.capacityTotal, 24 * units::PB);
}

TEST(GpfsModel, SequentialReadHitsCacheFully) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  fs->beginPhase(phase(AccessPattern::SequentialRead, 100 * units::TB));
  EXPECT_DOUBLE_EQ(fs->phaseServerCacheHitRatio(), 1.0);
}

TEST(GpfsModel, RandomReadHitRatioShrinksWithWorkingSet) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  fs->beginPhase(phase(AccessPattern::RandomRead, units::GiB));
  const double small = fs->phaseServerCacheHitRatio();
  fs->endPhase();
  fs->beginPhase(phase(AccessPattern::RandomRead, 100 * units::TB));
  const double large = fs->phaseServerCacheHitRatio();
  EXPECT_DOUBLE_EQ(small, 1.0);
  EXPECT_LT(large, 0.05);
}

TEST(GpfsModel, SequentialReadNearClientCap) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const Bandwidth bw = measure(*fs, bench, AccessPattern::SequentialRead, 44 * units::GiB);
  EXPECT_GT(bw, 0.9 * gpfsOnLassen().clientReadCap);
  EXPECT_LE(bw, gpfsOnLassen().clientReadCap * 1.01);
}

TEST(GpfsModel, RandomReadCollapsesAtScale) {
  // The paper's 90% drop: random read per node far below sequential when
  // the working set defeats the caches.
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const Bandwidth seq = measure(*fs, bench, AccessPattern::SequentialRead, 50 * units::TB);
  const Bandwidth rnd = measure(*fs, bench, AccessPattern::RandomRead, 50 * units::TB);
  EXPECT_LT(rnd, 0.25 * seq);
}

TEST(GpfsModel, WritesUseWriteCap) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const Bandwidth bw = measure(*fs, bench, AccessPattern::SequentialWrite, 0);
  EXPECT_LE(bw, gpfsOnLassen().clientWriteCap * 1.01);
  EXPECT_GT(bw, 0.8 * gpfsOnLassen().clientWriteCap);
}

TEST(GpfsModel, FsyncAddsCommitLatency) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  const auto runOp = [&](bool fsync) {
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = units::MiB;
    req.pattern = AccessPattern::SequentialWrite;
    req.fsync = fsync;
    SimTime start = bench.sim().now(), end = 0;
    fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    bench.sim().run();
    return end - start;
  };
  const Seconds async = runOp(false);
  const Seconds sync = runOp(true);
  EXPECT_NEAR(sync - async, gpfsOnLassen().commitLatency, async * 0.5);
}

TEST(GpfsModel, ZeroByteRequestIsRpc) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  IoRequest req;
  req.client = {0, 0};
  req.bytes = 0;
  SimTime end = 0;
  fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  bench.sim().run();
  EXPECT_NEAR(end, gpfsOnLassen().rpcLatency, 1e-9);
}

TEST(GpfsModel, CapacityIs24PB) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  EXPECT_EQ(fs->totalCapacity(), 24 * units::PB);
}

TEST(GpfsModel, DeviceCapacityTracksPattern) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  fs->beginPhase(phase(AccessPattern::SequentialRead));
  const Bandwidth seqDev = fs->deviceCapacity();
  fs->endPhase();
  fs->beginPhase(phase(AccessPattern::RandomRead));
  EXPECT_LT(fs->deviceCapacity(), seqDev);
}

}  // namespace
}  // namespace hcsim
