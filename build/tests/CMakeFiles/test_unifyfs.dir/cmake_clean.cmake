file(REMOVE_RECURSE
  "CMakeFiles/test_unifyfs.dir/test_unifyfs.cpp.o"
  "CMakeFiles/test_unifyfs.dir/test_unifyfs.cpp.o.d"
  "test_unifyfs"
  "test_unifyfs.pdb"
  "test_unifyfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unifyfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
