file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dlio.dir/bench_ablation_dlio.cpp.o"
  "CMakeFiles/bench_ablation_dlio.dir/bench_ablation_dlio.cpp.o.d"
  "bench_ablation_dlio"
  "bench_ablation_dlio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
