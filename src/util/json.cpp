#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hcsim {

const JsonValue* JsonValue::find(const std::string& key) const {
  const JsonObject* obj = object();
  if (!obj) return nullptr;
  const auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v && v->isNumber() ? *v->number() : fallback;
}

std::string JsonValue::stringOr(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v && v->isString() ? *v->str() : fallback;
}

bool JsonValue::boolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v && v->isBool() ? *v->boolean() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skipWs();
    if (!value(out)) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool value(JsonValue& out) {
    skipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string str;
        if (!string(str)) return false;
        out = JsonValue(std::move(str));
        return true;
      }
      case 't':
        if (literal("true")) {
          out = JsonValue(true);
          return true;
        }
        return false;
      case 'f':
        if (literal("false")) {
          out = JsonValue(false);
          return true;
        }
        return false;
      case 'n':
        if (literal("null")) {
          out = JsonValue(nullptr);
          return true;
        }
        return false;
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    if (!consume('{')) return false;
    JsonObject obj;
    skipWs();
    if (consume('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (!consume(':')) return false;
      JsonValue val;
      if (!value(val)) return false;
      obj.emplace(std::move(key), std::move(val));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) break;
      return false;
    }
    out = JsonValue(std::move(obj));
    return true;
  }

  bool array(JsonValue& out) {
    if (!consume('[')) return false;
    JsonArray arr;
    skipWs();
    if (consume(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    for (;;) {
      JsonValue val;
      if (!value(val)) return false;
      arr.push_back(std::move(val));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) break;
      return false;
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) return false;
    out = JsonValue(std::strtod(s_.substr(begin, pos_ - begin).c_str(), nullptr));
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void writeValue(const JsonValue& v, std::ostringstream& os, int indent, int depth) {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                                     : std::string{};
  const std::string childPad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  if (v.isNull()) {
    os << "null";
  } else if (v.isBool()) {
    os << (*v.boolean() ? "true" : "false");
  } else if (v.isNumber()) {
    os << jsonNumber(*v.number());
  } else if (v.isString()) {
    os << '"' << jsonEscape(*v.str()) << '"';
  } else if (v.isArray()) {
    const JsonArray& arr = *v.array();
    if (arr.empty()) {
      os << "[]";
      return;
    }
    os << '[' << nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      os << childPad;
      writeValue(arr[i], os, indent, depth + 1);
      if (i + 1 < arr.size()) os << ',';
      os << nl;
    }
    os << pad << ']';
  } else {
    const JsonObject& obj = *v.object();
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os << '{' << nl;
    std::size_t i = 0;
    for (const auto& [key, val] : obj) {
      os << childPad << '"' << jsonEscape(key) << "\":";
      if (indent > 0) os << ' ';
      writeValue(val, os, indent, depth + 1);
      if (++i < obj.size()) os << ',';
      os << nl;
    }
    os << pad << '}';
  }
}

}  // namespace

bool parseJson(const std::string& text, JsonValue& out) {
  Parser p(text);
  return p.parse(out);
}

std::string writeJson(const JsonValue& value, int indent) {
  std::ostringstream os;
  writeValue(value, os, indent, 0);
  return os.str();
}

std::string jsonNumber(double d) {
  char buf[48];
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", d);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hcsim
