#include "net/flow_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "probe/flight_recorder.hpp"
#include "probe/self_profiler.hpp"

namespace hcsim {

namespace {
// Flows with fewer remaining bytes than this are considered complete;
// guards against floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-6;
// Relative rate change below which we do not bother re-timing the
// completion event (hysteresis to avoid event churn).
constexpr double kRateHysteresis = 1e-9;
// Budget for completion-time corrections skipped under hysteresis,
// relative to max(1, eta) like the hysteresis itself. Once the accrued
// skips exceed this the completion is re-anchored, bounding cumulative
// drift across arbitrarily many small rebalances to ~100 skips' worth.
constexpr double kEtaDriftBudget = 100 * kRateHysteresis;
}  // namespace

LinkId FlowNetwork::addLink(std::string name, Bandwidth capacity, Seconds latency) {
  Link l;
  l.name = std::move(name);
  l.capacity = capacity;
  l.latency = latency;
  links_.push_back(std::move(l));
  return LinkId{static_cast<std::uint32_t>(links_.size() - 1)};
}

void FlowNetwork::setLinkCapacity(LinkId id, Bandwidth capacity) {
  Link& l = links_.at(id.value);
  if (l.capacity == capacity) return;
  advanceProgress();  // credit progress at the old rates first
  l.capacity = capacity;
  rebalance();
}

void FlowNetwork::setLinkHealth(LinkId id, double health) {
  Link& l = links_.at(id.value);
  const double clamped = std::min(1.0, std::max(0.0, health));
  if (l.health == clamped) return;
  advanceProgress();  // credit progress at the old rates first
  l.health = clamped;
  if (probe::FlightRecorder* rec = sim_.recorder()) {
    rec->record(sim_.now(), probe::RecordKind::LinkHealth, id.value, clamped);
  }
  rebalance();
}

bool FlowNetwork::abortFlow(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  advanceProgress();
  ActiveFlow f = std::move(it->second);
  active_.erase(it);
  if (f.completionEvent.valid()) sim_.cancel(f.completionEvent);
  if (tel_ && f.spanIdx != telemetry::kNoSpan) tel_->endSpan(f.spanIdx, sim_.now());
  rebalance();
  return true;
}

std::size_t FlowNetwork::replaceLinkInFlows(LinkId from, LinkId to) {
  advanceProgress();
  std::size_t rerouted = 0;
  for (auto& [id, f] : active_) {
    bool touched = false;
    for (LinkId& l : f.route) {
      if (l == from) {
        l = to;
        touched = true;
      }
    }
    if (touched) ++rerouted;
  }
  if (rerouted > 0) rebalance();
  return rerouted;
}

Seconds FlowNetwork::routeLatency(const Route& route) const {
  Seconds total = 0.0;
  for (LinkId id : route) total += links_.at(id.value).latency;
  return total;
}

FlowId FlowNetwork::startFlow(const FlowSpec& spec,
                              std::function<void(const FlowCompletion&)> onComplete) {
  if (!(spec.weight > 0.0)) {
    throw std::invalid_argument("FlowNetwork: flow weight must be > 0");
  }
  if (spec.members == 0) {
    throw std::invalid_argument("FlowNetwork: flow class must have >= 1 member");
  }
  const FlowId id = nextFlowId_++;
  ActiveFlow flow;
  flow.id = id;
  flow.route = spec.route;
  flow.rateCap = spec.rateCap;
  flow.weight = spec.weight;
  flow.members = spec.members;
  flow.remaining = static_cast<double>(spec.bytes);
  flow.totalBytes = spec.bytes;
  flow.startTime = sim_.now();
  flow.onComplete = std::move(onComplete);

  if (tel_ && tel_->enabled()) {
    flow.spanIdx = tel_->beginSpan(spec.spanName.empty() ? "flow" : spec.spanName, spec.spanPid,
                                   spec.spanTid, flow.startTime,
                                   static_cast<double>(spec.bytes) * spec.members);
    if (spec.startupLatency > 0.0) {
      tel_->accrue(flow.spanIdx, tel_->stageId("startup"), spec.startupLatency, 0.0);
    }
  }

  if (spec.startupLatency > 0.0) {
    sim_.schedule(spec.startupLatency,
                  [this, f = std::move(flow)]() mutable { activate(std::move(f)); });
  } else {
    activate(std::move(flow));
  }
  return id;
}

void FlowNetwork::activate(ActiveFlow flow) {
  flow.lastUpdate = sim_.now();
  if (flow.remaining <= kByteEpsilon) {
    // Zero-byte flow: completes as soon as its startup latency elapsed.
    if (tel_ && flow.spanIdx != telemetry::kNoSpan) tel_->endSpan(flow.spanIdx, sim_.now());
    FlowCompletion done{flow.id, flow.totalBytes * flow.members, flow.members, flow.startTime,
                        sim_.now()};
    auto cb = std::move(flow.onComplete);
    if (cb) cb(done);
    return;
  }
  const FlowId id = flow.id;
  active_.emplace(id, std::move(flow));
  advanceProgress();
  rebalance();
}

std::uint32_t FlowNetwork::bottleneckStage(telemetry::Telemetry& tel, const ActiveFlow& f) const {
  if (f.bottleneck == kFrozenByCap) return tel.stageId("stream-cap");
  if (f.bottleneck == kFrozenByNone || f.bottleneck >= links_.size()) {
    return tel.stageId("unconstrained");
  }
  return tel.stageForLink(f.bottleneck, links_[f.bottleneck].name);
}

void FlowNetwork::advanceProgress() {
  const SimTime now = sim_.now();
  // One enabled-check per pass; `tel` stays null on the common path so
  // the loop body carries a single dead branch when telemetry is off.
  telemetry::Telemetry* tel = (tel_ && tel_->enabled()) ? tel_ : nullptr;
  for (auto& [id, f] : active_) {
    const SimTime dt = now - f.lastUpdate;
    if (dt > 0.0 && f.rate > 0.0) {
      // Per-member progress; links carry the aggregate (x members — exact
      // x1.0 for singletons, so the legacy path is bit-identical).
      const double moved = std::min(f.remaining, f.rate * dt);
      f.remaining -= moved;
      const double carried = moved * static_cast<double>(f.members);
      for (LinkId lid : f.route) links_[lid.value].bytesCarried += carried;
      if (tel && f.spanIdx != telemetry::kNoSpan) {
        tel->accrue(f.spanIdx, bottleneckStage(*tel, f), dt, carried);
      }
    }
    f.lastUpdate = now;
  }
}

void FlowNetwork::computeMaxMinRates() {
  // Signature ordering for the hierarchical solve: flows with the same
  // route, per-member rate cap and per-member weight are interchangeable
  // to progressive filling, so they solve as one group. Doubles compare
  // by bit pattern — the group key must be exact, not tolerant.
  const auto sameSignature = [](const ActiveFlow* a, const ActiveFlow* b) {
    return a->route == b->route &&
           std::bit_cast<std::uint64_t>(a->rateCap) == std::bit_cast<std::uint64_t>(b->rateCap) &&
           std::bit_cast<std::uint64_t>(a->weight) == std::bit_cast<std::uint64_t>(b->weight);
  };
  const auto signatureLess = [](const ActiveFlow* a, const ActiveFlow* b) {
    if (a->route != b->route) {
      return std::lexicographical_compare(
          a->route.begin(), a->route.end(), b->route.begin(), b->route.end(),
          [](LinkId x, LinkId y) { return x.value < y.value; });
    }
    const auto capA = std::bit_cast<std::uint64_t>(a->rateCap);
    const auto capB = std::bit_cast<std::uint64_t>(b->rateCap);
    if (capA != capB) return capA < capB;
    return std::bit_cast<std::uint64_t>(a->weight) < std::bit_cast<std::uint64_t>(b->weight);
  };

  // Hierarchical weighted progressive filling: flows sharing a signature
  // (route, per-member cap, per-member weight) are interchangeable, so
  // they fill as ONE group whose link weight is `weight x members`. This
  // is what makes a flow class of N members byte-identical to N
  // coexisting singleton flows: both present the same group to the
  // solver, the same per-unit-weight deltas come out, and the analytic
  // within-group split is "every member gets weight x delta".
  std::vector<double> headroom(links_.size());
  std::vector<double> unfrozenWeightOnLink(links_.size(), 0.0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    headroom[i] = links_[i].capacity * links_[i].health;
  }

  std::vector<ActiveFlow*> flows;
  flows.reserve(active_.size());
  for (auto& [id, f] : active_) {
    f.rate = 0.0;
    f.bottleneck = kFrozenByNone;
    flows.push_back(&f);
  }
  // Deterministic iteration independent of hash-map order: signature
  // first (so groups are contiguous), flow id within a signature.
  std::sort(flows.begin(), flows.end(),
            [&sameSignature, &signatureLess](const ActiveFlow* a, const ActiveFlow* b) {
              if (!sameSignature(a, b)) return signatureLess(a, b);
              return a->id < b->id;
            });

  // One solver entry per signature group. `rate` is per member; `weight`
  // (= per-member weight x total members) is the group's claim on links.
  struct Group {
    ActiveFlow* rep = nullptr;  // lowest-id member (route/cap/weight source)
    std::size_t first = 0;      // [first, last) range in `flows`
    std::size_t last = 0;
    double weight = 0.0;        // per-member weight x members
    double rate = 0.0;          // per member
    std::uint32_t bottleneck = kFrozenByNone;
  };
  std::vector<Group> groups;
  groups.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size();) {
    std::size_t j = i;
    std::uint64_t members = 0;
    ActiveFlow* rep = flows[i];
    while (j < flows.size() && sameSignature(flows[i], flows[j])) {
      members += flows[j]->members;
      if (flows[j]->id < rep->id) rep = flows[j];
      ++j;
    }
    Group g;
    g.rep = rep;
    g.first = i;
    g.last = j;
    g.weight = rep->weight * static_cast<double>(members);
    groups.push_back(g);
    i = j;
  }
  // Fill in ascending lowest-member-id order — for all-singleton sets
  // this is exactly the legacy per-flow id order.
  std::sort(groups.begin(), groups.end(),
            [](const Group& a, const Group& b) { return a.rep->id < b.rep->id; });
  for (const Group& g : groups) {
    for (LinkId lid : g.rep->route) unfrozenWeightOnLink[lid.value] += g.weight;
  }

  std::vector<bool> frozen(groups.size(), false);
  std::size_t unfrozen = groups.size();

  // Each round freezes at least one group, so rounds are bounded; guard
  // against regressions that would otherwise spin silently.
  std::size_t rounds = 0;
  const std::size_t maxRounds = groups.size() + links_.size() + 2;

  while (unfrozen > 0) {
    if (++rounds > maxRounds) {
      throw std::logic_error("FlowNetwork: progressive filling failed to converge");
    }
    // Max per-unit-weight increment permitted by links...
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (unfrozenWeightOnLink[i] > 1e-12) {
        delta = std::min(delta, headroom[i] / unfrozenWeightOnLink[i]);
      }
    }
    // ... and by per-member caps (each member gains weight*delta per step).
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (!frozen[i]) {
        delta = std::min(delta, (groups[i].rep->rateCap - groups[i].rate) / groups[i].rep->weight);
      }
    }
    if (!std::isfinite(delta)) {
      // No route constraints at all: every unfrozen group is capped only
      // by its rateCap, which must be infinite here. Treat as unbounded —
      // physically this means "completes at startup latency"; give them a
      // huge but finite rate so completion times stay representable.
      delta = 1e18;
    }
    if (delta < 0.0) delta = 0.0;

    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (frozen[i]) continue;
      const double gain = delta * groups[i].rep->weight;  // per member
      groups[i].rate += gain;
      const double claimed = delta * groups[i].weight;  // whole group
      for (LinkId lid : groups[i].rep->route) headroom[lid.value] -= claimed;
    }

    // Freeze: capped groups first, then groups crossing a saturated link.
    std::size_t newlyFrozen = 0;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (frozen[i]) continue;
      bool freeze = groups[i].rate >= groups[i].rep->rateCap - 1e-12;
      if (freeze) {
        groups[i].bottleneck = kFrozenByCap;
      } else {
        for (LinkId lid : groups[i].rep->route) {
          if (headroom[lid.value] <=
              1e-9 * links_[lid.value].capacity * links_[lid.value].health + 1e-12) {
            freeze = true;
            groups[i].bottleneck = lid.value;
            break;
          }
        }
      }
      if (freeze) {
        frozen[i] = true;
        ++newlyFrozen;
        for (LinkId lid : groups[i].rep->route) unfrozenWeightOnLink[lid.value] -= groups[i].weight;
      }
    }
    unfrozen -= newlyFrozen;
    if (newlyFrozen == 0) {
      // delta == 0 with nothing to freeze can only happen on degenerate
      // zero-capacity links; freeze everything to guarantee termination.
      for (std::size_t i = 0; i < groups.size(); ++i) {
        if (!frozen[i]) {
          frozen[i] = true;
          for (LinkId lid : groups[i].rep->route) {
            unfrozenWeightOnLink[lid.value] -= groups[i].weight;
          }
        }
      }
      unfrozen = 0;
    }
  }

  // Within-group split: every member flow of a group runs at the group's
  // per-member rate with the group's bottleneck attribution.
  for (const Group& g : groups) {
    for (std::size_t i = g.first; i < g.last; ++i) {
      flows[i]->rate = g.rate;
      flows[i]->bottleneck = g.bottleneck;
    }
  }
}

void FlowNetwork::rebalance() {
  {
    probe::SelfProfiler::Scope scope(sim_.profiler(), probe::SelfProfiler::Bucket::Solve);
    computeMaxMinRates();
  }
  if (probe::FlightRecorder* rec = sim_.recorder()) {
    rec->record(sim_.now(), probe::RecordKind::NetRebalance,
                static_cast<std::uint32_t>(active_.size()), static_cast<double>(rerates_));
  }
  const SimTime now = sim_.now();
  for (auto& [id, f] : active_) {
    if (f.rate <= 0.0) {
      // Stalled flow (zero-capacity path): leave it unscheduled; a later
      // rebalance schedules the completion once capacity appears.
      if (f.completionEvent.valid()) {
        sim_.cancel(f.completionEvent);
        f.completionEvent = EventId{};
        f.scheduledEta = -1.0;
        f.etaDrift = 0.0;
      }
      continue;
    }
    // Re-time the completion event at the new rate.
    const Seconds eta = f.remaining / f.rate;
    const SimTime newCompletion = now + eta;
    if (f.completionEvent.valid()) {
      // Skip churn if completion time barely moved — but account the
      // skipped correction, and re-anchor once the accrued drift leaves
      // its budget, so many small rebalances cannot compound error.
      const double scale = std::max(1.0, std::fabs(eta));
      const double drift = std::fabs(eta - (f.scheduledEta - now));
      if (drift <= kRateHysteresis * scale && f.etaDrift + drift <= kEtaDriftBudget * scale) {
        f.etaDrift += drift;
        continue;
      }
      ++f.rateEpoch;
      ++rerates_;
      f.scheduledEta = newCompletion;
      f.etaDrift = 0.0;
      sim_.adjustKey(f.completionEvent, newCompletion);
      continue;
    }
    const FlowId fid = id;
    ++f.rateEpoch;
    ++rerates_;
    f.scheduledEta = newCompletion;
    f.etaDrift = 0.0;
    f.completionEvent = sim_.scheduleAt(newCompletion, [this, fid] { finish(fid); });
  }
}

void FlowNetwork::finish(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  advanceProgress();
  if (it->second.remaining > 1.0) {
    // Defensive: floating-point drift left real bytes outstanding. Clear
    // the fired event handle and let rebalance() schedule a fresh one.
    it->second.completionEvent = EventId{};
    it->second.scheduledEta = -1.0;
    it->second.etaDrift = 0.0;
    rebalance();
    return;
  }
  ActiveFlow f = std::move(it->second);
  active_.erase(it);
  // Account any residue (float rounding) as carried.
  if (f.remaining > 0.0) {
    const double residue = f.remaining * static_cast<double>(f.members);
    for (LinkId lid : f.route) links_[lid.value].bytesCarried += residue;
    f.remaining = 0.0;
  }
  if (tel_ && f.spanIdx != telemetry::kNoSpan) tel_->endSpan(f.spanIdx, sim_.now());
  FlowCompletion done{f.id, f.totalBytes * f.members, f.members, f.startTime, sim_.now()};
  rebalance();
  if (f.onComplete) f.onComplete(done);
}

Bandwidth FlowNetwork::flowRate(FlowId id) const {
  const auto it = active_.find(id);
  if (it == active_.end()) return 0.0;
  return it->second.rate * static_cast<double>(it->second.members);
}

std::uint64_t FlowNetwork::activeMembers() const {
  std::uint64_t total = 0;
  for (const auto& [id, f] : active_) total += f.members;
  return total;
}

std::vector<LinkStats> FlowNetwork::linkStats() const {
  std::vector<LinkStats> out;
  out.reserve(links_.size());
  std::vector<Bandwidth> alloc(links_.size(), 0.0);
  for (const auto& [id, f] : active_) {
    const double aggregate = f.rate * static_cast<double>(f.members);
    for (LinkId lid : f.route) alloc[lid.value] += aggregate;
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    // Report the *effective* capacity so degraded links show up in
    // utilization snapshots; identical to the configured capacity when
    // healthy (capacity * 1.0 is exact).
    out.push_back(LinkStats{links_[i].name, links_[i].capacity * links_[i].health,
                            links_[i].latency, alloc[i], links_[i].bytesCarried});
  }
  return out;
}

}  // namespace hcsim
