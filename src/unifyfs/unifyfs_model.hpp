#pragma once
// UnifyFsModel — a user-level burst-buffer file system in the style of
// UnifyFS (paper §I cites it, with VAST, as the other "highly
// configurable" storage system: "allows users to configure the data
// management policy, such as the number of dedicated I/O servers and the
// data placement strategy").
//
// Semantics modelled:
//  * writes land in node-local storage (shared memory up to `shmemBytes`,
//    spilling to the local SSD) — checkpoints run at near-local speed;
//  * the data placement policy is configurable:
//      - LocalFirst: a process's data stays on its own node; reads from
//        another node must cross the fabric to the owner;
//      - Striped: writes are spread round-robin over all job nodes;
//        any reader pulls (N-1)/N of its bytes remotely — slower writes,
//        balanced reads;
//  * a distributed key-value store resolves extents (per-op metadata
//    latency);
//  * `flush()` laminates and persists everything to a backing parallel
//    file system model (e.g. GPFS), as unifyfs-stage does.

#include <memory>
#include <unordered_map>

#include "cache/writeback_buffer.hpp"
#include "device/ssd.hpp"
#include "fs/storage_base.hpp"

namespace hcsim {

enum class UnifyFsPlacement { LocalFirst, Striped };

const char* toString(UnifyFsPlacement p);

struct UnifyFsConfig {
  std::string name = "UnifyFS";

  // Node-local media.
  SsdSpec spillDevice = SsdSpec::samsung970Pro();
  std::size_t spillDevicesPerNode = 1;
  Bytes shmemBytes = 4 * units::GiB;      ///< unifyfs_logio shmem segment
  Bandwidth memoryBandwidth = units::gbs(24.0);

  // Service.
  UnifyFsPlacement placement = UnifyFsPlacement::LocalFirst;
  std::size_t serverThreadsPerNode = 4;   ///< margo RPC handlers
  /// Throughput one server thread sustains serving remote reads; local
  /// I/O bypasses the server (shmem log access).
  Bandwidth serverThreadBandwidth = units::gbs(0.6);
  Seconds metadataLatency = units::usec(40);  ///< KV extent lookup
  Seconds localRpcLatency = units::usec(8);   ///< shmem ipc
  Seconds remoteRpcLatency = units::usec(30); ///< margo over fabric

  Bytes capacityPerNode = units::TB;

  void validate() const;
};

class UnifyFsModel final : public StorageModelBase {
 public:
  UnifyFsModel(Simulator& sim, Topology& topo, UnifyFsConfig config,
               std::vector<LinkId> clientNics, std::uint64_t rngSeed = 0x0f5ull);

  const UnifyFsConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;
  Bytes totalCapacity() const override {
    return cfg_.capacityPerNode * clientNodeCount();
  }

  /// Flush (laminate + persist) `bytes` per node to the backing store;
  /// `done` fires when the slowest node finishes. Models unifyfs-stage.
  void flushToBackingStore(FileSystemModel& backing, Bytes bytesPerNode,
                           std::function<void()> done);

 protected:
  void onPhaseChange() override;

 private:
  struct NodeState {
    LinkId deviceLink{};  ///< local log device (shmem-fronted SSD)
    LinkId serverLink{};  ///< margo server: remote requests only
    std::unique_ptr<WritebackBuffer> shmem;
  };
  NodeState& nodeState(std::uint32_t node);
  void configureNode(NodeState& st);

  UnifyFsConfig cfg_;
  SsdArray spill_;
  std::unordered_map<std::uint32_t, NodeState> nodes_;
};

}  // namespace hcsim
