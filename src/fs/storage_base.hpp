#pragma once
// StorageModelBase — plumbing shared by the VAST/GPFS/Lustre/NVMe models:
// simulator + topology references, per-compute-node client NIC links, the
// current phase, and the flow-launch helper that converts an IoRequest
// into a rate-capped flow over a route.

#include <memory>
#include <string>
#include <vector>

#include "device/device_queue.hpp"
#include "fs/file_system_model.hpp"
#include "fs/model_support.hpp"
#include "net/topology.hpp"
#include "util/random.hpp"

namespace hcsim {

class StorageModelBase : public FileSystemModel {
 public:
  StorageModelBase(Simulator& sim, Topology& topo, std::string name,
                   std::vector<LinkId> clientNics, std::uint64_t rngSeed);

  const std::string& name() const override { return name_; }

  void beginPhase(const PhaseSpec& phase) override;
  void endPhase() override;

  /// Shared metadata-path implementation (see configureMetadataPath).
  /// Each op pays the client round trip, then queues at one of the
  /// metadata servers; shared-directory ops serialize on one server and
  /// pay a lock penalty.
  void submitMeta(const MetaRequest& req, IoCallback cb) override;

  const PhaseSpec& phase() const { return phase_; }
  bool inPhase() const { return inPhase_; }

  /// Export the shared metadata-path state ("<name>.meta.*"). Subclass
  /// overrides call this and add their own "<name>.*" metrics.
  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

  /// Route launchTransfer flows through `fabric` (nullptr detaches).
  /// With no fabric attached the launch path is byte-identical to a
  /// build without hcsim::transport.
  void setTransport(transport::TransportFabric* fabric) override { fabric_ = fabric; }
  transport::TransportFabric* transport() const { return fabric_; }

  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  Topology& topology() { return topo_; }
  const Topology& topology() const { return topo_; }

 protected:
  /// NIC link of compute node `node` (wraps around if more nodes are used
  /// than NICs were wired — callers should size clientNics correctly).
  LinkId clientNic(std::uint32_t node) const;
  std::size_t clientNodeCount() const { return clientNics_.size(); }

  /// Launch one transfer: `bytes` over `route`, with per-flow ceiling
  /// `streamCap` (infinity = none) degraded by `perOpOverhead` of dead
  /// time per underlying operation (the request carries `ops` operations
  /// of size bytes/ops each). The cap is multiplied by req.streams and by
  /// `streamScale` — a split request (e.g. the cache-hit portion of a
  /// read) passes its byte fraction so the portions share, not double,
  /// the per-process ceiling. req.members > 1 launches a flow class:
  /// `bytes` per member under the per-member cap, with `members` fair
  /// shares of contended links (hcsim::scale). Completion invokes `cb`
  /// with an IoResult carrying the aggregate bytes.
  void launchTransfer(const IoRequest& req, Bytes bytes, const Route& route, Bandwidth streamCap,
                      Seconds perOpOverhead, Seconds startupLatency, IoCallback cb,
                      double streamScale = 1.0);

  /// Hook for subclasses: reconfigure pattern-dependent link capacities.
  virtual void onPhaseChange() = 0;

  /// Configure the N-1 shared-file penalty applied by launchTransfer to
  /// requests with `sharedFile` set: `lockLatency` extra dead time per
  /// op plus a multiplicative `efficiency` (<= 1) on the stream cap.
  /// Defaults are zero-cost (models without byte-range locking).
  void configureSharedFilePenalty(Seconds lockLatency, double efficiency);

  /// Shrink/grow the active metadata-server prefix (failure injection).
  /// Ops route over servers [0, n); queues stay alive so in-flight
  /// operations complete safely. Clamped to [1, configured servers].
  void setActiveMetadataServers(std::size_t n);
  std::size_t activeMetadataServers() const {
    return metaActive_ ? metaActive_ : metaQueues_.size();
  }

  /// Set up the metadata service: `servers` parallel single-server
  /// queues, `serviceTime` per op, reached after `clientLatency`.
  /// Shared-directory ops all land on server 0 and take
  /// `sharedDirPenalty` x serviceTime (directory lock ping-pong).
  /// Subclass constructors call this once; until then submitMeta
  /// completes after clientLatency only.
  void configureMetadataPath(std::size_t servers, Seconds serviceTime, Seconds clientLatency,
                             double sharedDirPenalty = 2.0);

  Rng& rng() { return rng_; }

 private:
  Simulator& sim_;
  Topology& topo_;
  std::string name_;
  std::vector<LinkId> clientNics_;
  transport::TransportFabric* fabric_ = nullptr;
  Rng rng_;
  PhaseSpec phase_{};
  bool inPhase_ = false;

  // Metadata path.
  std::vector<std::unique_ptr<DeviceQueue>> metaQueues_;
  std::size_t metaActive_ = 0;  // 0 = all configured servers
  Seconds metaServiceTime_ = 0.0;
  Seconds metaClientLatency_ = 0.0;
  double metaSharedDirPenalty_ = 1.0;

  // N-1 shared-file penalty.
  Seconds sharedFileLockLatency_ = 0.0;
  double sharedFileEfficiency_ = 1.0;
};

}  // namespace hcsim
