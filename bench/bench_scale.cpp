// Flow-class aggregation throughput: the same open-loop scenario at
// widening members-per-class, pinning the property the scale subsystem
// exists for — wall cost and event footprint track the CLASS count
// while the CLIENT count grows by orders of magnitude. Reports class
// ops simulated per wall second (the number the check.sh perf gate
// floors against BENCH_scale.json) plus the engine's peak pending
// events as flat-memory evidence.
//
//   bench_scale                        human-readable table
//   bench_scale --hcsim_json OUT      write machine-readable results
//   bench_scale --hcsim_compare REF   fail (exit 1) when any scenario's
//       [--hcsim_max_regress 0.30]    wall class-ops/sec drops below
//                                     REF * (1 - tolerance)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/openloop_source.hpp"
#include "workload/workload_runner.hpp"

using namespace hcsim;

namespace {

struct Scenario {
  std::string name;
  std::size_t classes = 0;
  std::size_t membersPerClass = 0;
};

struct ScaleResult {
  Scenario scenario;
  workload::WorkloadOutcome outcome;
  std::size_t peakPending = 0;
  double wallSec = 0.0;

  std::uint64_t classOps() const {
    return outcome.clientsPerRank > 0 ? outcome.opsCompleted / outcome.clientsPerRank : 0;
  }
  double wallClassOpsPerSec() const {
    return wallSec > 0.0 ? static_cast<double>(classOps()) / wallSec : 0.0;
  }
};

/// Same class count, members spanning 1 -> ~1M clients: the wall rate
/// must stay flat. The last row widens the class count too (the demo
/// shape of `hcsim scale`).
std::vector<Scenario> scenarios() {
  return {
      {"classes64_x1", 64, 1},
      {"classes64_x1k", 64, 1000},
      {"classes64_x16k", 64, 15625},   // 1,000,000 clients
      {"classes256_x4k", 256, 3907},   // ~1,000,000 clients, demo shape
  };
}

ScaleResult runOne(const Scenario& sc) {
  workload::OpenLoopConfig cfg;
  cfg.clients = sc.classes;
  cfg.clientsPerRank = sc.membersPerClass;
  cfg.clientsPerNode = 8;
  cfg.ratePerClientHz = 5.0;
  cfg.horizonSec = 5.0;
  cfg.seed = 0x5ca1eull;

  // Best-of-3: wall-clock rates on a shared machine are noisy; the
  // fastest repetition is the closest to the machine's true capability
  // (the same run simulates identical events every time).
  ScaleResult r;
  r.scenario = sc;
  for (int rep = 0; rep < 3; ++rep) {
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, cfg.nodes(), nullptr);
    workload::OpenLoopSource source(cfg);
    workload::WorkloadRunner runner(*env.bench, *env.fs);
    const auto t0 = std::chrono::steady_clock::now();
    workload::WorkloadOutcome out = runner.run(source);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rep == 0 || wall < r.wallSec) {
      r.outcome = std::move(out);
      r.peakPending = env.bench->sim().peakPendingEvents();
      r.wallSec = wall;
    }
  }
  return r;
}

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "bench_scale: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int compareAgainst(const std::vector<ScaleResult>& results, const std::string& refPath,
                   double maxRegress) {
  JsonValue ref;
  if (!parseJson(readFileOrDie(refPath), ref)) {
    std::cerr << "bench_scale: " << refPath << " is not valid JSON\n";
    return 2;
  }
  const JsonValue* scens = ref.find("scenarios");
  if (scens == nullptr || !scens->isObject()) {
    std::cerr << "bench_scale: " << refPath << " has no \"scenarios\" object\n";
    return 2;
  }
  int failures = 0;
  for (const ScaleResult& r : results) {
    const JsonValue* entry = scens->find(r.scenario.name);
    const JsonValue* rate = entry != nullptr ? entry->find("wall_class_ops_per_sec") : nullptr;
    if (rate == nullptr || rate->number() == nullptr) {
      std::cout << "perf skip " << r.scenario.name << ": no reference rate\n";
      continue;
    }
    const double floor = *rate->number() * (1.0 - maxRegress);
    if (r.wallClassOpsPerSec() < floor) {
      std::cerr << "PERF FAIL " << r.scenario.name << ": wall_class_ops_per_sec "
                << r.wallClassOpsPerSec() << " < floor " << floor << " (ref " << *rate->number()
                << ", tolerance " << maxRegress * 100.0 << "%)\n";
      ++failures;
    } else {
      std::cout << "perf ok " << r.scenario.name << ": wall_class_ops_per_sec "
                << r.wallClassOpsPerSec() << " vs ref " << *rate->number() << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

void writeJsonOut(const std::vector<ScaleResult>& results, const std::string& path) {
  JsonObject scens;
  for (const ScaleResult& r : results) {
    JsonObject s;
    s["classes"] = static_cast<double>(r.outcome.ranks);
    s["clients"] = static_cast<double>(r.outcome.clientsTotal());
    s["class_ops"] = static_cast<double>(r.classOps());
    s["client_ops"] = static_cast<double>(r.outcome.opsCompleted);
    s["goodput_gbs"] = r.outcome.goodputGBs();
    s["peak_pending_events"] = static_cast<double>(r.peakPending);
    s["wall_class_ops_per_sec"] = r.wallClassOpsPerSec();
    scens[r.scenario.name] = JsonValue(std::move(s));
  }
  JsonObject doc;
  doc["schema"] = std::string("hcsim-bench-scale-v1");
  doc["scenarios"] = JsonValue(std::move(scens));
  std::ofstream f(path, std::ios::trunc);
  f << writeJson(JsonValue(std::move(doc)), 2) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut;
  std::string compareRef;
  double maxRegress = 0.30;
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag, std::string& dst) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::cerr << "bench_scale: " << flag << " needs a value\n";
        std::exit(2);
      }
      dst = argv[++i];
      return true;
    };
    if (takeValue("--hcsim_json", jsonOut) || takeValue("--hcsim_compare", compareRef)) continue;
    std::string tol;
    if (takeValue("--hcsim_max_regress", tol)) {
      maxRegress = std::stod(tol);
      continue;
    }
    std::cerr << "bench_scale: unknown option " << argv[i] << "\n";
    return 2;
  }

  std::vector<ScaleResult> results;
  for (const Scenario& sc : scenarios()) results.push_back(runOne(sc));

  ResultTable t("flow-class aggregation (open-loop, Lassen/VAST, 5 s horizon)");
  t.setHeader({"scenario", "classes", "clients", "class ops", "GB/s", "peak events", "wall s",
               "class ops/s"});
  for (const ScaleResult& r : results) {
    t.addRow({r.scenario.name, static_cast<double>(r.outcome.ranks),
              static_cast<double>(r.outcome.clientsTotal()), static_cast<double>(r.classOps()),
              r.outcome.goodputGBs(), static_cast<double>(r.peakPending), r.wallSec,
              r.wallClassOpsPerSec()});
  }
  std::cout << t.toString();

  if (!jsonOut.empty()) {
    writeJsonOut(results, jsonOut);
    std::cout << "wrote " << jsonOut << "\n";
  }
  if (!compareRef.empty()) return compareAgainst(results, compareRef, maxRegress);
  return 0;
}
