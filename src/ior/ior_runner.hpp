#pragma once
// IorRunner — drives an IorConfig against a FileSystemModel on a
// TestBench and reports aggregate bandwidth the way IOR does
// (total bytes / wall time of the slowest rank), summarized over
// repetitions.

#include <vector>

#include "cluster/deployments.hpp"
#include "fs/file_system_model.hpp"
#include "ior/ior_config.hpp"
#include "trace/trace_log.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace hcsim {

struct IorResult {
  Summary bandwidth;             ///< bytes/sec across repetitions
  std::vector<double> samples;   ///< per-repetition bandwidth
  Bytes totalBytes = 0;          ///< per repetition
  Seconds meanElapsed = 0.0;
  /// Per-operation latency distribution (seconds) of the first
  /// repetition — populated in PerOp mode only (the mode where
  /// individual operations exist); count == 0 otherwise.
  Summary opLatency;
};

class IorRunner {
 public:
  IorRunner(TestBench& bench, FileSystemModel& fs) : bench_(bench), fs_(fs) {}

  /// Record app-level read/write events ("ior.read"/"ior.write", pid =
  /// issuing node, tid = channel slot) into `log` while running. Pass
  /// nullptr (the default) to disable.
  void setTraceLog(TraceLog* log) { trace_ = log; }

  /// Run the benchmark (repetitions included) to completion.
  IorResult run(const IorConfig& cfg);

 private:
  struct RunOutcome {
    Seconds elapsed = 0.0;
    Bytes bytes = 0;  ///< bytes actually moved (less than the config's
                      ///< total when stonewalling cut the run short)
    std::vector<double> opLatencies;  ///< PerOp mode: per-op elapsed
  };
  /// One simulated benchmark run, delegated to workload::IorSource +
  /// workload::WorkloadRunner.
  RunOutcome runOnce(const IorConfig& cfg);

  TestBench& bench_;
  FileSystemModel& fs_;
  TraceLog* trace_ = nullptr;
};

}  // namespace hcsim
