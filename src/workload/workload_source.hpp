#pragma once
// WorkloadSource — the CODES-style workload-method interface (ROADMAP
// item 3): one pull API between workload generators and the generic
// WorkloadRunner, so a new generator multiplies scenario diversity
// without touching any storage model or runner mechanics.
//
// A source is a deterministic per-rank op-stream state machine:
//
//  * `load(ctx)` is called once before the run and returns the plan —
//    how many ranks exist, the FileSystemModel phase declaration, and
//    how the runner should drive the stream (closed chains vs open-loop
//    arrivals).
//  * `next(rank, out)` yields the rank's next typed op (read/write as a
//    full IoRequest, open/sync as a MetaRequest, compute-delay,
//    barrier), `Wait` when the rank is blocked on in-flight completions
//    (pipelines, chains), or `End` when the rank is finished.
//  * `onComplete(rank, op, result)` feeds completions back so stateful
//    sources (IOR stonewalling, the DLIO prefetch pipeline) can advance.
//
// The runner calls `next` again after every completion event of the
// rank, so anything expressible as "issue some ops, wait, issue more"
// fits — including the DLIO bounded-prefetch pipeline, whose pump/
// train/checkpoint logic lives entirely in DlioSource.

#include <cstdint>
#include <string>

#include "fs/file_system_model.hpp"
#include "util/units.hpp"

namespace hcsim::workload {

enum class OpKind {
  Io,       ///< read/write: `io` is submitted to the model
  Meta,     ///< open/sync: `meta` goes through submitMeta
  Compute,  ///< pure delay of `compute` seconds on the rank
  Barrier,  ///< park the rank until every live rank reaches a barrier
};

/// One typed operation pulled from a source.
struct WorkloadOp {
  OpKind kind = OpKind::Io;
  IoRequest io{};        ///< kind == Io (client, fileId, offset, size, pattern)
  MetaRequest meta{};    ///< kind == Meta
  Seconds compute = 0.0; ///< kind == Compute
  /// Open-loop mode only: issue this op `arrivalDelay` seconds after the
  /// rank's previous arrival, regardless of completions (Poisson clients).
  Seconds arrivalDelay = 0.0;
  /// Barrier only: when true, the runner switches the model to `phase`
  /// (endPhase + beginPhase) while every rank is parked — how io500
  /// moves from its write phases to its read phases.
  bool switchPhase = false;
  PhaseSpec phase{};
  /// Opaque token echoed back through onComplete (sources use it to
  /// identify which batch/sample/attempt finished).
  std::uint64_t token = 0;
  /// Tracing: when `traced`, the runner records the op into its TraceLog
  /// under `label` with these pid/tid coordinates (Io ops derive their
  /// event kind from io.pattern; Compute records a compute span).
  bool traced = false;
  std::string label;
  std::uint32_t tracePid = 0;
  std::uint32_t traceTid = 0;
};

enum class NextStatus {
  Op,    ///< `out` holds the next op to issue
  Wait,  ///< nothing now; ask again after a completion on this rank
  End,   ///< the rank's stream is exhausted
};

/// How the runner drives the op streams.
enum class DriveMode {
  Closed,  ///< completion-driven: next() after each completion (chains, pipelines)
  Open,    ///< arrival-driven: ops issue at arrivalDelay spacing, never waiting
};

/// What load() hands the source (the model is attached so sources can
/// size channel slots off clientParallelism, as IOR coalescing does;
/// the simulator so stonewall-style sources can pin the phase start).
struct WorkloadContext {
  FileSystemModel* fs = nullptr;
  Simulator* sim = nullptr;
};

struct WorkloadPlan {
  std::size_t ranks = 0;        ///< independent op streams (flow classes)
  DriveMode mode = DriveMode::Closed;
  PhaseSpec phase{};            ///< initial beginPhase declaration
  /// Flow-class aggregation (hcsim::scale): every Io op the runner
  /// issues carries `clientsPerRank` members — each rank stands for
  /// this many statistically identical clients issuing in lockstep.
  /// Aggregate counters (opsIssued/Completed/Failed, bytesMoved) count
  /// members; retries and op latencies are billed once per class.
  /// 1 = the legacy per-client streams, byte-identically.
  std::uint32_t clientsPerRank = 1;
  bool collectOpLatency = false;
  /// Open mode: goodput timeline sampling (0 disables) over the horizon.
  Seconds sampleIntervalSec = 0.0;
  Seconds horizonSec = 0.0;
};

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Generator name ("ior", "grammar", ...) for reports and telemetry.
  virtual const std::string& name() const = 0;

  /// Called once, before beginPhase. May allocate per-rank state.
  virtual WorkloadPlan load(const WorkloadContext& ctx) = 0;

  /// Pull the rank's next op (see NextStatus).
  virtual NextStatus next(std::size_t rank, WorkloadOp& out) = 0;

  /// Completion feedback; `op` is the op as issued. Default: stateless.
  virtual void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
    (void)rank;
    (void)op;
    (void)result;
  }
};

}  // namespace hcsim::workload
