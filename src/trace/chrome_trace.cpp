#include "trace/chrome_trace.hpp"

#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace hcsim {

std::string chromeTraceEventJson(const TraceEvent& e) {
  std::ostringstream os;
  // jsonNumber keeps full precision: ostream's default 6 significant
  // digits would corrupt large microsecond timestamps on round-trip.
  os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\"" << toString(e.kind)
     << "\",\"ph\":\"X\",\"ts\":" << jsonNumber(e.start * 1e6)
     << ",\"dur\":" << jsonNumber(e.duration * 1e6) << ",\"pid\":" << e.pid
     << ",\"tid\":" << e.tid << ",\"args\":{\"bytes\":" << e.bytes << "}}";
  return os.str();
}

std::string toChromeTraceJson(const TraceLog& log) {
  // Streamed emission (traces can be large; building a JsonValue tree
  // would double the memory).
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : log.events()) {
    if (!first) os << ',';
    first = false;
    os << chromeTraceEventJson(e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool writeChromeTrace(const TraceLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << toChromeTraceJson(log);
  return static_cast<bool>(out);
}

}  // namespace hcsim
