// Probe overhead benchmarks: prices the always-on flight-recorder hooks
// and the SLO watchdog evaluation path.
//
// Two modes:
//   (default)              google-benchmark BM_* suite
//   --hcsim_json OUT       machine-readable mode: runs each engine
//                          scenario from engine_scenarios.hpp twice —
//                          recorder detached and recorder attached —
//                          plus a watchdog-evaluation scenario, writes
//                          one JSON document to OUT, and FAILS (exit 1)
//                          when the worst recorder overhead exceeds the
//                          budget. docs/PROBE.md pins the budget.
//     --hcsim_compare REF.json    fail (exit 1) when any per-sec
//                          scenario regresses vs REF beyond tolerance
//     --hcsim_max_regress 0.30    regression tolerance (default 0.30)
//     --hcsim_max_overhead 0.03   recorder-on vs recorder-off budget
//                          (fraction, default 0.03)
//
// BENCH_probe.json at the repo root is the committed reference the
// check.sh perf smoke compares against.

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine_scenarios.hpp"
#include "probe/flight_recorder.hpp"
#include "probe/monitor.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

using namespace hcsim;

void BM_RecorderRecord(benchmark::State& state) {
  probe::FlightRecorder rec;
  double t = 0.0;
  for (auto _ : state) {
    rec.record(t, probe::RecordKind::EngineHeartbeat, 7, 1.0);
    t += 1e-6;
    benchmark::DoNotOptimize(rec.totalRecorded());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RecorderRecord);

void BM_SimulatorRunWithRecorder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool attach = state.range(1) != 0;
  for (auto _ : state) {
    probe::FlightRecorder rec;
    Simulator sim;
    if (attach) sim.setRecorder(&rec);
    Rng rng(42);
    for (std::size_t i = 0; i < n; ++i) sim.schedule(rng.uniform(), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsDispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorRunWithRecorder)->Args({100000, 0})->Args({100000, 1});

void BM_WatchdogObserveSlice(benchmark::State& state) {
  std::vector<probe::MonitorSpec> specs(2);
  specs[0].name = "floor";
  specs[0].metric = probe::MonitorMetric::GoodputGBs;
  specs[0].min = 0.5;
  specs[0].windowSec = 4.0;
  specs[1].name = "stall";
  specs[1].metric = probe::MonitorMetric::StallSec;
  specs[1].max = 10.0;
  probe::WatchdogSet dog(specs);
  double t = 0.0;
  for (auto _ : state) {
    dog.observeSlice(t, t + 1.0, 1.0);
    t += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WatchdogObserveSlice);

// ---------------------------------------------------------------------------
// Machine-readable mode (check.sh perf smoke + overhead gate).

JsonValue scenarioJson(const benchscn::ScenarioResult& r, const char* perSecKey) {
  JsonObject o;
  o["work_units"] = r.workUnits;
  o["seconds"] = r.seconds;
  o[perSecKey] = r.perSec();
  return JsonValue(std::move(o));
}

struct OverheadPair {
  benchscn::ScenarioResult off;
  benchscn::ScenarioResult on;
  /// Fractional slowdown of the recorder-attached run (clamped at 0: a
  /// faster "on" run is noise, not a negative cost).
  double overhead() const {
    if (off.seconds <= 0.0 || on.seconds <= 0.0) return 0.0;
    const double frac = on.seconds / off.seconds - 1.0;
    return frac > 0.0 ? frac : 0.0;
  }
};

benchscn::ScenarioResult runScenarioOnce(const char* name, probe::FlightRecorder* rec) {
  if (std::strcmp(name, "schedule_heavy") == 0) return benchscn::runScheduleHeavy(400000, 1, rec);
  if (std::strcmp(name, "cancel_heavy") == 0) return benchscn::runCancelHeavy(4096, 200000, 1, rec);
  return benchscn::runRebalanceHeavy(600, 1, rec);
}

/// Alternate single off/on runs and keep the best of each side: host
/// clock drift between two separate timing blocks is larger than the
/// overhead being priced, interleaving cancels it.
OverheadPair runPair(const char* name, std::size_t reps) {
  OverheadPair p;
  probe::FlightRecorder rec;
  for (std::size_t r = 0; r < reps; ++r) {
    const benchscn::ScenarioResult off = runScenarioOnce(name, nullptr);
    const benchscn::ScenarioResult on = runScenarioOnce(name, &rec);
    if (r == 0 || off.seconds < p.off.seconds) p.off = off;
    if (r == 0 || on.seconds < p.on.seconds) p.on = on;
  }
  return p;
}

/// Watchdog evaluation throughput: N timeline slices through a two-
/// monitor set (trailing-window goodput floor + stall ceiling), with a
/// p99 monitor fed one op latency per slice. Work unit = one slice.
benchscn::ScenarioResult runWatchdogEval(std::size_t slices = 400000, std::size_t reps = 3) {
  benchscn::ScenarioResult res;
  res.name = "watchdog_eval";
  res.workUnits = static_cast<double>(slices);
  res.seconds = benchscn::detail::bestOf(reps, [slices] {
    std::vector<probe::MonitorSpec> specs(3);
    specs[0].name = "floor";
    specs[0].metric = probe::MonitorMetric::GoodputGBs;
    specs[0].min = 0.5;
    specs[0].windowSec = 8.0;
    specs[1].name = "stall";
    specs[1].metric = probe::MonitorMetric::StallSec;
    specs[1].max = 30.0;
    specs[2].name = "tail";
    specs[2].metric = probe::MonitorMetric::P99OpLatencySec;
    specs[2].max = 1.0;
    probe::WatchdogSet dog(specs);
    Rng rng(11);
    double t = 0.0;
    for (std::size_t i = 0; i < slices; ++i) {
      dog.observeSlice(t, t + 1.0, 0.9 + 0.2 * rng.uniform());
      dog.observeOpLatency(t, 1e-3 * (1.0 + rng.uniform()));
      t += 1.0;
    }
    dog.finish(t);
    benchmark::DoNotOptimize(dog.breaches().size());
  });
  return res;
}

struct MachineOptions {
  std::string jsonOut;
  std::string compareRef;
  double maxRegress = 0.30;
  double maxOverhead = 0.03;
};

int runMachineMode(const MachineOptions& opt) {
  const char* const kPairs[] = {"schedule_heavy", "cancel_heavy", "rebalance_heavy"};

  benchscn::runScheduleHeavy(400000, 1);  // warmup: page in allocator + code

  JsonObject scenarios;
  JsonObject overheads;
  double worst = 0.0;
  std::string worstName;
  for (const char* name : kPairs) {
    OverheadPair p = runPair(name, 7);
    // One retry with more repetitions before declaring a budget miss:
    // the gate prices a ~1% mechanism with wall clocks, so a single
    // scheduler hiccup must not fail the build.
    if (p.overhead() > opt.maxOverhead) p = runPair(name, 13);
    scenarios[std::string(name) + "_off"] = scenarioJson(p.off, "events_per_sec");
    scenarios[std::string(name) + "_on"] = scenarioJson(p.on, "events_per_sec");
    overheads[name] = p.overhead();
    if (p.overhead() > worst) {
      worst = p.overhead();
      worstName = name;
    }
  }
  scenarios["watchdog_eval"] = scenarioJson(runWatchdogEval(), "slices_per_sec");

  const bool overheadPass = worst <= opt.maxOverhead;
  JsonObject oh;
  oh["per_scenario"] = JsonValue(std::move(overheads));
  oh["worst"] = worst;
  oh["budget"] = opt.maxOverhead;
  oh["pass"] = overheadPass;

  JsonObject doc;
  doc["schema"] = "hcsim-bench-probe-v1";
  doc["scenarios"] = JsonValue(std::move(scenarios));
  doc["recorder_overhead"] = JsonValue(std::move(oh));
  const JsonValue out(std::move(doc));

  {
    std::ofstream f(opt.jsonOut);
    if (!f) {
      std::cerr << "bench_probe: cannot write " << opt.jsonOut << "\n";
      return 2;
    }
    f << writeJson(out) << "\n";
  }

  const JsonValue* sc = out.find("scenarios");
  for (const auto& [name, v] : *sc->object()) {
    std::cout << name << ":";
    for (const char* key : {"events_per_sec", "slices_per_sec"}) {
      if (const JsonValue* p = v.find(key)) std::cout << " " << key << "=" << *p->number();
    }
    std::cout << "\n";
  }
  std::cout << "recorder overhead: worst " << worst * 100.0 << "% (" << worstName
            << "), budget " << opt.maxOverhead * 100.0 << "%\n";

  int failures = 0;
  if (!overheadPass) {
    std::cerr << "PERF FAIL recorder_overhead: " << worstName << " " << worst * 100.0
              << "% > budget " << opt.maxOverhead * 100.0 << "%\n";
    ++failures;
  }

  if (!opt.compareRef.empty()) {
    std::ifstream refFile(opt.compareRef);
    if (!refFile) {
      std::cerr << "bench_probe: cannot read reference " << opt.compareRef << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << refFile.rdbuf();
    JsonValue ref;
    if (!parseJson(buf.str(), ref)) {
      std::cerr << "bench_probe: reference " << opt.compareRef << " is not valid JSON\n";
      return 2;
    }
    const JsonValue* refScen = ref.find("scenarios");
    if (refScen == nullptr || refScen->object() == nullptr) {
      std::cerr << "bench_probe: reference has no scenarios object\n";
      return 2;
    }
    for (const auto& [name, refV] : *refScen->object()) {
      for (const char* key : {"events_per_sec", "slices_per_sec"}) {
        const JsonValue* refRate = refV.find(key);
        if (refRate == nullptr || refRate->number() == nullptr) continue;
        const JsonValue* curScen = sc->find(name);
        const JsonValue* curRate = curScen != nullptr ? curScen->find(key) : nullptr;
        if (curRate == nullptr || curRate->number() == nullptr) {
          std::cerr << "PERF FAIL " << name << ": scenario missing from current run\n";
          ++failures;
          continue;
        }
        const double floor = *refRate->number() * (1.0 - opt.maxRegress);
        if (*curRate->number() < floor) {
          std::cerr << "PERF FAIL " << name << ": " << key << " " << *curRate->number()
                    << " < floor " << floor << " (ref " << *refRate->number() << ", tolerance "
                    << opt.maxRegress * 100.0 << "%)\n";
          ++failures;
        } else {
          std::cout << "perf ok " << name << ": " << key << " " << *curRate->number()
                    << " vs ref " << *refRate->number() << "\n";
        }
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  MachineOptions opt;
  bool machine = false;
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag, std::string& dst) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::cerr << "bench_probe: " << flag << " needs a value\n";
        std::exit(2);
      }
      dst = argv[++i];
      return true;
    };
    std::string num;
    if (takeValue("--hcsim_json", opt.jsonOut)) {
      machine = true;
    } else if (takeValue("--hcsim_compare", opt.compareRef)) {
    } else if (takeValue("--hcsim_max_regress", num)) {
      opt.maxRegress = std::stod(num);
    } else if (takeValue("--hcsim_max_overhead", num)) {
      opt.maxOverhead = std::stod(num);
    }
  }
  if (machine) return runMachineMode(opt);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
