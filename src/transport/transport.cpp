#include "transport/transport.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "probe/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"

namespace hcsim::transport {

TransportFabric::TransportFabric(Simulator& sim, FlowNetwork& net, TransportProfile profile,
                                 probe::FlightRecorder* recorder)
    : sim_(sim), net_(net), profile_(std::move(profile)), recorder_(recorder) {
  profile_.validate();
}

TransportFabric::Endpoint& TransportFabric::endpoint(std::uint32_t node) {
  auto [it, inserted] = endpoints_.try_emplace(node);
  Endpoint& ep = it->second;
  if (inserted) {
    ep.tokens = profile_.burstOps;
    ep.lastRefill = sim_.now();
    ep.lanes.resize(profile_.lanes);
    for (std::size_t i = 0; i < ep.lanes.size(); ++i) {
      ep.lanes[i].subject = probe::clientSubject(node, static_cast<std::uint32_t>(i));
    }
  }
  return ep;
}

void TransportFabric::launch(FlowSpec spec, const IoRequest& req,
                             std::function<void(const FlowCompletion&)> onComplete) {
  const Seconds now = sim_.now();
  Endpoint& ep = endpoint(req.client.node);
  Lane& lane = ep.lanes[req.client.proc % ep.lanes.size()];
  const std::uint64_t opsInFlow = std::max<std::uint64_t>(1, req.ops);

  // Token-bucket op admission. The bucket may go negative (borrowing):
  // the deficit is served at opRate, delaying this posting's first byte.
  ep.tokens = std::min(profile_.burstOps,
                       ep.tokens + (now - ep.lastRefill) * profile_.opRate);
  ep.lastRefill = now;
  ep.tokens -= static_cast<double>(opsInFlow);
  Seconds tbDelay = 0.0;
  if (ep.tokens < 0.0) {
    tbDelay = -ep.tokens / profile_.opRate;
    throttleSec_ += tbDelay;
  }

  // Cold-lane connection setup (analytic: detected by last-use age).
  Seconds setup = 0.0;
  const bool cold = lane.lastUse < 0.0 ||
                    (profile_.idleTimeout > 0.0 && now - lane.lastUse > profile_.idleTimeout);
  if (cold) {
    setup = profile_.connectionSetup;
    ++connSetups_;
  }
  lane.lastUse = now;

  // Doorbell ring + descriptor builds for the first batch; steady-state
  // doorbell cost is amortized inside the rate ceiling below.
  const double firstBatch =
      std::min(static_cast<double>(opsInFlow), profile_.doorbellBatch);
  const Seconds postCost = profile_.doorbellCost + firstBatch * profile_.descCost;
  ++doorbells_;

  // Emergent per-member rate ceiling.
  const std::size_t descs = std::min<std::size_t>(opsInFlow, profile_.sqDepth);
  const double opBytes =
      static_cast<double>(spec.bytes) / static_cast<double>(opsInFlow);
  if (opBytes > 0.0) {
    const Seconds perOp = profile_.perOpCost + profile_.doorbellCost / profile_.doorbellBatch +
                          profile_.perByteCost * opBytes;
    Bandwidth laneRate = perOp > 0.0 ? opBytes / perOp
                                     : std::numeric_limits<Bandwidth>::infinity();
    if (profile_.baseRtt > 0.0) {
      laneRate = std::min(laneRate,
                          static_cast<double>(descs) * opBytes / profile_.baseRtt);
    }
    const double usableLanes = static_cast<double>(
        std::min<std::size_t>(std::max<std::uint32_t>(1, req.streams), profile_.lanes));
    const Bandwidth capTr = std::min(laneRate * usableLanes, profile_.opRate * opBytes);
    spec.rateCap = std::min(spec.rateCap, capTr);
  }
  spec.startupLatency += setup + tbDelay + postCost;

  ops_ += opsInFlow;
  bytes_ += spec.bytes * std::max<std::uint32_t>(1, spec.members);

  Pending p{std::move(spec), descs, std::move(onComplete)};
  if (lane.inFlight == 0 || lane.inFlight + descs <= profile_.sqDepth) {
    admit(lane, std::move(p));
    return;
  }
  // Send queue full: head-of-line blocking behind the occupants.
  ++sqWaits_;
  if (recorder_) {
    recorder_->record(now, probe::RecordKind::TransportStall, lane.subject,
                      static_cast<double>(lane.fifo.size() + 1));
  }
  lane.fifo.push_back(std::move(p));
}

void TransportFabric::admit(Lane& lane, Pending p) {
  lane.inFlight += p.descs;
  const std::size_t descs = p.descs;
  net_.startFlow(p.spec, [this, &lane, descs, cb = std::move(p.onComplete)](
                             const FlowCompletion& done) {
    lane.inFlight -= std::min(lane.inFlight, descs);
    lane.lastUse = sim_.now();
    pump(lane);
    if (cb) cb(done);
  });
}

void TransportFabric::pump(Lane& lane) {
  while (!lane.fifo.empty() &&
         (lane.inFlight == 0 || lane.inFlight + lane.fifo.front().descs <= profile_.sqDepth)) {
    Pending next = std::move(lane.fifo.front());
    lane.fifo.pop_front();
    admit(lane, std::move(next));
  }
}

std::uint64_t TransportFabric::inflightDescriptors() const {
  std::uint64_t total = 0;
  for (const auto& [node, ep] : endpoints_) {
    for (const Lane& lane : ep.lanes) total += lane.inFlight;
  }
  return total;
}

void TransportFabric::exportMetrics(telemetry::MetricsRegistry& reg) const {
  reg.counter("transport.ops_posted", static_cast<double>(ops_));
  reg.counter("transport.bytes_posted", static_cast<double>(bytes_));
  reg.counter("transport.throttle_sec", throttleSec_);
  reg.counter("transport.conn_setups", static_cast<double>(connSetups_));
  reg.counter("transport.sq_waits", static_cast<double>(sqWaits_));
  reg.counter("transport.doorbells", static_cast<double>(doorbells_));
  reg.gauge("transport.lanes", static_cast<double>(profile_.lanes));
  reg.gauge("transport.inflight_descriptors", static_cast<double>(inflightDescriptors()));
}

}  // namespace hcsim::transport
