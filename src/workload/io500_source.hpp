#pragma once
// Io500Source — synthetic workloads shaped like IO500 submissions,
// calibrated to the statistics published from the IO500 "treasure
// trove" analysis (see PAPERS.md): four bandwidth phases run in the
// benchmark's order with barriers between them —
//
//   ior-easy-write  file-per-process, large aligned sequential writes
//                   (the dominant submitted easy transfer is ~1 MiB),
//   ior-hard-write  single shared file, interleaved 47008-byte ops
//                   (the benchmark's fixed hard record size),
//   ior-easy-read   each rank reads its own file back sequentially,
//   ior-hard-read   random 47008-byte reads of the shared file.
//
// Per-rank volumes are drawn seed-deterministically from lognormal
// distributions around the configured medians (submission volumes span
// orders of magnitude; lognormal matches that heavy right tail), so two
// runs with the same seed are identical and `scale` grows the working
// set without changing per-op geometry — which is why bandwidth is
// scale-invariant (the oracle relation pinning this generator).

#include <vector>

#include "util/random.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

struct Io500Config {
  std::size_t nodes = 1;
  std::size_t procsPerNode = 4;
  /// Working-set multiplier: scales per-rank op counts, not op sizes.
  double scale = 1.0;
  std::uint64_t seed = 0x10500ull;
  Bytes easyTransfer = units::MiB;  ///< easy phases' request size
  Bytes hardTransfer = 47008;       ///< IO500's fixed hard record size
  /// Median per-rank op counts at scale 1 (lognormal around these).
  std::uint64_t easyOpsMedian = 32;
  std::uint64_t hardOpsMedian = 128;
  /// Lognormal sigma of the per-rank volume draw (0 = exact medians).
  double volumeSigma = 0.4;

  std::size_t totalRanks() const { return nodes * procsPerNode; }
};

class Io500Source : public WorkloadSource {
 public:
  explicit Io500Source(const Io500Config& cfg) : cfg_(cfg) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override;

 private:
  struct RankState {
    ClientId client{};
    std::uint64_t easyOps = 0;  ///< this rank's per-easy-phase op count
    std::uint64_t hardOps = 0;
    std::size_t phase = 0;  ///< 0 easy-write, 1 hard-write, 2 easy-read, 3 hard-read
    std::uint64_t opIdx = 0;
    Bytes cursor = 0;
    Rng rng;
    bool pending = false;
    bool done = false;
  };

  PhaseSpec phaseSpec(std::size_t phase) const;
  std::uint64_t phaseOps(const RankState& st, std::size_t phase) const {
    return phase == 0 || phase == 2 ? st.easyOps : st.hardOps;
  }

  std::string name_ = "io500";
  Io500Config cfg_;
  std::vector<RankState> ranks_;
  Bytes hardFileBytes_ = 0;  ///< shared-file extent (sum of hard writes)
};

}  // namespace hcsim::workload
