#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hcsim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32; 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveTwoPass) {
  Rng r(17);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-100, 100);
    xs.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (double v : xs) mean += v;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double v : xs) var += (v - mean) * (v - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng r(18);
  RunningStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = r.normal(0, 3);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentileSorted({}, 50), 0.0);
  EXPECT_EQ(percentileSorted({3.0}, 99), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentileSorted(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentileSorted(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentileSorted(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentileSorted(xs, 25), 2.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentileSorted(xs, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentileSorted(xs, 200), 3.0);
}

TEST(Summarize, EmptyVector) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({9.0, 1.0, 5.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
}

TEST(Summarize, PercentileOrderingInvariant) {
  Rng r(19);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(r.uniform());
  const Summary s = summarize(xs);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace hcsim
