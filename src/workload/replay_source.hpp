#pragma once
// ReplaySource — a captured TraceLog re-expressed as a WorkloadSource:
// one rank per traced pid, each a sequential chain of its events in
// start-time order. I/O events are re-issued against the target model
// (their durations become whatever the model says); compute events are
// fixed delays. Malformed records — zero-byte reads/writes, negative
// compute durations — are skipped and counted, the same salvage policy
// trace_import applies to damaged chrome-trace documents, so one bad
// record never aborts a replay.

#include <cstddef>
#include <vector>

#include "replay/trace_replay.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

class ReplaySource : public WorkloadSource {
 public:
  /// `input` must outlive the source (events are referenced, not copied).
  ReplaySource(const TraceLog& input, const ReplayConfig& cfg) : input_(&input), cfg_(cfg) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override;

  /// Malformed op records dropped (skip-and-count salvage).
  std::size_t skippedOps() const { return skipped_; }

 private:
  struct RankState {
    std::uint32_t pid = 0;
    ClientId client{};
    std::vector<const TraceEvent*> events;  // start-time ordered
    std::size_t next = 0;
    std::uint64_t fileCounter = 0;
    bool pending = false;
  };

  std::string name_ = "replay";
  const TraceLog* input_;
  ReplayConfig cfg_;
  std::vector<RankState> ranks_;
  std::size_t skipped_ = 0;
};

}  // namespace hcsim::workload
