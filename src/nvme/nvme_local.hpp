#pragma once
// NodeLocalNvme — Wombat's node-local storage (paper §IV-B): three
// Samsung 970 PRO SSDs per compute node on PCIe Gen3x4, mounted locally.
//
// Behaviours the model encodes:
//  * I/O never crosses the network — each node owns a private device
//    pool, so bandwidth scales embarrassingly with nodes (Fig 2b);
//  * the scalability test allows OS page-cache write-back ("to replicate
//    a realistic user scenario"), absorbing bursts at memory speed until
//    the dirty limit throttles to device rate;
//  * the single-node test fsyncs every write; consumer NVMe pays a
//    multi-ms FLUSH per fsync (no power-loss protection), which is why
//    VAST beats local NVMe by ~5x there (Fig 3d);
//  * remote data must first be copied to the reader (round-robin), which
//    the paper performs as uncounted setup — reads here are local.

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/writeback_buffer.hpp"
#include "device/ssd.hpp"
#include "fs/storage_base.hpp"

namespace hcsim {

struct NvmeLocalConfig {
  std::string name = "NVMe";
  SsdSpec drive = SsdSpec::samsung970Pro();
  std::size_t drivesPerNode = 3;
  Bytes capacityPerDrive = units::TB;

  // OS page cache (write-back) per node.
  Bandwidth memoryBandwidth = units::gbs(30.0);
  /// Dirty throttle threshold (vm.dirty_ratio-style), bytes per node.
  Bytes dirtyLimitBytes = 50 * units::GB;

  /// FLUSH CACHE cost per fsync on a consumer NVMe drive.
  Seconds flushLatency = units::msec(2.5);
  Seconds syscallLatency = units::usec(15);
  /// Local-filesystem metadata op (dentry cache + journal).
  Seconds metadataServiceTime = units::usec(12);
  /// N-1 on a local fs: in-kernel inode lock only.
  Seconds sharedFileLockLatency = units::usec(40);
  double sharedFileEfficiency = 0.95;

  void validate() const;

  /// Wombat's node-local storage as described in the paper.
  static NvmeLocalConfig wombatInstance();
};

class NvmeLocalModel final : public StorageModelBase {
 public:
  NvmeLocalModel(Simulator& sim, Topology& topo, NvmeLocalConfig config,
                 std::vector<LinkId> clientNics, std::uint64_t rngSeed = 0x97095ull);

  const NvmeLocalConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;

  /// Node-local filesystems have no cross-node shared directory: every
  /// metadata op is served by the issuing node's own kernel, so the
  /// shared-directory flag is dropped and ops are spread per node.
  void submitMeta(const MetaRequest& req, IoCallback cb) override;

  Bytes totalCapacity() const override {
    return static_cast<Bytes>(cfg_.drivesPerNode) * cfg_.capacityPerDrive * clientNodeCount();
  }

  /// PCIe-attached local NVMe: an RDMA-class (kernel-bypass-cheap)
  /// endpoint with one lane per drive and a bus-scale RTT.
  transport::TransportProfile declaredTransportProfile() const override;

  /// Declarative fault hook (hcsim::chaos): "drive" (index = node)
  /// fails/degrades/restores a node's whole local pool via link health —
  /// a node-local device has no failover path, so fail-stop strands that
  /// node's I/O (rate 0) until restore.
  bool applyFault(const FaultSpec& f) override;
  std::size_t faultComponentCount(const std::string& component) const override;
  /// Rebuild after a restore: re-copying the node's dataset shard writes
  /// back through the restored node's local pool.
  Route rebuildRoute(const FaultSpec& restored) override;

  // ---- Introspection ----
  Bandwidth nodeWriteCapacity(std::uint32_t node) const;
  Bandwidth nodeReadCapacity(std::uint32_t node) const;

  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

 protected:
  void onPhaseChange() override;

 private:
  struct NodeState {
    LinkId readLink{};
    LinkId writeLink{};
    std::unique_ptr<WritebackBuffer> pageCache;
  };
  NodeState& nodeState(std::uint32_t node);
  void configureNode(NodeState& st);

  /// Effective sync-write pool bandwidth: each op serializes a FLUSH on
  /// its drive.
  Bandwidth syncWriteBandwidth(Bytes reqSize) const;
  /// Effective write bandwidth with write-back for a per-node phase
  /// volume of `perNodeBytes` (0 = unknown -> device rate).
  Bandwidth writebackBandwidth(Bytes perNodeBytes, Bytes reqSize, const NodeState& st) const;

  NvmeLocalConfig cfg_;
  SsdArray pool_;  ///< per-node pool (drivesPerNode devices)
  std::unordered_map<std::uint32_t, NodeState> nodes_;
};

}  // namespace hcsim
