// Ablation: the NFS frontend deployment — the design variable the paper
// identifies as decisive. Holding the Wombat VAST hardware fixed, sweep:
//   (1) transport: TCP vs RDMA
//   (2) nconnect: 1..32 sessions per client
//   (3) gateway link speed for TCP deployments (Quartz/Ruby/Lassen-like)
// Full-node IOR sequential write/read on 4 nodes.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

double runGBs(const VastConfig& cfg, AccessPattern access, std::size_t nodes) {
  TestBench bench(Machine::wombat(), nodes);
  auto fs = bench.attachVast(cfg);
  IorRunner runner(bench, *fs);
  IorConfig ior = IorConfig::scalability(access, nodes, 48);
  return units::toGBs(runner.run(ior).bandwidth.mean);
}

}  // namespace

int main() {
  std::printf("== Ablation: VAST NFS frontend (Wombat hardware, 4 nodes) ==\n\n");

  {
    ResultTable t("Transport: TCP vs RDMA (same appliance)");
    t.setHeader({"transport", "nconnect", "write GB/s", "read GB/s"});
    for (int useRdma = 0; useRdma <= 1; ++useRdma) {
      VastConfig cfg = vastOnWombat();
      if (!useRdma) {
        cfg.name = "VAST-tcp-ablation";
        cfg.transport = NfsTransport::Tcp;
        cfg.nconnect = 1;
        cfg.multipath = false;
        cfg.gateway.present = true;
        cfg.gateway.nodes = 1;
        cfg.gateway.linksPerNode = 2;
        cfg.gateway.linkBandwidth = units::gbps(100);
      }
      t.addRow({std::string(toString(cfg.transport)),
                static_cast<double>(cfg.sessionsPerClient()),
                runGBs(cfg, AccessPattern::SequentialWrite, 4),
                runGBs(cfg, AccessPattern::SequentialRead, 4)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("nconnect sweep (RDMA, multipath)");
    t.setHeader({"nconnect", "write GB/s", "read GB/s"});
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
      VastConfig cfg = vastOnWombat();
      cfg.name = "VAST-nc" + std::to_string(n);
      cfg.nconnect = n;
      t.addRow({static_cast<double>(n), runGBs(cfg, AccessPattern::SequentialWrite, 4),
                runGBs(cfg, AccessPattern::SequentialRead, 4)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("TCP gateway pool sweep (the Lassen/Ruby/Quartz variable)");
    t.setHeader({"gateway pool", "agg Gb/s", "write GB/s", "read GB/s"});
    const struct {
      const char* label;
      std::size_t nodes, links;
      double gbps;
    } pools[] = {
        {"32x 2x1Gb (Quartz-like)", 32, 2, 1},
        {"8x 1x40Gb (Ruby-like)", 8, 1, 40},
        {"1x 2x100Gb (Lassen-like)", 1, 2, 100},
    };
    for (const auto& p : pools) {
      VastConfig cfg = vastOnWombat();
      cfg.name = std::string("VAST-gw-") + std::to_string(p.nodes);
      cfg.transport = NfsTransport::Tcp;
      cfg.nconnect = 1;
      cfg.multipath = false;
      cfg.gateway.present = true;
      cfg.gateway.nodes = p.nodes;
      cfg.gateway.linksPerNode = p.links;
      cfg.gateway.linkBandwidth = units::gbps(p.gbps);
      t.addRow({std::string(p.label),
                static_cast<double>(p.nodes * p.links) * p.gbps,
                runGBs(cfg, AccessPattern::SequentialWrite, 4),
                runGBs(cfg, AccessPattern::SequentialRead, 4)});
    }
    std::printf("%s\n", t.toString().c_str());
  }
  return 0;
}
