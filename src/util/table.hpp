#pragma once
// ResultTable — the output format of every benchmark binary.
//
// Each bench prints the rows/series the paper's table or figure reports;
// ResultTable renders them as an aligned ASCII table and as CSV so the
// series can be re-plotted.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hcsim {

/// A table cell: text or a number (numbers are right-aligned and
/// formatted with a per-table precision).
using Cell = std::variant<std::string, double>;

class ResultTable {
 public:
  explicit ResultTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the column headers; must be called before addRow.
  void setHeader(std::vector<std::string> names);

  /// Append one row; the row is padded/truncated to the header width.
  void addRow(std::vector<Cell> cells);

  /// Number of digits after the decimal point for numeric cells (default 2).
  void setPrecision(int digits) { precision_ = digits; }

  std::size_t rowCount() const { return rows_.size(); }
  std::size_t columnCount() const { return header_.size(); }
  const std::string& title() const { return title_; }

  /// Cell accessor (row-major). Throws std::out_of_range on bad indices.
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Render as an aligned ASCII table.
  std::string toString() const;

  /// Render as CSV (RFC-4180 quoting for text cells containing , or ").
  std::string toCsv() const;

  /// Convenience: stream toString().
  friend std::ostream& operator<<(std::ostream& os, const ResultTable& t);

 private:
  std::string formatCell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

}  // namespace hcsim
