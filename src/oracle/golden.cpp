#include "oracle/golden.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "config/serialize.hpp"
#include "dlio/dlio_config.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/trial_cache.hpp"

namespace hcsim::oracle {

namespace {

sweep::Axis numAxis(std::string path, std::initializer_list<double> vs) {
  sweep::Axis ax;
  ax.path = std::move(path);
  for (double v : vs) ax.values.emplace_back(v);
  return ax;
}

sweep::Axis strAxis(std::string path, std::initializer_list<const char*> vs) {
  sweep::Axis ax;
  ax.path = std::move(path);
  for (const char* v : vs) ax.values.emplace_back(v);
  return ax;
}

GoldenFigure iorFigure(std::string name, std::string title, const char* site,
                       std::initializer_list<const char*> storages,
                       std::initializer_list<double> nodes) {
  GoldenFigure fig;
  fig.name = std::move(name);
  fig.title = std::move(title);
  fig.spec.name = "golden-" + fig.name;
  fig.spec.experiment = "ior";
  JsonObject ior;
  ior["segments"] = 400.0;
  ior["procsPerNode"] = 8.0;
  ior["repetitions"] = 1.0;
  JsonObject base;
  base["site"] = site;
  base["ior"] = JsonValue(std::move(ior));
  fig.spec.base = JsonValue(std::move(base));
  fig.spec.axes.push_back(strAxis("storage", storages));
  fig.spec.axes.push_back(strAxis("ior.access", {"seq-write", "seq-read", "rand-read"}));
  fig.spec.axes.push_back(numAxis("ior.nodes", nodes));
  return fig;
}

GoldenFigure dlioFigure(std::string name, std::string title, const DlioWorkload& workload,
                        double samples, double epochs) {
  GoldenFigure fig;
  fig.name = std::move(name);
  fig.title = std::move(title);
  fig.spec.name = "golden-" + fig.name;
  fig.spec.experiment = "dlio";
  JsonValue w = toJson(workload);
  sweep::jsonPathSet(w, "samples", JsonValue(samples));
  sweep::jsonPathSet(w, "epochs", JsonValue(epochs));
  JsonObject dlio;
  dlio["workload"] = std::move(w);
  dlio["nodes"] = 1.0;
  dlio["procsPerNode"] = 2.0;
  dlio["seed"] = 7.0;
  JsonObject base;
  base["site"] = "lassen";
  base["dlio"] = JsonValue(std::move(dlio));
  fig.spec.base = JsonValue(std::move(base));
  fig.spec.axes.push_back(strAxis("storage", {"vast", "gpfs"}));
  fig.spec.axes.push_back(numAxis("dlio.nodes", {1, 2, 4}));
  return fig;
}

/// One golden cell as recorded: ok flag plus mean bandwidth.
struct GoldenCell {
  bool ok = false;
  double meanGBs = 0.0;
};

/// Full-fidelity snapshot loader. Unlike sweep::loadBaseline this keeps
/// failed cells, so a trial that used to fail and now succeeds (or vice
/// versa) is visible as drift rather than silently skipped.
bool loadGoldenCells(const std::string& path, std::map<std::string, GoldenCell>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue j;
    if (!parseJson(line, j)) return false;
    const JsonValue* params = j.find("params");
    const JsonValue* metrics = j.find("metrics");
    if (!params || !metrics) return false;
    GoldenCell cell;
    cell.ok = metrics->boolOr("ok", false);
    cell.meanGBs = metrics->numberOr("meanGBs", 0.0);
    out[writeJson(*params)] = cell;
  }
  return true;
}

}  // namespace

const std::vector<GoldenFigure>& builtinFigures() {
  static const std::vector<GoldenFigure> figures = [] {
    std::vector<GoldenFigure> f;
    f.push_back(iorFigure("fig2a", "IOR scaling on Lassen: GPFS vs VAST over TCP", "lassen",
                          {"gpfs", "vast"}, {1, 2, 4, 8, 16, 32}));
    f.push_back(iorFigure("fig2b", "IOR scaling on Wombat: VAST over RDMA vs node-local NVMe",
                          "wombat", {"vast", "nvme"}, {1, 2, 4, 8}));
    f.push_back(dlioFigure("fig4", "DLIO resnet50 throughput on Lassen: VAST vs GPFS",
                           DlioWorkload::resnet50(), 48, 1));
    f.push_back(dlioFigure("fig6", "DLIO cosmoflow throughput on Lassen: VAST vs GPFS",
                           DlioWorkload::cosmoflow(), 32, 1));
    return f;
  }();
  return figures;
}

const GoldenFigure* findFigure(const std::string& name) {
  for (const GoldenFigure& f : builtinFigures()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string goldenPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".jsonl";
}

bool recordFigure(const GoldenFigure& fig, const std::string& dir, std::size_t jobs,
                  std::string& error, sweep::TrialCache* cache, const sweep::TrialOptions& opts) {
  sweep::SweepOutcome out = sweep::runSweep(fig.spec, jobs, cache, opts);
  // Goldens snapshot simulated results only: drop the telemetry columns
  // so the file is byte-identical whether or not telemetry was on.
  for (sweep::TrialResult& r : out.results) r.metrics.hasTelemetry = false;
  if (out.failures != 0) {
    for (const sweep::TrialResult& r : out.results) {
      if (r.metrics.ok) continue;
      error = fig.name + ": trial " + sweep::paramsKey(r.trial) +
              " failed, refusing to snapshot: " + r.metrics.error;
      return false;
    }
  }
  if (!sweep::writeJsonl(out, goldenPath(dir, fig.name))) {
    error = fig.name + ": cannot write " + goldenPath(dir, fig.name);
    return false;
  }
  return true;
}

FigureCheck checkFigure(const GoldenFigure& fig, const std::string& dir, std::size_t jobs,
                        double tolerancePct, sweep::TrialCache* cache,
                        const sweep::TrialOptions& opts) {
  FigureCheck check;
  check.figure = fig.name;

  std::map<std::string, GoldenCell> golden;
  if (!loadGoldenCells(goldenPath(dir, fig.name), golden)) {
    check.error = "cannot read golden snapshot " + goldenPath(dir, fig.name) +
                  " (run 'hcsim oracle record' first)";
    return check;
  }

  const sweep::SweepOutcome out = sweep::runSweep(fig.spec, jobs, cache, opts);
  std::map<std::string, bool> goldenSeen;
  for (const sweep::TrialResult& r : out.results) {
    CellDelta d;
    d.key = sweep::paramsKey(r.trial);
    d.currentGBs = r.metrics.meanGBs;
    const auto it = golden.find(d.key);
    if (it == golden.end()) {
      d.violated = true;
      d.note = "cell absent from golden snapshot";
    } else {
      goldenSeen[d.key] = true;
      d.goldenGBs = it->second.meanGBs;
      if (!r.metrics.ok && it->second.ok) {
        d.violated = true;
        d.note = "cell now fails: " + r.metrics.error;
      } else if (r.metrics.ok && !it->second.ok) {
        d.violated = true;
        d.note = "cell succeeded but golden recorded a failure";
      } else if (r.metrics.ok) {
        d.deltaPct = d.goldenGBs != 0.0
                         ? 100.0 * (d.currentGBs - d.goldenGBs) / d.goldenGBs
                         : (d.currentGBs != 0.0 ? 100.0 : 0.0);
        d.violated = std::abs(d.deltaPct) > tolerancePct;
      }
    }
    if (d.violated) ++check.violations;
    ++check.cells;
    check.deltas.push_back(std::move(d));
  }
  for (const auto& [key, cell] : golden) {
    if (goldenSeen.count(key)) continue;
    CellDelta d;
    d.key = key;
    d.goldenGBs = cell.meanGBs;
    d.violated = true;
    d.note = "golden cell absent from current sweep";
    ++check.violations;
    ++check.cells;
    check.deltas.push_back(std::move(d));
  }
  return check;
}

std::string deltaTable(const FigureCheck& check, double tolerancePct, bool fullTable) {
  std::ostringstream os;
  if (!check.error.empty()) {
    os << check.figure << ": ERROR: " << check.error << "\n";
    return os.str();
  }
  os << check.figure << ": " << check.cells << " cells, " << check.violations
     << " out of tolerance (" << tolerancePct << "%)\n";
  bool header = false;
  for (const CellDelta& d : check.deltas) {
    if (!fullTable && !d.violated) continue;
    if (!header) {
      os << "| cell | golden GB/s | current GB/s | delta % | verdict |\n";
      os << "|---|---|---|---|---|\n";
      header = true;
    }
    os << "| " << d.key << " | " << d.goldenGBs << " | " << d.currentGBs << " | " << d.deltaPct
       << " | " << (d.violated ? "FAIL" : "ok");
    if (!d.note.empty()) os << " — " << d.note;
    os << " |\n";
  }
  return os.str();
}

}  // namespace hcsim::oracle
