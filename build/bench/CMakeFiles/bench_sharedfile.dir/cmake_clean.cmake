file(REMOVE_RECURSE
  "CMakeFiles/bench_sharedfile.dir/bench_sharedfile.cpp.o"
  "CMakeFiles/bench_sharedfile.dir/bench_sharedfile.cpp.o.d"
  "bench_sharedfile"
  "bench_sharedfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharedfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
