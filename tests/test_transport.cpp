// Unit tests pinning hcsim::transport's TransportFabric mechanisms one
// at a time: token-bucket IOPS admission, send-queue head-of-line
// blocking, doorbell-batch amortization, connection-setup billing for
// cold lanes, and the flow-class contract (members=N is billed once per
// class, not once per member). Each test starts from an inert profile
// (every cost zero, every limit off) and switches on exactly the
// mechanism under test, so the expected times are closed-form.

#include "transport/transport.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/flow_network.hpp"
#include "telemetry/metrics_registry.hpp"
#include "transport/transport_profile.hpp"

namespace hcsim {
namespace {

/// Every cost zeroed, every limit effectively off. Tests then turn on
/// one knob each.
transport::TransportProfile inertProfile() {
  transport::TransportProfile p;
  p.opRate = 1e15;
  p.burstOps = 1e15;
  p.perOpCost = 0.0;
  p.perByteCost = 0.0;
  p.doorbellCost = 0.0;
  p.doorbellBatch = 1.0;
  p.descCost = 0.0;
  p.sqDepth = 1u << 20;
  p.lanes = 1;
  p.connectionSetup = 0.0;
  p.idleTimeout = 0.0;
  p.baseRtt = 0.0;
  return p;
}

struct Harness {
  explicit Harness(transport::TransportProfile p, Bandwidth linkBw = 1e12)
      : fabric(sim, net, std::move(p)) {
    link = net.addLink("wire", linkBw);
  }
  Simulator sim;
  FlowNetwork net{sim};
  LinkId link{};
  transport::TransportFabric fabric;

  /// Launch `bytes` as `ops` coalesced operations from (node 0, proc)
  /// and return the completion time (-1 = never completed).
  SimTime launch(Bytes bytes, std::uint64_t ops, std::uint32_t proc = 0,
                 std::uint32_t streams = 1, std::uint32_t members = 1) {
    FlowSpec spec;
    spec.bytes = bytes;
    spec.route = {link};
    spec.members = members;
    IoRequest req;
    req.client = {0, proc};
    req.bytes = bytes;
    req.ops = ops;
    req.streams = streams;
    req.members = members;
    lastEnd = -1.0;
    fabric.launch(spec, req, [this](const FlowCompletion& c) { lastEnd = c.endTime; });
    return lastEnd;
  }

  SimTime lastEnd = -1.0;
};

// ---- token-bucket op admission ----

TEST(TransportFabric, TokenBucketDelaysOverBudgetPosting) {
  // 100 ops/s budget, bucket depth 1: posting 101 ops borrows 100
  // tokens, so the first byte waits 100/100 = 1 s. The IOPS budget also
  // caps the rate at opRate x opBytes = 100 x 10 = 1000 B/s.
  transport::TransportProfile p = inertProfile();
  p.opRate = 100.0;
  p.burstOps = 1.0;
  Harness h(p);
  h.launch(1010, 101);
  h.sim.run();
  EXPECT_NEAR(h.lastEnd, 1.0 + 1010.0 / 1000.0, 1e-9);
  EXPECT_NEAR(h.fabric.throttleDelay(), 1.0, 1e-9);
  EXPECT_EQ(h.fabric.opsPosted(), 101u);
}

TEST(TransportFabric, TokensRefillAtOpRate) {
  // Within-budget postings never wait: 1 op against a deep bucket.
  transport::TransportProfile p = inertProfile();
  p.opRate = 100.0;
  p.burstOps = 64.0;
  Harness h(p);
  h.launch(10, 1);
  h.sim.run();
  EXPECT_NEAR(h.fabric.throttleDelay(), 0.0, 1e-12);
  EXPECT_NEAR(h.lastEnd, 10.0 / 1000.0, 1e-9);  // opRate cap: 100 x 10 B/s
}

// ---- send-queue depth: head-of-line blocking ----

TEST(TransportFabric, FullSendQueueSerializesTheLane) {
  // sqDepth=1 on a 100 B/s wire: the second flow queues behind the
  // first (10 s) instead of fair-sharing (which would end both at 20 s).
  transport::TransportProfile p = inertProfile();
  p.sqDepth = 1;
  Harness h(p, 100.0);
  std::vector<SimTime> ends;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.bytes = 1000;
    spec.route = {h.link};
    IoRequest req;
    req.client = {0, 0};
    req.bytes = 1000;
    req.ops = 1;
    h.fabric.launch(spec, req, [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
  }
  EXPECT_EQ(h.fabric.sqWaits(), 1u);
  h.sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 10.0, 1e-9);
  EXPECT_NEAR(ends[1], 20.0, 1e-9);
  EXPECT_EQ(h.fabric.inflightDescriptors(), 0u);
}

TEST(TransportFabric, DeepSendQueueSharesTheLane) {
  // Same two flows with a deep SQ: both admitted at t=0, fair-share the
  // wire, both end at 20 s. The contrast with the test above is the
  // whole head-of-line story.
  Harness h(inertProfile(), 100.0);
  std::vector<SimTime> ends;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.bytes = 1000;
    spec.route = {h.link};
    IoRequest req;
    req.client = {0, 0};
    req.bytes = 1000;
    req.ops = 1;
    h.fabric.launch(spec, req, [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
  }
  EXPECT_EQ(h.fabric.sqWaits(), 0u);
  h.sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 20.0, 1e-9);
  EXPECT_NEAR(ends[1], 20.0, 1e-9);
}

// ---- doorbell batching ----

TEST(TransportFabric, DoorbellBatchAmortizesPerOpCost) {
  // 100 x 10 B ops with a 1 ms doorbell. Unbatched the lane moves
  // 10 B / 1 ms = 10 kB/s; batch=10 amortizes the ring to 0.1 ms/op ->
  // 100 kB/s. Both pay one first-batch post (1 ms) up front.
  transport::TransportProfile slow = inertProfile();
  slow.doorbellCost = 1e-3;
  slow.doorbellBatch = 1.0;
  Harness a(slow);
  a.launch(1000, 100);
  a.sim.run();
  EXPECT_NEAR(a.lastEnd, 1e-3 + 1000.0 / 1e4, 1e-9);

  transport::TransportProfile fast = inertProfile();
  fast.doorbellCost = 1e-3;
  fast.doorbellBatch = 10.0;
  Harness b(fast);
  b.launch(1000, 100);
  b.sim.run();
  EXPECT_NEAR(b.lastEnd, 1e-3 + 1000.0 / 1e5, 1e-9);
  EXPECT_EQ(a.fabric.doorbells(), 1u);
  EXPECT_EQ(b.fabric.doorbells(), 1u);
}

// ---- connection setup ----

TEST(TransportFabric, ColdLanePaysConnectionSetupOnce) {
  // 0.5 s handshake on a 100 B/s wire: the cold posting ends at
  // 0.5 + 10 s; a warm re-posting of the same lane pays nothing.
  transport::TransportProfile p = inertProfile();
  p.connectionSetup = 0.5;
  Harness h(p, 100.0);
  h.launch(1000, 1);
  h.sim.run();
  EXPECT_NEAR(h.lastEnd, 0.5 + 10.0, 1e-9);
  EXPECT_EQ(h.fabric.connectionSetups(), 1u);

  const SimTime warmStart = h.sim.now();
  h.launch(1000, 1);
  h.sim.run();
  EXPECT_NEAR(h.lastEnd, warmStart + 10.0, 1e-9);
  EXPECT_EQ(h.fabric.connectionSetups(), 1u);
}

TEST(TransportFabric, EachLaneIsColdSeparately) {
  transport::TransportProfile p = inertProfile();
  p.lanes = 2;
  p.connectionSetup = 0.5;
  Harness h(p, 1e12);
  h.launch(1000, 1, /*proc=*/0);
  h.launch(1000, 1, /*proc=*/1);  // hashes to the other lane
  h.sim.run();
  EXPECT_EQ(h.fabric.connectionSetups(), 2u);
}

TEST(TransportFabric, IdleTimeoutReopensTheLane) {
  transport::TransportProfile p = inertProfile();
  p.connectionSetup = 0.5;
  p.idleTimeout = 1.0;
  Harness h(p, 100.0);
  h.launch(1000, 1);
  h.sim.run();  // lane last used at 10.5 s
  EXPECT_EQ(h.fabric.connectionSetups(), 1u);
  h.sim.runUntil(h.sim.now() + 5.0);  // idle well past the timeout
  h.launch(1000, 1);
  h.sim.run();
  EXPECT_EQ(h.fabric.connectionSetups(), 2u);
}

// ---- lanes x streams rate ceiling ----

TEST(TransportFabric, UsableLanesAreMinOfStreamsAndLanes) {
  // perOpCost 1 ms at 10 B ops -> 10 kB/s per lane. 4 lanes but only 2
  // streams -> 20 kB/s; 4 streams -> 40 kB/s; 8 streams stays 40 kB/s.
  transport::TransportProfile p = inertProfile();
  p.perOpCost = 1e-3;
  p.lanes = 4;
  const Bytes bytes = 4000;
  const std::uint64_t ops = 400;
  std::vector<double> rates;
  for (std::uint32_t streams : {2u, 4u, 8u}) {
    Harness h(p);
    h.launch(bytes, ops, 0, streams);
    h.sim.run();
    rates.push_back(static_cast<double>(bytes) / h.lastEnd);
  }
  EXPECT_NEAR(rates[0], 2e4, 1.0);
  EXPECT_NEAR(rates[1], 4e4, 1.0);
  EXPECT_NEAR(rates[2], 4e4, 1.0);  // lanes bind, extra streams are idle
}

// ---- flow classes: members billed once ----

TEST(TransportFabric, ClassMembersAreBilledOncePerClass) {
  // A class of 4 members posting 101 ops pays the same token-bucket
  // delay as a single client (the class is one descriptor stream), and
  // the byte counter reports the aggregate payload.
  transport::TransportProfile p = inertProfile();
  p.opRate = 100.0;
  p.burstOps = 1.0;
  Harness h(p);
  h.launch(1010, 101, 0, 1, /*members=*/4);
  h.sim.run();
  EXPECT_NEAR(h.fabric.throttleDelay(), 1.0, 1e-9);  // same as members=1
  EXPECT_EQ(h.fabric.opsPosted(), 101u);             // not 404
  EXPECT_EQ(h.fabric.bytesPosted(), 4040u);          // aggregate bytes
}

// ---- telemetry + profile plumbing ----

TEST(TransportFabric, ExportsTransportMetrics) {
  Harness h(inertProfile(), 100.0);
  h.launch(1000, 1);
  h.sim.run();
  telemetry::MetricsRegistry reg;
  h.fabric.exportMetrics(reg);
  EXPECT_EQ(reg.counterOr("transport.ops_posted", -1.0), 1.0);
  EXPECT_EQ(reg.counterOr("transport.bytes_posted", -1.0), 1000.0);
  EXPECT_EQ(reg.counterOr("transport.sq_waits", -1.0), 0.0);
  EXPECT_EQ(reg.gaugeOr("transport.lanes", -1.0), 1.0);
  EXPECT_EQ(reg.gaugeOr("transport.inflight_descriptors", -1.0), 0.0);
}

TEST(TransportProfileJson, KindSelectsThePresetBaseline) {
  // {"kind":"rdma"} on a declared TCP profile swaps in the whole RDMA
  // preset (costs, lanes, depths), not just the label...
  transport::TransportProfile p = transport::TransportProfile::tcp();
  JsonValue j;
  ASSERT_TRUE(parseJson(R"({"kind": "rdma"})", j));
  ASSERT_TRUE(transport::fromJson(j, p));
  const transport::TransportProfile rdma = transport::TransportProfile::rdma();
  EXPECT_EQ(p.kind, transport::FabricKind::Rdma);
  EXPECT_DOUBLE_EQ(p.perOpCost, rdma.perOpCost);
  EXPECT_EQ(p.lanes, rdma.lanes);
  EXPECT_EQ(p.sqDepth, rdma.sqDepth);

  // ...and later keys still override individual preset knobs.
  ASSERT_TRUE(parseJson(R"({"kind": "rdma", "lanes": 3})", j));
  transport::TransportProfile q = transport::TransportProfile::tcp();
  ASSERT_TRUE(transport::fromJson(j, q));
  EXPECT_EQ(q.lanes, 3u);
  EXPECT_DOUBLE_EQ(q.perOpCost, rdma.perOpCost);
}

TEST(TransportProfileJson, EmptySectionIsTheIdentity) {
  transport::TransportProfile p = transport::TransportProfile::rdma();
  p.lanes = 7;  // a non-preset marker value
  JsonValue j;
  ASSERT_TRUE(parseJson("{}", j));
  ASSERT_TRUE(transport::fromJson(j, p));
  EXPECT_EQ(p.lanes, 7u);
  EXPECT_EQ(p.kind, transport::FabricKind::Rdma);
}

TEST(TransportProfileJson, RoundTripsAndRejectsBadKind) {
  const transport::TransportProfile p = transport::TransportProfile::rdma();
  transport::TransportProfile q = transport::TransportProfile::tcp();
  ASSERT_TRUE(transport::fromJson(transport::toJson(p), q));
  EXPECT_EQ(q.kind, p.kind);
  EXPECT_DOUBLE_EQ(q.opRate, p.opRate);
  EXPECT_DOUBLE_EQ(q.perByteCost, p.perByteCost);
  EXPECT_EQ(q.lanes, p.lanes);

  JsonValue bad;
  ASSERT_TRUE(parseJson(R"({"kind": "carrier-pigeon"})", bad));
  EXPECT_FALSE(transport::fromJson(bad, q));
}

TEST(TransportProfile, ValidateRejectsBadValues) {
  transport::TransportProfile p = transport::TransportProfile::tcp();
  p.opRate = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = transport::TransportProfile::tcp();
  p.lanes = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = transport::TransportProfile::tcp();
  p.sqDepth = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = transport::TransportProfile::tcp();
  p.doorbellBatch = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace hcsim
