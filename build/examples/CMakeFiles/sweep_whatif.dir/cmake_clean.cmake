file(REMOVE_RECURSE
  "CMakeFiles/sweep_whatif.dir/sweep_whatif.cpp.o"
  "CMakeFiles/sweep_whatif.dir/sweep_whatif.cpp.o.d"
  "sweep_whatif"
  "sweep_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
