file(REMOVE_RECURSE
  "CMakeFiles/test_mdtest.dir/test_mdtest.cpp.o"
  "CMakeFiles/test_mdtest.dir/test_mdtest.cpp.o.d"
  "test_mdtest"
  "test_mdtest.pdb"
  "test_mdtest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
