#pragma once
// LustreModel — MDS/OSS parallel file system baseline.
//
// Data path:
//
//   client NIC -> per-node Omni-Path ceiling -> OSS pool -> HDD raidz2
//
// plus an MDS latency term on every open-like op. Striping spreads a
// file over `stripeCount` OSTs; with file-per-process and many
// processes, OSS load is even regardless, so the pool is aggregated and
// striping instead affects the per-process parallelism cap.
//
// Behaviour targets (Fig 3b/3c): near-linear bandwidth growth with
// process count in the single-node fsync test (per-op ZFS commit of a
// few ms is overlapped across processes), reads growing toward the
// Omni-Path node ceiling.

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "device/hdd_raid.hpp"
#include "fs/storage_base.hpp"
#include "lustre/lustre_config.hpp"

namespace hcsim {

class LustreModel final : public StorageModelBase {
 public:
  LustreModel(Simulator& sim, Topology& topo, LustreConfig config, std::vector<LinkId> clientNics,
              std::uint64_t rngSeed = 0x105712ull);

  const LustreConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;
  Bytes totalCapacity() const override { return cfg_.capacityTotal; }

  /// LNet over Omni-Path: an RDMA-class endpoint, one lane per client
  /// (Lustre multiplexes a node's traffic over one o2ib connection).
  transport::TransportProfile declaredTransportProfile() const override;

  Bandwidth deviceCapacity() const;

  // ---- Failure injection ----
  /// Fail/restore an OSS (object storage server): pool and OST capacity
  /// shrink proportionally; submitting with all OSSs down throws.
  void failOss(std::size_t index);
  void restoreOss(std::size_t index);
  std::size_t aliveOss() const { return cfg_.ossCount - failedOss_.size(); }

  /// Fail/restore an MDS: metadata ops route over the surviving pool.
  void failMds(std::size_t index);
  void restoreMds(std::size_t index);
  std::size_t aliveMds() const { return cfg_.mdsCount - failedMds_.size(); }

  /// Declarative fault hook (hcsim::chaos): "oss" supports
  /// fail/fail-slow/restore (a fail-slow OSS contributes `severity` of a
  /// healthy one to the pool); "mds" is fail/restore only.
  bool applyFault(const FaultSpec& f) override;
  std::size_t faultComponentCount(const std::string& component) const override;
  /// Rebuild after a restore: raidz2 resync between the OSS pool and the
  /// spindles, competing with foreground streams on both.
  Route rebuildRoute(const FaultSpec& restored) override;

  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

 protected:
  void onPhaseChange() override;

 private:
  LinkId clientCapLink(std::uint32_t node);
  void applyCapacities();
  /// Healthy-equivalent fraction of the OSS pool: failed servers count
  /// 0, fail-slow servers their severity, healthy servers 1.
  double ossFraction() const;

  LustreConfig cfg_;
  HddRaid raid_;
  LinkId ossLink_{};
  LinkId deviceLink_{};
  std::unordered_map<std::uint32_t, LinkId> clientCaps_;
  std::set<std::size_t> failedOss_;
  std::map<std::size_t, double> slowOss_;  ///< index -> fail-slow severity
  std::set<std::size_t> failedMds_;
};

}  // namespace hcsim
