#include "sweep/trial_cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hpp"

namespace hcsim::sweep {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  return h;
}

std::string trialKey(const std::string& experiment, const JsonValue& config) {
  return experiment + '\n' + writeJson(config);
}

std::optional<TrialMetrics> TrialCache::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void TrialCache::insert(const std::string& key, const TrialMetrics& metrics) {
  std::lock_guard<std::mutex> lk(mu_);
  map_[key] = metrics;
}

std::size_t TrialCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

std::uint64_t TrialCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::uint64_t TrialCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

void TrialCache::resetCounters() {
  std::lock_guard<std::mutex> lk(mu_);
  hits_ = 0;
  misses_ = 0;
}

namespace {

JsonValue metricsToJson(const TrialMetrics& m) {
  JsonObject o;
  o["ok"] = m.ok;
  if (!m.ok) o["error"] = m.error;
  o["meanGBs"] = m.meanGBs;
  o["minGBs"] = m.minGBs;
  o["maxGBs"] = m.maxGBs;
  o["elapsedSec"] = m.elapsedSec;
  o["bytesMoved"] = m.bytesMoved;
  if (m.latencyCapable) {
    o["latencyCapable"] = true;
    if (m.hasOpLatency) {
      o["hasOpLatency"] = true;
      o["opCount"] = m.opCount;
      o["opP50"] = m.opP50;
      o["opP95"] = m.opP95;
      o["opP99"] = m.opP99;
    }
  }
  if (m.hasTelemetry) {
    o["hasTelemetry"] = true;
    o["rerates"] = m.rerates;
    o["eventsScheduled"] = m.eventsScheduled;
    o["eventsCancelled"] = m.eventsCancelled;
    o["eventsAdjusted"] = m.eventsAdjusted;
    o["eventsDispatched"] = m.eventsDispatched;
    o["dominantStage"] = m.dominantStage;
    o["dominantSharePct"] = m.dominantSharePct;
  }
  if (m.hasMonitors) {
    o["hasMonitors"] = true;
    o["monitors"] = m.monitors;
    o["breaches"] = m.breaches;
  }
  if (m.hasTransport) {
    o["hasTransport"] = true;
    o["transportOps"] = m.transportOps;
    o["transportBytes"] = m.transportBytes;
    o["transportThrottleSec"] = m.transportThrottleSec;
    o["transportConnSetups"] = m.transportConnSetups;
    o["transportSqWaits"] = m.transportSqWaits;
    o["transportDoorbells"] = m.transportDoorbells;
  }
  // hasSelf is deliberately absent: self-profiled trials bypass the
  // cache entirely (host wall-clock is not reproducible).
  return JsonValue(std::move(o));
}

bool metricsFromJson(const JsonValue& j, TrialMetrics& m) {
  if (!j.isObject()) return false;
  m.ok = j.boolOr("ok", false);
  m.error = j.stringOr("error", "");
  m.meanGBs = j.numberOr("meanGBs", 0.0);
  m.minGBs = j.numberOr("minGBs", 0.0);
  m.maxGBs = j.numberOr("maxGBs", 0.0);
  m.elapsedSec = j.numberOr("elapsedSec", 0.0);
  m.bytesMoved = j.numberOr("bytesMoved", 0.0);
  m.latencyCapable = j.boolOr("latencyCapable", false);
  m.hasOpLatency = j.boolOr("hasOpLatency", false);
  m.opCount = j.numberOr("opCount", 0.0);
  m.opP50 = j.numberOr("opP50", 0.0);
  m.opP95 = j.numberOr("opP95", 0.0);
  m.opP99 = j.numberOr("opP99", 0.0);
  m.hasTelemetry = j.boolOr("hasTelemetry", false);
  m.rerates = j.numberOr("rerates", 0.0);
  m.eventsScheduled = j.numberOr("eventsScheduled", 0.0);
  m.eventsCancelled = j.numberOr("eventsCancelled", 0.0);
  m.eventsAdjusted = j.numberOr("eventsAdjusted", 0.0);
  m.eventsDispatched = j.numberOr("eventsDispatched", 0.0);
  m.dominantStage = j.stringOr("dominantStage", "");
  m.dominantSharePct = j.numberOr("dominantSharePct", 0.0);
  m.hasMonitors = j.boolOr("hasMonitors", false);
  m.monitors = j.numberOr("monitors", 0.0);
  m.breaches = j.numberOr("breaches", 0.0);
  m.hasTransport = j.boolOr("hasTransport", false);
  m.transportOps = j.numberOr("transportOps", 0.0);
  m.transportBytes = j.numberOr("transportBytes", 0.0);
  m.transportThrottleSec = j.numberOr("transportThrottleSec", 0.0);
  m.transportConnSetups = j.numberOr("transportConnSetups", 0.0);
  m.transportSqWaits = j.numberOr("transportSqWaits", 0.0);
  m.transportDoorbells = j.numberOr("transportDoorbells", 0.0);
  return true;
}

}  // namespace

bool TrialCache::loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return true;  // absent file == cold cache
  std::string line;
  std::unordered_map<std::string, TrialMetrics> staged;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue j;
    if (!parseJson(line, j)) return false;
    const JsonValue* key = j.find("key");
    const JsonValue* fnv = j.find("fnv");
    const JsonValue* metrics = j.find("metrics");
    if (!key || !key->str() || !fnv || !fnv->str() || !metrics) return false;
    std::ostringstream expect;
    expect << std::hex << fnv1a64(*key->str());
    if (expect.str() != *fnv->str()) return false;  // corrupt or hand-edited
    TrialMetrics m;
    if (!metricsFromJson(*metrics, m)) return false;
    staged[*key->str()] = std::move(m);
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [k, m] : staged) map_[k] = std::move(m);
  return true;
}

bool TrialCache::saveFile(const std::string& path) const {
  std::vector<const std::pair<const std::string, TrialMetrics>*> entries;
  {
    std::lock_guard<std::mutex> lk(mu_);
    entries.reserve(map_.size());
    for (const auto& kv : map_) entries.push_back(&kv);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const auto* kv : entries) {
    std::ostringstream fnv;
    fnv << std::hex << fnv1a64(kv->first);
    JsonObject rec;
    rec["fnv"] = fnv.str();
    rec["key"] = kv->first;
    rec["metrics"] = metricsToJson(kv->second);
    out << writeJson(JsonValue(std::move(rec))) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace hcsim::sweep
