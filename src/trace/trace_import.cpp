#include "trace/trace_import.hpp"

#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace hcsim {

namespace {

TraceEventKind kindFromCat(const std::string& cat) {
  if (cat == "read") return TraceEventKind::Read;
  if (cat == "write") return TraceEventKind::Write;
  if (cat == "compute") return TraceEventKind::Compute;
  return TraceEventKind::Other;
}

}  // namespace

bool parseChromeTraceJson(const std::string& json, TraceLog& out) {
  JsonValue root;
  if (!parseJson(json, root) || !root.isObject()) return false;
  const JsonValue* events = root.find("traceEvents");
  if (!events || !events->isArray()) return false;

  TraceLog parsed;
  for (const JsonValue& ev : *events->array()) {
    if (!ev.isObject()) return false;
    if (ev.stringOr("ph", "") != "X") continue;  // only complete events

    TraceEvent te;
    te.name = ev.stringOr("name", "");
    te.kind = kindFromCat(ev.stringOr("cat", ""));
    te.pid = static_cast<std::uint32_t>(ev.numberOr("pid", 0));
    te.tid = static_cast<std::uint32_t>(ev.numberOr("tid", 0));
    te.start = ev.numberOr("ts", 0) * 1e-6;
    te.duration = ev.numberOr("dur", 0) * 1e-6;
    if (const JsonValue* args = ev.find("args"); args && args->isObject()) {
      te.bytes = static_cast<Bytes>(args->numberOr("bytes", 0));
    }
    parsed.record(std::move(te));
  }
  for (const auto& e : parsed.events()) out.record(e);
  return true;
}

bool readChromeTrace(const std::string& path, TraceLog& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseChromeTraceJson(buf.str(), out);
}

}  // namespace hcsim
