#include "net/link.hpp"

// Link is a plain data carrier; all behaviour lives in FlowNetwork.
// This TU exists so the module has a stable object file for the archive.

namespace hcsim {

static_assert(sizeof(Link) > 0, "Link must be a complete type");

}  // namespace hcsim
