#include "workload/ior_source.hpp"

#include <algorithm>

namespace hcsim::workload {

ClientId IorSource::issuingClient(std::uint32_t node, std::uint32_t proc) const {
  ClientId c{node, proc};
  if (isRead(cfg_.access) && cfg_.reorderTasks && cfg_.nodes > 1) {
    // IOR -C: shift ranks by one node so the reader differs from the
    // writer of the same file.
    c.node = (node + 1) % static_cast<std::uint32_t>(cfg_.nodes);
  }
  return c;
}

WorkloadPlan IorSource::load(const WorkloadContext& ctx) {
  WorkloadPlan plan;
  plan.phase.pattern = cfg_.access;
  plan.phase.requestSize = cfg_.transferSize;
  plan.phase.nodes = static_cast<std::uint32_t>(cfg_.nodes);
  // Flow classes: the phase declares the full multiplied population and
  // every request the runner issues carries clientsPerRank members.
  plan.clientsPerRank = static_cast<std::uint32_t>(std::max<std::size_t>(1, cfg_.clientsPerRank));
  plan.phase.procsPerNode = static_cast<std::uint32_t>(cfg_.procsPerNode * plan.clientsPerRank);
  plan.phase.readerDiffersFromWriter = cfg_.reorderTasks;
  plan.phase.workingSetBytes = cfg_.totalBytes() * plan.clientsPerRank;
  plan.phase.fsync = cfg_.fsyncPerWrite && !isRead(cfg_.access);
  phaseStart_ = ctx.sim != nullptr ? ctx.sim->now() : 0.0;

  if (cfg_.mode == IorConfig::Mode::Coalesced) {
    // Symmetric ranks on a node are aggregated into one flow per
    // parallel client channel (DESIGN.md §5): `slots` flows per node,
    // each carrying `streams` process streams.
    slots_ = std::min<std::size_t>(
        cfg_.procsPerNode,
        std::max<std::size_t>(1, ctx.fs != nullptr ? ctx.fs->clientParallelism() : 1));
    ranks_.resize(cfg_.nodes * slots_);
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      for (std::uint32_t slot = 0; slot < slots_; ++slot) {
        RankState& st = ranks_[n * slots_ + slot];
        st.client = issuingClient(n, slot);
        // N-N: file id = first aggregated rank; N-1: shared file 0.
        st.fileId = cfg_.filePerProcess
                        ? static_cast<std::uint64_t>(n) * cfg_.procsPerNode + slot + 1
                        : 0;
        st.streams =
            static_cast<std::uint32_t>((cfg_.procsPerNode - slot + slots_ - 1) / slots_);
        st.remainingOps = 1;
      }
    }
  } else {
    ranks_.resize(cfg_.totalProcs());
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      for (std::uint32_t p = 0; p < cfg_.procsPerNode; ++p) {
        RankState& st = ranks_[n * cfg_.procsPerNode + p];
        st.client = issuingClient(n, p);
        const std::uint64_t rank = static_cast<std::uint64_t>(n) * cfg_.procsPerNode + p + 1;
        st.fileId = cfg_.filePerProcess ? rank : 0;
        st.remainingOps = cfg_.transfersPerProc();
        st.rng.reseed(cfg_.seed ^ (rank * 0x9e3779b97f4a7c15ull));
      }
    }
    plan.collectOpLatency = true;
  }
  plan.ranks = ranks_.size();
  return plan;
}

NextStatus IorSource::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  if (st.done) return NextStatus::End;
  if (st.pending) return NextStatus::Wait;

  const bool rd = isRead(cfg_.access);
  out.kind = OpKind::Io;
  out.io.client = st.client;
  out.io.fileId = st.fileId;
  out.io.pattern = cfg_.access;
  out.io.fsync = cfg_.fsyncPerWrite && !rd;
  out.io.sharedFile = !cfg_.filePerProcess;
  out.traced = true;
  out.label = rd ? "ior.read" : "ior.write";
  out.tracePid = st.client.node;

  if (cfg_.mode == IorConfig::Mode::Coalesced) {
    out.io.offset = 0;
    out.io.bytes = cfg_.bytesPerProc() * st.streams;
    out.io.ops = cfg_.transfersPerProc() * st.streams;
    out.io.streams = st.streams;
    out.traceTid = static_cast<std::uint32_t>(rank % slots_);
  } else {
    out.io.bytes = cfg_.transferSize;
    out.io.ops = 1;
    if (cfg_.access == AccessPattern::RandomRead || cfg_.access == AccessPattern::RandomWrite) {
      const std::uint64_t offsetSlots = cfg_.bytesPerProc() / cfg_.transferSize;
      out.io.offset = st.rng.uniformInt(offsetSlots ? offsetSlots : 1) * cfg_.transferSize;
    } else {
      out.io.offset = st.cursor;
      st.cursor += cfg_.transferSize;
    }
    out.traceTid = st.client.proc;
  }
  st.pending = true;
  return NextStatus::Op;
}

void IorSource::onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
  (void)op;
  RankState& st = ranks_[rank];
  st.pending = false;
  // IOR -D stonewalling: stop issuing once the phase has run this long
  // and let the result report the bytes actually moved.
  const bool hitStonewall =
      cfg_.stonewallSeconds > 0.0 && result.endTime - phaseStart_ >= cfg_.stonewallSeconds;
  if (--st.remainingOps == 0 || hitStonewall) st.done = true;
}

}  // namespace hcsim::workload
