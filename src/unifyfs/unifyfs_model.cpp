#include "unifyfs/unifyfs_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "fs/model_support.hpp"

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

const char* toString(UnifyFsPlacement p) {
  switch (p) {
    case UnifyFsPlacement::LocalFirst: return "local-first";
    case UnifyFsPlacement::Striped: return "striped";
  }
  return "?";
}

void UnifyFsConfig::validate() const {
  if (spillDevicesPerNode == 0) {
    throw std::invalid_argument("UnifyFsConfig: spillDevicesPerNode must be > 0");
  }
  if (memoryBandwidth <= 0.0) {
    throw std::invalid_argument("UnifyFsConfig: memoryBandwidth must be > 0");
  }
  if (serverThreadsPerNode == 0) {
    throw std::invalid_argument("UnifyFsConfig: serverThreadsPerNode must be > 0");
  }
}

UnifyFsModel::UnifyFsModel(Simulator& sim, Topology& topo, UnifyFsConfig config,
                           std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      spill_(cfg_.spillDevice, cfg_.spillDevicesPerNode) {
  cfg_.validate();
  // Extent metadata through the distributed KV: one server per node.
  configureMetadataPath(clientNodeCount(), cfg_.metadataLatency, cfg_.localRpcLatency,
                        /*sharedDirPenalty=*/1.5);
  // UnifyFS has no POSIX byte-range locks — N-1 is its design center.
  configureSharedFilePenalty(units::usec(20), 0.97);
}

UnifyFsModel::NodeState& UnifyFsModel::nodeState(std::uint32_t node) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) return it->second;
  NodeState st;
  st.deviceLink = topology().addLink(
      cfg_.name + ".n" + std::to_string(node) + ".log",
      spill_.effectiveBandwidth(AccessPattern::SequentialWrite, units::MiB));
  st.serverLink = topology().addLink(
      cfg_.name + ".n" + std::to_string(node) + ".server",
      static_cast<double>(cfg_.serverThreadsPerNode) * cfg_.serverThreadBandwidth);
  st.shmem = std::make_unique<WritebackBuffer>(
      cfg_.shmemBytes, spill_.effectiveBandwidth(AccessPattern::SequentialWrite, units::MiB));
  auto [ins, ok] = nodes_.emplace(node, std::move(st));
  configureNode(ins->second);
  return ins->second;
}

void UnifyFsModel::configureNode(NodeState& st) {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  const AccessPattern devPattern = isRead(ph.pattern)
                                       ? (isSequential(ph.pattern)
                                              ? AccessPattern::SequentialRead
                                              : AccessPattern::RandomRead)
                                       : AccessPattern::SequentialWrite;
  Bandwidth cap = spill_.effectiveBandwidth(devPattern, req);
  // Shmem front absorbs bursts at memory speed while it has room.
  if (!isRead(ph.pattern)) {
    const Bytes dirty = st.shmem->dirty(simulator().now());
    if (dirty < cfg_.shmemBytes) cap = std::max(cap, cfg_.memoryBandwidth);
  }
  topology().network().setLinkCapacity(st.deviceLink, cap);
}

void UnifyFsModel::onPhaseChange() {
  for (auto& [node, st] : nodes_) configureNode(st);
}

void UnifyFsModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.metadataLatency, [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }

  const bool rd = isRead(req.pattern);
  const std::size_t nodeCount = std::max<std::size_t>(1, phase().nodes);
  // Which fraction of this request's bytes live on the issuing node?
  double localFraction;
  if (cfg_.placement == UnifyFsPlacement::Striped) {
    localFraction = 1.0 / static_cast<double>(nodeCount);
  } else {
    // Local-first: data is wherever the writer ran. Reads by a different
    // client (the paper's cache-defeating setup) are fully remote.
    localFraction = (rd && phase().readerDiffersFromWriter && nodeCount > 1) ? 0.0 : 1.0;
  }

  const Bytes localBytes =
      static_cast<Bytes>(static_cast<double>(req.bytes) * localFraction);
  const Bytes remoteBytes = req.bytes - localBytes;

  NodeState& local = nodeState(req.client.node);
  if (!rd) local.shmem->absorb(localBytes, simulator().now());

  struct Join {
    IoCallback cb;
    SimTime start = 0.0;
    SimTime end = 0.0;
    Bytes bytes = 0;
    int outstanding = 0;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(cb);
  join->start = simulator().now();
  auto part = [join](const IoResult& r) {
    join->end = std::max(join->end, r.endTime);
    join->bytes += r.bytes;
    if (--join->outstanding == 0 && join->cb) {
      join->cb(IoResult{join->start, join->end, join->bytes});
    }
  };
  if (localBytes > 0) ++join->outstanding;
  if (remoteBytes > 0) ++join->outstanding;

  if (localBytes > 0) {
    // Local path: shmem ipc + log device; no NIC.
    IoRequest sub = req;
    sub.bytes = localBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * localBytes / req.bytes);
    const double frac = static_cast<double>(localBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, localBytes, Route{local.deviceLink}, kUncapped,
                   cfg_.localRpcLatency + cfg_.metadataLatency, cfg_.localRpcLatency, part,
                   frac);
  }
  if (remoteBytes > 0) {
    // Remote path: this node's NIC + the peer pool. Peers are spread, so
    // model the remote end as the peer's device link (round-robin pick).
    const std::uint32_t peer =
        (req.client.node + 1 + req.client.proc % (nodeCount - 1 ? nodeCount - 1 : 1)) %
        static_cast<std::uint32_t>(nodeCount);
    NodeState& owner = nodeState(peer);
    Route route{clientNic(req.client.node), clientNic(peer), owner.serverLink,
                owner.deviceLink};
    IoRequest sub = req;
    sub.bytes = remoteBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * remoteBytes / req.bytes);
    const double frac = static_cast<double>(remoteBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, remoteBytes, route, kUncapped,
                   cfg_.remoteRpcLatency + cfg_.metadataLatency, cfg_.remoteRpcLatency, part,
                   frac);
  }
}

void UnifyFsModel::flushToBackingStore(FileSystemModel& backing, Bytes bytesPerNode,
                                       std::function<void()> done) {
  const std::size_t nodes = clientNodeCount();
  FileSystemModel* backingPtr = &backing;
  auto barrier = completionBarrier(nodes, [backingPtr, done = std::move(done)] {
    backingPtr->endPhase();
    if (done) done();
  });
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  ph.nodes = static_cast<std::uint32_t>(nodes);
  ph.procsPerNode = 1;
  ph.workingSetBytes = bytesPerNode * nodes;
  backing.beginPhase(ph);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    IoRequest req;
    req.client = ClientId{n, 0};
    req.fileId = 0x0f5000 + n;
    req.bytes = bytesPerNode;
    req.pattern = AccessPattern::SequentialWrite;
    req.ops = std::max<Bytes>(1, bytesPerNode / units::MiB);
    backing.submit(req, [barrier](const IoResult&) { barrier(); });
  }
}

}  // namespace hcsim
