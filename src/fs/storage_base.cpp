#include "fs/storage_base.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics_registry.hpp"
#include "transport/transport.hpp"

namespace hcsim {

StorageModelBase::StorageModelBase(Simulator& sim, Topology& topo, std::string name,
                                   std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : sim_(sim),
      topo_(topo),
      name_(std::move(name)),
      clientNics_(std::move(clientNics)),
      rng_(rngSeed) {
  if (clientNics_.empty()) {
    throw std::invalid_argument("StorageModelBase: at least one client NIC required");
  }
}

void StorageModelBase::configureSharedFilePenalty(Seconds lockLatency, double efficiency) {
  if (efficiency <= 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("configureSharedFilePenalty: efficiency must be in (0,1]");
  }
  sharedFileLockLatency_ = lockLatency;
  sharedFileEfficiency_ = efficiency;
}

void StorageModelBase::configureMetadataPath(std::size_t servers, Seconds serviceTime,
                                             Seconds clientLatency, double sharedDirPenalty) {
  if (servers == 0) throw std::invalid_argument("configureMetadataPath: servers must be > 0");
  metaQueues_.clear();
  metaQueues_.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    metaQueues_.push_back(
        std::make_unique<DeviceQueue>(sim_, 1, name_ + ".meta[" + std::to_string(i) + "]"));
  }
  metaServiceTime_ = serviceTime;
  metaClientLatency_ = clientLatency;
  metaSharedDirPenalty_ = sharedDirPenalty;
}

void StorageModelBase::setActiveMetadataServers(std::size_t n) {
  if (metaQueues_.empty()) return;
  metaActive_ = std::clamp<std::size_t>(n, 1, metaQueues_.size());
}

void StorageModelBase::submitMeta(const MetaRequest& req, IoCallback cb) {
  const SimTime start = sim_.now();
  auto finish = [this, start, cb = std::move(cb)] {
    if (cb) cb(IoResult{start, sim_.now(), 0});
  };
  if (metaQueues_.empty()) {
    sim_.schedule(metaClientLatency_, std::move(finish));
    return;
  }
  // Client round trip, then queue at the owning metadata server (within
  // the active prefix — failure injection shrinks it).
  const std::size_t active = activeMetadataServers();
  const std::size_t server =
      req.sharedDirectory ? 0 : static_cast<std::size_t>(req.fileId) % active;
  const Seconds service =
      metaServiceTime_ * (req.sharedDirectory ? metaSharedDirPenalty_ : 1.0);
  sim_.schedule(metaClientLatency_, [this, server, service, finish = std::move(finish)]() mutable {
    metaQueues_[server]->submit(service, std::move(finish));
  });
}

void StorageModelBase::exportMetrics(telemetry::MetricsRegistry& reg) const {
  double queued = 0.0;
  double busy = 0.0;
  double completed = 0.0;
  for (const auto& q : metaQueues_) {
    queued += static_cast<double>(q->queued());
    busy += static_cast<double>(q->busy());
    completed += static_cast<double>(q->completed());
  }
  if (!metaQueues_.empty()) {
    reg.counter(name_ + ".meta.ops_completed", completed);
    reg.gauge(name_ + ".meta.queued", queued);
    reg.gauge(name_ + ".meta.busy", busy);
    reg.gauge(name_ + ".meta.servers_active", static_cast<double>(activeMetadataServers()));
  }
}

void StorageModelBase::beginPhase(const PhaseSpec& phase) {
  phase_ = phase;
  inPhase_ = true;
  onPhaseChange();
}

void StorageModelBase::endPhase() { inPhase_ = false; }

LinkId StorageModelBase::clientNic(std::uint32_t node) const {
  return clientNics_[node % clientNics_.size()];
}

void StorageModelBase::launchTransfer(const IoRequest& req, Bytes bytes, const Route& route,
                                      Bandwidth streamCap, Seconds perOpOverhead,
                                      Seconds startupLatency, IoCallback cb,
                                      double streamScale) {
  FlowSpec spec;
  spec.bytes = bytes;
  spec.route = route;
  const Bytes perOp = req.ops > 0 ? req.bytes / req.ops : req.bytes;
  if (req.sharedFile) perOpOverhead += sharedFileLockLatency_;
  // The cap is per process stream; an aggregated flow carries
  // `req.streams` of them (scaled down for split portions).
  spec.rateCap = perOp > 0 ? overheadAdjustedCap(streamCap, perOpOverhead, perOp) : streamCap;
  spec.rateCap *= static_cast<double>(std::max<std::uint32_t>(1, req.streams)) * streamScale;
  if (req.sharedFile) spec.rateCap *= sharedFileEfficiency_;
  spec.weight = req.qosWeight;
  // Flow-class aggregation: the cap/weight above are per member; the
  // class transfers `bytes` per member and claims `members` fair shares.
  spec.members = std::max<std::uint32_t>(1, req.members);
  spec.startupLatency = startupLatency;
  telemetry::Telemetry* tel = topo_.network().telemetry();
  if (tel && tel->enabled()) {
    spec.spanName = name_ + (isRead(req.pattern) ? ".read" : ".write");
    spec.spanPid = req.client.node;
    spec.spanTid = req.client.proc;
  }
  auto complete = [cb = std::move(cb)](const FlowCompletion& done) {
    if (cb) cb(IoResult{done.startTime, done.endTime, done.bytes});
  };
  if (fabric_) {
    fabric_->launch(std::move(spec), req, std::move(complete));
    return;
  }
  topo_.network().startFlow(spec, std::move(complete));
}

}  // namespace hcsim
