#include "workload/io500_source.hpp"

#include <algorithm>
#include <cmath>

namespace hcsim::workload {

namespace {
constexpr std::size_t kPhases = 4;

const char* phaseLabel(std::size_t phase) {
  switch (phase) {
    case 0: return "io500.easy-write";
    case 1: return "io500.hard-write";
    case 2: return "io500.easy-read";
    default: return "io500.hard-read";
  }
}
}  // namespace

PhaseSpec Io500Source::phaseSpec(std::size_t phase) const {
  PhaseSpec ph;
  ph.nodes = static_cast<std::uint32_t>(cfg_.nodes);
  ph.procsPerNode = static_cast<std::uint32_t>(cfg_.procsPerNode);
  Bytes total = 0;
  for (const RankState& st : ranks_) {
    total += phaseOps(st, phase) * (phase == 0 || phase == 2 ? cfg_.easyTransfer
                                                             : cfg_.hardTransfer);
  }
  ph.workingSetBytes = total;
  switch (phase) {
    case 0:
      ph.pattern = AccessPattern::SequentialWrite;
      ph.requestSize = cfg_.easyTransfer;
      break;
    case 1:
      ph.pattern = AccessPattern::SequentialWrite;
      ph.requestSize = cfg_.hardTransfer;
      break;
    case 2:
      ph.pattern = AccessPattern::SequentialRead;
      ph.requestSize = cfg_.easyTransfer;
      break;
    default:
      ph.pattern = AccessPattern::RandomRead;
      ph.requestSize = cfg_.hardTransfer;
      break;
  }
  return ph;
}

WorkloadPlan Io500Source::load(const WorkloadContext& ctx) {
  (void)ctx;
  ranks_.resize(cfg_.totalRanks());
  hardFileBytes_ = 0;
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    for (std::uint32_t p = 0; p < cfg_.procsPerNode; ++p) {
      const std::size_t rank = n * cfg_.procsPerNode + p;
      RankState& st = ranks_[rank];
      st.client = ClientId{n, p};
      st.rng.reseed(cfg_.seed ^ ((rank + 1) * 0x9e3779b97f4a7c15ull));
      // Per-rank volumes: lognormal around the configured median, then
      // scaled — submission working sets span orders of magnitude.
      const double easyDraw =
          cfg_.volumeSigma > 0.0 ? st.rng.lognormal(0.0, cfg_.volumeSigma) : 1.0;
      const double hardDraw =
          cfg_.volumeSigma > 0.0 ? st.rng.lognormal(0.0, cfg_.volumeSigma) : 1.0;
      st.easyOps = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 static_cast<double>(cfg_.easyOpsMedian) * cfg_.scale * easyDraw)));
      st.hardOps = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 static_cast<double>(cfg_.hardOpsMedian) * cfg_.scale * hardDraw)));
      hardFileBytes_ += st.hardOps * cfg_.hardTransfer;
    }
  }
  WorkloadPlan plan;
  plan.ranks = ranks_.size();
  plan.phase = phaseSpec(0);
  return plan;
}

NextStatus Io500Source::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  if (st.done) return NextStatus::End;
  if (st.pending) return NextStatus::Wait;

  if (st.opIdx >= phaseOps(st, st.phase)) {
    // Phase finished: barrier, and the release flips the model to the
    // next phase's declaration (the IO500 harness syncs between phases).
    if (st.phase + 1 >= kPhases) {
      st.done = true;
      return NextStatus::End;
    }
    ++st.phase;
    st.opIdx = 0;
    st.cursor = 0;
    out.kind = OpKind::Barrier;
    out.switchPhase = true;
    out.phase = phaseSpec(st.phase);
    return NextStatus::Op;
  }

  const std::size_t phase = st.phase;
  const bool easy = phase == 0 || phase == 2;
  const Bytes xfer = easy ? cfg_.easyTransfer : cfg_.hardTransfer;
  out.kind = OpKind::Io;
  out.io.client = st.client;
  out.io.fileId = easy ? static_cast<std::uint64_t>(rank) + 1 : 0;
  out.io.sharedFile = !easy;
  out.io.bytes = xfer;
  out.io.ops = 1;
  switch (phase) {
    case 0:
      out.io.pattern = AccessPattern::SequentialWrite;
      out.io.offset = st.cursor;
      break;
    case 1: {
      out.io.pattern = AccessPattern::SequentialWrite;
      // Hard phase: ranks interleave fixed-size records in the shared
      // file, so consecutive ops of one rank are strided by the rank
      // count — the unaligned-and-contended geometry IO500 punishes.
      out.io.offset =
          (st.opIdx * cfg_.totalRanks() + rank) * static_cast<std::uint64_t>(xfer);
      break;
    }
    case 2:
      out.io.pattern = AccessPattern::SequentialRead;
      out.io.offset = st.cursor;
      break;
    default: {
      out.io.pattern = AccessPattern::RandomRead;
      const std::uint64_t slots = std::max<std::uint64_t>(1, hardFileBytes_ / xfer);
      out.io.offset = st.rng.uniformInt(slots) * static_cast<std::uint64_t>(xfer);
      break;
    }
  }
  st.cursor += xfer;
  ++st.opIdx;
  out.traced = true;
  out.label = phaseLabel(phase);
  out.tracePid = st.client.node;
  out.traceTid = st.client.proc;
  st.pending = true;
  return NextStatus::Op;
}

void Io500Source::onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
  (void)op;
  (void)result;
  ranks_[rank].pending = false;
}

}  // namespace hcsim::workload
