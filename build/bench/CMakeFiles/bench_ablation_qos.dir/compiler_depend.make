# Empty compiler generated dependencies file for bench_ablation_qos.
# This may be replaced when dependencies are built.
