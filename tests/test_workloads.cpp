#include "workloads/app_workloads.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(AppWorkloads, SuiteCoversAllThreeDomains) {
  const auto all = workloads::suite(2, 8);
  EXPECT_GE(all.size(), 8u);
  std::size_t scientific = 0, analytics = 0, ml = 0;
  for (const auto& w : all) {
    if (w.domain == "scientific") ++scientific;
    if (w.domain == "analytics") ++analytics;
    if (w.domain == "ML/DL") ++ml;
    EXPECT_FALSE(w.name.empty());
    EXPECT_FALSE(w.description.empty());
  }
  EXPECT_GE(scientific, 2u);
  EXPECT_GE(analytics, 2u);
  EXPECT_GE(ml, 3u);
}

TEST(AppWorkloads, Cm1MatchesPaperDescription) {
  // "generates more than 750 files each of 16 MB in size".
  const AppWorkload w = workloads::cm1(1, 8);
  ASSERT_EQ(w.phases.size(), 1u);
  EXPECT_EQ(w.phases[0].ior.access, AccessPattern::SequentialWrite);
  const Bytes total = w.phases[0].ior.totalBytes();
  EXPECT_GE(total, 750ull * 16 * units::MB);
}

TEST(AppWorkloads, HaccIoIsCheckpointThenRestart) {
  const AppWorkload w = workloads::haccIo(2, 4);
  ASSERT_EQ(w.phases.size(), 2u);
  EXPECT_EQ(w.phases[0].ior.access, AccessPattern::SequentialWrite);
  EXPECT_EQ(w.phases[1].ior.access, AccessPattern::SequentialRead);
  EXPECT_TRUE(w.phases[1].ior.reorderTasks);  // restart on other nodes
}

TEST(AppWorkloads, BdCatsUsesOneSharedFile) {
  // "operates on a shared HDF5 file using MPI-IO".
  const AppWorkload w = workloads::bdCats(2, 4);
  EXPECT_FALSE(w.phases[0].ior.filePerProcess);
}

TEST(AppWorkloads, KmeansIterates) {
  const AppWorkload w = workloads::kmeans(1, 4, 5);
  EXPECT_EQ(w.phases[0].iterations, 5u);
  EXPECT_EQ(w.phases[0].ior.access, AccessPattern::SequentialRead);
}

TEST(AppWorkloads, DlWorkloadsAreDlio) {
  for (const AppWorkload& w :
       {workloads::resnet50(2), workloads::cosmoflow(2), workloads::cosmicTagger(2)}) {
    EXPECT_TRUE(w.isDlio);
    EXPECT_EQ(w.dlio.nodes, 2u);
  }
  // Cosmic Tagger's defining constraints: few reader threads, HDF5 chunks.
  const AppWorkload ct = workloads::cosmicTagger(2);
  EXPECT_LE(ct.dlio.workload.ioThreads, 2u);
  EXPECT_EQ(ct.dlio.workload.transferSize, 512 * units::KB);
}

TEST(RunAppWorkload, IorWorkloadProducesPerPhaseResults) {
  AppWorkload w = workloads::haccIo(2, 4);
  // Shrink for test speed.
  for (auto& p : w.phases) p.ior.segments = 64;
  const AppWorkloadResult r = runAppWorkload(Site::Wombat, StorageKind::Vast, w);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_GT(r.phases[0].bandwidthGBs, 0.0);
  EXPECT_GT(r.phases[1].bandwidthGBs, 0.0);
  EXPECT_GT(r.totalBytes, 0u);
  EXPECT_GT(r.aggregateGBs(), 0.0);
}

TEST(RunAppWorkload, IterationsProduceOneResultEach) {
  AppWorkload w = workloads::kmeans(1, 4, 3);
  w.phases[0].ior.segments = 32;
  const AppWorkloadResult r = runAppWorkload(Site::Wombat, StorageKind::Vast, w);
  EXPECT_EQ(r.phases.size(), 3u);
}

TEST(RunAppWorkload, KmeansLaterPassesBenefitFromCaches) {
  // Iterative analytics re-read the same working set: on VAST the DNode
  // cache serves repeat passes, so later iterations are not slower.
  AppWorkload w = workloads::kmeans(1, 8, 2);
  w.phases[0].ior.segments = 128;
  const AppWorkloadResult r = runAppWorkload(Site::Wombat, StorageKind::Vast, w);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_GE(r.phases[1].bandwidthGBs, 0.9 * r.phases[0].bandwidthGBs);
}

TEST(RunAppWorkload, DlioWorkloadReportsThroughputs) {
  AppWorkload w = workloads::resnet50(1);
  w.dlio.workload.samples = 16;
  const AppWorkloadResult r = runAppWorkload(Site::Lassen, StorageKind::Gpfs, w);
  EXPECT_GT(r.sysThroughputGBs, 0.0);
  EXPECT_GT(r.totalBytes, 0u);
  EXPECT_GT(r.totalTime, 0.0);
}

TEST(RunAppWorkload, BdCatsSharedFileSlowerThanFilePerProcess) {
  AppWorkload shared = workloads::bdCats(2, 8);
  shared.phases[0].ior.segments = 128;
  AppWorkload nn = shared;
  nn.phases[0].ior.filePerProcess = true;
  const double sharedBw =
      runAppWorkload(Site::Lassen, StorageKind::Gpfs, shared).phases[0].bandwidthGBs;
  const double nnBw = runAppWorkload(Site::Lassen, StorageKind::Gpfs, nn).phases[0].bandwidthGBs;
  EXPECT_LT(sharedBw, nnBw);
}

}  // namespace
}  // namespace hcsim
