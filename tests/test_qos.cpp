// Weighted max-min fairness (QoS) tests — the mechanism behind storage
// QoS policies: flows carry weights; progressive filling raises rates in
// proportion to weight.

#include <gtest/gtest.h>

#include "net/flow_network.hpp"

namespace hcsim {
namespace {

struct Harness {
  Simulator sim;
  FlowNetwork net{sim};
};

TEST(WeightedFairness, DefaultWeightIsPlainMaxMin) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  const FlowId a = h.net.startFlow({10000, {l}}, nullptr);
  const FlowId b = h.net.startFlow({10000, {l}}, nullptr);
  EXPECT_NEAR(h.net.flowRate(a), 50.0, 1e-9);
  EXPECT_NEAR(h.net.flowRate(b), 50.0, 1e-9);
  h.sim.run();
}

TEST(WeightedFairness, RatesSplitByWeight) {
  Harness h;
  const LinkId l = h.net.addLink("l", 90.0);
  FlowSpec heavy{100000, {l}};
  heavy.weight = 2.0;
  FlowSpec light{100000, {l}};
  light.weight = 1.0;
  const FlowId a = h.net.startFlow(heavy, nullptr);
  const FlowId b = h.net.startFlow(light, nullptr);
  EXPECT_NEAR(h.net.flowRate(a), 60.0, 1e-9);
  EXPECT_NEAR(h.net.flowRate(b), 30.0, 1e-9);
  h.sim.run();
}

TEST(WeightedFairness, CappedHeavyFlowYieldsLeftoverToLight) {
  Harness h;
  const LinkId l = h.net.addLink("l", 90.0);
  FlowSpec heavy{100000, {l}};
  heavy.weight = 2.0;
  heavy.rateCap = 30.0;  // cap below its 60 share
  const FlowId a = h.net.startFlow(heavy, nullptr);
  const FlowId b = h.net.startFlow({100000, {l}}, nullptr);
  EXPECT_NEAR(h.net.flowRate(a), 30.0, 1e-9);
  EXPECT_NEAR(h.net.flowRate(b), 60.0, 1e-9);
  h.sim.run();
}

TEST(WeightedFairness, CompletionTimesFollowWeights) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime endHeavy = 0, endLight = 0;
  FlowSpec heavy{3000, {l}};
  heavy.weight = 3.0;
  FlowSpec light{3000, {l}};
  light.weight = 1.0;
  h.net.startFlow(heavy, [&](const FlowCompletion& c) { endHeavy = c.endTime; });
  h.net.startFlow(light, [&](const FlowCompletion& c) { endLight = c.endTime; });
  h.sim.run();
  // Heavy runs at 75 B/s -> 3000B in 40s; light then finishes its rest.
  EXPECT_LT(endHeavy, endLight);
  EXPECT_NEAR(endHeavy, 40.0, 1e-6);
  // Light: 40s at 25 B/s = 1000B done, 2000B left at 100 B/s -> t=60.
  EXPECT_NEAR(endLight, 60.0, 1e-6);
}

TEST(WeightedFairness, InvalidWeightRejected) {
  Harness h;
  const LinkId l = h.net.addLink("l", 10.0);
  FlowSpec bad{100, {l}};
  bad.weight = 0.0;
  EXPECT_THROW(h.net.startFlow(bad, nullptr), std::invalid_argument);
  bad.weight = -1.0;
  EXPECT_THROW(h.net.startFlow(bad, nullptr), std::invalid_argument);
}

TEST(WeightedFairness, MultiLinkWeightedBottleneck) {
  // Weighted flow shares only the link it crosses.
  Harness h;
  const LinkId a = h.net.addLink("a", 100.0);
  const LinkId b = h.net.addLink("b", 100.0);
  FlowSpec wide{100000, {a, b}};
  wide.weight = 3.0;
  const FlowId f1 = h.net.startFlow(wide, nullptr);
  const FlowId f2 = h.net.startFlow({100000, {a}}, nullptr);
  // On link a: weights 3:1 -> 75/25.
  EXPECT_NEAR(h.net.flowRate(f1), 75.0, 1e-9);
  EXPECT_NEAR(h.net.flowRate(f2), 25.0, 1e-9);
  h.sim.run();
}

TEST(WeightedFairness, NoOversubscriptionUnderMixedWeights) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  for (int i = 0; i < 6; ++i) {
    FlowSpec s{10000, {l}};
    s.weight = 0.5 + i;
    h.net.startFlow(s, nullptr);
  }
  const auto stats = h.net.linkStats();
  EXPECT_LE(stats[0].allocated, 100.0 * (1 + 1e-9));
  EXPECT_GE(stats[0].allocated, 100.0 * (1 - 1e-6));  // work conserving
  h.sim.run();
}

}  // namespace
}  // namespace hcsim
