#pragma once
// PrefetchCache — a sequential-readahead block cache modelled on the GPFS
// pagepool.
//
// GPFS detects sequential streams and prefetches aggressively, which is
// why the paper measures 14.5 GB/s per node for sequential reads but only
// 1.4 GB/s for random reads ("its caching mechanisms are optimized for
// sequential reads where the spatial locality can be exploited, but get
// thrashed more in random access patterns"). The model: block-granular
// LRU + per-file run detection; a detected run prefetches `readahead`
// blocks, so subsequent sequential reads hit. Random reads both miss and
// pollute the cache, and wasted readahead consumes backend bandwidth.

#include <cstdint>
#include <unordered_map>

#include "cache/lru_cache.hpp"
#include "util/units.hpp"

namespace hcsim {

/// Outcome of one read through the cache: bytes served from memory vs
/// bytes that must come from the backend (including readahead issued on
/// the caller's behalf — `backendBytes` can exceed the request size).
struct CacheReadResult {
  Bytes cachedBytes = 0;
  Bytes backendBytes = 0;
};

class PrefetchCache {
 public:
  /// `capacity` in bytes, `blockSize` of cache pages, `readahead` blocks
  /// fetched ahead of a detected sequential run (0 disables prefetch).
  PrefetchCache(Bytes capacity, Bytes blockSize, std::size_t readahead,
                std::size_t runThreshold = 2);

  /// Read [offset, offset+size) of file `fileId` through the cache.
  CacheReadResult read(std::uint64_t fileId, Bytes offset, Bytes size);

  /// Write-allocate: writes populate the cache (dirty-data modelling is
  /// handled separately by WritebackBuffer).
  void writeAllocate(std::uint64_t fileId, Bytes offset, Bytes size);

  /// Drop residency but keep statistics.
  void invalidateAll();

  Bytes capacity() const { return lru_.capacity(); }
  Bytes blockSize() const { return blockSize_; }

  std::uint64_t hitBlocks() const { return lru_.hits(); }
  std::uint64_t missBlocks() const { return lru_.misses(); }
  Bytes prefetchedBytes() const { return prefetchedBytes_; }
  double hitRatio() const { return lru_.hitRatio(); }
  void resetCounters();

 private:
  static std::uint64_t packKey(std::uint64_t fileId, std::uint64_t block) {
    return (fileId << 28) ^ block;  // files are small counts; blocks < 2^28
  }

  void prefetch(std::uint64_t fileId, std::uint64_t fromBlock, CacheReadResult& result);

  LruCache lru_;
  Bytes blockSize_;
  std::size_t readahead_;
  std::size_t runThreshold_;
  Bytes prefetchedBytes_ = 0;

  struct Stream {
    std::uint64_t lastBlock = UINT64_MAX;
    std::size_t runLength = 0;
  };
  std::unordered_map<std::uint64_t, Stream> streams_;
};

}  // namespace hcsim
