// Fig 1 — "The differences between VAST and GPFS on Lassen."
//
// The paper's Fig 1 is an architecture diagram; the simulator equivalent
// is the wired topology. This bench instantiates both deployments and
// dumps every link (name, capacity, latency), making the single-gateway
// TCP funnel of Fig 1a vs the 16-NSD fan-out of Fig 1b visible.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

void dump(const char* title, Site site, StorageKind kind) {
  Environment env = makeEnvironment(site, kind, /*nodes=*/2);
  // Touch the model so lazily created per-node links (sessions, client
  // caps) exist for both wired nodes.
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  ph.nodes = 2;
  ph.procsPerNode = 2;
  env.fs->beginPhase(ph);
  for (std::uint32_t n = 0; n < 2; ++n) {
    IoRequest req;
    req.client = ClientId{n, 0};
    req.fileId = n + 1;
    req.bytes = units::MiB;
    req.pattern = AccessPattern::SequentialWrite;
    env.fs->submit(req, nullptr);
  }
  env.bench->sim().run();
  env.fs->endPhase();

  ResultTable t(title);
  t.setHeader({"link", "capacity GB/s", "latency us"});
  for (const auto& ls : env.bench->topo().network().linkStats()) {
    t.addRow({ls.name, units::toGBs(ls.capacity), ls.latency * 1e6});
  }
  t.setPrecision(2);
  std::printf("%s\n", t.toString().c_str());
  std::printf("total capacity: %s\n\n", formatBytes(env.fs->totalCapacity()).c_str());
}

}  // namespace

int main() {
  std::printf("== Fig 1: architecture of the two Lassen deployments ==\n\n");
  dump("Fig 1a: VAST on Lassen (NFS/TCP through one gateway node)", Site::Lassen,
       StorageKind::Vast);
  dump("Fig 1b: GPFS on Lassen (16 NSD servers, HDD RAID)", Site::Lassen, StorageKind::Gpfs);
  return 0;
}
