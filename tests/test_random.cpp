#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hcsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniformInt(17), 17u);
  }
}

TEST(Rng, UniformIntZeroAndOne) {
  Rng r(6);
  EXPECT_EQ(r.uniformInt(0), 0u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(2.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesExpOfNormal) {
  Rng r(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, NormalAtLeastRespectsFloor) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.normalAtLeast(0.0, 10.0, 0.25), 0.25);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

// Property sweep: uniformInt is unbiased enough across bound choices.
class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsTest, UniformIntMeanNearHalfBound) {
  const std::uint64_t bound = GetParam();
  Rng r(bound * 2654435761u + 1);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.uniformInt(bound));
  const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  EXPECT_NEAR(sum / n, expected, 0.02 * static_cast<double>(bound) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 1u << 20));

}  // namespace
}  // namespace hcsim
