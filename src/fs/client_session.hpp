#pragma once
// ClientSession — POSIX-flavoured per-process file handle over a
// FileSystemModel. One session == one process's sequential I/O stream
// (IOR file-per-process, or one DLIO reader thread).
//
// With retry enabled (hcsim::chaos), each request races a timeout: if
// the storage model has not completed it within the deadline — an op
// stranded on a failed component stalls at rate 0 — the client gives up
// on that attempt, waits an exponential backoff, and re-submits fresh.
// The re-submitted attempt routes over whatever is alive *now*, so
// retries are charged to the surviving capacity. A late completion of
// an abandoned attempt is swallowed (the bytes still moved through the
// network — exactly the duplicate work a real timed-out-but-delivered
// RPC costs). After `maxRetries` unsuccessful re-submissions the op
// fails: the callback fires with IoResult::failed set and 0 bytes.
//
// Flow classes (hcsim::scale): a request with `members = N` is ONE op
// of this session's stream, whatever N is. The timeout, the settled
// flag, the backoff wait and every counter (retries, failedOps,
// lateCompletions) operate per class op — a timed-out class re-submits
// once and bills one retry, never N. Re-submission preserves the member
// count, and a class of size 1 is exactly the legacy path.

#include <cstdint>
#include <functional>
#include <memory>

#include "fs/file_system_model.hpp"

namespace hcsim {

/// Client-side timeout/retry/backoff parameters.
struct RetryPolicy {
  Seconds timeout = 30.0;          ///< per-attempt completion deadline
  std::size_t maxRetries = 4;      ///< re-submissions after the first attempt
  Seconds backoffBase = 0.25;      ///< wait before the first retry
  double backoffMultiplier = 2.0;  ///< backoffBase * mult^(retry-1)
};

class ClientSession {
 public:
  /// `fileId` identifies the file this session operates on (N-N: unique
  /// per process; N-1: shared id across sessions).
  ClientSession(FileSystemModel& fs, ClientId client, std::uint64_t fileId)
      : fs_(&fs), client_(client), fileId_(fileId) {}

  ClientId client() const { return client_; }
  std::uint64_t fileId() const { return fileId_; }
  Bytes cursor() const { return cursor_; }
  void seek(Bytes offset) { cursor_ = offset; }

  /// Arm the timeout/retry/backoff path for every subsequent request.
  /// The session must outlive all pending requests. Without this call
  /// requests pass straight through to the model, byte-identically to
  /// the pre-retry behaviour.
  void enableRetry(Simulator& sim, RetryPolicy policy) {
    retrySim_ = &sim;
    policy_ = policy;
  }

  /// Retry-layer counters (0 until enableRetry).
  std::uint64_t retries() const { return retries_; }
  std::uint64_t failedOps() const { return failedOps_; }
  std::uint64_t lateCompletions() const { return lateCompletions_; }

  /// Submit a fully-formed request through the session's retry layer
  /// (the request's own client/fileId/offset are used as given; the
  /// cursor is untouched). Without retry this is a straight pass-through
  /// to the model — byte-identical to calling FileSystemModel::submit.
  /// This is how WorkloadRunner issues every generator's I/O.
  void submitRequest(const IoRequest& req, std::function<void(const IoResult&)> done);

  /// Write `size` bytes at the cursor (advances it). `fsync` waits for
  /// stable storage, as IOR -e does.
  void write(Bytes size, bool fsync, std::function<void(const IoResult&)> done);

  /// Sequential read at the cursor (advances it).
  void read(Bytes size, std::function<void(const IoResult&)> done);

  /// Random read at an explicit offset (cursor unchanged).
  void readAt(Bytes offset, Bytes size, std::function<void(const IoResult&)> done);

  /// Random write at an explicit offset (cursor unchanged).
  void writeAt(Bytes offset, Bytes size, bool fsync, std::function<void(const IoResult&)> done);

  /// Coalesced run of `ops` sequential same-size operations (see
  /// DESIGN.md §5); advances the cursor by ops*size.
  void writeRun(Bytes size, std::uint64_t ops, bool fsync,
                std::function<void(const IoResult&)> done);
  void readRun(Bytes size, std::uint64_t ops, std::function<void(const IoResult&)> done);
  void randomReadRun(Bytes size, std::uint64_t ops, std::function<void(const IoResult&)> done);

 private:
  void submit(Bytes offset, Bytes size, std::uint64_t ops, AccessPattern pattern, bool fsync,
              std::function<void(const IoResult&)> done);
  void submitAttempt(const IoRequest& req, std::size_t attempt, SimTime opStart,
                     std::shared_ptr<IoCallback> done);

  FileSystemModel* fs_;
  ClientId client_;
  std::uint64_t fileId_;
  Bytes cursor_ = 0;

  Simulator* retrySim_ = nullptr;  ///< non-null once enableRetry was called
  RetryPolicy policy_{};
  std::uint64_t retries_ = 0;
  std::uint64_t failedOps_ = 0;
  std::uint64_t lateCompletions_ = 0;
};

}  // namespace hcsim
