file(REMOVE_RECURSE
  "CMakeFiles/hcsim_cli.dir/__/tools/hcsim.cpp.o"
  "CMakeFiles/hcsim_cli.dir/__/tools/hcsim.cpp.o.d"
  "hcsim"
  "hcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
