#include "vast/vast_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

VastModel::VastModel(Simulator& sim, Topology& topo, VastConfig config,
                     std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      qlcPool_(cfg_.qlcSpec, cfg_.dboxes * cfg_.qlcPerBox),
      scmPool_(cfg_.scmSpec, cfg_.dboxes * cfg_.scmPerBox),
      scm_(cfg_.totalScmBytes(),
           // Background migration drains raw client bytes at the QLC
           // programming rate inflated by the similarity reduction (only
           // (1 - reduction) of each byte is physically written).
           qlcPool_.effectiveBandwidth(AccessPattern::SequentialWrite, units::MiB) /
               (1.0 - cfg_.dataReductionRatio)) {
  cfg_.validate();
  // Metadata: any CNode resolves any element directly from SCM.
  configureMetadataPath(cfg_.cnodes, cfg_.metadataServiceTime, cfg_.rpcLatency(),
                        cfg_.metadataSharedDirPenalty);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
  Topology& t = topology();

  cnodeLinks_.reserve(cfg_.cnodes);
  cnodeCommitQueues_.reserve(cfg_.cnodes);
  for (std::size_t i = 0; i < cfg_.cnodes; ++i) {
    cnodeLinks_.push_back(t.addLink(cfg_.name + ".cnode[" + std::to_string(i) + "]",
                                    cfg_.cnodeReadBandwidth));
    cnodeCommitQueues_.push_back(std::make_unique<DeviceQueue>(
        sim, 1, cfg_.name + ".commit[" + std::to_string(i) + "]"));
  }

  fabricLink_ = t.addLink(cfg_.name + ".fabric",
                          static_cast<double>(cfg_.dboxes * cfg_.fabricLinksPerBox) *
                              cfg_.fabricLinkBandwidth,
                          cfg_.fabricLatency);

  deviceReadLink_ = t.addLink(cfg_.name + ".qlc.read",
                              qlcPool_.effectiveBandwidth(AccessPattern::SequentialRead,
                                                          units::MiB));
  deviceWriteLink_ = t.addLink(cfg_.name + ".scm.write",
                               scmPool_.effectiveBandwidth(AccessPattern::SequentialWrite,
                                                           units::MiB));

  if (cfg_.gateway.present) {
    // One link per gateway NODE: physical Ethernet aggregate, further
    // clamped by the single-TCP-pipe ceiling for TCP deployments.
    Bandwidth perGw = static_cast<double>(cfg_.gateway.linksPerNode) * cfg_.gateway.linkBandwidth;
    if (cfg_.transport == NfsTransport::Tcp) perGw = std::min(perGw, cfg_.tcpGatewayPipeCap);
    gatewayGroup_ = t.addGroup(cfg_.name + ".gw", cfg_.gateway.nodes, perGw, cfg_.gateway.latency);
  }
}

const std::vector<LinkId>& VastModel::sessionsFor(std::uint32_t node) {
  auto it = sessions_.find(node);
  if (it != sessions_.end()) return it->second;
  std::vector<LinkId> links;
  const std::size_t n = cfg_.sessionsPerClient();
  links.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    links.push_back(topology().addLink(
        cfg_.name + ".sess.n" + std::to_string(node) + "[" + std::to_string(s) + "]",
        cfg_.sessionCap()));
  }
  return sessions_.emplace(node, std::move(links)).first->second;
}

std::size_t VastModel::cnodeFor(std::uint32_t node, std::size_t session) const {
  const std::size_t hash = static_cast<std::size_t>(node) * cfg_.sessionsPerClient() + session;
  if (failedCNodes_.empty()) return hash % cfg_.cnodes;
  // Virtual-IP failover: sessions remap onto the surviving CNodes.
  std::vector<std::size_t> alive;
  alive.reserve(cfg_.cnodes - failedCNodes_.size());
  for (std::size_t i = 0; i < cfg_.cnodes; ++i) {
    if (!failedCNodes_.count(i)) alive.push_back(i);
  }
  if (alive.empty()) {
    throw std::runtime_error(cfg_.name + ": all CNodes failed — store unavailable");
  }
  return alive[hash % alive.size()];
}

double VastModel::boxFraction() const {
  return static_cast<double>(cfg_.dboxes - failedBoxes_.size()) /
         static_cast<double>(cfg_.dboxes);
}

double VastModel::fabricFraction() const {
  double alive = 0.0;
  for (std::size_t b = 0; b < cfg_.dboxes; ++b) {
    if (failedBoxes_.count(b)) continue;
    alive += degradedBoxes_.count(b) ? 0.5 : 1.0;  // HA pair: one DNode left
  }
  return alive / static_cast<double>(cfg_.dboxes);
}

void VastModel::failCNode(std::size_t index) {
  if (index >= cfg_.cnodes) throw std::out_of_range("failCNode: bad index");
  failedCNodes_.insert(index);
  // NFS failover: in-flight operations retry against a surviving CNode
  // (virtual-IP migration); reroute their flows before the capacity drop
  // strands them.
  std::size_t survivor = cfg_.cnodes;
  for (std::size_t i = 0; i < cfg_.cnodes; ++i) {
    if (!failedCNodes_.count(i)) {
      survivor = i;
      break;
    }
  }
  if (survivor < cfg_.cnodes) {
    topology().network().replaceLinkInFlows(cnodeLinks_[index], cnodeLinks_[survivor]);
  }
  applyDegradation();
}

void VastModel::restoreCNode(std::size_t index) {
  failedCNodes_.erase(index);
  applyDegradation();
}

void VastModel::failDNode(std::size_t box) {
  if (box >= cfg_.dboxes) throw std::out_of_range("failDNode: bad box");
  degradedBoxes_.insert(box);
  applyDegradation();
}

void VastModel::restoreDNode(std::size_t box) {
  degradedBoxes_.erase(box);
  applyDegradation();
}

void VastModel::failDBox(std::size_t box) {
  if (box >= cfg_.dboxes) throw std::out_of_range("failDBox: bad box");
  failedBoxes_.insert(box);
  applyDegradation();
}

void VastModel::restoreDBox(std::size_t box) {
  failedBoxes_.erase(box);
  applyDegradation();
}

bool VastModel::applyFault(const FaultSpec& f) {
  FlowNetwork& net = topology().network();
  if (f.component == "cnode") {
    if (f.index >= cfg_.cnodes) throw std::out_of_range("vast: cnode index out of range");
    switch (f.action) {
      case FaultAction::Fail:
        failCNode(f.index);
        break;
      case FaultAction::FailSlow:
        net.setLinkHealth(cnodeLinks_[f.index], f.severity);
        break;
      case FaultAction::Restore:
        net.setLinkHealth(cnodeLinks_[f.index], 1.0);  // clears a fail-slow too
        restoreCNode(f.index);
        break;
    }
    return true;
  }
  if (f.component == "dnode" || f.component == "dbox") {
    if (f.index >= cfg_.dboxes) {
      throw std::out_of_range("vast: " + f.component + " index out of range");
    }
    const bool wholeBox = f.component == "dbox";
    switch (f.action) {
      case FaultAction::Fail:
        wholeBox ? failDBox(f.index) : failDNode(f.index);
        break;
      case FaultAction::Restore:
        wholeBox ? restoreDBox(f.index) : restoreDNode(f.index);
        break;
      case FaultAction::FailSlow:
        throw std::invalid_argument("vast: " + f.component +
                                    " is an HA enclosure: fail/restore only");
    }
    return true;
  }
  return false;
}

std::size_t VastModel::faultComponentCount(const std::string& component) const {
  if (component == "cnode") return cfg_.cnodes;
  if (component == "dnode" || component == "dbox") return cfg_.dboxes;
  return 0;
}

Route VastModel::rebuildRoute(const FaultSpec&) {
  return {fabricLink_, deviceReadLink_};
}

Route VastModel::baseRoute(const IoRequest& req, std::size_t session) {
  Route r;
  r.push_back(clientNic(req.client.node));
  r.push_back(sessionsFor(req.client.node)[session]);
  if (cfg_.gateway.present) {
    r.push_back(topology().pickAt(gatewayGroup_, req.client.node));
  }
  r.push_back(cnodeLinks_[cnodeFor(req.client.node, session)]);
  r.push_back(fabricLink_);
  return r;
}

void VastModel::applyDegradation() {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  FlowNetwork& net = topology().network();
  const bool readPhase = !inPhase() || isRead(ph.pattern);

  for (std::size_t i = 0; i < cnodeLinks_.size(); ++i) {
    const Bandwidth cap = failedCNodes_.count(i)
                              ? 0.0
                              : (readPhase ? cfg_.cnodeReadBandwidth : cfg_.cnodeWriteBandwidth);
    net.setLinkCapacity(cnodeLinks_[i], cap);
  }

  net.setLinkCapacity(fabricLink_, static_cast<double>(cfg_.dboxes * cfg_.fabricLinksPerBox) *
                                       cfg_.fabricLinkBandwidth * fabricFraction());

  const double devFrac = boxFraction();
  net.setLinkCapacity(deviceReadLink_,
                      qlcPool_.effectiveBandwidth(
                          isSequential(ph.pattern) ? AccessPattern::SequentialRead
                                                   : AccessPattern::RandomRead,
                          req) *
                          devFrac);

  // Write pool: SCM absorbs at full speed while it has headroom; once
  // ~full, the client-visible rate collapses to the QLC migration rate.
  const Bytes dirty = scm_.dirty(simulator().now());
  const bool scmFull = dirty > cfg_.totalScmBytes() - cfg_.totalScmBytes() / 10;
  const Bandwidth writeCap =
      (scmFull ? scm_.drainRate()
               : scmPool_.effectiveBandwidth(AccessPattern::SequentialWrite, req)) *
      devFrac;
  net.setLinkCapacity(deviceWriteLink_, writeCap);
}

void VastModel::onPhaseChange() {
  const PhaseSpec& ph = phase();
  applyDegradation();

  // DNode read-cache hit ratio for this phase.
  if (isRead(ph.pattern)) {
    if (ph.workingSetBytes > 0 && cfg_.dnodeCacheBytes > 0) {
      hitRatio_ = std::min(1.0, static_cast<double>(cfg_.dnodeCacheBytes) /
                                    static_cast<double>(ph.workingSetBytes));
    } else {
      hitRatio_ = cfg_.defaultReadCacheHitRatio;
    }
  } else {
    hitRatio_ = 0.0;
  }
}

Bandwidth VastModel::deviceReadCapacity() const {
  return topology().network().link(deviceReadLink_).capacity;
}

Bandwidth VastModel::deviceWriteCapacity() const {
  return topology().network().link(deviceWriteLink_).capacity;
}

void VastModel::exportMetrics(telemetry::MetricsRegistry& reg) const {
  StorageModelBase::exportMetrics(reg);
  const std::string& n = name();
  reg.gauge(n + ".cache.read_hit_ratio", hitRatio_);
  reg.gauge(n + ".scm.dirty_bytes", static_cast<double>(scmDirtyBytes()));
  reg.gauge(n + ".device.read_capacity_bps", deviceReadCapacity());
  reg.gauge(n + ".device.write_capacity_bps", deviceWriteCapacity());
  reg.gauge(n + ".cnodes.alive", static_cast<double>(aliveCNodes()));
  reg.gauge(n + ".dboxes.alive", static_cast<double>(aliveDBoxes()));
  double queued = 0.0;
  double busy = 0.0;
  double committed = 0.0;
  for (const auto& q : cnodeCommitQueues_) {
    queued += static_cast<double>(q->queued());
    busy += static_cast<double>(q->busy());
    committed += static_cast<double>(q->completed());
  }
  reg.counter(n + ".cnode.commits_completed", committed);
  reg.gauge(n + ".cnode.commit_queued", queued);
  reg.gauge(n + ".cnode.commit_busy", busy);
}

void VastModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    // Metadata-only op: one RPC round trip.
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.rpcLatency(), [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }
  if (isRead(req.pattern)) {
    submitRead(req, std::move(cb));
  } else {
    submitWrite(req, std::move(cb));
  }
}

void VastModel::submitRead(const IoRequest& req, IoCallback cb) {
  const std::size_t session = req.client.proc % cfg_.sessionsPerClient();
  Route route = baseRoute(req, session);

  // Split the request into a cache-hit portion (served by DNode
  // NVRAM/SCM behind the fabric — skips the QLC pool) and a miss portion
  // (continues to QLC). Single ops resolve the draw individually; a
  // coalesced run — or a flow class, whose members sample the cache
  // independently — takes the deterministic fractional split.
  Bytes hitBytes;
  if (req.ops <= 1 && req.members <= 1) {
    hitBytes = rng().uniform() < hitRatio_ ? req.bytes : 0;
  } else {
    hitBytes = static_cast<Bytes>(std::llround(static_cast<double>(req.bytes) * hitRatio_));
  }
  const Bytes missBytes = req.bytes - hitBytes;

  // Every NFS op pays the network round trip over the mount path — in
  // particular the Ethernet gateway hop on the LC TCP deployments, which
  // is what makes small-transfer workloads so much slower there.
  const Seconds rpc = cfg_.rpcLatency() + topology().network().routeLatency(route);
  const Seconds hitOverhead = rpc + scmPool_.requestLatency(AccessPattern::RandomRead);
  const Seconds missOverhead = rpc + qlcPool_.requestLatency(req.pattern);

  struct Join {
    IoCallback cb;
    SimTime start = 0.0;
    SimTime end = 0.0;
    Bytes bytes = 0;
    int outstanding = 0;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(cb);
  join->start = simulator().now();
  auto part = [join](const IoResult& r) {
    join->end = std::max(join->end, r.endTime);
    join->bytes += r.bytes;
    if (--join->outstanding == 0 && join->cb) {
      join->cb(IoResult{join->start, join->end, join->bytes});
    }
  };

  if (hitBytes > 0) ++join->outstanding;
  if (missBytes > 0) ++join->outstanding;

  if (hitBytes > 0) {
    IoRequest sub = req;
    sub.bytes = hitBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * hitBytes / req.bytes);
    const double frac = static_cast<double>(hitBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, hitBytes, route, kUncapped, hitOverhead, rpc, part, frac);
  }
  if (missBytes > 0) {
    Route missRoute = route;
    missRoute.push_back(deviceReadLink_);
    IoRequest sub = req;
    sub.bytes = missBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * missBytes / req.bytes);
    const double frac = static_cast<double>(missBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, missBytes, missRoute, kUncapped, missOverhead, rpc, part, frac);
  }
}

void VastModel::submitWrite(const IoRequest& req, IoCallback cb) {
  const std::size_t session = req.client.proc % cfg_.sessionsPerClient();
  Route route = baseRoute(req, session);
  route.push_back(deviceWriteLink_);

  // A flow class absorbs every member's payload into the SCM buffer.
  scm_.absorb(req.bytes * req.members, simulator().now());

  // As on the read path, each op carries the mount path's round trip.
  const Seconds rpc = cfg_.rpcLatency() + topology().network().routeLatency(route);
  if (req.fsync && req.ops == 1 && req.members <= 1) {
    // Accurate path (used by the single-node fsync tests): transfer the
    // payload, then wait in the serialized per-CNode commit queue for the
    // stable-storage acknowledgement.
    const std::size_t cnode = cnodeFor(req.client.node, session);
    const Seconds commitService =
        cfg_.cnodeCommitService + cfg_.commitLatency +
        static_cast<double>(req.bytes) / cfg_.scmSpec.writeBandwidth;
    launchTransfer(req, req.bytes, route, kUncapped, rpc, rpc,
                   [this, cnode, commitService, cb = std::move(cb)](const IoResult& r) {
                     cnodeCommitQueues_[cnode]->submit(
                         commitService, [this, r, cb = std::move(cb)] {
                           if (cb) cb(IoResult{r.startTime, simulator().now(), r.bytes});
                         });
                   });
    return;
  }

  Seconds perOp = rpc;
  if (req.fsync) {
    // Coalesced fsync approximation: each op pays the commit path inline
    // (ignores cross-process queueing at the CNode; the IOR runner uses
    // the per-op path above for the paper's fsync experiments).
    const Bytes opBytes = req.bytes / std::max<std::uint64_t>(1, req.ops);
    perOp += cfg_.cnodeCommitService + cfg_.commitLatency +
             static_cast<double>(opBytes) / cfg_.scmSpec.writeBandwidth;
  }
  launchTransfer(req, req.bytes, route, kUncapped, perOp, rpc, std::move(cb));
}


transport::TransportProfile VastModel::declaredTransportProfile() const {
  transport::TransportProfile p = cfg_.transport == NfsTransport::Rdma
                                      ? transport::TransportProfile::rdma()
                                      : transport::TransportProfile::tcp();
  p.lanes = std::max<std::size_t>(1, cfg_.sessionsPerClient());
  p.baseRtt = cfg_.rpcLatency();
  return p;
}

}  // namespace hcsim
