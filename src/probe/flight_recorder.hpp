#pragma once
// FlightRecorder — the always-on black box of hcsim::probe.
//
// A fixed-size ring of compact binary records (sim-time, kind, subject,
// value) fed by cheap hooks in the Simulator dispatch loop, the
// FlowNetwork re-rate path, the ClientSession retry layer and the chaos
// fault injector. Recording is allocation-free after construction: the
// ring is sized once (rounded up to a power of two) and a record is a
// plain 24-byte store plus an index mask, so the hooks are safe to leave
// enabled in every run — docs/PROBE.md pins the overhead budget and
// bench_probe enforces it.
//
// Determinism contract (the telemetry contract, extended): records
// *observe* the simulation — they never schedule events, never touch
// rates, and carry only simulated time. Two identical runs produce
// byte-identical dumps, so an incident's black box can be diffed against
// a healthy run's.
//
// On an anomaly (failed op after max retries, chaos non-recovery, a
// monitor breach, or `--dump-on-exit`) the last N records are dumped as
// JSONL and as a chrome-trace file loadable in about://tracing.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/units.hpp"

namespace hcsim::probe {

/// What happened. Values are part of the dump format (docs/PROBE.md);
/// append new kinds, never renumber.
enum class RecordKind : std::uint16_t {
  EngineHeartbeat = 1,  ///< decimated dispatch-loop pulse; subject=pending, value=dispatched
  NetRebalance = 2,     ///< max-min re-solve; subject=active flows, value=lifetime rerates
  LinkHealth = 3,       ///< link health changed; subject=link index, value=new health [0,1]
  RetryTimeout = 4,     ///< op timed out, will retry; subject=client key, value=attempt
  OpFailed = 5,         ///< op failed after max retries; subject=client key, value=attempt
  LateCompletion = 6,   ///< completion after the retry layer gave up; subject=client key
  FaultInject = 7,      ///< chaos fault applied; subject=event index, value=severity
  FaultRestore = 8,     ///< chaos restore applied; subject=event index, value=rebuild GiB
  GoodputSample = 9,    ///< timeline slice; subject=slice index, value=GB/s
  PhaseSwitch = 10,     ///< workload phase barrier released; subject=phase index
  Barrier = 11,         ///< closed-loop barrier released; subject=op index
  MonitorBreach = 12,   ///< SLO watchdog fired; subject=monitor index, value=observed
  TransportStall = 13,  ///< flow queued on a full send queue; subject=(node,lane), value=queue depth
};

const char* toString(RecordKind kind);

struct Record {
  double time = 0.0;  ///< simulated seconds
  RecordKind kind = RecordKind::EngineHeartbeat;
  std::uint16_t reserved = 0;
  std::uint32_t subject = 0;
  double value = 0.0;
};

/// Pack a (node, proc) client id into a record subject.
inline std::uint32_t clientSubject(std::uint32_t node, std::uint32_t proc) {
  return (node << 16) | (proc & 0xffffu);
}

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  // 64 Ki records, ~1.5 MiB

  /// Capacity is rounded up to a power of two (minimum 16) so the hot
  /// path wraps with a mask instead of a modulo.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// The hot path: one store into the pre-sized ring. Never allocates.
  void record(double time, RecordKind kind, std::uint32_t subject, double value) {
    Record& r = ring_[head_];
    r.time = time;
    r.kind = kind;
    r.subject = subject;
    r.value = value;
    head_ = (head_ + 1) & mask_;
    if (size_ < ring_.size()) ++size_;
    ++total_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }          ///< records currently held
  std::uint64_t totalRecorded() const { return total_; }  ///< lifetime, including overwritten
  bool empty() const { return size_ == 0; }
  void clear();

  /// Records oldest-to-newest (the retained window, in record order).
  std::vector<Record> snapshot() const;

  /// One JSON object per line: {"t":..,"kind":"..","subject":..,"value":..}.
  /// Deterministic: byte-identical across identical runs.
  void dumpJsonl(std::ostream& out) const;

  /// Chrome-trace ("trace event") JSON: instant events on one pid, tid =
  /// record kind, timestamps in microseconds of simulated time.
  void dumpChromeTrace(std::ostream& out) const;

 private:
  std::vector<Record> ring_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;   ///< next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hcsim::probe
