# Empty dependencies file for test_model_invariants.
# This may be replaced when dependencies are built.
