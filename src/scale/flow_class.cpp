#include "scale/flow_class.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics_registry.hpp"

namespace hcsim::scale {

void DemandModel::validate() const {
  if (sigma < 0.0) throw std::invalid_argument("DemandModel: sigma must be >= 0");
  if (theta < 0.0) throw std::invalid_argument("DemandModel: theta must be >= 0");
}

double normalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("normalQuantile: p must be in (0, 1)");
  }
  // Acklam's rational approximation: central region plus two tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double pLow = 0.02425;
  if (p < pLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - pLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

std::vector<double> demandMultipliers(const DemandModel& model, std::size_t n) {
  model.validate();
  if (n == 0) return {};
  std::vector<double> m(n, 1.0);
  switch (model.kind) {
    case DemandKind::Uniform:
      return m;  // all-ones, bitwise: a degenerate model is a no-op
    case DemandKind::Lognormal: {
      if (model.sigma == 0.0) return m;
      for (std::size_t i = 0; i < n; ++i) {
        const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
        m[i] = std::exp(model.sigma * normalQuantile(p));
      }
      break;
    }
    case DemandKind::Zipf: {
      if (model.theta == 0.0) return m;
      // Ascending: the lightest member first, matching the lognormal
      // mid-quantile ordering.
      for (std::size_t i = 0; i < n; ++i) {
        m[i] = std::pow(static_cast<double>(n - i), -model.theta);
      }
      break;
    }
  }
  double sum = 0.0;
  for (double v : m) sum += v;
  const double norm = static_cast<double>(n) / sum;
  for (double& v : m) v *= norm;
  return m;
}

double weightedPercentile(const std::vector<WeightedSample>& samples, double q) {
  std::uint64_t total = 0;
  for (const WeightedSample& s : samples) total += s.count;
  if (total == 0) return 0.0;
  if (total == 1) {
    for (const WeightedSample& s : samples) {
      if (s.count > 0) return s.value;
    }
  }
  // Index into the expanded multiset exactly as percentileSorted does
  // on the expanded vector.
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(total - 1);
  const auto lo = static_cast<std::uint64_t>(rank);
  const std::uint64_t hi = std::min(lo + 1, total - 1);
  const double frac = rank - static_cast<double>(lo);

  double vLo = 0.0;
  double vHi = 0.0;
  std::uint64_t seen = 0;
  for (const WeightedSample& s : samples) {
    const std::uint64_t first = seen;
    seen += s.count;
    if (lo >= first && lo < seen) vLo = s.value;
    if (hi >= first && hi < seen) {
      vHi = s.value;
      break;
    }
  }
  return vLo + (vHi - vLo) * frac;
}

Summary demultiplex(std::vector<WeightedSample> samples) {
  Summary out;
  std::erase_if(samples, [](const WeightedSample& s) { return s.count == 0; });
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end(),
            [](const WeightedSample& a, const WeightedSample& b) { return a.value < b.value; });

  std::uint64_t total = 0;
  double sum = 0.0;
  for (const WeightedSample& s : samples) {
    total += s.count;
    sum += s.value * static_cast<double>(s.count);
  }
  out.count = static_cast<std::size_t>(total);
  out.min = samples.front().value;
  out.max = samples.back().value;
  out.mean = sum / static_cast<double>(total);
  if (total > 1) {
    double m2 = 0.0;
    for (const WeightedSample& s : samples) {
      const double d = s.value - out.mean;
      m2 += d * d * static_cast<double>(s.count);
    }
    out.stddev = std::sqrt(m2 / static_cast<double>(total - 1));
  }
  out.p50 = weightedPercentile(samples, 50.0);
  out.p95 = weightedPercentile(samples, 95.0);
  out.p99 = weightedPercentile(samples, 99.0);
  return out;
}

void exportTo(const ClassStats& stats, telemetry::MetricsRegistry& reg) {
  reg.gauge("scale.classes", static_cast<double>(stats.classes));
  reg.gauge("scale.clientsPerClass", stats.clientsPerClass());
  reg.gauge("scale.clientsTotal", static_cast<double>(stats.clientsTotal));
}

}  // namespace hcsim::scale
