#include "nvme/nvme_local.hpp"

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"

namespace hcsim {
namespace {

TEST(NvmeLocalConfig, ValidateRejectsBadValues) {
  NvmeLocalConfig c;
  c.drivesPerNode = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = NvmeLocalConfig{};
  c.memoryBandwidth = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(NvmeLocalConfig, WombatPresetMatchesPaper) {
  const NvmeLocalConfig c = NvmeLocalConfig::wombatInstance();
  EXPECT_EQ(c.drivesPerNode, 3u);  // "three Samsung 970 PRO SSDs"
  EXPECT_EQ(c.drive.name, "Samsung970PRO");
}

struct Harness {
  explicit Harness(std::size_t nodes = 1)
      : bench(Machine::wombat(), nodes), fs(bench.attachNvme(nvmeOnWombat())) {}
  TestBench bench;
  std::unique_ptr<NvmeLocalModel> fs;

  Bandwidth phaseBandwidth(AccessPattern p, Bytes perProcBytes, std::uint32_t streams,
                           bool fsync, Bytes ws) {
    PhaseSpec ph;
    ph.pattern = p;
    ph.requestSize = units::MiB;
    ph.nodes = 1;
    ph.procsPerNode = streams;
    ph.fsync = fsync;
    ph.workingSetBytes = ws;
    fs->beginPhase(ph);
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = perProcBytes * streams;
    req.pattern = p;
    req.fsync = fsync;
    req.ops = perProcBytes / units::MiB * streams;
    req.streams = streams;
    const SimTime start = bench.sim().now();
    SimTime end = 0;
    fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    bench.sim().run();
    fs->endPhase();
    return static_cast<double>(req.bytes) / (end - start);
  }
};

TEST(NvmeLocalModel, ReadsRunAtAggregateDriveSpeed) {
  Harness h;
  const Bandwidth bw =
      h.phaseBandwidth(AccessPattern::SequentialRead, units::GiB, 8, false, 0);
  // 3 drives x ~2.7 GB/s effective at 1 MiB requests.
  EXPECT_GT(bw, units::gbs(6.0));
  EXPECT_LT(bw, units::gbs(11.0));
}

TEST(NvmeLocalModel, RandomReadsCloseToSequential) {
  // Flash: no seek penalty — the property that distinguishes NVMe/VAST
  // from GPFS in the paper.
  Harness h;
  const Bandwidth seq =
      h.phaseBandwidth(AccessPattern::SequentialRead, units::GiB, 8, false, 0);
  const Bandwidth rnd = h.phaseBandwidth(AccessPattern::RandomRead, units::GiB, 8, false, 0);
  EXPECT_GT(rnd, 0.8 * seq);
}

TEST(NvmeLocalModel, FsyncWritesCollapseToFlushRate) {
  Harness h;
  const Bandwidth async =
      h.phaseBandwidth(AccessPattern::SequentialWrite, units::GiB / 4, 8, false,
                       8ull * units::GiB / 4);
  const Bandwidth sync =
      h.phaseBandwidth(AccessPattern::SequentialWrite, units::GiB / 4, 8, true, 0);
  // Paper Fig 3d: VAST beats NVMe ~5x because fsync costs a FLUSH.
  EXPECT_LT(sync, 0.3 * async);
  EXPECT_GT(sync, units::gbs(0.5));
  EXPECT_LT(sync, units::gbs(2.0));
}

TEST(NvmeLocalModel, WritebackAbsorbsSmallBursts) {
  Harness h;
  // 8 GiB total << 50 GB dirty limit: page cache absorbs at memory speed.
  const Bandwidth small =
      h.phaseBandwidth(AccessPattern::SequentialWrite, units::GiB, 8, false, 8ull * units::GiB);
  // 120 GB/node >> dirty limit: throttled near device speed.
  const Bandwidth large = h.phaseBandwidth(AccessPattern::SequentialWrite, 15 * units::GiB, 8,
                                           false, 120ull * units::GB);
  EXPECT_GT(small, 1.5 * large);
}

TEST(NvmeLocalModel, NodesAreIndependent) {
  Harness h(2);
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialRead;
  ph.requestSize = units::MiB;
  ph.nodes = 2;
  ph.procsPerNode = 8;
  h.fs->beginPhase(ph);
  SimTime end0 = 0, end1 = 0;
  for (std::uint32_t n = 0; n < 2; ++n) {
    IoRequest req;
    req.client = {n, 0};
    req.fileId = n + 1;
    req.bytes = units::GiB;
    req.pattern = AccessPattern::SequentialRead;
    req.ops = 1024;
    req.streams = 8;
    h.fs->submit(req, [&, n](const IoResult& r) { (n == 0 ? end0 : end1) = r.endTime; });
  }
  h.bench.sim().run();
  // No shared bottleneck: both nodes finish at the single-node time.
  EXPECT_NEAR(end0, end1, 1e-9);
  EXPECT_GT(h.fs->nodeReadCapacity(0), 0.0);
  EXPECT_GT(h.fs->nodeReadCapacity(1), 0.0);
}

TEST(NvmeLocalModel, SyscallLatencyForZeroByteOp) {
  Harness h;
  IoRequest req;
  req.client = {0, 0};
  req.bytes = 0;
  SimTime end = 0;
  h.fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  h.bench.sim().run();
  EXPECT_NEAR(end, nvmeOnWombat().syscallLatency, 1e-9);
}

TEST(NvmeLocalModel, CapacityScalesWithNodes) {
  Harness one(1), four(4);
  EXPECT_EQ(four.fs->totalCapacity(), 4 * one.fs->totalCapacity());
}

}  // namespace
}  // namespace hcsim
