file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cosmoflow.dir/bench_fig6_cosmoflow.cpp.o"
  "CMakeFiles/bench_fig6_cosmoflow.dir/bench_fig6_cosmoflow.cpp.o.d"
  "bench_fig6_cosmoflow"
  "bench_fig6_cosmoflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cosmoflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
