# Empty compiler generated dependencies file for hcsim.
# This may be replaced when dependencies are built.
