#include "core/takeaways.hpp"

#include "core/experiment.hpp"
#include "dlio/dlio_config.hpp"

namespace hcsim {

namespace {

double perNodeGBs(Site site, StorageKind kind, AccessPattern access, std::size_t nodes,
                  std::size_t ppn) {
  const auto pts = runIorNodeSweep(site, kind, access, {nodes}, ppn);
  return pts.front().meanGBs / static_cast<double>(nodes);
}

}  // namespace

RdmaVsTcp measureRdmaVsTcp() {
  RdmaVsTcp r;
  r.tcpWriteGBsPerNode = perNodeGBs(Site::Lassen, StorageKind::Vast,
                                    AccessPattern::SequentialWrite, 1,
                                    calibration::kLassenProcsPerNode);
  r.tcpReadGBsPerNode = perNodeGBs(Site::Lassen, StorageKind::Vast,
                                   AccessPattern::SequentialRead, 1,
                                   calibration::kLassenProcsPerNode);
  r.rdmaWriteGBsPerNode = perNodeGBs(Site::Wombat, StorageKind::Vast,
                                     AccessPattern::SequentialWrite, 1,
                                     calibration::kWombatProcsPerNode);
  // Reads saturate VAST's 8 CNodes within a couple of nodes (Fig 2b), so
  // the paper's "per node" read figure sits on that shoulder; 2 nodes is
  // the closest sampling point (see EXPERIMENTS.md).
  r.rdmaReadGBsPerNode = perNodeGBs(Site::Wombat, StorageKind::Vast,
                                    AccessPattern::SequentialRead, 2,
                                    calibration::kWombatProcsPerNode);
  return r;
}

SeqVsRandom measureSeqVsRandom() {
  SeqVsRandom r;
  r.gpfsSeqGBs = perNodeGBs(Site::Lassen, StorageKind::Gpfs, AccessPattern::SequentialRead, 1,
                            calibration::kLassenProcsPerNode);
  // The paper's 1.4 GB/s/node random figure reflects cache-defeating
  // scale (Fig 2a's upper range), where the working set dwarfs the
  // resident core of the server caches; measure it there.
  r.gpfsRandGBs = perNodeGBs(Site::Lassen, StorageKind::Gpfs, AccessPattern::RandomRead, 64,
                             calibration::kLassenProcsPerNode);
  r.vastSeqGBs = perNodeGBs(Site::Wombat, StorageKind::Vast, AccessPattern::SequentialRead, 2,
                            calibration::kWombatProcsPerNode);
  r.vastRandGBs = perNodeGBs(Site::Wombat, StorageKind::Vast, AccessPattern::RandomRead, 2,
                             calibration::kWombatProcsPerNode);
  return r;
}

DlViability measureDlViability(std::size_t nodes) {
  DlViability v;
  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.nodes = nodes;
  cfg.procsPerNode = 4;  // one rank per Lassen GPU

  const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
  const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
  v.vastAppGBs = units::toGBs(vast.throughput.application);
  v.gpfsAppGBs = units::toGBs(gpfs.throughput.application);
  v.vastSysGBs = units::toGBs(vast.throughput.system);
  v.gpfsSysGBs = units::toGBs(gpfs.throughput.system);
  return v;
}

std::vector<calibration::Check> runAllChecks() {
  namespace cal = calibration;
  std::vector<cal::Check> checks;

  const RdmaVsTcp rt = measureRdmaVsTcp();
  checks.push_back({"TCP VAST write GB/s per node", cal::kTcpPerNodeGBs,
                    rt.tcpWriteGBsPerNode, 2.0});
  checks.push_back({"RDMA VAST write GB/s per node", cal::kRdmaPerNodeGBs,
                    rt.rdmaWriteGBsPerNode, 2.0});
  checks.push_back({"RDMA/TCP write factor", cal::kRdmaVsTcpFactor, rt.writeFactor(), 2.0});
  checks.push_back({"RDMA/TCP read factor", cal::kRdmaVsTcpFactor, rt.readFactor(), 2.0});

  const SeqVsRandom sr = measureSeqVsRandom();
  checks.push_back({"GPFS seq read GB/s per node", cal::kGpfsSeqReadPerNodeGBs, sr.gpfsSeqGBs,
                    1.5});
  checks.push_back({"GPFS random read GB/s per node", cal::kGpfsRandReadPerNodeGBs,
                    sr.gpfsRandGBs, 2.0});
  checks.push_back({"GPFS random drop fraction", cal::kGpfsRandomDropFraction,
                    sr.gpfsDropFraction(), 1.25});
  checks.push_back({"VAST seq read GB/s per node", cal::kVastSeqReadPerNodeGBs, sr.vastSeqGBs,
                    2.0});
  checks.push_back({"VAST random read GB/s per node", cal::kVastRandReadPerNodeGBs,
                    sr.vastRandGBs, 2.0});

  return checks;
}

}  // namespace hcsim
