#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace hcsim {
namespace {

TEST(Simulator, StartsAtTimeZeroEmpty) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pendingEvents(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    sim.schedule(-10.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 2.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule(3.0, [&] {
    sim.scheduleAt(1.0, [&] {
      ran = true;
      EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredEventIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<int> seen;
  sim.schedule(1.0, [&] { seen.push_back(1); });
  sim.schedule(2.0, [&] { seen.push_back(2); });
  sim.schedule(3.0, [&] { seen.push_back(3); });
  sim.runUntil(2.5);
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesTimeEvenWhenIdle) {
  Simulator sim;
  sim.runUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilDispatchesEventExactlyAtHorizon) {
  Simulator sim;
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });
  sim.runUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, CountsDispatchedAndPending) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  const EventId id = sim.schedule(3.0, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pendingEvents(), 2u);
  sim.run();
  EXPECT_EQ(sim.eventsDispatched(), 2u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, StepDispatchesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelInsideEventAffectsPendingEvent) {
  Simulator sim;
  bool secondRan = false;
  EventId second{};
  second = sim.schedule(2.0, [&] { secondRan = true; });
  sim.schedule(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  sim.run();
  EXPECT_FALSE(secondRan);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1.0;
  for (int i = 0; i < 5000; ++i) {
    sim.schedule((i * 7919) % 1000 * 0.001, [&, i] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(sim.eventsDispatched(), 5000u);
}

TEST(Simulator, AdjustKeyMovesEventEarlier) {
  Simulator sim;
  std::vector<int> order;
  const EventId late = sim.schedule(10.0, [&] { order.push_back(10); });
  sim.schedule(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.adjustKey(late, 1.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 5}));
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(Simulator, AdjustKeyMovesEventLater) {
  Simulator sim;
  std::vector<int> order;
  const EventId early = sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.adjustKey(early, 10.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{5, 1}));
  EXPECT_EQ(sim.now(), 10.0);
}

// adjustKey assigns a fresh FIFO sequence number, exactly as the old
// cancel-then-reschedule idiom did: an event adjusted onto a timestamp
// that already has queued events dispatches after them.
TEST(Simulator, AdjustKeyTakesFreshFifoPosition) {
  Simulator sim;
  std::vector<int> order;
  const EventId moved = sim.schedule(0.5, [&] { order.push_back(99); });
  sim.schedule(2.0, [&] { order.push_back(0); });
  sim.schedule(2.0, [&] { order.push_back(1); });
  EXPECT_TRUE(sim.adjustKey(moved, 2.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 99}));
}

TEST(Simulator, AdjustKeyInThePastClampsToNow) {
  Simulator sim;
  SimTime firedAt = -1.0;
  EventId target{};
  target = sim.schedule(10.0, [&] { firedAt = sim.now(); });
  sim.schedule(3.0, [&] { EXPECT_TRUE(sim.adjustKey(target, 1.0)); });
  sim.run();
  EXPECT_EQ(firedAt, 3.0);  // clamped to now at adjust time, not rewound
}

TEST(Simulator, AdjustKeyOnFiredOrInvalidIdIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.adjustKey(id, 2.0));
  EXPECT_FALSE(sim.adjustKey(EventId{}, 2.0));
}

// A callback cancelling (or adjusting) its own EventId must be a no-op:
// the slot is released before the callback runs.
TEST(Simulator, SelfCancelInsideRunningCallbackIsNoop) {
  Simulator sim;
  EventId self{};
  int runs = 0;
  self = sim.schedule(1.0, [&] {
    ++runs;
    EXPECT_FALSE(sim.cancel(self));
    EXPECT_FALSE(sim.adjustKey(self, 5.0));
  });
  sim.schedule(2.0, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

// A cancelled slot is recycled with a bumped generation, so a stale
// EventId can never cancel or retime the slot's new occupant.
TEST(Simulator, StaleIdCannotTouchRecycledSlot) {
  Simulator sim;
  const EventId stale = sim.schedule(1.0, [] { FAIL() << "cancelled event ran"; });
  EXPECT_TRUE(sim.cancel(stale));
  bool survivorRan = false;
  sim.schedule(2.0, [&] { survivorRan = true; });  // reuses the freed slot
  EXPECT_FALSE(sim.cancel(stale));
  EXPECT_FALSE(sim.adjustKey(stale, 9.0));
  sim.run();
  EXPECT_TRUE(survivorRan);
}

TEST(Simulator, MassCancellationLeavesNoTombstones) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule(1.0 + i, [] { FAIL() << "cancelled event ran"; }));
  }
  for (const EventId id : ids) EXPECT_TRUE(sim.cancel(id));
  // In-place heap removal: nothing pending, nothing left to lazily skip.
  EXPECT_EQ(sim.pendingEvents(), 0u);
  EXPECT_TRUE(sim.empty());
  int ran = 0;
  sim.schedule(0.5, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.eventsDispatched(), 1u);
}

TEST(Simulator, SlabStaysFlatUnderChurn) {
  Simulator sim;
  for (int i = 0; i < 64; ++i) sim.schedule(1.0, [] {});
  sim.run();
  const std::size_t high = sim.slabSize();
  // Steady-state schedule/dispatch churn recycles slots instead of
  // growing the slab.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) sim.schedule(0.001, [] {});
    sim.run();
  }
  EXPECT_EQ(sim.slabSize(), high);
}

TEST(Simulator, ZeroDelaySelfReschedulingIsFifoFair) {
  Simulator sim;
  std::vector<int> order;
  int aLeft = 3;
  int bLeft = 3;
  std::function<void()> a = [&] {
    order.push_back(0);
    if (--aLeft > 0) sim.schedule(0.0, [&] { a(); });
  };
  std::function<void()> b = [&] {
    order.push_back(1);
    if (--bLeft > 0) sim.schedule(0.0, [&] { b(); });
  };
  sim.schedule(0.0, [&] { a(); });
  sim.schedule(0.0, [&] { b(); });
  sim.run();
  // Each reschedule goes to the back of the same-timestamp queue.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(InlineFunction, SmallCapturesStoreInline) {
  struct Small {
    void* a;
    double b;
    void operator()() {}
  };
  EXPECT_TRUE(EventFn::storesInline<Small>());
}

TEST(InlineFunction, OversizedCapturesFallBackToHeap) {
  struct Big {
    char payload[128];
    void operator()() {}
  };
  EXPECT_FALSE(EventFn::storesInline<Big>());
  bool ran = false;
  EventFn f(Big{});  // must still work via the heap path
  f = EventFn([&ran] { ran = true; });
  f();
  EXPECT_TRUE(ran);
}

TEST(InlineFunction, MovePreservesCallableAndState) {
  int calls = 0;
  EventFn f([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(f));
  EventFn g(std::move(f));
  g();
  EventFn h;
  EXPECT_FALSE(static_cast<bool>(h));
  h = std::move(g);
  h();
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace hcsim
