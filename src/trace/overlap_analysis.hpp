#pragma once
// Overlap analysis — the paper's Fig 4-6 metrics (§VI-A).
//
// The runtime splits into three groups:
//  * non-overlapping I/O — read time during which the process's compute
//    is stalled (no concurrent compute event);
//  * overlapping I/O     — read time hidden behind concurrent compute;
//  * compute             — time spent only computing.
//
// From these:
//  * application throughput = bytes / non-overlapping I/O ("the
//    application only has the ability to perceive as I/O the time that
//    [it] actually stalls its computation");
//  * system throughput      = bytes / total I/O time ("the system
//    resources are occupied to read the input").

#include "trace/trace_log.hpp"

namespace hcsim {

struct IoTimeBreakdown {
  Seconds nonOverlappingIo = 0.0;
  Seconds overlappingIo = 0.0;
  Seconds computeOnly = 0.0;  ///< compute time with no concurrent I/O
  Seconds totalIo = 0.0;      ///< nonOverlapping + overlapping
  Seconds totalCompute = 0.0;
  Seconds runtime = 0.0;  ///< wall span of the trace
  Bytes ioBytes = 0;
};

struct ThroughputReport {
  Bandwidth application = 0.0;  ///< bytes / non-overlapping I/O
  Bandwidth system = 0.0;       ///< bytes / total I/O
  Bytes ioBytes = 0;
};

/// Analyze per-process: I/O of pid P overlaps only with compute of pid P
/// (matching DFTracer's per-process log analysis). The breakdown sums
/// over processes.
IoTimeBreakdown analyzeOverlap(const TraceLog& log);

ThroughputReport computeThroughput(const TraceLog& log);

}  // namespace hcsim
