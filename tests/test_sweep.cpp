// hcsim::sweep — spec parsing, JSON-path editing, grid/random
// expansion, parallel-vs-serial determinism and the result sinks.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/trial_cache.hpp"

using namespace hcsim;
using namespace hcsim::sweep;

namespace {

SweepSpec smallIorSpec() {
  SweepSpec spec;
  spec.name = "unit";
  spec.experiment = "ior";
  JsonObject ior;
  ior["segments"] = 32;
  ior["procsPerNode"] = 2;
  ior["repetitions"] = 2;
  ior["noiseStdDevFrac"] = 0.02;
  JsonObject base;
  base["site"] = "lassen";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));
  spec.axes.push_back({"storage", {JsonValue("gpfs"), JsonValue("vast")}});
  spec.axes.push_back({"ior.access", {JsonValue("seq-write"), JsonValue("seq-read")}});
  spec.axes.push_back({"ior.nodes", {JsonValue(1), JsonValue(2)}});
  return spec;
}

std::string jsonl(const SweepOutcome& out) {
  std::string all;
  for (const auto& r : out.results) all += toJsonlLine(r) + "\n";
  return all;
}

}  // namespace

TEST(SweepSpec, JsonRoundTrip) {
  SweepSpec in = smallIorSpec();
  in.sampling.mode = Sampling::Mode::Random;
  in.sampling.samples = 5;
  in.sampling.seed = 42;

  SweepSpec out;
  ASSERT_TRUE(fromJson(toJson(in), out));
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.experiment, in.experiment);
  ASSERT_EQ(out.axes.size(), 3u);
  EXPECT_EQ(out.axes[0].path, "storage");
  ASSERT_EQ(out.axes[2].values.size(), 2u);
  EXPECT_EQ(*out.axes[2].values[1].number(), 2.0);
  EXPECT_EQ(out.sampling.mode, Sampling::Mode::Random);
  EXPECT_EQ(out.sampling.samples, 5u);
  EXPECT_EQ(out.sampling.seed, 42u);
  EXPECT_EQ(out.base.stringOr("site", ""), "lassen");
  EXPECT_EQ(writeJson(toJson(out)), writeJson(toJson(in)));
}

TEST(SweepSpec, RejectsMalformedAxes) {
  JsonObject ax;
  ax["path"] = "ior.nodes";
  ax["values"] = JsonValue(JsonArray{});  // empty values
  JsonObject o;
  o["axes"] = JsonValue(JsonArray{JsonValue(std::move(ax))});
  SweepSpec out;
  EXPECT_FALSE(fromJson(JsonValue(std::move(o)), out));
}

TEST(SweepSpec, JsonPathSetCreatesIntermediates) {
  JsonValue root;
  ASSERT_TRUE(jsonPathSet(root, "storageConfig.gateway.latency", JsonValue(1.5e-4)));
  const JsonValue* v = jsonPathGet(root, "storageConfig.gateway.latency");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(*v->number(), 1.5e-4);
  // A scalar in the way is a refusal, not an overwrite.
  ASSERT_TRUE(jsonPathSet(root, "site", JsonValue("lassen")));
  EXPECT_FALSE(jsonPathSet(root, "site.nested", JsonValue(1)));
  EXPECT_EQ(jsonPathGet(root, "site.nested"), nullptr);
  EXPECT_EQ(jsonPathGet(root, "missing.key"), nullptr);
}

TEST(SweepSpec, DeepCopyDoesNotAlias) {
  JsonValue a;
  ASSERT_TRUE(jsonPathSet(a, "ior.nodes", JsonValue(1)));
  JsonValue shallow = a;           // shares the object tree
  JsonValue deep = deepCopy(a);    // must not
  ASSERT_TRUE(jsonPathSet(a, "ior.nodes", JsonValue(8)));
  EXPECT_DOUBLE_EQ(*jsonPathGet(shallow, "ior.nodes")->number(), 8.0);
  EXPECT_DOUBLE_EQ(*jsonPathGet(deep, "ior.nodes")->number(), 1.0);
}

TEST(SweepExpand, GridCountAndOrder) {
  const SweepSpec spec = smallIorSpec();
  EXPECT_EQ(spec.gridSize(), 8u);
  const std::vector<Trial> trials = expandTrials(spec);
  ASSERT_EQ(trials.size(), 8u);
  // Row-major with the last axis (ior.nodes) fastest.
  EXPECT_DOUBLE_EQ(*jsonPathGet(trials[0].config, "ior.nodes")->number(), 1.0);
  EXPECT_DOUBLE_EQ(*jsonPathGet(trials[1].config, "ior.nodes")->number(), 2.0);
  EXPECT_EQ(*jsonPathGet(trials[0].config, "storage")->str(), "gpfs");
  EXPECT_EQ(*jsonPathGet(trials[7].config, "storage")->str(), "vast");
  EXPECT_EQ(*jsonPathGet(trials[7].config, "ior.access")->str(), "seq-read");
  // Base fields survive, axis params are recorded per trial.
  EXPECT_EQ(trials[5].config.stringOr("site", ""), "lassen");
  ASSERT_EQ(trials[5].params.size(), 3u);
  EXPECT_EQ(trials[5].params[0].first, "storage");
  for (std::size_t i = 0; i < trials.size(); ++i) EXPECT_EQ(trials[i].index, i);
}

TEST(SweepExpand, RandomSamplerIsSeedDeterministic) {
  SweepSpec spec = smallIorSpec();
  spec.sampling.mode = Sampling::Mode::Random;
  spec.sampling.samples = 16;
  spec.sampling.seed = 7;
  const std::vector<Trial> a = expandTrials(spec);
  const std::vector<Trial> b = expandTrials(spec);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(paramsKey(a[i]), paramsKey(b[i]));
    EXPECT_EQ(writeJson(a[i].config), writeJson(b[i].config));
  }
  spec.sampling.seed = 8;
  const std::vector<Trial> c = expandTrials(spec);
  bool anyDiffer = false;
  for (std::size_t i = 0; i < a.size(); ++i) anyDiffer |= paramsKey(a[i]) != paramsKey(c[i]);
  EXPECT_TRUE(anyDiffer);
}

TEST(SweepRun, ParallelMatchesSerialByteForByte) {
  const SweepSpec spec = smallIorSpec();
  const SweepOutcome serial = runSweep(spec, 1);
  const SweepOutcome parallel = runSweep(spec, 8);
  ASSERT_EQ(serial.results.size(), 8u);
  ASSERT_EQ(parallel.results.size(), 8u);
  EXPECT_EQ(serial.failures, 0u);
  EXPECT_EQ(parallel.failures, 0u);
  EXPECT_EQ(jsonl(serial), jsonl(parallel));
  EXPECT_EQ(toCsv(serial), toCsv(parallel));
  EXPECT_DOUBLE_EQ(serial.bandwidthGBs.mean(), parallel.bandwidthGBs.mean());
  for (const auto& r : serial.results) EXPECT_GT(r.metrics.meanGBs, 0.0);
}

TEST(SweepRun, ImpossibleDeploymentFailsThatTrialOnly) {
  SweepSpec spec = smallIorSpec();
  spec.axes[0].values.push_back(JsonValue("nvme"));  // NVMe is Wombat-only
  const SweepOutcome out = runSweep(spec, 2);
  ASSERT_EQ(out.results.size(), 12u);
  EXPECT_EQ(out.failures, 4u);
  for (const auto& r : out.results) {
    const std::string storage = r.trial.config.stringOr("storage", "");
    EXPECT_EQ(r.metrics.ok, storage != "nvme");
    if (!r.metrics.ok) EXPECT_FALSE(r.metrics.error.empty());
  }
}

TEST(SweepRun, StorageConfigOverridesChangeTheOutcome) {
  SweepSpec spec;
  spec.experiment = "ior";
  JsonObject ior;
  ior["access"] = "seq-read";
  ior["nodes"] = 2;
  ior["procsPerNode"] = 4;
  ior["segments"] = 64;
  JsonObject base;
  base["site"] = "lassen";
  base["storage"] = "vast";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));
  // Session-capped NFS reads: doubling the per-client cap must help.
  spec.axes.push_back(
      {"storageConfig.tcpSessionCap", {JsonValue(1.15e9), JsonValue(2.3e9)}});
  const SweepOutcome out = runSweep(spec, 2);
  ASSERT_EQ(out.results.size(), 2u);
  ASSERT_TRUE(out.results[0].metrics.ok) << out.results[0].metrics.error;
  ASSERT_TRUE(out.results[1].metrics.ok) << out.results[1].metrics.error;
  EXPECT_GT(out.results[1].metrics.meanGBs, out.results[0].metrics.meanGBs * 1.2);
}

TEST(SweepSink, CsvHasHeaderAxisColumnsAndRows) {
  SweepSpec spec = smallIorSpec();
  spec.axes.resize(1);  // storage only -> 2 trials
  const SweepOutcome out = runSweep(spec, 2);
  const std::string csv = toCsv(out);
  EXPECT_NE(csv.find("trial,storage,ok,meanGBs"), std::string::npos);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 trials
}

TEST(SweepSink, BaselineSelfCompareIsZeroDelta) {
  SweepSpec spec = smallIorSpec();
  spec.axes.resize(2);  // 4 trials
  const SweepOutcome out = runSweep(spec, 4);
  const std::string path = "/tmp/hcsim_sweep_baseline_test.jsonl";
  ASSERT_TRUE(writeJsonl(out, path));
  std::map<std::string, double> baseline;
  ASSERT_TRUE(loadBaseline(path, baseline));
  std::remove(path.c_str());
  EXPECT_EQ(baseline.size(), 4u);
  const auto deltas = compareToBaseline(out, baseline);
  ASSERT_EQ(deltas.size(), 4u);
  for (const auto& d : deltas) {
    EXPECT_TRUE(d.matched) << d.key;
    EXPECT_DOUBLE_EQ(d.deltaPct, 0.0);
  }
}

TEST(SweepSink, UnmatchedTrialReportsNew) {
  SweepSpec spec = smallIorSpec();
  spec.axes.resize(1);
  const SweepOutcome out = runSweep(spec, 1);
  const auto deltas = compareToBaseline(out, {});
  ASSERT_EQ(deltas.size(), 2u);
  for (const auto& d : deltas) EXPECT_FALSE(d.matched);
}

TEST(TrialCache, Fnv1a64IsStable) {
  // Pinned reference values: persisted cache files depend on them.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(fnv1a64("hcsim"), 8823723028178096707ull);
}

TEST(TrialCache, KeyIsCanonicalAcrossInsertionOrder) {
  JsonObject a;
  a["x"] = 1.0;
  a["y"] = "s";
  JsonObject b;
  b["y"] = "s";
  b["x"] = 1.0;
  EXPECT_EQ(trialKey("ior", JsonValue(std::move(a))), trialKey("ior", JsonValue(std::move(b))));
}

TEST(TrialCache, CountsHitsAndMisses) {
  TrialCache cache;
  TrialMetrics m;
  m.ok = true;
  m.meanGBs = 1.5;
  EXPECT_FALSE(cache.lookup("k").has_value());
  cache.insert("k", m);
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->meanGBs, 1.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  cache.resetCounters();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(TrialCache, SweepWithCacheMatchesSweepWithoutByteForByte) {
  const SweepSpec spec = smallIorSpec();
  const SweepOutcome plain = runSweep(spec, 4);
  TrialCache cache;
  const SweepOutcome cold = runSweep(spec, 4, &cache);
  EXPECT_EQ(cold.cacheHits, 0u);
  EXPECT_EQ(cold.cacheMisses, 8u);
  const SweepOutcome warm = runSweep(spec, 4, &cache);
  EXPECT_EQ(warm.cacheHits, 8u);
  EXPECT_EQ(warm.cacheMisses, 0u);
  EXPECT_EQ(jsonl(plain), jsonl(cold));
  EXPECT_EQ(jsonl(plain), jsonl(warm));
  // Warm run at a different job count: still byte-identical.
  const SweepOutcome warm1 = runSweep(spec, 1, &cache);
  EXPECT_EQ(jsonl(plain), jsonl(warm1));
}

TEST(TrialCache, SaveLoadRoundTripsBitExact) {
  const SweepSpec spec = smallIorSpec();
  TrialCache cache;
  runSweep(spec, 2, &cache);
  const std::string path = "trial_cache_test.jsonl";
  ASSERT_TRUE(cache.saveFile(path));

  TrialCache reloaded;
  ASSERT_TRUE(reloaded.loadFile(path));
  EXPECT_EQ(reloaded.size(), cache.size());
  const SweepOutcome fresh = runSweep(spec, 2);
  const SweepOutcome served = runSweep(spec, 2, &reloaded);
  EXPECT_EQ(served.cacheHits, 8u);
  EXPECT_EQ(served.cacheMisses, 0u);
  EXPECT_EQ(jsonl(fresh), jsonl(served));

  // Saving the reloaded cache reproduces the file byte for byte.
  const std::string path2 = "trial_cache_test2.jsonl";
  ASSERT_TRUE(reloaded.saveFile(path2));
  std::ifstream f1(path), f2(path2);
  const std::string b1((std::istreambuf_iterator<char>(f1)), std::istreambuf_iterator<char>());
  const std::string b2((std::istreambuf_iterator<char>(f2)), std::istreambuf_iterator<char>());
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(TrialCache, MissingFileIsColdCacheButCorruptFileFails) {
  TrialCache cache;
  EXPECT_TRUE(cache.loadFile("no_such_trial_cache.jsonl"));
  EXPECT_EQ(cache.size(), 0u);

  const std::string path = "trial_cache_corrupt.jsonl";
  {
    std::ofstream out(path);
    out << "{\"fnv\":\"deadbeef\",\"key\":\"ior\\n{}\",\"metrics\":{\"ok\":true}}\n";
  }
  EXPECT_FALSE(cache.loadFile(path));  // hash does not match key
  EXPECT_EQ(cache.size(), 0u);
  {
    std::ofstream out(path);
    out << "not json at all\n";
  }
  EXPECT_FALSE(cache.loadFile(path));
  std::remove(path.c_str());
}
