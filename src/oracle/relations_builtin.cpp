// The built-in metamorphic catalog: the paper's relative claims — VAST
// random~=sequential, GPFS cache cliffs, Lustre striping scaling, NVMe
// locality — stated as relations over seeded config generators. Every
// relation must keep holding as the models are refactored; a violated
// one names its axis and shrinks to the minimal failing config.

#include <cmath>
#include <sstream>

#include "config/paths.hpp"
#include "oracle/generator.hpp"
#include "oracle/relation.hpp"
#include "sweep/sweep_spec.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace hcsim::oracle {

namespace {

using sweep::TrialMetrics;

/// Effective value of a knob for a trial: the storageConfig override
/// when present, else the site preset's serialized value.
double effective(const JsonValue& config, const JsonValue& preset, const std::string& knob) {
  return numberAtPath(config, "storageConfig." + knob, numberAtPath(preset, knob, 0.0));
}

RelationCase axisCase(const ConfigGenerator& gen, std::uint64_t seed, AccessPattern access,
                      const std::string& axis, std::vector<double> values) {
  RelationCase c;
  c.base = gen.makeBase(seed, access);
  c.axis = axis;
  c.axisValues = std::move(values);
  for (double v : c.axisValues) {
    JsonValue cfg = sweep::deepCopy(c.base);
    sweep::jsonPathSet(cfg, axis, JsonValue(v));
    c.variants.push_back(std::move(cfg));
  }
  return c;
}

CaseVerdict monotoneVerdict(const RelationCase& c, const std::vector<TrialMetrics>& m,
                            double slack) {
  for (std::size_t i = 0; i + 1 < m.size(); ++i) {
    if (m[i + 1].meanGBs < m[i].meanGBs * (1.0 - slack)) {
      std::ostringstream os;
      os << "bandwidth drops along '" << c.axis << "': " << m[i].meanGBs << " GB/s at "
         << c.axisValues[i] << " -> " << m[i + 1].meanGBs << " GB/s at " << c.axisValues[i + 1];
      return {false, os.str()};
    }
  }
  return {};
}

CaseVerdict ratioVerdict(double num, double den, double lo, double hi, const std::string& what) {
  const double ratio = den > 0.0 ? num / den : 0.0;
  if (ratio >= lo && ratio <= hi) return {};
  std::ostringstream os;
  os << what << ": ratio " << ratio << " outside [" << lo << ", " << hi << "] (" << num
     << " vs " << den << " GB/s)";
  return {false, os.str()};
}

MetamorphicRelation makeMonotonic(std::string name, std::string storage, ConfigGenerator gen,
                                  AccessPattern access, std::string axis, bool integerAxis,
                                  std::vector<double> values, double slack, std::string claim) {
  MetamorphicRelation r;
  r.name = std::move(name);
  r.storage = std::move(storage);
  r.kind = RelationKind::Monotonic;
  r.axis = axis;
  r.integerAxis = integerAxis;
  r.slack = slack;
  r.claim = std::move(claim);
  r.generate = [gen = std::move(gen), access, axis = std::move(axis),
                values = std::move(values)](std::uint64_t seed) {
    return axisCase(gen, seed, access, axis, values);
  };
  r.verdict = [slack](const RelationCase& c, const std::vector<TrialMetrics>& m) {
    return monotoneVerdict(c, m, slack);
  };
  return r;
}

// ---- VAST ----

void addVastRelations(RelationRegistry& reg) {
  // Knobs that are pattern-agnostic: perturbing them must not open a
  // random-vs-sequential gap.
  const ConfigGenerator wombat(Site::Wombat, StorageKind::Vast,
                               {{"cnodes", 0.75, 1.5, true},
                                {"nconnect", 0.5, 1.5, true},
                                {"rdmaSessionCap", 0.75, 1.5, false},
                                {"fabricLinkBandwidth", 0.75, 1.5, false}});

  {
    MetamorphicRelation r;
    r.name = "vast.random-read-tracks-sequential";
    r.storage = "vast";
    r.kind = RelationKind::Dominance;
    r.claim = "Fig 2b: VAST random reads ~equal sequential reads (SCM/QLC + DNode cache)";
    r.generate = [wombat](std::uint64_t seed) {
      RelationCase c;
      c.base = wombat.makeBase(seed, AccessPattern::SequentialRead);
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue rand = sweep::deepCopy(c.base);
      sweep::jsonPathSet(rand, "ior.access", JsonValue("rand-read"));
      c.variants.push_back(std::move(rand));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs, m[0].meanGBs, 0.7, 1.15,
                          "rand-read vs seq-read on VAST");
    };
    reg.add(std::move(r));
  }

  reg.add(makeMonotonic(
      "vast.read-monotone-in-cnodes", "vast", wombat, AccessPattern::SequentialRead,
      "storageConfig.cnodes", true, {2, 4, 8, 12}, 0.02,
      "§V: read ceiling scales with CNode count until the fabric binds"));

  reg.add(makeMonotonic(
      "vast.write-monotone-in-nconnect", "vast", wombat, AccessPattern::SequentialWrite,
      "storageConfig.nconnect", true, {1, 2, 4, 16}, 0.02,
      "§VII: nconnect multiplies NFS sessions; more sessions never slow writes"));

  {
    const ConfigGenerator lassen(Site::Lassen, StorageKind::Vast,
                                 {{"cnodes", 0.75, 1.5, true},
                                  {"tcpSessionCap", 0.75, 1.5, false},
                                  {"gateway.linkBandwidth", 0.75, 1.5, false},
                                  {"fabricLinkBandwidth", 0.75, 1.5, false}});
    MetamorphicRelation r;
    r.name = "vast.tcp-gateway-caps-aggregate";
    r.storage = "vast";
    r.kind = RelationKind::Conservation;
    r.claim = "Fig 2a: aggregate TCP bandwidth never beats the gateway pool or the sessions";
    r.generate = [lassen](std::uint64_t seed) {
      RelationCase c;
      c.base = lassen.makeBase(seed, AccessPattern::SequentialRead);
      c.variants.push_back(sweep::deepCopy(c.base));
      return c;
    };
    const JsonValue preset = presetJson(Site::Lassen, StorageKind::Vast);
    r.verdict = [preset](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      const JsonValue& cfg = c.variants[0];
      const double gatewayBytes = effective(cfg, preset, "gateway.nodes") *
                                  effective(cfg, preset, "gateway.linksPerNode") *
                                  effective(cfg, preset, "gateway.linkBandwidth");
      const double sessionBytes = numberAtPath(cfg, "ior.nodes", 1.0) *
                                  std::max(1.0, effective(cfg, preset, "nconnect")) *
                                  effective(cfg, preset, "tcpSessionCap");
      const double ceilingGBs = units::toGBs(std::min(gatewayBytes, sessionBytes));
      if (m[0].meanGBs <= ceilingGBs * 1.02) return CaseVerdict{};
      std::ostringstream os;
      os << "aggregate " << m[0].meanGBs << " GB/s beats the physical ceiling " << ceilingGBs
         << " GB/s (gateway " << units::toGBs(gatewayBytes) << ", sessions "
         << units::toGBs(sessionBytes) << ")";
      return CaseVerdict{false, os.str()};
    };
    reg.add(std::move(r));
  }

  {
    MetamorphicRelation r;
    r.name = "vast.determinism-under-reseed";
    r.storage = "vast";
    r.kind = RelationKind::Determinism;
    r.claim = "identical configs reproduce bit-identically; with noise off the seed is inert";
    r.generate = [wombat](std::uint64_t seed) {
      RelationCase c;
      c.base = wombat.makeBase(seed, AccessPattern::SequentialRead);
      c.variants.push_back(sweep::deepCopy(c.base));
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue reseeded = sweep::deepCopy(c.base);
      sweep::jsonPathSet(reseeded, "ior.seed",
                         JsonValue(numberAtPath(c.base, "ior.seed", 1.0) + 7919.0));
      c.variants.push_back(std::move(reseeded));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      if (m[0].meanGBs != m[1].meanGBs || m[0].elapsedSec != m[1].elapsedSec ||
          m[0].bytesMoved != m[1].bytesMoved) {
        return CaseVerdict{false, "two runs of the identical config disagree"};
      }
      const double rel = std::abs(m[2].meanGBs - m[0].meanGBs) / std::max(m[0].meanGBs, 1e-12);
      if (rel > 1e-9) {
        std::ostringstream os;
        os << "reseeding with noiseStdDevFrac=0 moved bandwidth by " << rel * 100 << "%";
        return CaseVerdict{false, os.str()};
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
}

// ---- GPFS ----

void addGpfsRelations(RelationRegistry& reg) {
  const ConfigGenerator lassen(Site::Lassen, StorageKind::Gpfs, defaultKnobs(StorageKind::Gpfs));

  {
    MetamorphicRelation r;
    r.name = "gpfs.sequential-dominates-random-read";
    r.storage = "gpfs";
    r.kind = RelationKind::Dominance;
    r.claim = "§VII: GPFS loses ~90% of read bandwidth from sequential to random";
    r.generate = [lassen](std::uint64_t seed) {
      RelationCase c;
      c.base = lassen.makeBase(seed, AccessPattern::SequentialRead);
      // The collapse is a scale phenomenon: the working set must dwarf
      // the servers' resident cache core (the paper measures it at the
      // top of Fig 2a's range). Pin cache-defeating geometry; the
      // storage knobs stay free.
      Rng rng(seed ^ 0x5dd1e5u);
      sweep::jsonPathSet(c.base, "ior.nodes", JsonValue(32.0 * (1 + rng.uniformInt(2))));
      sweep::jsonPathSet(c.base, "ior.procsPerNode", JsonValue(44));
      sweep::jsonPathSet(c.base, "ior.segments", JsonValue(3000));
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue rand = sweep::deepCopy(c.base);
      sweep::jsonPathSet(rand, "ior.access", JsonValue("rand-read"));
      c.variants.push_back(std::move(rand));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs, m[0].meanGBs, 0.0, 0.5,
                          "rand-read vs seq-read on GPFS (must collapse)");
    };
    reg.add(std::move(r));
  }

  reg.add(makeMonotonic(
      "gpfs.random-read-monotone-in-pagepool", "gpfs", lassen, AccessPattern::RandomRead,
      "storageConfig.serverCacheBytes", false,
      {static_cast<double>(128 * units::GiB), static_cast<double>(512 * units::GiB),
       static_cast<double>(2 * units::TiB), static_cast<double>(8 * units::TiB)},
      0.02, "§V: a bigger pagepool keeps a bigger resident core; hit ratio only grows"));

  {
    MetamorphicRelation r;
    r.name = "gpfs.write-scale-invariant-in-segments";
    r.storage = "gpfs";
    r.kind = RelationKind::ScaleInvariant;
    r.claim = "steady-state bandwidth is volume-invariant: doubling segments moves nothing";
    r.generate = [lassen](std::uint64_t seed) {
      RelationCase c;
      c.base = lassen.makeBase(seed, AccessPattern::SequentialWrite);
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue doubled = sweep::deepCopy(c.base);
      sweep::jsonPathSet(doubled, "ior.segments",
                         JsonValue(numberAtPath(c.base, "ior.segments", 1000.0) * 2.0));
      c.variants.push_back(std::move(doubled));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs, m[0].meanGBs, 0.9, 1.1,
                          "seq-write bandwidth at 2x segments");
    };
    reg.add(std::move(r));
  }
}

// ---- Lustre ----

void addLustreRelations(RelationRegistry& reg) {
  const ConfigGenerator quartz(Site::Quartz, StorageKind::Lustre,
                               defaultKnobs(StorageKind::Lustre));

  reg.add(makeMonotonic(
      "lustre.read-monotone-in-stripe-count", "lustre", quartz, AccessPattern::SequentialRead,
      "storageConfig.stripeCount", true, {1, 2, 4, 8}, 0.02,
      "Fig 3b/3c: striping over more OSTs never reduces bandwidth"));

  reg.add(makeMonotonic(
      "lustre.read-monotone-in-oss-count", "lustre", quartz, AccessPattern::SequentialRead,
      "storageConfig.ossCount", true, {9, 18, 36}, 0.02,
      "§IV-B: a bigger OSS pool never serves reads slower"));

  {
    MetamorphicRelation r;
    r.name = "lustre.bytes-conserved";
    r.storage = "lustre";
    r.kind = RelationKind::Conservation;
    r.claim = "every configured byte is moved exactly once: segments x block x ranks";
    r.generate = [quartz](std::uint64_t seed) {
      RelationCase c;
      c.base = quartz.makeBase(seed, AccessPattern::SequentialWrite);
      c.variants.push_back(sweep::deepCopy(c.base));
      return c;
    };
    r.verdict = [](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      const JsonValue& cfg = c.variants[0];
      const double expected = numberAtPath(cfg, "ior.segments", 0.0) *
                              numberAtPath(cfg, "ior.blockSize", static_cast<double>(units::MiB)) *
                              numberAtPath(cfg, "ior.nodes", 1.0) *
                              numberAtPath(cfg, "ior.procsPerNode", 1.0);
      if (std::abs(m[0].bytesMoved - expected) <= expected * 1e-9) return CaseVerdict{};
      std::ostringstream os;
      os << "moved " << m[0].bytesMoved << " bytes, config demands " << expected;
      return CaseVerdict{false, os.str()};
    };
    reg.add(std::move(r));
  }
}

// ---- node-local NVMe ----

void addNvmeRelations(RelationRegistry& reg) {
  const ConfigGenerator wombat(Site::Wombat, StorageKind::NvmeLocal,
                               defaultKnobs(StorageKind::NvmeLocal));

  reg.add(makeMonotonic(
      "nvme.read-monotone-in-queue-depth", "nvme", wombat, AccessPattern::SequentialRead,
      "ior.procsPerNode", true, {1, 2, 4, 8, 16, 32}, 0.02,
      "more concurrent readers never reduce aggregate local bandwidth"));

  {
    MetamorphicRelation r;
    r.name = "nvme.reads-saturate-at-device-pool";
    r.storage = "nvme";
    r.kind = RelationKind::Conservation;
    r.claim = "Fig 2b: deep queues saturate near (and never beat) the per-node drive pool";
    r.generate = [wombat](std::uint64_t seed) {
      RelationCase c;
      c.base = wombat.makeBase(seed, AccessPattern::SequentialRead);
      sweep::jsonPathSet(c.base, "ior.procsPerNode", JsonValue(32));
      c.variants.push_back(sweep::deepCopy(c.base));
      return c;
    };
    const JsonValue preset = presetJson(Site::Wombat, StorageKind::NvmeLocal);
    r.verdict = [preset](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      const JsonValue& cfg = c.variants[0];
      const double poolBytes = numberAtPath(cfg, "ior.nodes", 1.0) *
                               effective(cfg, preset, "drivesPerNode") *
                               effective(cfg, preset, "drive.readBandwidth");
      const double poolGBs = units::toGBs(poolBytes);
      if (m[0].meanGBs > poolGBs * 1.02) {
        std::ostringstream os;
        os << "aggregate " << m[0].meanGBs << " GB/s beats the drive pool " << poolGBs << " GB/s";
        return CaseVerdict{false, os.str()};
      }
      return ratioVerdict(m[0].meanGBs, poolGBs, 0.6, 1.02, "saturation vs drive pool at qd=32");
    };
    reg.add(std::move(r));
  }

  {
    MetamorphicRelation r;
    r.name = "nvme.per-node-invariant-in-nodes";
    r.storage = "nvme";
    r.kind = RelationKind::ScaleInvariant;
    r.claim = "Fig 2b: node-local I/O never crosses the network; per-node bandwidth is flat";
    r.generate = [wombat](std::uint64_t seed) {
      RelationCase c;
      c.base = wombat.makeBase(seed, AccessPattern::SequentialRead);
      sweep::jsonPathSet(c.base, "ior.nodes", JsonValue(1));
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue scaled = sweep::deepCopy(c.base);
      sweep::jsonPathSet(scaled, "ior.nodes", JsonValue(4));
      c.variants.push_back(std::move(scaled));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs / 4.0, m[0].meanGBs, 0.95, 1.05,
                          "per-node bandwidth at 4 nodes vs 1 node");
    };
    reg.add(std::move(r));
  }
}

// ---- chaos (fault scenarios on VAST) ----

/// A small saturated chaos scenario: 4 Lassen CNodes serving a 4-node
/// seq-write that demands ~4.6 GB/s, so the CNode write aggregate is the
/// binding constraint and any CNode fault moves the timeline.
JsonValue chaosBase(std::uint64_t seed) {
  JsonObject workload;
  workload["nodes"] = 4.0;
  workload["procsPerNode"] = seed % 2 == 0 ? 8.0 : 6.0;
  workload["access"] = "seq-write";
  workload["requestBytes"] = seed % 3 == 0 ? 8.0 * 1024 * 1024 : 16.0 * 1024 * 1024;
  JsonObject storageConfig;
  storageConfig["cnodes"] = 4.0;
  JsonObject retry;
  retry["timeoutSec"] = 5.0;
  JsonObject root;
  root["name"] = "oracle-chaos";
  root["site"] = "lassen";
  root["storage"] = "vast";
  root["storageConfig"] = JsonValue(std::move(storageConfig));
  root["workload"] = JsonValue(std::move(workload));
  root["horizonSec"] = 20.0;
  root["intervalSec"] = 2.0;
  root["retry"] = JsonValue(std::move(retry));
  return JsonValue(std::move(root));
}

JsonValue chaosEvent(double at, const std::string& action, double severity = 1.0) {
  JsonObject ev;
  ev["atSec"] = at;
  ev["action"] = action;
  ev["component"] = "cnode";
  ev["index"] = 0.0;
  if (action == "fail-slow") ev["severity"] = severity;
  return JsonValue(std::move(ev));
}

JsonValue withChaosEvents(const JsonValue& base, JsonArray events) {
  JsonValue cfg = sweep::deepCopy(base);
  (*cfg.object())["events"] = JsonValue(std::move(events));
  return cfg;
}

void addChaosRelations(RelationRegistry& reg) {
  {
    MetamorphicRelation r;
    r.name = "chaos.empty-schedule-steady";
    r.storage = "vast";
    r.experiment = "chaos";
    r.kind = RelationKind::Determinism;
    r.claim = "an empty fault schedule is a no-op: two identical event-free "
              "scenario runs agree bit-for-bit, so the chaos layer costs nothing "
              "until a fault actually fires";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = chaosBase(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      c.variants.push_back(sweep::deepCopy(c.base));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      if (m[0].meanGBs == m[1].meanGBs && m[0].minGBs == m[1].minGBs &&
          m[0].maxGBs == m[1].maxGBs && m[0].bytesMoved == m[1].bytesMoved) {
        return CaseVerdict{};
      }
      std::ostringstream os;
      os << "identical event-free scenarios disagree: " << m[0].meanGBs << " vs " << m[1].meanGBs
         << " GB/s (bytes " << m[0].bytesMoved << " vs " << m[1].bytesMoved << ")";
      return CaseVerdict{false, os.str()};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "chaos.restore-converges";
    r.storage = "vast";
    r.experiment = "chaos";
    r.kind = RelationKind::Dominance;
    r.claim = "fail-then-restore converges: after the failed CNode comes back the "
              "best timeline slice returns to within 3% of the healthy run's mean, "
              "while the outage slice shows a real dip";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = chaosBase(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonArray events;
      events.push_back(chaosEvent(2.0, "fail"));
      events.push_back(chaosEvent(10.0, "restore"));
      c.variants.push_back(withChaosEvents(c.base, std::move(events)));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      const double healthy = m[0].meanGBs;
      if (healthy <= 0.0) return CaseVerdict{false, "healthy run produced no bandwidth"};
      if (m[1].maxGBs < healthy * 0.97) {
        std::ostringstream os;
        os << "no recovery: best slice after restore " << m[1].maxGBs
           << " GB/s vs healthy mean " << healthy;
        return CaseVerdict{false, os.str()};
      }
      if (m[1].minGBs > healthy * 0.9) {
        std::ostringstream os;
        os << "no dip: worst slice " << m[1].minGBs << " GB/s vs healthy mean " << healthy
           << " — the fault did not bite";
        return CaseVerdict{false, os.str()};
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "chaos.fail-slow-monotone-in-severity";
    r.storage = "vast";
    r.experiment = "chaos";
    r.kind = RelationKind::Monotonic;
    // axis stays empty: the severity lives inside the events array, which
    // jsonPathSet cannot reach, so the shrinker correctly skips this one.
    r.slack = 0.02;
    r.claim = "a deeper fail-slow is monotonically worse: timeline mean bandwidth "
              "is non-decreasing in the slowed CNode's remaining health fraction";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = chaosBase(seed);
      c.axisValues = {0.25, 0.5, 0.75};
      for (double severity : c.axisValues) {
        JsonArray events;
        events.push_back(chaosEvent(2.0, "fail-slow", severity));
        c.variants.push_back(withChaosEvents(c.base, std::move(events)));
      }
      return c;
    };
    r.verdict = [](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      return monotoneVerdict(c, m, 0.02);
    };
    reg.add(std::move(r));
  }
}

// ---- workload generators ----

/// A small grammar-generator run spec: two bursts of writes with a
/// compute gap and a random-read drain — enough structure to exercise
/// expansion, per-rank rng state and the op-latency path, small enough
/// to stay fast at oracle case counts.
JsonValue grammarBase(std::uint64_t seed) {
  JsonObject burst;
  burst["op"] = "write";
  burst["bytes"] = seed % 3 == 0 ? 2.0 * 1024 * 1024 : 1024.0 * 1024;
  burst["count"] = 6.0;
  burst["pattern"] = "seq";
  JsonObject drain;
  drain["op"] = "read";
  drain["bytes"] = 1024.0 * 1024;
  drain["count"] = 4.0;
  drain["pattern"] = "random";
  JsonObject epochRef;
  epochRef["rule"] = "epoch";
  epochRef["repeat"] = 2.0;
  JsonObject compute;
  compute["compute"] = 0.01;
  JsonArray main;
  main.push_back(JsonValue(std::move(epochRef)));
  JsonArray epoch;
  epoch.push_back(JsonValue("burst"));
  epoch.push_back(JsonValue(std::move(compute)));
  epoch.push_back(JsonValue("drain"));
  JsonArray burstRule;
  burstRule.push_back(JsonValue(std::move(burst)));
  JsonArray drainRule;
  drainRule.push_back(JsonValue(std::move(drain)));
  JsonObject rules;
  rules["main"] = JsonValue(std::move(main));
  rules["epoch"] = JsonValue(std::move(epoch));
  rules["burst"] = JsonValue(std::move(burstRule));
  rules["drain"] = JsonValue(std::move(drainRule));
  JsonObject w;
  w["generator"] = "grammar";
  w["nodes"] = 1.0;
  w["procsPerNode"] = seed % 2 == 0 ? 4.0 : 2.0;
  w["seed"] = static_cast<double>(seed % 1000);
  w["fileBytes"] = 64.0 * 1024 * 1024;
  w["rules"] = JsonValue(std::move(rules));
  JsonObject root;
  root["name"] = "oracle-grammar";
  root["site"] = "lassen";
  root["storage"] = "vast";
  root["workload"] = JsonValue(std::move(w));
  return JsonValue(std::move(root));
}

JsonValue openloopBase(std::uint64_t seed) {
  JsonObject w;
  w["generator"] = "openloop";
  w["clients"] = 4.0;
  w["clientsPerNode"] = 2.0;
  w["ratePerClientHz"] = 10.0;
  w["horizonSec"] = 4.0;
  w["objects"] = 128.0;
  w["zipfTheta"] = seed % 2 == 0 ? 0.99 : 0.6;
  w["objectBytes"] = 4.0 * 1024 * 1024;
  w["requestBytes"] = 128.0 * 1024;
  w["readFraction"] = 0.9;
  w["seed"] = static_cast<double>(seed % 1000);
  JsonObject root;
  root["name"] = "oracle-openloop";
  root["site"] = "lassen";
  root["storage"] = "vast";
  root["workload"] = JsonValue(std::move(w));
  return JsonValue(std::move(root));
}

JsonValue io500Base(std::uint64_t seed) {
  JsonObject w;
  w["generator"] = "io500";
  w["nodes"] = 1.0;
  w["procsPerNode"] = seed % 2 == 0 ? 4.0 : 2.0;
  w["scale"] = 1.0;
  w["easyOpsMedian"] = 8.0;
  w["hardOpsMedian"] = 16.0;
  w["seed"] = static_cast<double>(seed % 1000);
  JsonObject root;
  root["name"] = "oracle-io500";
  root["site"] = "lassen";
  root["storage"] = "vast";
  root["workload"] = JsonValue(std::move(w));
  return JsonValue(std::move(root));
}

void addWorkloadRelations(RelationRegistry& reg) {
  {
    MetamorphicRelation r;
    r.name = "workload.grammar-seed-determinism";
    r.storage = "vast";
    r.experiment = "workload";
    r.kind = RelationKind::Determinism;
    r.claim = "a grammar workload is a pure function of its spec: two runs of the "
              "same expanded grammar at the same seed agree bit-for-bit, down to "
              "the per-op latency percentiles";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = grammarBase(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      c.variants.push_back(sweep::deepCopy(c.base));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      if (m[0].meanGBs == m[1].meanGBs && m[0].bytesMoved == m[1].bytesMoved &&
          m[0].elapsedSec == m[1].elapsedSec && m[0].opCount == m[1].opCount &&
          m[0].opP50 == m[1].opP50 && m[0].opP99 == m[1].opP99) {
        return CaseVerdict{};
      }
      std::ostringstream os;
      os << "identical grammar specs disagree: " << m[0].meanGBs << " vs " << m[1].meanGBs
         << " GB/s (bytes " << m[0].bytesMoved << " vs " << m[1].bytesMoved << ", p50 "
         << m[0].opP50 << " vs " << m[1].opP50 << ")";
      return CaseVerdict{false, os.str()};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "workload.openloop-rate-monotone";
    r.storage = "vast";
    r.experiment = "workload";
    r.kind = RelationKind::Monotonic;
    r.axis = "workload.ratePerClientHz";
    r.slack = 0.05;
    r.claim = "open-loop arrivals are demand-driven: raising the per-client "
              "arrival rate over a fixed horizon moves at least as many bytes "
              "(queues may grow, but completed work cannot shrink)";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = openloopBase(seed);
      c.axis = "workload.ratePerClientHz";
      c.axisValues = {10.0, 25.0, 50.0};
      for (double rate : c.axisValues) {
        JsonValue cfg = sweep::deepCopy(c.base);
        sweep::jsonPathSet(cfg, "workload.ratePerClientHz", JsonValue(rate));
        c.variants.push_back(std::move(cfg));
      }
      return c;
    };
    r.verdict = [](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      for (std::size_t i = 0; i + 1 < m.size(); ++i) {
        if (m[i + 1].bytesMoved < m[i].bytesMoved * 0.95) {
          std::ostringstream os;
          os << "completed bytes drop along '" << c.axis << "': " << m[i].bytesMoved << " at "
             << c.axisValues[i] << " Hz -> " << m[i + 1].bytesMoved << " at "
             << c.axisValues[i + 1] << " Hz";
          return CaseVerdict{false, os.str()};
        }
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "workload.io500-scale-invariant";
    r.storage = "vast";
    r.experiment = "workload";
    r.kind = RelationKind::Dominance;
    r.axis = "workload.scale";
    r.claim = "io500 'scale' grows per-rank op counts without changing per-op "
              "geometry, so steady-state bandwidth is scale-invariant: doubling "
              "the working set leaves GB/s within a tight band";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = io500Base(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue doubled = sweep::deepCopy(c.base);
      sweep::jsonPathSet(doubled, "workload.scale", JsonValue(2.0));
      c.variants.push_back(std::move(doubled));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs, m[0].meanGBs, 0.7, 1.4,
                          "io500 bandwidth at scale 2 vs scale 1");
    };
    reg.add(std::move(r));
  }
}

/// Base config for the scale relations: an open-loop population on
/// Lassen/VAST expressed as flow classes. nconnect is pinned to 1 so
/// every rank mounts over the same session path — the precondition for
/// partition invariance to be byte-exact (procs otherwise hash to
/// different CNode routes). clientsPerRank > 1 on every variant keeps
/// VAST reads on the deterministic fractional cache split.
JsonValue scaleOpenloopBase(std::uint64_t seed) {
  JsonObject w;
  w["generator"] = "openloop";
  w["clients"] = 1.0;
  w["clientsPerNode"] = 1.0;
  w["clientsPerRank"] = 12.0;
  w["sharedStream"] = true;
  w["ratePerClientHz"] = 10.0;
  w["horizonSec"] = 3.0;
  w["objects"] = 128.0;
  w["zipfTheta"] = seed % 2 == 0 ? 0.99 : 0.6;
  w["objectBytes"] = 4.0 * 1024 * 1024;
  w["requestBytes"] = 128.0 * 1024;
  w["readFraction"] = 0.9;
  w["seed"] = static_cast<double>(seed % 1000);
  JsonObject storage;
  storage["nconnect"] = 1.0;
  JsonObject root;
  root["name"] = "oracle-scale";
  root["site"] = "lassen";
  root["storage"] = "vast";
  root["storageConfig"] = JsonValue(std::move(storage));
  root["workload"] = JsonValue(std::move(w));
  return JsonValue(std::move(root));
}

void addScaleRelations(RelationRegistry& reg) {
  {
    MetamorphicRelation r;
    r.name = "scale.class-partition-invariance";
    r.storage = "vast";
    r.experiment = "workload";
    r.kind = RelationKind::Determinism;
    r.claim = "a flow class is a pure aggregation: splitting a shared-stream "
              "class of 2N members into two classes of N (same total "
              "population, same arrival draws) changes no metric, down to the "
              "per-op latency percentiles";
    r.generate = [](std::uint64_t seed) {
      // The same 12- or 24-client population expressed as 1, 2 and 4
      // classes. clientsPerNode tracks clients so every variant keeps
      // one node and an identical phase population (clientsPerNode *
      // clientsPerRank is constant).
      const double total = seed % 2 == 0 ? 12.0 : 24.0;
      RelationCase c;
      c.base = scaleOpenloopBase(seed);
      for (double classes : {1.0, 2.0, 4.0}) {
        JsonValue cfg = sweep::deepCopy(c.base);
        sweep::jsonPathSet(cfg, "workload.clients", JsonValue(classes));
        sweep::jsonPathSet(cfg, "workload.clientsPerNode", JsonValue(classes));
        sweep::jsonPathSet(cfg, "workload.clientsPerRank", JsonValue(total / classes));
        c.variants.push_back(std::move(cfg));
      }
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      for (std::size_t i = 1; i < m.size(); ++i) {
        if (m[i].meanGBs == m[0].meanGBs && m[i].bytesMoved == m[0].bytesMoved &&
            m[i].elapsedSec == m[0].elapsedSec && m[i].opCount == m[0].opCount &&
            m[i].opP50 == m[0].opP50 && m[i].opP99 == m[0].opP99) {
          continue;
        }
        std::ostringstream os;
        os << "partitioning the population into " << (i == 1 ? 2 : 4)
           << " classes changed the run: " << m[0].meanGBs << " vs " << m[i].meanGBs
           << " GB/s (bytes " << m[0].bytesMoved << " vs " << m[i].bytesMoved << ", p50 "
           << m[0].opP50 << " vs " << m[i].opP50 << ")";
        return CaseVerdict{false, os.str()};
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "scale.client-count-monotone";
    r.storage = "vast";
    r.experiment = "workload";
    r.kind = RelationKind::Monotonic;
    r.axis = "workload.clientsPerRank";
    r.integerAxis = true;
    r.slack = 0.07;
    r.claim = "adding clients to a class never shrinks the system: aggregate "
              "goodput is non-decreasing in the member count (it saturates at "
              "capacity), while the per-client share is non-increasing (fair "
              "shares dilute, they are never minted)";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = scaleOpenloopBase(seed);
      sweep::jsonPathSet(c.base, "workload.clients", JsonValue(4.0));
      sweep::jsonPathSet(c.base, "workload.clientsPerNode", JsonValue(4.0));
      c.axis = "workload.clientsPerRank";
      c.axisValues = {2.0, 8.0, 32.0, 128.0};
      for (double members : c.axisValues) {
        JsonValue cfg = sweep::deepCopy(c.base);
        sweep::jsonPathSet(cfg, "workload.clientsPerRank", JsonValue(members));
        c.variants.push_back(std::move(cfg));
      }
      return c;
    };
    r.verdict = [](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      for (std::size_t i = 0; i + 1 < m.size(); ++i) {
        if (m[i + 1].meanGBs < m[i].meanGBs * (1.0 - 0.07)) {
          std::ostringstream os;
          os << "aggregate goodput drops along '" << c.axis << "': " << m[i].meanGBs
             << " GB/s at " << c.axisValues[i] << " members -> " << m[i + 1].meanGBs
             << " GB/s at " << c.axisValues[i + 1];
          return CaseVerdict{false, os.str()};
        }
        const double shareA = m[i].meanGBs / c.axisValues[i];
        const double shareB = m[i + 1].meanGBs / c.axisValues[i + 1];
        if (shareB > shareA * (1.0 + 0.07)) {
          std::ostringstream os;
          os << "per-client share grows along '" << c.axis << "': " << shareA
             << " GB/s/client at " << c.axisValues[i] << " members -> " << shareB << " at "
             << c.axisValues[i + 1];
          return CaseVerdict{false, os.str()};
        }
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
}

// ---- transport (NIC/endpoint fabric, exercised through DAOS) ----

/// IOR-on-DAOS base for the transport relations. DAOS is the backend
/// whose data path always rides the fabric, and its 8 x 6 GB/s target
/// pool is fat enough that the *endpoint profile* is the binding
/// constraint — on VAST the legacy NFS-frontend session caps bind first
/// and would mask the fabric. seq-read keeps the RF-2 write fan-out out
/// of the picture so the measured rate is one class per node.
JsonValue transportIorBase(std::uint64_t seed) {
  JsonObject ior;
  ior["access"] = "seq-read";
  ior["nodes"] = 2.0;
  ior["procsPerNode"] = 4.0;
  ior["segments"] = seed % 3 == 0 ? 100.0 : 200.0;
  ior["repetitions"] = 1.0;
  JsonObject root;
  root["site"] = "lassen";
  root["storage"] = "daos";
  root["ior"] = JsonValue(std::move(ior));
  return JsonValue(std::move(root));
}

JsonValue withTransport(const JsonValue& base, JsonObject section) {
  JsonValue cfg = sweep::deepCopy(base);
  (*cfg.object())["transport"] = JsonValue(std::move(section));
  return cfg;
}

void addTransportRelations(RelationRegistry& reg) {
  {
    MetamorphicRelation r;
    r.name = "transport.nconnect-monotone";
    r.storage = "daos";
    r.kind = RelationKind::Monotonic;
    r.axis = "transport.lanes";
    r.integerAxis = true;
    r.slack = 0.02;
    r.claim = "§VII nconnect: more TCP connection lanes never slow an "
              "endpoint-bound client — each lane adds an independent "
              "~1.15 GB/s stream until another resource binds";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = transportIorBase(seed);
      // streams >= lanes on every variant, so each added lane is usable.
      sweep::jsonPathSet(c.base, "ior.procsPerNode", JsonValue(8.0));
      sweep::jsonPathSet(c.base, "transport.kind", JsonValue("tcp"));
      c.axis = "transport.lanes";
      c.axisValues = {1.0, 2.0, 4.0, 8.0};
      for (double lanes : c.axisValues) {
        JsonValue cfg = sweep::deepCopy(c.base);
        sweep::jsonPathSet(cfg, "transport.lanes", JsonValue(lanes));
        c.variants.push_back(std::move(cfg));
      }
      return c;
    };
    r.verdict = [](const RelationCase& c, const std::vector<TrialMetrics>& m) {
      return monotoneVerdict(c, m, 0.02);
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "transport.rdma-dominates-tcp";
    r.storage = "daos";
    r.kind = RelationKind::Dominance;
    r.claim = "Fig 1/§V: the full RDMA endpoint beats the single NFS/TCP "
              "session by ~8x at 4 procs/node (4 usable QPs x ~2.5 GB/s vs "
              "one ~1.15 GB/s stream) — the gap emerges from per-op costs "
              "and lane counts, it is not a configured ratio";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = transportIorBase(seed);
      JsonObject tcp;
      tcp["kind"] = std::string("tcp");
      c.variants.push_back(withTransport(c.base, std::move(tcp)));
      JsonObject rdma;
      rdma["kind"] = std::string("rdma");
      c.variants.push_back(withTransport(c.base, std::move(rdma)));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      return ratioVerdict(m[1].meanGBs, m[0].meanGBs, 6.4, 9.6,
                          "rdma vs tcp endpoint preset on DAOS");
    };
    reg.add(std::move(r));
  }
}

// ---- DAOS ----

/// A saturated DAOS chaos scenario: a 4-node seq-write against the 8
/// targets, hot enough that failing one target both stalls its in-flight
/// bulk transfers and removes visible capacity.
JsonValue daosChaosBase(std::uint64_t seed) {
  JsonObject workload;
  workload["nodes"] = 4.0;
  // Stay at >= 8 procs/node: a cooler population leaves enough slack in
  // the 8-target pool that a single-target outage barely registers.
  workload["procsPerNode"] = seed % 2 == 0 ? 8.0 : 10.0;
  workload["access"] = "seq-write";
  workload["requestBytes"] = seed % 3 == 0 ? 8.0 * 1024 * 1024 : 16.0 * 1024 * 1024;
  JsonObject retry;
  retry["timeoutSec"] = 5.0;
  JsonObject root;
  root["name"] = "oracle-daos-chaos";
  root["site"] = "lassen";
  root["storage"] = "daos";
  root["workload"] = JsonValue(std::move(workload));
  root["horizonSec"] = 20.0;
  root["intervalSec"] = 2.0;
  root["retry"] = JsonValue(std::move(retry));
  return JsonValue(std::move(root));
}

JsonValue daosTargetEvent(double at, const std::string& action) {
  JsonObject ev;
  ev["atSec"] = at;
  ev["action"] = action;
  ev["component"] = "target";
  ev["index"] = 0.0;
  return JsonValue(std::move(ev));
}

void addDaosRelations(RelationRegistry& reg) {
  {
    MetamorphicRelation r;
    r.name = "daos.empty-transport-identity";
    r.storage = "daos";
    r.kind = RelationKind::Determinism;
    r.claim = "an empty \"transport\" section is the identity: it overrides "
              "nothing on the model's declared RDMA profile, so the run with "
              "{} agrees bit-for-bit with the run with no section at all";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = transportIorBase(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      c.variants.push_back(withTransport(c.base, JsonObject{}));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      if (m[0].meanGBs == m[1].meanGBs && m[0].minGBs == m[1].minGBs &&
          m[0].maxGBs == m[1].maxGBs && m[0].elapsedSec == m[1].elapsedSec &&
          m[0].bytesMoved == m[1].bytesMoved) {
        return CaseVerdict{};
      }
      std::ostringstream os;
      os << "an empty transport section changed the run: " << m[0].meanGBs << " vs "
         << m[1].meanGBs << " GB/s (elapsed " << m[0].elapsedSec << " vs " << m[1].elapsedSec
         << " s)";
      return CaseVerdict{false, os.str()};
    };
    reg.add(std::move(r));
  }
  {
    MetamorphicRelation r;
    r.name = "daos.restore-converges";
    r.storage = "daos";
    r.experiment = "chaos";
    r.kind = RelationKind::Dominance;
    r.claim = "fail-then-restore on a DAOS target converges: after the target "
              "rejoins placement the best timeline slice returns to within 3% "
              "of the healthy run's mean, while the outage slice shows a real "
              "dip from the stalled bulk transfers and lost capacity";
    r.generate = [](std::uint64_t seed) {
      RelationCase c;
      c.base = daosChaosBase(seed);
      c.variants.push_back(sweep::deepCopy(c.base));
      JsonValue faulty = sweep::deepCopy(c.base);
      JsonArray events;
      events.push_back(daosTargetEvent(2.0, "fail"));
      events.push_back(daosTargetEvent(10.0, "restore"));
      (*faulty.object())["events"] = JsonValue(std::move(events));
      c.variants.push_back(std::move(faulty));
      return c;
    };
    r.verdict = [](const RelationCase&, const std::vector<TrialMetrics>& m) {
      const double healthy = m[0].meanGBs;
      if (healthy <= 0.0) return CaseVerdict{false, "healthy run produced no bandwidth"};
      if (m[1].maxGBs < healthy * 0.97) {
        std::ostringstream os;
        os << "no recovery: best slice after restore " << m[1].maxGBs
           << " GB/s vs healthy mean " << healthy;
        return CaseVerdict{false, os.str()};
      }
      if (m[1].minGBs > healthy * 0.9) {
        std::ostringstream os;
        os << "no dip: worst slice " << m[1].minGBs << " GB/s vs healthy mean " << healthy
           << " — the target fault did not bite";
        return CaseVerdict{false, os.str()};
      }
      return CaseVerdict{};
    };
    reg.add(std::move(r));
  }
}

}  // namespace

const RelationRegistry& RelationRegistry::builtin() {
  static const RelationRegistry registry = [] {
    RelationRegistry reg;
    addVastRelations(reg);
    addGpfsRelations(reg);
    addLustreRelations(reg);
    addNvmeRelations(reg);
    addChaosRelations(reg);
    addWorkloadRelations(reg);
    addScaleRelations(reg);
    addTransportRelations(reg);
    addDaosRelations(reg);
    return reg;
  }();
  return registry;
}

}  // namespace hcsim::oracle
