# Empty dependencies file for test_vast.
# This may be replaced when dependencies are built.
