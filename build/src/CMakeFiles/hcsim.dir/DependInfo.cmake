
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/lru_cache.cpp" "src/CMakeFiles/hcsim.dir/cache/lru_cache.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cache/lru_cache.cpp.o.d"
  "/root/repo/src/cache/prefetch_cache.cpp" "src/CMakeFiles/hcsim.dir/cache/prefetch_cache.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cache/prefetch_cache.cpp.o.d"
  "/root/repo/src/cache/writeback_buffer.cpp" "src/CMakeFiles/hcsim.dir/cache/writeback_buffer.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cache/writeback_buffer.cpp.o.d"
  "/root/repo/src/cli/args.cpp" "src/CMakeFiles/hcsim.dir/cli/args.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cli/args.cpp.o.d"
  "/root/repo/src/cli/commands.cpp" "src/CMakeFiles/hcsim.dir/cli/commands.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cli/commands.cpp.o.d"
  "/root/repo/src/cluster/deployments.cpp" "src/CMakeFiles/hcsim.dir/cluster/deployments.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cluster/deployments.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/CMakeFiles/hcsim.dir/cluster/machine.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/cluster/machine.cpp.o.d"
  "/root/repo/src/config/serialize.cpp" "src/CMakeFiles/hcsim.dir/config/serialize.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/config/serialize.cpp.o.d"
  "/root/repo/src/contention/background_load.cpp" "src/CMakeFiles/hcsim.dir/contention/background_load.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/contention/background_load.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/CMakeFiles/hcsim.dir/core/calibration.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/core/calibration.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/hcsim.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/hcsim.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/hcsim.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/core/sweep.cpp.o.d"
  "/root/repo/src/core/takeaways.cpp" "src/CMakeFiles/hcsim.dir/core/takeaways.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/core/takeaways.cpp.o.d"
  "/root/repo/src/device/device_queue.cpp" "src/CMakeFiles/hcsim.dir/device/device_queue.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/device/device_queue.cpp.o.d"
  "/root/repo/src/device/hdd_raid.cpp" "src/CMakeFiles/hcsim.dir/device/hdd_raid.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/device/hdd_raid.cpp.o.d"
  "/root/repo/src/device/ssd.cpp" "src/CMakeFiles/hcsim.dir/device/ssd.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/device/ssd.cpp.o.d"
  "/root/repo/src/dlio/dlio_config.cpp" "src/CMakeFiles/hcsim.dir/dlio/dlio_config.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/dlio/dlio_config.cpp.o.d"
  "/root/repo/src/dlio/dlio_runner.cpp" "src/CMakeFiles/hcsim.dir/dlio/dlio_runner.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/dlio/dlio_runner.cpp.o.d"
  "/root/repo/src/fs/client_session.cpp" "src/CMakeFiles/hcsim.dir/fs/client_session.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/fs/client_session.cpp.o.d"
  "/root/repo/src/fs/model_support.cpp" "src/CMakeFiles/hcsim.dir/fs/model_support.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/fs/model_support.cpp.o.d"
  "/root/repo/src/fs/storage_base.cpp" "src/CMakeFiles/hcsim.dir/fs/storage_base.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/fs/storage_base.cpp.o.d"
  "/root/repo/src/gpfs/gpfs_config.cpp" "src/CMakeFiles/hcsim.dir/gpfs/gpfs_config.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/gpfs/gpfs_config.cpp.o.d"
  "/root/repo/src/gpfs/gpfs_model.cpp" "src/CMakeFiles/hcsim.dir/gpfs/gpfs_model.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/gpfs/gpfs_model.cpp.o.d"
  "/root/repo/src/ior/ior_config.cpp" "src/CMakeFiles/hcsim.dir/ior/ior_config.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/ior/ior_config.cpp.o.d"
  "/root/repo/src/ior/ior_runner.cpp" "src/CMakeFiles/hcsim.dir/ior/ior_runner.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/ior/ior_runner.cpp.o.d"
  "/root/repo/src/lustre/lustre_config.cpp" "src/CMakeFiles/hcsim.dir/lustre/lustre_config.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/lustre/lustre_config.cpp.o.d"
  "/root/repo/src/lustre/lustre_model.cpp" "src/CMakeFiles/hcsim.dir/lustre/lustre_model.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/lustre/lustre_model.cpp.o.d"
  "/root/repo/src/mdtest/mdtest.cpp" "src/CMakeFiles/hcsim.dir/mdtest/mdtest.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/mdtest/mdtest.cpp.o.d"
  "/root/repo/src/net/flow_network.cpp" "src/CMakeFiles/hcsim.dir/net/flow_network.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/net/flow_network.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/hcsim.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/net/link.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/hcsim.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/net/topology.cpp.o.d"
  "/root/repo/src/nvme/nvme_local.cpp" "src/CMakeFiles/hcsim.dir/nvme/nvme_local.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/nvme/nvme_local.cpp.o.d"
  "/root/repo/src/replay/trace_replay.cpp" "src/CMakeFiles/hcsim.dir/replay/trace_replay.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/replay/trace_replay.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/hcsim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sweep/result_sink.cpp" "src/CMakeFiles/hcsim.dir/sweep/result_sink.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/sweep/result_sink.cpp.o.d"
  "/root/repo/src/sweep/sweep_runner.cpp" "src/CMakeFiles/hcsim.dir/sweep/sweep_runner.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/sweep/sweep_runner.cpp.o.d"
  "/root/repo/src/sweep/sweep_spec.cpp" "src/CMakeFiles/hcsim.dir/sweep/sweep_spec.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/sweep/sweep_spec.cpp.o.d"
  "/root/repo/src/trace/chrome_trace.cpp" "src/CMakeFiles/hcsim.dir/trace/chrome_trace.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/trace/chrome_trace.cpp.o.d"
  "/root/repo/src/trace/overlap_analysis.cpp" "src/CMakeFiles/hcsim.dir/trace/overlap_analysis.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/trace/overlap_analysis.cpp.o.d"
  "/root/repo/src/trace/trace_import.cpp" "src/CMakeFiles/hcsim.dir/trace/trace_import.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/trace/trace_import.cpp.o.d"
  "/root/repo/src/trace/trace_log.cpp" "src/CMakeFiles/hcsim.dir/trace/trace_log.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/trace/trace_log.cpp.o.d"
  "/root/repo/src/unifyfs/unifyfs_model.cpp" "src/CMakeFiles/hcsim.dir/unifyfs/unifyfs_model.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/unifyfs/unifyfs_model.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/hcsim.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/hcsim.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/hcsim.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/log.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/hcsim.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/random.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/hcsim.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/hcsim.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/hcsim.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/util/units.cpp.o.d"
  "/root/repo/src/vast/vast_config.cpp" "src/CMakeFiles/hcsim.dir/vast/vast_config.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/vast/vast_config.cpp.o.d"
  "/root/repo/src/vast/vast_model.cpp" "src/CMakeFiles/hcsim.dir/vast/vast_model.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/vast/vast_model.cpp.o.d"
  "/root/repo/src/workloads/app_workloads.cpp" "src/CMakeFiles/hcsim.dir/workloads/app_workloads.cpp.o" "gcc" "src/CMakeFiles/hcsim.dir/workloads/app_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
