#pragma once
// Chrome-trace import — round-trip support for the DFTracer-substitute:
// parse the JSON emitted by toChromeTraceJson() (or DFTracer-compatible
// complete-event traces) back into a TraceLog, so captured runs can be
// re-analysed offline.
//
// Real trace files are messy — killed runs truncate them mid-line,
// hand-edited ones drop fields — so the importer is tolerant: malformed
// elements are skipped and counted rather than aborting the import, and
// a document whose outer JSON no longer parses (truncation) is salvaged
// line by line.

#include <cstddef>
#include <string>

#include "trace/trace_log.hpp"

namespace hcsim {

/// What an import did: events recorded into the log vs malformed
/// elements/lines dropped. Non-"X" phases (metadata records) are
/// neither — they are valid chrome-trace content we simply don't model.
struct TraceImportStats {
  std::size_t imported = 0;
  std::size_t skipped = 0;
};

/// Parse a chrome trace from a JSON string. Accepts "X" (complete)
/// events with ts/dur in microseconds; the `cat` field maps to the event
/// kind ("read"/"write"/"compute", anything else -> Other). Non-"X"
/// events are skipped. Malformed array elements (non-objects, events
/// missing numeric ts/dur) are skipped and counted in `stats`; if the
/// document itself fails to parse (e.g. truncated by a killed run),
/// events are salvaged line by line. Returns false — with `out`
/// untouched — only when nothing could be imported at all.
bool parseChromeTraceJson(const std::string& json, TraceLog& out,
                          TraceImportStats* stats = nullptr);

/// Read and parse a trace file. Returns false on I/O or parse failure.
bool readChromeTrace(const std::string& path, TraceLog& out, TraceImportStats* stats = nullptr);

}  // namespace hcsim
