#pragma once
// IorSource — the IOR benchmark expressed as a WorkloadSource. Both
// drive modes of the old IorRunner map onto the pull API:
//
//  * Coalesced — one rank per (node, channel-slot) flow; each rank emits
//    exactly one aggregated run-of-ops request (DESIGN.md §5).
//  * PerOp — one rank per process; each rank is a chain of single
//    transfers with issue-time offset draws and stonewall cutoff.
//
// The op streams are bit-for-bit the request sequences the pre-refactor
// IorRunner submitted, so golden figures are unchanged.

#include <vector>

#include "ior/ior_config.hpp"
#include "util/random.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

class IorSource : public WorkloadSource {
 public:
  explicit IorSource(const IorConfig& cfg) : cfg_(cfg) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override;

 private:
  struct RankState {
    ClientId client{};
    std::uint64_t fileId = 0;
    std::uint32_t streams = 1;     ///< coalesced: aggregated process streams
    std::uint64_t remainingOps = 0;
    Bytes cursor = 0;
    Rng rng;
    bool pending = false;
    bool done = false;
  };

  ClientId issuingClient(std::uint32_t node, std::uint32_t proc) const;

  std::string name_ = "ior";
  IorConfig cfg_;
  std::vector<RankState> ranks_;
  std::size_t slots_ = 1;  ///< coalesced: channel slots per node
  SimTime phaseStart_ = 0.0;
};

}  // namespace hcsim::workload
