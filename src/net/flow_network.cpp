#include "net/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcsim {

namespace {
// Flows with fewer remaining bytes than this are considered complete;
// guards against floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-6;
// Relative rate change below which we do not bother re-timing the
// completion event (hysteresis to avoid event churn).
constexpr double kRateHysteresis = 1e-9;
// Budget for completion-time corrections skipped under hysteresis,
// relative to max(1, eta) like the hysteresis itself. Once the accrued
// skips exceed this the completion is re-anchored, bounding cumulative
// drift across arbitrarily many small rebalances to ~100 skips' worth.
constexpr double kEtaDriftBudget = 100 * kRateHysteresis;
}  // namespace

LinkId FlowNetwork::addLink(std::string name, Bandwidth capacity, Seconds latency) {
  Link l;
  l.name = std::move(name);
  l.capacity = capacity;
  l.latency = latency;
  links_.push_back(std::move(l));
  return LinkId{static_cast<std::uint32_t>(links_.size() - 1)};
}

void FlowNetwork::setLinkCapacity(LinkId id, Bandwidth capacity) {
  Link& l = links_.at(id.value);
  if (l.capacity == capacity) return;
  advanceProgress();  // credit progress at the old rates first
  l.capacity = capacity;
  rebalance();
}

void FlowNetwork::setLinkHealth(LinkId id, double health) {
  Link& l = links_.at(id.value);
  const double clamped = std::min(1.0, std::max(0.0, health));
  if (l.health == clamped) return;
  advanceProgress();  // credit progress at the old rates first
  l.health = clamped;
  rebalance();
}

bool FlowNetwork::abortFlow(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  advanceProgress();
  ActiveFlow f = std::move(it->second);
  active_.erase(it);
  if (f.completionEvent.valid()) sim_.cancel(f.completionEvent);
  if (tel_ && f.spanIdx != telemetry::kNoSpan) tel_->endSpan(f.spanIdx, sim_.now());
  rebalance();
  return true;
}

std::size_t FlowNetwork::replaceLinkInFlows(LinkId from, LinkId to) {
  advanceProgress();
  std::size_t rerouted = 0;
  for (auto& [id, f] : active_) {
    bool touched = false;
    for (LinkId& l : f.route) {
      if (l == from) {
        l = to;
        touched = true;
      }
    }
    if (touched) ++rerouted;
  }
  if (rerouted > 0) rebalance();
  return rerouted;
}

Seconds FlowNetwork::routeLatency(const Route& route) const {
  Seconds total = 0.0;
  for (LinkId id : route) total += links_.at(id.value).latency;
  return total;
}

FlowId FlowNetwork::startFlow(const FlowSpec& spec,
                              std::function<void(const FlowCompletion&)> onComplete) {
  if (!(spec.weight > 0.0)) {
    throw std::invalid_argument("FlowNetwork: flow weight must be > 0");
  }
  const FlowId id = nextFlowId_++;
  ActiveFlow flow;
  flow.id = id;
  flow.route = spec.route;
  flow.rateCap = spec.rateCap;
  flow.weight = spec.weight;
  flow.remaining = static_cast<double>(spec.bytes);
  flow.totalBytes = spec.bytes;
  flow.startTime = sim_.now();
  flow.onComplete = std::move(onComplete);

  if (tel_ && tel_->enabled()) {
    flow.spanIdx = tel_->beginSpan(spec.spanName.empty() ? "flow" : spec.spanName, spec.spanPid,
                                   spec.spanTid, flow.startTime, static_cast<double>(spec.bytes));
    if (spec.startupLatency > 0.0) {
      tel_->accrue(flow.spanIdx, tel_->stageId("startup"), spec.startupLatency, 0.0);
    }
  }

  if (spec.startupLatency > 0.0) {
    sim_.schedule(spec.startupLatency,
                  [this, f = std::move(flow)]() mutable { activate(std::move(f)); });
  } else {
    activate(std::move(flow));
  }
  return id;
}

void FlowNetwork::activate(ActiveFlow flow) {
  flow.lastUpdate = sim_.now();
  if (flow.remaining <= kByteEpsilon) {
    // Zero-byte flow: completes as soon as its startup latency elapsed.
    if (tel_ && flow.spanIdx != telemetry::kNoSpan) tel_->endSpan(flow.spanIdx, sim_.now());
    FlowCompletion done{flow.id, flow.totalBytes, flow.startTime, sim_.now()};
    auto cb = std::move(flow.onComplete);
    if (cb) cb(done);
    return;
  }
  const FlowId id = flow.id;
  active_.emplace(id, std::move(flow));
  advanceProgress();
  rebalance();
}

std::uint32_t FlowNetwork::bottleneckStage(telemetry::Telemetry& tel, const ActiveFlow& f) const {
  if (f.bottleneck == kFrozenByCap) return tel.stageId("stream-cap");
  if (f.bottleneck == kFrozenByNone || f.bottleneck >= links_.size()) {
    return tel.stageId("unconstrained");
  }
  return tel.stageForLink(f.bottleneck, links_[f.bottleneck].name);
}

void FlowNetwork::advanceProgress() {
  const SimTime now = sim_.now();
  // One enabled-check per pass; `tel` stays null on the common path so
  // the loop body carries a single dead branch when telemetry is off.
  telemetry::Telemetry* tel = (tel_ && tel_->enabled()) ? tel_ : nullptr;
  for (auto& [id, f] : active_) {
    const SimTime dt = now - f.lastUpdate;
    if (dt > 0.0 && f.rate > 0.0) {
      const double moved = std::min(f.remaining, f.rate * dt);
      f.remaining -= moved;
      for (LinkId lid : f.route) links_[lid.value].bytesCarried += moved;
      if (tel && f.spanIdx != telemetry::kNoSpan) {
        tel->accrue(f.spanIdx, bottleneckStage(*tel, f), dt, moved);
      }
    }
    f.lastUpdate = now;
  }
}

void FlowNetwork::computeMaxMinRates() {
  // Weighted progressive filling: raise every unfrozen flow's rate in
  // proportion to its weight; freeze flows when a shared link saturates
  // or the flow hits its cap.
  std::vector<double> headroom(links_.size());
  std::vector<double> unfrozenWeightOnLink(links_.size(), 0.0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    headroom[i] = links_[i].capacity * links_[i].health;
  }

  std::vector<ActiveFlow*> flows;
  flows.reserve(active_.size());
  for (auto& [id, f] : active_) {
    f.rate = 0.0;
    f.bottleneck = kFrozenByNone;
    flows.push_back(&f);
    for (LinkId lid : f.route) unfrozenWeightOnLink[lid.value] += f.weight;
  }
  // Deterministic iteration independent of hash-map order.
  std::sort(flows.begin(), flows.end(),
            [](const ActiveFlow* a, const ActiveFlow* b) { return a->id < b->id; });

  std::vector<bool> frozen(flows.size(), false);
  std::size_t unfrozen = flows.size();

  // Each round freezes at least one flow, so rounds are bounded; guard
  // against regressions that would otherwise spin silently.
  std::size_t rounds = 0;
  const std::size_t maxRounds = flows.size() + links_.size() + 2;

  while (unfrozen > 0) {
    if (++rounds > maxRounds) {
      throw std::logic_error("FlowNetwork: progressive filling failed to converge");
    }
    // Max per-unit-weight increment permitted by links...
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (unfrozenWeightOnLink[i] > 1e-12) {
        delta = std::min(delta, headroom[i] / unfrozenWeightOnLink[i]);
      }
    }
    // ... and by per-flow caps (a flow gains weight*delta per step).
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (!frozen[i]) {
        delta = std::min(delta, (flows[i]->rateCap - flows[i]->rate) / flows[i]->weight);
      }
    }
    if (!std::isfinite(delta)) {
      // No route constraints at all: every unfrozen flow is capped only by
      // its rateCap, which must be infinite here. Treat as unbounded —
      // physically this means "completes at startup latency"; give them a
      // huge but finite rate so completion times stay representable.
      delta = 1e18;
    }
    if (delta < 0.0) delta = 0.0;

    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (frozen[i]) continue;
      const double gain = delta * flows[i]->weight;
      flows[i]->rate += gain;
      for (LinkId lid : flows[i]->route) headroom[lid.value] -= gain;
    }

    // Freeze: capped flows first, then flows crossing a saturated link.
    std::size_t newlyFrozen = 0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (frozen[i]) continue;
      bool freeze = flows[i]->rate >= flows[i]->rateCap - 1e-12;
      if (freeze) {
        flows[i]->bottleneck = kFrozenByCap;
      } else {
        for (LinkId lid : flows[i]->route) {
          if (headroom[lid.value] <=
              1e-9 * links_[lid.value].capacity * links_[lid.value].health + 1e-12) {
            freeze = true;
            flows[i]->bottleneck = lid.value;
            break;
          }
        }
      }
      if (freeze) {
        frozen[i] = true;
        ++newlyFrozen;
        for (LinkId lid : flows[i]->route) unfrozenWeightOnLink[lid.value] -= flows[i]->weight;
      }
    }
    unfrozen -= newlyFrozen;
    if (newlyFrozen == 0) {
      // delta == 0 with nothing to freeze can only happen on degenerate
      // zero-capacity links; freeze everything to guarantee termination.
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (!frozen[i]) {
          frozen[i] = true;
          for (LinkId lid : flows[i]->route) unfrozenWeightOnLink[lid.value] -= flows[i]->weight;
        }
      }
      unfrozen = 0;
    }
  }
}

void FlowNetwork::rebalance() {
  computeMaxMinRates();
  const SimTime now = sim_.now();
  for (auto& [id, f] : active_) {
    if (f.rate <= 0.0) {
      // Stalled flow (zero-capacity path): leave it unscheduled; a later
      // rebalance schedules the completion once capacity appears.
      if (f.completionEvent.valid()) {
        sim_.cancel(f.completionEvent);
        f.completionEvent = EventId{};
        f.scheduledEta = -1.0;
        f.etaDrift = 0.0;
      }
      continue;
    }
    // Re-time the completion event at the new rate.
    const Seconds eta = f.remaining / f.rate;
    const SimTime newCompletion = now + eta;
    if (f.completionEvent.valid()) {
      // Skip churn if completion time barely moved — but account the
      // skipped correction, and re-anchor once the accrued drift leaves
      // its budget, so many small rebalances cannot compound error.
      const double scale = std::max(1.0, std::fabs(eta));
      const double drift = std::fabs(eta - (f.scheduledEta - now));
      if (drift <= kRateHysteresis * scale && f.etaDrift + drift <= kEtaDriftBudget * scale) {
        f.etaDrift += drift;
        continue;
      }
      ++f.rateEpoch;
      ++rerates_;
      f.scheduledEta = newCompletion;
      f.etaDrift = 0.0;
      sim_.adjustKey(f.completionEvent, newCompletion);
      continue;
    }
    const FlowId fid = id;
    ++f.rateEpoch;
    ++rerates_;
    f.scheduledEta = newCompletion;
    f.etaDrift = 0.0;
    f.completionEvent = sim_.scheduleAt(newCompletion, [this, fid] { finish(fid); });
  }
}

void FlowNetwork::finish(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  advanceProgress();
  if (it->second.remaining > 1.0) {
    // Defensive: floating-point drift left real bytes outstanding. Clear
    // the fired event handle and let rebalance() schedule a fresh one.
    it->second.completionEvent = EventId{};
    it->second.scheduledEta = -1.0;
    it->second.etaDrift = 0.0;
    rebalance();
    return;
  }
  ActiveFlow f = std::move(it->second);
  active_.erase(it);
  // Account any residue (float rounding) as carried.
  if (f.remaining > 0.0) {
    for (LinkId lid : f.route) links_[lid.value].bytesCarried += f.remaining;
    f.remaining = 0.0;
  }
  if (tel_ && f.spanIdx != telemetry::kNoSpan) tel_->endSpan(f.spanIdx, sim_.now());
  FlowCompletion done{f.id, f.totalBytes, f.startTime, sim_.now()};
  rebalance();
  if (f.onComplete) f.onComplete(done);
}

Bandwidth FlowNetwork::flowRate(FlowId id) const {
  const auto it = active_.find(id);
  return it == active_.end() ? 0.0 : it->second.rate;
}

std::vector<LinkStats> FlowNetwork::linkStats() const {
  std::vector<LinkStats> out;
  out.reserve(links_.size());
  std::vector<Bandwidth> alloc(links_.size(), 0.0);
  for (const auto& [id, f] : active_) {
    for (LinkId lid : f.route) alloc[lid.value] += f.rate;
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    // Report the *effective* capacity so degraded links show up in
    // utilization snapshots; identical to the configured capacity when
    // healthy (capacity * 1.0 is exact).
    out.push_back(LinkStats{links_[i].name, links_[i].capacity * links_[i].health,
                            links_[i].latency, alloc[i], links_[i].bytesCarried});
  }
  return out;
}

}  // namespace hcsim
