#pragma once
// VastModel — discrete-event model of the VAST DataStore (paper §III-A).
//
// Data path, mirroring Fig 1a:
//
//   client NIC -> NFS session link(s) -> [Ethernet gateway (TCP only)]
//     -> CNode -> NVMe-oF fabric -> {DNode cache | QLC pool, SCM pool}
//
// The architecture facts the model encodes:
//  * shared-everything: any CNode reaches any SSD, so data/device pools
//    are aggregated across DBoxes while CNodes stay individual ceilings;
//  * stateless CNodes: a read never consults another CNode (no
//    coordination latency term);
//  * writes land in mirrored SCM (fast ack) and migrate to QLC in the
//    background, paying similarity-reduction + compression CPU on the
//    CNode (lower per-CNode write ceiling);
//  * the NFS frontend is the paper's decisive variable: one TCP session
//    per client mount through a gateway pool (LC clusters) vs RDMA with
//    nconnect sessions and multipathing (Wombat).

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/writeback_buffer.hpp"
#include "device/device_queue.hpp"
#include "fs/storage_base.hpp"
#include "vast/vast_config.hpp"

namespace hcsim {

class VastModel final : public StorageModelBase {
 public:
  /// `clientNics` — one injection link per compute node that may mount
  /// the store (index = node id).
  VastModel(Simulator& sim, Topology& topo, VastConfig config, std::vector<LinkId> clientNics,
            std::uint64_t rngSeed = 0x7a57da7aull);

  const VastConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;
  Bytes totalCapacity() const override { return cfg_.totalCapacity(); }
  std::size_t clientParallelism() const override { return cfg_.sessionsPerClient(); }

  /// NFS frontend as a first-principles endpoint: kind follows the
  /// configured transport, lanes are the nconnect sessions, baseRtt is
  /// the configured RPC latency.
  transport::TransportProfile declaredTransportProfile() const override;

  // ---- Failure injection (HA semantics of §III-A) ----
  //
  // CNodes are stateless containers: a failed CNode's NFS sessions fail
  // over to the survivors (virtual-IP migration) — capacity shrinks, no
  // data is lost. Each DBox is a High Availability enclosure with two
  // DNodes: losing ONE DNode halves that box's fabric paths; losing the
  // whole box removes its SSDs from the pools. All methods re-rate
  // in-flight transfers immediately.

  /// Fail/restore a CNode (index < config().cnodes). Idempotent.
  void failCNode(std::size_t index);
  void restoreCNode(std::size_t index);
  std::size_t failedCNodes() const { return failedCNodes_.size(); }
  std::size_t aliveCNodes() const { return cfg_.cnodes - failedCNodes_.size(); }

  /// Declarative fault hook (hcsim::chaos): "cnode" supports
  /// fail/fail-slow/restore (fail-slow scales the CNode link's health);
  /// "dnode"/"dbox" are HA enclosures, fail/restore only.
  bool applyFault(const FaultSpec& f) override;
  std::size_t faultComponentCount(const std::string& component) const override;
  /// Rebuild after a restore: QLC resync reads over the NVMe-oF fabric —
  /// shared-everything keeps rebuild off the CNode/session frontend.
  Route rebuildRoute(const FaultSpec& restored) override;

  /// Fail/restore one DNode of a box (HA degradation) or the whole box.
  void failDNode(std::size_t box);
  void restoreDNode(std::size_t box);
  void failDBox(std::size_t box);
  void restoreDBox(std::size_t box);
  std::size_t failedDBoxes() const { return failedBoxes_.size(); }
  std::size_t aliveDBoxes() const { return cfg_.dboxes - failedBoxes_.size(); }

  // ---- Introspection (tests, reports) ----
  /// Read-cache hit ratio in effect for the current phase.
  double phaseReadCacheHitRatio() const { return hitRatio_; }
  /// Current aggregate device-pool capacities (client-visible bytes/s).
  Bandwidth deviceReadCapacity() const;
  Bandwidth deviceWriteCapacity() const;
  /// SCM write-buffer occupancy now.
  Bytes scmDirtyBytes() const { return scm_.dirty(simulator().now()); }

  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

 protected:
  void onPhaseChange() override;

 private:
  const std::vector<LinkId>& sessionsFor(std::uint32_t node);
  std::size_t cnodeFor(std::uint32_t node, std::size_t session) const;
  Route baseRoute(const IoRequest& req, std::size_t session);

  /// Recompute fabric/device/CNode capacities for the current failure
  /// set and phase.
  void applyDegradation();
  double boxFraction() const;  ///< alive device fraction in [0,1]
  double fabricFraction() const;

  void submitRead(const IoRequest& req, IoCallback cb);
  void submitWrite(const IoRequest& req, IoCallback cb);

  VastConfig cfg_;
  std::vector<LinkId> cnodeLinks_;
  LinkId fabricLink_{};
  LinkId deviceReadLink_{};
  LinkId deviceWriteLink_{};
  GroupId gatewayGroup_{};
  std::unordered_map<std::uint32_t, std::vector<LinkId>> sessions_;
  std::vector<std::unique_ptr<DeviceQueue>> cnodeCommitQueues_;
  SsdArray qlcPool_;
  SsdArray scmPool_;
  WritebackBuffer scm_;  ///< SCM occupancy: raw bytes awaiting QLC migration
  double hitRatio_ = 0.0;

  std::set<std::size_t> failedCNodes_;
  std::set<std::size_t> failedBoxes_;       ///< whole enclosure down
  std::set<std::size_t> degradedBoxes_;     ///< one of two DNodes down
};

}  // namespace hcsim
