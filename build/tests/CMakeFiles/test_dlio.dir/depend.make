# Empty dependencies file for test_dlio.
# This may be replaced when dependencies are built.
