#include "dlio/dlio_runner.hpp"

#include <stdexcept>

#include "workload/dlio_source.hpp"
#include "workload/workload_runner.hpp"

namespace hcsim {

DlioResult DlioRunner::run(const DlioConfig& cfg) {
  cfg.validate();
  if (cfg.nodes > bench_.nodesUsed()) {
    throw std::invalid_argument("DlioRunner: config uses more nodes than the TestBench wired");
  }

  DlioResult result;
  result.datasetBytes = cfg.datasetBytes();

  // The pipeline/trainer state machine lives in workload::DlioSource;
  // the generic WorkloadRunner drives it and records sample reads,
  // train steps and checkpoints into result.trace.
  workload::DlioSource source(cfg);
  workload::WorkloadRunner runner(bench_, fs_);
  runner.setTraceLog(&result.trace);
  const workload::WorkloadOutcome out = runner.run(source);

  result.trace.sortByStart();
  result.breakdown = analyzeOverlap(result.trace);
  result.throughput = computeThroughput(result.trace);
  result.runtime = out.simElapsed;
  result.bytesRead = result.trace.totalBytes(TraceEventKind::Read);
  result.bytesCheckpointed = result.trace.totalBytes(TraceEventKind::Write);
  result.batchesTrained = source.batchesTrained();
  return result;
}

}  // namespace hcsim
