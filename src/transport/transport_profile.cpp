#include "transport/transport_profile.hpp"

#include <stdexcept>

namespace hcsim::transport {

const char* toString(FabricKind k) {
  switch (k) {
    case FabricKind::Tcp: return "tcp";
    case FabricKind::Rdma: return "rdma";
  }
  return "?";
}

void TransportProfile::validate() const {
  if (opRate <= 0.0) throw std::invalid_argument("TransportProfile: opRate must be > 0");
  if (burstOps < 1.0) throw std::invalid_argument("TransportProfile: burstOps must be >= 1");
  if (perOpCost < 0.0 || perByteCost < 0.0 || doorbellCost < 0.0 || descCost < 0.0) {
    throw std::invalid_argument("TransportProfile: costs must be >= 0");
  }
  if (doorbellBatch < 1.0) {
    throw std::invalid_argument("TransportProfile: doorbellBatch must be >= 1");
  }
  if (sqDepth == 0) throw std::invalid_argument("TransportProfile: sqDepth must be >= 1");
  if (lanes == 0) throw std::invalid_argument("TransportProfile: lanes must be >= 1");
  if (connectionSetup < 0.0 || idleTimeout < 0.0 || baseRtt < 0.0) {
    throw std::invalid_argument("TransportProfile: times must be >= 0");
  }
}

TransportProfile TransportProfile::tcp() {
  TransportProfile p;
  p.kind = FabricKind::Tcp;
  p.opRate = 120'000.0;
  p.burstOps = 64.0;
  // Calibrated so one lane moves ~1.15 GB/s at 1 MiB ops — the paper's
  // single-NFS/TCP-session ceiling: 1 MiB / (50us + 0.25us/16 +
  // 8.22e-10 s/B x 1 MiB) ~= 1.15e9 B/s.
  p.perOpCost = units::usec(50);
  p.perByteCost = 8.22e-10;
  p.doorbellCost = units::usec(0.25);
  p.doorbellBatch = 16.0;
  p.descCost = units::usec(0.03);
  p.sqDepth = 128;
  p.lanes = 1;
  p.connectionSetup = units::msec(3.0);
  p.idleTimeout = 0.0;
  p.baseRtt = units::usec(250);
  return p;
}

TransportProfile TransportProfile::rdma() {
  TransportProfile p;
  p.kind = FabricKind::Rdma;
  p.opRate = 8'500'000.0;
  p.burstOps = 64.0;
  // Calibrated so one QP moves ~2.5 GB/s at 1 MiB ops: 1 MiB / (4us +
  // 0.25us/16 + 3.96e-10 s/B x 1 MiB) ~= 2.5e9 B/s.
  p.perOpCost = units::usec(4);
  p.perByteCost = 3.96e-10;
  p.doorbellCost = units::usec(0.25);
  p.doorbellBatch = 16.0;
  p.descCost = units::usec(0.03);
  p.sqDepth = 512;
  p.lanes = 16;
  p.connectionSetup = units::usec(500);
  p.idleTimeout = 0.0;
  p.baseRtt = units::usec(25);
  return p;
}

JsonValue toJson(const TransportProfile& p) {
  JsonObject o;
  o["kind"] = std::string(toString(p.kind));
  o["opRate"] = p.opRate;
  o["burstOps"] = p.burstOps;
  o["perOpCost"] = p.perOpCost;
  o["perByteCost"] = p.perByteCost;
  o["doorbellCost"] = p.doorbellCost;
  o["doorbellBatch"] = p.doorbellBatch;
  o["descCost"] = p.descCost;
  o["sqDepth"] = static_cast<double>(p.sqDepth);
  o["lanes"] = static_cast<double>(p.lanes);
  o["connectionSetup"] = p.connectionSetup;
  o["idleTimeout"] = p.idleTimeout;
  o["baseRtt"] = p.baseRtt;
  return JsonValue(std::move(o));
}

namespace {
void get(const JsonValue& j, const char* key, double& out) {
  if (const JsonValue* v = j.find(key); v && v->isNumber()) out = *v->number();
}
void get(const JsonValue& j, const char* key, std::size_t& out) {
  if (const JsonValue* v = j.find(key); v && v->isNumber()) {
    out = static_cast<std::size_t>(*v->number());
  }
}
}  // namespace

bool fromJson(const JsonValue& j, TransportProfile& out) {
  if (!j.isObject()) return false;
  // "kind" selects the whole preset as the new baseline — so a section
  // of just {"kind": "tcp"} compares complete endpoint classes, not a
  // relabeled hybrid. The remaining keys then override individual knobs.
  if (const JsonValue* v = j.find("kind")) {
    if (!v->isString()) return false;
    const std::string& s = *v->str();
    if (s == "tcp") out = TransportProfile::tcp();
    else if (s == "rdma") out = TransportProfile::rdma();
    else return false;
  }
  get(j, "opRate", out.opRate);
  get(j, "burstOps", out.burstOps);
  get(j, "perOpCost", out.perOpCost);
  get(j, "perByteCost", out.perByteCost);
  get(j, "doorbellCost", out.doorbellCost);
  get(j, "doorbellBatch", out.doorbellBatch);
  get(j, "descCost", out.descCost);
  get(j, "sqDepth", out.sqDepth);
  get(j, "lanes", out.lanes);
  get(j, "connectionSetup", out.connectionSetup);
  get(j, "idleTimeout", out.idleTimeout);
  get(j, "baseRtt", out.baseRtt);
  return true;
}

}  // namespace hcsim::transport
