#include "cluster/deployments.hpp"

#include <algorithm>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

VastConfig vastOnLassen() {
  VastConfig c = VastConfig::lcInstance();
  c.name = "VAST@Lassen";
  c.gateway.present = true;
  c.gateway.nodes = 1;  // "a single gateway node"
  c.gateway.linksPerNode = 2;
  c.gateway.linkBandwidth = units::gbps(100);
  // Effective per-op forwarding latency of the single shared TCP
  // gateway: store-and-forward plus kernel NFS forwarding under load,
  // far above the raw wire latency.
  c.gateway.latency = units::usec(250);
  return c;
}

VastConfig vastOnRuby() {
  VastConfig c = VastConfig::lcInstance();
  c.name = "VAST@Ruby";
  c.gateway.present = true;
  c.gateway.nodes = 8;  // "1x40Gb Ethernet link on eight gateway nodes"
  c.gateway.linksPerNode = 1;
  c.gateway.linkBandwidth = units::gbps(40);
  c.gateway.latency = units::usec(40);
  return c;
}

VastConfig vastOnQuartz() {
  VastConfig c = VastConfig::lcInstance();
  c.name = "VAST@Quartz";
  c.gateway.present = true;
  c.gateway.nodes = 32;  // "2x1Gb Ethernet link on 32 gateway nodes"
  c.gateway.linksPerNode = 2;
  c.gateway.linkBandwidth = units::gbps(1);
  c.gateway.latency = units::usec(60);
  return c;
}

VastConfig vastOnWombat() {
  VastConfig c = VastConfig::wombatInstance();
  c.name = "VAST@Wombat";
  return c;
}

GpfsConfig gpfsOnLassen() {
  GpfsConfig c = GpfsConfig::lassen();
  c.name = "GPFS@Lassen";
  return c;
}

LustreConfig lustreOnQuartz() {
  LustreConfig c = LustreConfig::lcInstance();
  c.name = "Lustre@Quartz";
  return c;
}

LustreConfig lustreOnRuby() {
  LustreConfig c = LustreConfig::lcInstance();
  c.name = "Lustre@Ruby";
  return c;
}

NvmeLocalConfig nvmeOnWombat() {
  NvmeLocalConfig c = NvmeLocalConfig::wombatInstance();
  c.name = "NVMe@Wombat";
  return c;
}

DaosConfig daosInstance() { return DaosConfig::instance(); }

TestBench::TestBench(Machine machine, std::size_t nodesUsed)
    : machine_(std::move(machine)), net_(sim_), topo_(net_) {
  net_.setTelemetry(&telemetry_);
  sim_.setRecorder(&recorder_);
  sim_.setProfiler(&profiler_);
  const std::size_t n = std::max<std::size_t>(1, std::min(nodesUsed, machine_.nodes));
  clientNics_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clientNics_.push_back(topo_.addLink(machine_.name + ".nic.n" + std::to_string(i),
                                        machine_.nodeInjection, machine_.nicLatency));
  }
}

void TestBench::collectMetrics(telemetry::MetricsRegistry& reg, const FileSystemModel* fs) const {
  reg.counter("engine.events.dispatched", static_cast<double>(sim_.eventsDispatched()));
  reg.counter("engine.events.scheduled", static_cast<double>(sim_.eventsScheduled()));
  reg.counter("engine.events.cancelled", static_cast<double>(sim_.eventsCancelled()));
  reg.counter("engine.events.adjusted", static_cast<double>(sim_.eventsAdjusted()));
  reg.gauge("engine.events.pending", static_cast<double>(sim_.pendingEvents()));
  reg.gauge("engine.slab.slots", static_cast<double>(sim_.slabSize()));
  reg.counter("net.rerates", static_cast<double>(net_.rerates()));
  reg.gauge("net.flows.active", static_cast<double>(net_.activeFlows()));
  reg.gauge("net.links", static_cast<double>(net_.linkCount()));
  for (const LinkStats& ls : net_.linkStats()) {
    reg.counter("net.link." + ls.name + ".bytes_carried", ls.bytesCarried);
    reg.gauge("net.link." + ls.name + ".capacity_bps", ls.capacity);
    reg.gauge("net.link." + ls.name + ".allocated_bps", ls.allocated);
  }
  reg.counter("probe.records", static_cast<double>(recorder_.totalRecorded()));
  reg.gauge("probe.records.held", static_cast<double>(recorder_.size()));
  if (profiler_.enabled()) profiler_.exportTo(reg);
  telemetry_.exportTo(reg);
  if (fs) fs->exportMetrics(reg);
}

std::unique_ptr<VastModel> TestBench::attachVast(VastConfig cfg) {
  return std::make_unique<VastModel>(sim_, topo_, std::move(cfg), clientNics_);
}

std::unique_ptr<GpfsModel> TestBench::attachGpfs(GpfsConfig cfg) {
  return std::make_unique<GpfsModel>(sim_, topo_, std::move(cfg), clientNics_);
}

std::unique_ptr<LustreModel> TestBench::attachLustre(LustreConfig cfg) {
  return std::make_unique<LustreModel>(sim_, topo_, std::move(cfg), clientNics_);
}

std::unique_ptr<NvmeLocalModel> TestBench::attachNvme(NvmeLocalConfig cfg) {
  return std::make_unique<NvmeLocalModel>(sim_, topo_, std::move(cfg), clientNics_);
}

std::unique_ptr<DaosModel> TestBench::attachDaos(DaosConfig cfg) {
  return std::make_unique<DaosModel>(sim_, topo_, std::move(cfg), clientNics_);
}

}  // namespace hcsim
