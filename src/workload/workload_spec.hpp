#pragma once
// Workload run specs — the JSON document the `hcsim workload` CLI and
// the sweep's "workload" experiment both consume:
//
//   {
//     "name": "...", "site": "lassen", "storage": "vast",
//     "storageConfig": {...},            // optional preset overrides
//     "workload": {"generator": "grammar", ...generator keys...},
//     "retry": true | {...},             // optional chaos retry layer
//     "chaos": {"events": [...]},        // optional fault schedule
//     "sampleIntervalSec": 5.0,          // optional goodput-timeline width
//                                        //   (> 0; enables sampling for
//                                        //   closed-loop generators too)
//     "monitors": [...]                  // optional SLO watchdogs
//   }
//
// The "generator" key selects a WorkloadSource factory from the
// registry: the built-in runners (ior, dlio, replay) and the synthetic
// generators (io500, grammar, openloop) all hang off the same string, so
// a sweep axis can vary the generator like any other field. Validation
// never throws out of parsing — every problem becomes one actionable
// line, and the CLI prints them all at once.

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fs/client_session.hpp"
#include "util/json.hpp"
#include "workload/workload_runner.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

struct WorkloadRunSpec {
  std::string name = "workload";
  Site site = Site::Lassen;
  StorageKind storage = StorageKind::Vast;
  JsonValue storageConfig;  ///< null = site preset as-is
  /// Raw "transport" section: merged onto the model's declared endpoint
  /// profile and routed through hcsim::transport. null = no fabric
  /// (byte-identical to before the transport layer existed).
  JsonValue transport;
  std::string generator;
  JsonValue workload;  ///< the raw "workload" section (generator keys)
  bool retryEnabled = false;
  RetryPolicy retry;
  JsonValue chaos;  ///< raw "chaos" section, null = none
  /// Explicit goodput sample interval (top-level "sampleIntervalSec").
  /// 0 = generator default; the knob must be > 0 when present, and also
  /// arms timeline sampling for closed-loop generators.
  double sampleIntervalSec = 0.0;
  /// SLO watchdogs (top-level "monitors", probe/monitor.hpp grammar).
  std::vector<probe::MonitorSpec> monitors;
};

/// Names the registry knows, sorted, for error messages and docs.
std::vector<std::string> knownGenerators();

/// Parse the spec document. Appends one actionable line per problem to
/// `problems` (empty = valid). Generator-section validation happens in
/// makeSource — this checks the envelope.
void parseWorkloadSpec(const JsonValue& doc, WorkloadRunSpec& out,
                       std::vector<std::string>& problems);

/// Instantiate the spec's generator, validating its "workload" section.
/// On failure appends problem lines and returns {nullptr, 0}. `nodes` is
/// the compute-node count the environment must be built with.
struct SourceBundle {
  std::unique_ptr<WorkloadSource> source;
  std::size_t nodes = 0;
};
SourceBundle makeSource(const WorkloadRunSpec& spec, std::vector<std::string>& problems);

/// What an injected fault schedule pins down for recoverySec monitors:
/// when degradation starts, when the last restore fires, and the
/// tolerance band the chaos section declared.
struct ChaosLandmarks {
  bool any = false;  ///< false = no events were scheduled
  Seconds firstFaultAt = 0.0;
  Seconds lastRestoreAt = -1.0;  ///< -1 = schedule never restores
  double degradedTolerance = 0.02;
};

/// Schedule the spec's optional "chaos" section onto the environment
/// (parse + validate + scheduleFaults). Throws std::invalid_argument
/// with an actionable message on a bad section; no-op when absent.
/// Returns the schedule's landmarks for runWorkload's watchdog.
ChaosLandmarks injectWorkloadChaos(const WorkloadRunSpec& spec, Environment& env);

/// Drive the source on the environment with the spec's retry settings,
/// sample-interval override, and monitors. Pass injectWorkloadChaos's
/// landmarks so recoverySec monitors know the restore time.
WorkloadOutcome runWorkload(Environment& env, const WorkloadRunSpec& spec,
                            WorkloadSource& source, TraceLog* trace = nullptr,
                            const ChaosLandmarks* landmarks = nullptr);

/// JSONL: one "summary" record (opLatency is null — never zeros — when
/// no per-op distribution was collected), then one "sample" record per
/// goodput-timeline slice. Deterministic byte-for-byte across runs.
std::string toJsonl(const WorkloadOutcome& out);

/// CSV of the goodput timeline (header + one row per slice).
std::string toCsv(const WorkloadOutcome& out);

}  // namespace hcsim::workload
