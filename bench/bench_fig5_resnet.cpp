// Fig 5 — "ResNet-50 Throughput": application-perceived throughput
// (bytes / non-overlapping I/O) and system throughput (bytes / total
// I/O) on VAST vs GPFS, weak scaling to 32 nodes.
//
// Expected shape (paper §VI-B): system throughput differs strongly
// between the file systems, but the throughput the *application*
// perceives is only slightly higher for GPFS — VAST hides most of its
// I/O behind compute.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  std::printf("== Fig 5: ResNet-50 throughput on Lassen (weak scaling) ==\n\n");
  ResultTable t("Fig 5: ResNet-50 application vs system throughput (GB/s)");
  t.setHeader({"nodes", "VAST app", "GPFS app", "VAST system", "GPFS system"});
  t.setPrecision(3);
  for (std::size_t nodes = 1; nodes <= 32; nodes *= 2) {
    DlioConfig cfg;
    cfg.workload = DlioWorkload::resnet50();
    cfg.nodes = nodes;
    cfg.procsPerNode = 4;
    const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
    const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
    t.addRow({static_cast<double>(nodes), units::toGBs(vast.throughput.application),
              units::toGBs(gpfs.throughput.application),
              units::toGBs(vast.throughput.system), units::toGBs(gpfs.throughput.system)});
  }
  std::printf("%s\nCSV:\n%s\n", t.toString().c_str(), t.toCsv().c_str());
  return 0;
}
