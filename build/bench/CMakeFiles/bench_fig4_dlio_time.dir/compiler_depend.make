# Empty compiler generated dependencies file for bench_fig4_dlio_time.
# This may be replaced when dependencies are built.
