// Table I — "Clusters used for experiments": the machine inventory the
// simulation wires (node counts, cores, GPUs, RAM, arch, network), plus
// the per-node injection bandwidth the models derive from it.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  ResultTable t("Table I: Clusters used for experiments");
  t.setHeader({"Name", "Nodes", "CPU", "GPU", "RAM (GiB)", "Arch", "Network",
               "Injection GB/s"});
  for (Site site : {Site::Lassen, Site::Ruby, Site::Quartz, Site::Wombat}) {
    const Machine m = machineFor(site);
    t.addRow({m.name, static_cast<double>(m.nodes), static_cast<double>(m.coresPerNode),
              static_cast<double>(m.gpusPerNode), static_cast<double>(m.ramGiB), m.arch,
              m.network, units::toGBs(m.nodeInjection)});
  }
  t.setPrecision(1);
  std::printf("%s\n", t.toString().c_str());
  std::printf("CSV:\n%s\n", t.toCsv().c_str());
  return 0;
}
