// compare_storage — the paper's methodology as a 5-minute survey: for
// every site, run the three IOR workload classes (scientific writes,
// data-analytics sequential reads, ML random reads) against every storage
// system the paper pairs with that site, and print one comparison table.

#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  const struct {
    Site site;
    std::vector<StorageKind> kinds;
    std::size_t ppn;
  } plans[] = {
      {Site::Lassen, {StorageKind::Vast, StorageKind::Gpfs}, 44},
      {Site::Ruby, {StorageKind::Vast, StorageKind::Lustre}, 56},
      {Site::Quartz, {StorageKind::Vast, StorageKind::Lustre}, 36},
      {Site::Wombat, {StorageKind::Vast, StorageKind::NvmeLocal}, 48},
  };
  const struct {
    const char* label;
    AccessPattern pattern;
  } workloads[] = {
      {"scientific (seq write)", AccessPattern::SequentialWrite},
      {"analytics (seq read)", AccessPattern::SequentialRead},
      {"ML (random read)", AccessPattern::RandomRead},
  };

  ResultTable t("Cross-site storage comparison (4 nodes, full-node IOR, GB/s)");
  t.setHeader({"site", "storage", "seq write", "seq read", "random read"});
  for (const auto& plan : plans) {
    const std::size_t nodes = plan.site == Site::Wombat ? 4 : 4;
    for (StorageKind kind : plan.kinds) {
      std::vector<Cell> row{std::string(toString(plan.site)), std::string(toString(kind))};
      for (const auto& w : workloads) {
        const auto pts = runIorNodeSweep(plan.site, kind, w.pattern, {nodes}, plan.ppn);
        row.emplace_back(pts.front().meanGBs);
      }
      t.addRow(std::move(row));
    }
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("Reading the table: the VAST rows change dramatically across sites —\n"
              "same appliance, different deployment (TCP gateways vs RDMA) — which is\n"
              "the paper's central point.\n");
  return 0;
}
