// Fig 3 — "Single node test with fsync results for scientific
// simulations and data analytics."
//
// One compute node, 1..32 processes, write synchronization (fsync after
// every write) for the write workload; per-op simulation so commit
// queueing at servers/devices is exercised. Four panels:
//   (a) Lassen: VAST vs GPFS     (b) Quartz: VAST vs Lustre
//   (c) Ruby:   VAST vs Lustre   (d) Wombat: VAST vs NVMe

#include <cstdio>

#include "core/calibration.hpp"
#include "core/sweep.hpp"

using namespace hcsim;

namespace {

constexpr double kNoise = 0.03;
constexpr std::size_t kReps = 3;  // per-op runs re-simulate; keep modest

void panel(const char* figure, Site site, StorageKind a, StorageKind b) {
  const auto procCounts = powersOfTwo(calibration::kSingleNodeMaxProcs);
  const struct {
    const char* name;
    AccessPattern pattern;
  } workloads[] = {
      {"scientific (seq write + fsync)", AccessPattern::SequentialWrite},
      {"data analytics (seq read)", AccessPattern::SequentialRead},
  };
  for (const auto& w : workloads) {
    std::vector<Series> series;
    for (StorageKind kind : {a, b}) {
      Series s;
      s.label = toString(kind);
      s.points = runIorProcSweep(site, kind, w.pattern, procCounts, kReps, kNoise);
      series.push_back(std::move(s));
    }
    ResultTable t = makeFigureTable(std::string(figure) + " " + toString(site) + " — " + w.name,
                                    "procs", series, /*spread=*/true);
    std::printf("%s\n", t.toString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Fig 3: single-node test with fsync, 1..32 processes ==\n\n");
  panel("Fig 3a", Site::Lassen, StorageKind::Vast, StorageKind::Gpfs);
  panel("Fig 3b", Site::Quartz, StorageKind::Vast, StorageKind::Lustre);
  panel("Fig 3c", Site::Ruby, StorageKind::Vast, StorageKind::Lustre);
  panel("Fig 3d", Site::Wombat, StorageKind::Vast, StorageKind::NvmeLocal);
  return 0;
}
