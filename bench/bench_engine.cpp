// Engine micro-benchmarks (google-benchmark): simulator event loop, flow
// network re-rating, LRU/prefetch caches — the hot paths behind every
// figure bench.

#include <benchmark/benchmark.h>

#include "cache/lru_cache.hpp"
#include "cache/prefetch_cache.hpp"
#include "net/flow_network.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace {

using namespace hcsim;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Rng rng(42);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule(rng.uniform(), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsDispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FlowNetworkConcurrentFlows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    FlowNetwork net(sim);
    const LinkId shared = net.addLink("shared", 1e9);
    std::size_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec spec;
      spec.bytes = 1'000'000;
      spec.route = {shared};
      net.startFlow(spec, [&done](const FlowCompletion&) { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlowNetworkConcurrentFlows)->Arg(16)->Arg(128)->Arg(512);

void BM_LruCacheTouch(benchmark::State& state) {
  LruCache cache(1 << 20);
  for (std::uint64_t k = 0; k < 1024; ++k) cache.insert(k, 1024);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.touch(rng.uniformInt(2048)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheTouch);

void BM_PrefetchCacheSequentialRead(benchmark::State& state) {
  PrefetchCache cache(64 * 1024 * 1024, 4096, 8);
  Bytes offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(1, offset, 4096));
    offset += 4096;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefetchCacheSequentialRead);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(1.0, 0.1));
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
