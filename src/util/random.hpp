#pragma once
// Deterministic, fast pseudo-random number generation for the simulator.
//
// We do not use std::mt19937 because its state is large and its stream is
// not guaranteed stable across standard library implementations for the
// distribution adapters; hcsim needs bit-reproducible runs for regression
// tests, so both the generator (xoshiro256**) and all distributions are
// implemented here.

#include <cstdint>
#include <limits>

namespace hcsim {

/// SplitMix64 — used to seed xoshiro from a single 64-bit seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna — 256-bit state, excellent statistical
/// quality, sub-ns generation. Deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9c0ffee123456789ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t uniformInt(std::uint64_t n);

  /// Exponentially distributed value with the given mean (mean > 0).
  double exponential(double mean);

  /// Normally distributed value (Marsaglia polar method).
  double normal(double mean, double stddev);

  /// Lognormal with the given *underlying* normal mu/sigma.
  double lognormal(double mu, double sigma);

  /// Normal clipped to be >= floor (used for noisy-but-positive latencies).
  double normalAtLeast(double mean, double stddev, double floor);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4]{};
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace hcsim
