#include "workload/grammar_source.hpp"

#include <algorithm>
#include <set>

namespace hcsim::workload {

namespace {

// Expansion ceiling: a repeat-heavy DAG can explode combinatorially;
// refuse instead of silently eating memory.
constexpr std::size_t kMaxExpandedOps = 1u << 20;

struct Expander {
  const JsonObject* rules = nullptr;
  std::vector<std::string> stack;  ///< rule names on the expansion path
  GrammarSpec* out = nullptr;
  std::vector<std::string>* problems = nullptr;
  std::string where;

  bool fail(const std::string& msg) {
    problems->push_back(msg);
    return false;
  }

  std::string knownRules() const {
    std::string s;
    for (const auto& [name, v] : *rules) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }

  bool expandRule(const std::string& name) {
    const auto it = rules->find(name);
    if (it == rules->end()) {
      return fail(where + ".rules: unknown production '" + name + "' (known rules: " +
                  knownRules() + ")");
    }
    if (std::find(stack.begin(), stack.end(), name) != stack.end()) {
      std::string path;
      for (const std::string& s : stack) path += s + " -> ";
      return fail(where + ".rules." + name + ": cyclic expansion (" + path + name +
                  "); grammar rules must form a DAG");
    }
    const JsonArray* prods = it->second.array();
    if (prods == nullptr) {
      return fail(where + ".rules." + name + ": a rule must be an array of productions");
    }
    stack.push_back(name);
    for (std::size_t i = 0; i < prods->size(); ++i) {
      if (!expandProduction(name, i, (*prods)[i])) return false;
    }
    stack.pop_back();
    return true;
  }

  bool expandProduction(const std::string& rule, std::size_t idx, const JsonValue& prod) {
    const std::string at = where + ".rules." + rule + "[" + std::to_string(idx) + "]";
    if (out->ops.size() > kMaxExpandedOps) {
      return fail(where + ".rules: expansion exceeds " + std::to_string(kMaxExpandedOps) +
                  " ops; reduce 'repeat'/'count' factors");
    }
    if (prod.isString()) return expandRule(*prod.str());
    if (!prod.isObject()) {
      return fail(at + ": a production must be a rule name or an object");
    }
    if (const JsonValue* rule2 = prod.find("rule")) {
      if (!rule2->isString()) return fail(at + ": 'rule' must be a string");
      const double repeat = prod.numberOr("repeat", 1.0);
      if (repeat < 1.0 || repeat != static_cast<double>(static_cast<std::uint64_t>(repeat))) {
        return fail(at + ": 'repeat' must be a positive integer");
      }
      for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(repeat); ++r) {
        if (!expandRule(*rule2->str())) return false;
      }
      return true;
    }
    if (const JsonValue* compute = prod.find("compute")) {
      if (!compute->isNumber() || *compute->number() < 0.0) {
        return fail(at + ": 'compute' must be a non-negative number of seconds");
      }
      GrammarOp op;
      op.kind = OpKind::Compute;
      op.compute = *compute->number();
      out->ops.push_back(op);
      return true;
    }
    if (prod.find("barrier") != nullptr) {
      if (!prod.boolOr("barrier", false)) return fail(at + ": 'barrier' must be true");
      GrammarOp op;
      op.kind = OpKind::Barrier;
      out->ops.push_back(op);
      return true;
    }
    const JsonValue* opName = prod.find("op");
    if (opName == nullptr || !opName->isString()) {
      return fail(at + ": a production needs 'op', 'rule', 'compute' or 'barrier'");
    }
    const std::string& kind = *opName->str();
    if (kind == "open" || kind == "sync") {
      GrammarOp op;
      op.kind = OpKind::Meta;
      op.metaOp = kind == "open" ? MetaOp::Open : MetaOp::Close;
      op.shared = prod.boolOr("shared", false);
      out->ops.push_back(op);
      return true;
    }
    if (kind != "read" && kind != "write") {
      return fail(at + ": unknown op '" + kind + "' (expected read, write, open or sync)");
    }
    GrammarOp op;
    op.kind = OpKind::Io;
    op.read = kind == "read";
    const double bytes = prod.numberOr("bytes", 0.0);
    if (bytes <= 0.0) return fail(at + ": zero-size op: 'bytes' must be > 0");
    op.bytes = static_cast<Bytes>(bytes);
    const std::string pattern = prod.stringOr("pattern", "seq");
    if (pattern == "seq") {
      op.pattern = GrammarOp::Pattern::Seq;
    } else if (pattern == "strided") {
      op.pattern = GrammarOp::Pattern::Strided;
    } else if (pattern == "random") {
      op.pattern = GrammarOp::Pattern::Random;
    } else {
      return fail(at + ": unknown pattern '" + pattern +
                  "' (expected seq, strided or random)");
    }
    op.stride = static_cast<Bytes>(prod.numberOr("stride", static_cast<double>(op.bytes * 2)));
    if (op.pattern == GrammarOp::Pattern::Strided && op.stride < op.bytes) {
      return fail(at + ": 'stride' must be >= 'bytes' for strided ops");
    }
    op.fsync = prod.boolOr("fsync", false);
    op.shared = prod.boolOr("shared", false);
    const double count = prod.numberOr("count", 1.0);
    if (count < 1.0 || count != static_cast<double>(static_cast<std::uint64_t>(count))) {
      return fail(at + ": 'count' must be a positive integer");
    }
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(count); ++c) {
      if (out->ops.size() > kMaxExpandedOps) {
        return fail(where + ".rules: expansion exceeds " + std::to_string(kMaxExpandedOps) +
                    " ops; reduce 'repeat'/'count' factors");
      }
      out->ops.push_back(op);
    }
    return true;
  }
};

}  // namespace

bool parseGrammarSpec(const JsonValue& workload, const std::string& where, GrammarSpec& out,
                      std::vector<std::string>& problems) {
  const std::size_t before = problems.size();
  out = GrammarSpec{};
  const double nodes = workload.numberOr("nodes", 1.0);
  const double ppn = workload.numberOr("procsPerNode", 1.0);
  if (nodes < 1.0) problems.push_back(where + ".nodes: must be >= 1");
  if (ppn < 1.0) problems.push_back(where + ".procsPerNode: must be >= 1");
  out.nodes = static_cast<std::size_t>(nodes);
  out.procsPerNode = static_cast<std::size_t>(ppn);
  out.seed = static_cast<std::uint64_t>(workload.numberOr("seed", 0x6ea33a7));
  const double fileBytes =
      workload.numberOr("fileBytes", static_cast<double>(64 * units::MiB));
  if (fileBytes <= 0.0) problems.push_back(where + ".fileBytes: must be > 0");
  out.fileBytes = static_cast<Bytes>(fileBytes);

  const JsonValue* rules = workload.find("rules");
  if (rules == nullptr || rules->object() == nullptr) {
    problems.push_back(where + ".rules: required object mapping rule names to productions");
    return false;
  }
  const std::string start = workload.stringOr("start", "main");
  Expander ex;
  ex.rules = rules->object();
  ex.out = &out;
  ex.problems = &problems;
  ex.where = where;
  if (!ex.expandRule(start)) return false;
  if (out.ops.empty()) {
    problems.push_back(where + ".rules: the grammar expands to zero ops");
  }
  return problems.size() == before;
}

WorkloadPlan GrammarSource::load(const WorkloadContext& ctx) {
  (void)ctx;
  ranks_.resize(spec_.totalRanks());
  for (std::uint32_t n = 0; n < spec_.nodes; ++n) {
    for (std::uint32_t p = 0; p < spec_.procsPerNode; ++p) {
      const std::size_t rank = n * spec_.procsPerNode + p;
      RankState& st = ranks_[rank];
      st.client = ClientId{n, p};
      st.rng.reseed(spec_.seed ^ ((rank + 1) * 0x9e3779b97f4a7c15ull));
    }
  }

  WorkloadPlan plan;
  plan.ranks = ranks_.size();
  plan.collectOpLatency = true;
  plan.phase.nodes = static_cast<std::uint32_t>(spec_.nodes);
  plan.phase.procsPerNode = static_cast<std::uint32_t>(spec_.procsPerNode);
  plan.phase.readerDiffersFromWriter = false;
  plan.phase.workingSetBytes = spec_.fileBytes * spec_.totalRanks();
  plan.phase.requestSize = units::MiB;  // placeholder for compute-only grammars
  // Declare the phase from the first I/O leaf (the model only needs a
  // representative pattern/request size; ops carry their own geometry).
  for (const GrammarOp& op : spec_.ops) {
    if (op.kind != OpKind::Io) continue;
    plan.phase.requestSize = op.bytes;
    plan.phase.fsync = op.fsync;
    switch (op.pattern) {
      case GrammarOp::Pattern::Seq:
        plan.phase.pattern =
            op.read ? AccessPattern::SequentialRead : AccessPattern::SequentialWrite;
        break;
      case GrammarOp::Pattern::Strided:
      case GrammarOp::Pattern::Random:
        plan.phase.pattern = op.read ? AccessPattern::RandomRead : AccessPattern::RandomWrite;
        break;
    }
    break;
  }
  return plan;
}

NextStatus GrammarSource::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  if (st.pending) return NextStatus::Wait;
  if (st.next >= spec_.ops.size()) return NextStatus::End;
  const GrammarOp& op = spec_.ops[st.next++];

  switch (op.kind) {
    case OpKind::Barrier:
      out.kind = OpKind::Barrier;
      out.switchPhase = false;
      return NextStatus::Op;
    case OpKind::Compute:
      out.kind = OpKind::Compute;
      out.compute = op.compute;
      out.traced = true;
      out.label = "grammar.compute";
      out.tracePid = st.client.node;
      out.traceTid = st.client.proc;
      st.pending = true;
      return NextStatus::Op;
    case OpKind::Meta:
      out.kind = OpKind::Meta;
      out.meta.client = st.client;
      out.meta.op = op.metaOp;
      out.meta.fileId = op.shared ? 0 : rank + 1;
      out.meta.sharedDirectory = op.shared;
      st.pending = true;
      return NextStatus::Op;
    case OpKind::Io:
      break;
  }

  out.kind = OpKind::Io;
  out.io.client = st.client;
  out.io.fileId = op.shared ? 0 : rank + 1;
  out.io.sharedFile = op.shared;
  out.io.bytes = op.bytes;
  out.io.ops = 1;
  out.io.fsync = op.fsync;
  switch (op.pattern) {
    case GrammarOp::Pattern::Seq:
      out.io.pattern = op.read ? AccessPattern::SequentialRead : AccessPattern::SequentialWrite;
      out.io.offset = st.cursor % spec_.fileBytes;
      st.cursor += op.bytes;
      break;
    case GrammarOp::Pattern::Strided:
      out.io.pattern = op.read ? AccessPattern::RandomRead : AccessPattern::RandomWrite;
      out.io.offset = st.cursor % spec_.fileBytes;
      st.cursor += op.stride;
      break;
    case GrammarOp::Pattern::Random: {
      out.io.pattern = op.read ? AccessPattern::RandomRead : AccessPattern::RandomWrite;
      const std::uint64_t slots = std::max<std::uint64_t>(1, spec_.fileBytes / op.bytes);
      out.io.offset = st.rng.uniformInt(slots) * static_cast<std::uint64_t>(op.bytes);
      break;
    }
  }
  out.traced = true;
  out.label = op.read ? "grammar.read" : "grammar.write";
  out.tracePid = st.client.node;
  out.traceTid = st.client.proc;
  st.pending = true;
  return NextStatus::Op;
}

void GrammarSource::onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
  (void)op;
  (void)result;
  ranks_[rank].pending = false;
}

}  // namespace hcsim::workload
