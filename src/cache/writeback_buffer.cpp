#include "cache/writeback_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsim {

WritebackBuffer::WritebackBuffer(Bytes capacity, Bandwidth drainRate)
    : capacity_(capacity), drainRate_(drainRate) {
  if (drainRate_ <= 0.0) throw std::invalid_argument("WritebackBuffer: drainRate must be > 0");
}

void WritebackBuffer::setDrainRate(Bandwidth rate) {
  if (rate <= 0.0) throw std::invalid_argument("WritebackBuffer: drainRate must be > 0");
  drainRate_ = rate;
}

void WritebackBuffer::advance(Seconds now) const {
  if (now <= lastUpdate_) return;
  const double drained = drainRate_ * (now - lastUpdate_);
  dirty_ = std::max(0.0, dirty_ - drained);
  lastUpdate_ = now;
}

Bytes WritebackBuffer::dirty(Seconds now) const {
  advance(now);
  return static_cast<Bytes>(dirty_);
}

Bytes WritebackBuffer::absorb(Bytes bytes, Seconds now) {
  advance(now);
  const double room = static_cast<double>(capacity_) - dirty_;
  const double absorbed = std::min(static_cast<double>(bytes), std::max(0.0, room));
  dirty_ += absorbed;
  return bytes - static_cast<Bytes>(absorbed);
}

Seconds WritebackBuffer::drainCompleteTime(Seconds now) const {
  advance(now);
  return now + dirty_ / drainRate_;
}

Seconds WritebackBuffer::fsyncDelay(Seconds now) const {
  advance(now);
  return dirty_ / drainRate_;
}

void WritebackBuffer::reset(Seconds now) {
  advance(now);
  dirty_ = 0.0;
}

}  // namespace hcsim
