#pragma once
// Takeaway computations — §VII of the paper distilled into three
// measurable quantities, each derived by actually running the simulated
// experiments (not by reading config constants).

#include <cstddef>

#include "core/calibration.hpp"

namespace hcsim {

/// Takeaway for system administrators: per-node bandwidth of the
/// RDMA-deployed VAST (Wombat) vs the TCP-deployed VAST (Lassen).
struct RdmaVsTcp {
  double tcpWriteGBsPerNode = 0.0;
  double tcpReadGBsPerNode = 0.0;
  double rdmaWriteGBsPerNode = 0.0;
  double rdmaReadGBsPerNode = 0.0;
  double writeFactor() const {
    return tcpWriteGBsPerNode > 0 ? rdmaWriteGBsPerNode / tcpWriteGBsPerNode : 0.0;
  }
  double readFactor() const {
    return tcpReadGBsPerNode > 0 ? rdmaReadGBsPerNode / tcpReadGBsPerNode : 0.0;
  }
};
RdmaVsTcp measureRdmaVsTcp();

/// Takeaway for I/O researchers: per-node sequential vs random read
/// bandwidth on GPFS (HDD + prefetch caches) vs RDMA VAST (SCM/QLC).
struct SeqVsRandom {
  double gpfsSeqGBs = 0.0;
  double gpfsRandGBs = 0.0;
  double vastSeqGBs = 0.0;
  double vastRandGBs = 0.0;
  double gpfsDropFraction() const {
    return gpfsSeqGBs > 0 ? 1.0 - gpfsRandGBs / gpfsSeqGBs : 0.0;
  }
  double vastDropFraction() const {
    return vastSeqGBs > 0 ? 1.0 - vastRandGBs / vastSeqGBs : 0.0;
  }
};
SeqVsRandom measureSeqVsRandom();

/// Takeaway for application users: ResNet-50 (small dataset, one epoch)
/// application-perceived throughput on VAST vs GPFS — "VAST can viably
/// serve workloads with low I/O requirements".
struct DlViability {
  double vastAppGBs = 0.0;
  double gpfsAppGBs = 0.0;
  double vastSysGBs = 0.0;
  double gpfsSysGBs = 0.0;
  /// Application-visible slowdown of VAST relative to GPFS (close to 1 =
  /// viable).
  double appRatio() const { return vastAppGBs > 0 ? gpfsAppGBs / vastAppGBs : 0.0; }
};
DlViability measureDlViability(std::size_t nodes = 8);

/// All checks against the paper's numbers, produced by running the three
/// measurements above.
std::vector<calibration::Check> runAllChecks();

}  // namespace hcsim
