#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hcsim {
namespace {

ResultTable sample() {
  ResultTable t("demo");
  t.setHeader({"name", "value"});
  t.addRow({std::string("alpha"), 1.5});
  t.addRow({std::string("beta"), 22.25});
  return t;
}

TEST(ResultTable, CountsRowsAndColumns) {
  const ResultTable t = sample();
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_EQ(t.columnCount(), 2u);
  EXPECT_EQ(t.title(), "demo");
}

TEST(ResultTable, CellAccess) {
  const ResultTable t = sample();
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "alpha");
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(1, 1)), 22.25);
  EXPECT_THROW(t.at(5, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 5), std::out_of_range);
}

TEST(ResultTable, ShortRowsArePadded) {
  ResultTable t;
  t.setHeader({"a", "b", "c"});
  t.addRow({1.0});
  EXPECT_EQ(std::get<std::string>(t.at(0, 2)), "");
}

TEST(ResultTable, ToStringContainsHeaderAndValues) {
  const std::string s = sample().toString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
}

TEST(ResultTable, PrecisionControlsDigits) {
  ResultTable t;
  t.setHeader({"v"});
  t.addRow({1.23456});
  t.setPrecision(4);
  EXPECT_NE(t.toString().find("1.2346"), std::string::npos);
  t.setPrecision(0);
  EXPECT_NE(t.toString().find("1"), std::string::npos);
}

TEST(ResultTable, CsvBasic) {
  const std::string csv = sample().toCsv();
  EXPECT_EQ(csv, "name,value\nalpha,1.50\nbeta,22.25\n");
}

TEST(ResultTable, CsvQuotesSpecialCharacters) {
  ResultTable t;
  t.setHeader({"x"});
  t.addRow({std::string("a,b")});
  t.addRow({std::string("say \"hi\"")});
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ResultTable, StreamOperatorMatchesToString) {
  const ResultTable t = sample();
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.toString());
}

TEST(ResultTable, NumbersRightAlignedTextLeftAligned) {
  ResultTable t;
  t.setHeader({"col"});
  t.addRow({std::string("ab")});
  t.addRow({1.0});
  const std::string s = t.toString();
  // "ab  " (left) vs "1.00" (right, same width).
  EXPECT_NE(s.find("| ab   |"), std::string::npos);
  EXPECT_NE(s.find("| 1.00 |"), std::string::npos);
}

TEST(ResultTable, EmptyTableRenders) {
  ResultTable t;
  t.setHeader({"only"});
  EXPECT_NE(t.toString().find("only"), std::string::npos);
  EXPECT_EQ(t.toCsv(), "only\n");
}

}  // namespace
}  // namespace hcsim
