#pragma once
// Chaos scenario execution: drive a steady foreground workload, inject the
// scheduled faults into the simulation clock, and report a time-sliced
// bandwidth/availability timeline.
//
// Mechanics: nodes*procsPerNode ClientSessions each keep exactly one
// request-sized op in flight (with the retry/backoff layer armed, timed-out
// ops re-submit over whatever capacity survives). Fault events apply
// through FileSystemModel::applyFault — or straight onto a named topology
// link — and take effect mid-flight via the flow network's epoch
// re-rating. A restore event may start background rebuild traffic over the
// model's rebuildRoute, contending with the foreground like a real resync.
// Every `intervalSec` a sampler snapshots completed bytes, giving the
// per-interval GB/s timeline the paper-style availability metrics
// (degraded time, time-to-recover) are derived from.

#include <string>
#include <vector>

#include "chaos/chaos_spec.hpp"
#include "probe/monitor.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/table.hpp"

namespace hcsim::chaos {

/// One timeline slice.
struct IntervalSample {
  Seconds start = 0.0;
  Seconds end = 0.0;
  double gbs = 0.0;          ///< foreground goodput completed in the slice
  std::size_t activeFaults = 0;  ///< components not healthy during the slice
  std::uint64_t retries = 0;     ///< client retries fired in the slice
  bool degraded = false;     ///< gbs < healthy * (1 - degradedTolerance)
};

/// Everything a scenario run produced.
struct ChaosOutcome {
  std::string name;
  Site site = Site::Lassen;
  StorageKind storage = StorageKind::Vast;
  std::vector<IntervalSample> timeline;

  double healthyGBs = 0.0;  ///< steady-state estimate before the first fault
  double meanGBs = 0.0;
  double minGBs = 0.0;
  double maxGBs = 0.0;
  double finalGBs = 0.0;    ///< last slice — "did it come back?"

  Seconds degradedSeconds = 0.0;   ///< total time below the tolerance band
  Seconds timeToRecover = -1.0;    ///< last restore -> first healthy slice; -1 = n/a
  std::uint64_t retries = 0;
  std::uint64_t failedOps = 0;        ///< ops that exhausted their retries
  std::uint64_t lateCompletions = 0;  ///< abandoned attempts that completed anyway

  Bytes foregroundBytes = 0;
  Bytes rebuildBytes = 0;          ///< background resync traffic completed
  Seconds rebuildCompletedAt = -1.0;  ///< when the last rebuild flow drained

  /// Flow-class accounting (workload.clientsPerProc): sessions driven and
  /// the clients they stand for. Equal when the drill ran unaggregated.
  std::uint64_t flowClasses = 0;
  std::uint64_t clientsTotal = 0;

  /// SLO watchdog results (spec "monitors"; empty without them). The
  /// watchdog only observes the timeline samplers — a run with every
  /// monitor satisfied is byte-identical to a monitor-free run.
  std::size_t monitors = 0;
  std::vector<probe::Breach> breaches;
};

/// Background rebuild traffic accounting for scheduleFaults.
struct RebuildStats {
  Bytes bytes = 0;           ///< resync bytes that finished draining
  Seconds completedAt = -1.0;  ///< when the last rebuild flow drained
};

/// Schedule a validated fault list onto an environment's simulator (no
/// workload, no sampling — the caller drives whatever runs on top). This
/// is how sweep trials fold a "chaos" section into an ordinary IOR/DLIO
/// run. Restore events with rebuildGiB start their background flow and
/// record into `stats` when given.
void scheduleFaults(Environment& env, const std::vector<ChaosEvent>& events,
                    RebuildStats* stats = nullptr);

/// Run a scenario on an existing environment (must match the spec's
/// site/storage — the caller owns that invariant). Throws
/// std::invalid_argument listing every validateSchedule problem.
ChaosOutcome runChaosOn(Environment& env, const ChaosSpec& spec);

/// Build the spec's environment (site preset + storageConfig overrides)
/// and run the scenario on it.
ChaosOutcome runChaos(const ChaosSpec& spec);

/// Render the timeline as an aligned table (one row per interval plus the
/// availability summary lines the CLI prints).
ResultTable renderTimeline(const ChaosOutcome& out);

/// Deterministic JSONL: one summary line, then one line per interval.
std::string toJsonl(const ChaosOutcome& out);

/// Export availability metrics as "chaos.*" gauges.
void exportTo(const ChaosOutcome& out, telemetry::MetricsRegistry& reg);

}  // namespace hcsim::chaos
