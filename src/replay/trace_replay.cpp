#include "replay/trace_replay.hpp"

#include <stdexcept>

#include "workload/replay_source.hpp"
#include "workload/workload_runner.hpp"

namespace hcsim {

ReplayResult TraceReplayer::replay(const TraceLog& input, const ReplayConfig& cfg) {
  if (cfg.pidsPerNode == 0) throw std::invalid_argument("ReplayConfig: pidsPerNode must be > 0");
  if (cfg.transferSize == 0) throw std::invalid_argument("ReplayConfig: transferSize must be > 0");

  ReplayResult result;
  result.originalIoTime = input.totalDuration(TraceEventKind::Read) +
                          input.totalDuration(TraceEventKind::Write);

  // The per-pid event chains live in workload::ReplaySource; the generic
  // WorkloadRunner re-issues them and records the as-replayed timeline.
  workload::ReplaySource source(input, cfg);
  workload::WorkloadRunner runner(bench_, fs_);
  runner.setTraceLog(&result.trace);
  runner.run(source);
  result.skippedOps = source.skippedOps();

  result.trace.sortByStart();
  result.breakdown = analyzeOverlap(result.trace);
  result.throughput = computeThroughput(result.trace);
  result.replayedIoTime = result.breakdown.totalIo;
  return result;
}

}  // namespace hcsim
