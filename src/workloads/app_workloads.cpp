#include "workloads/app_workloads.hpp"

#include <stdexcept>

namespace hcsim {

namespace workloads {

namespace {

IorConfig base(AccessPattern access, std::size_t nodes, std::size_t ppn, Bytes transfer,
               Bytes perProcBytes) {
  IorConfig c;
  c.access = access;
  c.transferSize = transfer;
  c.blockSize = transfer;
  c.segments = static_cast<std::size_t>(perProcBytes / transfer);
  if (c.segments == 0) c.segments = 1;
  c.nodes = nodes;
  c.procsPerNode = ppn;
  return c;
}

}  // namespace

AppWorkload cm1(std::size_t nodes, std::size_t ppn) {
  AppWorkload w;
  w.name = "CM1";
  w.domain = "scientific";
  w.description = "atmospheric simulation writing >750 x 16 MB history files";
  // 768 files of 16 MB spread over the job: per process share.
  const Bytes total = 768ull * 16 * units::MB;
  const Bytes perProc = std::max<Bytes>(16 * units::MB, total / (nodes * ppn));
  AppPhase write{"history-write",
                 base(AccessPattern::SequentialWrite, nodes, ppn, units::MiB, perProc), 1};
  w.phases.push_back(std::move(write));
  return w;
}

AppWorkload haccIo(std::size_t nodes, std::size_t ppn) {
  AppWorkload w;
  w.name = "HACC-I/O";
  w.domain = "scientific";
  w.description = "cosmology checkpoint/restart kernel";
  const Bytes perProc = units::GiB;
  AppPhase ckpt{"checkpoint",
                base(AccessPattern::SequentialWrite, nodes, ppn, units::MiB, perProc), 1};
  ckpt.ior.fsyncPerWrite = false;
  AppPhase restart{"restart",
                   base(AccessPattern::SequentialRead, nodes, ppn, units::MiB, perProc), 1};
  restart.ior.reorderTasks = true;  // restart typically lands on other nodes
  w.phases.push_back(std::move(ckpt));
  w.phases.push_back(std::move(restart));
  return w;
}

AppWorkload bdCats(std::size_t nodes, std::size_t ppn) {
  AppWorkload w;
  w.name = "BD-CATS";
  w.domain = "analytics";
  w.description = "trillion-particle clustering over ONE shared HDF5 file (N-1 reads)";
  AppPhase read{"shared-hdf5-read",
                base(AccessPattern::SequentialRead, nodes, ppn, units::MiB, units::GiB), 1};
  read.ior.filePerProcess = false;  // the defining property
  w.phases.push_back(std::move(read));
  return w;
}

AppWorkload kmeans(std::size_t nodes, std::size_t ppn, std::size_t iterations) {
  AppWorkload w;
  w.name = "KMeans";
  w.domain = "analytics";
  w.description = "iterative full passes over point files until convergence";
  AppPhase pass{"iteration",
                base(AccessPattern::SequentialRead, nodes, ppn, units::MiB, units::GiB / 2),
                iterations};
  w.phases.push_back(std::move(pass));
  return w;
}

AppWorkload linearRegression(std::size_t nodes, std::size_t ppn) {
  AppWorkload w;
  w.name = "LinearRegression";
  w.domain = "ML/DL";
  w.description = "SGD over tabular data: random batch reads";
  AppPhase scan{"batch-reads",
                base(AccessPattern::RandomRead, nodes, ppn, units::MiB, units::GiB / 2), 1};
  w.phases.push_back(std::move(scan));
  return w;
}

AppWorkload resnet50(std::size_t nodes) {
  AppWorkload w;
  w.name = "ResNet-50";
  w.domain = "ML/DL";
  w.description = "JPEG classification, 150 KB samples, 1 epoch (DLIO)";
  w.isDlio = true;
  w.dlio.workload = DlioWorkload::resnet50();
  w.dlio.nodes = nodes;
  w.dlio.procsPerNode = 4;
  return w;
}

AppWorkload cosmoflow(std::size_t nodes) {
  AppWorkload w;
  w.name = "Cosmoflow";
  w.domain = "ML/DL";
  w.description = "dark-matter CNN, TFRecords in 256 KB transfers, 4 epochs (DLIO)";
  w.isDlio = true;
  w.dlio.workload = DlioWorkload::cosmoflow();
  w.dlio.nodes = nodes;
  w.dlio.procsPerNode = 4;
  return w;
}

AppWorkload cosmicTagger(std::size_t nodes) {
  AppWorkload w;
  w.name = "CosmicTagger";
  w.domain = "ML/DL";
  w.description = "UNet over sparse HDF5 events via h5py, file striped in memory";
  w.isDlio = true;
  DlioWorkload d = DlioWorkload::cosmoflow();
  d.name = "cosmic-tagger";
  d.samples = 512;
  d.sampleSize = units::MB * 16 / 10;  // ~1.6 MB sparse event tensors
  d.transferSize = 512 * units::KB;    // h5py chunked reads
  d.epochs = 2;
  d.ioThreads = 2;  // h5py GIL-bound reader
  d.computeTimePerBatch = units::msec(90);
  d.scaling = ScalingMode::Strong;
  w.dlio.workload = d;
  w.dlio.nodes = nodes;
  w.dlio.procsPerNode = 4;
  return w;
}

std::vector<AppWorkload> suite(std::size_t nodes, std::size_t ppn) {
  return {cm1(nodes, ppn),   haccIo(nodes, ppn),          bdCats(nodes, ppn),
          kmeans(nodes, ppn), linearRegression(nodes, ppn), resnet50(nodes),
          cosmoflow(nodes),  cosmicTagger(nodes)};
}

}  // namespace workloads

AppWorkloadResult runAppWorkload(Site site, StorageKind kind, const AppWorkload& workload) {
  AppWorkloadResult result;
  result.name = workload.name;

  if (workload.isDlio) {
    const DlioResult r = runDlio(site, kind, workload.dlio);
    AppPhaseResult phase;
    phase.label = "training";
    phase.elapsed = r.runtime;
    phase.bytes = r.bytesRead;
    phase.bandwidthGBs = r.runtime > 0 ? static_cast<double>(r.bytesRead) / r.runtime / 1e9 : 0.0;
    result.phases.push_back(phase);
    result.totalTime = r.runtime;
    result.totalBytes = r.bytesRead;
    result.appThroughputGBs = units::toGBs(r.throughput.application);
    result.sysThroughputGBs = units::toGBs(r.throughput.system);
    return result;
  }

  Environment env = makeEnvironment(site, kind, workload.phases.empty()
                                                   ? 1
                                                   : workload.phases.front().ior.nodes);
  IorRunner runner(*env.bench, *env.fs);
  for (const AppPhase& phase : workload.phases) {
    for (std::size_t it = 0; it < phase.iterations; ++it) {
      const IorResult r = runner.run(phase.ior);
      AppPhaseResult pr;
      pr.label = phase.iterations > 1 ? phase.label + "#" + std::to_string(it) : phase.label;
      pr.elapsed = r.meanElapsed;
      pr.bytes = r.totalBytes;
      pr.bandwidthGBs = units::toGBs(r.bandwidth.mean);
      result.totalTime += r.meanElapsed;
      result.totalBytes += r.totalBytes;
      result.phases.push_back(std::move(pr));
    }
  }
  return result;
}

}  // namespace hcsim
