#include "net/topology.hpp"

namespace hcsim {

LinkId Topology::addLink(const std::string& name, Bandwidth capacity, Seconds latency) {
  if (byName_.count(name)) {
    throw std::invalid_argument("Topology: duplicate link name: " + name);
  }
  const LinkId id = net_.addLink(name, capacity, latency);
  byName_.emplace(name, id);
  return id;
}

LinkId Topology::link(const std::string& name) const {
  const auto it = byName_.find(name);
  if (it == byName_.end()) {
    throw std::out_of_range("Topology: unknown link: " + name);
  }
  return it->second;
}

GroupId Topology::addGroup(const std::string& name, std::size_t count, Bandwidth capacityEach,
                           Seconds latency) {
  if (count == 0) throw std::invalid_argument("Topology: empty group: " + name);
  Group g;
  g.links.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    g.links.push_back(addLink(name + "[" + std::to_string(i) + "]", capacityEach, latency));
  }
  groups_.push_back(std::move(g));
  return GroupId{static_cast<std::uint32_t>(groups_.size() - 1)};
}

LinkId Topology::pick(GroupId group) {
  Group& g = groups_.at(group.value);
  const LinkId id = g.links[g.next % g.links.size()];
  ++g.next;
  return id;
}

LinkId Topology::pickAt(GroupId group, std::size_t index) const {
  const Group& g = groups_.at(group.value);
  return g.links[index % g.links.size()];
}

std::size_t Topology::groupSize(GroupId group) const { return groups_.at(group.value).links.size(); }

Bandwidth Topology::groupCapacity(GroupId group) const {
  const Group& g = groups_.at(group.value);
  Bandwidth total = 0.0;
  for (LinkId id : g.links) total += net_.link(id).capacity;
  return total;
}

}  // namespace hcsim
