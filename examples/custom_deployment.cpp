// custom_deployment — the "highly configurable" API end-to-end: build a
// hypothetical cluster and a custom VAST configuration from scratch (no
// presets), then answer a capacity-planning question: how many CNodes and
// which frontend does a 16-node ML cluster need to keep random-read
// bandwidth above 2 GB/s per node?

#include <cstdio>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

// A machine that is not in the paper: 16 GPU nodes on HDR InfiniBand.
Machine customMachine() {
  Machine m;
  m.name = "Hypothetical";
  m.nodes = 16;
  m.coresPerNode = 64;
  m.gpusPerNode = 8;
  m.ramGiB = 1024;
  m.arch = "x86-64";
  m.network = "IB HDR";
  m.nodeInjection = units::gbps(200);
  return m;
}

VastConfig customVast(std::size_t cnodes, NfsTransport transport, std::size_t nconnect) {
  VastConfig cfg;  // start from scratch, not a preset
  cfg.name = "custom-" + std::to_string(cnodes) + "c-" +
             (transport == NfsTransport::Rdma ? "rdma" : "tcp") + std::to_string(nconnect);
  cfg.cnodes = cnodes;
  cfg.dboxes = 4;
  cfg.dnodesPerBox = 2;
  cfg.qlcPerBox = 16;
  cfg.scmPerBox = 4;
  cfg.transport = transport;
  cfg.nconnect = nconnect;
  cfg.multipath = transport == NfsTransport::Rdma;
  if (transport == NfsTransport::Tcp) {
    cfg.gateway.present = true;
    cfg.gateway.nodes = 2;
    cfg.gateway.linksPerNode = 2;
    cfg.gateway.linkBandwidth = units::gbps(100);
  }
  cfg.fabricLinksPerBox = 2;
  cfg.fabricLinkBandwidth = units::gbps(100);
  cfg.dnodeCacheBytes = 4 * units::TB;
  cfg.validate();
  return cfg;
}

double randomReadGBsPerNode(const VastConfig& cfg) {
  TestBench bench(customMachine(), 16);
  auto fs = bench.attachVast(cfg);
  IorRunner runner(bench, *fs);
  IorConfig ior = IorConfig::scalability(AccessPattern::RandomRead, 16, 64);
  ior.segments = 512;  // lighter volume for a planning sweep
  return units::toGBs(runner.run(ior).bandwidth.mean) / 16.0;
}

}  // namespace

int main() {
  std::printf("== Capacity planning with a custom deployment ==\n");
  std::printf("Goal: >= 2 GB/s per node of random-read bandwidth on 16 GPU nodes.\n\n");

  ResultTable t("Candidate VAST deployments (random read, 16 nodes x 64 procs)");
  t.setHeader({"cnodes", "frontend", "nconnect", "GB/s per node", "meets goal"});
  for (std::size_t cnodes : {4u, 8u, 16u, 32u}) {
    for (int rdma = 0; rdma <= 1; ++rdma) {
      const NfsTransport tr = rdma ? NfsTransport::Rdma : NfsTransport::Tcp;
      const std::size_t nconnect = rdma ? 8 : 1;
      const double perNode = randomReadGBsPerNode(customVast(cnodes, tr, nconnect));
      t.addRow({static_cast<double>(cnodes), std::string(toString(tr)),
                static_cast<double>(nconnect), perNode,
                std::string(perNode >= 2.0 ? "yes" : "no")});
    }
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("As the paper's takeaways predict, no TCP-gateway deployment reaches the\n"
              "target regardless of CNode count; RDMA deployments scale with CNodes.\n");
  return 0;
}
