#pragma once
// TransportProfile — the first-principles NIC/transport knob set of
// hcsim::transport (ROADMAP open item 4). Instead of a single
// "session cap" constant, an endpoint is described by the quantities a
// real NIC datasheet states: a token-bucket IOPS budget, a per-op vs
// per-byte CPU/protocol cost split, PCIe doorbell + descriptor costs
// with doorbell batching, send-queue depth, and connection lanes
// (QP-per-thread for RDMA, stream-per-nconnect for TCP) with a
// connection-setup cost for cold lanes. The RDMA-vs-TCP gap and the
// nconnect scaling curve then *emerge* from TransportFabric's queueing
// over these numbers rather than being configured directly.
//
// Every field lives in the config-path system (toJson/fromJson below),
// so each knob is a sweepable axis ("transport.perOpCost", ...).

#include <string>

#include "util/json.hpp"
#include "util/units.hpp"

namespace hcsim::transport {

/// Wire protocol family the endpoint speaks. The presets differ in
/// per-op cost (kernel TCP/RPC stack vs kernel-bypass verbs), lane
/// count and setup cost — everything else is shared machinery.
enum class FabricKind {
  Tcp,   ///< kernel NFS/TCP streams (nconnect lanes through sockets)
  Rdma,  ///< kernel-bypass verbs (QP-per-thread lanes, tiny per-op cost)
};

const char* toString(FabricKind k);

struct TransportProfile {
  FabricKind kind = FabricKind::Tcp;

  // ---- Token-bucket op admission (NIC/driver IOPS ceiling) ----
  /// Sustained operations/second the endpoint can post.
  double opRate = 120'000.0;
  /// Bucket depth: ops that may burst ahead of the sustained rate.
  double burstOps = 64.0;

  // ---- Per-op vs per-byte cost split ----
  /// Dead time per operation (syscall + protocol + interrupt path for
  /// TCP; verbs post + completion for RDMA).
  Seconds perOpCost = units::usec(50);
  /// Seconds per payload byte spent in the host path (copies, checksum,
  /// segmentation). 1/perByteCost is the lane's large-op ceiling.
  double perByteCost = 8.2e-10;

  // ---- Doorbell batching + send-queue geometry (PCIe path) ----
  /// One MMIO doorbell ring, amortized over up to doorbellBatch
  /// descriptors posted together.
  Seconds doorbellCost = units::usec(0.25);
  double doorbellBatch = 16.0;
  /// Per-descriptor build + DMA-fetch cost.
  Seconds descCost = units::usec(0.03);
  /// Send-queue depth per lane: descriptors outstanding before the
  /// poster blocks (head-of-line at depth 1).
  std::size_t sqDepth = 512;

  // ---- Connection lanes ----
  /// Parallel connections per client endpoint: nconnect TCP streams or
  /// RDMA QPs. Traffic hashes over lanes by issuing process.
  std::size_t lanes = 1;
  /// Cost to (re)establish a lane: TCP handshake + slow-start ramp, or
  /// QP creation + RTR/RTS transition.
  Seconds connectionSetup = units::msec(3.0);
  /// A lane idle longer than this has been torn down and pays
  /// connectionSetup again on next use (0 = never torn down).
  Seconds idleTimeout = 0.0;
  /// Base round-trip: bounds in-flight window rate to sqDepth*opBytes/rtt.
  Seconds baseRtt = units::usec(250);

  /// Throws std::invalid_argument when structurally inconsistent.
  void validate() const;

  /// Kernel NFS/TCP endpoint: ~1.15 GB/s per lane at 1 MiB ops, one
  /// lane, milliseconds to open a stream.
  static TransportProfile tcp();

  /// Kernel-bypass RDMA endpoint: ~2.5 GB/s per lane at 1 MiB ops,
  /// QP-per-thread lane pool, microsecond-scale op costs.
  static TransportProfile rdma();
};

JsonValue toJson(const TransportProfile& p);
/// Lenient: absent keys keep `out`'s current values, so a "transport"
/// spec section only states what it overrides on the model's declared
/// profile. Exception: a stated "kind" resets `out` to that preset
/// first (comparing tcp vs rdma means comparing whole endpoint
/// classes), then the remaining keys override individual knobs.
/// Returns false when `j` is not an object or a stated enum value does
/// not parse.
bool fromJson(const JsonValue& j, TransportProfile& out);

}  // namespace hcsim::transport
