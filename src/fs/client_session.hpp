#pragma once
// ClientSession — POSIX-flavoured per-process file handle over a
// FileSystemModel. One session == one process's sequential I/O stream
// (IOR file-per-process, or one DLIO reader thread).

#include <functional>

#include "fs/file_system_model.hpp"

namespace hcsim {

class ClientSession {
 public:
  /// `fileId` identifies the file this session operates on (N-N: unique
  /// per process; N-1: shared id across sessions).
  ClientSession(FileSystemModel& fs, ClientId client, std::uint64_t fileId)
      : fs_(&fs), client_(client), fileId_(fileId) {}

  ClientId client() const { return client_; }
  std::uint64_t fileId() const { return fileId_; }
  Bytes cursor() const { return cursor_; }
  void seek(Bytes offset) { cursor_ = offset; }

  /// Write `size` bytes at the cursor (advances it). `fsync` waits for
  /// stable storage, as IOR -e does.
  void write(Bytes size, bool fsync, std::function<void(const IoResult&)> done);

  /// Sequential read at the cursor (advances it).
  void read(Bytes size, std::function<void(const IoResult&)> done);

  /// Random read at an explicit offset (cursor unchanged).
  void readAt(Bytes offset, Bytes size, std::function<void(const IoResult&)> done);

  /// Coalesced run of `ops` sequential same-size operations (see
  /// DESIGN.md §5); advances the cursor by ops*size.
  void writeRun(Bytes size, std::uint64_t ops, bool fsync,
                std::function<void(const IoResult&)> done);
  void readRun(Bytes size, std::uint64_t ops, std::function<void(const IoResult&)> done);
  void randomReadRun(Bytes size, std::uint64_t ops, std::function<void(const IoResult&)> done);

 private:
  void submit(Bytes offset, Bytes size, std::uint64_t ops, AccessPattern pattern, bool fsync,
              std::function<void(const IoResult&)> done);

  FileSystemModel* fs_;
  ClientId client_;
  std::uint64_t fileId_;
  Bytes cursor_ = 0;
};

}  // namespace hcsim
