#include "mdtest/mdtest.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(MdtestConfig, ValidateRejectsBadValues) {
  MdtestConfig c;
  c.nodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = MdtestConfig{};
  c.itemsPerProc = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = MdtestConfig{};
  c.repetitions = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MdtestConfig, Totals) {
  MdtestConfig c;
  c.nodes = 2;
  c.procsPerNode = 4;
  c.itemsPerProc = 10;
  EXPECT_EQ(c.totalProcs(), 8u);
  EXPECT_EQ(c.totalItems(), 80u);
}

MdtestResult runOn(FileSystemModel& fs, TestBench& bench, bool uniqueDir,
                   std::size_t procs = 8) {
  MdtestRunner runner(bench, fs);
  MdtestConfig cfg;
  cfg.nodes = 1;
  cfg.procsPerNode = procs;
  cfg.itemsPerProc = 32;
  cfg.uniqueDirPerTask = uniqueDir;
  return runner.run(cfg);
}

TEST(MdtestRunner, ReportsPositiveRatesForAllPhases) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  const MdtestResult r = runOn(*fs, bench, false);
  EXPECT_GT(r.createOpsPerSec.mean, 0.0);
  EXPECT_GT(r.statOpsPerSec.mean, 0.0);
  EXPECT_GT(r.removeOpsPerSec.mean, 0.0);
  EXPECT_EQ(r.totalItems, 8u * 32u);
}

TEST(MdtestRunner, UniqueDirectoriesBeatSharedDirectory) {
  // The classic MDTest result: -u avoids directory-lock serialization.
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const MdtestResult shared = runOn(*fs, bench, false);
  const MdtestResult unique = runOn(*fs, bench, true);
  EXPECT_GT(unique.createOpsPerSec.mean, 1.5 * shared.createOpsPerSec.mean);
}

TEST(MdtestRunner, SharedDirectoryDoesNotScaleWithProcs) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const MdtestResult few = runOn(*fs, bench, false, 2);
  const MdtestResult many = runOn(*fs, bench, false, 16);
  // Serialized on the directory lock: throughput roughly flat.
  EXPECT_LT(many.createOpsPerSec.mean, 1.6 * few.createOpsPerSec.mean);
}

TEST(MdtestRunner, UniqueDirScalesWithServers) {
  TestBench bench(Machine::quartz(), 1);
  auto fs = bench.attachLustre(lustreOnQuartz());
  const MdtestResult few = runOn(*fs, bench, true, 2);
  const MdtestResult many = runOn(*fs, bench, true, 16);
  EXPECT_GT(many.createOpsPerSec.mean, 3.0 * few.createOpsPerSec.mean);
}

TEST(MdtestRunner, NodeLocalNvmeIsFastestAndIgnoresSharedFlag) {
  TestBench wombat(Machine::wombat(), 2);
  auto nvme = wombat.attachNvme(nvmeOnWombat());
  auto vast = wombat.attachVast(vastOnWombat());
  MdtestRunner nvmeRunner(wombat, *nvme);
  MdtestRunner vastRunner(wombat, *vast);
  MdtestConfig cfg;
  cfg.nodes = 2;
  cfg.procsPerNode = 4;
  cfg.itemsPerProc = 32;
  cfg.uniqueDirPerTask = false;
  const double nvmeOps = nvmeRunner.run(cfg).createOpsPerSec.mean;
  const double vastOps = vastRunner.run(cfg).createOpsPerSec.mean;
  EXPECT_GT(nvmeOps, vastOps);  // no network round trip, no shared lock
}

TEST(MdtestRunner, RepetitionsWithNoiseProduceSpread) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  MdtestRunner runner(bench, *fs);
  MdtestConfig cfg;
  cfg.procsPerNode = 4;
  cfg.itemsPerProc = 16;
  cfg.repetitions = 5;
  cfg.noiseStdDevFrac = 0.05;
  const MdtestResult r = runner.run(cfg);
  EXPECT_EQ(r.createOpsPerSec.count, 5u);
  EXPECT_LT(r.createOpsPerSec.min, r.createOpsPerSec.max);
}

TEST(MdtestRunner, ThrowsWhenNodesExceedBench) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  MdtestRunner runner(bench, *fs);
  MdtestConfig cfg;
  cfg.nodes = 4;
  EXPECT_THROW(runner.run(cfg), std::invalid_argument);
}

TEST(MetaOps, ToString) {
  EXPECT_STREQ(toString(MetaOp::Create), "create");
  EXPECT_STREQ(toString(MetaOp::Remove), "remove");
  EXPECT_STREQ(toString(MetaOp::Stat), "stat");
}

}  // namespace
}  // namespace hcsim
