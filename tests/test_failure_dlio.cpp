// Satellite of hcsim::chaos: DLIO training epochs under storage-side
// component loss. A mid-epoch CNode/NSD failure must shrink loader
// throughput in proportion to the surviving capacity — the data pipeline
// has no failover magic beyond what the storage model's HA gives it.

#include <gtest/gtest.h>

#include "sweep/sweep_runner.hpp"

namespace hcsim {
namespace {

double dlioGBs(const std::string& text) {
  JsonValue config;
  EXPECT_TRUE(parseJson(text, config)) << text;
  const sweep::TrialMetrics m = sweep::runTrial("dlio", config, {});
  EXPECT_TRUE(m.ok) << m.error;
  return m.meanGBs;
}

/// unet3d on a deliberately small 4-CNode VAST so the loader is
/// storage-bound and every lost CNode shows up in the epoch throughput.
std::string vastUnet3d(const std::string& chaosEvents) {
  std::string s = R"({"site":"wombat","storage":"vast","storageConfig":{"cnodes":4},
    "dlio":{"workload":{"name":"unet3d","samples":42,"sampleSize":146800640,
      "transferSize":4194304,"batchSize":1,"epochs":1,"ioThreads":4,
      "computeThreads":8,"prefetchDepth":4,"computeTimePerBatch":0.05},
      "nodes":4,"procsPerNode":4})";
  if (!chaosEvents.empty()) s += R"(,"chaos":{"events":)" + chaosEvents + "}";
  return s + "}";
}

TEST(DlioUnderFailure, CNodeLossDegradesLoaderProportionally) {
  const double healthy = dlioGBs(vastUnet3d(""));
  const double oneDown = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail","component":"cnode","index":0}])"));
  const double twoDown = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail","component":"cnode","index":0},
          {"atSec":0.1,"action":"fail","component":"cnode","index":1}])"));
  ASSERT_GT(healthy, 0.0);
  // 3/4 and 2/4 CNodes surviving -> roughly 75% / 50% of the epoch
  // throughput (the pipeline's compute overlap blurs the edges a bit).
  EXPECT_NEAR(oneDown / healthy, 0.75, 0.12);
  EXPECT_NEAR(twoDown / healthy, 0.50, 0.12);
  EXPECT_LT(twoDown, oneDown);
}

TEST(DlioUnderFailure, FailSlowCNodeSitsBetweenHealthyAndFailed) {
  const double healthy = dlioGBs(vastUnet3d(""));
  const double slowed = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail-slow","component":"cnode","index":0,
           "severity":0.5}])"));
  const double failed = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail","component":"cnode","index":0}])"));
  EXPECT_LT(slowed, healthy);
  EXPECT_GT(slowed, failed);
}

TEST(DlioUnderFailure, RestoredCNodeRecoversTheEpoch) {
  const double healthy = dlioGBs(vastUnet3d(""));
  // Fault window early in the epoch; most of the run sees full capacity.
  const double blip = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail","component":"cnode","index":0},
          {"atSec":2.0,"action":"restore","component":"cnode","index":0}])"));
  const double down = dlioGBs(vastUnet3d(
      R"([{"atSec":0.1,"action":"fail","component":"cnode","index":0}])"));
  // A 2-second blip costs far less than losing the CNode for the run.
  EXPECT_GT(blip, down);
  EXPECT_GT(blip, healthy * 0.9);
}

TEST(DlioUnderFailure, GpfsNsdServerLossDegradesTheEpoch) {
  const std::string base = R"({"site":"lassen","storage":"gpfs",
    "storageConfig":{"nsdServers":2},
    "dlio":{"workload":{"name":"unet3d","samples":42,"sampleSize":146800640,
      "transferSize":4194304,"batchSize":1,"epochs":1,"ioThreads":4,
      "computeThreads":8,"prefetchDepth":4,"computeTimePerBatch":0.05},
      "nodes":4,"procsPerNode":4})";
  const double healthy = dlioGBs(base + "}");
  const double degraded = dlioGBs(
      base +
      R"(,"chaos":{"events":[{"atSec":0.1,"action":"fail","component":"nsd",
          "index":0}]}})");
  ASSERT_GT(healthy, 0.0);
  // Losing 1 of 2 NSD servers halves the server bandwidth AND the
  // server cache, so the loader lands well below the naive 50%.
  EXPECT_LT(degraded, healthy * 0.55);
  EXPECT_GT(degraded, 0.0);
}

}  // namespace
}  // namespace hcsim
