#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcsim {

void ResultTable::setHeader(std::vector<std::string> names) { header_ = std::move(names); }

void ResultTable::addRow(std::vector<Cell> cells) {
  cells.resize(header_.size(), std::string{});
  rows_.push_back(std::move(cells));
}

const Cell& ResultTable::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string ResultTable::formatCell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision_, std::get<double>(c));
  return buf;
}

std::string ResultTable::toString() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(formatCell(row[i]));
      width[i] = std::max(width[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto writeRow = [&](const std::vector<std::string>& cells, const auto& isNumeric) {
    os << '|';
    for (std::size_t i = 0; i < header_.size(); ++i) {
      const std::string& v = i < cells.size() ? cells[i] : std::string{};
      const std::size_t pad = width[i] - v.size();
      if (isNumeric(i)) {
        os << ' ' << std::string(pad, ' ') << v << " |";
      } else {
        os << ' ' << v << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
  };
  writeRow(header_, [](std::size_t) { return false; });
  os << '|';
  for (std::size_t i = 0; i < header_.size(); ++i) os << std::string(width[i] + 2, '-') << '|';
  os << '\n';
  for (std::size_t r = 0; r < rendered.size(); ++r) {
    const auto& row = rows_[r];
    writeRow(rendered[r], [&](std::size_t i) {
      return i < row.size() && std::holds_alternative<double>(row[i]);
    });
  }
  return os.str();
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string ResultTable::toCsv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csvEscape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csvEscape(formatCell(row[i]));
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ResultTable& t) { return os << t.toString(); }

}  // namespace hcsim
