#pragma once
// MetamorphicRelation — machine-checkable statements of the paper's
// relative claims, evaluated over seeded config generators.
//
// A relation names a storage system, a relation kind, and two functions:
// `generate` expands a case seed into an ordered set of sibling trial
// configs, and `verdict` judges the metrics that came back. Cases are
// executed through hcsim::sweep's parallel trial batch, so a suite run
// is deterministic in its seed whatever the job count. Monotonic
// relations that fail are shrunk: the offending axis interval is
// bisected down to the minimal failing config (oracle/shrink.hpp).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "util/json.hpp"

namespace hcsim::oracle {

enum class RelationKind {
  Monotonic,      ///< metric non-decreasing along a config axis
  ScaleInvariant, ///< metric invariant under a scale transformation
  Conservation,   ///< a physical budget or byte count is conserved
  Determinism,    ///< identical / reseeded runs agree
  Dominance,      ///< one pattern or system dominates another
};

const char* toString(RelationKind k);

/// One generated case: sibling trial configs derived from one base.
/// Monotonic relations also name the perturbed axis and its ordered
/// numeric values (variant i has `axis` set to `axisValues[i]`), which
/// is what the shrinker bisects.
struct RelationCase {
  JsonValue base;
  std::vector<JsonValue> variants;
  std::string axis;
  std::vector<double> axisValues;
};

struct CaseVerdict {
  bool pass = true;
  std::string detail;  ///< why it failed; empty on pass
};

struct MetamorphicRelation {
  std::string name;        ///< e.g. "lustre.read-monotone-in-stripe-count"
  std::string storage;     ///< vast | gpfs | lustre | nvme
  std::string experiment = "ior";
  RelationKind kind = RelationKind::Monotonic;
  std::string axis;        ///< dotted config path varied between variants ("" if n/a)
  bool integerAxis = false;
  double slack = 0.02;     ///< tolerated fractional violation (monotone checks)
  std::string claim;       ///< the paper claim this relation encodes
  std::function<RelationCase(std::uint64_t caseSeed)> generate;
  std::function<CaseVerdict(const RelationCase&, const std::vector<sweep::TrialMetrics>&)> verdict;
};

class RelationRegistry {
 public:
  void add(MetamorphicRelation r);
  const std::vector<MetamorphicRelation>& all() const { return relations_; }
  const MetamorphicRelation* find(const std::string& name) const;

  /// The built-in catalog: the paper's VAST/GPFS/Lustre/NVMe physics.
  static const RelationRegistry& builtin();

 private:
  std::vector<MetamorphicRelation> relations_;
};

struct CaseFailure {
  std::size_t caseIndex = 0;
  std::string detail;
  JsonValue minimalConfig;   ///< shrunk when possible, else the failing variant
  std::string shrinkSummary; ///< empty when shrinking was not applicable
};

struct RelationReport {
  std::string relation;
  std::string storage;
  RelationKind kind = RelationKind::Monotonic;
  std::string axis;
  std::size_t cases = 0;
  std::size_t failures = 0;
  std::size_t trials = 0;    ///< simulator trials spent (incl. shrinking)
  std::vector<CaseFailure> failureDetails;  ///< capped at options.maxFailuresDetailed
  bool pass() const { return failures == 0; }
};

struct SuiteOptions {
  std::size_t casesPerRelation = 50;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;  ///< 0 = sweep::defaultJobs()
  std::size_t maxFailuresDetailed = 3;
  bool shrink = true;
  /// Optional trial memoization. Relations repeatedly evaluate shared
  /// baseline configs (determinism/scale-invariance pairs, suite re-runs
  /// with overlapping case seeds), so a shared or persisted cache skips
  /// those simulations; reports are byte-identical either way.
  sweep::TrialCache* cache = nullptr;
};

/// Evaluate one relation over `casesPerRelation` seeded cases.
RelationReport runRelation(const MetamorphicRelation& rel, const SuiteOptions& options);

/// Evaluate every relation of the registry, in registry order.
std::vector<RelationReport> runSuite(const RelationRegistry& registry,
                                     const SuiteOptions& options);

/// Deterministic human-readable suite summary (no timings, no job
/// counts — byte-identical across runs and whatever the parallelism).
std::string toMarkdown(const std::vector<RelationReport>& reports);

}  // namespace hcsim::oracle
