// hcsim — command-line front end over the simulation library.
// See `hcsim help` for usage.

#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const hcsim::ArgParser args(argc, argv);
  return hcsim::cli::run(args, std::cout, std::cerr);
}
