#pragma once
// Chrome-trace export — DFTracer emits chrome://tracing-compatible JSON;
// so do we, so captured runs can be inspected in Perfetto/chrome.

#include <string>

#include "trace/trace_log.hpp"

namespace hcsim {

/// Render the log as a chrome trace ("traceEvents" array of complete
/// "X"-phase events; timestamps in microseconds as the format requires).
std::string toChromeTraceJson(const TraceLog& log);

/// Write the JSON to `path`. Returns false on I/O failure.
bool writeChromeTrace(const TraceLog& log, const std::string& path);

}  // namespace hcsim
