#pragma once
// Series/table helpers shared by the benchmark binaries: every figure in
// the paper is "bandwidth (or time) vs x, one series per storage system".

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace hcsim {

struct Series {
  std::string label;
  std::vector<BandwidthPoint> points;
};

/// Build a figure-style table: first column = x, then one mean-bandwidth
/// column per series (with min/max columns when `spread` is set). Series
/// may have different x grids; missing cells are blank.
ResultTable makeFigureTable(const std::string& title, const std::string& xLabel,
                            const std::vector<Series>& series, bool spread = false);

/// Geometric x grids used by the paper: {1,2,4,...,limit}.
std::vector<std::size_t> powersOfTwo(std::size_t limit);

}  // namespace hcsim
