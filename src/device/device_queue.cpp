#include "device/device_queue.hpp"

#include <stdexcept>
#include <utility>

namespace hcsim {

DeviceQueue::DeviceQueue(Simulator& sim, std::size_t servers, std::string name)
    : sim_(sim), servers_(servers), name_(std::move(name)) {
  if (servers_ == 0) throw std::invalid_argument("DeviceQueue: servers must be > 0");
}

void DeviceQueue::submit(Seconds serviceTime, std::function<void()> onDone) {
  Pending op{serviceTime, std::move(onDone)};
  if (busy_ < servers_) {
    startService(std::move(op));
  } else {
    waiting_.push_back(std::move(op));
  }
}

void DeviceQueue::startService(Pending op) {
  ++busy_;
  sim_.schedule(op.serviceTime, [this, done = std::move(op.onDone)]() mutable {
    ++completed_;
    if (done) done();
    onServerFree();
  });
}

void DeviceQueue::onServerFree() {
  --busy_;
  if (!waiting_.empty()) {
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    startService(std::move(next));
  }
}

}  // namespace hcsim
