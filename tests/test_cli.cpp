#include "cli/args.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "config/serialize.hpp"

namespace hcsim {
namespace {

ArgParser parse(std::initializer_list<std::string> args) {
  return ArgParser(std::vector<std::string>(args));
}

TEST(ArgParser, SeparatesPositionalsAndOptions) {
  const ArgParser a = parse({"ior", "--site", "wombat", "--fsync", "extra"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "ior");
  EXPECT_EQ(a.positionals()[1], "extra");
  EXPECT_EQ(a.getOr("--site", ""), "wombat");
  EXPECT_TRUE(a.has("--fsync"));
  EXPECT_FALSE(a.has("--missing"));
}

TEST(ArgParser, EqualsSyntax) {
  const ArgParser a = parse({"--nodes=8", "--name=x=y"});
  EXPECT_EQ(a.getOr("--nodes", ""), "8");
  EXPECT_EQ(a.getOr("--name", ""), "x=y");
}

TEST(ArgParser, FlagFollowedByOptionIsBare) {
  const ArgParser a = parse({"--fsync", "--nodes", "4"});
  EXPECT_TRUE(a.has("--fsync"));
  EXPECT_EQ(*a.get("--fsync"), "");
  EXPECT_EQ(a.sizeOr("--nodes", 0), 4u);
}

TEST(ArgParser, NumericHelpers) {
  const ArgParser a = parse({"--x", "2.5", "--n", "12", "--bad", "abc"});
  EXPECT_DOUBLE_EQ(a.numberOr("--x", 0), 2.5);
  EXPECT_EQ(a.sizeOr("--n", 0), 12u);
  EXPECT_DOUBLE_EQ(a.numberOr("--bad", 7), 7.0);
  EXPECT_DOUBLE_EQ(a.numberOr("--missing", 9), 9.0);
}

TEST(ArgParser, PositionalOrFallback) {
  const ArgParser a = parse({"only"});
  EXPECT_EQ(a.positionalOr(0, "x"), "only");
  EXPECT_EQ(a.positionalOr(5, "x"), "x");
}

TEST(ArgParser, UnknownOptionsDetected) {
  const ArgParser a = parse({"--good", "1", "--typo", "2"});
  const auto unknown = a.unknownOptions({"--good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--typo");
}

TEST(ArgParser, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"hcsim", "help"};
  const ArgParser a(2, argv);
  EXPECT_EQ(a.positionalOr(0, ""), "help");
}

// ---- command dispatch ----

int runCli(std::initializer_list<std::string> args, std::string* outText = nullptr,
           std::string* errText = nullptr) {
  std::ostringstream out, err;
  const int rc = cli::run(parse(args), out, err);
  if (outText) *outText = out.str();
  if (errText) *errText = err.str();
  return rc;
}

TEST(Cli, HelpListsCommands) {
  std::string out;
  EXPECT_EQ(runCli({"help"}, &out), 0);
  for (const char* cmd : {"ior", "dlio", "mdtest", "plan", "takeaways", "dump-config"}) {
    EXPECT_NE(out.find(cmd), std::string::npos) << cmd;
  }
}

TEST(Cli, NoArgsShowsHelp) {
  std::string out;
  EXPECT_EQ(runCli({}, &out), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(runCli({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, IorRequiresValidTarget) {
  std::string err;
  EXPECT_EQ(runCli({"ior", "--site", "mars", "--storage", "vast"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--site"), std::string::npos);
  EXPECT_EQ(runCli({"ior", "--site", "wombat", "--storage", "tape"}, nullptr, &err), 2);
}

TEST(Cli, IorRunsAndReportsBandwidth) {
  std::string out;
  const int rc = runCli({"ior", "--site", "wombat", "--storage", "vast", "--access",
                         "seq-write", "--nodes", "2", "--ppn", "8", "--segments", "64",
                         "--reps", "1"},
                        &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("bandwidth:"), std::string::npos);
  EXPECT_NE(out.find("GB/s"), std::string::npos);
}

TEST(Cli, DlioRunsWorkloadPreset) {
  std::string out;
  const int rc = runCli({"dlio", "--site", "lassen", "--storage", "gpfs", "--workload",
                         "resnet50", "--nodes", "1", "--ppn", "2"},
                        &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("non-overlapping I/O"), std::string::npos);
  std::string err;
  EXPECT_EQ(runCli({"dlio", "--site", "lassen", "--storage", "gpfs", "--workload", "bogus"},
                   nullptr, &err),
            2);
}

TEST(Cli, MdtestRuns) {
  std::string out;
  const int rc = runCli({"mdtest", "--site", "wombat", "--storage", "nvme", "--procs", "4",
                         "--items", "16", "--reps", "1"},
                        &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("create:"), std::string::npos);
}

TEST(Cli, DumpConfigEmitsValidJson) {
  std::string out;
  EXPECT_EQ(runCli({"dump-config", "--site", "wombat", "--storage", "vast"}, &out), 0);
  JsonValue v;
  ASSERT_TRUE(parseJson(out.substr(0, out.find_last_not_of('\n') + 1), v));
  EXPECT_EQ(v.stringOr("name", ""), "VAST@Wombat");
  EXPECT_DOUBLE_EQ(v.numberOr("nconnect", 0), 16.0);
}

// ---- chaos command ----

std::string writeTempSpec(const std::string& name, const std::string& text) {
  const std::string path = "/tmp/hcsim_cli_" + name + ".json";
  std::ofstream f(path, std::ios::trunc);
  f << text;
  return path;
}

TEST(Cli, ChaosRequiresSpecFile) {
  std::string err;
  EXPECT_EQ(runCli({"chaos"}, nullptr, &err), 2);
  EXPECT_NE(err.find("scenario file"), std::string::npos);
  EXPECT_EQ(runCli({"chaos", "/no/such/spec.json"}, nullptr, &err), 2);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Cli, ChaosRejectsMalformedSpec) {
  const std::string path = writeTempSpec("chaos_bad_json", "{not json");
  std::string err;
  EXPECT_EQ(runCli({"chaos", path}, nullptr, &err), 2);
  std::remove(path.c_str());
  EXPECT_NE(err.find("not valid JSON"), std::string::npos);
}

TEST(Cli, ChaosRejectsUnknownComponentWithActionableError) {
  const std::string path = writeTempSpec("chaos_bad_component", R"({
    "site": "lassen", "storage": "vast",
    "events": [{"atSec": 1, "action": "fail", "component": "oss"}]})");
  std::string err;
  EXPECT_EQ(runCli({"chaos", path}, nullptr, &err), 2);
  std::remove(path.c_str());
  EXPECT_NE(err.find("unknown component 'oss'"), std::string::npos);
  EXPECT_NE(err.find("supported:"), std::string::npos);
}

TEST(Cli, ChaosRejectsOutOfOrderAndOverlappingEvents) {
  const std::string path = writeTempSpec("chaos_bad_schedule", R"({
    "site": "lassen", "storage": "vast",
    "events": [
      {"atSec": 10, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 5, "action": "fail", "component": "cnode", "index": 0}]})");
  std::string err;
  EXPECT_EQ(runCli({"chaos", path}, nullptr, &err), 2);
  std::remove(path.c_str());
  // Both problems are reported at once, each naming its event index.
  EXPECT_NE(err.find("goes backwards"), std::string::npos);
  EXPECT_NE(err.find("already failed"), std::string::npos);
  EXPECT_NE(err.find("events[1]"), std::string::npos);
}

TEST(Cli, ChaosRunsScenarioAndWritesTimeline) {
  const std::string path = writeTempSpec("chaos_ok", R"({
    "name": "cli-drill", "site": "lassen", "storage": "vast",
    "storageConfig": {"cnodes": 4},
    "workload": {"nodes": 4, "procsPerNode": 8, "requestBytes": 8388608},
    "horizonSec": 12, "intervalSec": 2,
    "events": [
      {"atSec": 4, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 8, "action": "restore", "component": "cnode", "index": 0}]})");
  const std::string outPath = "/tmp/hcsim_cli_chaos_out.jsonl";
  std::string out;
  const int rc = runCli({"chaos", path, "--out", outPath}, &out);
  std::remove(path.c_str());
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("cli-drill"), std::string::npos);
  EXPECT_NE(out.find("DEGRADED"), std::string::npos);
  EXPECT_NE(out.find("healthy"), std::string::npos);

  std::ifstream written(outPath);
  ASSERT_TRUE(written.good());
  std::string firstLine;
  std::getline(written, firstLine);
  std::remove(outPath.c_str());
  EXPECT_NE(firstLine.find("\"scenario\""), std::string::npos);
}

TEST(Cli, HelpMentionsChaos) {
  std::string out;
  EXPECT_EQ(runCli({"help"}, &out), 0);
  EXPECT_NE(out.find("chaos"), std::string::npos);
}

TEST(Cli, IorLoadsConfigFile) {
  const std::string path = "/tmp/hcsim_cli_ior.json";
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 2, 4);
  cfg.segments = 32;
  cfg.repetitions = 1;
  ASSERT_TRUE(saveConfig(cfg, path));
  std::string out;
  const int rc = runCli(
      {"ior", "--site", "wombat", "--storage", "vast", "--config", path}, &out);
  std::remove(path.c_str());
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("seq-read"), std::string::npos);
}

}  // namespace
}  // namespace hcsim
