#pragma once
// MDTest reimplementation — the metadata companion of IOR (the paper's
// related-work evaluations of BurstFS/GekkoFS/IME/Ceph all pair IOR with
// MDTest). Each process creates, stats and removes `itemsPerProc` empty
// files, either in one shared directory (contended: directory locks
// serialize) or in a unique directory per task (-u). Reported metric:
// operations per second per phase.

#include <vector>

#include "cluster/deployments.hpp"
#include "fs/file_system_model.hpp"
#include "util/stats.hpp"

namespace hcsim {

struct MdtestConfig {
  std::size_t nodes = 1;
  std::size_t procsPerNode = 1;
  std::size_t itemsPerProc = 64;   ///< -n
  bool uniqueDirPerTask = false;   ///< -u
  std::size_t repetitions = 1;     ///< -i
  double noiseStdDevFrac = 0.0;
  std::uint64_t seed = 0x3d7e57ull;

  std::size_t totalProcs() const { return nodes * procsPerNode; }
  std::size_t totalItems() const { return totalProcs() * itemsPerProc; }

  void validate() const;
};

struct MdtestResult {
  Summary createOpsPerSec;
  Summary statOpsPerSec;
  Summary removeOpsPerSec;
  std::size_t totalItems = 0;
};

class MdtestRunner {
 public:
  MdtestRunner(TestBench& bench, FileSystemModel& fs) : bench_(bench), fs_(fs) {}

  MdtestResult run(const MdtestConfig& cfg);

 private:
  /// One phase (all procs perform `op` on every item); returns elapsed.
  Seconds runPhase(const MdtestConfig& cfg, MetaOp op);

  TestBench& bench_;
  FileSystemModel& fs_;
};

}  // namespace hcsim
