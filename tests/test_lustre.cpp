#include "lustre/lustre_model.hpp"

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"

namespace hcsim {
namespace {

TEST(LustreConfig, ValidateRejectsBadValues) {
  LustreConfig c;
  c.ossCount = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = LustreConfig{};
  c.stripeCount = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = LustreConfig{};
  c.raidz2Overhead = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(LustreConfig, LcPresetMatchesPaper) {
  const LustreConfig c = LustreConfig::lcInstance();
  EXPECT_EQ(c.mdsCount, 16u);       // "16 Metadata Servers"
  EXPECT_EQ(c.ossCount, 36u);       // "36 Object Storage Servers"
  EXPECT_EQ(c.spindlesPerOss, 80u); // "80 SAS HDD raidz2 groups"
}

struct Harness {
  Harness() : bench(Machine::quartz(), 1), fs(bench.attachLustre(lustreOnQuartz())) {}
  TestBench bench;
  std::unique_ptr<LustreModel> fs;

  Seconds oneOp(AccessPattern p, Bytes bytes, bool fsync) {
    PhaseSpec ph;
    ph.pattern = p;
    ph.requestSize = bytes;
    fs->beginPhase(ph);
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = bytes;
    req.pattern = p;
    req.fsync = fsync;
    const SimTime start = bench.sim().now();
    SimTime end = 0;
    fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    bench.sim().run();
    fs->endPhase();
    return end - start;
  }
};

TEST(LustreModel, FsyncCommitDominatesSmallWrites) {
  Harness h;
  const Seconds sync = h.oneOp(AccessPattern::SequentialWrite, units::MiB, true);
  const Seconds async = h.oneOp(AccessPattern::SequentialWrite, units::MiB, false);
  EXPECT_GT(sync, async + lustreOnQuartz().commitLatency * 0.9);
}

TEST(LustreModel, RandomReadPaysPenalty) {
  Harness h;
  const Seconds seq = h.oneOp(AccessPattern::SequentialRead, units::MiB, false);
  const Seconds rnd = h.oneOp(AccessPattern::RandomRead, units::MiB, false);
  EXPECT_GT(rnd, seq + lustreOnQuartz().randomReadPenalty * 0.9);
}

TEST(LustreModel, StripeCountBoundsSingleProcessRate) {
  const auto oneGiB = [](std::size_t stripes) {
    TestBench bench(Machine::quartz(), 1);
    LustreConfig cfg = lustreOnQuartz();
    cfg.name = "Lustre-s" + std::to_string(stripes);
    cfg.stripeCount = stripes;
    auto fs = bench.attachLustre(cfg);
    PhaseSpec ph;
    ph.pattern = AccessPattern::SequentialRead;
    ph.requestSize = units::MiB;
    fs->beginPhase(ph);
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = units::GiB;
    req.pattern = AccessPattern::SequentialRead;
    req.ops = 1024;
    SimTime end = 0;
    fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    bench.sim().run();
    return static_cast<double>(units::GiB) / end;
  };
  const Bandwidth one = oneGiB(1);
  const Bandwidth four = oneGiB(4);
  EXPECT_GT(four, 2.0 * one);
  EXPECT_LE(one, lustreOnQuartz().ossBandwidth * 1.05);
}

TEST(LustreModel, MetadataOpUsesMdsLatency) {
  Harness h;
  IoRequest req;
  req.client = {0, 0};
  req.bytes = 0;
  SimTime end = 0;
  h.fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  h.bench.sim().run();
  EXPECT_NEAR(end, lustreOnQuartz().mdsLatency, 1e-9);
}

TEST(LustreModel, DeviceCapacityTracksPattern) {
  Harness h;
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialRead;
  ph.requestSize = units::MiB;
  h.fs->beginPhase(ph);
  const Bandwidth seq = h.fs->deviceCapacity();
  h.fs->endPhase();
  ph.pattern = AccessPattern::RandomRead;
  h.fs->beginPhase(ph);
  EXPECT_LT(h.fs->deviceCapacity(), seq);
}

TEST(LustreModel, ManyProcessesScaleTowardNodeCap) {
  TestBench bench(Machine::quartz(), 1);
  auto fs = bench.attachLustre(lustreOnQuartz());
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialRead;
  ph.requestSize = units::MiB;
  ph.procsPerNode = 32;
  fs->beginPhase(ph);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = 32ull * units::GiB;
  req.pattern = AccessPattern::SequentialRead;
  req.ops = 32ull * 1024;
  req.streams = 32;
  SimTime end = 0;
  fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  bench.sim().run();
  const Bandwidth bw = static_cast<double>(req.bytes) / end;
  EXPECT_LE(bw, lustreOnQuartz().clientCap * 1.01);
  EXPECT_GT(bw, 0.7 * lustreOnQuartz().clientCap);
}

TEST(LustreModel, CapacityReported) {
  Harness h;
  EXPECT_EQ(h.fs->totalCapacity(), lustreOnQuartz().capacityTotal);
}

}  // namespace
}  // namespace hcsim
