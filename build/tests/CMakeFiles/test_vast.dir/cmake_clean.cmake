file(REMOVE_RECURSE
  "CMakeFiles/test_vast.dir/test_vast.cpp.o"
  "CMakeFiles/test_vast.dir/test_vast.cpp.o.d"
  "test_vast"
  "test_vast.pdb"
  "test_vast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
