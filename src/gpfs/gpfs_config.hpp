#pragma once
// GpfsConfig — the GPFS-on-Lassen model (paper §IV-B, Fig 1b): 16
// PowerPC64 NSD servers, 1.4 PB each, GPFS Native RAID over HDD,
// InfiniBand interconnect, deep server-side caching with aggressive
// sequential prefetch.

#include <cstddef>
#include <string>

#include "device/hdd_raid.hpp"
#include "util/units.hpp"

namespace hcsim {

struct GpfsConfig {
  std::string name = "GPFS";

  // ---- Server side ----
  std::size_t nsdServers = 16;
  /// Per-NSD-server network/processing ceiling (read path streams from
  /// RAID + cache; Lassen's GPFS delivers over a TB/s aggregate).
  Bandwidth serverReadBandwidth = units::gbs(29.0);
  Bandwidth serverWriteBandwidth = units::gbs(25.0);
  HddSpec hdd = HddSpec::nearlineSas();
  std::size_t spindlesPerServer = 140;
  double raidParityOverhead = 0.2;
  /// Server-side cache (pagepool + NSD/RAID caches) per server.
  Bytes serverCacheBytes = units::GiB * 512;
  /// Fraction of the server cache that stays useful under *random*
  /// access: uniform random reads churn the LRU so only a thin resident
  /// core keeps hitting. Small DL datasets (within the resident core)
  /// still hit fully — the paper's ResNet observation — while IOR-scale
  /// random working sets (>= 120 GB/node) mostly miss and pay the thrash
  /// penalty, producing the 90% sequential->random collapse.
  double randomCacheResidencyFactor = 0.00025;
  /// Decay constant of the random-read hit ratio beyond the resident
  /// core: h = exp(-(workingSet - resident) / decay). The exponential
  /// tail makes aggregate bandwidth degrade smoothly (and keeps node
  /// sweeps monotone) instead of falling off a cliff at one working-set
  /// size.
  Bytes randomCacheDecayBytes = units::TiB;

  // ---- Client side ----
  /// Per-compute-node GPFS client ceiling for streaming reads; the paper
  /// measures ~14.5 GB/s per node for sequential reads.
  Bandwidth clientReadCap = units::gbs(15.0);
  Bandwidth clientWriteCap = units::gbs(3.1);
  /// Client pagepool (only effective when the reader wrote the data —
  /// the paper's tests deliberately defeat it).
  Bytes clientPagepool = units::GiB * 16;

  // ---- Latencies ----
  Seconds rpcLatency = units::usec(200);
  /// fsync: flush to NSD server stable storage (RAID write cache backed).
  Seconds commitLatency = units::usec(800);
  /// Extra per-op dead time on random reads: prefetch thrash, token
  /// revocation and deep request queues. This term produces the paper's
  /// 90% sequential->random collapse (14.5 -> 1.4 GB/s per node).
  Seconds randomReadPenalty = units::msec(26.0);
  /// Contention: per GiB of competing tenant traffic in flight (clients
  /// outside the active phase's node range), every op from a phase
  /// client pays this much extra dead time — prefetch churn and token
  /// traffic caused by other jobs hammering the same NSD pool. This is
  /// what makes background load visibly slow a foreground benchmark on
  /// the shared Lassen GPFS even when no link saturates.
  Seconds prefetchChurnPerGiB = units::usec(10);

  /// Per-op metadata service at an NSD/token manager.
  Seconds metadataServiceTime = units::usec(250);
  /// Shared-directory token ping-pong penalty (GPFS's distributed lock
  /// manager revokes the directory token on every create).
  double metadataSharedDirPenalty = 4.0;
  /// N-1 shared-file costs: byte-range write tokens ping-pong between
  /// clients (GPFS's well-known N-1 weakness without data shipping).
  Seconds sharedFileLockLatency = units::msec(1.2);
  double sharedFileEfficiency = 0.55;

  Bytes capacityTotal = 24 * units::PB;  ///< paper: "total capacity of 24 PB"

  void validate() const;

  /// The Lassen instance as described in the paper.
  static GpfsConfig lassen();
};

}  // namespace hcsim
