// The aggregation-equivalence suite pinning hcsim::scale: a flow class
// of N members must be byte-identical to N explicit symmetric clients,
// at every layer it passes through — the max-min solver, the four
// storage models (with and without fail-slow), the retry layer, and the
// open-loop workload driver. Plus the scale library itself (demand
// placement, statistical demultiplexing) and the engine's flat-memory
// evidence (peak pending events).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "fs/client_session.hpp"
#include "net/flow_network.hpp"
#include "net/topology.hpp"
#include "scale/flow_class.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "workload/ior_source.hpp"
#include "workload/openloop_source.hpp"
#include "workload/workload_runner.hpp"
#include "workload/workload_spec.hpp"

namespace hcsim {
namespace {

JsonValue mustParse(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(parseJson(text, v)) << text;
  return v;
}

// ---- scale library: demand placement ----

TEST(NormalQuantile, KnownValuesAndSymmetry) {
  EXPECT_NEAR(scale::normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(scale::normalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(scale::normalQuantile(0.0013498980316301), -3.0, 1e-6);
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(scale::normalQuantile(p), -scale::normalQuantile(1.0 - p), 1e-9) << p;
  }
  EXPECT_THROW(scale::normalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(scale::normalQuantile(1.0), std::invalid_argument);
}

TEST(NormalQuantile, StrictlyIncreasing) {
  double prev = scale::normalQuantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = scale::normalQuantile(p);
    EXPECT_GT(q, prev) << p;
    prev = q;
  }
}

TEST(DemandMultipliers, UniformIsBitwiseOnes) {
  const auto m = scale::demandMultipliers({scale::DemandKind::Uniform, 0.0, 0.0}, 5);
  ASSERT_EQ(m.size(), 5u);
  for (double v : m) EXPECT_EQ(v, 1.0);  // the literal, not "close to"
  // Degenerate parameterizations collapse to the same no-op.
  const auto zeroSigma = scale::demandMultipliers({scale::DemandKind::Lognormal, 0.0, 0.0}, 3);
  for (double v : zeroSigma) EXPECT_EQ(v, 1.0);
}

TEST(DemandMultipliers, LognormalMeanOneAscending) {
  const auto m = scale::demandMultipliers({scale::DemandKind::Lognormal, 0.8, 0.0}, 64);
  ASSERT_EQ(m.size(), 64u);
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_GT(m[i], 0.0);
    if (i > 0) EXPECT_GE(m[i], m[i - 1]);
    sum += m[i];
  }
  EXPECT_NEAR(sum / 64.0, 1.0, 1e-12);
  EXPECT_GT(m.back() / m.front(), 3.0);  // sigma 0.8 is real heterogeneity
}

TEST(DemandMultipliers, ZipfMeanOneAscending) {
  const auto m = scale::demandMultipliers({scale::DemandKind::Zipf, 0.0, 1.0}, 16);
  ASSERT_EQ(m.size(), 16u);
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i > 0) EXPECT_GE(m[i], m[i - 1]);
    sum += m[i];
  }
  EXPECT_NEAR(sum / 16.0, 1.0, 1e-12);
}

TEST(DemandMultipliers, NegativeParametersThrow) {
  EXPECT_THROW(scale::demandMultipliers({scale::DemandKind::Lognormal, -0.5, 0.0}, 4),
               std::invalid_argument);
  EXPECT_THROW(scale::demandMultipliers({scale::DemandKind::Zipf, 0.0, -1.0}, 4),
               std::invalid_argument);
}

// ---- scale library: statistical demultiplexing ----

TEST(WeightedPercentile, MatchesExpandedMultiset) {
  const std::vector<scale::WeightedSample> weighted = {
      {0.5, 3}, {1.25, 1}, {2.0, 5}, {7.5, 2}};
  std::vector<double> expanded;
  for (const auto& s : weighted) {
    for (std::uint64_t i = 0; i < s.count; ++i) expanded.push_back(s.value);
  }
  std::sort(expanded.begin(), expanded.end());
  for (double q : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(scale::weightedPercentile(weighted, q), percentileSorted(expanded, q))
        << "q=" << q;
  }
}

TEST(Demultiplex, CountOneMatchesSummarize) {
  const std::vector<double> values = {3.2, 0.7, 5.5, 1.1, 4.9, 2.0, 0.9};
  std::vector<scale::WeightedSample> weighted;
  for (double v : values) weighted.push_back({v, 1});
  const Summary a = summarize(values);
  const Summary b = scale::demultiplex(weighted);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.stddev, b.stddev, 1e-9);
}

TEST(Demultiplex, WeightedMatchesExpandedSummarize) {
  const std::vector<scale::WeightedSample> weighted = {{0.004, 1000}, {0.011, 250}, {0.09, 17}};
  std::vector<double> expanded;
  for (const auto& s : weighted) {
    for (std::uint64_t i = 0; i < s.count; ++i) expanded.push_back(s.value);
  }
  const Summary a = summarize(expanded);
  const Summary b = scale::demultiplex(weighted);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.stddev, b.stddev, 1e-9);
}

TEST(Demultiplex, ZeroCountSamplesIgnored) {
  const Summary s = scale::demultiplex({{5.0, 0}, {2.0, 3}});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(ClassStats, ExportsGauges) {
  telemetry::MetricsRegistry reg;
  scale::exportTo(scale::ClassStats{4, 4000}, reg);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.classes", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.clientsPerClass", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.clientsTotal", 0.0), 4000.0);
}

// ---- flow network: class-of-N == N singleton flows ----

struct NetHarness {
  Simulator sim;
  FlowNetwork net{sim};
};

/// A competing flow in its own fairness group (the rate cap separates
/// its signature), so the class actually contends for the link.
FlowSpec cappedCompetitor(LinkId l) {
  FlowSpec s{8000, {l}};
  s.rateCap = 10.0;
  return s;
}

TEST(FlowClassEquivalence, ClassOfNMatchesNSingletons) {
  const std::uint32_t n = 4;
  // N explicit flows.
  std::vector<SimTime> singleEnds;
  SimTime competitorEndA = -1;
  {
    NetHarness h;
    const LinkId l = h.net.addLink("l", 100.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      h.net.startFlow({1000, {l}},
                      [&](const FlowCompletion& c) { singleEnds.push_back(c.endTime); });
    }
    h.net.startFlow(cappedCompetitor(l),
                    [&](const FlowCompletion& c) { competitorEndA = c.endTime; });
    h.sim.run();
  }
  // One class of N.
  FlowCompletion classDone{};
  SimTime competitorEndB = -1;
  {
    NetHarness h;
    const LinkId l = h.net.addLink("l", 100.0);
    FlowSpec spec{1000, {l}};
    spec.members = n;
    h.net.startFlow(spec, [&](const FlowCompletion& c) { classDone = c; });
    h.net.startFlow(cappedCompetitor(l),
                    [&](const FlowCompletion& c) { competitorEndB = c.endTime; });
    h.sim.run();
  }
  ASSERT_EQ(singleEnds.size(), static_cast<std::size_t>(n));
  for (SimTime end : singleEnds) EXPECT_DOUBLE_EQ(end, classDone.endTime);
  EXPECT_DOUBLE_EQ(competitorEndA, competitorEndB);
  EXPECT_EQ(classDone.bytes, 4000u);  // aggregate payload
  EXPECT_EQ(classDone.members, n);
}

TEST(FlowClassEquivalence, PartitionInvariance) {
  // 6 clients as one class, as 2+4, and as 6 singletons: identical.
  auto run = [](const std::vector<std::uint32_t>& classSizes) {
    NetHarness h;
    const LinkId l = h.net.addLink("l", 100.0);
    std::vector<SimTime> ends;
    for (std::uint32_t members : classSizes) {
      FlowSpec spec{1000, {l}};
      spec.members = members;
      h.net.startFlow(spec, [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
    }
    SimTime competitorEnd = -1;
    h.net.startFlow(cappedCompetitor(l),
                    [&](const FlowCompletion& c) { competitorEnd = c.endTime; });
    h.sim.run();
    ends.push_back(competitorEnd);
    return ends;
  };
  const auto whole = run({6});
  const auto split = run({2, 4});
  const auto singles = run({1, 1, 1, 1, 1, 1});
  // Last entry is the competitor; everything before it is the class.
  for (const auto* ends : {&split, &singles}) {
    for (std::size_t i = 0; i + 1 < ends->size(); ++i) {
      EXPECT_DOUBLE_EQ((*ends)[i], whole.front());
    }
    EXPECT_DOUBLE_EQ(ends->back(), whole.back());
  }
}

TEST(FlowClassEquivalence, FailSlowHitsClassAndSingletonsAlike) {
  auto run = [](bool asClass) {
    NetHarness h;
    const LinkId l = h.net.addLink("l", 100.0);
    std::vector<SimTime> ends;
    if (asClass) {
      FlowSpec spec{1000, {l}};
      spec.members = 4;
      h.net.startFlow(spec, [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
    } else {
      for (int i = 0; i < 4; ++i) {
        h.net.startFlow({1000, {l}},
                        [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
      }
    }
    // Mid-transfer fail-slow, then a partial recovery.
    h.sim.schedule(10.0, [&] { h.net.setLinkHealth(l, 0.25); });
    h.sim.schedule(30.0, [&] { h.net.setLinkHealth(l, 0.8); });
    h.sim.run();
    return ends;
  };
  const auto classEnds = run(true);
  const auto singleEnds = run(false);
  ASSERT_EQ(classEnds.size(), 1u);
  ASSERT_EQ(singleEnds.size(), 4u);
  for (SimTime end : singleEnds) EXPECT_DOUBLE_EQ(end, classEnds[0]);
}

TEST(FlowClassEquivalence, SizeOneClassIsLegacyPath) {
  auto run = [](std::uint32_t members) {
    NetHarness h;
    const LinkId l = h.net.addLink("l", 100.0);
    FlowSpec spec{1000, {l}};
    spec.members = members;
    FlowCompletion done{};
    h.net.startFlow(spec, [&](const FlowCompletion& c) { done = c; });
    h.net.startFlow(cappedCompetitor(l), [](const FlowCompletion&) {});
    h.sim.run();
    return done;
  };
  const FlowCompletion a = run(1);
  const FlowCompletion b = run(1);
  EXPECT_DOUBLE_EQ(a.endTime, b.endTime);
  EXPECT_EQ(a.bytes, 1000u);
  EXPECT_EQ(a.members, 1u);
}

TEST(FlowClassEquivalence, ActiveMembersCountsThePopulation) {
  NetHarness h;
  const LinkId l = h.net.addLink("l", 1e9);
  FlowSpec big{1000000, {l}};
  big.members = 1000;
  h.net.startFlow(big, [](const FlowCompletion&) {});
  h.net.startFlow({1000000, {l}}, [](const FlowCompletion&) {});
  EXPECT_EQ(h.net.activeMembers(), 1001u);
  h.sim.run();
  EXPECT_EQ(h.net.activeMembers(), 0u);
}

// ---- storage models: members=N == N identical concurrent submits ----

struct ModelTarget {
  Site site;
  StorageKind kind;
};

const ModelTarget kModelTargets[] = {
    {Site::Lassen, StorageKind::Vast},
    {Site::Lassen, StorageKind::Gpfs},
    {Site::Ruby, StorageKind::Lustre},
    {Site::Wombat, StorageKind::NvmeLocal},
};

class ModelClassEquivalence : public ::testing::TestWithParam<int> {
 protected:
  ModelTarget target() const { return kModelTargets[static_cast<std::size_t>(GetParam())]; }
};

IoRequest classBaseRequest(AccessPattern p) {
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = 32 * units::MiB;
  req.ops = 32;  // multi-op: VAST/GPFS take the deterministic cache split
  req.pattern = p;
  return req;
}

PhaseSpec classPhase(AccessPattern p, std::uint32_t procs) {
  PhaseSpec ph;
  ph.pattern = p;
  ph.requestSize = units::MiB;
  ph.nodes = 1;
  ph.procsPerNode = procs;  // the phase declares the full population
  ph.workingSetBytes = 256 * units::MiB;
  return ph;
}

struct ModelRun {
  std::vector<SimTime> ends;
  Bytes totalBytes = 0;
};

ModelRun runModel(const ModelTarget& t, AccessPattern p, std::uint32_t members, bool explicitClients,
                  bool failSlow) {
  Environment env = makeEnvironment(t.site, t.kind, 1);
  env.fs->beginPhase(classPhase(p, members));
  if (failSlow) {
    // Degrade the whole fabric early in the transfer (NVMe finishes in
    // ~5 ms; its route is device links, not the client NIC, so hit
    // every link rather than guessing the bottleneck).
    FlowNetwork& net = env.bench->topo().network();
    env.bench->sim().schedule(0.001, [&net] {
      for (std::uint32_t i = 0; i < net.linkCount(); ++i) net.setLinkHealth(LinkId{i}, 0.25);
    });
  }
  ModelRun run;
  const std::uint32_t submits = explicitClients ? members : 1;
  for (std::uint32_t i = 0; i < submits; ++i) {
    IoRequest req = classBaseRequest(p);
    if (!explicitClients) req.members = members;
    env.fs->submit(req, [&run](const IoResult& r) {
      run.ends.push_back(r.endTime);
      run.totalBytes += r.bytes;
    });
  }
  env.bench->sim().run();
  env.fs->endPhase();
  return run;
}

TEST_P(ModelClassEquivalence, ClassMatchesExplicitSymmetricClients) {
  for (AccessPattern p : {AccessPattern::SequentialWrite, AccessPattern::RandomRead}) {
    const ModelRun explicitRun = runModel(target(), p, 4, true, false);
    const ModelRun classRun = runModel(target(), p, 4, false, false);
    ASSERT_EQ(explicitRun.ends.size(), 4u) << toString(p);
    ASSERT_EQ(classRun.ends.size(), 1u) << toString(p);
    for (SimTime end : explicitRun.ends) {
      EXPECT_DOUBLE_EQ(end, classRun.ends[0]) << toString(p);
    }
    EXPECT_EQ(classRun.totalBytes, explicitRun.totalBytes) << toString(p);
  }
}

TEST_P(ModelClassEquivalence, ClassMatchesExplicitClientsUnderFailSlow) {
  const AccessPattern p = AccessPattern::SequentialWrite;
  const ModelRun explicitRun = runModel(target(), p, 4, true, true);
  const ModelRun classRun = runModel(target(), p, 4, false, true);
  ASSERT_EQ(classRun.ends.size(), 1u);
  for (SimTime end : explicitRun.ends) EXPECT_DOUBLE_EQ(end, classRun.ends[0]);
  EXPECT_EQ(classRun.totalBytes, explicitRun.totalBytes);
  // The fault actually bit: degraded completion is later than healthy.
  const ModelRun healthy = runModel(target(), p, 4, false, false);
  EXPECT_GT(classRun.ends[0], healthy.ends[0]);
}

TEST_P(ModelClassEquivalence, SizeOneClassIsLegacyByteIdentical) {
  const AccessPattern p = AccessPattern::RandomRead;
  const ModelRun legacy = runModel(target(), p, 1, true, false);
  const ModelRun sizeOne = runModel(target(), p, 1, false, false);
  ASSERT_EQ(legacy.ends.size(), 1u);
  ASSERT_EQ(sizeOne.ends.size(), 1u);
  EXPECT_DOUBLE_EQ(legacy.ends[0], sizeOne.ends[0]);
  EXPECT_EQ(legacy.totalBytes, sizeOne.totalBytes);
}

std::string modelTargetName(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"LassenVast", "LassenGpfs", "RubyLustre", "WombatNvme"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelClassEquivalence, ::testing::Range(0, 4),
                         modelTargetName);

// ---- retry layer: one timeout, one retry, one counter per class ----

/// Strands the first submit forever (a request parked on a failed
/// component), serves every later submit after a short delay. Records
/// the member count of every attempt.
class StallFirstFs final : public FileSystemModel {
 public:
  explicit StallFirstFs(Simulator& sim, std::size_t stallCount) : sim_(&sim), stall_(stallCount) {}

  const std::string& name() const override { return name_; }
  void beginPhase(const PhaseSpec&) override {}
  void endPhase() override {}
  Bytes totalCapacity() const override { return 0; }
  void submit(const IoRequest& req, IoCallback cb) override {
    memberCounts.push_back(req.members);
    if (submits_++ < stall_) return;  // stranded: no completion, ever
    sim_->schedule(0.05, [this, cb = std::move(cb), req] {
      if (cb) cb(IoResult{sim_->now() - 0.05, sim_->now(), req.bytes * req.members});
    });
  }
  void submitMeta(const MetaRequest&, IoCallback cb) override {
    if (cb) cb(IoResult{});
  }

  std::vector<std::uint32_t> memberCounts;

 private:
  std::string name_ = "stall-first";
  Simulator* sim_;
  std::size_t stall_;
  std::size_t submits_ = 0;
};

TEST(RetryUnderAggregation, TimedOutClassBillsOneRetryNotN) {
  Simulator sim;
  StallFirstFs fs(sim, 1);
  ClientSession session(fs, ClientId{0, 0}, 1);
  session.enableRetry(sim, RetryPolicy{1.0, 4, 0.25, 2.0});
  IoRequest req = classBaseRequest(AccessPattern::SequentialWrite);
  req.members = 64;
  IoResult got{};
  bool done = false;
  session.submitRequest(req, [&](const IoResult& r) {
    got = r;
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.failed);
  EXPECT_EQ(got.bytes, req.bytes * 64);  // aggregate payload delivered
  EXPECT_EQ(session.retries(), 1u) << "a class times out once, not per member";
  EXPECT_EQ(session.failedOps(), 0u);
  // Re-submission preserved the member count.
  ASSERT_EQ(fs.memberCounts.size(), 2u);
  EXPECT_EQ(fs.memberCounts[0], 64u);
  EXPECT_EQ(fs.memberCounts[1], 64u);
}

TEST(RetryUnderAggregation, ExhaustedClassFailsOnce) {
  Simulator sim;
  StallFirstFs fs(sim, 100);  // every attempt strands
  ClientSession session(fs, ClientId{0, 0}, 1);
  session.enableRetry(sim, RetryPolicy{0.5, 2, 0.1, 2.0});
  IoRequest req = classBaseRequest(AccessPattern::SequentialWrite);
  req.members = 1000;
  IoResult got{};
  session.submitRequest(req, [&](const IoResult& r) { got = r; });
  sim.run();
  EXPECT_TRUE(got.failed);
  EXPECT_EQ(got.bytes, 0u);
  EXPECT_EQ(session.retries(), 2u);    // maxRetries, not maxRetries * members
  EXPECT_EQ(session.failedOps(), 1u);  // ONE failed class op
}

/// Completes the first attempt late (after the client timed out and
/// re-submitted), later attempts promptly.
class LateFirstFs final : public FileSystemModel {
 public:
  explicit LateFirstFs(Simulator& sim) : sim_(&sim) {}
  const std::string& name() const override { return name_; }
  void beginPhase(const PhaseSpec&) override {}
  void endPhase() override {}
  Bytes totalCapacity() const override { return 0; }
  void submit(const IoRequest& req, IoCallback cb) override {
    const Seconds delay = first_ ? 10.0 : 0.05;
    first_ = false;
    sim_->schedule(delay, [this, cb = std::move(cb), req, delay] {
      if (cb) cb(IoResult{sim_->now() - delay, sim_->now(), req.bytes * req.members});
    });
  }
  void submitMeta(const MetaRequest&, IoCallback cb) override {
    if (cb) cb(IoResult{});
  }

 private:
  std::string name_ = "late-first";
  Simulator* sim_;
  bool first_ = true;
};

TEST(RetryUnderAggregation, LateClassCompletionSwallowedOnce) {
  Simulator sim;
  LateFirstFs fs(sim);
  ClientSession session(fs, ClientId{0, 0}, 1);
  session.enableRetry(sim, RetryPolicy{1.0, 4, 0.25, 2.0});
  IoRequest req = classBaseRequest(AccessPattern::SequentialWrite);
  req.members = 32;
  int completions = 0;
  session.submitRequest(req, [&](const IoResult&) { ++completions; });
  sim.run();
  EXPECT_EQ(completions, 1) << "the late duplicate must be swallowed";
  EXPECT_EQ(session.retries(), 1u);
  EXPECT_EQ(session.lateCompletions(), 1u) << "one late class completion, not 32";
}

// ---- workload layer: open-loop classes == explicit ranks ----

workload::WorkloadOutcome runOpenLoop(const workload::OpenLoopConfig& cfg, Site site,
                                      StorageKind kind, const JsonValue* storageOverrides) {
  Environment env = makeEnvironment(site, kind, cfg.nodes(), storageOverrides);
  workload::OpenLoopSource source(cfg);
  workload::WorkloadRunner runner(*env.bench, *env.fs);
  return runner.run(source);
}

workload::OpenLoopConfig sharedStreamBase() {
  workload::OpenLoopConfig cfg;
  cfg.ratePerClientHz = 20.0;
  cfg.horizonSec = 2.0;
  cfg.objects = 64;
  cfg.objectBytes = 4 * units::MiB;
  cfg.requestBytes = 128 * units::KiB;
  cfg.readFraction = 0.9;
  cfg.seed = 123;
  cfg.sharedStream = true;  // identical arrival draws in every rank
  return cfg;
}

void expectOutcomesEquivalent(const workload::WorkloadOutcome& a,
                              const workload::WorkloadOutcome& b) {
  EXPECT_EQ(a.bytesMoved, b.bytesMoved);
  EXPECT_EQ(a.opsIssued, b.opsIssued);
  EXPECT_EQ(a.opsCompleted, b.opsCompleted);
  EXPECT_EQ(a.opsFailed, b.opsFailed);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.simElapsed, b.simElapsed);
  EXPECT_EQ(a.clientsTotal(), b.clientsTotal());
  // Latencies demultiplex to the same per-client distribution.
  auto weighted = [](const workload::WorkloadOutcome& out) {
    std::vector<scale::WeightedSample> w;
    for (double v : out.opLatencies) w.push_back({v, out.clientsPerRank});
    return scale::demultiplex(std::move(w));
  };
  const Summary sa = weighted(a);
  const Summary sb = weighted(b);
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
  EXPECT_DOUBLE_EQ(sa.p95, sb.p95);
  EXPECT_DOUBLE_EQ(sa.p99, sb.p99);
  EXPECT_NEAR(sa.mean, sb.mean, 1e-12);
  // Goodput timelines slice-for-slice.
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].gbs, b.timeline[i].gbs) << "slice " << i;
  }
}

TEST(OpenLoopClassEquivalence, ClassOfFourMatchesFourExplicitRanksOnLustre) {
  workload::OpenLoopConfig explicitCfg = sharedStreamBase();
  explicitCfg.clients = 4;
  explicitCfg.clientsPerNode = 4;
  explicitCfg.clientsPerRank = 1;
  workload::OpenLoopConfig classCfg = sharedStreamBase();
  classCfg.clients = 1;
  classCfg.clientsPerNode = 1;
  classCfg.clientsPerRank = 4;
  const auto a = runOpenLoop(explicitCfg, Site::Ruby, StorageKind::Lustre, nullptr);
  const auto b = runOpenLoop(classCfg, Site::Ruby, StorageKind::Lustre, nullptr);
  EXPECT_EQ(a.ranks, 4u);
  EXPECT_EQ(b.ranks, 1u);
  EXPECT_EQ(b.clientsTotal(), 4u);
  expectOutcomesEquivalent(a, b);
}

TEST(OpenLoopClassEquivalence, PartitionInvarianceOnVast) {
  // The same 12 clients as 1, 2 and 4 classes. nconnect=1 keeps every
  // rank on the same NFS session path; clientsPerRank > 1 everywhere
  // keeps VAST reads on the deterministic fractional cache split.
  const JsonValue overrides = mustParse(R"({"nconnect":1})");
  std::vector<workload::WorkloadOutcome> outs;
  for (std::size_t classes : {1u, 2u, 4u}) {
    workload::OpenLoopConfig cfg = sharedStreamBase();
    cfg.clients = classes;
    cfg.clientsPerNode = classes;
    cfg.clientsPerRank = 12 / classes;
    outs.push_back(runOpenLoop(cfg, Site::Lassen, StorageKind::Vast, &overrides));
  }
  EXPECT_EQ(outs[0].clientsTotal(), 12u);
  expectOutcomesEquivalent(outs[0], outs[1]);
  expectOutcomesEquivalent(outs[0], outs[2]);
}

TEST(OpenLoopClassEquivalence, SpecDrivenTrialsAgree) {
  // The same equivalence through the sweep trial layer (spec parsing,
  // runWorkload, JSONL metrics): classes vs explicit ranks produce the
  // same trial line.
  auto doc = [](double clients, double members) {
    JsonValue v = mustParse(R"({"site":"ruby","storage":"lustre","workload":{
      "generator":"openloop","ratePerClientHz":20,"horizonSec":2,
      "objects":64,"objectBytes":4194304,"requestBytes":131072,
      "readFraction":0.9,"seed":123,"sharedStream":true}})");
    JsonObject& w = *(*v.object())["workload"].object();
    w["clients"] = clients;
    w["clientsPerNode"] = clients;
    w["clientsPerRank"] = members;
    return v;
  };
  const sweep::TrialMetrics a = sweep::runTrial("workload", doc(4, 1));
  const sweep::TrialMetrics b = sweep::runTrial("workload", doc(1, 4));
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(sweep::toJsonlLine({sweep::Trial{}, a}), sweep::toJsonlLine({sweep::Trial{}, b}));
}

TEST(OpenLoopClassEquivalence, DemandSigmaSpreadsPerRankRates) {
  workload::OpenLoopConfig cfg = sharedStreamBase();
  cfg.clients = 8;
  cfg.clientsPerNode = 8;
  cfg.sharedStream = false;
  cfg.demandSigma = 1.0;
  const auto hetero = runOpenLoop(cfg, Site::Ruby, StorageKind::Lustre, nullptr);
  cfg.demandSigma = 0.0;
  const auto homo = runOpenLoop(cfg, Site::Ruby, StorageKind::Lustre, nullptr);
  EXPECT_GT(hetero.opsIssued, 0u);
  EXPECT_GT(homo.opsIssued, 0u);
  // Heterogeneous demand changes the arrival pattern but not the mean
  // rate: op counts stay in the same ballpark.
  const double ratio =
      static_cast<double>(hetero.opsIssued) / static_cast<double>(homo.opsIssued);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// ---- IOR under aggregation ----

TEST(IorClassAggregation, MembersMultiplyBytesExactly) {
  IorConfig base;
  base.access = AccessPattern::SequentialWrite;
  base.nodes = 1;
  base.procsPerNode = 2;
  base.segments = 2;
  base.blockSize = 4 * units::MiB;
  base.transferSize = units::MiB;
  base.mode = IorConfig::Mode::PerOp;
  auto run = [&](std::size_t members) {
    IorConfig cfg = base;
    cfg.clientsPerRank = members;
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, cfg.nodes);
    workload::IorSource source(cfg);
    workload::WorkloadRunner runner(*env.bench, *env.fs);
    return runner.run(source);
  };
  const auto one = run(1);
  const auto four = run(4);
  // Closed loop: every rank issues the same op count whatever the
  // contention, so payload scales exactly with the member count.
  EXPECT_EQ(four.bytesMoved, 4 * one.bytesMoved);
  EXPECT_EQ(four.opsCompleted, 4 * one.opsCompleted);
  EXPECT_EQ(four.clientsTotal(), 4 * one.clientsTotal());
  EXPECT_EQ(four.ranks, one.ranks);
  EXPECT_GE(four.elapsed, one.elapsed);  // 4x the demand cannot finish sooner
}

// ---- engine: flat memory in the member count ----

TEST(SimulatorScale, PeakPendingEventsIsAHighWaterMark) {
  Simulator sim;
  EXPECT_EQ(sim.peakPendingEvents(), 0u);
  for (int i = 0; i < 5; ++i) sim.schedule(1.0 + i, [] {});
  EXPECT_EQ(sim.peakPendingEvents(), 5u);
  sim.run();
  EXPECT_EQ(sim.peakPendingEvents(), 5u);  // high-water, not current depth
}

TEST(OpenLoopScale, EventFootprintFlatInMembers) {
  // 8 classes at 1k members vs 100k members: two orders of magnitude
  // more clients, the same op streams — the event high-water mark must
  // not grow with the member count once the system is saturated.
  auto run = [](std::size_t members) {
    workload::OpenLoopConfig cfg;
    cfg.clients = 8;
    cfg.clientsPerNode = 8;
    cfg.clientsPerRank = members;
    cfg.ratePerClientHz = 5.0;
    cfg.horizonSec = 2.0;
    cfg.seed = 42;
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, cfg.nodes(), nullptr);
    workload::OpenLoopSource source(cfg);
    workload::WorkloadRunner runner(*env.bench, *env.fs);
    const workload::WorkloadOutcome out = runner.run(source);
    return std::pair<std::size_t, workload::WorkloadOutcome>(
        env.bench->sim().peakPendingEvents(), out);
  };
  const auto [peak1k, out1k] = run(1000);
  const auto [peak100k, out100k] = run(100000);
  EXPECT_EQ(out1k.clientsTotal(), 8000u);
  EXPECT_EQ(out100k.clientsTotal(), 800000u);
  EXPECT_EQ(out1k.ranks, out100k.ranks);
  EXPECT_LE(peak100k, peak1k * 2) << "event footprint must track classes, not clients";
}

}  // namespace
}  // namespace hcsim
