# Empty dependencies file for test_unifyfs.
# This may be replaced when dependencies are built.
