#include "unifyfs/unifyfs_model.hpp"

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"

namespace hcsim {
namespace {

UnifyFsConfig defaultCfg(UnifyFsPlacement placement, const std::string& tag) {
  UnifyFsConfig cfg;
  cfg.name = "UnifyFS-" + tag;
  cfg.placement = placement;
  return cfg;
}

struct Harness {
  explicit Harness(std::size_t nodes, UnifyFsPlacement placement,
                   const std::string& tag = "t")
      : bench(Machine::lassen(), nodes),
        fs(std::make_unique<UnifyFsModel>(bench.sim(), bench.topo(),
                                          defaultCfg(placement, tag), bench.clientNics())) {}
  TestBench bench;
  std::unique_ptr<UnifyFsModel> fs;

  double bandwidthGBs(AccessPattern access, std::size_t nodes, bool reorder = true) {
    IorRunner runner(bench, *fs);
    IorConfig cfg = IorConfig::scalability(access, nodes, 8);
    cfg.segments = 256;
    cfg.reorderTasks = reorder;
    return units::toGBs(runner.run(cfg).bandwidth.mean);
  }
};

TEST(UnifyFsConfig, ValidateRejectsBadValues) {
  UnifyFsConfig c;
  c.spillDevicesPerNode = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = UnifyFsConfig{};
  c.memoryBandwidth = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = UnifyFsConfig{};
  c.serverThreadsPerNode = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(UnifyFsModel, PlacementToString) {
  EXPECT_STREQ(toString(UnifyFsPlacement::LocalFirst), "local-first");
  EXPECT_STREQ(toString(UnifyFsPlacement::Striped), "striped");
}

TEST(UnifyFsModel, LocalFirstWritesScaleWithNodes) {
  Harness two(2, UnifyFsPlacement::LocalFirst, "w2");
  Harness eight(8, UnifyFsPlacement::LocalFirst, "w8");
  const double bw2 = two.bandwidthGBs(AccessPattern::SequentialWrite, 2);
  const double bw8 = eight.bandwidthGBs(AccessPattern::SequentialWrite, 8);
  EXPECT_NEAR(bw8 / bw2, 4.0, 0.5);  // embarrassingly parallel
}

TEST(UnifyFsModel, LocalFirstWritesBeatStripedWrites) {
  Harness local(4, UnifyFsPlacement::LocalFirst, "lw");
  Harness striped(4, UnifyFsPlacement::Striped, "sw");
  const double lw = local.bandwidthGBs(AccessPattern::SequentialWrite, 4);
  const double sw = striped.bandwidthGBs(AccessPattern::SequentialWrite, 4);
  EXPECT_GT(lw, sw);  // striping pushes (N-1)/N of bytes over the fabric
}

TEST(UnifyFsModel, RemoteReadsSlowerThanLocalReads) {
  // Reader == writer: local-log reads. Reader != writer: cross-node.
  Harness h(4, UnifyFsPlacement::LocalFirst, "rr");
  const double localRead = h.bandwidthGBs(AccessPattern::SequentialRead, 4, /*reorder=*/false);
  const double remoteRead = h.bandwidthGBs(AccessPattern::SequentialRead, 4, /*reorder=*/true);
  EXPECT_GT(localRead, remoteRead);
}

TEST(UnifyFsModel, StripedReadsBalancedRegardlessOfReader) {
  Harness h(4, UnifyFsPlacement::Striped, "sr");
  const double same = h.bandwidthGBs(AccessPattern::SequentialRead, 4, false);
  const double other = h.bandwidthGBs(AccessPattern::SequentialRead, 4, true);
  EXPECT_NEAR(same / other, 1.0, 0.15);
}

TEST(UnifyFsModel, SharedFileBarelyPenalized) {
  // UnifyFS exists to make N-1 checkpointing cheap.
  Harness h(4, UnifyFsPlacement::LocalFirst, "n1");
  IorRunner runner(h.bench, *h.fs);
  IorConfig nn = IorConfig::scalability(AccessPattern::SequentialWrite, 4, 8);
  nn.segments = 256;
  IorConfig n1 = nn;
  n1.filePerProcess = false;
  const double nnBw = units::toGBs(runner.run(nn).bandwidth.mean);
  const double n1Bw = units::toGBs(runner.run(n1).bandwidth.mean);
  EXPECT_GT(n1Bw, 0.9 * nnBw);
}

TEST(UnifyFsModel, FlushPersistsToBackingStore) {
  TestBench bench(Machine::lassen(), 4);
  UnifyFsModel unify(bench.sim(), bench.topo(), defaultCfg(UnifyFsPlacement::LocalFirst, "fl"),
                     bench.clientNics());
  auto gpfs = bench.attachGpfs(gpfsOnLassen());
  bool flushed = false;
  const SimTime start = bench.sim().now();
  unify.flushToBackingStore(*gpfs, units::GiB, [&] { flushed = true; });
  bench.sim().run();
  EXPECT_TRUE(flushed);
  EXPECT_GT(bench.sim().now(), start);  // took simulated time
}

TEST(UnifyFsModel, MetadataOpCompletesAtKvLatency) {
  Harness h(2, UnifyFsPlacement::LocalFirst, "md");
  IoRequest req;
  req.client = {0, 0};
  req.bytes = 0;
  SimTime end = 0;
  h.fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  h.bench.sim().run();
  EXPECT_NEAR(end, h.fs->config().metadataLatency, 1e-9);
}

TEST(UnifyFsModel, CapacityScalesWithNodes) {
  Harness h(4, UnifyFsPlacement::LocalFirst, "cap");
  EXPECT_EQ(h.fs->totalCapacity(), 4 * h.fs->config().capacityPerNode);
}

}  // namespace
}  // namespace hcsim
