file(REMOVE_RECURSE
  "CMakeFiles/compare_storage.dir/compare_storage.cpp.o"
  "CMakeFiles/compare_storage.dir/compare_storage.cpp.o.d"
  "compare_storage"
  "compare_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
