#include "ior/ior_config.hpp"

#include <sstream>
#include <stdexcept>

namespace hcsim {

void IorConfig::validate() const {
  if (blockSize == 0 || transferSize == 0 || segments == 0) {
    throw std::invalid_argument("IorConfig: geometry must be non-zero");
  }
  if (blockSize % transferSize != 0) {
    throw std::invalid_argument("IorConfig: blockSize must be a multiple of transferSize");
  }
  if (nodes == 0 || procsPerNode == 0) {
    throw std::invalid_argument("IorConfig: nodes and procsPerNode must be > 0");
  }
  if (clientsPerRank == 0) throw std::invalid_argument("IorConfig: clientsPerRank must be > 0");
  if (repetitions == 0) throw std::invalid_argument("IorConfig: repetitions must be > 0");
  if (noiseStdDevFrac < 0.0) throw std::invalid_argument("IorConfig: noise must be >= 0");
  if (stonewallSeconds < 0.0) {
    throw std::invalid_argument("IorConfig: stonewallSeconds must be >= 0");
  }
  if (stonewallSeconds > 0.0 && mode != Mode::PerOp) {
    throw std::invalid_argument("IorConfig: stonewalling requires Mode::PerOp");
  }
  if (fsyncPerWrite && !isRead(access) && mode == Mode::Coalesced && transfersPerProc() > 1) {
    // Allowed, but the per-op path is the accurate one; callers that care
    // use singleNodeFsync(). No throw — documented approximation.
  }
}

std::string IorConfig::describe() const {
  std::ostringstream os;
  os << "ior -a POSIX " << (filePerProcess ? "-F " : "") << "-b " << blockSize << " -t "
     << transferSize << " -s " << segments << (fsyncPerWrite ? " -e" : "")
     << (reorderTasks ? " -C" : "") << " [" << toString(access) << ", " << nodes << "x"
     << procsPerNode << " procs]";
  return os.str();
}

IorConfig IorConfig::scalability(AccessPattern access, std::size_t nodes,
                                 std::size_t procsPerNode) {
  IorConfig c;
  c.access = access;
  c.blockSize = units::MiB;
  c.transferSize = units::MiB;
  c.segments = 3000;  // ~3 GiB/proc; 44 procs -> ~129 GiB/node ("~120 GB")
  c.nodes = nodes;
  c.procsPerNode = procsPerNode;
  c.mode = Mode::Coalesced;
  c.reorderTasks = true;
  return c;
}

IorConfig IorConfig::singleNodeFsync(AccessPattern access, std::size_t procs) {
  IorConfig c;
  c.access = access;
  c.blockSize = units::MiB;
  c.transferSize = units::MiB;
  c.segments = 256;  // 256 MiB per process keeps the per-op run tractable
  c.nodes = 1;
  c.procsPerNode = procs;
  c.fsyncPerWrite = !isRead(access);
  c.mode = Mode::PerOp;
  return c;
}

}  // namespace hcsim
