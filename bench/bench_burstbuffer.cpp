// Extension bench: the OTHER highly configurable system — a UnifyFS-like
// burst buffer (paper §I) — exercising its configuration knob the paper
// highlights: the data placement strategy. Checkpoint/restart (HACC-like)
// on 8 Lassen nodes, plus the flush-to-GPFS stage.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"
#include "unifyfs/unifyfs_model.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

struct Numbers {
  double writeGBs;
  double localReadGBs;
  double remoteReadGBs;
  Seconds flushTime;
};

Numbers runPlacement(UnifyFsPlacement placement) {
  TestBench bench(Machine::lassen(), 8);
  UnifyFsConfig cfg;
  cfg.name = std::string("UnifyFS-") + toString(placement);
  cfg.placement = placement;
  UnifyFsModel unify(bench.sim(), bench.topo(), cfg, bench.clientNics());
  auto gpfs = bench.attachGpfs(gpfsOnLassen());
  IorRunner runner(bench, unify);

  Numbers out{};
  IorConfig ckpt = IorConfig::scalability(AccessPattern::SequentialWrite, 8, 16);
  ckpt.segments = 512;
  out.writeGBs = units::toGBs(runner.run(ckpt).bandwidth.mean);

  IorConfig readSame = IorConfig::scalability(AccessPattern::SequentialRead, 8, 16);
  readSame.segments = 512;
  readSame.reorderTasks = false;  // restart on the same nodes
  out.localReadGBs = units::toGBs(runner.run(readSame).bandwidth.mean);

  IorConfig readOther = readSame;
  readOther.reorderTasks = true;  // restart rescheduled elsewhere
  out.remoteReadGBs = units::toGBs(runner.run(readOther).bandwidth.mean);

  const SimTime before = bench.sim().now();
  bool done = false;
  unify.flushToBackingStore(*gpfs, 8ull * units::GiB, [&] { done = true; });
  bench.sim().run();
  out.flushTime = done ? bench.sim().now() - before : -1.0;
  return out;
}

}  // namespace

int main() {
  std::printf("== Burst buffer (UnifyFS-like): data placement ablation ==\n");
  std::printf("8 Lassen nodes x 16 procs, checkpoint/restart + flush to GPFS\n\n");

  ResultTable t("placement policy comparison");
  t.setHeader({"placement", "checkpoint GB/s", "restart(same nodes) GB/s",
               "restart(other nodes) GB/s", "flush 64 GiB -> GPFS (s)"});
  for (UnifyFsPlacement p : {UnifyFsPlacement::LocalFirst, UnifyFsPlacement::Striped}) {
    const Numbers n = runPlacement(p);
    t.addRow({std::string(toString(p)), n.writeGBs, n.localReadGBs, n.remoteReadGBs,
              n.flushTime});
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("The configurability trade-off in one table: local-first checkpoints at\n"
              "node-local speed but pays on rescheduled restarts; striping evens both.\n");
  return 0;
}
