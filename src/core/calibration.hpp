#pragma once
// Calibration targets — every quantitative claim the paper makes, as
// constants, plus a check helper used by EXPERIMENTS.md generation and
// the regression tests. The reproduction requirement is *shape*: who
// wins, by roughly what factor, where saturation falls — so checks carry
// generous tolerance factors.

#include <string>
#include <vector>

namespace hcsim::calibration {

// ---- §VII takeaways ----
inline constexpr double kRdmaVsTcpFactor = 8.0;          ///< "up to 8x higher bandwidths"
inline constexpr double kTcpPerNodeGBs = 1.0;            ///< "around 1 GB/s per node"
inline constexpr double kRdmaPerNodeGBs = 8.0;           ///< "approximately 8 GB/s per node"
inline constexpr double kGpfsSeqReadPerNodeGBs = 14.5;   ///< GPFS sequential reads
inline constexpr double kGpfsRandReadPerNodeGBs = 1.4;   ///< GPFS random reads
inline constexpr double kGpfsRandomDropFraction = 0.90;  ///< "90% performance drop"
inline constexpr double kVastSeqReadPerNodeGBs = 9.0;    ///< RDMA VAST sequential
inline constexpr double kVastRandReadPerNodeGBs = 7.0;   ///< RDMA VAST random

// ---- §V observations ----
inline constexpr double kWombatSingleNodeWriteGBs = 5.8;   ///< fsync, 32 procs
inline constexpr double kWombatSingleNodeReadGBs = 26.6;   ///< data analytics, 32 procs
inline constexpr double kWombatMlPeakGBs = 22.5;           ///< random read, 4 nodes
inline constexpr std::size_t kWombatMlPeakNodes = 4;       ///< global max location
inline constexpr double kVastVsNvmeSingleNodeFactor = 5.0; ///< "almost 5x"
inline constexpr std::size_t kGpfsSeqReadSaturationNodes = 32;  ///< Fig 2a saturation
inline constexpr std::size_t kVastLassenStagnationNodes = 32;   ///< "abrupt stagnation after 32"

// ---- Fixed experiment geometry ----
inline constexpr std::size_t kLassenProcsPerNode = 44;
inline constexpr std::size_t kWombatProcsPerNode = 48;
inline constexpr std::size_t kScalabilityMaxNodesLassen = 128;
inline constexpr std::size_t kScalabilityMaxNodesWombat = 8;
inline constexpr std::size_t kSingleNodeMaxProcs = 32;
inline constexpr std::size_t kRepetitions = 10;  ///< "we repeated our tests 10 times"

/// One paper-vs-measured comparison row.
struct Check {
  std::string name;
  double paperValue = 0.0;
  double measured = 0.0;
  /// Accepted multiplicative band: pass iff measured/paper in
  /// [1/tolerance, tolerance].
  double tolerance = 2.0;

  bool pass() const;
  double ratio() const;
};

/// Render rows as a markdown table fragment (EXPERIMENTS.md).
std::string toMarkdown(const std::vector<Check>& checks);

}  // namespace hcsim::calibration
