// Invariants every storage model must satisfy, swept across all the
// paper-defined (site, storage) environments.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace hcsim {
namespace {

struct Target {
  Site site;
  StorageKind kind;
};

const Target kTargets[] = {
    {Site::Lassen, StorageKind::Vast},   {Site::Lassen, StorageKind::Gpfs},
    {Site::Ruby, StorageKind::Vast},     {Site::Ruby, StorageKind::Lustre},
    {Site::Quartz, StorageKind::Vast},   {Site::Quartz, StorageKind::Lustre},
    {Site::Wombat, StorageKind::Vast},   {Site::Wombat, StorageKind::NvmeLocal},
};

class ModelInvariantTest : public ::testing::TestWithParam<int> {
 protected:
  Target target() const { return kTargets[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(ModelInvariantTest, BasicShape) {
  Environment env = makeEnvironment(target().site, target().kind, 2);
  EXPECT_FALSE(env.fs->name().empty());
  EXPECT_GT(env.fs->totalCapacity(), 0u);
  EXPECT_GE(env.fs->clientParallelism(), 1u);
}

TEST_P(ModelInvariantTest, DataRequestConservesBytesAndTakesTime) {
  Environment env = makeEnvironment(target().site, target().kind, 2);
  for (AccessPattern p : {AccessPattern::SequentialWrite, AccessPattern::SequentialRead,
                          AccessPattern::RandomRead}) {
    PhaseSpec ph;
    ph.pattern = p;
    ph.requestSize = units::MiB;
    ph.nodes = 2;
    ph.procsPerNode = 4;
    ph.workingSetBytes = 256 * units::MiB;
    env.fs->beginPhase(ph);
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = 32 * units::MiB;
    req.pattern = p;
    req.ops = 32;
    IoResult got{};
    bool done = false;
    env.fs->submit(req, [&](const IoResult& r) {
      got = r;
      done = true;
    });
    env.bench->sim().run();
    env.fs->endPhase();
    ASSERT_TRUE(done) << toString(p);
    EXPECT_EQ(got.bytes, req.bytes) << toString(p);
    EXPECT_GT(got.elapsed(), 0.0) << toString(p);
    // Sanity ceiling: nothing moves 32 MiB in under a microsecond.
    EXPECT_GT(got.elapsed(), 1e-6) << toString(p);
  }
}

TEST_P(ModelInvariantTest, MetadataOpCompletesQuickly) {
  Environment env = makeEnvironment(target().site, target().kind, 1);
  MetaRequest req;
  req.client = {0, 0};
  req.op = MetaOp::Create;
  req.fileId = 7;
  SimTime end = 0;
  env.fs->submitMeta(req, [&](const IoResult& r) { end = r.endTime; });
  env.bench->sim().run();
  EXPECT_GT(end, 0.0);
  EXPECT_LT(end, 0.1);  // metadata is sub-100ms everywhere
}

TEST_P(ModelInvariantTest, ConcurrentRequestsAllComplete) {
  Environment env = makeEnvironment(target().site, target().kind, 2);
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  ph.nodes = 2;
  ph.procsPerNode = 8;
  env.fs->beginPhase(ph);
  std::size_t done = 0;
  for (std::uint32_t n = 0; n < 2; ++n) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      IoRequest req;
      req.client = {n, p};
      req.fileId = n * 8 + p + 1;
      req.bytes = 16 * units::MiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = 16;
      env.fs->submit(req, [&](const IoResult&) { ++done; });
    }
  }
  env.bench->sim().run();
  EXPECT_EQ(done, 16u);
  EXPECT_TRUE(env.bench->sim().empty());
}

TEST_P(ModelInvariantTest, FasterPatternNeverSlowerThanRandom) {
  // Sequential reads are never slower than random reads of the same
  // volume on any modelled system.
  Environment env = makeEnvironment(target().site, target().kind, 1);
  const auto timeFor = [&](AccessPattern p) {
    PhaseSpec ph;
    ph.pattern = p;
    ph.requestSize = units::MiB;
    ph.nodes = 1;
    ph.procsPerNode = 4;
    ph.workingSetBytes = 50ull * units::TB;  // defeat caches uniformly
    env.fs->beginPhase(ph);
    IoRequest req;
    req.client = {0, 0};
    req.fileId = 1;
    req.bytes = 64 * units::MiB;
    req.pattern = p;
    req.ops = 64;
    req.streams = 4;
    SimTime end = 0;
    env.fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
    const SimTime start = env.bench->sim().now();
    env.bench->sim().run();
    env.fs->endPhase();
    return end - start;
  };
  EXPECT_LE(timeFor(AccessPattern::SequentialRead),
            timeFor(AccessPattern::RandomRead) * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, ModelInvariantTest,
                         ::testing::Range(0, static_cast<int>(std::size(kTargets))));

}  // namespace
}  // namespace hcsim
