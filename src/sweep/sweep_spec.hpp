#pragma once
// hcsim::sweep — declarative what-if sweeps over storage configurations.
//
// A SweepSpec names a base trial config (a JSON object with "site",
// "storage", the workload section and optional "storageConfig"
// overrides) plus a set of axes. Each axis addresses one config field by
// the dotted JSON path the config/serialize layer emits — e.g.
// "ior.segments", "storageConfig.gateway.latency" — and lists the values
// to try. The spec expands to independent trials: the full cartesian
// grid, or a seeded random sample of it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace hcsim::sweep {

/// One sweep dimension: a dotted JSON path into the trial config and the
/// values to try there.
struct Axis {
  std::string path;
  std::vector<JsonValue> values;
};

struct Sampling {
  enum class Mode { Grid, Random };
  Mode mode = Mode::Grid;
  std::size_t samples = 0;  ///< Random only: how many trials to draw.
  std::uint64_t seed = 1;   ///< Random only: sampler seed.
};

struct SweepSpec {
  std::string name = "sweep";
  std::string experiment = "ior";  ///< "ior" or "dlio"
  JsonValue base;                  ///< config object every trial starts from
  std::vector<Axis> axes;
  Sampling sampling;

  /// Number of points in the full cartesian grid (1 with no axes).
  std::size_t gridSize() const;
  /// Number of trials the spec expands to (grid size or sample count).
  std::size_t trialCount() const;
};

JsonValue toJson(const SweepSpec& spec);
bool fromJson(const JsonValue& j, SweepSpec& out);
/// Load a spec from a JSON file.
bool loadSpec(const std::string& path, SweepSpec& out);

/// Deep copy a JSON tree. JsonValue's copy constructor shares arrays and
/// objects (shared_ptr); trials handed to worker threads need their own.
JsonValue deepCopy(const JsonValue& v);

/// Walk a dotted path; nullptr when any component is absent.
const JsonValue* jsonPathGet(const JsonValue& root, const std::string& path);

/// Set a dotted path, creating intermediate objects as needed. Returns
/// false when an intermediate component exists but is not an object.
bool jsonPathSet(JsonValue& root, const std::string& path, JsonValue value);

/// One expanded trial: the base config with one value chosen per axis.
struct Trial {
  std::size_t index = 0;
  JsonValue config;  ///< deep-copied — safe to hand to a worker thread
  std::vector<std::pair<std::string, JsonValue>> params;  ///< axis path -> value
};

/// Expand the spec into concrete trials. Grid order is row-major with
/// the LAST axis fastest; random sampling is deterministic in
/// sampling.seed. Throws std::invalid_argument when an axis path
/// collides with a non-object value in the base config.
std::vector<Trial> expandTrials(const SweepSpec& spec);

}  // namespace hcsim::sweep
