#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/units.hpp"

namespace hcsim {

Histogram::Histogram(double minValue, double maxValue, std::size_t bins)
    : lo_(minValue), hi_(maxValue) {
  if (!(minValue > 0.0) || !(maxValue > minValue)) {
    throw std::invalid_argument("Histogram: need 0 < minValue < maxValue");
  }
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  logLo_ = std::log(lo_);
  logStep_ = (std::log(hi_) - logLo_) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

std::size_t Histogram::binFor(double value) const {
  const double idx = (std::log(value) - logLo_) / logStep_;
  return static_cast<std::size_t>(idx);
}

void Histogram::add(double value) {
  ++total_;
  if (!(value >= lo_)) {  // also catches NaN and <= 0
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  ++counts_[std::min(binFor(value), counts_.size() - 1)];
}

void Histogram::add(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::binLowerBound(std::size_t bin) const {
  return std::exp(logLo_ + logStep_ * static_cast<double>(bin));
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      // Interpolate in log space (bins are log-spaced).
      return std::exp(std::log(binLowerBound(i)) +
                      frac * (std::log(binUpperBound(i)) - std::log(binLowerBound(i))));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  if (underflow_ > 0) {
    os << "        < " << formatSeconds(lo_) << "  " << underflow_ << "\n";
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::size_t bar = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(counts_[i]) * width / peak));
    char label[64];
    std::snprintf(label, sizeof label, "%10s..%-10s", formatSeconds(binLowerBound(i)).c_str(),
                  formatSeconds(binUpperBound(i)).c_str());
    os << label << ' ' << std::string(bar, '#') << ' ' << counts_[i] << "\n";
  }
  if (overflow_ > 0) {
    os << "       >= " << formatSeconds(hi_) << "  " << overflow_ << "\n";
  }
  return os.str();
}

}  // namespace hcsim
