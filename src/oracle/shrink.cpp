#include "oracle/shrink.hpp"

#include <cmath>
#include <sstream>

#include "sweep/sweep_spec.hpp"

namespace hcsim::oracle {

ShrinkResult bisectAxis(const JsonValue& base, const std::string& axis, double lo, double hi,
                        bool integerAxis, const PairFails& pairFails, std::size_t maxSteps) {
  ShrinkResult r;
  r.axis = axis;
  r.lo = lo;
  r.hi = hi;
  for (std::size_t step = 0; step < maxSteps; ++step) {
    if (integerAxis && r.hi - r.lo <= 1.0) break;
    double mid = (r.lo + r.hi) / 2.0;
    if (integerAxis) mid = std::floor(mid);
    if (mid <= r.lo || mid >= r.hi) break;
    ++r.probes;
    if (pairFails(r.lo, mid)) {
      r.hi = mid;
      continue;
    }
    ++r.probes;
    if (pairFails(mid, r.hi)) {
      r.lo = mid;
      continue;
    }
    // Neither half fails alone: the drop only shows across the span.
    r.spanning = true;
    break;
  }
  r.minimalConfig = sweep::deepCopy(base);
  sweep::jsonPathSet(r.minimalConfig, axis, JsonValue(r.hi));
  std::ostringstream os;
  os << "axis '" << axis << "' shrunk to " << (r.spanning ? "spanning interval [" : "[") << r.lo
     << ", " << r.hi << "] (" << r.probes << " probes); minimal failing config: "
     << writeJson(r.minimalConfig);
  r.summary = os.str();
  return r;
}

}  // namespace hcsim::oracle
