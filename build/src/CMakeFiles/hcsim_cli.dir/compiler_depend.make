# Empty compiler generated dependencies file for hcsim_cli.
# This may be replaced when dependencies are built.
