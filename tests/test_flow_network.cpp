#include "net/flow_network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcsim {
namespace {

struct Harness {
  Simulator sim;
  FlowNetwork net{sim};
};

TEST(FlowNetwork, SingleFlowUsesFullLink) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);  // 100 B/s
  SimTime end = -1;
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 10.0);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  std::vector<SimTime> ends;
  for (int i = 0; i < 2; ++i) {
    h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { ends.push_back(c.endTime); });
  }
  h.sim.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(ends[0], 20.0, 1e-9);
  EXPECT_NEAR(ends[1], 20.0, 1e-9);
}

TEST(FlowNetwork, RateCapLimitsBelowLinkShare) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime end = -1;
  FlowSpec spec{1000, {l}};
  spec.rateCap = 10.0;
  h.net.startFlow(spec, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 100.0);
}

TEST(FlowNetwork, CappedFlowLeavesHeadroomToOthers) {
  // Max-min: capped flow gets 10, the other gets 90.
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime endCapped = -1, endFree = -1;
  FlowSpec capped{1000, {l}};
  capped.rateCap = 10.0;
  h.net.startFlow(capped, [&](const FlowCompletion& c) { endCapped = c.endTime; });
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { endFree = c.endTime; });
  h.sim.run();
  // Free flow: 1000 B at 90 B/s = 11.1s. Capped: 100s.
  EXPECT_NEAR(endFree, 1000.0 / 90.0, 1e-6);
  EXPECT_NEAR(endCapped, 100.0, 1e-6);
}

TEST(FlowNetwork, BottleneckIsMinAlongRoute) {
  Harness h;
  const LinkId fast = h.net.addLink("fast", 1000.0);
  const LinkId slow = h.net.addLink("slow", 10.0);
  SimTime end = -1;
  h.net.startFlow({100, {fast, slow}}, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 10.0);
}

TEST(FlowNetwork, MaxMinClassicTriangle) {
  // Two links A(100), B(100). Flow1 uses A, Flow2 uses B, Flow3 uses A+B.
  // Max-min: all start at 50; flow1/flow2 then grab leftover: 50 each ->
  // flows on single links rise to 50 + remaining... progressive filling
  // yields rate(f3)=50, rate(f1)=rate(f2)=50. After f3 finishes f1/f2 get 100.
  Harness h;
  const LinkId a = h.net.addLink("a", 100.0);
  const LinkId b = h.net.addLink("b", 100.0);
  SimTime e1 = -1, e2 = -1, e3 = -1;
  h.net.startFlow({10000, {a}}, [&](const FlowCompletion& c) { e1 = c.endTime; });
  h.net.startFlow({10000, {b}}, [&](const FlowCompletion& c) { e2 = c.endTime; });
  h.net.startFlow({1000, {a, b}}, [&](const FlowCompletion& c) { e3 = c.endTime; });
  h.sim.run();
  EXPECT_NEAR(e3, 20.0, 1e-6);  // 1000 B at 50 B/s
  // f1: 20s at 50 B/s = 1000 B done, then 9000 B at 100 B/s = 90s more.
  EXPECT_NEAR(e1, 110.0, 1e-6);
  EXPECT_NEAR(e2, 110.0, 1e-6);
}

TEST(FlowNetwork, DepartureRerates) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime eShort = -1, eLong = -1;
  h.net.startFlow({500, {l}}, [&](const FlowCompletion& c) { eShort = c.endTime; });
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { eLong = c.endTime; });
  h.sim.run();
  // Both at 50 B/s; short ends at 10s (500B). Long has 500B left, now at
  // 100 B/s -> ends at 15s.
  EXPECT_NEAR(eShort, 10.0, 1e-9);
  EXPECT_NEAR(eLong, 15.0, 1e-9);
}

TEST(FlowNetwork, ArrivalRerates) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime e1 = -1, e2 = -1;
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { e1 = c.endTime; });
  // Second flow arrives at t=5 (after 500B of flow1 moved at 100 B/s).
  h.sim.schedule(5.0, [&] {
    h.net.startFlow({250, {l}}, [&](const FlowCompletion& c) { e2 = c.endTime; });
  });
  h.sim.run();
  // From t=5: both at 50 B/s. Flow2: 250B -> ends t=10. Flow1: 250B moved
  // by t=10 (250 left), then 100 B/s -> ends t=12.5.
  EXPECT_NEAR(e2, 10.0, 1e-9);
  EXPECT_NEAR(e1, 12.5, 1e-9);
}

TEST(FlowNetwork, StartupLatencyDelaysTransfer) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime end = -1;
  FlowSpec spec{1000, {l}};
  spec.startupLatency = 2.0;
  h.net.startFlow(spec, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 12.0);
}

TEST(FlowNetwork, ZeroByteFlowCompletesAfterLatency) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime end = -1;
  FlowSpec spec{0, {l}};
  spec.startupLatency = 3.0;
  h.net.startFlow(spec, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 3.0);
}

TEST(FlowNetwork, EmptyRouteUsesRateCap) {
  Harness h;
  SimTime end = -1;
  FlowSpec spec{1000, {}};
  spec.rateCap = 100.0;
  h.net.startFlow(spec, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.run();
  EXPECT_DOUBLE_EQ(end, 10.0);
}

TEST(FlowNetwork, CompletionReportsBytesAndStart) {
  Harness h;
  const LinkId l = h.net.addLink("l", 10.0);
  FlowCompletion got{};
  h.sim.schedule(1.0, [&] {
    h.net.startFlow({50, {l}}, [&](const FlowCompletion& c) { got = c; });
  });
  h.sim.run();
  EXPECT_EQ(got.bytes, 50u);
  EXPECT_DOUBLE_EQ(got.startTime, 1.0);
  EXPECT_DOUBLE_EQ(got.endTime, 6.0);
}

TEST(FlowNetwork, BytesCarriedConservation) {
  Harness h;
  const LinkId a = h.net.addLink("a", 100.0);
  const LinkId b = h.net.addLink("b", 40.0);
  for (int i = 0; i < 7; ++i) {
    h.net.startFlow({1000, {a, b}}, nullptr);
  }
  h.sim.run();
  EXPECT_NEAR(h.net.link(a).bytesCarried, 7000.0, 1.0);
  EXPECT_NEAR(h.net.link(b).bytesCarried, 7000.0, 1.0);
}

TEST(FlowNetwork, SetLinkCapacityReratesInFlight) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  SimTime end = -1;
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.schedule(5.0, [&] { h.net.setLinkCapacity(l, 50.0); });
  h.sim.run();
  // 500B in first 5s, remaining 500B at 50 B/s -> ends at 15s.
  EXPECT_NEAR(end, 15.0, 1e-9);
}

TEST(FlowNetwork, ZeroCapacityLinkStallsUntilRaised) {
  Harness h;
  const LinkId l = h.net.addLink("l", 0.0);
  SimTime end = -1;
  h.net.startFlow({100, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.schedule(2.0, [&] { h.net.setLinkCapacity(l, 100.0); });
  h.sim.runUntil(100.0);
  EXPECT_NEAR(end, 3.0, 1e-9);
}

TEST(FlowNetwork, ReplaceLinkReroutesInFlight) {
  Harness h;
  const LinkId a = h.net.addLink("a", 100.0);
  const LinkId b = h.net.addLink("b", 50.0);
  SimTime end = -1;
  h.net.startFlow({1000, {a}}, [&](const FlowCompletion& c) { end = c.endTime; });
  // At t=5 (500B moved at 100 B/s), fail over a -> b.
  h.sim.schedule(5.0, [&] { EXPECT_EQ(h.net.replaceLinkInFlows(a, b), 1u); });
  h.sim.run();
  // Remaining 500B at 50 B/s: ends at 15s.
  EXPECT_NEAR(end, 15.0, 1e-9);
}

TEST(FlowNetwork, ReplaceLinkNoMatchesIsNoop) {
  Harness h;
  const LinkId a = h.net.addLink("a", 100.0);
  const LinkId b = h.net.addLink("b", 100.0);
  const LinkId c = h.net.addLink("c", 100.0);
  h.net.startFlow({1000, {a}}, nullptr);
  EXPECT_EQ(h.net.replaceLinkInFlows(b, c), 0u);
  h.sim.run();
}

TEST(FlowNetwork, StalledFlowRescuedByFailover) {
  // A flow stranded on a zero-capacity link completes once rerouted —
  // and the simulator must not livelock while it is stalled.
  Harness h;
  const LinkId dead = h.net.addLink("dead", 100.0);
  const LinkId live = h.net.addLink("live", 100.0);
  SimTime end = -1;
  h.net.startFlow({1000, {dead}}, [&](const FlowCompletion& c) { end = c.endTime; });
  h.sim.schedule(1.0, [&] { h.net.setLinkCapacity(dead, 0.0); });
  h.sim.schedule(4.0, [&] { h.net.replaceLinkInFlows(dead, live); });
  h.sim.run();
  // 100B moved by t=1, stall until t=4, 900B at 100 B/s -> t=13.
  EXPECT_NEAR(end, 13.0, 1e-9);
}

TEST(FlowNetwork, PermanentlyStalledFlowDoesNotLivelock) {
  Harness h;
  const LinkId dead = h.net.addLink("dead", 0.0);
  bool completed = false;
  h.net.startFlow({1000, {dead}}, [&](const FlowCompletion&) { completed = true; });
  h.sim.run();  // must drain immediately: stalled flow holds no event
  EXPECT_FALSE(completed);
  EXPECT_EQ(h.net.activeFlows(), 1u);
  EXPECT_LT(h.sim.eventsDispatched(), 10u);
}

TEST(FlowNetwork, ActiveFlowsAndRates) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  const FlowId f1 = h.net.startFlow({1000, {l}}, nullptr);
  const FlowId f2 = h.net.startFlow({1000, {l}}, nullptr);
  EXPECT_EQ(h.net.activeFlows(), 2u);
  EXPECT_NEAR(h.net.flowRate(f1), 50.0, 1e-9);
  EXPECT_NEAR(h.net.flowRate(f2), 50.0, 1e-9);
  h.sim.run();
  EXPECT_EQ(h.net.activeFlows(), 0u);
  EXPECT_EQ(h.net.flowRate(f1), 0.0);
}

TEST(FlowNetwork, LinkStatsReportAllocation) {
  Harness h;
  const LinkId l = h.net.addLink("shared", 100.0);
  h.net.startFlow({10000, {l}}, nullptr);
  h.net.startFlow({10000, {l}}, nullptr);
  const auto stats = h.net.linkStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "shared");
  EXPECT_NEAR(stats[0].allocated, 100.0, 1e-9);
  h.sim.run();
}

TEST(FlowNetwork, RouteLatencySumsLinks) {
  Harness h;
  const LinkId a = h.net.addLink("a", 1.0, 0.25);
  const LinkId b = h.net.addLink("b", 1.0, 0.5);
  EXPECT_DOUBLE_EQ(h.net.routeLatency({a, b}), 0.75);
  EXPECT_DOUBLE_EQ(h.net.routeLatency({}), 0.0);
}

// ---- Property: max-min fairness invariants over random topologies ----

class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

TEST(FlowNetwork, HysteresisSkipsSubThresholdRerates) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  h.net.startFlow({1000, {l}}, [](const FlowCompletion&) {});
  const std::uint64_t scheduled = h.net.rerates();
  // A capacity wiggle far below the hysteresis threshold must not
  // re-time the completion event.
  h.sim.runUntil(1.0);
  h.net.setLinkCapacity(l, 100.0 * (1.0 - 1e-10));
  EXPECT_EQ(h.net.rerates(), scheduled);
  h.sim.run();
}

// Regression: the eta-tolerance fast path must keep comparing against
// the *scheduled* completion (and re-anchor when the accrued error
// leaves its budget). A stale-anchor bug lets thousands of individually
// sub-threshold rate nudges compound into an unbounded completion error.
TEST(FlowNetwork, ManyTinyReratesHaveBoundedCompletionError) {
  Harness h;
  double capacity = 100.0;
  const LinkId l = h.net.addLink("l", capacity);
  SimTime end = -1.0;
  h.net.startFlow({1000, {l}}, [&](const FlowCompletion& c) { end = c.endTime; });

  // 2000 capacity decrements of 1e-10 relative, one per millisecond —
  // each moves the 10 s eta by ~1e-9 s, well under the 1e-8 s hysteresis
  // window. Track the exact byte ledger alongside.
  double remaining = 1000.0;
  double prev = 0.0;
  for (int i = 1; i <= 2000; ++i) {
    const SimTime t = i * 0.001;
    h.sim.runUntil(t);
    remaining -= capacity * (t - prev);
    prev = t;
    capacity *= 1.0 - 1e-10;
    h.net.setLinkCapacity(l, capacity);
  }
  h.sim.run();
  const double trueEnd = prev + remaining / capacity;
  ASSERT_GT(end, 0.0);
  EXPECT_NEAR(end, trueEnd, 1e-6);
  // The drift bound forces genuine re-anchors along the way.
  EXPECT_GT(h.net.rerates(), 1u);
}

TEST(FlowNetwork, ReratesCountsEpochAdvances) {
  Harness h;
  const LinkId l = h.net.addLink("l", 100.0);
  EXPECT_EQ(h.net.rerates(), 0u);
  h.net.startFlow({500, {l}}, [](const FlowCompletion&) {});
  EXPECT_EQ(h.net.rerates(), 1u);  // initial completion scheduling
  h.net.startFlow({1000, {l}}, [](const FlowCompletion&) {});
  // Arrival halves the first flow's rate: one re-rate + one fresh schedule.
  EXPECT_EQ(h.net.rerates(), 3u);
  h.sim.run();
  // The short flow's departure re-rates the survivor once more.
  EXPECT_EQ(h.net.rerates(), 4u);
}

TEST_P(MaxMinPropertyTest, NoLinkOversubscribedAndWorkConserving) {
  const int seed = GetParam();
  Harness h;
  std::vector<LinkId> links;
  const int nLinks = 3 + seed % 4;
  for (int i = 0; i < nLinks; ++i) {
    links.push_back(h.net.addLink("l" + std::to_string(i), 50.0 + 13.0 * ((seed + i) % 7)));
  }
  std::vector<FlowId> flows;
  const int nFlows = 4 + seed % 9;
  for (int f = 0; f < nFlows; ++f) {
    Route route;
    for (int i = 0; i < nLinks; ++i) {
      if ((seed * 31 + f * 17 + i) % 3 == 0) route.push_back(links[static_cast<std::size_t>(i)]);
    }
    if (route.empty()) route.push_back(links[0]);
    FlowSpec spec{100000, route};
    if (f % 4 == 1) spec.rateCap = 20.0;
    flows.push_back(h.net.startFlow(spec, nullptr));
  }

  // Invariant 1: no link carries more than its capacity.
  for (const auto& ls : h.net.linkStats()) {
    EXPECT_LE(ls.allocated, ls.capacity * (1.0 + 1e-9)) << ls.name;
  }
  // Invariant 2: every flow has a positive rate (work conservation).
  for (FlowId f : flows) EXPECT_GT(h.net.flowRate(f), 0.0);
  // Invariant 3: some link is saturated OR every flow is at its cap.
  bool saturated = false;
  for (const auto& ls : h.net.linkStats()) {
    if (ls.allocated >= ls.capacity * (1.0 - 1e-6) && ls.allocated > 0.0) saturated = true;
  }
  bool allCapped = true;
  for (FlowId f : flows) {
    if (h.net.flowRate(f) < 20.0 * (1.0 - 1e-9)) {
      // not at the cap (only some flows are capped anyway)
    }
  }
  (void)allCapped;
  EXPECT_TRUE(saturated);
  h.sim.run();  // must drain without hanging
  EXPECT_EQ(h.net.activeFlows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MaxMinPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace hcsim
