# Empty compiler generated dependencies file for bench_ablation_dlio.
# This may be replaced when dependencies are built.
