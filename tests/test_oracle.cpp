// hcsim::oracle — relation registry, config generators, counterexample
// shrinking, golden snapshot round-trip and tolerance math, plus the
// CLI surface (byte-determinism across job counts).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "config/paths.hpp"
#include "oracle/generator.hpp"
#include "oracle/golden.hpp"
#include "oracle/relation.hpp"
#include "oracle/shrink.hpp"
#include "sweep/sweep_spec.hpp"

namespace hcsim {
namespace {

using oracle::RelationRegistry;

// ---------- config path enumeration ----------

TEST(JsonPaths, EnumeratesSerializerLeavesInOrder) {
  const JsonValue preset = oracle::presetJson(Site::Lassen, StorageKind::Vast);
  const auto paths = enumerateJsonPaths(preset);
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LT(paths[i - 1].path, paths[i].path) << "paths must be lexicographic";
  }
  std::set<std::string> names;
  for (const auto& p : paths) names.insert(p.path);
  EXPECT_TRUE(names.count("cnodes"));
  EXPECT_TRUE(names.count("gateway.linkBandwidth")) << "nested paths use dots";
  EXPECT_TRUE(names.count("nconnect"));
}

TEST(JsonPaths, NumericPathLookup) {
  const JsonValue preset = oracle::presetJson(Site::Wombat, StorageKind::NvmeLocal);
  EXPECT_TRUE(hasNumericPath(preset, "drivesPerNode"));
  EXPECT_TRUE(hasNumericPath(preset, "drive.readBandwidth"));
  EXPECT_FALSE(hasNumericPath(preset, "noSuchKnob"));
  EXPECT_GT(numberAtPath(preset, "drivesPerNode", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(numberAtPath(preset, "noSuchKnob", 42.0), 42.0);
}

// ---------- seeded config generators ----------

TEST(ConfigGenerator, DeterministicInSeed) {
  const oracle::ConfigGenerator gen(Site::Quartz, StorageKind::Lustre);
  const JsonValue a = gen.makeBase(7, AccessPattern::SequentialRead);
  const JsonValue b = gen.makeBase(7, AccessPattern::SequentialRead);
  EXPECT_EQ(writeJson(a), writeJson(b));
  // Different seeds must explore: some pair among a handful differs.
  std::set<std::string> distinct;
  for (std::uint64_t s = 0; s < 8; ++s) {
    distinct.insert(writeJson(gen.makeBase(s, AccessPattern::SequentialRead)));
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ConfigGenerator, EmitsRunnableTrialShape) {
  const oracle::ConfigGenerator gen(Site::Wombat, StorageKind::Vast);
  const JsonValue base = gen.makeBase(3, AccessPattern::RandomRead);
  EXPECT_EQ(base.stringOr("site", ""), "wombat");
  EXPECT_EQ(base.stringOr("storage", ""), "vast");
  EXPECT_TRUE(hasNumericPath(base, "ior.nodes"));
  EXPECT_TRUE(hasNumericPath(base, "ior.segments"));
  EXPECT_DOUBLE_EQ(numberAtPath(base, "ior.noiseStdDevFrac", -1.0), 0.0)
      << "metamorphic trials must be noise-free";
}

TEST(ConfigGenerator, RejectsKnobsTheSerializerDoesNotEmit) {
  EXPECT_THROW(oracle::ConfigGenerator(Site::Lassen, StorageKind::Gpfs,
                                       {{"pagepoolBytez", 0.5, 2.0, false}}),
               std::logic_error);
}

// ---------- relation registry ----------

TEST(RelationRegistry, BuiltinCatalogCoversAllFiveModels) {
  const RelationRegistry& reg = RelationRegistry::builtin();
  EXPECT_GE(reg.all().size(), 12u);
  std::set<std::string> storages;
  std::set<oracle::RelationKind> kinds;
  for (const auto& r : reg.all()) {
    storages.insert(r.storage);
    kinds.insert(r.kind);
    EXPECT_FALSE(r.claim.empty()) << r.name << " must cite its paper claim";
    ASSERT_TRUE(r.generate) << r.name;
    ASSERT_TRUE(r.verdict) << r.name;
  }
  EXPECT_EQ(storages,
            (std::set<std::string>{"vast", "gpfs", "lustre", "nvme", "daos"}));
  EXPECT_EQ(kinds.size(), 5u) << "all five relation kinds must be exercised";
}

TEST(RelationRegistry, FindAndDuplicateRejection) {
  const RelationRegistry& reg = RelationRegistry::builtin();
  EXPECT_NE(reg.find("lustre.read-monotone-in-stripe-count"), nullptr);
  EXPECT_EQ(reg.find("no.such.relation"), nullptr);
  RelationRegistry mine;
  oracle::MetamorphicRelation r;
  r.name = "dup";
  mine.add(r);
  EXPECT_THROW(mine.add(r), std::invalid_argument);
}

// ---------- counterexample shrinking ----------

TEST(Shrink, BisectsIntegerAxisToTheCliff) {
  // Synthetic cliff: the relation fails between any pair spanning 6|7.
  JsonValue base(JsonObject{});
  std::size_t calls = 0;
  const auto pairFails = [&](double lo, double hi) {
    ++calls;
    return lo <= 6.0 && hi >= 7.0;
  };
  const oracle::ShrinkResult s = oracle::bisectAxis(base, "storageConfig.x", 1, 64, true,
                                                    pairFails);
  EXPECT_DOUBLE_EQ(s.lo, 6.0);
  EXPECT_DOUBLE_EQ(s.hi, 7.0);
  EXPECT_FALSE(s.spanning);
  EXPECT_EQ(s.probes, calls);
  EXPECT_DOUBLE_EQ(numberAtPath(s.minimalConfig, "storageConfig.x", 0.0), 7.0);
  EXPECT_NE(s.summary.find("storageConfig.x"), std::string::npos);
}

TEST(Shrink, ReportsSpanningViolations) {
  // Fails only across the full interval: no single half reproduces it.
  JsonValue base(JsonObject{});
  const auto pairFails = [](double lo, double hi) { return lo <= 1.0 && hi >= 64.0; };
  const oracle::ShrinkResult s = oracle::bisectAxis(base, "x", 1, 64, true, pairFails);
  EXPECT_TRUE(s.spanning);
  EXPECT_DOUBLE_EQ(s.lo, 1.0);
  EXPECT_DOUBLE_EQ(s.hi, 64.0);
}

TEST(Shrink, RealAxisStopsAfterMaxSteps) {
  JsonValue base(JsonObject{});
  const auto alwaysLowHalf = [](double lo, double hi) {
    (void)hi;
    return lo <= 1.0;  // keeps halving toward the left edge
  };
  const oracle::ShrinkResult s = oracle::bisectAxis(base, "x", 1.0, 2.0, false,
                                                    alwaysLowHalf, 5);
  EXPECT_LE(s.hi - s.lo, (2.0 - 1.0) / 32.0 + 1e-12);
}

// ---------- relation execution ----------

oracle::SuiteOptions fastOptions(std::size_t cases) {
  oracle::SuiteOptions o;
  o.casesPerRelation = cases;
  o.jobs = 2;
  return o;
}

TEST(RunRelation, ReportsPassAndCountsTrials) {
  const auto* rel = RelationRegistry::builtin().find("lustre.bytes-conserved");
  ASSERT_NE(rel, nullptr);
  const oracle::RelationReport rep = oracle::runRelation(*rel, fastOptions(5));
  EXPECT_TRUE(rep.pass());
  EXPECT_EQ(rep.cases, 5u);
  EXPECT_EQ(rep.trials, 5u) << "conservation cases run one variant each";
}

TEST(RunRelation, PerturbedModelConstantBreaksTheGpfsCollapse) {
  // Zeroing the random-read penalty is the config-space equivalent of a
  // regression in the model constant: the seq-vs-random collapse the
  // paper reports disappears, and the relation must catch it.
  const auto* builtin = RelationRegistry::builtin().find("gpfs.sequential-dominates-random-read");
  ASSERT_NE(builtin, nullptr);
  oracle::MetamorphicRelation sabotaged = *builtin;
  const auto inner = builtin->generate;
  sabotaged.generate = [inner](std::uint64_t seed) {
    oracle::RelationCase c = inner(seed);
    for (JsonValue& v : c.variants) {
      sweep::jsonPathSet(v, "storageConfig.randomReadPenalty", JsonValue(0.0));
      sweep::jsonPathSet(v, "storageConfig.randomCacheResidencyFactor", JsonValue(1.0));
    }
    return c;
  };
  const oracle::RelationReport rep = oracle::runRelation(sabotaged, fastOptions(3));
  EXPECT_FALSE(rep.pass());
  ASSERT_FALSE(rep.failureDetails.empty());
  EXPECT_NE(rep.failureDetails[0].detail.find("rand-read vs seq-read"), std::string::npos)
      << "the failure must name the violated comparison";
}

TEST(RunRelation, MonotonicFailureShrinksAndNamesTheAxis) {
  // A deliberately false claim — GPFS random reads monotone in segment
  // count — fails against the real model (bigger working sets defeat the
  // server cache), and the shrinker must bisect the segments axis.
  const oracle::ConfigGenerator gen(Site::Lassen, StorageKind::Gpfs, {});
  oracle::MetamorphicRelation wrong;
  wrong.name = "test.gpfs-rand-monotone-in-segments";
  wrong.storage = "gpfs";
  wrong.kind = oracle::RelationKind::Monotonic;
  wrong.axis = "ior.segments";
  wrong.integerAxis = true;
  wrong.claim = "deliberately false: random reads speed up with volume";
  wrong.generate = [gen](std::uint64_t seed) {
    oracle::RelationCase c;
    c.base = gen.makeBase(seed, AccessPattern::RandomRead);
    sweep::jsonPathSet(c.base, "ior.nodes", JsonValue(32));
    sweep::jsonPathSet(c.base, "ior.procsPerNode", JsonValue(44));
    c.axis = "ior.segments";
    c.axisValues = {250, 2000};
    for (double v : c.axisValues) {
      JsonValue cfg = sweep::deepCopy(c.base);
      sweep::jsonPathSet(cfg, "ior.segments", JsonValue(v));
      c.variants.push_back(std::move(cfg));
    }
    return c;
  };
  wrong.verdict = [](const oracle::RelationCase& c,
                     const std::vector<sweep::TrialMetrics>& m) {
    oracle::CaseVerdict v;
    if (m[1].meanGBs < m[0].meanGBs * 0.98) {
      v.pass = false;
      v.detail = "bandwidth drops along '" + c.axis + "'";
    }
    return v;
  };
  const oracle::RelationReport rep = oracle::runRelation(wrong, fastOptions(2));
  EXPECT_FALSE(rep.pass());
  ASSERT_FALSE(rep.failureDetails.empty());
  const oracle::CaseFailure& f = rep.failureDetails[0];
  EXPECT_NE(f.shrinkSummary.find("ior.segments"), std::string::npos)
      << "shrink output must name the offending axis";
  // The minimal failing config pins the axis inside the original span.
  const double at = numberAtPath(f.minimalConfig, "ior.segments", -1.0);
  EXPECT_GT(at, 250.0);
  EXPECT_LE(at, 2000.0);
  EXPECT_GT(rep.trials, 4u) << "shrink probes must be accounted";
}

TEST(SuiteReport, MarkdownIsDeterministicAndNamesEveryRelation) {
  const RelationRegistry& reg = RelationRegistry::builtin();
  oracle::SuiteOptions o = fastOptions(2);
  const auto a = oracle::runSuite(reg, o);
  o.jobs = 7;
  const auto b = oracle::runSuite(reg, o);
  EXPECT_EQ(oracle::toMarkdown(a), oracle::toMarkdown(b))
      << "suite output must be byte-identical whatever the job count";
  const std::string md = oracle::toMarkdown(a);
  for (const auto& r : reg.all()) {
    EXPECT_NE(md.find(r.name), std::string::npos) << r.name;
  }
}

// ---------- golden snapshots ----------

/// A deliberately small figure so golden tests stay fast.
oracle::GoldenFigure tinyFigure() {
  oracle::GoldenFigure fig;
  fig.name = "tinyfig";
  fig.title = "test-only: wombat NVMe reads at two node counts";
  fig.spec.name = "golden-tinyfig";
  fig.spec.experiment = "ior";
  JsonObject ior;
  ior["access"] = "seq-read";
  ior["segments"] = 64.0;
  ior["procsPerNode"] = 4.0;
  ior["repetitions"] = 1.0;
  JsonObject base;
  base["site"] = "wombat";
  base["storage"] = "nvme";
  base["ior"] = JsonValue(std::move(ior));
  fig.spec.base = JsonValue(std::move(base));
  sweep::Axis nodes;
  nodes.path = "ior.nodes";
  nodes.values = {JsonValue(1.0), JsonValue(2.0)};
  fig.spec.axes.push_back(std::move(nodes));
  return fig;
}

/// Scale every recorded meanGBs by `factor` (simulated drift).
void scaleGolden(const std::string& path, double factor) {
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    JsonValue j;
    ASSERT_TRUE(parseJson(line, j));
    const double mean = j.find("metrics")->numberOr("meanGBs", 0.0);
    ASSERT_TRUE(sweep::jsonPathSet(j, "metrics.meanGBs", JsonValue(mean * factor)));
    lines.push_back(writeJson(j));
  }
  in.close();
  std::ofstream out(path);
  for (const auto& l : lines) out << l << "\n";
}

TEST(Golden, RecordCheckRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const oracle::GoldenFigure fig = tinyFigure();
  std::string error;
  ASSERT_TRUE(oracle::recordFigure(fig, dir, 2, error)) << error;
  const oracle::FigureCheck check = oracle::checkFigure(fig, dir, 2, 2.0);
  EXPECT_TRUE(check.pass()) << oracle::deltaTable(check, 2.0, true);
  EXPECT_EQ(check.cells, 2u);
  EXPECT_EQ(check.violations, 0u);
}

TEST(Golden, ToleranceBoundaryMath) {
  const std::string dir = ::testing::TempDir();
  const oracle::GoldenFigure fig = tinyFigure();
  std::string error;
  ASSERT_TRUE(oracle::recordFigure(fig, dir, 2, error)) << error;

  // +1.9% drift sits inside a 2% band. current/golden = 1/1.019 etc., so
  // scale the snapshot rather than the run.
  scaleGolden(oracle::goldenPath(dir, fig.name), 1.0 / 1.019);
  EXPECT_TRUE(oracle::checkFigure(fig, dir, 2, 2.0).pass());

  ASSERT_TRUE(oracle::recordFigure(fig, dir, 2, error)) << error;
  scaleGolden(oracle::goldenPath(dir, fig.name), 1.0 / 1.021);
  const oracle::FigureCheck drifted = oracle::checkFigure(fig, dir, 2, 2.0);
  EXPECT_FALSE(drifted.pass()) << "+2.1% drift must violate a 2% tolerance";
  EXPECT_EQ(drifted.violations, drifted.cells);
}

TEST(Golden, PerturbedModelConstantFailsWithNamedCell) {
  const std::string dir = ::testing::TempDir();
  const oracle::GoldenFigure fig = tinyFigure();
  std::string error;
  ASSERT_TRUE(oracle::recordFigure(fig, dir, 2, error)) << error;

  // Doubling the drive's read bandwidth stands in for a regressed model
  // constant; the check must flag the drift and name the cell.
  oracle::GoldenFigure perturbed = fig;
  perturbed.spec.base = sweep::deepCopy(fig.spec.base);
  ASSERT_TRUE(sweep::jsonPathSet(
      perturbed.spec.base, "storageConfig.drive.readBandwidth",
      JsonValue(2.0 * numberAtPath(oracle::presetJson(Site::Wombat, StorageKind::NvmeLocal),
                                   "drive.readBandwidth", 0.0))));
  const oracle::FigureCheck check = oracle::checkFigure(perturbed, dir, 2, 2.0);
  EXPECT_FALSE(check.pass());
  const std::string table = oracle::deltaTable(check, 2.0, false);
  EXPECT_NE(table.find("\"ior.nodes\":1"), std::string::npos)
      << "delta table must name the drifted cell:\n" << table;
  EXPECT_NE(table.find("FAIL"), std::string::npos);
}

TEST(Golden, MissingSnapshotIsAnExplicitError) {
  const oracle::FigureCheck check =
      oracle::checkFigure(tinyFigure(), "/nonexistent-golden-dir", 1, 2.0);
  EXPECT_FALSE(check.pass());
  EXPECT_NE(check.error.find("oracle record"), std::string::npos)
      << "the error must tell the user how to create the snapshot";
}

TEST(Golden, BuiltinFiguresAreWellFormed) {
  const auto& figs = oracle::builtinFigures();
  ASSERT_EQ(figs.size(), 4u);
  std::set<std::string> names;
  for (const auto& f : figs) {
    names.insert(f.name);
    EXPECT_GT(f.spec.trialCount(), 0u) << f.name;
    EXPECT_FALSE(f.title.empty()) << f.name;
  }
  EXPECT_EQ(names, (std::set<std::string>{"fig2a", "fig2b", "fig4", "fig6"}));
  EXPECT_NE(oracle::findFigure("fig2a"), nullptr);
  EXPECT_EQ(oracle::findFigure("fig9"), nullptr);
}

// ---------- CLI surface ----------

int runCli(std::initializer_list<std::string> args, std::string& out, std::string& err) {
  ArgParser parser((std::vector<std::string>(args)));
  std::ostringstream o, e;
  const int rc = cli::run(parser, o, e);
  out = o.str();
  err = e.str();
  return rc;
}

TEST(OracleCli, ListNamesRelationsAndFigures) {
  std::string out, err;
  EXPECT_EQ(runCli({"oracle", "list"}, out, err), 0) << err;
  EXPECT_NE(out.find("lustre.read-monotone-in-stripe-count"), std::string::npos);
  EXPECT_NE(out.find("fig2b"), std::string::npos);
}

TEST(OracleCli, RelationsByteIdenticalAcrossJobCounts) {
  std::string out1, out4, outAgain, err;
  EXPECT_EQ(runCli({"oracle", "relations", "--cases", "2", "--jobs", "1"}, out1, err), 0) << err;
  EXPECT_EQ(runCli({"oracle", "relations", "--cases", "2", "--jobs", "4"}, out4, err), 0) << err;
  EXPECT_EQ(runCli({"oracle", "relations", "--cases", "2", "--jobs", "4"}, outAgain, err), 0);
  EXPECT_EQ(out1, out4);
  EXPECT_EQ(out4, outAgain);
  EXPECT_NE(out1.find("oracle relations: PASS"), std::string::npos);
}

TEST(OracleCli, SingleRelationSelectionAndUnknownName) {
  std::string out, err;
  EXPECT_EQ(runCli({"oracle", "relations", "--cases", "2", "--relation",
                    "nvme.per-node-invariant-in-nodes"},
                   out, err),
            0)
      << err;
  EXPECT_NE(out.find("nvme.per-node-invariant-in-nodes"), std::string::npos);
  EXPECT_EQ(out.find("lustre."), std::string::npos) << "only the selected relation runs";
  EXPECT_EQ(runCli({"oracle", "relations", "--relation", "bogus"}, out, err), 2);
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(OracleCli, RecordThenCheckByteIdenticalAcrossJobCounts) {
  const std::string dir = ::testing::TempDir() + "oracle-cli-golden";
  std::filesystem::create_directories(dir);
  std::string out, err;
  ASSERT_EQ(runCli({"oracle", "record", "--dir", dir, "--figure", "fig2b", "--jobs", "4"}, out,
                   err),
            0)
      << err;
  std::string check1, check4;
  EXPECT_EQ(runCli({"oracle", "check", "--dir", dir, "--figure", "fig2b", "--jobs", "1"},
                   check1, err),
            0)
      << err;
  EXPECT_EQ(runCli({"oracle", "check", "--dir", dir, "--figure", "fig2b", "--jobs", "4"},
                   check4, err),
            0)
      << err;
  EXPECT_EQ(check1, check4);
  EXPECT_NE(check1.find("oracle golden check: PASS"), std::string::npos);
}

TEST(OracleCli, CheckWithoutSnapshotFails) {
  std::string out, err;
  const std::string dir = ::testing::TempDir() + "oracle-cli-empty";
  EXPECT_EQ(runCli({"oracle", "check", "--dir", dir, "--figure", "fig4"}, out, err), 1);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST(OracleCli, UnknownSubcommandRejected) {
  std::string out, err;
  EXPECT_EQ(runCli({"oracle", "frobnicate"}, out, err), 2);
  EXPECT_NE(err.find("list|relations|record|check"), std::string::npos);
}

}  // namespace
}  // namespace hcsim
