#pragma once
// FaultSpec — one dynamic fault directive against a storage model or a
// raw topology link. The chaos engine schedules these at declared times;
// models interpret them through FileSystemModel::applyFault, which is
// why the spec speaks in *component names* ("cnode", "nsd", "oss",
// "mds", "dnode", "dbox", "drive", "link"), not link ids: the model
// owns the mapping from a named component to its links/state.

#include <cstddef>
#include <string>

namespace hcsim {

enum class FaultAction {
  Fail,      ///< fail-stop: the component serves nothing until restored
  FailSlow,  ///< degraded: the component runs at `severity` of its rate
  Restore,   ///< back to healthy (also clears a fail-slow)
};

const char* toString(FaultAction a);

struct FaultSpec {
  FaultAction action = FaultAction::Fail;
  /// Component kind, model-specific: VAST cnode|dnode|dbox, GPFS nsd,
  /// Lustre oss|mds, NVMe drive; "link" targets a named topology link.
  std::string component;
  std::size_t index = 0;  ///< which instance (ignored for "link")
  std::string link;       ///< topology link name when component == "link"
  /// FailSlow only: surviving fraction of the component's rate, in
  /// (0, 1). "link at 30% rate" = 0.3. Ignored for Fail/Restore.
  double severity = 1.0;
};

}  // namespace hcsim
