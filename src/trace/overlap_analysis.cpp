#include "trace/overlap_analysis.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace hcsim {

namespace {

using Interval = std::pair<Seconds, Seconds>;

/// Merge possibly-overlapping intervals into a disjoint sorted set.
std::vector<Interval> mergeIntervals(std::vector<Interval> xs) {
  if (xs.empty()) return xs;
  std::sort(xs.begin(), xs.end());
  std::vector<Interval> out;
  out.push_back(xs.front());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i].first <= out.back().second) {
      out.back().second = std::max(out.back().second, xs[i].second);
    } else {
      out.push_back(xs[i]);
    }
  }
  return out;
}

Seconds totalLength(const std::vector<Interval>& xs) {
  Seconds t = 0.0;
  for (const auto& [a, b] : xs) t += b - a;
  return t;
}

/// Length of [a,b) covered by the disjoint sorted set `merged`.
Seconds coveredLength(Seconds a, Seconds b, const std::vector<Interval>& merged) {
  Seconds t = 0.0;
  // First interval whose end is beyond a.
  auto it = std::lower_bound(merged.begin(), merged.end(), a,
                             [](const Interval& iv, Seconds x) { return iv.second <= x; });
  for (; it != merged.end() && it->first < b; ++it) {
    t += std::max(0.0, std::min(b, it->second) - std::max(a, it->first));
  }
  return t;
}

/// Intersection of two disjoint sorted sets.
std::vector<Interval> intersect(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Seconds lo = std::max(a[i].first, b[j].first);
    const Seconds hi = std::min(a[i].second, b[j].second);
    if (lo < hi) out.emplace_back(lo, hi);
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

}  // namespace

IoTimeBreakdown analyzeOverlap(const TraceLog& log) {
  IoTimeBreakdown out;

  // Partition events by process.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> byPid;
  for (const auto& e : log.events()) byPid[e.pid].push_back(&e);

  for (auto& [pid, events] : byPid) {
    std::vector<Interval> compute;
    std::vector<Interval> io;
    for (const TraceEvent* e : events) {
      if (e->kind == TraceEventKind::Compute) {
        compute.emplace_back(e->start, e->end());
        out.totalCompute += e->duration;
      } else if (e->kind == TraceEventKind::Read || e->kind == TraceEventKind::Write) {
        io.emplace_back(e->start, e->end());
        out.totalIo += e->duration;
        out.ioBytes += e->bytes;
      }
    }
    const auto mergedCompute = mergeIntervals(compute);
    const auto mergedIo = mergeIntervals(io);

    // Overlapping I/O: per I/O event, portion covered by compute. Uses
    // raw (unmerged) I/O durations so concurrent reader threads each
    // count their own time, matching how DFTracer sums per-event time.
    for (const TraceEvent* e : events) {
      if (e->kind != TraceEventKind::Read && e->kind != TraceEventKind::Write) continue;
      const Seconds covered = coveredLength(e->start, e->end(), mergedCompute);
      out.overlappingIo += covered;
      out.nonOverlappingIo += e->duration - covered;
    }

    // Compute-only: merged compute minus its intersection with merged I/O.
    out.computeOnly += totalLength(mergedCompute) - totalLength(intersect(mergedCompute, mergedIo));
  }

  const auto [lo, hi] = log.timeSpan();
  out.runtime = hi - lo;
  return out;
}

ThroughputReport computeThroughput(const TraceLog& log) {
  const IoTimeBreakdown b = analyzeOverlap(log);
  ThroughputReport r;
  r.ioBytes = b.ioBytes;
  r.application = b.nonOverlappingIo > 0.0
                      ? static_cast<double>(b.ioBytes) / b.nonOverlappingIo
                      : 0.0;
  r.system = b.totalIo > 0.0 ? static_cast<double>(b.ioBytes) / b.totalIo : 0.0;
  return r;
}

}  // namespace hcsim
