#include "cluster/machine.hpp"

namespace hcsim {

Machine Machine::lassen() {
  Machine m;
  m.name = "Lassen";
  m.nodes = 795;
  m.coresPerNode = 44;
  m.gpusPerNode = 4;
  m.ramGiB = 256;
  m.arch = "IBM Power9";
  m.network = "IB EDR";
  m.nodeInjection = 2 * units::gbps(100);  // dual-rail EDR
  return m;
}

Machine Machine::ruby() {
  Machine m;
  m.name = "Ruby";
  m.nodes = 1512;
  m.coresPerNode = 56;
  m.gpusPerNode = 0;
  m.ramGiB = 192;
  m.arch = "Intel Xeon";
  m.network = "Omni-Path";
  m.nodeInjection = units::gbps(100);
  return m;
}

Machine Machine::quartz() {
  Machine m;
  m.name = "Quartz";
  m.nodes = 3018;
  m.coresPerNode = 36;
  m.gpusPerNode = 0;
  m.ramGiB = 128;
  m.arch = "Intel Xeon";
  m.network = "Omni-Path";
  m.nodeInjection = units::gbps(100);
  return m;
}

Machine Machine::wombat() {
  Machine m;
  m.name = "Wombat";
  m.nodes = 8;
  m.coresPerNode = 48;
  m.gpusPerNode = 2;
  m.ramGiB = 512;
  m.arch = "ARM Fujitsu A64fx";
  m.network = "IB EDR";
  m.nodeInjection = 2 * units::gbps(100);  // dual-port HDR100/EDR
  return m;
}

}  // namespace hcsim
