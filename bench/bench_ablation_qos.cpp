// Extension bench: QoS via weighted fairness. Storage appliances (VAST
// included) ship per-tenant QoS policies; with weighted max-min in the
// flow network we can ask what a policy buys: protect a foreground
// workload against background tenants by weight rather than by luck.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

// Foreground (2 nodes) + background (6 nodes) streams sharing VAST on
// Wombat, with the given weights. Returns foreground aggregate GB/s.
double foregroundGBs(double fgWeight, double bgWeight) {
  TestBench bench(Machine::wombat(), 8);
  auto fs = bench.attachVast(vastOnWombat());
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialRead;
  ph.requestSize = units::MiB;
  ph.nodes = 8;
  ph.procsPerNode = 16;
  ph.workingSetBytes = 8ull * 16 * units::GiB;
  fs->beginPhase(ph);

  SimTime fgEnd = 0;
  const Bytes perStream = units::GiB;
  for (std::uint32_t n = 0; n < 8; ++n) {
    const bool foreground = n < 2;
    for (std::uint32_t s = 0; s < 16; ++s) {
      IoRequest req;
      req.client = {n, s};
      req.fileId = n * 16 + s + 1;
      req.bytes = perStream;
      req.pattern = AccessPattern::SequentialRead;
      req.ops = 1024;
      req.qosWeight = foreground ? fgWeight : bgWeight;
      fs->submit(req, [&fgEnd, foreground](const IoResult& r) {
        if (foreground) fgEnd = std::max(fgEnd, r.endTime);
      });
    }
  }
  bench.sim().run();
  return 2.0 * 16.0 * static_cast<double>(perStream) / fgEnd / 1e9;
}

}  // namespace

int main() {
  std::printf("== Ablation: QoS weights (VAST on Wombat, 2 fg + 6 bg nodes) ==\n\n");
  ResultTable t("foreground read bandwidth by QoS policy");
  t.setHeader({"policy", "fg weight", "bg weight", "foreground GB/s"});
  const struct {
    const char* label;
    double fg, bg;
  } policies[] = {
      {"no QoS (equal)", 1.0, 1.0},
      {"fg preferred 2:1", 2.0, 1.0},
      {"fg preferred 4:1", 4.0, 1.0},
      {"fg guaranteed 8:1", 8.0, 1.0},
      {"bg preferred 1:4 (inverted)", 1.0, 4.0},
  };
  for (const auto& p : policies) {
    t.addRow({std::string(p.label), p.fg, p.bg, foregroundGBs(p.fg, p.bg)});
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("Weighted max-min turns the shared-cluster contention problem (see\n"
              "bench_contention) into a dial: the foreground's share scales with its\n"
              "weight until its own NIC/session limits bind.\n");
  return 0;
}
