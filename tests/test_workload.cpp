#include "workload/workload_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "core/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/json.hpp"
#include "workload/grammar_source.hpp"
#include "workload/workload_runner.hpp"

namespace hcsim {
namespace {

using workload::WorkloadRunSpec;

JsonValue mustParse(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(parseJson(text, v)) << text;
  return v;
}

std::string writeTemp(const std::string& name, const std::string& content) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::ofstream f(path, std::ios::trunc);
  f << content;
  return path;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// A small two-pid chrome trace for the replay generator.
std::string chromeTraceFixture() {
  return R"({"traceEvents":[
{"ph":"X","cat":"read","name":"r0","pid":0,"tid":0,"ts":0,"dur":2000,"args":{"bytes":1048576}},
{"ph":"X","cat":"compute","name":"c0","pid":0,"tid":0,"ts":2000,"dur":1000,"args":{}},
{"ph":"X","cat":"write","name":"w0","pid":0,"tid":0,"ts":3000,"dur":2000,"args":{"bytes":2097152}},
{"ph":"X","cat":"read","name":"r1","pid":1,"tid":0,"ts":0,"dur":1500,"args":{"bytes":524288}},
{"ph":"X","cat":"write","name":"w1","pid":1,"tid":0,"ts":1500,"dur":1500,"args":{"bytes":1048576}}
]})";
}

/// One small trial config per registered generator, all fast to run.
std::vector<JsonValue> generatorConfigs(const std::string& tracePath) {
  std::vector<JsonValue> configs;
  configs.push_back(mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"ior","nodes":1,"procsPerNode":2,"segments":4,
    "blockSize":4194304,"transferSize":1048576,"seed":41}})"));
  configs.push_back(mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"dlio","nodes":1,"procsPerNode":2,"workload":{
      "name":"tiny","samples":16,"sampleSize":153600,"transferSize":153600,
      "epochs":1,"ioThreads":2,"computeTimePerBatch":0.005}}})"));
  JsonValue replay = mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"replay","pidsPerNode":2}})");
  (*(*replay.object())["workload"].object())["trace"] = tracePath;
  configs.push_back(std::move(replay));
  configs.push_back(mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"io500","nodes":1,"procsPerNode":2,
    "easyOpsMedian":4,"hardOpsMedian":8,"seed":99}})"));
  configs.push_back(mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"grammar","nodes":1,"procsPerNode":2,"seed":5,
    "fileBytes":67108864,"rules":{"main":[
      {"op":"open"},
      {"op":"write","bytes":1048576,"count":4,"pattern":"seq"},
      {"compute":0.01},
      {"op":"read","bytes":1048576,"count":4,"pattern":"random"},
      {"barrier":true}]}}})"));
  configs.push_back(mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"openloop","clients":4,"clientsPerNode":2,
    "ratePerClientHz":20,"horizonSec":2,"objects":64,"zipfTheta":0.9,
    "objectBytes":4194304,"requestBytes":131072,"seed":77}})"));
  return configs;
}

// Every generator must produce byte-identical JSONL whatever the job
// count — the slot-per-trial contract extended to the workload trial
// type (satellite 3 / check.sh gate).
TEST(WorkloadSweep, AllGeneratorsByteIdenticalAcrossJobs) {
  const std::string trace = writeTemp("wl_jobs_trace.json", chromeTraceFixture());
  const std::vector<JsonValue> configs = generatorConfigs(trace);
  const auto serial = sweep::runTrialBatch("workload", configs, 1);
  const auto parallel = sweep::runTrialBatch("workload", configs, 3);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    sweep::TrialResult a{sweep::Trial{}, serial[i]};
    sweep::TrialResult b{sweep::Trial{}, parallel[i]};
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(sweep::toJsonlLine(a), sweep::toJsonlLine(b)) << "generator index " << i;
  }
  std::remove(trace.c_str());
}

// Running the same spec through the CLI twice must emit identical bytes
// (--out JSONL includes the goodput timeline and opLatency record).
TEST(WorkloadCli, RunTwiceByteIdentical) {
  const std::string spec = writeTemp("wl_twice_spec.json", R"({
    "name":"twice","site":"lassen","storage":"vast",
    "workload":{"generator":"io500","nodes":1,"procsPerNode":2,
                "easyOpsMedian":4,"hardOpsMedian":8,"seed":3}})");
  const std::string out1 = std::string(::testing::TempDir()) + "wl_twice_1.jsonl";
  const std::string out2 = std::string(::testing::TempDir()) + "wl_twice_2.jsonl";
  for (const std::string& out : {out1, out2}) {
    std::ostringstream so, se;
    const ArgParser args(std::vector<std::string>{"workload", spec, "--out", out});
    ASSERT_EQ(cli::run(args, so, se), 0) << se.str();
  }
  const std::string a = readFile(out1);
  const std::string b = readFile(out2);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(spec.c_str());
  std::remove(out1.c_str());
  std::remove(out2.c_str());
}

// ---- grammar validation: one actionable line per problem ----

std::vector<std::string> grammarProblems(const std::string& workloadJson) {
  workload::GrammarSpec spec;
  std::vector<std::string> problems;
  EXPECT_FALSE(workload::parseGrammarSpec(mustParse(workloadJson), "workload", spec, problems));
  return problems;
}

TEST(GrammarSpec, UnknownProductionIsOneActionableLine) {
  const auto problems = grammarProblems(R"({"generator":"grammar","rules":{
    "main":["nosuch"]}})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown production 'nosuch'"), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("known rules: main"), std::string::npos) << problems[0];
}

TEST(GrammarSpec, CyclicRuleIsOneActionableLine) {
  const auto problems = grammarProblems(R"({"generator":"grammar","rules":{
    "main":["a"],"a":["b"],"b":["a"]}})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("cyclic expansion"), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("DAG"), std::string::npos) << problems[0];
}

TEST(GrammarSpec, ZeroSizeOpIsOneActionableLine) {
  const auto problems = grammarProblems(R"({"generator":"grammar","rules":{
    "main":[{"op":"write","bytes":0,"count":4}]}})");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("zero-size op"), std::string::npos) << problems[0];
}

TEST(WorkloadCli, BadGrammarSpecExitsTwoWithActionableError) {
  const std::string spec = writeTemp("wl_bad_grammar.json", R"({
    "site":"lassen","storage":"vast",
    "workload":{"generator":"grammar","rules":{"main":["nosuch"]}}})");
  std::ostringstream so, se;
  const ArgParser args(std::vector<std::string>{"workload", spec});
  EXPECT_EQ(cli::run(args, so, se), 2);
  EXPECT_NE(se.str().find("unknown production 'nosuch'"), std::string::npos) << se.str();
  std::remove(spec.c_str());
}

TEST(WorkloadSpec, UnknownGeneratorListsSortedRegistry) {
  WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(
      mustParse(R"({"site":"lassen","storage":"vast","workload":{"generator":"bogus"}})"), spec,
      problems);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown generator 'bogus'"), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("dlio, grammar, io500, ior, openloop, replay"), std::string::npos)
      << problems[0];
}

// ---- openloop + chaos composition ----

// A fail-slow CNode mid-run must visibly dent the open-loop goodput
// timeline, and a restore must bring it back: the composition the
// subsystem exists to express (generator x chaos x retry in one spec).
TEST(WorkloadChaos, OpenLoopFailSlowDegradesAndRecovers) {
  const JsonValue doc = mustParse(R"({
    "name":"openloop-chaos","site":"lassen","storage":"vast",
    "storageConfig":{"cnodes":2},
    "workload":{"generator":"openloop","clients":16,"clientsPerNode":4,
      "ratePerClientHz":100,"horizonSec":8,"objects":128,"zipfTheta":0.9,
      "objectBytes":4194304,"requestBytes":1048576,"readFraction":0.9,
      "seed":11},
    "retry":{"timeoutSec":5},
    "chaos":{"events":[
      {"atSec":2.0,"action":"fail-slow","component":"cnode","index":0,"severity":0.2},
      {"atSec":5.0,"action":"restore","component":"cnode","index":0}]}})");
  WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(doc, spec, problems);
  ASSERT_TRUE(problems.empty());
  workload::SourceBundle bundle = workload::makeSource(spec, problems);
  ASSERT_TRUE(problems.empty());
  ASSERT_NE(bundle.source, nullptr);

  Environment env = makeEnvironment(spec.site, spec.storage, bundle.nodes,
                                    spec.storageConfig.isNull() ? nullptr : &spec.storageConfig);
  workload::injectWorkloadChaos(spec, env);
  const workload::WorkloadOutcome out =
      workload::runWorkload(env, spec, *bundle.source);

  auto sliceAt = [&](double t) {
    for (const workload::WorkloadSample& s : out.timeline) {
      if (s.start <= t && t < s.end) return s.gbs;
    }
    ADD_FAILURE() << "no timeline slice covers t=" << t;
    return 0.0;
  };
  const double healthy = sliceAt(1.5);    // before the fault
  const double degraded = sliceAt(3.5);   // fail-slow active
  const double recovered = sliceAt(7.0);  // after restore
  ASSERT_GT(healthy, 0.0);
  EXPECT_LT(degraded, 0.9 * healthy) << "fail-slow did not dent goodput";
  EXPECT_GT(recovered, 0.7 * healthy) << "restore did not recover goodput";
}

// ---- io500 relations, direct ----

TEST(Io500, SameSeedIsDeterministic) {
  const JsonValue cfg = mustParse(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"io500","nodes":1,"procsPerNode":4,
    "easyOpsMedian":8,"hardOpsMedian":16,"seed":500}})");
  const sweep::TrialMetrics a = sweep::runTrial("workload", cfg);
  const sweep::TrialMetrics b = sweep::runTrial("workload", cfg);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(sweep::toJsonlLine({sweep::Trial{}, a}), sweep::toJsonlLine({sweep::Trial{}, b}));
}

TEST(Io500, BandwidthIsScaleInvariant) {
  auto run = [](double scale) {
    JsonValue cfg = mustParse(R"({"site":"lassen","storage":"vast","workload":{
      "generator":"io500","nodes":1,"procsPerNode":4,
      "easyOpsMedian":16,"hardOpsMedian":32,"seed":500}})");
    (*(*cfg.object())["workload"].object())["scale"] = scale;
    return sweep::runTrial("workload", cfg);
  };
  const sweep::TrialMetrics s1 = run(1.0);
  const sweep::TrialMetrics s2 = run(2.0);
  ASSERT_TRUE(s1.ok) << s1.error;
  ASSERT_TRUE(s2.ok) << s2.error;
  EXPECT_GT(s2.bytesMoved, s1.bytesMoved);  // working set grew...
  const double ratio = s2.meanGBs / s1.meanGBs;
  EXPECT_GT(ratio, 0.7) << s1.meanGBs << " vs " << s2.meanGBs;
  EXPECT_LT(ratio, 1.4) << s1.meanGBs << " vs " << s2.meanGBs;  // ...bandwidth did not
}

// ---- telemetry export ----

TEST(WorkloadTelemetry, ExportsAllGauges) {
  workload::WorkloadOutcome out;
  out.generator = "grammar";
  out.elapsed = 2.0;
  out.bytesMoved = 4'000'000'000ull;
  out.opsIssued = 10;
  out.opsCompleted = 9;
  out.opsFailed = 1;
  out.metaOps = 3;
  out.computeOps = 2;
  out.barriers = 1;
  out.retries = 4;
  out.lateCompletions = 1;
  telemetry::MetricsRegistry reg;
  workload::exportTo(out, reg);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.ops.issued", -1), 10.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.ops.completed", -1), 9.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.ops.failed", -1), 1.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.ops.meta", -1), 3.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.ops.compute", -1), 2.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.barriers", -1), 1.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.bytes", -1), 4e9);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.elapsedSec", -1), 2.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.goodputGBs", -1), 2.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.retries", -1), 4.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("workload.lateCompletions", -1), 1.0);
}

// ---- opLatency serialization contract (satellite 1) ----

TEST(OpLatencyContract, CoalescedIorEmitsNullNeverZeros) {
  const JsonValue cfg = mustParse(R"({"site":"lassen","storage":"vast",
    "ior":{"nodes":1,"procsPerNode":2,"segments":4,"blockSize":4194304,
    "transferSize":1048576,"mode":"coalesced"}})");
  const sweep::TrialMetrics m = sweep::runTrial("ior", cfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.latencyCapable);
  EXPECT_FALSE(m.hasOpLatency);
  const std::string line = sweep::toJsonlLine({sweep::Trial{}, m});
  EXPECT_NE(line.find("\"opLatency\":null"), std::string::npos) << line;
  EXPECT_EQ(line.find("\"opLatency\":{"), std::string::npos) << line;
}

TEST(OpLatencyContract, PerOpIorEmitsDistribution) {
  const JsonValue cfg = mustParse(R"({"site":"lassen","storage":"vast",
    "ior":{"nodes":1,"procsPerNode":2,"segments":4,"blockSize":4194304,
    "transferSize":1048576,"mode":"per-op"}})");
  const sweep::TrialMetrics m = sweep::runTrial("ior", cfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.latencyCapable);
  EXPECT_TRUE(m.hasOpLatency);
  EXPECT_GT(m.opCount, 0.0);
  EXPECT_GT(m.opP99, 0.0);
  const std::string line = sweep::toJsonlLine({sweep::Trial{}, m});
  EXPECT_NE(line.find("\"opLatency\":{"), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":"), std::string::npos) << line;
}

TEST(OpLatencyContract, DlioTrialsEmitNoOpLatencyKey) {
  const JsonValue cfg = mustParse(R"({"site":"lassen","storage":"vast",
    "dlio":{"nodes":1,"procsPerNode":2,"workload":{"name":"tiny","samples":16,
    "sampleSize":153600,"transferSize":153600,"computeTimePerBatch":0.005}}})");
  const sweep::TrialMetrics m = sweep::runTrial("dlio", cfg);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_FALSE(m.latencyCapable);
  const std::string line = sweep::toJsonlLine({sweep::Trial{}, m});
  EXPECT_EQ(line.find("opLatency"), std::string::npos) << line;
}

// The workload summary JSONL follows the same contract.
TEST(OpLatencyContract, WorkloadSummaryNullWithoutCollection) {
  workload::WorkloadOutcome out;
  out.generator = "openloop";
  const std::string jsonl = workload::toJsonl(out);
  EXPECT_NE(jsonl.find("\"opLatency\":null"), std::string::npos) << jsonl;
  out.opLatencies = {0.001, 0.002, 0.003};
  const std::string withLat = workload::toJsonl(out);
  EXPECT_NE(withLat.find("\"opLatency\":{"), std::string::npos) << withLat;
}

}  // namespace
}  // namespace hcsim
