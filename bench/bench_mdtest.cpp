// Extension bench: MDTest across the paper's deployments. Not a figure
// in this paper, but the metadata companion every related-work
// evaluation pairs with IOR (§II) — and a dimension where the four
// systems differ sharply: VAST's stateless CNodes vs GPFS's token
// manager vs Lustre's MDS pool vs the local kernel.

#include <cstdio>

#include "core/experiment.hpp"
#include "mdtest/mdtest.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  std::printf("== MDTest: metadata rates across deployments (1 node x 16 procs) ==\n\n");

  const struct {
    Site site;
    StorageKind kind;
  } targets[] = {
      {Site::Lassen, StorageKind::Vast},   {Site::Lassen, StorageKind::Gpfs},
      {Site::Quartz, StorageKind::Lustre}, {Site::Wombat, StorageKind::Vast},
      {Site::Wombat, StorageKind::NvmeLocal},
  };

  for (bool unique : {false, true}) {
    ResultTable t(unique ? "unique directory per task (-u)" : "one shared directory");
    t.setHeader({"deployment", "create ops/s", "stat ops/s", "remove ops/s"});
    t.setPrecision(0);
    for (const auto& tgt : targets) {
      Environment env = makeEnvironment(tgt.site, tgt.kind, 1);
      MdtestRunner runner(*env.bench, *env.fs);
      MdtestConfig cfg;
      cfg.nodes = 1;
      cfg.procsPerNode = 16;
      cfg.itemsPerProc = 128;
      cfg.uniqueDirPerTask = unique;
      cfg.repetitions = 3;
      cfg.noiseStdDevFrac = 0.03;
      const MdtestResult r = runner.run(cfg);
      t.addRow({std::string(toString(tgt.kind)) + "@" + toString(tgt.site),
                r.createOpsPerSec.mean, r.statOpsPerSec.mean, r.removeOpsPerSec.mean});
    }
    std::printf("%s\n", t.toString().c_str());
  }
  return 0;
}
