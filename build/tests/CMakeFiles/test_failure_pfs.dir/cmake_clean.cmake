file(REMOVE_RECURSE
  "CMakeFiles/test_failure_pfs.dir/test_failure_pfs.cpp.o"
  "CMakeFiles/test_failure_pfs.dir/test_failure_pfs.cpp.o.d"
  "test_failure_pfs"
  "test_failure_pfs.pdb"
  "test_failure_pfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
