#include "ior/ior_runner.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(IorConfig, ValidateRejectsBadGeometry) {
  IorConfig c;
  c.blockSize = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = IorConfig{};
  c.transferSize = 3;  // does not divide blockSize
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = IorConfig{};
  c.nodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = IorConfig{};
  c.repetitions = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(IorConfig, GeometryDerivations) {
  IorConfig c;
  c.blockSize = units::MiB;
  c.transferSize = 256 * units::KiB;
  c.segments = 10;
  c.nodes = 2;
  c.procsPerNode = 4;
  EXPECT_EQ(c.totalProcs(), 8u);
  EXPECT_EQ(c.bytesPerProc(), 10 * units::MiB);
  EXPECT_EQ(c.totalBytes(), 80 * units::MiB);
  EXPECT_EQ(c.transfersPerProc(), 40u);
}

TEST(IorConfig, ScalabilityPresetMatchesPaperGeometry) {
  const IorConfig c = IorConfig::scalability(AccessPattern::SequentialWrite, 4, 44);
  EXPECT_EQ(c.blockSize, units::MiB);    // "block and transfer size to 1 MB"
  EXPECT_EQ(c.transferSize, units::MiB);
  EXPECT_EQ(c.segments, 3000u);          // "segment number to 3,000"
  // "approximately 120 GB per node"
  const double gbPerNode =
      static_cast<double>(c.bytesPerProc()) * 44.0 / static_cast<double>(units::GB);
  EXPECT_GT(gbPerNode, 110.0);
  EXPECT_LT(gbPerNode, 145.0);
  EXPECT_TRUE(c.reorderTasks);
  EXPECT_EQ(c.mode, IorConfig::Mode::Coalesced);
}

TEST(IorConfig, SingleNodeFsyncPreset) {
  const IorConfig c = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 8);
  EXPECT_TRUE(c.fsyncPerWrite);
  EXPECT_EQ(c.mode, IorConfig::Mode::PerOp);
  EXPECT_EQ(c.nodes, 1u);
  EXPECT_EQ(c.procsPerNode, 8u);
  const IorConfig r = IorConfig::singleNodeFsync(AccessPattern::SequentialRead, 8);
  EXPECT_FALSE(r.fsyncPerWrite);  // reads don't fsync
}

TEST(IorConfig, DescribeMentionsFlags) {
  IorConfig c = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 4);
  const std::string d = c.describe();
  EXPECT_NE(d.find("-e"), std::string::npos);
  EXPECT_NE(d.find("POSIX"), std::string::npos);
  EXPECT_NE(d.find("seq-write"), std::string::npos);
}

struct Harness {
  explicit Harness(std::size_t nodes = 2)
      : bench(Machine::wombat(), nodes), fs(bench.attachVast(vastOnWombat())) {}
  TestBench bench;
  std::unique_ptr<VastModel> fs;
};

TEST(IorRunner, ReportsPositiveBandwidthAndBytes) {
  Harness h;
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 2, 8);
  cfg.segments = 64;  // keep the test quick
  const IorResult r = runner.run(cfg);
  EXPECT_GT(r.bandwidth.mean, 0.0);
  EXPECT_EQ(r.totalBytes, cfg.totalBytes());
  EXPECT_GT(r.meanElapsed, 0.0);
  EXPECT_EQ(r.samples.size(), 1u);
}

TEST(IorRunner, RepetitionsProduceSpreadWithNoise) {
  Harness h;
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 1, 4);
  cfg.segments = 64;
  cfg.repetitions = 10;
  cfg.noiseStdDevFrac = 0.05;
  const IorResult r = runner.run(cfg);
  EXPECT_EQ(r.samples.size(), 10u);
  EXPECT_LT(r.bandwidth.min, r.bandwidth.max);
  EXPECT_GT(r.bandwidth.stddev, 0.0);
}

TEST(IorRunner, NoNoiseRepetitionsAreIdentical) {
  Harness h;
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 1, 4);
  cfg.segments = 64;
  cfg.repetitions = 3;
  const IorResult r = runner.run(cfg);
  EXPECT_DOUBLE_EQ(r.bandwidth.min, r.bandwidth.max);
}

TEST(IorRunner, DeterministicAcrossRuns) {
  const auto once = [] {
    Harness h;
    IorRunner runner(h.bench, *h.fs);
    IorConfig cfg = IorConfig::scalability(AccessPattern::RandomRead, 2, 8);
    cfg.segments = 32;
    return runner.run(cfg).bandwidth.mean;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(IorRunner, ThrowsWhenConfigExceedsBenchNodes) {
  Harness h(2);
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 4, 4);
  EXPECT_THROW(runner.run(cfg), std::invalid_argument);
}

TEST(IorRunner, PerOpModeCompletesAndIsSlowerWithFsync) {
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig sync = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 4);
  sync.segments = 32;
  IorConfig async = sync;
  async.fsyncPerWrite = false;
  const double syncBw = runner.run(sync).bandwidth.mean;
  const double asyncBw = runner.run(async).bandwidth.mean;
  EXPECT_GT(syncBw, 0.0);
  EXPECT_GT(asyncBw, syncBw);
}

TEST(IorRunner, CoalescedAndPerOpAgreeWithoutFsync) {
  // The coalescing optimization must not change the answer materially
  // when no per-op serialization exists.
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig coalesced = IorConfig::scalability(AccessPattern::SequentialWrite, 1, 4);
  coalesced.segments = 64;
  IorConfig perOp = coalesced;
  perOp.mode = IorConfig::Mode::PerOp;
  const double a = runner.run(coalesced).bandwidth.mean;
  const double b = runner.run(perOp).bandwidth.mean;
  EXPECT_NEAR(a / b, 1.0, 0.3);
}

TEST(IorRunner, MoreNodesNeverSlowerAggregate) {
  // Weak monotonicity of aggregate bandwidth in node count.
  const auto at = [](std::size_t nodes) {
    TestBench bench(Machine::wombat(), nodes);
    auto fs = bench.attachVast(vastOnWombat());
    IorRunner runner(bench, *fs);
    IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, nodes, 8);
    cfg.segments = 64;
    return runner.run(cfg).bandwidth.mean;
  };
  const double one = at(1);
  const double four = at(4);
  EXPECT_GE(four, one * 0.99);
}

TEST(IorConfig, StonewallRequiresPerOpMode) {
  IorConfig c = IorConfig::scalability(AccessPattern::SequentialWrite, 1, 4);
  c.stonewallSeconds = 5.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.mode = IorConfig::Mode::PerOp;
  c.validate();
  c.stonewallSeconds = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(IorRunner, StonewallCutsRunShortButKeepsBandwidth) {
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig full = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 4);
  full.segments = 512;
  const IorResult complete = runner.run(full);

  IorConfig walled = full;
  walled.stonewallSeconds = complete.meanElapsed / 4.0;
  const IorResult cut = runner.run(walled);
  EXPECT_LT(cut.totalBytes, complete.totalBytes);
  EXPECT_LT(cut.meanElapsed, complete.meanElapsed * 0.6);
  // Bandwidth is computed over bytes actually moved: stays comparable.
  EXPECT_NEAR(cut.bandwidth.mean / complete.bandwidth.mean, 1.0, 0.25);
}

TEST(IorRunner, PerOpModeReportsLatencyDistribution) {
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 4);
  cfg.segments = 64;
  const IorResult r = runner.run(cfg);
  EXPECT_EQ(r.opLatency.count, 4u * 64u);
  EXPECT_GT(r.opLatency.min, 0.0);
  EXPECT_LE(r.opLatency.min, r.opLatency.p50);
  EXPECT_LE(r.opLatency.p50, r.opLatency.p95);
  EXPECT_LE(r.opLatency.p95, r.opLatency.p99);
  EXPECT_LE(r.opLatency.p99, r.opLatency.max);
}

TEST(IorRunner, CoalescedModeHasNoOpLatencies) {
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 1, 4);
  cfg.segments = 32;
  EXPECT_EQ(runner.run(cfg).opLatency.count, 0u);
}

TEST(IorRunner, FsyncRaisesTailLatency) {
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig sync = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 8);
  sync.segments = 64;
  IorConfig async = sync;
  async.fsyncPerWrite = false;
  const Summary s = runner.run(sync).opLatency;
  const Summary a = runner.run(async).opLatency;
  EXPECT_GT(s.p99, a.p99);
}

TEST(IorRunner, QosWeightProtectsForeground) {
  // Two node groups on one VAST appliance; the weighted group's flows
  // finish sooner.
  TestBench bench(Machine::wombat(), 2);
  auto fs = bench.attachVast(vastOnWombat());
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialRead;
  ph.requestSize = units::MiB;
  ph.nodes = 2;
  ph.procsPerNode = 8;
  ph.workingSetBytes = 16ull * units::GiB;
  fs->beginPhase(ph);
  SimTime heavyEnd = 0, lightEnd = 0;
  for (std::uint32_t n = 0; n < 2; ++n) {
    IoRequest req;
    req.client = {n, 0};
    req.fileId = n + 1;
    req.bytes = 4ull * units::GiB;
    req.pattern = AccessPattern::SequentialRead;
    req.ops = 4096;
    req.streams = 8;
    req.qosWeight = n == 0 ? 4.0 : 1.0;
    fs->submit(req, [&, n](const IoResult& r) { (n == 0 ? heavyEnd : lightEnd) = r.endTime; });
  }
  bench.sim().run();
  EXPECT_LT(heavyEnd, lightEnd);
}

TEST(IorRunner, ReadsAfterWritesSeeWorkingSet) {
  // Working set is passed to the model: a small read working set should
  // enjoy DNode-cache hits and beat the QLC-bound cold case.
  Harness h(1);
  IorRunner runner(h.bench, *h.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 1, 8);
  cfg.segments = 64;
  const double bw = runner.run(cfg).bandwidth.mean;
  EXPECT_GT(bw, 0.0);
}

}  // namespace
}  // namespace hcsim
