#include "daos/daos_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

namespace {

/// splitmix64 finalizer — a cheap, well-mixed deterministic hash so
/// object placement is uniform over the targets and stable across runs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

DaosModel::DaosModel(Simulator& sim, Topology& topo, DaosConfig config,
                     std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)) {
  cfg_.validate();
  targets_.reserve(cfg_.totalTargets());
  for (std::size_t i = 0; i < cfg_.totalTargets(); ++i) {
    Target t;
    t.link = topology().addLink("daos.target.t" + std::to_string(i), cfg_.targetBandwidth, 0.0);
    t.xstreams =
        std::make_unique<DeviceQueue>(sim, cfg_.xstreamsPerTarget, "daos.xstream.t" + std::to_string(i));
    targets_.push_back(std::move(t));
  }
  // dkey/akey lookups are served by the target engines themselves — no
  // separate metadata server tier stands in the data path.
  configureMetadataPath(cfg_.totalTargets(), cfg_.metadataServiceTime, cfg_.fabric.baseRtt,
                        cfg_.metadataSharedDirPenalty);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
}

void DaosModel::onPhaseChange() {
  const double eff = isSequential(phase().pattern) ? 1.0 : cfg_.randomEfficiency;
  FlowNetwork& net = topology().network();
  for (const Target& t : targets_) net.setLinkCapacity(t.link, cfg_.targetBandwidth * eff);
}

std::size_t DaosModel::primaryTarget(std::uint64_t objectId) {
  const std::size_t n = cfg_.totalTargets();
  std::size_t idx = static_cast<std::size_t>(mix64(objectId) % n);
  for (std::size_t hop = 0; hop < n; ++hop) {
    const std::size_t probe = (idx + hop) % n;
    if (failedTargets_.count(probe) == 0) {
      placementSkips_ += hop;
      return probe;
    }
  }
  throw std::runtime_error("DaosModel: no live target to place object on");
}

std::vector<std::size_t> DaosModel::writeGroup(std::uint64_t objectId) {
  const std::size_t n = cfg_.totalTargets();
  const std::size_t first = primaryTarget(objectId);
  std::vector<std::size_t> group;
  group.reserve(cfg_.redundancyGroupSize);
  for (std::size_t hop = 0; hop < n && group.size() < cfg_.redundancyGroupSize; ++hop) {
    const std::size_t probe = (first + hop) % n;
    if (failedTargets_.count(probe) == 0) group.push_back(probe);
  }
  return group;  // shrinks below redundancyGroupSize only when few targets survive
}

void DaosModel::serveAt(std::size_t targetIdx, const IoRequest& req, Bytes bytes, Seconds perOp,
                        IoCallback cb) {
  Target& target = targets_[targetIdx];  // vector never resizes after ctor
  target.xstreams->submit(cfg_.targetServiceTime,
                          [this, &target, req, bytes, perOp, cb = std::move(cb)]() mutable {
                            Route route{clientNic(req.client.node), target.link};
                            launchTransfer(req, bytes, route, cfg_.targetBandwidth, perOp, 0.0,
                                           std::move(cb));
                          });
}

void DaosModel::submit(const IoRequest& req, IoCallback cb) {
  if (aliveTargets() == 0) throw std::runtime_error("DaosModel: all targets failed");
  const bool read = isRead(req.pattern);
  // Epoch commit per fsync'd op; DAOS has no client page cache to flush,
  // so the cost is a fixed commit latency, not a device FLUSH.
  const Seconds perOp = (!read && req.fsync) ? cfg_.fsyncLatency : 0.0;
  if (read) {
    ++reads_;
    serveAt(primaryTarget(req.fileId), req, req.bytes, perOp, std::move(cb));
    return;
  }
  ++writes_;
  const std::vector<std::size_t> group = writeGroup(req.fileId);
  replicaWrites_ += group.size();
  if (group.size() == 1) {
    serveAt(group.front(), req, req.bytes, perOp, std::move(cb));
    return;
  }
  // Client-driven replication: each replica is a full RPC + bulk through
  // the client's endpoint; the write acks when the slowest replica
  // lands. Aggregate payload bytes are reported once (replica copies are
  // redundancy, not goodput).
  struct FanOut {
    SimTime start = 0.0;
    SimTime end = 0.0;
  };
  auto state = std::make_shared<FanOut>();
  state->start = simulator().now();
  const Bytes aggregate = req.bytes * std::max<std::uint32_t>(1, req.members);
  auto barrier = completionBarrier(group.size(), [state, aggregate, cb = std::move(cb)] {
    if (cb) cb(IoResult{state->start, state->end, aggregate});
  });
  for (std::size_t idx : group) {
    serveAt(idx, req, req.bytes, perOp, [state, barrier](const IoResult& r) {
      state->end = std::max(state->end, r.endTime);
      barrier();
    });
  }
}

bool DaosModel::applyFault(const FaultSpec& f) {
  if (f.component != "target") return false;
  if (f.index >= targets_.size()) {
    throw std::out_of_range("DaosModel: target index " + std::to_string(f.index) +
                            " out of range (have " + std::to_string(targets_.size()) + ")");
  }
  FlowNetwork& net = topology().network();
  switch (f.action) {
    case FaultAction::Fail:
      failedTargets_.insert(f.index);
      slowTargets_.erase(f.index);
      net.failLink(targets_[f.index].link);
      break;
    case FaultAction::FailSlow:
      slowTargets_[f.index] = f.severity;
      net.setLinkHealth(targets_[f.index].link, f.severity);
      break;
    case FaultAction::Restore:
      failedTargets_.erase(f.index);
      slowTargets_.erase(f.index);
      net.restoreLink(targets_[f.index].link);
      break;
  }
  return true;
}

std::size_t DaosModel::faultComponentCount(const std::string& component) const {
  return component == "target" ? targets_.size() : 0;
}

Route DaosModel::rebuildRoute(const FaultSpec& restored) {
  if (restored.component != "target" || restored.index >= targets_.size()) return {};
  // Re-replication streams into the restored target's partition,
  // competing with foreground bulk traffic on that link.
  return Route{targets_[restored.index].link};
}

void DaosModel::exportMetrics(telemetry::MetricsRegistry& reg) const {
  StorageModelBase::exportMetrics(reg);
  reg.gauge("daos.targets", static_cast<double>(targets_.size()));
  reg.gauge("daos.targets_alive", static_cast<double>(aliveTargets()));
  reg.gauge("daos.redundancy_group", static_cast<double>(cfg_.redundancyGroupSize));
  reg.counter("daos.reads", static_cast<double>(reads_));
  reg.counter("daos.writes", static_cast<double>(writes_));
  reg.counter("daos.replica_writes", static_cast<double>(replicaWrites_));
  reg.counter("daos.placement_skips", static_cast<double>(placementSkips_));
  std::uint64_t completed = 0;
  std::size_t queued = 0;
  std::size_t busy = 0;
  for (const Target& t : targets_) {
    completed += t.xstreams->completed();
    queued += t.xstreams->queued();
    busy += t.xstreams->busy();
  }
  reg.counter("daos.xstream.ops_completed", static_cast<double>(completed));
  reg.gauge("daos.xstream.queued", static_cast<double>(queued));
  reg.gauge("daos.xstream.busy", static_cast<double>(busy));
}

}  // namespace hcsim
