#pragma once
// LustreConfig — the LC Lustre instance (paper §IV-B): 16 MDSs with SAS
// SSD ZFS mirrors, 36 OSSs with 80-HDD raidz2 groups, EDR InfiniBand SAN,
// clients attached over 100 Gb Omni-Path (Quartz/Ruby).

#include <cstddef>
#include <string>

#include "device/hdd_raid.hpp"
#include "device/ssd.hpp"
#include "util/units.hpp"

namespace hcsim {

struct LustreConfig {
  std::string name = "Lustre";

  // ---- Metadata path ----
  std::size_t mdsCount = 16;
  SsdSpec mdsSsd = SsdSpec::sasSsd();
  Seconds mdsLatency = units::usec(250);
  /// Per-op service at an MDS (SAS-SSD ZFS mirrors: fast lookups).
  Seconds metadataServiceTime = units::usec(180);
  double metadataSharedDirPenalty = 3.0;  ///< single-dir DLM contention
  /// N-1 shared-file costs: LDLM extent locks shrink under contention.
  Seconds sharedFileLockLatency = units::usec(800);
  double sharedFileEfficiency = 0.7;

  // ---- Object storage path ----
  std::size_t ossCount = 36;
  /// Per-OSS network/processing ceiling.
  Bandwidth ossBandwidth = units::gbs(3.0);
  HddSpec hdd = HddSpec::nearlineSas();
  std::size_t spindlesPerOss = 80;
  double raidz2Overhead = 0.25;

  // ---- Striping ----
  std::size_t stripeCount = 1;        ///< OSTs per file (default PFL off)
  Bytes stripeSize = units::MiB;

  // ---- Client ----
  /// Omni-Path: 100 Gb/s per compute node.
  Bandwidth clientCap = units::gbps(100);

  // ---- Latencies ----
  Seconds rpcLatency = units::usec(300);
  /// fsync commit: ZFS transaction-group / ZIL flush on HDD raidz2.
  Seconds commitLatency = units::msec(3.5);
  /// Random-read seek+readahead-miss penalty per op at the client.
  Seconds randomReadPenalty = units::msec(10.0);

  Bytes capacityTotal = 30 * units::PB;

  void validate() const;

  /// The LC instance serving Quartz and Ruby.
  static LustreConfig lcInstance();
};

}  // namespace hcsim
