#include "trace/trace_import.hpp"

#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace hcsim {

namespace {

TraceEventKind kindFromCat(const std::string& cat) {
  if (cat == "read") return TraceEventKind::Read;
  if (cat == "write") return TraceEventKind::Write;
  if (cat == "compute") return TraceEventKind::Compute;
  return TraceEventKind::Other;
}

/// Convert one parsed element into a TraceEvent. Returns:
///   1 = recorded, 0 = valid-but-ignored (non-"X" phase), -1 = malformed.
int importElement(const JsonValue& ev, TraceLog& log) {
  if (!ev.isObject()) return -1;
  if (ev.stringOr("ph", "") != "X") return 0;  // metadata/other phases
  // A complete event without a numeric timestamp or duration carries no
  // usable timeline information — treat as malformed.
  const JsonValue* ts = ev.find("ts");
  const JsonValue* dur = ev.find("dur");
  if (!ts || !ts->isNumber() || !dur || !dur->isNumber()) return -1;

  TraceEvent te;
  te.name = ev.stringOr("name", "");
  te.kind = kindFromCat(ev.stringOr("cat", ""));
  te.pid = static_cast<std::uint32_t>(ev.numberOr("pid", 0));
  te.tid = static_cast<std::uint32_t>(ev.numberOr("tid", 0));
  te.start = *ts->number() * 1e-6;
  te.duration = *dur->number() * 1e-6;
  if (const JsonValue* args = ev.find("args"); args && args->isObject()) {
    te.bytes = static_cast<Bytes>(args->numberOr("bytes", 0));
  }
  log.record(std::move(te));
  return 1;
}

/// Last-resort recovery for documents whose outer JSON is broken
/// (truncated by a killed run): treat every line that contains a
/// complete {...} object as a candidate event. Returns true if at least
/// one event was recovered.
bool salvageLines(const std::string& json, TraceLog& parsed, TraceImportStats& stats) {
  std::istringstream in(json);
  std::string line;
  bool any = false;
  while (std::getline(in, line)) {
    const std::size_t open = line.find('{');
    const std::size_t close = line.rfind('}');
    if (open == std::string::npos || close == std::string::npos || close < open) continue;
    JsonValue ev;
    if (!parseJson(line.substr(open, close - open + 1), ev)) {
      ++stats.skipped;  // a braced fragment that still doesn't parse
      continue;
    }
    const int r = importElement(ev, parsed);
    if (r > 0) {
      ++stats.imported;
      any = true;
    } else if (r < 0) {
      ++stats.skipped;
    }
  }
  return any;
}

}  // namespace

bool parseChromeTraceJson(const std::string& json, TraceLog& out, TraceImportStats* statsOut) {
  TraceImportStats stats;
  TraceLog parsed;
  JsonValue root;
  bool ok = false;
  if (parseJson(json, root) && root.isObject()) {
    const JsonValue* events = root.find("traceEvents");
    if (events && events->isArray()) {
      for (const JsonValue& ev : *events->array()) {
        const int r = importElement(ev, parsed);
        if (r > 0) {
          ++stats.imported;
        } else if (r < 0) {
          ++stats.skipped;
        }
      }
      ok = true;  // well-formed document, even if it held zero events
    }
  }
  if (!ok) ok = salvageLines(json, parsed, stats);
  if (ok) {
    for (const auto& e : parsed.events()) out.record(e);
  }
  if (statsOut) *statsOut = stats;
  return ok;
}

bool readChromeTrace(const std::string& path, TraceLog& out, TraceImportStats* stats) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseChromeTraceJson(buf.str(), out, stats);
}

}  // namespace hcsim
