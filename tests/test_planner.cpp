#include "core/planner.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

PlanSpace smallSpace() {
  PlanSpace space;
  space.cnodeChoices = {4, 16};
  space.nconnectChoices = {1, 16};
  return space;
}

PlanGoal quickGoal(double minGBs) {
  PlanGoal goal;
  goal.pattern = AccessPattern::SequentialWrite;
  goal.minGBsPerNode = minGBs;
  goal.nodes = 4;
  goal.procsPerNode = 16;
  goal.probeBytesPerProc = 128 * units::MiB;
  return goal;
}

TEST(Planner, EnumeratesTheSearchSpace) {
  const auto candidates = planVastDeployment(Machine::wombat(), quickGoal(1.0), smallSpace());
  // 2 cnode choices x (1 TCP + 2 RDMA nconnects) = 6.
  EXPECT_EQ(candidates.size(), 6u);
  for (const auto& c : candidates) {
    EXPECT_GT(c.measuredGBsPerNode, 0.0);
  }
}

TEST(Planner, GoalMeetingCandidatesSortFirstCheapestAmongThem) {
  const auto candidates = planVastDeployment(Machine::wombat(), quickGoal(1.0), smallSpace());
  ASSERT_FALSE(candidates.empty());
  bool seenMiss = false;
  double lastCost = 0.0;
  for (const auto& c : candidates) {
    if (!c.meetsGoal) {
      seenMiss = true;
    } else {
      EXPECT_FALSE(seenMiss) << "goal-meeting candidate sorted after a miss";
      EXPECT_GE(c.costUnits(), lastCost);
      lastCost = c.costUnits();
    }
  }
}

TEST(Planner, BestPrefersRdmaForHighGoals) {
  // 1 GB/s per node is out of reach for the TCP gateway candidates.
  const PlanCandidate best = bestVastDeployment(Machine::wombat(), quickGoal(1.0), smallSpace());
  EXPECT_TRUE(best.meetsGoal);
  EXPECT_EQ(best.config.transport, NfsTransport::Rdma);
}

TEST(Planner, TrivialGoalPicksCheapestHardware) {
  const PlanCandidate best = bestVastDeployment(Machine::wombat(), quickGoal(0.01), smallSpace());
  EXPECT_TRUE(best.meetsGoal);
  EXPECT_EQ(best.config.cnodes, 4u);  // cheapest CNode count suffices
}

TEST(Planner, ImpossibleGoalReturnsFastestMiss) {
  const PlanCandidate best = bestVastDeployment(Machine::wombat(), quickGoal(1e6), smallSpace());
  EXPECT_FALSE(best.meetsGoal);
  // Still the fastest of the misses.
  const auto all = planVastDeployment(Machine::wombat(), quickGoal(1e6), smallSpace());
  for (const auto& c : all) {
    EXPECT_LE(c.measuredGBsPerNode, best.measuredGBsPerNode + 1e-9);
  }
}

TEST(Planner, TcpCandidatesCollapseNconnect) {
  // TCP mounts are single-session: only one TCP candidate per cnode count.
  const auto candidates = planVastDeployment(Machine::wombat(), quickGoal(1.0), smallSpace());
  std::size_t tcp = 0;
  for (const auto& c : candidates) {
    if (c.config.transport == NfsTransport::Tcp) {
      ++tcp;
      EXPECT_EQ(c.config.nconnect, 1u);
    }
  }
  EXPECT_EQ(tcp, 2u);
}

}  // namespace
}  // namespace hcsim
