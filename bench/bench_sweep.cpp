// Fig 2 scalability grid, driven through the hcsim::sweep engine: the
// same storage x access x nodes series as bench_fig2_scalability, but
// expanded from a declarative spec and executed on the work-stealing
// pool. Prints one figure-style table per access pattern plus the
// aggregate accumulator the engine maintains.

#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

sweep::SweepSpec fig2Spec() {
  sweep::SweepSpec spec;
  spec.name = "fig2-lassen";
  spec.experiment = "ior";
  JsonObject ior;
  ior["segments"] = 400;
  ior["procsPerNode"] = 16;
  ior["repetitions"] = 1;
  JsonObject base;
  base["site"] = "lassen";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));
  spec.axes.push_back({"storage", {JsonValue("gpfs"), JsonValue("vast")}});
  spec.axes.push_back(
      {"ior.access", {JsonValue("seq-write"), JsonValue("seq-read"), JsonValue("rand-read")}});
  sweep::Axis nodes;
  nodes.path = "ior.nodes";
  for (std::size_t n : powersOfTwo(32)) nodes.values.push_back(static_cast<double>(n));
  spec.axes.push_back(std::move(nodes));
  return spec;
}

}  // namespace

int main() {
  const sweep::SweepSpec spec = fig2Spec();
  const std::size_t jobs = sweep::defaultJobs();
  std::printf("expanding '%s' to %zu trials, running on %zu jobs\n", spec.name.c_str(),
              spec.trialCount(), jobs);
  const sweep::SweepOutcome out = sweep::runSweep(spec, jobs);

  // Re-group the flat trial list into the paper's figure layout: one
  // table per access pattern, one series per storage system.
  const std::vector<std::string> accesses = {"seq-write", "seq-read", "rand-read"};
  const std::vector<std::string> storages = {"gpfs", "vast"};
  for (const std::string& access : accesses) {
    std::vector<Series> series;
    for (const std::string& storage : storages) {
      Series s;
      s.label = storage;
      for (const auto& r : out.results) {
        if (!r.metrics.ok) continue;
        const JsonValue* a = sweep::jsonPathGet(r.trial.config, "ior.access");
        const JsonValue* st = sweep::jsonPathGet(r.trial.config, "storage");
        const JsonValue* n = sweep::jsonPathGet(r.trial.config, "ior.nodes");
        if (!a || !st || !n || !a->str() || !st->str() || !n->number()) continue;
        if (*a->str() != access || *st->str() != storage) continue;
        BandwidthPoint p;
        p.x = static_cast<std::size_t>(*n->number());
        p.meanGBs = r.metrics.meanGBs;
        p.minGBs = r.metrics.minGBs;
        p.maxGBs = r.metrics.maxGBs;
        s.points.push_back(p);
      }
      series.push_back(std::move(s));
    }
    const ResultTable t =
        makeFigureTable("Fig 2 via sweep engine — " + access + " (reduced geometry)", "nodes",
                        series);
    std::printf("%s", t.toString().c_str());
  }

  std::printf("aggregate: %zu ok trials, mean %.2f GB/s (min %.2f, max %.2f), %zu failed\n",
              out.bandwidthGBs.count(), out.bandwidthGBs.mean(), out.bandwidthGBs.min(),
              out.bandwidthGBs.max(), out.failures);
  std::printf("%s", sweep::toCsv(out).c_str());
  return 0;
}
