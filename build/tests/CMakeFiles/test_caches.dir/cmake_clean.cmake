file(REMOVE_RECURSE
  "CMakeFiles/test_caches.dir/test_caches.cpp.o"
  "CMakeFiles/test_caches.dir/test_caches.cpp.o.d"
  "test_caches"
  "test_caches.pdb"
  "test_caches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
