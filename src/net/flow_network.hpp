#pragma once
// FlowNetwork — event-driven max-min fair bandwidth allocation.
//
// Transfers are "flows": a byte count moving along a Route of Links. At
// any instant every active flow has a rate given by progressive-filling
// max-min fairness subject to (a) each link's capacity and (b) an optional
// per-flow rate cap (used to model single-stream TCP limits, per-NFS-
// session serialization, and device ceilings). Whenever a flow starts or
// finishes, the allocation is recomputed and the completion events of
// affected flows are re-timed — the standard flow-level network
// simulation technique.
//
// ## Epoch re-rating protocol
//
// Each active flow owns exactly one completion event for its whole
// lifetime, scheduled when the flow first gets a positive rate. A
// rebalance of F flows does F in-place `Simulator::adjustKey` updates —
// O(F log n) heap work, zero allocations, zero tombstones — instead of
// the classic cancel + reschedule pair per flow. The flow's `rateEpoch`
// counts completion re-ratings (a fresh schedule or an adjust-key), and
// `scheduledEta` always equals the absolute time the live event will
// fire. adjustKey assigns the event a fresh FIFO sequence number, so
// same-timestamp dispatch order is identical to what cancel +
// reschedule produced. Rebalances that would move the completion by
// less than the hysteresis tolerance skip the heap update but accrue
// the skipped correction in `etaDrift`; once the accrued drift exceeds
// its budget the completion is re-anchored, so error cannot accumulate
// across many small rebalances.
//
// ## Flow classes (hcsim::scale)
//
// A flow launched with `members = N` is a *flow class*: N statistically
// identical member flows collapsed into one entry. `bytes`, `rateCap`
// and `weight` are all PER MEMBER; the class occupies one heap event and
// one ActiveFlow however large N is, so memory and rebalance cost are
// flat in the member count. The solver is hierarchical: progressive
// filling runs over *signature groups* (same route, rate cap and
// weight), each weighted by `weight x total members`, and the resulting
// per-unit-weight share is the analytic within-class split — every
// member of a class receives the same per-member rate a standalone flow
// with that signature would. Because explicit flows are grouped by the
// same rule, a class of N members is byte-identical to N coexisting
// singleton flows of the same signature (see docs/SCALE.md for the
// exactness contract). FlowCompletion reports aggregate bytes
// (per-member bytes x members).

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace hcsim {

using FlowId = std::uint64_t;

/// Everything needed to launch a transfer.
struct FlowSpec {
  Bytes bytes = 0;
  Route route;  ///< may be empty (purely latency-bound transfer)
  /// Per-flow ceiling, e.g. a single TCP stream over NFS cannot exceed
  /// ~1-1.5 GB/s regardless of link speed. Infinity = uncapped.
  Bandwidth rateCap = std::numeric_limits<Bandwidth>::infinity();
  /// Fixed delay before the first byte moves (route latency, protocol
  /// round trips, request setup).
  Seconds startupLatency = 0.0;
  /// QoS weight (> 0): progressive filling raises rates in proportion
  /// to weight, so two flows sharing a link split it weight-wise.
  double weight = 1.0;
  /// Flow-class member count (>= 1): this spec stands for `members`
  /// statistically identical flows. bytes/rateCap/weight are per member;
  /// the class claims `weight * members` of contended links and its
  /// completion reports `bytes * members` aggregate payload.
  std::uint32_t members = 1;
  /// Telemetry span identity — only consulted when the network's
  /// Telemetry sink is attached and enabled. Empty name = "flow".
  std::string spanName;
  std::uint32_t spanPid = 0;
  std::uint32_t spanTid = 0;
};

struct FlowCompletion {
  FlowId id = 0;
  Bytes bytes = 0;          ///< aggregate: per-member bytes x members
  std::uint32_t members = 1;
  SimTime startTime = 0.0;  ///< when startFlow() was called
  SimTime endTime = 0.0;    ///< when the last byte arrived
};

class FlowNetwork {
 public:
  explicit FlowNetwork(Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Add a link; returns its id for use in routes.
  LinkId addLink(std::string name, Bandwidth capacity, Seconds latency = 0.0);

  /// Change a link's capacity at runtime (e.g. a device whose effective
  /// throughput depends on the current access pattern). In-flight flows
  /// are re-rated immediately.
  void setLinkCapacity(LinkId id, Bandwidth capacity);

  /// Fault injection: scale a link's *effective* capacity by a health
  /// factor in [0, 1] without touching the configured capacity, so model
  /// code that re-derives capacities per phase composes with chaos
  /// degradation. In-flight flows re-rate immediately; flows whose whole
  /// path loses capacity stall (rate 0) and resume when health returns.
  void setLinkHealth(LinkId id, double health);
  double linkHealth(LinkId id) const { return links_.at(id.value).health; }

  /// Fail-stop / recover a link: health 0 / 1.
  void failLink(LinkId id) { setLinkHealth(id, 0.0); }
  void restoreLink(LinkId id) { setLinkHealth(id, 1.0); }

  /// Abort an in-flight flow: progress is credited, the completion event
  /// is cancelled, the remaining bytes are dropped and survivors
  /// re-rate. The flow's onComplete never fires. Returns false when the
  /// id is unknown or already finished.
  bool abortFlow(FlowId id);

  /// Substitute `to` for `from` in the routes of all in-flight flows and
  /// re-rate — failover semantics (e.g. NFS retrying in-flight ops
  /// against a surviving server after a node failure). Returns how many
  /// flows were rerouted.
  std::size_t replaceLinkInFlows(LinkId from, LinkId to);

  std::size_t linkCount() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_.at(id.value); }

  /// Sum of link latencies along a route (helper for callers building
  /// startup latencies).
  Seconds routeLatency(const Route& route) const;

  /// Launch a flow. `onComplete` fires exactly once, at the simulated
  /// time the final byte arrives.
  FlowId startFlow(const FlowSpec& spec, std::function<void(const FlowCompletion&)> onComplete);

  /// Number of flow entries currently transferring (a class of any
  /// member count is one entry — this is the memory/rebalance footprint).
  std::size_t activeFlows() const { return active_.size(); }

  /// Total member flows in flight (sum of `members` over active entries).
  std::uint64_t activeMembers() const;

  /// Current aggregate max-min rate of an active flow — per-member rate
  /// x members (0 if unknown/finished). Equals the per-member rate for
  /// singleton flows.
  Bandwidth flowRate(FlowId id) const;

  /// Completion re-ratings performed since construction (fresh schedules
  /// plus in-place adjust-key updates). A rebalance of F running flows
  /// adds at most F; hysteresis-skipped flows add nothing.
  std::uint64_t rerates() const { return rerates_; }

  /// Utilization snapshot of every link.
  std::vector<LinkStats> linkStats() const;

  /// Attach (or detach with nullptr) a telemetry sink. Spans are only
  /// opened while the sink is attached *and* enabled; flows launched
  /// with telemetry off carry a kNoSpan sentinel and cost nothing.
  void setTelemetry(telemetry::Telemetry* tel) { tel_ = tel; }
  telemetry::Telemetry* telemetry() const { return tel_; }

 private:
  /// `bottleneck` sentinels: frozen by the per-flow rate cap / by
  /// nothing (degenerate freeze), rather than by a link index.
  static constexpr std::uint32_t kFrozenByCap = 0xfffffffeu;
  static constexpr std::uint32_t kFrozenByNone = 0xffffffffu;

  struct ActiveFlow {
    FlowId id = 0;
    Route route;
    Bandwidth rateCap = 0.0;   // per member
    double weight = 1.0;       // per member
    std::uint32_t members = 1; // member flows this entry aggregates
    double remaining = 0.0;  // bytes left PER MEMBER (double: fractional progress)
    Bytes totalBytes = 0;    // per member
    SimTime startTime = 0.0;
    SimTime lastUpdate = 0.0;
    Bandwidth rate = 0.0;  // per member (aggregate = rate * members)
    SimTime scheduledEta = -1.0;   // absolute time of the scheduled completion
    std::uint64_t rateEpoch = 0;   // completion re-ratings of this flow
    double etaDrift = 0.0;         // accrued |skipped completion moves| since last re-anchor
    EventId completionEvent{};
    std::function<void(const FlowCompletion&)> onComplete;
    // What froze this flow's rate in the last progressive-filling pass:
    // a link index, kFrozenByCap, or kFrozenByNone. Written
    // unconditionally (one store); read only when telemetry is on.
    std::uint32_t bottleneck = kFrozenByNone;
    std::uint32_t spanIdx = telemetry::kNoSpan;  // open telemetry span, if any
  };

  /// Credit progress to every active flow for time elapsed since its
  /// lastUpdate, at its current rate.
  void advanceProgress();

  /// Recompute the max-min fair allocation and (re)schedule completions.
  void rebalance();

  /// Hierarchical progressive filling over the current active set:
  /// flows are grouped by signature (route, rate cap, weight), each
  /// group weighted by `weight x total members`, and the solved
  /// per-unit-weight share is written back as every member's rate. Fills
  /// `rate` and `bottleneck` fields.
  void computeMaxMinRates();

  void activate(ActiveFlow flow);
  void finish(FlowId id);

  /// Interned stage id for the flow's bottleneck sentinel/link (only
  /// called when telemetry is enabled).
  std::uint32_t bottleneckStage(telemetry::Telemetry& tel, const ActiveFlow& f) const;

  Simulator& sim_;
  std::vector<Link> links_;
  FlowId nextFlowId_ = 1;
  std::uint64_t rerates_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  std::unordered_map<FlowId, ActiveFlow> active_;
};

}  // namespace hcsim
