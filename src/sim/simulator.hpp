#pragma once
// The discrete-event engine at the heart of hcsim.
//
// A Simulator owns a time-ordered queue of events (callbacks). Components
// (network flows, device queues, DLIO worker threads, ...) schedule
// callbacks at future simulated times; `run()` dispatches them in
// (time, insertion-order) order, so same-timestamp events are FIFO and the
// simulation is fully deterministic.
//
// ## Dispatch invariant
//
// Every live event carries a sequence number assigned from a single
// monotone counter at the moment it entered (or re-entered) the queue:
// one per schedule()/scheduleAt() call, one per adjustKey() call, none
// for cancel(). Dispatch always selects the minimum (time, seq) pair, so
// equal-timestamp events fire in the order they were (re)scheduled.
// adjustKey deliberately takes a fresh seq — it is semantically
// "cancel + reschedule, reusing the entry storage" — which keeps the
// dispatch order of a re-rated event identical to what a cancel +
// scheduleAt pair would have produced. Nothing in the engine may reorder
// equal-(time, seq) events or dispatch a cancelled one.
//
// ## Implementation
//
// The queue is an indexed 4-ary heap over a slab of event slots:
//
//  - `slots_` is the slab. A slot owns the callback (an InlineFunction,
//    so captures up to kInlineFunctionCapacity bytes live inside the
//    slot — scheduling allocates nothing once the slab is warm), the
//    (time, seq) key, a generation counter and its current heap index.
//    Freed slots go on a free list and are recycled, so steady-state
//    simulations reuse a small resident slab (see slabSize()).
//  - `heap_` stores slot indices. Because every slot knows its heap
//    position, cancel() removes the entry *in place* in O(log n) and
//    adjustKey() re-sifts in place — there are no tombstones anywhere,
//    so heavily re-rated runs cannot bloat the heap (the previous
//    lazy-deletion scheduler kept cancelled entries queued until their
//    original expiry popped them).
//  - EventId packs (generation << 32 | slot+1). Generations bump on
//    every slot release, so a stale id for a recycled slot can never
//    cancel or adjust the new occupant, and cancel of an already-fired
//    or already-cancelled event is a cheap guaranteed no-op. value==0 is
//    never produced (slot+1 != 0, generation of a live slot != 0), so
//    default EventId{} is always invalid.

#include <cstdint>
#include <vector>

#include "sim/inline_function.hpp"
#include "util/units.hpp"

namespace hcsim {

namespace probe {
class FlightRecorder;
class SelfProfiler;
}  // namespace probe

using SimTime = Seconds;

/// Handle for a scheduled event; can be used to cancel or re-time it.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

/// Event callback type: move-only, captures up to
/// kInlineFunctionCapacity bytes without allocating.
using EventFn = InlineFunction<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0; negative
  /// delays are clamped to zero to keep time monotone).
  EventId schedule(SimTime delay, EventFn fn) {
    return scheduleAt(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  EventId scheduleAt(SimTime t, EventFn fn);

  /// Cancel a pending event: the entry is removed from the heap in place
  /// (no tombstone). Cancelling an already-fired or already-cancelled
  /// event is a harmless no-op. Returns true if it was pending.
  bool cancel(EventId id);

  /// Move a pending event to absolute time `t` (clamped to now()) in
  /// place, reusing its slot and callback. Equivalent to cancel +
  /// scheduleAt of the same callback — including taking a fresh FIFO
  /// sequence number, so at its new timestamp the event fires after any
  /// event already queued for that instant. Returns false (and does
  /// nothing) when the id is no longer pending.
  bool adjustKey(EventId id, SimTime t);

  /// Dispatch events until the queue is empty.
  void run();

  /// Dispatch events with time <= `t`, then set now() = t.
  void runUntil(SimTime t);

  /// Dispatch a single event; returns false if the queue was empty.
  bool step();

  /// Number of events dispatched since construction.
  std::uint64_t eventsDispatched() const { return dispatched_; }

  /// Lifetime engine counters (telemetry): schedule/scheduleAt calls,
  /// successful cancels, successful adjustKey re-timings.
  std::uint64_t eventsScheduled() const { return scheduled_; }
  std::uint64_t eventsCancelled() const { return cancelled_; }
  std::uint64_t eventsAdjusted() const { return adjusted_; }

  /// Pending event count (cancelled events leave the queue immediately).
  std::size_t pendingEvents() const { return heap_.size(); }

  /// High-water mark of pendingEvents() over the simulator's lifetime.
  /// The scale gates use this as flat-memory evidence: a flow class of a
  /// million members holds ONE pending completion event, so the peak
  /// stays proportional to class count, not client count.
  std::size_t peakPendingEvents() const { return peakPending_; }

  bool empty() const { return heap_.empty(); }

  /// Slab footprint: slots ever allocated (live + recycled). Stays flat
  /// under steady-state schedule/dispatch churn — observable evidence
  /// that entry storage is recycled rather than re-allocated.
  std::size_t slabSize() const { return slots_.size(); }

  /// Attach a flight recorder (hcsim::probe): the dispatch loop emits a
  /// decimated heartbeat record every kHeartbeatEvery dispatches, and
  /// components reached through this simulator (FlowNetwork re-rates,
  /// ClientSession retries) record their own events into it. Recording
  /// is observe-only — it never changes what is simulated. Null (the
  /// default) reduces every hook to one pointer test.
  void setRecorder(probe::FlightRecorder* recorder) { recorder_ = recorder; }
  probe::FlightRecorder* recorder() const { return recorder_; }

  /// Attach a self-profiler: dispatchRoot charges heap maintenance to
  /// the `dispatch` bucket and callback bodies to `callback`; the
  /// FlowNetwork charges max-min solves to `solve`. A null or disabled
  /// profiler costs a branch per scope, no clock reads.
  void setProfiler(probe::SelfProfiler* profiler) { profiler_ = profiler; }
  probe::SelfProfiler* profiler() const { return profiler_; }

  /// Heartbeat decimation: one EngineHeartbeat record per this many
  /// dispatches (power of two; the hook is a mask test).
  static constexpr std::uint64_t kHeartbeatEvery = 1024;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct Slot {
    SimTime time = 0.0;
    std::uint64_t seq = 0;       // tie-break: FIFO for equal timestamps
    std::uint32_t gen = 0;       // bumped on release; 0 only before first use
    std::uint32_t heapPos = kNpos;
    EventFn fn;
  };

  /// (time, seq) strict ordering between two slots.
  bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.seq < sb.seq;
  }

  std::uint32_t allocSlot();
  void releaseSlot(std::uint32_t s);

  void siftUp(std::uint32_t pos);
  void siftDown(std::uint32_t pos);
  void heapErase(std::uint32_t pos);

  /// Decode an EventId to a live slot index; kNpos when stale/invalid.
  std::uint32_t decode(EventId id) const;

  /// Pop the heap root and invoke its callback (queue must be non-empty).
  void dispatchRoot();

  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 1;
  std::size_t peakPending_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t adjusted_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::vector<std::uint32_t> heap_;
  probe::FlightRecorder* recorder_ = nullptr;
  probe::SelfProfiler* profiler_ = nullptr;
};

}  // namespace hcsim
