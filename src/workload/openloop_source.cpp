#include "workload/openloop_source.hpp"

#include <algorithm>

#include "scale/flow_class.hpp"

namespace hcsim::workload {

WorkloadPlan OpenLoopSource::load(const WorkloadContext& ctx) {
  (void)ctx;
  zipf_ = std::make_unique<ZipfSampler>(cfg_.objects, cfg_.zipfTheta);
  scale::DemandModel demand;
  if (cfg_.demandSigma > 0.0) {
    demand.kind = scale::DemandKind::Lognormal;
    demand.sigma = cfg_.demandSigma;
  }
  const std::vector<double> mult = scale::demandMultipliers(demand, cfg_.clients);
  ranks_.resize(cfg_.clients);
  for (std::size_t c = 0; c < cfg_.clients; ++c) {
    RankState& st = ranks_[c];
    st.client = ClientId{static_cast<std::uint32_t>(c / cfg_.clientsPerNode),
                         static_cast<std::uint32_t>(c % cfg_.clientsPerNode)};
    // sharedStream: every rank replays one identical arrival stream, the
    // contract behind exact class-partition invariance (see header).
    st.rng.reseed(cfg_.sharedStream ? cfg_.seed
                                    : cfg_.seed ^ ((c + 1) * 0x9e3779b97f4a7c15ull));
    st.rateHz = cfg_.ratePerClientHz * mult[c];
  }

  WorkloadPlan plan;
  plan.ranks = ranks_.size();
  plan.mode = DriveMode::Open;
  plan.clientsPerRank = static_cast<std::uint32_t>(std::max<std::size_t>(1, cfg_.clientsPerRank));
  plan.collectOpLatency = true;
  plan.phase.pattern = AccessPattern::RandomRead;
  plan.phase.requestSize = cfg_.requestBytes;
  plan.phase.nodes = static_cast<std::uint32_t>(cfg_.nodes());
  plan.phase.procsPerNode =
      static_cast<std::uint32_t>(cfg_.clientsPerNode * std::max<std::size_t>(1, cfg_.clientsPerRank));
  plan.phase.readerDiffersFromWriter = true;
  plan.phase.workingSetBytes = static_cast<Bytes>(cfg_.objects) * cfg_.objectBytes;
  plan.horizonSec = cfg_.horizonSec;
  plan.sampleIntervalSec =
      cfg_.sampleIntervalSec > 0.0 ? cfg_.sampleIntervalSec : cfg_.horizonSec / 20.0;
  return plan;
}

NextStatus OpenLoopSource::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  const Seconds gap = st.rng.exponential(1.0 / st.rateHz);
  if (st.clock + gap > cfg_.horizonSec) return NextStatus::End;
  st.clock += gap;

  const std::size_t object = zipf_->sample(st.rng);
  const bool rd = st.rng.uniform() < cfg_.readFraction;
  out.kind = OpKind::Io;
  out.arrivalDelay = gap;
  out.io.client = st.client;
  out.io.fileId = 1 + object;
  const std::uint64_t slots = std::max<std::uint64_t>(1, cfg_.objectBytes / cfg_.requestBytes);
  out.io.offset = st.rng.uniformInt(slots) * static_cast<std::uint64_t>(cfg_.requestBytes);
  out.io.bytes = cfg_.requestBytes;
  out.io.ops = 1;
  out.io.pattern = rd ? AccessPattern::RandomRead : AccessPattern::RandomWrite;
  out.traced = true;
  out.label = rd ? "openloop.read" : "openloop.write";
  out.tracePid = st.client.node;
  out.traceTid = st.client.proc;
  return NextStatus::Op;
}

}  // namespace hcsim::workload
