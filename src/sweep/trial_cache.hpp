#pragma once
// Trial memoization for hcsim::sweep.
//
// A TrialCache maps the canonical identity of a trial — experiment name
// plus the canonical JSON serialization of its config (JsonObject keys
// are sorted and numbers print losslessly, so two semantically equal
// configs always serialize identically) — to the TrialMetrics a
// Simulator produced for it. Trials are deterministic functions of their
// config, so a hit returns exactly the metrics a fresh run would
// produce and sweep/oracle output stays byte-identical with the cache
// on or off, at any job count.
//
// Keys are derived as: key = experiment + '\n' + writeJson(config);
// an FNV-1a 64-bit hash of the key is stored alongside every persisted
// entry as an integrity check (the in-memory map is keyed by the full
// string, so hash collisions can never alias two configs).
//
// Invalidation: the key covers the entire config, so any config change
// misses naturally. What the key can NOT see is a change to the
// simulation code itself — persisted caches are only valid for the
// binary revision that wrote them. Delete the cache file (or let
// check.sh use a build-local path) whenever the engine or a model
// changes; loadFile also rejects entries whose stored hash no longer
// matches their key, so truncated/corrupt files fail loudly.
//
// Thread-safe: lookup/insert take an internal mutex; the work-stealing
// pool shares one cache across workers.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sweep/sweep_runner.hpp"

namespace hcsim::sweep {

/// FNV-1a 64-bit.
std::uint64_t fnv1a64(std::string_view s);

/// Canonical cache key for one trial.
std::string trialKey(const std::string& experiment, const JsonValue& config);

class TrialCache {
 public:
  TrialCache() = default;
  TrialCache(const TrialCache&) = delete;
  TrialCache& operator=(const TrialCache&) = delete;

  /// Metrics for `key`, or nullopt on a miss. Counts a hit or a miss.
  std::optional<TrialMetrics> lookup(const std::string& key) const;

  /// Record metrics for `key` (last writer wins; concurrent writers for
  /// the same key always carry identical metrics, so order is moot).
  void insert(const std::string& key, const TrialMetrics& metrics);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void resetCounters();

  /// Merge entries from a JSONL cache file. A missing file is an empty
  /// cache (returns true); malformed lines or hash/key mismatches fail
  /// the whole load (returns false).
  bool loadFile(const std::string& path);

  /// Write every entry, sorted by key for deterministic bytes.
  bool saveFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::string, TrialMetrics> map_;
};

}  // namespace hcsim::sweep
