#include "lustre/lustre_config.hpp"

#include <stdexcept>

namespace hcsim {

void LustreConfig::validate() const {
  if (mdsCount == 0) throw std::invalid_argument("LustreConfig: mdsCount must be > 0");
  if (ossCount == 0) throw std::invalid_argument("LustreConfig: ossCount must be > 0");
  if (spindlesPerOss == 0) throw std::invalid_argument("LustreConfig: spindlesPerOss must be > 0");
  if (stripeCount == 0) throw std::invalid_argument("LustreConfig: stripeCount must be > 0");
  if (stripeSize == 0) throw std::invalid_argument("LustreConfig: stripeSize must be > 0");
  if (ossBandwidth <= 0.0 || clientCap <= 0.0) {
    throw std::invalid_argument("LustreConfig: bandwidths must be > 0");
  }
  if (raidz2Overhead < 0.0 || raidz2Overhead >= 1.0) {
    throw std::invalid_argument("LustreConfig: raidz2Overhead must be in [0,1)");
  }
}

LustreConfig LustreConfig::lcInstance() {
  return LustreConfig{};  // defaults describe the LC instance
}

}  // namespace hcsim
