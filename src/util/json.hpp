#pragma once
// Minimal JSON value + parser + writer (no external dependencies).
//
// Used by the chrome-trace importer, the config (de)serializers and the
// CLI. Supports the full JSON value model; numbers are doubles (adequate
// for configs and traces), \uXXXX escapes decode to UTF-8 (BMP only).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace hcsim {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() = default;
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : v_(static_cast<double>(u)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::make_shared<JsonArray>(std::move(a))) {}
  JsonValue(JsonObject o) : v_(std::make_shared<JsonObject>(std::move(o))) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isBool() const { return std::holds_alternative<bool>(v_); }
  bool isNumber() const { return std::holds_alternative<double>(v_); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isArray() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v_); }
  bool isObject() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v_); }

  const bool* boolean() const { return std::get_if<bool>(&v_); }
  const double* number() const { return std::get_if<double>(&v_); }
  const std::string* str() const { return std::get_if<std::string>(&v_); }
  const JsonArray* array() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v_);
    return p ? p->get() : nullptr;
  }
  const JsonObject* object() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v_);
    return p ? p->get() : nullptr;
  }
  JsonArray* array() {
    auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v_);
    return p ? p->get() : nullptr;
  }
  JsonObject* object() {
    auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v_);
    return p ? p->get() : nullptr;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Typed convenience getters with defaults.
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key, const std::string& fallback) const;
  bool boolOr(const std::string& key, bool fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonArray>,
               std::shared_ptr<JsonObject>>
      v_ = nullptr;
};

/// Parse a complete JSON document. Returns false on malformed input.
bool parseJson(const std::string& text, JsonValue& out);

/// Serialize (compact; `indent` > 0 pretty-prints).
std::string writeJson(const JsonValue& value, int indent = 0);

/// Escape a string for embedding in JSON (without surrounding quotes).
std::string jsonEscape(const std::string& s);

/// Format a number exactly as the writer does: integral values < 1e15
/// without a fraction, everything else with round-trip (%.17g)
/// precision. Use when streaming JSON by hand so ad-hoc emitters cannot
/// silently truncate (default ostream precision keeps 6 digits).
std::string jsonNumber(double d);

}  // namespace hcsim
