#pragma once
// WorkloadRunner — the single generic driver behind IorRunner,
// DlioRunner, trace replay and the synthetic generators (io500, grammar,
// openloop). It owns everything that used to be duplicated per runner:
// channel bookkeeping, trace recording, completion accounting, barrier
// and phase handling, open-loop arrival scheduling, goodput timeline
// sampling, and the chaos retry layer (every submit goes through a
// per-rank ClientSession, so arming one RetryPolicy gives any generator
// the same timeout/backoff semantics hcsim::chaos uses).

#include <memory>
#include <string>
#include <vector>

#include "cluster/deployments.hpp"
#include "fs/client_session.hpp"
#include "probe/monitor.hpp"
#include "trace/trace_log.hpp"
#include "workload/workload_source.hpp"

namespace hcsim {
class TraceLog;

namespace telemetry {
class MetricsRegistry;
}

namespace workload {

/// One goodput timeline slice (open-loop sampling).
struct WorkloadSample {
  Seconds start = 0.0;
  Seconds end = 0.0;
  double gbs = 0.0;  ///< bytes completed in the slice / slice width
};

struct WorkloadOutcome {
  std::string generator;
  Seconds elapsed = 0.0;     ///< last completion - run start
  Seconds simElapsed = 0.0;  ///< sim clock consumed (includes trailing events)
  Bytes bytesMoved = 0;      ///< completed payload bytes
  std::uint64_t opsIssued = 0;
  std::uint64_t opsCompleted = 0;
  std::uint64_t opsFailed = 0;  ///< retry layer exhausted (0 without retry)
  std::uint64_t metaOps = 0;
  std::uint64_t computeOps = 0;
  std::uint64_t barriers = 0;   ///< barrier releases (not per-rank arrivals)
  std::uint64_t retries = 0;
  std::uint64_t lateCompletions = 0;
  /// Aggregation shape (hcsim::scale): op streams driven and members
  /// per stream. ranks * clientsPerRank = clients simulated.
  std::uint64_t ranks = 0;
  std::uint32_t clientsPerRank = 1;
  std::vector<double> opLatencies;  ///< per class op (plan.collectOpLatency)
  std::vector<WorkloadSample> timeline;

  /// SLO watchdog results (probe monitors; empty without them). The
  /// watchdog observes the timeline sampler and op completions only — a
  /// run with every monitor satisfied is byte-identical to a
  /// monitor-free run.
  std::size_t monitors = 0;
  std::vector<probe::Breach> breaches;

  std::uint64_t clientsTotal() const { return ranks * clientsPerRank; }

  double goodputGBs() const {
    return elapsed > 0.0 ? static_cast<double>(bytesMoved) / elapsed / 1e9 : 0.0;
  }
};

/// Export an outcome as "workload.*" telemetry gauges.
void exportTo(const WorkloadOutcome& out, telemetry::MetricsRegistry& reg);

class WorkloadRunner {
 public:
  WorkloadRunner(TestBench& bench, FileSystemModel& fs) : bench_(bench), fs_(fs) {}

  /// Record traced ops into `log` (nullptr disables).
  void setTraceLog(TraceLog* log) { trace_ = log; }

  /// Arm the chaos timeout/retry/backoff layer for every rank's submits.
  /// Without this call, requests pass straight through to the model,
  /// byte-identically to the pre-refactor runners.
  void enableRetry(RetryPolicy policy) {
    retryEnabled_ = true;
    retry_ = policy;
  }

  /// Attach SLO watchdog monitors, evaluated online against the goodput
  /// timeline sampler and op completions (probe/monitor.hpp).
  void setMonitors(std::vector<probe::MonitorSpec> monitors) { monitors_ = std::move(monitors); }

  /// Override the plan's goodput sample interval (> 0 seconds). Also
  /// enables timeline sampling for closed-loop generators, which have no
  /// horizon: sampling then stops at the first slice boundary after the
  /// workload drains. Without the override only open-loop plans with a
  /// horizon sample, exactly as before.
  void setSampleInterval(Seconds interval) { sampleIntervalOverride_ = interval; }

  /// Chaos landmarks for recoverySec monitors when the run carries an
  /// injected fault schedule: the watchdog's healthy-goodput estimate is
  /// built from slices that close before `firstFaultAt`, and the
  /// recovery clock starts at `lastRestoreAt`.
  void setChaosLandmarks(Seconds firstFaultAt, Seconds lastRestoreAt,
                         double degradedTolerance) {
    haveLandmarks_ = true;
    firstFaultAt_ = firstFaultAt;
    lastRestoreAt_ = lastRestoreAt;
    degradedTolerance_ = degradedTolerance;
  }

  /// Drive the source to completion. Throws std::logic_error when the
  /// simulation drains with live ranks or outstanding I/O (a source
  /// state-machine bug).
  WorkloadOutcome run(WorkloadSource& source);

 private:
  struct Impl;

  TestBench& bench_;
  FileSystemModel& fs_;
  TraceLog* trace_ = nullptr;
  bool retryEnabled_ = false;
  RetryPolicy retry_{};
  std::vector<probe::MonitorSpec> monitors_;
  Seconds sampleIntervalOverride_ = 0.0;  ///< 0 = use the plan's interval
  bool haveLandmarks_ = false;
  Seconds firstFaultAt_ = 0.0;
  Seconds lastRestoreAt_ = -1.0;
  double degradedTolerance_ = 0.02;
};

}  // namespace workload
}  // namespace hcsim
