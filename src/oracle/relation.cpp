#include "oracle/relation.hpp"

#include <sstream>
#include <stdexcept>

#include "oracle/shrink.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/trial_cache.hpp"
#include "util/random.hpp"

namespace hcsim::oracle {

const char* toString(RelationKind k) {
  switch (k) {
    case RelationKind::Monotonic: return "monotonic";
    case RelationKind::ScaleInvariant: return "scale-invariant";
    case RelationKind::Conservation: return "conservation";
    case RelationKind::Determinism: return "determinism";
    case RelationKind::Dominance: return "dominance";
  }
  return "?";
}

void RelationRegistry::add(MetamorphicRelation r) {
  if (find(r.name)) throw std::invalid_argument("oracle: duplicate relation '" + r.name + "'");
  relations_.push_back(std::move(r));
}

const MetamorphicRelation* RelationRegistry::find(const std::string& name) const {
  for (const MetamorphicRelation& r : relations_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

namespace {

/// Deterministic per-case seed: independent of job count and of every
/// other relation in the suite.
std::uint64_t caseSeed(const std::string& relationName, std::uint64_t suiteSeed,
                       std::size_t index) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the name
  for (char c : relationName) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  SplitMix64 sm(h ^ (suiteSeed * 0x9e3779b97f4a7c15ull));
  std::uint64_t s = sm.next();
  return s + index * 0x9e3779b97f4a7c15ull;
}

/// Shrink a failed monotonic case: find the first adjacent violating
/// pair, then bisect that axis interval with fresh trials.
void shrinkMonotonic(const MetamorphicRelation& rel, const RelationCase& c,
                     const std::vector<sweep::TrialMetrics>& metrics, CaseFailure& failure,
                     std::size_t& trialsSpent) {
  std::size_t bad = c.axisValues.size();
  for (std::size_t i = 0; i + 1 < c.axisValues.size(); ++i) {
    if (!metrics[i].ok || !metrics[i + 1].ok) continue;
    if (metrics[i + 1].meanGBs < metrics[i].meanGBs * (1.0 - rel.slack)) {
      bad = i;
      break;
    }
  }
  if (bad == c.axisValues.size()) return;  // failure was not an adjacent drop

  std::size_t probesSpent = 0;
  const auto pairFails = [&](double lo, double hi) {
    JsonValue cfgLo = sweep::deepCopy(c.base);
    JsonValue cfgHi = sweep::deepCopy(c.base);
    sweep::jsonPathSet(cfgLo, c.axis, JsonValue(lo));
    sweep::jsonPathSet(cfgHi, c.axis, JsonValue(hi));
    const sweep::TrialMetrics mLo = sweep::runTrial(rel.experiment, cfgLo);
    const sweep::TrialMetrics mHi = sweep::runTrial(rel.experiment, cfgHi);
    probesSpent += 2;
    return mLo.ok && mHi.ok && mHi.meanGBs < mLo.meanGBs * (1.0 - rel.slack);
  };
  const ShrinkResult s = bisectAxis(c.base, c.axis, c.axisValues[bad], c.axisValues[bad + 1],
                                    rel.integerAxis, pairFails);
  trialsSpent += probesSpent;
  failure.minimalConfig = s.minimalConfig;
  failure.shrinkSummary = s.summary;
}

}  // namespace

RelationReport runRelation(const MetamorphicRelation& rel, const SuiteOptions& options) {
  RelationReport report;
  report.relation = rel.name;
  report.storage = rel.storage;
  report.kind = rel.kind;
  report.axis = rel.axis;
  report.cases = options.casesPerRelation;

  // Expand every case up front (deterministic, cheap), flatten the
  // variants into one batch, and run them all on the pool at once.
  std::vector<RelationCase> cases;
  cases.reserve(options.casesPerRelation);
  std::vector<JsonValue> configs;
  for (std::size_t i = 0; i < options.casesPerRelation; ++i) {
    cases.push_back(rel.generate(caseSeed(rel.name, options.seed, i)));
    for (const JsonValue& v : cases.back().variants) configs.push_back(v);
  }
  const std::vector<sweep::TrialMetrics> metrics =
      sweep::runTrialBatch(rel.experiment, configs, options.jobs, options.cache);
  report.trials = metrics.size();

  std::size_t offset = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const RelationCase& c = cases[i];
    const std::vector<sweep::TrialMetrics> slice(metrics.begin() + offset,
                                                 metrics.begin() + offset + c.variants.size());
    offset += c.variants.size();

    CaseVerdict v;
    for (std::size_t k = 0; k < slice.size(); ++k) {
      if (!slice[k].ok) {
        v.pass = false;
        v.detail = "variant " + std::to_string(k) + " failed to run: " + slice[k].error;
        break;
      }
    }
    if (v.pass) v = rel.verdict(c, slice);
    if (v.pass) continue;

    ++report.failures;
    if (report.failureDetails.size() >= options.maxFailuresDetailed) continue;
    CaseFailure f;
    f.caseIndex = i;
    f.detail = v.detail;
    f.minimalConfig = c.variants.empty() ? c.base : c.variants.back();
    if (options.shrink && rel.kind == RelationKind::Monotonic && !c.axis.empty() &&
        c.axisValues.size() == c.variants.size()) {
      shrinkMonotonic(rel, c, slice, f, report.trials);
    }
    report.failureDetails.push_back(std::move(f));
  }
  return report;
}

std::vector<RelationReport> runSuite(const RelationRegistry& registry,
                                     const SuiteOptions& options) {
  std::vector<RelationReport> reports;
  reports.reserve(registry.all().size());
  for (const MetamorphicRelation& rel : registry.all()) {
    reports.push_back(runRelation(rel, options));
  }
  return reports;
}

std::string toMarkdown(const std::vector<RelationReport>& reports) {
  std::ostringstream os;
  os << "| relation | storage | kind | cases | failures | verdict |\n";
  os << "|---|---|---|---|---|---|\n";
  std::size_t failures = 0;
  for (const RelationReport& r : reports) {
    failures += r.failures;
    os << "| " << r.relation << " | " << r.storage << " | " << toString(r.kind) << " | "
       << r.cases << " | " << r.failures << " | " << (r.pass() ? "PASS" : "FAIL") << " |\n";
  }
  for (const RelationReport& r : reports) {
    for (const CaseFailure& f : r.failureDetails) {
      os << "\nFAIL " << r.relation << " case " << f.caseIndex << ": " << f.detail << "\n";
      if (!f.shrinkSummary.empty()) {
        os << "  " << f.shrinkSummary << "\n";
      } else {
        os << "  failing config: " << writeJson(f.minimalConfig) << "\n";
      }
    }
  }
  os << "\n" << (failures == 0 ? "oracle relations: PASS" : "oracle relations: FAIL") << "\n";
  return os.str();
}

}  // namespace hcsim::oracle
