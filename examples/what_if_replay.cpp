// what_if_replay — the trace-replay workflow: capture a training run's
// I/O trace on one system, then ask "what would this application's I/O
// have cost on a different deployment?" without re-running it.

#include <cstdio>

#include "core/experiment.hpp"
#include "replay/trace_replay.hpp"
#include "util/table.hpp"

using namespace hcsim;

int main() {
  std::printf("== What-if replay: ResNet-50 captured on GPFS, replayed elsewhere ==\n\n");

  // 1. Capture: run the training once on GPFS@Lassen and keep the trace.
  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.nodes = 2;
  cfg.procsPerNode = 4;
  const DlioResult captured = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
  std::printf("captured: %zu events, %s of reads, %.3f s of I/O time\n\n",
              captured.trace.size(), formatBytes(captured.bytesRead).c_str(),
              captured.breakdown.totalIo);

  // 2. Replay the same event stream against each candidate deployment.
  ReplayConfig rc;
  rc.pidsPerNode = cfg.procsPerNode;
  rc.transferSize = cfg.workload.transferSize;

  ResultTable t("replayed I/O cost by deployment");
  t.setHeader({"deployment", "replayed I/O s", "slowdown vs captured", "sys GB/s"});
  t.setPrecision(3);
  const struct {
    Site site;
    StorageKind kind;
  } targets[] = {
      {Site::Lassen, StorageKind::Gpfs},
      {Site::Lassen, StorageKind::Vast},
      {Site::Wombat, StorageKind::Vast},
      {Site::Wombat, StorageKind::NvmeLocal},
  };
  for (const auto& tgt : targets) {
    Environment env = makeEnvironment(tgt.site, tgt.kind, cfg.nodes);
    TraceReplayer replayer(*env.bench, *env.fs);
    const ReplayResult r = replayer.replay(captured.trace, rc);
    t.addRow({std::string(toString(tgt.kind)) + "@" + toString(tgt.site), r.replayedIoTime,
              r.ioSlowdown(), units::toGBs(r.throughput.system)});
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("Reading: TCP-attached VAST inflates this app's I/O time, RDMA-attached\n"
              "VAST and node-local NVMe keep it near (or below) the captured cost —\n"
              "the what-if version of the paper's takeaway for application users.\n");
  return 0;
}
