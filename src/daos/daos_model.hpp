#pragma once
// DaosModel — the hcsim::daos disaggregated object store, the fifth
// FileSystemModel and the first built on hcsim::transport end to end.
//
// Data path:
//
//   client NIC -> [transport fabric lanes] -> target xstream queue
//     -> target NVMe/PMEM partition link
//
// Architecture facts the model encodes (per the DAOS paper):
//  * the unit of service is the *target* (an engine-managed NVMe/PMEM
//    partition); a pool is a set of targets, objects hash over the live
//    targets — no central metadata server in the data path;
//  * each target serves RPCs through a pool of service xstreams — a
//    c-server queue in front of the bulk transfer, so incast onto one
//    target queues there rather than being smoothed away;
//  * replication is client-driven: a write fans out to the redundancy
//    group's targets (each replica is a full RPC + bulk through the
//    client's transport endpoint), completing when the slowest replica
//    acks; reads are served by one live replica;
//  * all-flash: random access keeps ~randomEfficiency of sequential.
//
// Chaos: component "target" supports fail / fail-slow / restore;
// placement skips failed targets (reads and writes redirect to
// survivors), and a restore's rebuild traffic re-replicates over the
// restored target's partition link.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "daos/daos_config.hpp"
#include "device/device_queue.hpp"
#include "fs/storage_base.hpp"

namespace hcsim {

class DaosModel final : public StorageModelBase {
 public:
  DaosModel(Simulator& sim, Topology& topo, DaosConfig config, std::vector<LinkId> clientNics,
            std::uint64_t rngSeed = 0xda05ull);

  const DaosConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;
  Bytes totalCapacity() const override { return cfg_.totalCapacity(); }
  std::size_t clientParallelism() const override { return cfg_.fabric.lanes; }

  /// The config-embedded endpoint profile: DAOS always routes through
  /// hcsim::transport, so an empty "transport" section merges nothing
  /// and is byte-identical to no section at all.
  transport::TransportProfile declaredTransportProfile() const override { return cfg_.fabric; }

  // ---- Failure injection (hcsim::chaos) ----
  /// "target" supports fail / fail-slow / restore. Fail removes the
  /// target from placement and stalls its in-flight bulk transfers;
  /// fail-slow scales its partition link to `severity`; restore heals
  /// both. Submitting with every target failed throws.
  bool applyFault(const FaultSpec& f) override;
  std::size_t faultComponentCount(const std::string& component) const override;
  /// Rebuild after a restore: re-replication writes into the restored
  /// target's partition, competing with foreground bulk traffic.
  Route rebuildRoute(const FaultSpec& restored) override;

  std::size_t aliveTargets() const { return cfg_.totalTargets() - failedTargets_.size(); }

  // ---- Introspection (tests, reports) ----
  std::uint64_t placementSkips() const { return placementSkips_; }
  std::uint64_t replicaWrites() const { return replicaWrites_; }

  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

 protected:
  void onPhaseChange() override;

 private:
  struct Target {
    LinkId link{};
    std::unique_ptr<DeviceQueue> xstreams;
  };

  /// Deterministic object placement: hash the object id onto the ring,
  /// then probe forward past failed targets (each hop counts a skip).
  std::size_t primaryTarget(std::uint64_t objectId);
  /// The write redundancy group: up to redundancyGroupSize distinct
  /// live targets starting at the primary.
  std::vector<std::size_t> writeGroup(std::uint64_t objectId);

  void serveAt(std::size_t targetIdx, const IoRequest& req, Bytes bytes, Seconds perOp,
               IoCallback cb);

  DaosConfig cfg_;
  std::vector<Target> targets_;
  std::set<std::size_t> failedTargets_;
  std::map<std::size_t, double> slowTargets_;  ///< index -> fail-slow severity

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t replicaWrites_ = 0;
  std::uint64_t placementSkips_ = 0;
};

}  // namespace hcsim
