#include "replay/trace_replay.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hcsim {

namespace {

// One traced process replayed as a sequential chain of its events.
struct ReplayProc {
  Simulator* sim = nullptr;
  FileSystemModel* fs = nullptr;
  TraceLog* out = nullptr;
  const ReplayConfig* cfg = nullptr;
  std::size_t* running = nullptr;

  std::uint32_t pid = 0;
  ClientId client{};
  std::vector<const TraceEvent*> events;  // start-time ordered
  std::size_t next = 0;
  std::uint64_t fileCounter = 0;

  void step() {
    if (next >= events.size()) {
      --*running;
      return;
    }
    const TraceEvent& ev = *events[next++];
    if (ev.kind == TraceEventKind::Compute) {
      if (cfg->replayCompute && ev.duration > 0) {
        out->recordCompute(pid, ev.tid, sim->now(), ev.duration, ev.name);
        sim->schedule(ev.duration, [this] { step(); });
      } else {
        step();
      }
      return;
    }
    if ((ev.kind == TraceEventKind::Read || ev.kind == TraceEventKind::Write) && ev.bytes > 0) {
      IoRequest req;
      req.client = client;
      req.fileId = (static_cast<std::uint64_t>(pid) << 24) + ++fileCounter;
      req.bytes = ev.bytes;
      req.pattern = ev.kind == TraceEventKind::Read ? AccessPattern::RandomRead
                                                    : AccessPattern::SequentialWrite;
      req.ops = std::max<std::uint64_t>(1, ev.bytes / cfg->transferSize);
      fs->submit(req, [this, &ev](const IoResult& r) {
        out->record(TraceEvent{ev.name, ev.kind, pid, ev.tid, r.startTime, r.elapsed(),
                               r.bytes});
        step();
      });
      return;
    }
    step();  // Other / zero-byte events: skip
  }
};

}  // namespace

ReplayResult TraceReplayer::replay(const TraceLog& input, const ReplayConfig& cfg) {
  if (cfg.pidsPerNode == 0) throw std::invalid_argument("ReplayConfig: pidsPerNode must be > 0");
  if (cfg.transferSize == 0) throw std::invalid_argument("ReplayConfig: transferSize must be > 0");

  ReplayResult result;
  result.originalIoTime = input.totalDuration(TraceEventKind::Read) +
                          input.totalDuration(TraceEventKind::Write);

  // Group events by pid, ordered by start time.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> byPid;
  for (const TraceEvent& e : input.events()) byPid[e.pid].push_back(&e);
  for (auto& [pid, evs] : byPid) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) { return a->start < b->start; });
  }

  PhaseSpec phase;
  phase.pattern = AccessPattern::RandomRead;
  phase.requestSize = cfg.transferSize;
  phase.nodes = static_cast<std::uint32_t>(
      (byPid.size() + cfg.pidsPerNode - 1) / std::max<std::size_t>(1, cfg.pidsPerNode));
  if (phase.nodes == 0) phase.nodes = 1;
  phase.procsPerNode = static_cast<std::uint32_t>(cfg.pidsPerNode);
  phase.workingSetBytes = input.totalBytes(TraceEventKind::Read);
  fs_.beginPhase(phase);

  std::size_t running = byPid.size();
  std::vector<std::unique_ptr<ReplayProc>> procs;
  procs.reserve(byPid.size());
  for (auto& [pid, evs] : byPid) {
    auto p = std::make_unique<ReplayProc>();
    p->sim = &bench_.sim();
    p->fs = &fs_;
    p->out = &result.trace;
    p->cfg = &cfg;
    p->running = &running;
    p->pid = pid;
    p->client = ClientId{static_cast<std::uint32_t>(pid / cfg.pidsPerNode),
                         static_cast<std::uint32_t>(pid % cfg.pidsPerNode)};
    p->events = std::move(evs);
    procs.push_back(std::move(p));
  }
  for (auto& p : procs) p->step();
  bench_.sim().run();
  fs_.endPhase();
  if (running != 0) throw std::logic_error("TraceReplayer: drained with live processes");

  result.trace.sortByStart();
  result.breakdown = analyzeOverlap(result.trace);
  result.throughput = computeThroughput(result.trace);
  result.replayedIoTime = result.breakdown.totalIo;
  return result;
}

}  // namespace hcsim
