# Empty dependencies file for sweep_whatif.
# This may be replaced when dependencies are built.
