#pragma once
// Log-scale histogram for latency distributions (per-op IOR latencies,
// DLIO sample-read times). Fixed logarithmically spaced bins between a
// floor and a ceiling, with underflow/overflow buckets, approximate
// quantiles, and an ASCII rendering for CLI/bench output.

#include <cstddef>
#include <string>
#include <vector>

namespace hcsim {

class Histogram {
 public:
  /// Bins span [minValue, maxValue) in `bins` logarithmic steps;
  /// requires 0 < minValue < maxValue and bins >= 1.
  Histogram(double minValue, double maxValue, std::size_t bins);

  void add(double value);
  void add(const std::vector<double>& values);

  std::size_t binCount() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Lower edge of bin i (upper edge of the last bin == maxValue).
  double binLowerBound(std::size_t bin) const;
  double binUpperBound(std::size_t bin) const { return binLowerBound(bin + 1); }

  /// Approximate quantile (q in [0,1]): linear interpolation within the
  /// containing bin; under/overflow resolve to the range edges.
  double quantile(double q) const;

  /// ASCII rendering: one line per non-empty bin, bar scaled to `width`.
  std::string render(std::size_t width = 40) const;

 private:
  std::size_t binFor(double value) const;

  double lo_;
  double hi_;
  double logLo_;
  double logStep_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hcsim
