#pragma once
// TransportFabric — the per-endpoint NIC/transport model of
// hcsim::transport. It sits between the storage models' launchTransfer
// and FlowNetwork::startFlow: every transfer is posted to a *lane* (an
// RDMA QP or an NFS/TCP stream, hashed by issuing process) on the
// client node's endpoint, where it pays
//
//   * token-bucket op admission — the endpoint's IOPS budget, billed
//     once per flow class (`members = N` costs what one member costs:
//     the class is one posting client's descriptor stream);
//   * connection setup when the lane is cold (never used, or idle past
//     the profile's idleTimeout) — TCP handshake / QP transition as a
//     simulated startup term;
//   * doorbell + descriptor build costs, amortized over the profile's
//     doorbell batch;
//   * a send-queue admission limit: a flow occupies min(ops, sqDepth)
//     descriptors until completion; a lane whose SQ is full queues the
//     flow FIFO behind the occupant — head-of-line blocking (sqDepth=1
//     serializes the lane);
//   * an emergent rate ceiling min'd into the flow's rateCap:
//     per-lane 1/(perOpCost + doorbellCost/doorbellBatch +
//     perByteCost x opBytes) x opBytes, windowed by sqDepth x opBytes /
//     baseRtt, times the min(streams, lanes) usable lanes, bounded by
//     the IOPS budget.
//
// Determinism contract: the fabric is purely analytic — no randomness,
// no wall-clock — so two identical runs produce byte-identical output,
// and a run with no "transport" spec section constructs no fabric at
// all (strict zero-cost: byte-identical to a build without this file).

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fs/file_system_model.hpp"
#include "net/flow_network.hpp"
#include "transport/transport_profile.hpp"

namespace hcsim::probe {
class FlightRecorder;
}

namespace hcsim::transport {

class TransportFabric {
 public:
  /// `recorder` (optional) receives a TransportStall record whenever a
  /// flow queues behind a full send queue.
  TransportFabric(Simulator& sim, FlowNetwork& net, TransportProfile profile,
                  probe::FlightRecorder* recorder = nullptr);
  TransportFabric(const TransportFabric&) = delete;
  TransportFabric& operator=(const TransportFabric&) = delete;

  const TransportProfile& profile() const { return profile_; }

  /// Post one transfer: bill the endpoint costs into `spec` (startup
  /// latency + rate ceiling), then start it on the flow network — or
  /// queue it FIFO behind the issuing lane's full send queue. `spec` is
  /// the storage model's fully built flow (bytes/route/rateCap are per
  /// class member); `req` supplies the issuing client, op count and
  /// stream count. `onComplete` fires exactly once.
  void launch(FlowSpec spec, const IoRequest& req,
              std::function<void(const FlowCompletion&)> onComplete);

  // ---- Introspection (tests, telemetry) ----
  std::uint64_t opsPosted() const { return ops_; }
  std::uint64_t bytesPosted() const { return bytes_; }
  Seconds throttleDelay() const { return throttleSec_; }  ///< summed token-bucket waits
  std::uint64_t connectionSetups() const { return connSetups_; }
  std::uint64_t sqWaits() const { return sqWaits_; }  ///< flows that queued on a full SQ
  std::uint64_t doorbells() const { return doorbells_; }
  /// Descriptors currently occupying send queues (all lanes).
  std::uint64_t inflightDescriptors() const;

  /// Snapshot "transport.*" metrics. Pull-based, never on the sim path.
  void exportMetrics(telemetry::MetricsRegistry& reg) const;

 private:
  struct Pending {
    FlowSpec spec;
    std::size_t descs = 0;
    std::function<void(const FlowCompletion&)> onComplete;
  };
  struct Lane {
    Seconds lastUse = -1.0;     ///< < 0 = never used (cold)
    std::size_t inFlight = 0;   ///< descriptors occupying the SQ
    std::deque<Pending> fifo;   ///< head-of-line: waiting behind a full SQ
    std::uint32_t subject = 0;  ///< probe record subject (node<<16 | lane)
  };
  struct Endpoint {
    double tokens = 0.0;
    Seconds lastRefill = 0.0;
    std::vector<Lane> lanes;
  };

  Endpoint& endpoint(std::uint32_t node);
  /// Admit the flow into the lane's SQ and start it on the network.
  void admit(Lane& lane, Pending p);
  /// Start queued flows that now fit in the SQ.
  void pump(Lane& lane);

  Simulator& sim_;
  FlowNetwork& net_;
  TransportProfile profile_;
  probe::FlightRecorder* recorder_ = nullptr;
  std::unordered_map<std::uint32_t, Endpoint> endpoints_;

  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  double throttleSec_ = 0.0;
  std::uint64_t connSetups_ = 0;
  std::uint64_t sqWaits_ = 0;
  std::uint64_t doorbells_ = 0;
};

}  // namespace hcsim::transport
