// Failure-injection tests: the HA behaviour of §III-A — stateless
// CNodes fail over, DBoxes are dual-DNode High Availability enclosures.

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"

namespace hcsim {
namespace {

struct Harness {
  Harness() : bench(Machine::wombat(), 4), fs(bench.attachVast(vastOnWombat())) {}
  TestBench bench;
  std::unique_ptr<VastModel> fs;

  double writeGBs() {
    IorRunner runner(bench, *fs);
    IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 4, 16);
    cfg.segments = 256;
    return units::toGBs(runner.run(cfg).bandwidth.mean);
  }
  double readGBs() {
    IorRunner runner(bench, *fs);
    IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 4, 16);
    cfg.segments = 256;
    return units::toGBs(runner.run(cfg).bandwidth.mean);
  }
};

TEST(FailureInjection, CNodeLossDegradesWriteProportionally) {
  Harness h;
  const double healthy = h.writeGBs();
  h.fs->failCNode(0);
  h.fs->failCNode(1);
  const double degraded = h.writeGBs();
  // Writes are CNode-bound on Wombat: 6/8 CNodes -> ~75%.
  EXPECT_NEAR(degraded / healthy, 0.75, 0.1);
  EXPECT_EQ(h.fs->failedCNodes(), 2u);
  EXPECT_EQ(h.fs->aliveCNodes(), 6u);
}

TEST(FailureInjection, RestoreCNodeRecoversFully) {
  Harness h;
  const double healthy = h.writeGBs();
  h.fs->failCNode(3);
  h.fs->restoreCNode(3);
  EXPECT_NEAR(h.writeGBs(), healthy, healthy * 1e-6);
  EXPECT_EQ(h.fs->failedCNodes(), 0u);
}

TEST(FailureInjection, FailoverKeepsServiceAvailable) {
  // Sessions pinned to a failed CNode must remap, not stall.
  Harness h;
  for (std::size_t i = 0; i < 7; ++i) h.fs->failCNode(i);
  const double oneCnode = h.writeGBs();
  EXPECT_GT(oneCnode, 0.0);
  EXPECT_LT(oneCnode, 0.3 * 8.0);  // single CNode's write path
}

TEST(FailureInjection, AllCNodesFailedIsAnOutage) {
  Harness h;
  for (std::size_t i = 0; i < 8; ++i) h.fs->failCNode(i);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  EXPECT_THROW(h.fs->submit(req, nullptr), std::runtime_error);
}

TEST(FailureInjection, DnodeHaDegradationHalvesBoxFabric) {
  Harness h;
  const double healthy = h.readGBs();
  // Degrade every HA pair: fabric halves, but reads (CNode-bound at 24
  // vs fabric 50->25 GB/s) survive with grace.
  for (std::size_t b = 0; b < 4; ++b) h.fs->failDNode(b);
  const double degraded = h.readGBs();
  EXPECT_GT(degraded, 0.0);
  EXPECT_GE(healthy, degraded);
  for (std::size_t b = 0; b < 4; ++b) h.fs->restoreDNode(b);
  EXPECT_NEAR(h.readGBs(), healthy, healthy * 1e-6);
}

TEST(FailureInjection, DboxLossShrinksDevicePools) {
  Harness h;
  h.fs->beginPhase([] {
    PhaseSpec ph;
    ph.pattern = AccessPattern::SequentialRead;
    ph.requestSize = units::MiB;
    return ph;
  }());
  const Bandwidth healthy = h.fs->deviceReadCapacity();
  h.fs->failDBox(0);
  EXPECT_NEAR(h.fs->deviceReadCapacity() / healthy, 0.75, 1e-6);
  EXPECT_EQ(h.fs->aliveDBoxes(), 3u);
  h.fs->restoreDBox(0);
  EXPECT_NEAR(h.fs->deviceReadCapacity(), healthy, healthy * 1e-9);
}

TEST(FailureInjection, MidRunCNodeFailureReratesInFlight) {
  Harness h;
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  ph.nodes = 4;
  ph.procsPerNode = 16;
  h.fs->beginPhase(ph);
  SimTime end = 0;
  std::size_t done = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    for (std::uint32_t s = 0; s < 16; ++s) {
      IoRequest req;
      req.client = {n, s};
      req.fileId = n * 16 + s + 1;
      req.bytes = 256 * units::MiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = 256;
      h.fs->submit(req, [&](const IoResult& r) {
        end = std::max(end, r.endTime);
        ++done;
      });
    }
  }
  // Baseline completion time without failure.
  // (Measured separately on an identical harness.)
  Harness ref;
  ref.fs->beginPhase(ph);
  SimTime refEnd = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    for (std::uint32_t s = 0; s < 16; ++s) {
      IoRequest req;
      req.client = {n, s};
      req.fileId = n * 16 + s + 1;
      req.bytes = 256 * units::MiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = 256;
      ref.fs->submit(req, [&](const IoResult& r) { refEnd = std::max(refEnd, r.endTime); });
    }
  }
  ref.bench.sim().run();

  // Fail half the CNodes mid-transfer: completion must be LATER.
  h.bench.sim().schedule(refEnd * 0.25, [&] {
    for (std::size_t i = 0; i < 4; ++i) h.fs->failCNode(i);
  });
  h.bench.sim().run();
  EXPECT_EQ(done, 64u);
  EXPECT_GT(end, refEnd * 1.2);
}

TEST(FailureInjection, FailSlowCNodeThrottlesFractionallyAndRestoresExactly) {
  Harness h;
  const double healthy = h.writeGBs();
  FaultSpec slow;
  slow.action = FaultAction::FailSlow;
  slow.component = "cnode";
  slow.index = 0;
  slow.severity = 0.5;
  ASSERT_TRUE(h.fs->applyFault(slow));
  const double throttled = h.writeGBs();
  // IOR reports total bytes over the slowest rank's wall clock, so the
  // half-speed CNode's ranks straggle and drag the whole run to ~50% —
  // the classic fail-slow effect (instantaneous aggregate is 7.5/8, but
  // that only shows in the chaos runner's time-sliced view).
  EXPECT_NEAR(throttled / healthy, 0.5, 0.05);
  FaultSpec restore = slow;
  restore.action = FaultAction::Restore;
  ASSERT_TRUE(h.fs->applyFault(restore));
  // health == 1.0 multiplies exactly, so recovery is bit-exact.
  EXPECT_DOUBLE_EQ(h.writeGBs(), healthy);
}

TEST(FailureInjection, OutOfRangeIndicesThrow) {
  Harness h;
  EXPECT_THROW(h.fs->failCNode(99), std::out_of_range);
  EXPECT_THROW(h.fs->failDBox(99), std::out_of_range);
  EXPECT_THROW(h.fs->failDNode(99), std::out_of_range);
}

}  // namespace
}  // namespace hcsim
