#include "util/json.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

JsonValue parse(const std::string& s) {
  JsonValue v;
  EXPECT_TRUE(parseJson(s, v)) << s;
  return v;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").isNull());
  EXPECT_EQ(*parse("true").boolean(), true);
  EXPECT_EQ(*parse("false").boolean(), false);
  EXPECT_DOUBLE_EQ(*parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(*parse("-3.5e2").number(), -350.0);
  EXPECT_EQ(*parse("\"hi\"").str(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.isObject());
  const JsonValue* a = v.find("a");
  ASSERT_TRUE(a && a->isArray());
  EXPECT_EQ(a->array()->size(), 3u);
  EXPECT_TRUE((*a->array())[2].find("b")->boolean());
  EXPECT_TRUE(v.find("c")->find("d")->isNull());
}

TEST(Json, WhitespaceTolerant) {
  const JsonValue v = parse("  { \"x\" :\n[ 1 ,\t2 ] }  ");
  EXPECT_EQ(v.find("x")->array()->size(), 2u);
}

TEST(Json, RejectsMalformed) {
  JsonValue v;
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1}extra", "{a:1}", "[1 2]", "nan"}) {
    EXPECT_FALSE(parseJson(bad, v)) << bad;
  }
}

TEST(Json, StringEscapes) {
  const JsonValue v = parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(*v.str(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(*parse(R"("é")").str(), "\xC3\xA9");       // é
  EXPECT_EQ(*parse(R"("€")").str(), "\xE2\x82\xAC");   // €
}

TEST(Json, WriteCompactRoundTrips) {
  const std::string src = R"({"a":[1,2.5,true,null,"s"],"b":{"c":"d"}})";
  const JsonValue v = parse(src);
  JsonValue again;
  ASSERT_TRUE(parseJson(writeJson(v), again));
  EXPECT_EQ(writeJson(v), writeJson(again));
}

TEST(Json, WriteIntegersWithoutDecimals) {
  JsonObject o;
  o["n"] = 1234567.0;
  EXPECT_EQ(writeJson(JsonValue(std::move(o))), "{\"n\":1234567}");
}

TEST(Json, WritePrettyIndents) {
  JsonObject o;
  o["a"] = JsonArray{JsonValue(1.0)};
  const std::string pretty = writeJson(JsonValue(std::move(o)), 2);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1\n  ]\n}"), std::string::npos);
}

TEST(Json, TypedGettersWithDefaults) {
  const JsonValue v = parse(R"({"n":5,"s":"x","b":true})");
  EXPECT_DOUBLE_EQ(v.numberOr("n", 0), 5.0);
  EXPECT_DOUBLE_EQ(v.numberOr("missing", 7), 7.0);
  EXPECT_EQ(v.stringOr("s", ""), "x");
  EXPECT_EQ(v.stringOr("n", "fallback"), "fallback");  // wrong type
  EXPECT_TRUE(v.boolOr("b", false));
  EXPECT_TRUE(v.boolOr("missing", true));
}

TEST(Json, FindOnNonObjectIsNull) {
  EXPECT_EQ(parse("[1]").find("a"), nullptr);
  EXPECT_EQ(parse("3").find("a"), nullptr);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(writeJson(parse("{}")), "{}");
  EXPECT_EQ(writeJson(parse("[]")), "[]");
}

TEST(Json, EscapeHelper) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace hcsim
