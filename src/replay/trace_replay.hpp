#pragma once
// Trace replay — "what if this application ran on that storage system?"
//
// Takes a captured TraceLog (from the DLIO emulator or an imported
// DFTracer/chrome trace of a real application) and re-executes its I/O
// events against any FileSystemModel, preserving per-process ordering
// and the compute gaps between operations. The replayed trace can then
// be analyzed with the same Fig 4-6 metrics — giving storage what-if
// answers without re-running (or even having) the application.

#include <vector>

#include "cluster/deployments.hpp"
#include "fs/file_system_model.hpp"
#include "trace/overlap_analysis.hpp"
#include "trace/trace_log.hpp"

namespace hcsim {

struct ReplayConfig {
  /// Map trace pids onto compute nodes: node = pid / pidsPerNode.
  std::size_t pidsPerNode = 4;
  /// Per-op transfer granularity when re-issuing reads/writes.
  Bytes transferSize = units::MiB;
  /// Compute events are replayed as fixed delays (true) or skipped
  /// (false: I/O back-to-back — a pure storage stress replay).
  bool replayCompute = true;
};

struct ReplayResult {
  TraceLog trace;              ///< the as-replayed timeline
  IoTimeBreakdown breakdown;   ///< Fig 4 metrics on the replayed run
  ThroughputReport throughput;
  Seconds originalIoTime = 0.0;  ///< total I/O time in the input trace
  Seconds replayedIoTime = 0.0;  ///< total I/O time after replay
  /// Malformed op records dropped (zero-byte I/O, negative compute):
  /// the skip-and-count salvage policy shared with trace_import.
  std::size_t skippedOps = 0;
  /// >1: the target system is slower than the traced one; <1: faster.
  double ioSlowdown() const {
    return originalIoTime > 0 ? replayedIoTime / originalIoTime : 0.0;
  }
};

class TraceReplayer {
 public:
  TraceReplayer(TestBench& bench, FileSystemModel& fs) : bench_(bench), fs_(fs) {}

  /// Replay `input` to completion. Per pid, events execute in start-time
  /// order: I/O is re-issued against the model (its duration becomes
  /// whatever the model says); compute is a fixed delay.
  ReplayResult replay(const TraceLog& input, const ReplayConfig& cfg = {});

 private:
  TestBench& bench_;
  FileSystemModel& fs_;
};

}  // namespace hcsim
