#!/usr/bin/env bash
# Release-build gate: configure + build EVERYTHING (library, tests,
# benches, examples — a bench that fails to compile fails this script),
# run the full test suite, then smoke-test the sweep engine, the trial
# cache (byte-identity cold/warm), the regression oracle, the telemetry
# layer (jobs-determinism with --telemetry on, strip-identity against
# the telemetry-off JSONL, and gateway attribution via `trace
# --internal`), the chaos layer (fault-drill run-twice byte-identity,
# chaos-sweep jobs independence, empty-schedule zero-cost identity
# against the plain fig2 JSONL), the probe layer (satisfied-monitor
# byte-identity, breach exit + table, flight-recorder dump determinism),
# the transport/DAOS layer (calibrated endpoint sweeps, run-twice and
# jobs-count byte-identity), and the perf floors
# (bench_engine/workload/scale/probe/transport vs their
# committed BENCH_*.json; HCSIM_CHECK_PERF=0 to skip,
# HCSIM_PERF_MAX_REGRESS to widen). A second profile repeats the
# tests and an oracle smoke run under ASan+UBSan with sanitizers fatal;
# export HCSIM_CHECK_SANITIZE=0 to skip it. HCSIM_CHECK_TSAN=1 adds a
# ThreadSanitizer pass over the probe + telemetry test binaries.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${HCSIM_CHECK_BUILD_DIR:-$ROOT/build-check}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$JOBS"

ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

# Sweep smoke: the fig2 grid must complete, emit parseable JSONL/CSV,
# and be independent of the job count.
OUT="$BUILD/check-sweep"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 8 \
    --out "$OUT-8.jsonl" --csv "$OUT-8.csv" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 1 \
    --out "$OUT-1.jsonl" >/dev/null
cmp "$OUT-8.jsonl" "$OUT-1.jsonl"
test "$(wc -l < "$OUT-8.jsonl")" -ge 24
grep -q '"ok":true' "$OUT-8.jsonl"
head -1 "$OUT-8.csv" | grep -q '^trial,'

# Trial-cache gate: a cached sweep must emit byte-identical JSONL to the
# uncached run above — cold (writing the cache) and warm (served from it).
CACHE="$BUILD/check-trial-cache.jsonl"
rm -f "$CACHE"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 8 \
    --cache "$CACHE" --out "$OUT-cache-cold.jsonl" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 3 \
    --cache "$CACHE" --out "$OUT-cache-warm.jsonl" > "$BUILD/check-sweep-warm.txt"
cmp "$OUT-8.jsonl" "$OUT-cache-cold.jsonl"
cmp "$OUT-8.jsonl" "$OUT-cache-warm.jsonl"
grep -q 'hit rate 100%' "$BUILD/check-sweep-warm.txt"

# Oracle gates: the metamorphic catalog must hold at full depth, and the
# golden-figure check must pass against the committed snapshots AND be
# byte-identical whatever the job count — and whether or not a trial
# cache (cold or warm) served the sweeps.
"$BUILD/src/hcsim" oracle relations --cases 50 >/dev/null
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 8 \
    > "$BUILD/check-oracle-8.txt"
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 1 \
    > "$BUILD/check-oracle-1.txt"
cmp "$BUILD/check-oracle-8.txt" "$BUILD/check-oracle-1.txt"
OCACHE="$BUILD/check-oracle-cache.jsonl"
rm -f "$OCACHE"
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 8 \
    --cache "$OCACHE" > "$BUILD/check-oracle-cold.txt"
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 1 \
    --cache "$OCACHE" > "$BUILD/check-oracle-warm.txt"
cmp "$BUILD/check-oracle-8.txt" "$BUILD/check-oracle-cold.txt"
cmp "$BUILD/check-oracle-8.txt" "$BUILD/check-oracle-warm.txt"

# Telemetry gates: with --telemetry the sweep must stay deterministic
# across job counts, emit per-trial "telemetry" blocks, and reduce to the
# telemetry-off JSONL byte-for-byte once those blocks are stripped. The
# oracle check must print the exact same report with telemetry on, and
# `hcsim trace --internal` on the VAST Lassen seq-read scale point must
# attribute the op time to the gateway link.
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --telemetry \
    --jobs 8 --out "$OUT-tel-8.jsonl" --csv "$OUT-tel-8.csv" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --telemetry \
    --jobs 1 --out "$OUT-tel-1.jsonl" >/dev/null
cmp "$OUT-tel-8.jsonl" "$OUT-tel-1.jsonl"
grep -q '"telemetry":' "$OUT-tel-8.jsonl"
head -1 "$OUT-tel-8.csv" | grep -q ',dominantStage,'
sed 's/,"telemetry":{[^}]*}//' "$OUT-tel-8.jsonl" > "$OUT-tel-stripped.jsonl"
cmp "$OUT-8.jsonl" "$OUT-tel-stripped.jsonl"
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 8 \
    --telemetry > "$BUILD/check-oracle-tel.txt"
cmp "$BUILD/check-oracle-8.txt" "$BUILD/check-oracle-tel.txt"
"$BUILD/src/hcsim" trace --site lassen --storage vast --access seq-read \
    --nodes 32 --ppn 8 --internal --out "$BUILD/check-trace.json" \
    > "$BUILD/check-trace.txt"
grep -q 'dominant stage: gw' "$BUILD/check-trace.txt"
grep -q '"cat":"internal"' "$BUILD/check-trace.json"

# Chaos gates: a scheduled fault drill must print a degradation-and-
# recovery timeline and emit byte-identical JSONL on repeated runs; a
# chaos-bearing sweep must be independent of the job count; and an EMPTY
# chaos section must cost nothing — its sweep JSONL is byte-identical to
# the same spec with no chaos section at all.
"$BUILD/src/hcsim" chaos "$ROOT/examples/specs/cnode_failover.json" \
    --out "$BUILD/check-chaos-a.jsonl" > "$BUILD/check-chaos.txt"
"$BUILD/src/hcsim" chaos "$ROOT/examples/specs/cnode_failover.json" \
    --out "$BUILD/check-chaos-b.jsonl" >/dev/null
cmp "$BUILD/check-chaos-a.jsonl" "$BUILD/check-chaos-b.jsonl"
grep -q 'DEGRADED' "$BUILD/check-chaos.txt"
grep -q 'recovered' "$BUILD/check-chaos.txt"
grep -q '"scenario":"cnode-failover"' "$BUILD/check-chaos-a.jsonl"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/chaos_sweep.json" --jobs 8 \
    --out "$OUT-chaos-8.jsonl" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/chaos_sweep.json" --jobs 1 \
    --out "$OUT-chaos-1.jsonl" >/dev/null
cmp "$OUT-chaos-8.jsonl" "$OUT-chaos-1.jsonl"
grep -q '"ok":true' "$OUT-chaos-8.jsonl"
sed 's/"base": {/"base": { "chaos": { "events": [] },/' \
    "$ROOT/examples/specs/fig2.json" > "$BUILD/check-fig2-emptychaos.json"
"$BUILD/src/hcsim" sweep --spec "$BUILD/check-fig2-emptychaos.json" --jobs 8 \
    --out "$OUT-emptychaos.jsonl" >/dev/null
cmp "$OUT-8.jsonl" "$OUT-emptychaos.jsonl"

# Workload gates: the generator specs must run twice byte-identically
# through the CLI (grammar and openloop cover closed- and open-loop
# paths), report the opLatency contract in their summary record, and the
# "workload" sweep trial type must be independent of the job count.
for spec in grammar_burst openloop_zipf; do
  "$BUILD/src/hcsim" workload "$ROOT/examples/specs/$spec.json" \
      --out "$BUILD/check-workload-$spec-a.jsonl" \
      > "$BUILD/check-workload-$spec.txt"
  "$BUILD/src/hcsim" workload "$ROOT/examples/specs/$spec.json" \
      --out "$BUILD/check-workload-$spec-b.jsonl" >/dev/null
  cmp "$BUILD/check-workload-$spec-a.jsonl" "$BUILD/check-workload-$spec-b.jsonl"
  grep -q '"type":"summary"' "$BUILD/check-workload-$spec-a.jsonl"
  grep -q '"opLatency"' "$BUILD/check-workload-$spec-a.jsonl"
done
grep -q 'goodput' "$BUILD/check-workload-openloop_zipf.txt"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/workload_sweep.json" --jobs 8 \
    --out "$OUT-workload-8.jsonl" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/workload_sweep.json" --jobs 1 \
    --out "$OUT-workload-1.jsonl" >/dev/null
cmp "$OUT-workload-8.jsonl" "$OUT-workload-1.jsonl"
grep -q '"ok":true' "$OUT-workload-8.jsonl"

# Transport + DAOS gates (hcsim::transport / hcsim::daos): the two
# calibrated endpoint sweeps — daos_ior spans the RDMA-vs-TCP endpoint
# classes, transport_nconnect the TCP lane scaling — must complete with
# every trial ok, carry per-trial "transport" telemetry, and stay
# byte-identical across repeated runs and job counts (a "transport"
# section must not perturb determinism).
for spec in daos_ior transport_nconnect; do
  "$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/$spec.json" --jobs 8 \
      --out "$OUT-$spec-8.jsonl" >/dev/null
  "$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/$spec.json" --jobs 1 \
      --out "$OUT-$spec-1.jsonl" >/dev/null
  cmp "$OUT-$spec-8.jsonl" "$OUT-$spec-1.jsonl"
  "$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/$spec.json" --jobs 8 \
      --out "$OUT-$spec-rerun.jsonl" >/dev/null
  cmp "$OUT-$spec-8.jsonl" "$OUT-$spec-rerun.jsonl"
  grep -q '"ok":true' "$OUT-$spec-8.jsonl"
  grep -q '"transport":' "$OUT-$spec-8.jsonl"
done

# Scale gates (hcsim::scale): the flow-class demo must emit byte-identical
# JSONL on repeated runs, and a 1,000,000-client open-loop run must
# complete under a hard address-space ceiling — the memory-flat-in-members
# contract enforced in-kernel (the run peaks under 10 MB RSS; 256 MB of
# address space leaves room for allocator/runtime overhead only, never
# for per-client state).
"$BUILD/src/hcsim" scale --clients 100000 --classes 64 --horizon 2 \
    --out "$BUILD/check-scale-a.jsonl" > "$BUILD/check-scale.txt"
"$BUILD/src/hcsim" scale --clients 100000 --classes 64 --horizon 2 \
    --out "$BUILD/check-scale-b.jsonl" >/dev/null
cmp "$BUILD/check-scale-a.jsonl" "$BUILD/check-scale-b.jsonl"
grep -q '"classes":64' "$BUILD/check-scale-a.jsonl"
grep -q 'flat in members' "$BUILD/check-scale.txt"
( ulimit -v 262144; "$BUILD/src/hcsim" scale > "$BUILD/check-scale-1m.txt" )
grep -q '^scale: 1000192 clients as 256 flow classes' "$BUILD/check-scale-1m.txt"

# Probe gates (hcsim::probe): a chaos run with every monitor satisfied
# must emit byte-identical JSONL to the same scenario with no monitors
# at all; tightening the recovery deadline below the observed recovery
# must exit 3 and print the breach table; and --dump-on-exit must write
# byte-identical flight-recorder dumps on repeated runs.
"$BUILD/src/hcsim" chaos "$ROOT/examples/specs/cnode_failover_slo.json" \
    --out "$BUILD/check-probe-slo.jsonl" > "$BUILD/check-probe-slo.txt"
cmp "$BUILD/check-chaos-a.jsonl" "$BUILD/check-probe-slo.jsonl"
grep -q 'monitors: 3 evaluated, 0 breach(es)' "$BUILD/check-probe-slo.txt"
sed 's/"max": 10.0/"max": 2.0/' "$ROOT/examples/specs/cnode_failover_slo.json" \
    > "$BUILD/check-probe-tight.json"
if "$BUILD/src/hcsim" chaos "$BUILD/check-probe-tight.json" \
    > "$BUILD/check-probe-tight.txt"; then
  echo "check.sh: tightened recovery monitor did not fail the run" >&2
  exit 1
fi
grep -q 'SLO breaches:' "$BUILD/check-probe-tight.txt"
grep -q 'recovery-deadline' "$BUILD/check-probe-tight.txt"
"$BUILD/src/hcsim" chaos "$ROOT/examples/specs/cnode_failover.json" \
    --dump-on-exit "$BUILD/check-probe-dump-a" >/dev/null
"$BUILD/src/hcsim" chaos "$ROOT/examples/specs/cnode_failover.json" \
    --dump-on-exit "$BUILD/check-probe-dump-b" >/dev/null
cmp "$BUILD/check-probe-dump-a.jsonl" "$BUILD/check-probe-dump-b.jsonl"
cmp "$BUILD/check-probe-dump-a.trace.json" "$BUILD/check-probe-dump-b.trace.json"

# Perf smoke: every engine-throughput bench must stay within tolerance
# of its committed reference. Telemetry and the watchdog are off in the
# engine scenarios, so bench_engine doubles as the zero-cost floor for
# those hooks, and bench_probe prices the always-on flight recorder
# (recorder-on vs recorder-off budget enforced in-binary). Export
# HCSIM_CHECK_PERF=0 to skip (e.g. on loaded CI machines), or widen the
# tolerance with HCSIM_PERF_MAX_REGRESS (fraction, default 0.30).
run_perf_gate() {
  local bench="$1" baseline="$2"
  shift 2
  "$BUILD/bench/$bench" \
      --hcsim_json "$BUILD/check-$bench.json" \
      --hcsim_compare "$baseline" \
      --hcsim_max_regress "${HCSIM_PERF_MAX_REGRESS:-0.30}" "$@" > /dev/null
}
if [ "${HCSIM_CHECK_PERF:-1}" != "0" ]; then
  run_perf_gate bench_engine "$ROOT/BENCH_engine.json" \
      --hcsim_golden_dir "$ROOT/tests/golden"
  run_perf_gate bench_workload "$ROOT/BENCH_workload.json"
  run_perf_gate bench_scale "$ROOT/BENCH_scale.json"
  run_perf_gate bench_probe "$ROOT/BENCH_probe.json"
  run_perf_gate bench_transport "$ROOT/BENCH_transport.json"
fi

# ASan+UBSan profile: rebuild the library + tests with sanitizers fatal
# and re-run the full suite plus an oracle smoke. Benches/examples are
# skipped (nothing new to catch there, halves the build).
if [ "${HCSIM_CHECK_SANITIZE:-1}" != "0" ]; then
  SAN_BUILD="${HCSIM_CHECK_ASAN_BUILD_DIR:-$ROOT/build-check-asan}"
  cmake -S "$ROOT" -B "$SAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DHCSIM_BUILD_BENCH=OFF -DHCSIM_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build "$SAN_BUILD" -j"$JOBS"
  export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
  ctest --test-dir "$SAN_BUILD" --output-on-failure -j"$JOBS"
  "$SAN_BUILD/src/hcsim" oracle relations --cases 5 >/dev/null
  "$SAN_BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" >/dev/null
fi

# TSan profile (opt-in: HCSIM_CHECK_TSAN=1): rebuild with ThreadSanitizer
# and run the probe + telemetry test binaries — the two layers whose
# hooks ride inside the multi-threaded sweep executor.
if [ "${HCSIM_CHECK_TSAN:-0}" = "1" ]; then
  TSAN_BUILD="${HCSIM_CHECK_TSAN_BUILD_DIR:-$ROOT/build-check-tsan}"
  cmake -S "$ROOT" -B "$TSAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DHCSIM_BUILD_BENCH=OFF -DHCSIM_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread"
  cmake --build "$TSAN_BUILD" -j"$JOBS" --target test_probe test_telemetry
  TSAN_OPTIONS=halt_on_error=1 "$TSAN_BUILD/tests/test_probe"
  TSAN_OPTIONS=halt_on_error=1 "$TSAN_BUILD/tests/test_telemetry"
fi

echo "check.sh: OK"
