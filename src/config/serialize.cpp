#include "config/serialize.hpp"

#include <fstream>
#include <sstream>
#include <type_traits>

namespace hcsim {

namespace {

// Field helpers: read-if-present (lenient deserialization).
void get(const JsonValue& j, const char* key, double& out) {
  if (const JsonValue* v = j.find(key); v && v->isNumber()) out = *v->number();
}
// One overload for every unsigned integral width (size_t and uint64_t are
// the same type on this ABI; a template avoids the redefinition).
template <typename UInt>
  requires std::is_unsigned_v<UInt>
void get(const JsonValue& j, const char* key, UInt& out) {
  if (const JsonValue* v = j.find(key); v && v->isNumber()) {
    out = static_cast<UInt>(*v->number());
  }
}
void get(const JsonValue& j, const char* key, bool& out) {
  if (const JsonValue* v = j.find(key); v && v->isBool()) out = *v->boolean();
}
void get(const JsonValue& j, const char* key, std::string& out) {
  if (const JsonValue* v = j.find(key); v && v->isString()) out = *v->str();
}
template <typename Enum>
void getEnum(const JsonValue& j, const char* key, Enum& out) {
  if (const JsonValue* v = j.find(key)) fromJson(*v, out);
}
template <typename T>
void getStruct(const JsonValue& j, const char* key, T& out) {
  if (const JsonValue* v = j.find(key)) fromJson(*v, out);
}

}  // namespace

// ---- enums ----

JsonValue toJson(AccessPattern p) { return JsonValue(std::string(toString(p))); }

bool fromJson(const JsonValue& j, AccessPattern& out) {
  if (!j.isString()) return false;
  const std::string& s = *j.str();
  if (s == "seq-read") out = AccessPattern::SequentialRead;
  else if (s == "seq-write") out = AccessPattern::SequentialWrite;
  else if (s == "rand-read") out = AccessPattern::RandomRead;
  else if (s == "rand-write") out = AccessPattern::RandomWrite;
  else return false;
  return true;
}

JsonValue toJson(NfsTransport t) {
  return JsonValue(std::string(t == NfsTransport::Tcp ? "tcp" : "rdma"));
}

bool fromJson(const JsonValue& j, NfsTransport& out) {
  if (!j.isString()) return false;
  const std::string& s = *j.str();
  if (s == "tcp") out = NfsTransport::Tcp;
  else if (s == "rdma") out = NfsTransport::Rdma;
  else return false;
  return true;
}

JsonValue toJson(ScalingMode m) { return JsonValue(std::string(toString(m))); }

bool fromJson(const JsonValue& j, ScalingMode& out) {
  if (!j.isString()) return false;
  if (*j.str() == "weak") out = ScalingMode::Weak;
  else if (*j.str() == "strong") out = ScalingMode::Strong;
  else return false;
  return true;
}

JsonValue toJson(UnifyFsPlacement p) { return JsonValue(std::string(toString(p))); }

bool fromJson(const JsonValue& j, UnifyFsPlacement& out) {
  if (!j.isString()) return false;
  if (*j.str() == "local-first") out = UnifyFsPlacement::LocalFirst;
  else if (*j.str() == "striped") out = UnifyFsPlacement::Striped;
  else return false;
  return true;
}

// ---- device specs ----

JsonValue toJson(const SsdSpec& s) {
  JsonObject o;
  o["name"] = s.name;
  o["readBandwidth"] = s.readBandwidth;
  o["writeBandwidth"] = s.writeBandwidth;
  o["readLatency"] = s.readLatency;
  o["writeLatency"] = s.writeLatency;
  o["randomEfficiency"] = s.randomEfficiency;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, SsdSpec& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "readBandwidth", out.readBandwidth);
  get(j, "writeBandwidth", out.writeBandwidth);
  get(j, "readLatency", out.readLatency);
  get(j, "writeLatency", out.writeLatency);
  get(j, "randomEfficiency", out.randomEfficiency);
  return true;
}

JsonValue toJson(const HddSpec& s) {
  JsonObject o;
  o["name"] = s.name;
  o["streamBandwidth"] = s.streamBandwidth;
  o["seekTime"] = s.seekTime;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, HddSpec& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "streamBandwidth", out.streamBandwidth);
  get(j, "seekTime", out.seekTime);
  return true;
}

// ---- machine & gateway ----

JsonValue toJson(const Machine& m) {
  JsonObject o;
  o["name"] = m.name;
  o["nodes"] = static_cast<double>(m.nodes);
  o["coresPerNode"] = static_cast<double>(m.coresPerNode);
  o["gpusPerNode"] = static_cast<double>(m.gpusPerNode);
  o["ramGiB"] = static_cast<double>(m.ramGiB);
  o["arch"] = m.arch;
  o["network"] = m.network;
  o["nodeInjection"] = m.nodeInjection;
  o["nicLatency"] = m.nicLatency;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, Machine& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "nodes", out.nodes);
  get(j, "coresPerNode", out.coresPerNode);
  get(j, "gpusPerNode", out.gpusPerNode);
  get(j, "ramGiB", out.ramGiB);
  get(j, "arch", out.arch);
  get(j, "network", out.network);
  get(j, "nodeInjection", out.nodeInjection);
  get(j, "nicLatency", out.nicLatency);
  return true;
}

JsonValue toJson(const GatewaySpec& g) {
  JsonObject o;
  o["present"] = g.present;
  o["nodes"] = static_cast<double>(g.nodes);
  o["linksPerNode"] = static_cast<double>(g.linksPerNode);
  o["linkBandwidth"] = g.linkBandwidth;
  o["latency"] = g.latency;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, GatewaySpec& out) {
  if (!j.isObject()) return false;
  get(j, "present", out.present);
  get(j, "nodes", out.nodes);
  get(j, "linksPerNode", out.linksPerNode);
  get(j, "linkBandwidth", out.linkBandwidth);
  get(j, "latency", out.latency);
  return true;
}

// ---- VAST ----

JsonValue toJson(const VastConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["cnodes"] = static_cast<double>(c.cnodes);
  o["dboxes"] = static_cast<double>(c.dboxes);
  o["dnodesPerBox"] = static_cast<double>(c.dnodesPerBox);
  o["qlcPerBox"] = static_cast<double>(c.qlcPerBox);
  o["scmPerBox"] = static_cast<double>(c.scmPerBox);
  o["qlcSpec"] = toJson(c.qlcSpec);
  o["scmSpec"] = toJson(c.scmSpec);
  o["qlcCapacityEach"] = static_cast<double>(c.qlcCapacityEach);
  o["scmCapacityEach"] = static_cast<double>(c.scmCapacityEach);
  o["cnodeReadBandwidth"] = c.cnodeReadBandwidth;
  o["cnodeWriteBandwidth"] = c.cnodeWriteBandwidth;
  o["fabricLinksPerBox"] = static_cast<double>(c.fabricLinksPerBox);
  o["fabricLinkBandwidth"] = c.fabricLinkBandwidth;
  o["fabricLatency"] = c.fabricLatency;
  o["dataReductionRatio"] = c.dataReductionRatio;
  o["dnodeCacheBytes"] = static_cast<double>(c.dnodeCacheBytes);
  o["defaultReadCacheHitRatio"] = c.defaultReadCacheHitRatio;
  o["transport"] = toJson(c.transport);
  o["nconnect"] = static_cast<double>(c.nconnect);
  o["multipath"] = c.multipath;
  o["gateway"] = toJson(c.gateway);
  o["tcpSessionCap"] = c.tcpSessionCap;
  o["rdmaSessionCap"] = c.rdmaSessionCap;
  o["tcpGatewayPipeCap"] = c.tcpGatewayPipeCap;
  o["tcpRpcLatency"] = c.tcpRpcLatency;
  o["rdmaRpcLatency"] = c.rdmaRpcLatency;
  o["commitLatency"] = c.commitLatency;
  o["cnodeCommitService"] = c.cnodeCommitService;
  o["metadataServiceTime"] = c.metadataServiceTime;
  o["metadataSharedDirPenalty"] = c.metadataSharedDirPenalty;
  o["sharedFileLockLatency"] = c.sharedFileLockLatency;
  o["sharedFileEfficiency"] = c.sharedFileEfficiency;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, VastConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "cnodes", out.cnodes);
  get(j, "dboxes", out.dboxes);
  get(j, "dnodesPerBox", out.dnodesPerBox);
  get(j, "qlcPerBox", out.qlcPerBox);
  get(j, "scmPerBox", out.scmPerBox);
  getStruct(j, "qlcSpec", out.qlcSpec);
  getStruct(j, "scmSpec", out.scmSpec);
  get(j, "qlcCapacityEach", out.qlcCapacityEach);
  get(j, "scmCapacityEach", out.scmCapacityEach);
  get(j, "cnodeReadBandwidth", out.cnodeReadBandwidth);
  get(j, "cnodeWriteBandwidth", out.cnodeWriteBandwidth);
  get(j, "fabricLinksPerBox", out.fabricLinksPerBox);
  get(j, "fabricLinkBandwidth", out.fabricLinkBandwidth);
  get(j, "fabricLatency", out.fabricLatency);
  get(j, "dataReductionRatio", out.dataReductionRatio);
  get(j, "dnodeCacheBytes", out.dnodeCacheBytes);
  get(j, "defaultReadCacheHitRatio", out.defaultReadCacheHitRatio);
  getEnum(j, "transport", out.transport);
  get(j, "nconnect", out.nconnect);
  get(j, "multipath", out.multipath);
  getStruct(j, "gateway", out.gateway);
  get(j, "tcpSessionCap", out.tcpSessionCap);
  get(j, "rdmaSessionCap", out.rdmaSessionCap);
  get(j, "tcpGatewayPipeCap", out.tcpGatewayPipeCap);
  get(j, "tcpRpcLatency", out.tcpRpcLatency);
  get(j, "rdmaRpcLatency", out.rdmaRpcLatency);
  get(j, "commitLatency", out.commitLatency);
  get(j, "cnodeCommitService", out.cnodeCommitService);
  get(j, "metadataServiceTime", out.metadataServiceTime);
  get(j, "metadataSharedDirPenalty", out.metadataSharedDirPenalty);
  get(j, "sharedFileLockLatency", out.sharedFileLockLatency);
  get(j, "sharedFileEfficiency", out.sharedFileEfficiency);
  return true;
}

// ---- GPFS ----

JsonValue toJson(const GpfsConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["nsdServers"] = static_cast<double>(c.nsdServers);
  o["serverReadBandwidth"] = c.serverReadBandwidth;
  o["serverWriteBandwidth"] = c.serverWriteBandwidth;
  o["hdd"] = toJson(c.hdd);
  o["spindlesPerServer"] = static_cast<double>(c.spindlesPerServer);
  o["raidParityOverhead"] = c.raidParityOverhead;
  o["serverCacheBytes"] = static_cast<double>(c.serverCacheBytes);
  o["randomCacheResidencyFactor"] = c.randomCacheResidencyFactor;
  o["randomCacheDecayBytes"] = static_cast<double>(c.randomCacheDecayBytes);
  o["prefetchChurnPerGiB"] = c.prefetchChurnPerGiB;
  o["clientReadCap"] = c.clientReadCap;
  o["clientWriteCap"] = c.clientWriteCap;
  o["clientPagepool"] = static_cast<double>(c.clientPagepool);
  o["rpcLatency"] = c.rpcLatency;
  o["commitLatency"] = c.commitLatency;
  o["randomReadPenalty"] = c.randomReadPenalty;
  o["metadataServiceTime"] = c.metadataServiceTime;
  o["metadataSharedDirPenalty"] = c.metadataSharedDirPenalty;
  o["sharedFileLockLatency"] = c.sharedFileLockLatency;
  o["sharedFileEfficiency"] = c.sharedFileEfficiency;
  o["capacityTotal"] = static_cast<double>(c.capacityTotal);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, GpfsConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "nsdServers", out.nsdServers);
  get(j, "serverReadBandwidth", out.serverReadBandwidth);
  get(j, "serverWriteBandwidth", out.serverWriteBandwidth);
  getStruct(j, "hdd", out.hdd);
  get(j, "spindlesPerServer", out.spindlesPerServer);
  get(j, "raidParityOverhead", out.raidParityOverhead);
  get(j, "serverCacheBytes", out.serverCacheBytes);
  get(j, "randomCacheResidencyFactor", out.randomCacheResidencyFactor);
  get(j, "randomCacheDecayBytes", out.randomCacheDecayBytes);
  get(j, "prefetchChurnPerGiB", out.prefetchChurnPerGiB);
  get(j, "clientReadCap", out.clientReadCap);
  get(j, "clientWriteCap", out.clientWriteCap);
  get(j, "clientPagepool", out.clientPagepool);
  get(j, "rpcLatency", out.rpcLatency);
  get(j, "commitLatency", out.commitLatency);
  get(j, "randomReadPenalty", out.randomReadPenalty);
  get(j, "metadataServiceTime", out.metadataServiceTime);
  get(j, "metadataSharedDirPenalty", out.metadataSharedDirPenalty);
  get(j, "sharedFileLockLatency", out.sharedFileLockLatency);
  get(j, "sharedFileEfficiency", out.sharedFileEfficiency);
  get(j, "capacityTotal", out.capacityTotal);
  return true;
}

// ---- Lustre ----

JsonValue toJson(const LustreConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["mdsCount"] = static_cast<double>(c.mdsCount);
  o["mdsSsd"] = toJson(c.mdsSsd);
  o["mdsLatency"] = c.mdsLatency;
  o["metadataServiceTime"] = c.metadataServiceTime;
  o["metadataSharedDirPenalty"] = c.metadataSharedDirPenalty;
  o["sharedFileLockLatency"] = c.sharedFileLockLatency;
  o["sharedFileEfficiency"] = c.sharedFileEfficiency;
  o["ossCount"] = static_cast<double>(c.ossCount);
  o["ossBandwidth"] = c.ossBandwidth;
  o["hdd"] = toJson(c.hdd);
  o["spindlesPerOss"] = static_cast<double>(c.spindlesPerOss);
  o["raidz2Overhead"] = c.raidz2Overhead;
  o["stripeCount"] = static_cast<double>(c.stripeCount);
  o["stripeSize"] = static_cast<double>(c.stripeSize);
  o["clientCap"] = c.clientCap;
  o["rpcLatency"] = c.rpcLatency;
  o["commitLatency"] = c.commitLatency;
  o["randomReadPenalty"] = c.randomReadPenalty;
  o["capacityTotal"] = static_cast<double>(c.capacityTotal);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, LustreConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "mdsCount", out.mdsCount);
  getStruct(j, "mdsSsd", out.mdsSsd);
  get(j, "mdsLatency", out.mdsLatency);
  get(j, "metadataServiceTime", out.metadataServiceTime);
  get(j, "metadataSharedDirPenalty", out.metadataSharedDirPenalty);
  get(j, "sharedFileLockLatency", out.sharedFileLockLatency);
  get(j, "sharedFileEfficiency", out.sharedFileEfficiency);
  get(j, "ossCount", out.ossCount);
  get(j, "ossBandwidth", out.ossBandwidth);
  getStruct(j, "hdd", out.hdd);
  get(j, "spindlesPerOss", out.spindlesPerOss);
  get(j, "raidz2Overhead", out.raidz2Overhead);
  get(j, "stripeCount", out.stripeCount);
  get(j, "stripeSize", out.stripeSize);
  get(j, "clientCap", out.clientCap);
  get(j, "rpcLatency", out.rpcLatency);
  get(j, "commitLatency", out.commitLatency);
  get(j, "randomReadPenalty", out.randomReadPenalty);
  get(j, "capacityTotal", out.capacityTotal);
  return true;
}

// ---- NVMe ----

JsonValue toJson(const NvmeLocalConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["drive"] = toJson(c.drive);
  o["drivesPerNode"] = static_cast<double>(c.drivesPerNode);
  o["capacityPerDrive"] = static_cast<double>(c.capacityPerDrive);
  o["memoryBandwidth"] = c.memoryBandwidth;
  o["dirtyLimitBytes"] = static_cast<double>(c.dirtyLimitBytes);
  o["flushLatency"] = c.flushLatency;
  o["syscallLatency"] = c.syscallLatency;
  o["metadataServiceTime"] = c.metadataServiceTime;
  o["sharedFileLockLatency"] = c.sharedFileLockLatency;
  o["sharedFileEfficiency"] = c.sharedFileEfficiency;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, NvmeLocalConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  getStruct(j, "drive", out.drive);
  get(j, "drivesPerNode", out.drivesPerNode);
  get(j, "capacityPerDrive", out.capacityPerDrive);
  get(j, "memoryBandwidth", out.memoryBandwidth);
  get(j, "dirtyLimitBytes", out.dirtyLimitBytes);
  get(j, "flushLatency", out.flushLatency);
  get(j, "syscallLatency", out.syscallLatency);
  get(j, "metadataServiceTime", out.metadataServiceTime);
  get(j, "sharedFileLockLatency", out.sharedFileLockLatency);
  get(j, "sharedFileEfficiency", out.sharedFileEfficiency);
  return true;
}

// ---- DAOS ----

JsonValue toJson(const DaosConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["pools"] = static_cast<double>(c.pools);
  o["targetsPerPool"] = static_cast<double>(c.targetsPerPool);
  o["xstreamsPerTarget"] = static_cast<double>(c.xstreamsPerTarget);
  o["targetBandwidth"] = c.targetBandwidth;
  o["targetServiceTime"] = c.targetServiceTime;
  o["randomEfficiency"] = c.randomEfficiency;
  o["capacityPerTarget"] = static_cast<double>(c.capacityPerTarget);
  o["redundancyGroupSize"] = static_cast<double>(c.redundancyGroupSize);
  o["fsyncLatency"] = c.fsyncLatency;
  o["metadataServiceTime"] = c.metadataServiceTime;
  o["metadataSharedDirPenalty"] = c.metadataSharedDirPenalty;
  o["sharedFileLockLatency"] = c.sharedFileLockLatency;
  o["sharedFileEfficiency"] = c.sharedFileEfficiency;
  o["fabric"] = transport::toJson(c.fabric);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, DaosConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "pools", out.pools);
  get(j, "targetsPerPool", out.targetsPerPool);
  get(j, "xstreamsPerTarget", out.xstreamsPerTarget);
  get(j, "targetBandwidth", out.targetBandwidth);
  get(j, "targetServiceTime", out.targetServiceTime);
  get(j, "randomEfficiency", out.randomEfficiency);
  get(j, "capacityPerTarget", out.capacityPerTarget);
  get(j, "redundancyGroupSize", out.redundancyGroupSize);
  get(j, "fsyncLatency", out.fsyncLatency);
  get(j, "metadataServiceTime", out.metadataServiceTime);
  get(j, "metadataSharedDirPenalty", out.metadataSharedDirPenalty);
  get(j, "sharedFileLockLatency", out.sharedFileLockLatency);
  get(j, "sharedFileEfficiency", out.sharedFileEfficiency);
  getStruct(j, "fabric", out.fabric);
  return true;
}

// ---- UnifyFS ----

JsonValue toJson(const UnifyFsConfig& c) {
  JsonObject o;
  o["name"] = c.name;
  o["spillDevice"] = toJson(c.spillDevice);
  o["spillDevicesPerNode"] = static_cast<double>(c.spillDevicesPerNode);
  o["shmemBytes"] = static_cast<double>(c.shmemBytes);
  o["memoryBandwidth"] = c.memoryBandwidth;
  o["placement"] = toJson(c.placement);
  o["serverThreadsPerNode"] = static_cast<double>(c.serverThreadsPerNode);
  o["serverThreadBandwidth"] = c.serverThreadBandwidth;
  o["metadataLatency"] = c.metadataLatency;
  o["localRpcLatency"] = c.localRpcLatency;
  o["remoteRpcLatency"] = c.remoteRpcLatency;
  o["capacityPerNode"] = static_cast<double>(c.capacityPerNode);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, UnifyFsConfig& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  getStruct(j, "spillDevice", out.spillDevice);
  get(j, "spillDevicesPerNode", out.spillDevicesPerNode);
  get(j, "shmemBytes", out.shmemBytes);
  get(j, "memoryBandwidth", out.memoryBandwidth);
  getEnum(j, "placement", out.placement);
  get(j, "serverThreadsPerNode", out.serverThreadsPerNode);
  get(j, "serverThreadBandwidth", out.serverThreadBandwidth);
  get(j, "metadataLatency", out.metadataLatency);
  get(j, "localRpcLatency", out.localRpcLatency);
  get(j, "remoteRpcLatency", out.remoteRpcLatency);
  get(j, "capacityPerNode", out.capacityPerNode);
  return true;
}

// ---- IOR ----

JsonValue toJson(const IorConfig& c) {
  JsonObject o;
  o["access"] = toJson(c.access);
  o["blockSize"] = static_cast<double>(c.blockSize);
  o["transferSize"] = static_cast<double>(c.transferSize);
  o["segments"] = static_cast<double>(c.segments);
  o["filePerProcess"] = c.filePerProcess;
  o["fsyncPerWrite"] = c.fsyncPerWrite;
  o["reorderTasks"] = c.reorderTasks;
  o["stonewallSeconds"] = c.stonewallSeconds;
  o["nodes"] = static_cast<double>(c.nodes);
  o["procsPerNode"] = static_cast<double>(c.procsPerNode);
  // Emitted only when aggregating, so legacy configs serialize unchanged.
  if (c.clientsPerRank != 1) o["clientsPerRank"] = static_cast<double>(c.clientsPerRank);
  o["repetitions"] = static_cast<double>(c.repetitions);
  o["mode"] = std::string(c.mode == IorConfig::Mode::Coalesced ? "coalesced" : "per-op");
  o["noiseStdDevFrac"] = c.noiseStdDevFrac;
  o["seed"] = static_cast<double>(c.seed);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, IorConfig& out) {
  if (!j.isObject()) return false;
  getEnum(j, "access", out.access);
  get(j, "blockSize", out.blockSize);
  get(j, "transferSize", out.transferSize);
  get(j, "segments", out.segments);
  get(j, "filePerProcess", out.filePerProcess);
  get(j, "fsyncPerWrite", out.fsyncPerWrite);
  get(j, "reorderTasks", out.reorderTasks);
  get(j, "stonewallSeconds", out.stonewallSeconds);
  get(j, "nodes", out.nodes);
  get(j, "procsPerNode", out.procsPerNode);
  get(j, "clientsPerRank", out.clientsPerRank);
  get(j, "repetitions", out.repetitions);
  if (const JsonValue* v = j.find("mode"); v && v->isString()) {
    if (*v->str() == "coalesced") out.mode = IorConfig::Mode::Coalesced;
    else if (*v->str() == "per-op") out.mode = IorConfig::Mode::PerOp;
    else return false;
  }
  get(j, "noiseStdDevFrac", out.noiseStdDevFrac);
  get(j, "seed", out.seed);
  return true;
}

// ---- DLIO ----

JsonValue toJson(const DlioWorkload& w) {
  JsonObject o;
  o["name"] = w.name;
  o["samples"] = static_cast<double>(w.samples);
  o["sampleSize"] = static_cast<double>(w.sampleSize);
  o["transferSize"] = static_cast<double>(w.transferSize);
  o["batchSize"] = static_cast<double>(w.batchSize);
  o["epochs"] = static_cast<double>(w.epochs);
  o["ioThreads"] = static_cast<double>(w.ioThreads);
  o["computeThreads"] = static_cast<double>(w.computeThreads);
  o["prefetchDepth"] = static_cast<double>(w.prefetchDepth);
  o["computeTimePerBatch"] = w.computeTimePerBatch;
  o["scaling"] = toJson(w.scaling);
  o["checkpointEvery"] = static_cast<double>(w.checkpointEvery);
  o["checkpointBytes"] = static_cast<double>(w.checkpointBytes);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, DlioWorkload& out) {
  if (!j.isObject()) return false;
  get(j, "name", out.name);
  get(j, "samples", out.samples);
  get(j, "sampleSize", out.sampleSize);
  get(j, "transferSize", out.transferSize);
  get(j, "batchSize", out.batchSize);
  get(j, "epochs", out.epochs);
  get(j, "ioThreads", out.ioThreads);
  get(j, "computeThreads", out.computeThreads);
  get(j, "prefetchDepth", out.prefetchDepth);
  get(j, "computeTimePerBatch", out.computeTimePerBatch);
  getEnum(j, "scaling", out.scaling);
  get(j, "checkpointEvery", out.checkpointEvery);
  get(j, "checkpointBytes", out.checkpointBytes);
  return true;
}

JsonValue toJson(const DlioConfig& c) {
  JsonObject o;
  o["workload"] = toJson(c.workload);
  o["nodes"] = static_cast<double>(c.nodes);
  o["procsPerNode"] = static_cast<double>(c.procsPerNode);
  o["seed"] = static_cast<double>(c.seed);
  o["computeJitterFrac"] = c.computeJitterFrac;
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, DlioConfig& out) {
  if (!j.isObject()) return false;
  getStruct(j, "workload", out.workload);
  get(j, "nodes", out.nodes);
  get(j, "procsPerNode", out.procsPerNode);
  get(j, "seed", out.seed);
  get(j, "computeJitterFrac", out.computeJitterFrac);
  return true;
}

// ---- MDTest ----

JsonValue toJson(const MdtestConfig& c) {
  JsonObject o;
  o["nodes"] = static_cast<double>(c.nodes);
  o["procsPerNode"] = static_cast<double>(c.procsPerNode);
  o["itemsPerProc"] = static_cast<double>(c.itemsPerProc);
  o["uniqueDirPerTask"] = c.uniqueDirPerTask;
  o["repetitions"] = static_cast<double>(c.repetitions);
  o["noiseStdDevFrac"] = c.noiseStdDevFrac;
  o["seed"] = static_cast<double>(c.seed);
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, MdtestConfig& out) {
  if (!j.isObject()) return false;
  get(j, "nodes", out.nodes);
  get(j, "procsPerNode", out.procsPerNode);
  get(j, "itemsPerProc", out.itemsPerProc);
  get(j, "uniqueDirPerTask", out.uniqueDirPerTask);
  get(j, "repetitions", out.repetitions);
  get(j, "noiseStdDevFrac", out.noiseStdDevFrac);
  get(j, "seed", out.seed);
  return true;
}

// ---- file helpers ----

template <typename T>
bool saveConfig(const T& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << writeJson(toJson(config), 2) << '\n';
  return static_cast<bool>(out);
}

template <typename T>
bool loadConfig(const std::string& path, T& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  if (!parseJson(buf.str(), root)) return false;
  return fromJson(root, out);
}

// Explicit instantiations for every config type.
template bool saveConfig<Machine>(const Machine&, const std::string&);
template bool loadConfig<Machine>(const std::string&, Machine&);
template bool saveConfig<VastConfig>(const VastConfig&, const std::string&);
template bool loadConfig<VastConfig>(const std::string&, VastConfig&);
template bool saveConfig<GpfsConfig>(const GpfsConfig&, const std::string&);
template bool loadConfig<GpfsConfig>(const std::string&, GpfsConfig&);
template bool saveConfig<LustreConfig>(const LustreConfig&, const std::string&);
template bool loadConfig<LustreConfig>(const std::string&, LustreConfig&);
template bool saveConfig<NvmeLocalConfig>(const NvmeLocalConfig&, const std::string&);
template bool loadConfig<NvmeLocalConfig>(const std::string&, NvmeLocalConfig&);
template bool saveConfig<UnifyFsConfig>(const UnifyFsConfig&, const std::string&);
template bool loadConfig<UnifyFsConfig>(const std::string&, UnifyFsConfig&);
template bool saveConfig<DaosConfig>(const DaosConfig&, const std::string&);
template bool loadConfig<DaosConfig>(const std::string&, DaosConfig&);
template bool saveConfig<IorConfig>(const IorConfig&, const std::string&);
template bool loadConfig<IorConfig>(const std::string&, IorConfig&);
template bool saveConfig<DlioWorkload>(const DlioWorkload&, const std::string&);
template bool loadConfig<DlioWorkload>(const std::string&, DlioWorkload&);
template bool saveConfig<DlioConfig>(const DlioConfig&, const std::string&);
template bool loadConfig<DlioConfig>(const std::string&, DlioConfig&);
template bool saveConfig<MdtestConfig>(const MdtestConfig&, const std::string&);
template bool loadConfig<MdtestConfig>(const std::string&, MdtestConfig&);

}  // namespace hcsim
