#include "device/device_queue.hpp"
#include "device/hdd_raid.hpp"
#include "device/ssd.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace hcsim {
namespace {

TEST(AccessPattern, Predicates) {
  EXPECT_TRUE(isRead(AccessPattern::SequentialRead));
  EXPECT_TRUE(isRead(AccessPattern::RandomRead));
  EXPECT_FALSE(isRead(AccessPattern::SequentialWrite));
  EXPECT_FALSE(isRead(AccessPattern::RandomWrite));
  EXPECT_TRUE(isSequential(AccessPattern::SequentialWrite));
  EXPECT_FALSE(isSequential(AccessPattern::RandomWrite));
}

TEST(AccessPattern, ToString) {
  EXPECT_STREQ(toString(AccessPattern::SequentialRead), "seq-read");
  EXPECT_STREQ(toString(AccessPattern::RandomWrite), "rand-write");
}

TEST(SsdSpec, PresetsAreSane) {
  for (const SsdSpec& s :
       {SsdSpec::scm(), SsdSpec::qlc(), SsdSpec::samsung970Pro(), SsdSpec::sasSsd()}) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.readBandwidth, 0.0);
    EXPECT_GT(s.writeBandwidth, 0.0);
    EXPECT_GT(s.readLatency, 0.0);
    EXPECT_GT(s.randomEfficiency, 0.0);
    EXPECT_LE(s.randomEfficiency, 1.0);
  }
}

TEST(SsdSpec, QlcWritesMuchSlowerThanReads) {
  const SsdSpec qlc = SsdSpec::qlc();
  EXPECT_LT(qlc.writeBandwidth * 4, qlc.readBandwidth);
}

TEST(SsdSpec, ScmLatencyIsUltraLow) {
  // Paper: "100 nanoseconds to 30 microseconds".
  EXPECT_LE(SsdSpec::scm().readLatency, units::usec(30));
  EXPECT_GE(SsdSpec::scm().readLatency, units::nsec(100));
}

TEST(SsdArray, ZeroCountThrows) {
  EXPECT_THROW(SsdArray(SsdSpec::scm(), 0), std::invalid_argument);
}

TEST(SsdArray, LargeRequestsApproachStreamingBandwidth) {
  SsdArray a(SsdSpec::samsung970Pro(), 1);
  const Bandwidth eff = a.effectiveBandwidth(AccessPattern::SequentialRead, units::GiB);
  EXPECT_GT(eff, 0.98 * SsdSpec::samsung970Pro().readBandwidth);
}

TEST(SsdArray, TinyRequestsAreLatencyBound) {
  SsdArray a(SsdSpec::samsung970Pro(), 1);
  const Bandwidth eff = a.effectiveBandwidth(AccessPattern::RandomRead, 4096);
  // IOPS-bound: ~4096 / 80us ~ 51 MB/s, far below 3.5 GB/s streaming.
  EXPECT_LT(eff, 0.05 * SsdSpec::samsung970Pro().readBandwidth);
}

TEST(SsdArray, BandwidthScalesWithCount) {
  SsdArray one(SsdSpec::qlc(), 1);
  SsdArray four(SsdSpec::qlc(), 4);
  EXPECT_NEAR(four.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB),
              4 * one.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB), 1e-6);
}

TEST(SsdArray, RandomNeverBeatsSequential) {
  SsdArray a(SsdSpec::qlc(), 2);
  for (Bytes req : {Bytes{4096}, units::KiB * 64, units::MiB}) {
    EXPECT_LE(a.effectiveBandwidth(AccessPattern::RandomRead, req),
              a.effectiveBandwidth(AccessPattern::SequentialRead, req) + 1e-9);
  }
}

TEST(SsdArray, RequestLatencyByPattern) {
  SsdArray a(SsdSpec::qlc(), 1);
  EXPECT_DOUBLE_EQ(a.requestLatency(AccessPattern::SequentialRead), SsdSpec::qlc().readLatency);
  EXPECT_DOUBLE_EQ(a.requestLatency(AccessPattern::RandomWrite), SsdSpec::qlc().writeLatency);
}

TEST(HddRaid, ValidatesArguments) {
  EXPECT_THROW(HddRaid(HddSpec::nearlineSas(), 0), std::invalid_argument);
  EXPECT_THROW(HddRaid(HddSpec::nearlineSas(), 1, 1.0), std::invalid_argument);
  EXPECT_THROW(HddRaid(HddSpec::nearlineSas(), 1, -0.1), std::invalid_argument);
}

TEST(HddRaid, SequentialReadsStreamAtFullRate) {
  HddRaid r(HddSpec::nearlineSas(), 10, 0.2);
  EXPECT_DOUBLE_EQ(r.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB),
                   10 * HddSpec::nearlineSas().streamBandwidth);
}

TEST(HddRaid, RandomReadsPaySeek) {
  HddRaid r(HddSpec::nearlineSas(), 10, 0.2);
  const Bandwidth seq = r.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB);
  const Bandwidth rnd = r.effectiveBandwidth(AccessPattern::RandomRead, units::MiB);
  // 1 MiB at 250 MB/s = 4.2ms transfer + 8ms seek -> ~1/3 of streaming.
  EXPECT_LT(rnd, 0.5 * seq);
  EXPECT_GT(rnd, 0.2 * seq);
}

TEST(HddRaid, WritesPayParityOverhead) {
  HddRaid r(HddSpec::nearlineSas(), 10, 0.25);
  EXPECT_NEAR(r.effectiveBandwidth(AccessPattern::SequentialWrite, units::MiB),
              0.75 * r.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB), 1e-6);
}

TEST(HddRaid, RandomLatencyIsSeekBound) {
  HddRaid r(HddSpec::nearlineSas(), 4);
  EXPECT_DOUBLE_EQ(r.requestLatency(AccessPattern::RandomRead), HddSpec::nearlineSas().seekTime);
  EXPECT_LT(r.requestLatency(AccessPattern::SequentialRead),
            r.requestLatency(AccessPattern::RandomRead));
}

// Effective bandwidth grows monotonically with request size (property).
class DeviceMonotonicityTest : public ::testing::TestWithParam<Bytes> {};

TEST_P(DeviceMonotonicityTest, LargerRequestsNeverSlower) {
  const Bytes req = GetParam();
  SsdArray ssd(SsdSpec::qlc(), 3);
  HddRaid hdd(HddSpec::nearlineSas(), 12);
  EXPECT_LE(ssd.effectiveBandwidth(AccessPattern::RandomRead, req),
            ssd.effectiveBandwidth(AccessPattern::RandomRead, req * 2) + 1e-9);
  EXPECT_LE(hdd.effectiveBandwidth(AccessPattern::RandomRead, req),
            hdd.effectiveBandwidth(AccessPattern::RandomRead, req * 2) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RequestSizes, DeviceMonotonicityTest,
                         ::testing::Values(4096, 65536, 262144, 1048576, 4194304, 16777216));

TEST(DeviceQueue, ZeroServersThrows) {
  Simulator sim;
  EXPECT_THROW(DeviceQueue(sim, 0), std::invalid_argument);
}

TEST(DeviceQueue, SingleServerSerializes) {
  Simulator sim;
  DeviceQueue q(sim, 1, "dev");
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    q.submit(1.0, [&] { done.push_back(sim.now()); });
  }
  EXPECT_EQ(q.busy(), 1u);
  EXPECT_EQ(q.queued(), 2u);
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 3.0);
  EXPECT_EQ(q.completed(), 3u);
}

TEST(DeviceQueue, MultipleServersOverlap) {
  Simulator sim;
  DeviceQueue q(sim, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    q.submit(1.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(DeviceQueue, FifoOrderPreserved) {
  Simulator sim;
  DeviceQueue q(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.submit(0.5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(DeviceQueue, SubmitFromCompletionCallback) {
  Simulator sim;
  DeviceQueue q(sim, 1);
  SimTime secondDone = -1;
  q.submit(1.0, [&] {
    q.submit(1.0, [&] { secondDone = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(secondDone, 2.0);
}

TEST(DeviceQueue, NameAndServersAccessors) {
  Simulator sim;
  DeviceQueue q(sim, 3, "scm");
  EXPECT_EQ(q.name(), "scm");
  EXPECT_EQ(q.servers(), 3u);
}

}  // namespace
}  // namespace hcsim
