// Engine micro-benchmarks: simulator event loop, flow network
// re-rating, LRU/prefetch caches — the hot paths behind every figure
// bench.
//
// Two modes:
//   (default)              google-benchmark BM_* suite
//   --hcsim_json OUT       machine-readable throughput mode: runs the
//                          fixed scenarios from engine_scenarios.hpp
//                          (schedule/cancel/rebalance-heavy events/sec,
//                          sweep trials/sec plain and cache-served, and
//                          — when --hcsim_golden_dir is given — an
//                          in-process oracle-check cold/warm timing)
//                          and writes one JSON document to OUT.
//     --hcsim_compare REF.json    fail (exit 1) when any per-sec
//                          scenario regresses vs REF beyond tolerance
//     --hcsim_max_regress 0.30    the tolerance (fraction, default 0.30)
//     --hcsim_golden_dir DIR      golden snapshots for the oracle timing
//                          (skipped when absent)
//
// BENCH_engine.json at the repo root is the committed reference the
// check.sh perf smoke compares against; see docs/ENGINE.md for the
// re-record policy.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "cache/prefetch_cache.hpp"
#include "engine_scenarios.hpp"
#include "net/flow_network.hpp"
#include "oracle/golden.hpp"
#include "sim/simulator.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/trial_cache.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

using namespace hcsim;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Rng rng(42);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule(rng.uniform(), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsDispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SimulatorCancelChurn(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Rng rng(7);
    std::vector<EventId> ids(window);
    for (std::size_t i = 0; i < window; ++i) ids[i] = sim.schedule(1.0 + rng.uniform(), [] {});
    for (std::size_t i = 0; i < window * 8; ++i) {
      const std::size_t k = rng.uniformInt(static_cast<std::uint64_t>(window));
      sim.cancel(ids[k]);
      ids[k] = sim.schedule(1.0 + rng.uniform(), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsDispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window) * 8);
}
BENCHMARK(BM_SimulatorCancelChurn)->Arg(1024)->Arg(4096);

void BM_FlowNetworkConcurrentFlows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    FlowNetwork net(sim);
    const LinkId shared = net.addLink("shared", 1e9);
    std::size_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec spec;
      spec.bytes = 1'000'000;
      spec.route = {shared};
      net.startFlow(spec, [&done](const FlowCompletion&) { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlowNetworkConcurrentFlows)->Arg(16)->Arg(128)->Arg(512);

void BM_FlowNetworkStaggeredRebalance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    FlowNetwork net(sim);
    const LinkId shared = net.addLink("shared", 1e9);
    std::size_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec spec;
      spec.bytes = 50'000'000;
      spec.route = {shared};
      spec.startupLatency = 1e-6 * static_cast<double>(i);
      net.startFlow(spec, [&done](const FlowCompletion&) { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n + 1));
}
BENCHMARK(BM_FlowNetworkStaggeredRebalance)->Arg(128)->Arg(512);

void BM_LruCacheTouch(benchmark::State& state) {
  LruCache cache(1 << 20);
  for (std::uint64_t k = 0; k < 1024; ++k) cache.insert(k, 1024);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.touch(rng.uniformInt(2048)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheTouch);

void BM_PrefetchCacheSequentialRead(benchmark::State& state) {
  PrefetchCache cache(64 * 1024 * 1024, 4096, 8);
  Bytes offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(1, offset, 4096));
    offset += 4096;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefetchCacheSequentialRead);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(1.0, 0.1));
  }
}
BENCHMARK(BM_RngNormal);

// ---------------------------------------------------------------------------
// Machine-readable throughput mode (check.sh perf smoke).

/// The fixed sweep behind the trials/sec scenarios: 12 IOR cells on Lassen.
sweep::SweepSpec benchSweepSpec() {
  sweep::SweepSpec spec;
  spec.name = "bench-engine";
  spec.experiment = "ior";
  JsonObject ior;
  ior["segments"] = 200.0;
  ior["procsPerNode"] = 4.0;
  ior["repetitions"] = 1.0;
  JsonObject base;
  base["site"] = "lassen";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));
  spec.axes.push_back({"storage", {JsonValue("gpfs"), JsonValue("vast")}});
  spec.axes.push_back(
      {"ior.access", {JsonValue("seq-write"), JsonValue("seq-read"), JsonValue("rand-read")}});
  spec.axes.push_back({"ior.nodes", {JsonValue(1.0), JsonValue(4.0)}});
  return spec;
}

benchscn::ScenarioResult runSweepTrials(sweep::TrialCache* cache, std::size_t reps = 3) {
  const sweep::SweepSpec spec = benchSweepSpec();
  benchscn::ScenarioResult res;
  res.name = cache != nullptr ? "sweep_trials_cached" : "sweep_trials";
  res.workUnits = static_cast<double>(spec.trialCount());
  res.seconds =
      benchscn::detail::bestOf(reps, [&spec, cache] { sweep::runSweep(spec, /*jobs=*/1, cache); });
  return res;
}

JsonValue scenarioJson(const benchscn::ScenarioResult& r, const char* perSecKey) {
  JsonObject o;
  o["work_units"] = r.workUnits;
  o["seconds"] = r.seconds;
  o[perSecKey] = r.perSec();
  return JsonValue(std::move(o));
}

/// Wall-time one full oracle golden check (all figures) against `dir`.
double timeOracleCheck(const std::string& dir, sweep::TrialCache& cache, bool& pass) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const oracle::GoldenFigure& fig : oracle::builtinFigures()) {
    const oracle::FigureCheck check = oracle::checkFigure(fig, dir, 1, 2.0, &cache);
    pass = pass && check.pass();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct MachineOptions {
  std::string jsonOut;
  std::string compareRef;
  std::string goldenDir;
  double maxRegress = 0.30;
};

int runMachineMode(const MachineOptions& opt) {
  JsonObject scenarios;
  scenarios["schedule_heavy"] = scenarioJson(benchscn::runScheduleHeavy(), "events_per_sec");
  scenarios["cancel_heavy"] = scenarioJson(benchscn::runCancelHeavy(), "events_per_sec");
  scenarios["rebalance_heavy"] = scenarioJson(benchscn::runRebalanceHeavy(), "events_per_sec");

  scenarios["sweep_trials"] = scenarioJson(runSweepTrials(nullptr), "trials_per_sec");
  sweep::TrialCache warmCache;
  sweep::runSweep(benchSweepSpec(), 1, &warmCache);  // fill, untimed
  scenarios["sweep_trials_cached"] = scenarioJson(runSweepTrials(&warmCache), "trials_per_sec");

  if (!opt.goldenDir.empty()) {
    std::ifstream probe(oracle::goldenPath(opt.goldenDir, "fig2a"));
    if (probe) {
      sweep::TrialCache cache;
      bool pass = true;
      const double coldSec = timeOracleCheck(opt.goldenDir, cache, pass);
      const double warmSec = timeOracleCheck(opt.goldenDir, cache, pass);
      JsonObject o;
      o["cold_seconds"] = coldSec;
      o["warm_seconds"] = warmSec;
      o["speedup"] = warmSec > 0.0 ? coldSec / warmSec : 0.0;
      o["pass"] = pass;
      scenarios["oracle_check"] = JsonValue(std::move(o));
    } else {
      std::cerr << "bench_engine: no golden snapshots under " << opt.goldenDir
                << ", skipping oracle_check scenario\n";
    }
  }

  JsonObject doc;
  doc["schema"] = "hcsim-bench-engine-v1";
  doc["scenarios"] = JsonValue(std::move(scenarios));
  const JsonValue out(std::move(doc));

  {
    std::ofstream f(opt.jsonOut);
    if (!f) {
      std::cerr << "bench_engine: cannot write " << opt.jsonOut << "\n";
      return 2;
    }
    f << writeJson(out) << "\n";
  }

  // Human-readable recap on stdout.
  const JsonValue* sc = out.find("scenarios");
  for (const auto& [name, v] : *sc->object()) {
    std::cout << name << ":";
    for (const char* key : {"events_per_sec", "trials_per_sec", "speedup"}) {
      if (const JsonValue* p = v.find(key)) {
        std::cout << " " << key << "=" << *p->number();
      }
    }
    std::cout << "\n";
  }

  if (opt.compareRef.empty()) return 0;

  std::ifstream refFile(opt.compareRef);
  if (!refFile) {
    std::cerr << "bench_engine: cannot read reference " << opt.compareRef << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << refFile.rdbuf();
  JsonValue ref;
  if (!parseJson(buf.str(), ref)) {
    std::cerr << "bench_engine: reference " << opt.compareRef << " is not valid JSON\n";
    return 2;
  }
  const JsonValue* refScen = ref.find("scenarios");
  if (refScen == nullptr || refScen->object() == nullptr) {
    std::cerr << "bench_engine: reference has no scenarios object\n";
    return 2;
  }
  int failures = 0;
  for (const auto& [name, refV] : *refScen->object()) {
    for (const char* key : {"events_per_sec", "trials_per_sec"}) {
      const JsonValue* refRate = refV.find(key);
      if (refRate == nullptr || refRate->number() == nullptr) continue;
      const JsonValue* curScen = sc->find(name);
      const JsonValue* curRate = curScen != nullptr ? curScen->find(key) : nullptr;
      if (curRate == nullptr || curRate->number() == nullptr) {
        std::cerr << "PERF FAIL " << name << ": scenario missing from current run\n";
        ++failures;
        continue;
      }
      const double floor = *refRate->number() * (1.0 - opt.maxRegress);
      if (*curRate->number() < floor) {
        std::cerr << "PERF FAIL " << name << ": " << key << " " << *curRate->number()
                  << " < floor " << floor << " (ref " << *refRate->number() << ", tolerance "
                  << opt.maxRegress * 100.0 << "%)\n";
        ++failures;
      } else {
        std::cout << "perf ok " << name << ": " << key << " " << *curRate->number() << " vs ref "
                  << *refRate->number() << "\n";
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  MachineOptions opt;
  bool machine = false;
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag, std::string& dst) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::cerr << "bench_engine: " << flag << " needs a value\n";
        std::exit(2);
      }
      dst = argv[++i];
      return true;
    };
    std::string tol;
    if (takeValue("--hcsim_json", opt.jsonOut)) {
      machine = true;
    } else if (takeValue("--hcsim_compare", opt.compareRef)) {
    } else if (takeValue("--hcsim_golden_dir", opt.goldenDir)) {
    } else if (takeValue("--hcsim_max_regress", tol)) {
      opt.maxRegress = std::stod(tol);
    }
  }
  if (machine) return runMachineMode(opt);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
