#pragma once
// Telemetry — op-span store for the simulated storage stack.
//
// A span is the internal life of one simulated I/O: opened when its flow
// is launched, charged per-stage residency while in flight (the stage
// being whatever froze the flow's rate during progressive filling — a
// saturated link's family, the per-stream cap, or startup latency), and
// closed when the last byte arrives. Spans merge with the app-level
// TraceLog into one chrome-trace timeline and aggregate into the
// bottleneck-attribution report.
//
// Zero-cost-when-disabled contract: `enabled()` is checked once per
// flow launch / progress pass, never per event; a disabled Telemetry
// allocates nothing and flows carry only a kNoSpan sentinel. Enabling
// telemetry only *observes* — it never schedules or perturbs events —
// so simulated results are identical either way (asserted in tests).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/attribution.hpp"
#include "telemetry/metrics_registry.hpp"
#include "trace/trace_log.hpp"
#include "util/units.hpp"

namespace hcsim::telemetry {

/// Sentinel span handle carried by uninstrumented flows.
constexpr std::uint32_t kNoSpan = 0xffffffffu;

/// Internal spans are emitted under pid = kInternalPidBase + client
/// node, keeping them on separate timeline rows from app events.
constexpr std::uint32_t kInternalPidBase = 1000000;

/// Residency charged to one stage of a span.
struct SpanStage {
  std::uint32_t stage = 0;  ///< interned stage id
  Seconds seconds = 0.0;
  double bytes = 0.0;
};

struct Span {
  std::string name;  ///< e.g. "VAST@Lassen.read"
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  Seconds start = 0.0;
  Seconds end = -1.0;  ///< < start while the span is open
  double bytes = 0.0;
  std::vector<SpanStage> stages;

  bool closed() const { return end >= start; }
  Seconds duration() const { return closed() ? end - start : 0.0; }
};

class Telemetry {
 public:
  bool enabled() const { return enabled_; }
  void setEnabled(bool on) { enabled_ = on; }

  /// Intern a stage name ("gw", "startup", "stream-cap"); stable ids.
  std::uint32_t stageId(const std::string& name);
  const std::string& stageName(std::uint32_t id) const { return stageNames_.at(id); }
  std::size_t stageCount() const { return stageNames_.size(); }

  /// Stage id for a link, collapsed to its stageFamily() and cached by
  /// link index so the per-progress-pass cost is one vector load.
  std::uint32_t stageForLink(std::uint32_t linkIdx, const std::string& linkName);

  /// Open a span; returns its handle.
  std::uint32_t beginSpan(std::string name, std::uint32_t pid, std::uint32_t tid, Seconds start,
                          double bytes);

  /// Charge `dt` seconds (and `bytes` moved during them) to `stage`.
  void accrue(std::uint32_t span, std::uint32_t stage, Seconds dt, double bytes);

  void endSpan(std::uint32_t span, Seconds end);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t spanCount() const { return spans_.size(); }

  /// Aggregate all spans into the per-stage time/bytes breakdown.
  AttributionReport attribution() const;

  /// Snapshot span-level metrics ("telemetry.*") into a registry.
  void exportTo(MetricsRegistry& reg) const;

  void clear();

 private:
  bool enabled_ = false;
  std::vector<Span> spans_;
  std::vector<std::string> stageNames_;
  std::map<std::string, std::uint32_t> stageIds_;
  /// linkIdx -> interned stage id (kNoSpan = not yet resolved).
  std::vector<std::uint32_t> linkStageCache_;
};

/// One chrome-trace JSON combining app-level TraceLog events with the
/// telemetry spans (cat "internal", pid offset by kInternalPidBase,
/// per-stage residency in args) so both line up on a single timeline.
std::string mergedChromeTraceJson(const TraceLog& app, const Telemetry& tel);

}  // namespace hcsim::telemetry
