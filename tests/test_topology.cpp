#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

struct Harness {
  Simulator sim;
  FlowNetwork net{sim};
  Topology topo{net};
};

TEST(Topology, AddAndLookupLink) {
  Harness h;
  const LinkId id = h.topo.addLink("nic", 100.0, 0.5);
  EXPECT_TRUE(id.valid());
  EXPECT_TRUE(h.topo.hasLink("nic"));
  EXPECT_EQ(h.topo.link("nic").value, id.value);
  EXPECT_DOUBLE_EQ(h.net.link(id).capacity, 100.0);
  EXPECT_DOUBLE_EQ(h.net.link(id).latency, 0.5);
}

TEST(Topology, DuplicateNameThrows) {
  Harness h;
  h.topo.addLink("x", 1.0);
  EXPECT_THROW(h.topo.addLink("x", 2.0), std::invalid_argument);
}

TEST(Topology, UnknownLookupThrows) {
  Harness h;
  EXPECT_THROW(h.topo.link("missing"), std::out_of_range);
  EXPECT_FALSE(h.topo.hasLink("missing"));
}

TEST(Topology, GroupCreatesIndexedLinks) {
  Harness h;
  const GroupId g = h.topo.addGroup("gw", 3, 10.0, 0.1);
  EXPECT_EQ(h.topo.groupSize(g), 3u);
  EXPECT_TRUE(h.topo.hasLink("gw[0]"));
  EXPECT_TRUE(h.topo.hasLink("gw[1]"));
  EXPECT_TRUE(h.topo.hasLink("gw[2]"));
  EXPECT_DOUBLE_EQ(h.topo.groupCapacity(g), 30.0);
}

TEST(Topology, EmptyGroupThrows) {
  Harness h;
  EXPECT_THROW(h.topo.addGroup("g", 0, 1.0), std::invalid_argument);
}

TEST(Topology, RoundRobinPickCyclesThroughMembers) {
  Harness h;
  const GroupId g = h.topo.addGroup("g", 3, 1.0);
  const LinkId a = h.topo.pick(g);
  const LinkId b = h.topo.pick(g);
  const LinkId c = h.topo.pick(g);
  const LinkId a2 = h.topo.pick(g);
  EXPECT_NE(a.value, b.value);
  EXPECT_NE(b.value, c.value);
  EXPECT_NE(a.value, c.value);
  EXPECT_EQ(a.value, a2.value);
}

TEST(Topology, PickAtIsDeterministicModuloSize) {
  Harness h;
  const GroupId g = h.topo.addGroup("g", 4, 1.0);
  EXPECT_EQ(h.topo.pickAt(g, 1).value, h.topo.pickAt(g, 5).value);
  EXPECT_NE(h.topo.pickAt(g, 0).value, h.topo.pickAt(g, 1).value);
}

TEST(Topology, GroupsAreIndependent) {
  Harness h;
  const GroupId g1 = h.topo.addGroup("g1", 2, 1.0);
  const GroupId g2 = h.topo.addGroup("g2", 2, 2.0);
  EXPECT_EQ(h.topo.groupSize(g1), 2u);
  EXPECT_DOUBLE_EQ(h.topo.groupCapacity(g2), 4.0);
  // Picking from g1 does not advance g2's cursor.
  h.topo.pick(g1);
  EXPECT_EQ(h.topo.pick(g2).value, h.topo.link("g2[0]").value);
}

TEST(Topology, NetworkAccessors) {
  Harness h;
  EXPECT_EQ(&h.topo.network(), &h.net);
  const Topology& constRef = h.topo;
  EXPECT_EQ(&constRef.network(), &h.net);
}

}  // namespace
}  // namespace hcsim
