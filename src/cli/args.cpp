#include "cli/args.hpp"

#include <algorithm>
#include <cstdlib>

namespace hcsim {

namespace {

/// Options that never take a value. "--flag token" must leave `token` a
/// positional instead of swallowing it as the flag's value; every other
/// option follows the "--key value" rule.
bool isBareFlag(const std::string& name) {
  static const char* const kBareFlags[] = {
      "--fsync", "--per-op", "--shared-file", "--unique-dir", "--help",
      "--no-shrink", "--full", "--internal", "--telemetry", "--json",
      "--self", "--self-profile",
  };
  for (const char* flag : kBareFlags) {
    if (name == flag) return true;
  }
  return false;
}

}  // namespace

ArgParser::ArgParser(const std::vector<std::string>& args) { parse(args); }

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& tok = args[i];
    if (tok.rfind("--", 0) == 0) {
      const auto eq = tok.find('=');
      if (eq != std::string::npos) {
        options_[tok.substr(0, eq)] = tok.substr(eq + 1);
      } else if (!isBareFlag(tok) && i + 1 < args.size() &&
                 args[i + 1].rfind("--", 0) != 0) {
        options_[tok] = args[++i];
      } else {
        options_[tok] = "";
      }
    } else {
      positionals_.push_back(tok);
    }
  }
}

std::string ArgParser::positionalOr(std::size_t index, const std::string& fallback) const {
  return index < positionals_.size() ? positionals_[index] : fallback;
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::getOr(const std::string& key, const std::string& fallback) const {
  const auto v = get(key);
  return v ? *v : fallback;
}

double ArgParser::numberOr(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  return end && *end == '\0' ? d : fallback;
}

std::size_t ArgParser::sizeOr(const std::string& key, std::size_t fallback) const {
  const double d = numberOr(key, -1.0);
  return d >= 0.0 ? static_cast<std::size_t>(d) : fallback;
}

std::vector<std::string> ArgParser::unknownOptions(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) out.push_back(key);
  }
  return out;
}

}  // namespace hcsim
