// hcsim::probe tests: flight-recorder ring semantics + dump determinism,
// monitor parsing and the SLO watchdog behaviors (goodput window, p99,
// recovery deadline, stall), self-profiler gating, breach exit codes
// through the CLI, the satisfied-monitor byte-identity contract, and the
// telemetry x scale x chaos triple (aggregated drills export correct
// scale.* / chaos.* / probe.* gauges).

#include "probe/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "probe/monitor.hpp"
#include "probe/self_profiler.hpp"
#include "sweep/sweep_runner.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/json.hpp"
#include "workload/workload_spec.hpp"

namespace hcsim {
namespace {

using probe::FlightRecorder;
using probe::MonitorMetric;
using probe::MonitorSpec;
using probe::RecordKind;
using probe::WatchdogSet;

JsonValue mustParse(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(parseJson(text, v)) << text;
  return v;
}

std::string writeTemp(const std::string& name, const std::string& content) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::ofstream f(path, std::ios::trunc);
  f << content;
  return path;
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------- flight recorder ----------

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 16u);  // floor
}

TEST(FlightRecorder, RingKeepsNewestWindowAndLifetimeTotal) {
  FlightRecorder rec(16);
  for (std::uint32_t i = 0; i < 20; ++i) {
    rec.record(static_cast<double>(i), RecordKind::EngineHeartbeat, i, 2.0 * i);
  }
  EXPECT_EQ(rec.size(), 16u);
  EXPECT_EQ(rec.totalRecorded(), 20u);
  const std::vector<probe::Record> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  EXPECT_EQ(snap.front().subject, 4u);  // oldest retained
  EXPECT_EQ(snap.back().subject, 19u);  // newest
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].time, snap[i].time);
  }
}

TEST(FlightRecorder, ClearEmptiesTheWindowButKeepsNothing) {
  FlightRecorder rec(16);
  rec.record(1.0, RecordKind::NetRebalance, 3, 4.0);
  EXPECT_FALSE(rec.empty());
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FlightRecorder, DumpsAreDeterministicAcrossIdenticalRuns) {
  const auto fill = [](FlightRecorder& rec) {
    rec.record(0.5, RecordKind::EngineHeartbeat, 1, 10.0);
    rec.record(1.25, RecordKind::NetRebalance, 7, 3.0);
    rec.record(2.0, RecordKind::FaultInject, 0, 0.6);
  };
  FlightRecorder a(16), b(16);
  fill(a);
  fill(b);
  std::ostringstream ja, jb, ta, tb;
  a.dumpJsonl(ja);
  b.dumpJsonl(jb);
  a.dumpChromeTrace(ta);
  b.dumpChromeTrace(tb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ta.str(), tb.str());
  EXPECT_NE(ja.str().find("net.rebalance"), std::string::npos) << ja.str();
}

TEST(FlightRecorder, ChromeTraceDumpIsValidJson) {
  FlightRecorder rec(16);
  rec.record(0.1, RecordKind::RetryTimeout, probe::clientSubject(2, 3), 1.0);
  std::ostringstream os;
  rec.dumpChromeTrace(os);
  JsonValue doc;
  ASSERT_TRUE(parseJson(os.str(), doc)) << os.str();
  ASSERT_NE(doc.find("traceEvents"), nullptr);
}

// ---------- monitor parsing ----------

std::vector<std::string> monitorProblems(const std::string& text,
                                         std::vector<MonitorSpec>* parsed = nullptr) {
  std::vector<MonitorSpec> out;
  std::vector<std::string> problems;
  probe::parseMonitors(mustParse(text), out, problems);
  if (parsed != nullptr) *parsed = out;
  return problems;
}

TEST(MonitorParse, AbsentMonitorsMeansNone) {
  std::vector<MonitorSpec> parsed;
  EXPECT_TRUE(monitorProblems(R"({})", &parsed).empty());
  EXPECT_TRUE(parsed.empty());
}

TEST(MonitorParse, ParsesAllFourMetrics) {
  std::vector<MonitorSpec> parsed;
  const auto problems = monitorProblems(R"({"monitors":[
    {"name":"floor","metric":"goodputGBs","min":4.0,"windowSec":15},
    {"metric":"p99OpLatencySec","max":0.5},
    {"metric":"recoverySec","max":20},
    {"metric":"stallSec","max":10}]})", &parsed);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0].name, "floor");
  EXPECT_EQ(parsed[0].metric, MonitorMetric::GoodputGBs);
  EXPECT_DOUBLE_EQ(parsed[0].min, 4.0);
  EXPECT_DOUBLE_EQ(parsed[0].windowSec, 15.0);
  EXPECT_EQ(parsed[1].name, "p99OpLatencySec");  // defaults to the metric
  EXPECT_EQ(parsed[3].metric, MonitorMetric::StallSec);
}

TEST(MonitorParse, UnknownMetricIsActionableAndLeavesOutputUnchanged) {
  std::vector<MonitorSpec> parsed;
  const auto problems =
      monitorProblems(R"({"monitors":[{"metric":"goodput"}]})", &parsed);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown 'metric'"), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("goodputGBs"), std::string::npos) << problems[0];
  EXPECT_TRUE(parsed.empty());
}

TEST(MonitorParse, MissingBoundsRejected) {
  EXPECT_EQ(monitorProblems(R"({"monitors":[{"metric":"goodputGBs"}]})").size(), 1u);
  EXPECT_EQ(monitorProblems(R"({"monitors":[{"metric":"stallSec","max":0}]})").size(), 1u);
  EXPECT_EQ(
      monitorProblems(R"({"monitors":[{"metric":"goodputGBs","min":1,"windowSec":0}]})").size(),
      1u);
}

// ---------- watchdog behaviors ----------

TEST(Watchdog, PerSliceGoodputFloorCountsEveryViolation) {
  MonitorSpec spec;
  spec.name = "floor";
  spec.metric = MonitorMetric::GoodputGBs;
  spec.min = 5.0;
  WatchdogSet dog({spec});
  dog.observeSlice(0.0, 1.0, 6.0);
  dog.observeSlice(1.0, 2.0, 4.0);
  dog.observeSlice(2.0, 3.0, 3.0);
  dog.finish(3.0);
  ASSERT_EQ(dog.breaches().size(), 1u);
  EXPECT_EQ(dog.breaches()[0].monitor, "floor");
  EXPECT_DOUBLE_EQ(dog.breaches()[0].observed, 4.0);  // first violation reported
  EXPECT_DOUBLE_EQ(dog.breaches()[0].atSec, 2.0);
  EXPECT_EQ(dog.breaches()[0].occurrences, 2u);
}

TEST(Watchdog, TrailingWindowAbsorbsOneBadSlice) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::GoodputGBs;
  spec.min = 5.0;
  spec.windowSec = 2.0;
  WatchdogSet dog({spec});
  dog.observeSlice(0.0, 1.0, 10.0);  // window not yet full: not judged
  dog.observeSlice(1.0, 2.0, 10.0);
  dog.observeSlice(2.0, 3.0, 1.0);  // mean (10+1)/2 = 5.5: still ok
  EXPECT_FALSE(dog.breached());
  dog.observeSlice(3.0, 4.0, 1.0);  // mean 1.0: breach
  dog.finish(4.0);
  ASSERT_EQ(dog.breaches().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.breaches()[0].observed, 1.0);
  EXPECT_DOUBLE_EQ(dog.breaches()[0].atSec, 4.0);
}

TEST(Watchdog, P99CeilingFiresOnlineAndOnFinish) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::P99OpLatencySec;
  spec.max = 1.0;
  {
    WatchdogSet dog({spec});
    dog.observeOpLatency(0.5, 10.0);
    dog.observeSlice(0.0, 1.0, 1.0);  // online eval picks up the sample
    EXPECT_TRUE(dog.breached());
  }
  {
    WatchdogSet dog({spec});
    dog.observeOpLatency(0.5, 10.0);  // no slices: only finish() evaluates
    dog.finish(1.0);
    ASSERT_EQ(dog.breaches().size(), 1u);
    EXPECT_GT(dog.breaches()[0].observed, 1.0);
  }
}

TEST(Watchdog, RecoveryDeadlineUsesSliceCloseLikeChaosOutcome) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::RecoverySec;
  spec.max = 3.0;
  WatchdogSet dog({spec});
  dog.setRecoveryContext(/*lastRestoreAt=*/10.0, /*healthyGBs=*/8.0, /*tolerance=*/0.02);
  dog.observeSlice(10.0, 12.0, 2.0);  // still degraded
  dog.observeSlice(12.0, 14.0, 8.0);  // recovered at slice close: took 4 s
  dog.finish(14.0);
  ASSERT_EQ(dog.breaches().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.breaches()[0].observed, 4.0);
  EXPECT_DOUBLE_EQ(dog.breaches()[0].atSec, 14.0);
}

TEST(Watchdog, RecoveryWithinDeadlineStaysQuiet) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::RecoverySec;
  spec.max = 5.0;
  WatchdogSet dog({spec});
  dog.setRecoveryContext(10.0, 8.0, 0.02);
  dog.observeSlice(10.0, 12.0, 8.0);  // recovered in 2 s
  dog.finish(12.0);
  EXPECT_FALSE(dog.breached());
}

TEST(Watchdog, NeverRecoveredFiresAtFinish) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::RecoverySec;
  spec.max = 3.0;
  WatchdogSet dog({spec});
  dog.setRecoveryContext(10.0, 8.0, 0.02);
  dog.observeSlice(10.0, 12.0, 1.0);
  dog.finish(20.0);
  ASSERT_EQ(dog.breaches().size(), 1u);
  EXPECT_DOUBLE_EQ(dog.breaches()[0].observed, 10.0);  // still down at the end
}

TEST(Watchdog, StallFiresOncePerStretch) {
  MonitorSpec spec;
  spec.metric = MonitorMetric::StallSec;
  spec.max = 3.0;
  WatchdogSet dog({spec});
  dog.observeSlice(0.0, 2.0, 0.0);
  dog.observeSlice(2.0, 4.0, 0.0);  // 4 s stalled: fire
  dog.observeSlice(4.0, 6.0, 0.0);  // same stretch: no refire
  dog.observeSlice(6.0, 8.0, 1.0);  // recovery resets the stretch
  dog.observeSlice(8.0, 10.0, 0.0);
  dog.observeSlice(10.0, 12.0, 0.0);  // second stretch: fire again
  dog.finish(12.0);
  ASSERT_EQ(dog.breaches().size(), 1u);
  EXPECT_EQ(dog.breaches()[0].occurrences, 2u);
}

TEST(Watchdog, BreachLandsInTheFlightRecorder) {
  MonitorSpec spec;
  spec.name = "floor";
  spec.metric = MonitorMetric::GoodputGBs;
  spec.min = 5.0;
  WatchdogSet dog({spec});
  FlightRecorder rec(16);
  dog.setRecorder(&rec);
  dog.observeSlice(0.0, 1.0, 1.0);
  const std::vector<probe::Record> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, RecordKind::MonitorBreach);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
}

TEST(Watchdog, ExportsProbeGauges) {
  MonitorSpec floor;
  floor.name = "floor";
  floor.metric = MonitorMetric::GoodputGBs;
  floor.min = 5.0;
  MonitorSpec stall;
  stall.name = "stall";
  stall.metric = MonitorMetric::StallSec;
  stall.max = 100.0;
  WatchdogSet dog({floor, stall});
  dog.observeSlice(0.0, 1.0, 1.0);
  dog.finish(1.0);
  telemetry::MetricsRegistry reg;
  dog.exportTo(reg);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.monitors", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.breaches", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.monitor.floor.breaches", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.monitor.stall.breaches", -1.0), 0.0);
}

TEST(Watchdog, BreachTableNamesObservedAndLimit) {
  MonitorSpec spec;
  spec.name = "floor";
  spec.metric = MonitorMetric::GoodputGBs;
  spec.min = 5.0;
  WatchdogSet dog({spec});
  dog.observeSlice(0.0, 1.0, 1.0);
  const std::string table = probe::renderBreachTable(dog.breaches());
  EXPECT_NE(table.find("floor"), std::string::npos) << table;
  EXPECT_NE(table.find("goodputGBs"), std::string::npos) << table;
  EXPECT_NE(table.find("observed 1"), std::string::npos) << table;
  EXPECT_NE(table.find("limit 5"), std::string::npos) << table;
  EXPECT_TRUE(probe::renderBreachTable({}).empty());
}

// ---------- self profiler ----------

TEST(SelfProfiler, DisabledScopesCostNothing) {
  probe::SelfProfiler prof;
  EXPECT_FALSE(prof.enabled());
  {
    probe::SelfProfiler::Scope s(&prof, probe::SelfProfiler::Bucket::Dispatch);
  }
  EXPECT_EQ(prof.count(probe::SelfProfiler::Bucket::Dispatch), 0u);
  EXPECT_DOUBLE_EQ(prof.seconds(probe::SelfProfiler::Bucket::Dispatch), 0.0);
}

TEST(SelfProfiler, EnabledScopeAccumulatesWallClock) {
  probe::SelfProfiler prof;
  prof.setEnabled(true);
  {
    probe::SelfProfiler::Scope s(&prof, probe::SelfProfiler::Bucket::Solve);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  EXPECT_EQ(prof.count(probe::SelfProfiler::Bucket::Solve), 1u);
  EXPECT_GE(prof.seconds(probe::SelfProfiler::Bucket::Solve), 0.0);
}

// ---------- workload spec validation ----------

std::string workloadSpecError(const std::string& text) {
  workload::WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(mustParse(text), spec, problems);
  EXPECT_FALSE(problems.empty());
  std::string joined;
  for (const std::string& p : problems) joined += p + "\n";
  return joined;
}

TEST(WorkloadSpecProbe, SampleIntervalMustBePositive) {
  const std::string err = workloadSpecError(R"({
    "sampleIntervalSec": -1,
    "workload": {"generator": "io500", "nodes": 1, "procsPerNode": 2}})");
  EXPECT_NE(err.find("sampleIntervalSec: must be > 0"), std::string::npos) << err;
}

TEST(WorkloadSpecProbe, TimelineMonitorOnClosedGeneratorNeedsInterval) {
  const std::string err = workloadSpecError(R"({
    "workload": {"generator": "io500", "nodes": 1, "procsPerNode": 2},
    "monitors": [{"metric": "goodputGBs", "min": 1.0}]})");
  EXPECT_NE(err.find("sampleIntervalSec"), std::string::npos) << err;
}

TEST(WorkloadSpecProbe, RecoveryMonitorRequiresChaosSection) {
  const std::string err = workloadSpecError(R"({
    "sampleIntervalSec": 1.0,
    "workload": {"generator": "io500", "nodes": 1, "procsPerNode": 2},
    "monitors": [{"metric": "recoverySec", "max": 5.0}]})");
  EXPECT_NE(err.find("requires a 'chaos' section"), std::string::npos) << err;
}

// ---------- chaos integration ----------

chaos::ChaosSpec chaosSpecFromText(const std::string& text) {
  chaos::ChaosSpec spec;
  std::string err;
  EXPECT_TRUE(chaos::parseChaosSpec(mustParse(text), spec, err)) << err;
  return spec;
}

TEST(ChaosProbe, P99MonitorRejectedByChaosSpecs) {
  chaos::ChaosSpec spec;
  std::string err;
  EXPECT_FALSE(chaos::parseChaosSpec(mustParse(R"({
    "monitors": [{"metric": "p99OpLatencySec", "max": 1.0}]})"), spec, err));
  EXPECT_NE(err.find("p99OpLatencySec"), std::string::npos) << err;
}

// The telemetry x scale x chaos triple: a drill over aggregated flow
// classes must export correct scale.* gauges alongside chaos.* — and a
// satisfied watchdog must ride along without changing either.
TEST(ChaosProbe, AggregatedDrillExportsScaleChaosAndProbeGauges) {
  const chaos::ChaosSpec spec = chaosSpecFromText(R"({
    "workload": {"nodes": 2, "procsPerNode": 4, "clientsPerProc": 8},
    "horizonSec": 10, "intervalSec": 2,
    "events": [
      {"atSec": 3, "action": "fail", "component": "cnode", "index": 0},
      {"atSec": 6, "action": "restore", "component": "cnode", "index": 0}
    ],
    "monitors": [{"name": "floor", "metric": "goodputGBs", "min": 0.0001}]})");
  const chaos::ChaosOutcome out = chaos::runChaos(spec);
  EXPECT_EQ(out.flowClasses, 8u);       // 2 nodes x 4 procs = 8 sessions
  EXPECT_EQ(out.clientsTotal, 64u);     // each standing for 8 clients
  EXPECT_EQ(out.monitors, 1u);
  EXPECT_TRUE(out.breaches.empty());

  telemetry::MetricsRegistry reg;
  chaos::exportTo(out, reg);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.classes", 0.0), 8.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.clientsTotal", 0.0), 64.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("scale.clientsPerClass", 0.0), 8.0);
  EXPECT_GT(reg.gaugeOr("chaos.healthy_gbs", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("chaos.degraded_sec", -1.0), out.degradedSeconds);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.monitors", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("probe.breaches", -1.0), 0.0);

  // Same drill without the watchdog: the aggregation and the timeline
  // must be untouched by monitor evaluation.
  chaos::ChaosSpec bare = spec;
  bare.monitors.clear();
  const chaos::ChaosOutcome plain = chaos::runChaos(bare);
  EXPECT_EQ(chaos::toJsonl(plain), chaos::toJsonl(out));
}

// ---------- sweep self-profile ----------

TEST(SweepProbe, SelfProfileFillsWallClockColumns) {
  const JsonValue config = mustParse(R"({
    "site": "wombat", "storage": "vast",
    "ior": {"nodes": 1, "procsPerNode": 4, "segments": 8}})");
  sweep::TrialOptions opts;
  opts.selfProfile = true;
  const sweep::TrialMetrics m = sweep::runTrial("ior", config, opts);
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_TRUE(m.hasSelf);
  EXPECT_GT(m.selfDispatchSec + m.selfCallbackSec + m.selfSolveSec, 0.0);

  const sweep::TrialMetrics off = sweep::runTrial("ior", config, {});
  EXPECT_FALSE(off.hasSelf);
  EXPECT_EQ(off.meanGBs, m.meanGBs);  // profiling must not change results
}

// ---------- CLI ----------

constexpr const char* kCliChaosSpec = R"({
  "name": "probe-drill", "site": "lassen", "storage": "vast",
  "workload": {"nodes": 2, "procsPerNode": 4},
  "horizonSec": 12, "intervalSec": 2,
  "events": [
    {"atSec": 3, "action": "fail", "component": "cnode", "index": 0},
    {"atSec": 6, "action": "restore", "component": "cnode", "index": 0}
  ]%s})";

std::string cliChaosSpec(const std::string& monitorsJson) {
  std::string text(kCliChaosSpec);
  const auto pos = text.find("%s");
  text.replace(pos, 2, monitorsJson);
  return text;
}

TEST(ProbeCli, SatisfiedMonitorsExitZeroAndKeepJsonlByteIdentical) {
  const std::string plain = writeTemp("probe_plain.json", cliChaosSpec(""));
  const std::string slo = writeTemp("probe_slo.json", cliChaosSpec(R"(,
    "monitors": [
      {"name": "floor", "metric": "goodputGBs", "min": 0.0001},
      {"name": "no-stall", "metric": "stallSec", "max": 11.0}
    ])"));
  const std::string outPlain = std::string(::testing::TempDir()) + "probe_plain.jsonl";
  const std::string outSlo = std::string(::testing::TempDir()) + "probe_slo.jsonl";
  std::ostringstream so1, se1, so2, se2;
  ASSERT_EQ(cli::run(ArgParser({"chaos", plain, "--out", outPlain}), so1, se1), 0) << se1.str();
  ASSERT_EQ(cli::run(ArgParser({"chaos", slo, "--out", outSlo}), so2, se2), 0) << se2.str();
  EXPECT_EQ(readFile(outPlain), readFile(outSlo));
  EXPECT_NE(so2.str().find("monitors: 2 evaluated, 0 breach(es)"), std::string::npos)
      << so2.str();
  std::remove(plain.c_str());
  std::remove(slo.c_str());
  std::remove(outPlain.c_str());
  std::remove(outSlo.c_str());
}

TEST(ProbeCli, BreachedMonitorExitsThreeWithBreachTable) {
  const std::string spec = writeTemp("probe_breach.json", cliChaosSpec(R"(,
    "monitors": [{"name": "impossible", "metric": "goodputGBs", "min": 100000.0}])"));
  std::ostringstream so, se;
  EXPECT_EQ(cli::run(ArgParser({"chaos", spec}), so, se), 3);
  EXPECT_NE(so.str().find("SLO breaches:"), std::string::npos) << so.str();
  EXPECT_NE(so.str().find("impossible"), std::string::npos) << so.str();
  std::remove(spec.c_str());
}

TEST(ProbeCli, DumpOnExitWritesDeterministicRecorderDumps) {
  const std::string spec = writeTemp("probe_dump.json", cliChaosSpec(""));
  const std::string pa = std::string(::testing::TempDir()) + "probe_dump_a";
  const std::string pb = std::string(::testing::TempDir()) + "probe_dump_b";
  for (const std::string& prefix : {pa, pb}) {
    std::ostringstream so, se;
    ASSERT_EQ(cli::run(ArgParser({"chaos", spec, "--dump-on-exit", prefix}), so, se), 0)
        << se.str();
    EXPECT_NE(so.str().find("flight-recorder"), std::string::npos) << so.str();
  }
  const std::string ja = readFile(pa + ".jsonl");
  EXPECT_FALSE(ja.empty());
  EXPECT_EQ(ja, readFile(pb + ".jsonl"));
  EXPECT_EQ(readFile(pa + ".trace.json"), readFile(pb + ".trace.json"));
  for (const std::string& p : {pa + ".jsonl", pa + ".trace.json", pb + ".jsonl",
                               pb + ".trace.json", spec}) {
    std::remove(p.c_str());
  }
}

TEST(ProbeCli, ProbeCommandDispatchesChaosAndWorkloadByShape) {
  const std::string chaosSpec = writeTemp("probe_dispatch_chaos.json", cliChaosSpec(R"(,
    "monitors": [{"name": "floor", "metric": "goodputGBs", "min": 0.0001}])"));
  std::ostringstream so1, se1;
  EXPECT_EQ(cli::run(ArgParser({"probe", chaosSpec}), so1, se1), 0) << se1.str();
  EXPECT_NE(so1.str().find("chaos:"), std::string::npos) << so1.str();

  const std::string wlSpec = writeTemp("probe_dispatch_wl.json", R"({
    "site": "lassen", "storage": "vast",
    "workload": {"generator": "io500", "nodes": 1, "procsPerNode": 2,
                 "easyOpsMedian": 4, "hardOpsMedian": 8, "seed": 3},
    "monitors": [{"metric": "p99OpLatencySec", "max": 600.0}]})");
  std::ostringstream so2, se2;
  EXPECT_EQ(cli::run(ArgParser({"probe", wlSpec}), so2, se2), 0) << se2.str();
  EXPECT_NE(so2.str().find("monitors: 1 evaluated"), std::string::npos) << so2.str();
  std::remove(chaosSpec.c_str());
  std::remove(wlSpec.c_str());
}

TEST(ProbeCli, StatsJsonIsLosslessMachineOutput) {
  std::ostringstream so, se;
  const ArgParser args({"stats", "--site", "lassen", "--storage", "vast", "--access",
                        "seq-read", "--nodes", "1", "--ppn", "2", "--json"});
  ASSERT_EQ(cli::run(args, so, se), 0) << se.str();
  JsonValue doc;
  ASSERT_TRUE(parseJson(so.str(), doc)) << so.str().substr(0, 200);
  ASSERT_NE(doc.find("gauges"), nullptr);
  ASSERT_NE(doc.find("counters"), nullptr);
}

TEST(ProbeCli, StatsSelfPrintsProfileSection) {
  std::ostringstream so, se;
  const ArgParser args({"stats", "--site", "lassen", "--storage", "vast", "--access",
                        "seq-read", "--nodes", "1", "--ppn", "2", "--self"});
  ASSERT_EQ(cli::run(args, so, se), 0) << se.str();
  EXPECT_NE(so.str().find("self."), std::string::npos) << so.str().substr(0, 400);
}

}  // namespace
}  // namespace hcsim
