#pragma once
// IorConfig — reimplementation of the IOR-4.1.0 options the paper uses
// (§IV-C1): POSIX API, N-N file-per-process, sequential write (scientific
// simulations), sequential read (data analytics), random read (ML),
// optional fsync-per-write (-e), task reordering (-C) so that a different
// client reads than wrote, block/transfer/segment geometry.

#include <cstddef>
#include <cstdint>
#include <string>

#include "device/ssd.hpp"  // AccessPattern
#include "util/units.hpp"

namespace hcsim {

struct IorConfig {
  enum class Api { Posix };
  /// How the runner drives the simulation:
  ///  * Coalesced — one flow per process for the whole phase (exact for
  ///    the flow-level model; used for the scalability tests, DESIGN §5);
  ///  * PerOp — every transfer is its own simulated request (used for the
  ///    fsync single-node tests where commit queueing matters).
  enum class Mode { Coalesced, PerOp };

  Api api = Api::Posix;
  AccessPattern access = AccessPattern::SequentialWrite;
  Bytes blockSize = units::MiB;     ///< -b
  Bytes transferSize = units::MiB;  ///< -t
  std::size_t segments = 3000;      ///< -s (paper: 3000 -> ~120 GB/node)
  bool filePerProcess = true;       ///< -F (N-N; paper avoids N-1)
  bool fsyncPerWrite = false;       ///< -e
  bool reorderTasks = true;         ///< -C: different client reads than wrote
  /// -D: stonewalling — stop issuing after this many seconds and report
  /// bytes actually moved (avoids stragglers dominating). 0 disables;
  /// requires Mode::PerOp.
  Seconds stonewallSeconds = 0.0;
  std::size_t nodes = 1;
  std::size_t procsPerNode = 1;
  /// Flow-class aggregation (hcsim::scale): every rank's requests carry
  /// this many members — each simulated proc stands for clientsPerRank
  /// identical colocated clients, and the phase declares the multiplied
  /// population. 1 = legacy per-proc streams, byte-identically.
  std::size_t clientsPerRank = 1;
  std::size_t repetitions = 1;  ///< paper repeats every test 10x
  Mode mode = Mode::Coalesced;
  /// Multiplicative run-to-run variability of a *shared* production
  /// system (the reason the paper repeats runs); 0 disables.
  double noiseStdDevFrac = 0.0;
  std::uint64_t seed = 0x10eull;

  std::size_t totalProcs() const { return nodes * procsPerNode; }
  Bytes bytesPerProc() const { return static_cast<Bytes>(segments) * blockSize; }
  Bytes totalBytes() const { return bytesPerProc() * totalProcs(); }
  std::uint64_t transfersPerProc() const {
    return static_cast<std::uint64_t>(segments) * (blockSize / transferSize);
  }

  /// Throws std::invalid_argument on inconsistent geometry.
  void validate() const;

  std::string describe() const;

  // ---- Presets for the paper's experiments ----

  /// Fig 2 scalability geometry: 1 MiB block & transfer, 3000 segments,
  /// full-node process counts, ~120 GB per node.
  static IorConfig scalability(AccessPattern access, std::size_t nodes,
                               std::size_t procsPerNode);

  /// Fig 3 single-node geometry: fsync on write, per-op simulation,
  /// 1-32 processes, a smaller per-process volume (256 MiB).
  static IorConfig singleNodeFsync(AccessPattern access, std::size_t procs);
};

}  // namespace hcsim
