// Failure injection on the parallel-file-system baselines: GPFS NSD
// servers and Lustre OSS/MDS pools degrade capacity proportionally and
// recover on restore.

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"

namespace hcsim {
namespace {

double gpfsReadGBs(GpfsModel& fs, TestBench& bench) {
  IorRunner runner(bench, fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 4, 44);
  cfg.segments = 256;
  return units::toGBs(runner.run(cfg).bandwidth.mean);
}

TEST(GpfsFailure, NsdLossDegradesAggregateProportionally) {
  TestBench bench(Machine::lassen(), 64);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  // Saturate the server pool: 64 nodes of sequential reads.
  IorRunner runner(bench, *fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 64, 44);
  cfg.segments = 128;
  const double healthy = units::toGBs(runner.run(cfg).bandwidth.mean);
  fs->failNsdServer(0);
  fs->failNsdServer(1);
  fs->failNsdServer(2);
  fs->failNsdServer(3);
  const double degraded = units::toGBs(runner.run(cfg).bandwidth.mean);
  EXPECT_NEAR(degraded / healthy, 0.75, 0.08);  // 12/16 servers
  EXPECT_EQ(fs->aliveNsdServers(), 12u);
  fs->restoreNsdServer(1);
  EXPECT_EQ(fs->aliveNsdServers(), 13u);
}

TEST(GpfsFailure, RestoreRecoversFully) {
  TestBench bench(Machine::lassen(), 4);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  const double healthy = gpfsReadGBs(*fs, bench);
  fs->failNsdServer(5);
  fs->restoreNsdServer(5);
  EXPECT_NEAR(gpfsReadGBs(*fs, bench), healthy, healthy * 1e-6);
}

TEST(GpfsFailure, OutOfRangeThrows) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  EXPECT_THROW(fs->failNsdServer(99), std::out_of_range);
}

TEST(LustreFailure, OssLossShrinksPool) {
  TestBench bench(Machine::quartz(), 1);
  auto fs = bench.attachLustre(lustreOnQuartz());
  // Many processes so the OSS pool (not the client NIC) is the gate.
  LustreConfig cfg = lustreOnQuartz();
  (void)cfg;
  IorRunner runner(bench, *fs);
  IorConfig ior = IorConfig::scalability(AccessPattern::SequentialRead, 1, 32);
  ior.segments = 256;
  const double healthy = units::toGBs(runner.run(ior).bandwidth.mean);
  for (std::size_t i = 0; i < 18; ++i) fs->failOss(i);  // half the OSSs
  EXPECT_EQ(fs->aliveOss(), 18u);
  const double degraded = units::toGBs(runner.run(ior).bandwidth.mean);
  EXPECT_LE(degraded, healthy * 1.001);
  for (std::size_t i = 0; i < 18; ++i) fs->restoreOss(i);
  EXPECT_NEAR(units::toGBs(runner.run(ior).bandwidth.mean), healthy, healthy * 1e-6);
}

TEST(LustreFailure, MdsLossSlowsMetadata) {
  TestBench bench(Machine::quartz(), 1);
  auto fs = bench.attachLustre(lustreOnQuartz());
  const auto metaStorm = [&] {
    SimTime last = 0;
    std::size_t outstanding = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
      MetaRequest req;
      req.client = {0, static_cast<std::uint32_t>(i % 8)};
      req.op = MetaOp::Create;
      req.fileId = i;
      req.sharedDirectory = false;
      ++outstanding;
      fs->submitMeta(req, [&](const IoResult& r) {
        last = std::max(last, r.endTime);
        --outstanding;
      });
    }
    const SimTime start = bench.sim().now();
    bench.sim().run();
    EXPECT_EQ(outstanding, 0u);
    return last - start;
  };
  const Seconds healthy = metaStorm();
  for (std::size_t i = 0; i < 12; ++i) fs->failMds(i);  // 4 of 16 left
  EXPECT_EQ(fs->aliveMds(), 4u);
  const Seconds degraded = metaStorm();
  EXPECT_GT(degraded, healthy * 1.5);
  EXPECT_THROW(fs->failMds(99), std::out_of_range);
}

TEST(LustreFailure, AllOssFailedIsOutage) {
  TestBench bench(Machine::quartz(), 1);
  auto fs = bench.attachLustre(lustreOnQuartz());
  for (std::size_t i = 0; i < 36; ++i) fs->failOss(i);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  EXPECT_THROW(fs->submit(req, nullptr), std::runtime_error);
}

}  // namespace
}  // namespace hcsim
