// quickstart — the smallest useful hcsim program.
//
// Builds the paper's two headline deployments (TCP-attached VAST on
// Lassen, RDMA-attached VAST on Wombat), runs one full-node IOR
// sequential-write test on each, and prints the per-node bandwidths —
// the "8x RDMA vs TCP" takeaway in ~30 lines.

#include <cstdio>

#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "util/units.hpp"

int main() {
  using namespace hcsim;

  std::printf("hcsim quickstart: one IOR sequential-write test per deployment\n\n");

  // TCP-deployed VAST as reached from Lassen (one gateway, single TCP link).
  const auto tcp = runIorNodeSweep(Site::Lassen, StorageKind::Vast,
                                   AccessPattern::SequentialWrite,
                                   {1}, calibration::kLassenProcsPerNode);

  // RDMA-deployed VAST on Wombat (nconnect=16, multipath).
  const auto rdma = runIorNodeSweep(Site::Wombat, StorageKind::Vast,
                                    AccessPattern::SequentialWrite,
                                    {1}, calibration::kWombatProcsPerNode);

  const double tcpGBs = tcp.front().meanGBs;
  const double rdmaGBs = rdma.front().meanGBs;
  std::printf("  VAST over NFS/TCP  (Lassen): %6.2f GB/s per node\n", tcpGBs);
  std::printf("  VAST over NFS/RDMA (Wombat): %6.2f GB/s per node\n", rdmaGBs);
  std::printf("  RDMA advantage:              %6.2fx (paper: up to 8x)\n",
              rdmaGBs / tcpGBs);
  return 0;
}
