#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "probe/flight_recorder.hpp"
#include "probe/self_profiler.hpp"

namespace hcsim {

namespace {
// 4-ary heap: shallower than binary for the same size, and the four
// children share a cache line of slot indices.
constexpr std::uint32_t kArity = 4;
}  // namespace

std::uint32_t Simulator::allocSlot() {
  if (!freeSlots_.empty()) {
    const std::uint32_t s = freeSlots_.back();
    freeSlots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::releaseSlot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.fn = nullptr;
  slot.heapPos = kNpos;
  if (++slot.gen == 0) ++slot.gen;  // generation 0 is reserved for "never used"
  freeSlots_.push_back(s);
}

void Simulator::siftUp(std::uint32_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heapPos = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heapPos = pos;
}

void Simulator::siftDown(std::uint32_t pos) {
  const std::uint32_t moving = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t firstChild = std::uint64_t{pos} * kArity + 1;
    if (firstChild >= n) break;
    std::uint32_t best = static_cast<std::uint32_t>(firstChild);
    const std::uint32_t last =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(firstChild + kArity, n));
    for (std::uint32_t c = best + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heapPos = pos;
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].heapPos = pos;
}

void Simulator::heapErase(std::uint32_t pos) {
  const std::uint32_t lastIdx = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != lastIdx) {
    const std::uint32_t moved = heap_[lastIdx];
    heap_[pos] = moved;
    slots_[moved].heapPos = pos;
    heap_.pop_back();
    // The filled-in entry may need to travel either direction; after
    // siftDown it sits at its (possibly new) position, from where siftUp
    // is a no-op unless it must rise.
    siftDown(pos);
    siftUp(slots_[moved].heapPos);
  } else {
    heap_.pop_back();
  }
}

std::uint32_t Simulator::decode(EventId id) const {
  if (!id.valid()) return kNpos;
  const std::uint64_t slotPlusOne = id.value & 0xffffffffull;
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (slotPlusOne == 0 || slotPlusOne > slots_.size()) return kNpos;
  const std::uint32_t s = static_cast<std::uint32_t>(slotPlusOne - 1);
  const Slot& slot = slots_[s];
  if (slot.gen != gen || slot.heapPos == kNpos) return kNpos;
  return s;
}

EventId Simulator::scheduleAt(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  ++scheduled_;
  const std::uint32_t s = allocSlot();
  Slot& slot = slots_[s];
  slot.time = t;
  slot.seq = nextSeq_++;
  if (slot.gen == 0) slot.gen = 1;  // first occupancy of a fresh slot
  slot.fn = std::move(fn);
  slot.heapPos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(s);
  if (heap_.size() > peakPending_) peakPending_ = heap_.size();
  siftUp(slot.heapPos);
  return EventId{(std::uint64_t{slot.gen} << 32) | (std::uint64_t{s} + 1)};
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t s = decode(id);
  if (s == kNpos) return false;
  ++cancelled_;
  heapErase(slots_[s].heapPos);
  releaseSlot(s);
  return true;
}

bool Simulator::adjustKey(EventId id, SimTime t) {
  const std::uint32_t s = decode(id);
  if (s == kNpos) return false;
  if (t < now_) t = now_;
  ++adjusted_;
  Slot& slot = slots_[s];
  slot.time = t;
  // Fresh FIFO position — see the dispatch invariant in the header.
  slot.seq = nextSeq_++;
  siftUp(slot.heapPos);
  siftDown(slot.heapPos);
  return true;
}

void Simulator::dispatchRoot() {
  const std::uint32_t s = heap_[0];
  Slot& slot = slots_[s];
  now_ = slot.time;
  EventFn fn = std::move(slot.fn);
  {
    probe::SelfProfiler::Scope scope(profiler_, probe::SelfProfiler::Bucket::Dispatch);
    heapErase(0);
    releaseSlot(s);  // before invoking: self-cancel inside the callback is a no-op
  }
  ++dispatched_;
  if (recorder_ && (dispatched_ & (kHeartbeatEvery - 1)) == 0) {
    recorder_->record(now_, probe::RecordKind::EngineHeartbeat,
                      static_cast<std::uint32_t>(heap_.size()),
                      static_cast<double>(dispatched_));
  }
  probe::SelfProfiler::Scope scope(profiler_, probe::SelfProfiler::Bucket::Callback);
  fn();
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  dispatchRoot();
  return true;
}

void Simulator::run() {
  while (!heap_.empty()) dispatchRoot();
}

void Simulator::runUntil(SimTime t) {
  while (!heap_.empty() && slots_[heap_[0]].time <= t) dispatchRoot();
  if (now_ < t) now_ = t;
}

}  // namespace hcsim
