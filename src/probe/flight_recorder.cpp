#include "probe/flight_recorder.hpp"

#include <ostream>

#include "util/json.hpp"

namespace hcsim::probe {

const char* toString(RecordKind kind) {
  switch (kind) {
    case RecordKind::EngineHeartbeat: return "engine.heartbeat";
    case RecordKind::NetRebalance: return "net.rebalance";
    case RecordKind::LinkHealth: return "net.link_health";
    case RecordKind::RetryTimeout: return "fs.retry_timeout";
    case RecordKind::OpFailed: return "fs.op_failed";
    case RecordKind::LateCompletion: return "fs.late_completion";
    case RecordKind::FaultInject: return "chaos.fault_inject";
    case RecordKind::FaultRestore: return "chaos.fault_restore";
    case RecordKind::GoodputSample: return "probe.goodput_sample";
    case RecordKind::PhaseSwitch: return "workload.phase_switch";
    case RecordKind::Barrier: return "workload.barrier";
    case RecordKind::MonitorBreach: return "probe.monitor_breach";
    case RecordKind::TransportStall: return "transport.sq_stall";
  }
  return "unknown";
}

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(roundUpPow2(capacity)) {
  mask_ = ring_.size() - 1;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

std::vector<Record> FlightRecorder::snapshot() const {
  std::vector<Record> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(start + i) & mask_]);
  return out;
}

void FlightRecorder::dumpJsonl(std::ostream& out) const {
  for (const Record& r : snapshot()) {
    out << "{\"t\":" << jsonNumber(r.time) << ",\"kind\":\"" << toString(r.kind)
        << "\",\"subject\":" << jsonNumber(static_cast<double>(r.subject))
        << ",\"value\":" << jsonNumber(r.value) << "}\n";
  }
}

void FlightRecorder::dumpChromeTrace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Record& r : snapshot()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << toString(r.kind) << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
        << static_cast<unsigned>(r.kind) << ",\"ts\":" << jsonNumber(r.time * 1e6)
        << ",\"args\":{\"subject\":" << jsonNumber(static_cast<double>(r.subject))
        << ",\"value\":" << jsonNumber(r.value) << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace hcsim::probe
