#pragma once
// The hcsim CLI commands — thin, scriptable entry points over the
// library. Each returns a process exit code and writes to the given
// streams, so tests can drive them without spawning processes.

#include <iosfwd>

#include "cli/args.hpp"

namespace hcsim::cli {

/// Dispatch `hcsim <subcommand> ...`. Known subcommands:
///   ior       run an IOR experiment      (--site --storage --access ...)
///   dlio      run a DLIO training        (--site --storage --workload ...)
///   mdtest    run an MDTest storm        (--site --storage --procs ...)
///   plan      search VAST deployments    (--machine --pattern --min-gbs ...)
///   takeaways run the paper's §VII checks
///   sweep     run a what-if config sweep   (--spec --jobs --out --baseline)
///   chaos     run a fault scenario          (<spec.json> --out --csv)
///             validates the schedule, injects the faults, prints the
///             per-interval bandwidth/availability timeline
///   workload  run any registered workload generator (<spec.json> --out
///             --csv --telemetry); the spec selects ior/dlio/replay/
///             io500/grammar/openloop and may compose chaos + retry
///   probe     run a chaos or workload spec under its SLO monitors
///             (<spec.json>, dispatched by shape); breaches exit 3, and
///             --dump-on-exit writes the flight-recorder ring
///   oracle    metamorphic & golden-figure regression harness
///             (list | relations | record | check)
///   trace     run a workload and export chrome-trace JSON; --internal
///             merges simulator-internal op spans and prints the
///             bottleneck-attribution table
///   stats     run a workload with telemetry and print the full metrics
///             registry (engine, network, per-link, storage model)
///   dump-config  print a preset config as JSON (--storage vast@wombat ...)
///   help      usage
int run(const ArgParser& args, std::ostream& out, std::ostream& err);

int cmdIor(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdDlio(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdMdtest(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdPlan(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdTakeaways(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdSweep(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdChaos(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdWorkload(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdProbe(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdOracle(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdTrace(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdStats(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdDumpConfig(const ArgParser& args, std::ostream& out, std::ostream& err);
int cmdHelp(std::ostream& out);

}  // namespace hcsim::cli
