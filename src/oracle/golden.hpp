#pragma once
// Golden-figure regression layer.
//
// A GoldenFigure is a named sweep spec reproducing one figure of the
// paper (Fig 2a/2b scaling curves, Fig 4/6 DLIO throughput). `record`
// runs the sweep and snapshots the results as JSONL under tests/golden/;
// `check` re-runs the identical sweep and compares every cell against
// the snapshot, failing on out-of-tolerance drift with a per-cell delta
// table. Cells are keyed by sweep::paramsKey, so the comparison survives
// axis reordering and trial renumbering between revisions.

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"

namespace hcsim::sweep {
class TrialCache;  // sweep/trial_cache.hpp
}

namespace hcsim::oracle {

struct GoldenFigure {
  std::string name;   ///< snapshot basename, e.g. "fig2a"
  std::string title;  ///< what the figure shows
  sweep::SweepSpec spec;
};

/// The recorded figures: fig2a (Lassen GPFS/VAST IOR scaling), fig2b
/// (Wombat VAST/NVMe), fig4 (resnet50 DLIO), fig6 (cosmoflow DLIO).
const std::vector<GoldenFigure>& builtinFigures();
const GoldenFigure* findFigure(const std::string& name);

/// dir + "/" + name + ".jsonl"
std::string goldenPath(const std::string& dir, const std::string& name);

struct CellDelta {
  std::string key;  ///< paramsKey of the cell
  double goldenGBs = 0.0;
  double currentGBs = 0.0;
  double deltaPct = 0.0;
  bool violated = false;
  std::string note;  ///< non-empty for structural drift (missing cell, new failure)
};

struct FigureCheck {
  std::string figure;
  std::string error;  ///< non-empty when the snapshot could not be read
  std::size_t cells = 0;
  std::size_t violations = 0;
  std::vector<CellDelta> deltas;  ///< every current cell in trial order, then unmatched golden cells
  bool pass() const { return error.empty() && violations == 0; }
};

/// Run the figure's sweep and write dir/name.jsonl. Refuses to snapshot
/// a sweep with failed trials (goldens must be all-green). `cache`
/// optionally memoizes trials (sweep::TrialCache) — snapshots are
/// byte-identical with or without it. Telemetry columns are stripped
/// before writing, so snapshots are also byte-identical with or without
/// opts.telemetry (asserted in tests).
bool recordFigure(const GoldenFigure& fig, const std::string& dir, std::size_t jobs,
                  std::string& error, sweep::TrialCache* cache = nullptr,
                  const sweep::TrialOptions& opts = {});

/// Re-run the figure's sweep and compare per cell. Drift beyond
/// tolerancePct (in either direction), cells that now fail, and cells
/// present on only one side all count as violations. A warm `cache`
/// serves the whole sweep without simulating, with identical deltas.
/// opts.telemetry must not change any delta (the check only reads
/// simulated bandwidth, which telemetry cannot perturb).
FigureCheck checkFigure(const GoldenFigure& fig, const std::string& dir, std::size_t jobs,
                        double tolerancePct, sweep::TrialCache* cache = nullptr,
                        const sweep::TrialOptions& opts = {});

/// Deterministic per-cell delta table (no timings, no job counts).
/// `fullTable` prints every cell; otherwise only violated cells.
std::string deltaTable(const FigureCheck& check, double tolerancePct, bool fullTable);

}  // namespace hcsim::oracle
