#include <gtest/gtest.h>

#include "fs/client_session.hpp"
#include "fs/model_support.hpp"
#include "util/units.hpp"

#include <limits>
#include <vector>

namespace hcsim {
namespace {

constexpr Bandwidth kInf = std::numeric_limits<Bandwidth>::infinity();

TEST(OverheadAdjustedCap, NoOverheadReturnsStreamCap) {
  EXPECT_DOUBLE_EQ(overheadAdjustedCap(100.0, 0.0, 1024), 100.0);
  EXPECT_DOUBLE_EQ(overheadAdjustedCap(100.0, -1.0, 1024), 100.0);
}

TEST(OverheadAdjustedCap, ZeroRequestThrows) {
  EXPECT_THROW(overheadAdjustedCap(100.0, 0.1, 0), std::invalid_argument);
}

TEST(OverheadAdjustedCap, HarmonicComposition) {
  // 1 MiB requests, 1 GB/s stream, 1 ms overhead:
  // rate = 1 / (1e-9 + 1e-3/2^20) = ~511 MB/s.
  const Bandwidth r = overheadAdjustedCap(1e9, 1e-3, units::MiB);
  EXPECT_NEAR(r, 1.0 / (1e-9 + 1e-3 / static_cast<double>(units::MiB)), 1.0);
  EXPECT_LT(r, 1e9);
}

TEST(OverheadAdjustedCap, InfiniteStreamCapBecomesPureOverheadRate) {
  // Pure dead-time bound: reqSize / overhead.
  const Bandwidth r = overheadAdjustedCap(kInf, 1e-3, units::MiB);
  EXPECT_NEAR(r, static_cast<double>(units::MiB) / 1e-3, 1.0);
}

TEST(OverheadAdjustedCap, ZeroStreamCapIsZero) {
  EXPECT_DOUBLE_EQ(overheadAdjustedCap(0.0, 1e-3, 1024), 0.0);
}

TEST(OverheadAdjustedCap, LargerRequestsAmortizeBetter) {
  const Bandwidth small = overheadAdjustedCap(1e9, 1e-3, 4096);
  const Bandwidth large = overheadAdjustedCap(1e9, 1e-3, units::MiB);
  EXPECT_LT(small, large);
}

TEST(CompletionBarrier, FiresAfterNCalls) {
  int fired = 0;
  auto cb = completionBarrier(3, [&] { ++fired; });
  cb();
  cb();
  EXPECT_EQ(fired, 0);
  cb();
  EXPECT_EQ(fired, 1);
}

TEST(CompletionBarrier, OverSignalIgnored) {
  int fired = 0;
  auto cb = completionBarrier(1, [&] { ++fired; });
  cb();
  cb();
  cb();
  EXPECT_EQ(fired, 1);
}

TEST(CompletionBarrier, ZeroCountFiresImmediately) {
  int fired = 0;
  completionBarrier(0, [&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

// ---- ClientSession against a recording fake ----

class FakeFs final : public FileSystemModel {
 public:
  const std::string& name() const override { return name_; }
  void beginPhase(const PhaseSpec&) override {}
  void endPhase() override {}
  Bytes totalCapacity() const override { return 0; }
  void submit(const IoRequest& req, IoCallback cb) override {
    requests.push_back(req);
    if (cb) cb(IoResult{0.0, 1.0, req.bytes});
  }
  void submitMeta(const MetaRequest& req, IoCallback cb) override {
    metaRequests.push_back(req);
    if (cb) cb(IoResult{0.0, 0.1, 0});
  }
  std::vector<IoRequest> requests;
  std::vector<MetaRequest> metaRequests;

 private:
  std::string name_ = "fake";
};

TEST(ClientSession, WriteAdvancesCursorAndSetsFields) {
  FakeFs fs;
  ClientSession s(fs, ClientId{3, 7}, 42);
  s.write(1000, true, nullptr);
  s.write(500, false, nullptr);
  ASSERT_EQ(fs.requests.size(), 2u);
  EXPECT_EQ(fs.requests[0].client.node, 3u);
  EXPECT_EQ(fs.requests[0].client.proc, 7u);
  EXPECT_EQ(fs.requests[0].fileId, 42u);
  EXPECT_EQ(fs.requests[0].offset, 0u);
  EXPECT_EQ(fs.requests[0].bytes, 1000u);
  EXPECT_TRUE(fs.requests[0].fsync);
  EXPECT_EQ(fs.requests[1].offset, 1000u);
  EXPECT_FALSE(fs.requests[1].fsync);
  EXPECT_EQ(s.cursor(), 1500u);
}

TEST(ClientSession, ReadUsesSequentialPattern) {
  FakeFs fs;
  ClientSession s(fs, ClientId{0, 0}, 1);
  s.read(256, nullptr);
  EXPECT_EQ(fs.requests[0].pattern, AccessPattern::SequentialRead);
  EXPECT_EQ(s.cursor(), 256u);
}

TEST(ClientSession, ReadAtIsRandomAndKeepsCursor) {
  FakeFs fs;
  ClientSession s(fs, ClientId{0, 0}, 1);
  s.seek(100);
  s.readAt(5000, 64, nullptr);
  EXPECT_EQ(fs.requests[0].pattern, AccessPattern::RandomRead);
  EXPECT_EQ(fs.requests[0].offset, 5000u);
  EXPECT_EQ(s.cursor(), 100u);
}

TEST(ClientSession, RunsCoalesceOps) {
  FakeFs fs;
  ClientSession s(fs, ClientId{0, 0}, 1);
  s.writeRun(1024, 8, false, nullptr);
  EXPECT_EQ(fs.requests[0].ops, 8u);
  EXPECT_EQ(fs.requests[0].bytes, 8192u);
  EXPECT_EQ(s.cursor(), 8192u);
  s.readRun(1024, 4, nullptr);
  EXPECT_EQ(fs.requests[1].offset, 8192u);
  EXPECT_EQ(s.cursor(), 8192u + 4096u);
  s.randomReadRun(1024, 16, nullptr);
  EXPECT_EQ(fs.requests[2].pattern, AccessPattern::RandomRead);
  EXPECT_EQ(fs.requests[2].ops, 16u);
}

TEST(ClientSession, CallbackReceivesResult) {
  FakeFs fs;
  ClientSession s(fs, ClientId{0, 0}, 1);
  IoResult got{};
  s.write(100, false, [&](const IoResult& r) { got = r; });
  EXPECT_EQ(got.bytes, 100u);
  EXPECT_DOUBLE_EQ(got.elapsed(), 1.0);
}

TEST(FileSystemModel, DefaultClientParallelismIsOne) {
  FakeFs fs;
  EXPECT_EQ(fs.clientParallelism(), 1u);
}

}  // namespace
}  // namespace hcsim
