#pragma once
// DaosConfig — knobs of the hcsim::daos disaggregated object store
// ("Exploring DAOS Interfaces and Performance", PAPERS.md). The unit of
// service is the *target*: an engine-managed NVMe/PMEM partition with a
// pool of xstream service threads. Pools group targets; objects hash
// over the pool's live targets; writes fan out to a redundancy group.
// Clients reach targets with RPC + bulk transfers over hcsim::transport
// — DAOS is the first backend built on the fabric from day one, so its
// config embeds the endpoint profile (RDMA by default, as DAOS requires
// a libfabric/verbs-class network).

#include <cstddef>
#include <string>

#include "transport/transport_profile.hpp"
#include "util/units.hpp"

namespace hcsim {

struct DaosConfig {
  std::string name = "DAOS";

  // ---- Pool layout ----
  std::size_t pools = 1;
  std::size_t targetsPerPool = 8;
  /// Service xstreams per target: RPCs admitted concurrently before
  /// queueing (the helper + I/O xstream pool of a DAOS engine).
  std::size_t xstreamsPerTarget = 8;

  // ---- Per-target service ----
  /// Bulk throughput of one target's NVMe/PMEM partition.
  Bandwidth targetBandwidth = units::gbs(6.0);
  /// Per-RPC xstream service time (argobots ULT dispatch + VOS lookup).
  Seconds targetServiceTime = units::usec(20);
  /// NVMe-backed object store: random ~= sequential up to this factor.
  double randomEfficiency = 0.9;
  Bytes capacityPerTarget = 32 * units::TB;

  // ---- Redundancy ----
  /// Write fan-out: each write lands on this many targets (replication
  /// group). Reads are served by one replica.
  std::size_t redundancyGroupSize = 2;

  // ---- Client-visible latencies ----
  /// Epoch-commit cost charged per fsync'd op (DAOS flushes an epoch).
  Seconds fsyncLatency = units::usec(50);
  /// Per-op metadata service on a target xstream (dkey/akey lookup).
  Seconds metadataServiceTime = units::usec(25);
  /// Object store: no POSIX directory locks, mild contention only.
  double metadataSharedDirPenalty = 1.2;
  /// No byte-range locks either; N-1 costs next to nothing.
  Seconds sharedFileLockLatency = 0.0;
  double sharedFileEfficiency = 1.0;

  /// The NIC/transport endpoint DAOS clients use. Always active for
  /// this model — an absent or empty spec "transport" section leaves
  /// this declared profile untouched (the empty-transport identity).
  transport::TransportProfile fabric = transport::TransportProfile::rdma();

  // ---- Derived ----
  std::size_t totalTargets() const { return pools * targetsPerPool; }
  Bytes totalCapacity() const {
    return static_cast<Bytes>(totalTargets()) * capacityPerTarget;
  }

  /// Throws std::invalid_argument when structurally inconsistent.
  void validate() const;

  /// A small all-flash instance reachable from any machine: 1 pool x 8
  /// targets, RF-2, RDMA endpoint.
  static DaosConfig instance();
};

}  // namespace hcsim
