#include "workload/workload_runner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "probe/flight_recorder.hpp"
#include "scale/flow_class.hpp"
#include "telemetry/metrics_registry.hpp"

namespace hcsim::workload {

void exportTo(const WorkloadOutcome& out, telemetry::MetricsRegistry& reg) {
  reg.gauge("workload.ops.issued", static_cast<double>(out.opsIssued));
  reg.gauge("workload.ops.completed", static_cast<double>(out.opsCompleted));
  reg.gauge("workload.ops.failed", static_cast<double>(out.opsFailed));
  reg.gauge("workload.ops.meta", static_cast<double>(out.metaOps));
  reg.gauge("workload.ops.compute", static_cast<double>(out.computeOps));
  reg.gauge("workload.barriers", static_cast<double>(out.barriers));
  reg.gauge("workload.bytes", static_cast<double>(out.bytesMoved));
  reg.gauge("workload.elapsedSec", out.elapsed);
  reg.gauge("workload.goodputGBs", out.goodputGBs());
  reg.gauge("workload.retries", static_cast<double>(out.retries));
  reg.gauge("workload.lateCompletions", static_cast<double>(out.lateCompletions));
  scale::exportTo(scale::ClassStats{out.ranks, out.clientsTotal()}, reg);
  if (out.monitors > 0) {
    reg.gauge("probe.monitors", static_cast<double>(out.monitors));
    reg.gauge("probe.breaches", static_cast<double>(out.breaches.size()));
  }
}

// The per-run state machine. Completion callbacks outlive the run()
// stack frame never — sim.run() drains everything before Impl dies.
struct WorkloadRunner::Impl {
  WorkloadSource* source = nullptr;
  Simulator* sim = nullptr;
  FileSystemModel* fs = nullptr;
  TraceLog* trace = nullptr;
  WorkloadPlan plan;
  WorkloadOutcome out;

  struct RankState {
    std::unique_ptr<ClientSession> session;
    bool ended = false;
    bool atBarrier = false;
    WorkloadOp barrierOp;
    std::size_t outstanding = 0;
    SimTime nextArrival = 0.0;  ///< open mode: last scheduled arrival time
  };
  std::vector<RankState> ranks;
  std::size_t live = 0;
  std::size_t outstandingTotal = 0;
  bool releasingBarrier = false;
  SimTime start = 0.0;
  SimTime lastEnd = 0.0;
  Bytes sampledBytes = 0;

  // SLO watchdog (owned by run(); outlives every sim callback).
  probe::WatchdogSet* watchdog = nullptr;
  bool haveLandmarks = false;
  SimTime firstFaultAt = std::numeric_limits<double>::infinity();
  SimTime lastRestoreAt = -1.0;
  double degradedTolerance = 0.02;
  struct {
    double sum = 0.0;
    std::size_t n = 0;
  } healthy;  ///< pre-fault slices, for the recovery floor

  // ---- closed mode: completion-driven chains/pipelines ----

  /// Pull ops from the rank until it blocks (Wait), parks (Barrier) or
  /// finishes (End). Callers follow up with maybeReleaseBarrier().
  void drain(std::size_t rank) {
    RankState& st = ranks[rank];
    while (!st.ended && !st.atBarrier) {
      WorkloadOp op;
      const NextStatus s = source->next(rank, op);
      if (s == NextStatus::Wait) return;
      if (s == NextStatus::End) {
        st.ended = true;
        --live;
        return;
      }
      if (op.kind == OpKind::Barrier) {
        st.atBarrier = true;
        st.barrierOp = std::move(op);
        return;
      }
      issue(rank, std::move(op));
    }
  }

  bool barrierReady() const {
    if (live == 0 || outstandingTotal != 0) return false;
    for (const RankState& st : ranks) {
      if (!st.ended && !st.atBarrier) return false;
    }
    return true;
  }

  /// Release the barrier once every live rank is parked and the pipes
  /// are empty; loops so back-to-back barriers cannot deadlock.
  void maybeReleaseBarrier() {
    if (releasingBarrier) return;
    releasingBarrier = true;
    while (barrierReady()) {
      ++out.barriers;
      probe::FlightRecorder* rec = sim->recorder();
      if (rec != nullptr) {
        rec->record(sim->now(), probe::RecordKind::Barrier,
                    static_cast<std::uint32_t>(out.barriers), static_cast<double>(live));
      }
      const WorkloadOp* gate = nullptr;
      for (RankState& st : ranks) {
        if (!st.ended) {
          gate = &st.barrierOp;
          break;
        }
      }
      if (gate != nullptr && gate->switchPhase) {
        // All foreground I/O is drained, so the model may legally end the
        // phase and re-declare the next one (io500 write -> read).
        if (rec != nullptr) {
          rec->record(sim->now(), probe::RecordKind::PhaseSwitch,
                      static_cast<std::uint32_t>(out.barriers), static_cast<double>(live));
        }
        fs->endPhase();
        fs->beginPhase(gate->phase);
      }
      for (RankState& st : ranks) st.atBarrier = false;
      for (std::size_t r = 0; r < ranks.size(); ++r) {
        if (!ranks[r].ended) drain(r);
      }
    }
    releasingBarrier = false;
  }

  // ---- open mode: arrival-driven (Poisson clients) ----

  void scheduleArrival(std::size_t rank) {
    RankState& st = ranks[rank];
    WorkloadOp op;
    if (source->next(rank, op) != NextStatus::Op) {
      st.ended = true;
      --live;
      return;
    }
    st.nextArrival += op.arrivalDelay;
    auto held = std::make_shared<WorkloadOp>(std::move(op));
    sim->scheduleAt(st.nextArrival, [this, rank, held] {
      issue(rank, std::move(*held));
      scheduleArrival(rank);
    });
  }

  // ---- shared issue/complete paths ----

  void issue(std::size_t rank, WorkloadOp op) {
    RankState& st = ranks[rank];
    switch (op.kind) {
      case OpKind::Io: {
        // Flow classes: each rank's ops carry the plan's member count
        // (composing with any members the source set itself), so the
        // stack below sees one request standing for that many clients.
        if (plan.clientsPerRank > 1) {
          op.io.members = std::max<std::uint32_t>(1, op.io.members) * plan.clientsPerRank;
        }
        out.opsIssued += std::max<std::uint32_t>(1, op.io.members);
        ++st.outstanding;
        ++outstandingTotal;
        auto held = std::make_shared<WorkloadOp>(std::move(op));
        st.session->submitRequest(held->io, [this, rank, held](const IoResult& r) {
          onIoComplete(rank, *held, r);
        });
        return;
      }
      case OpKind::Meta: {
        ++out.metaOps;
        ++st.outstanding;
        ++outstandingTotal;
        auto held = std::make_shared<WorkloadOp>(std::move(op));
        fs->submitMeta(held->meta, [this, rank, held](const IoResult& r) {
          lastEnd = std::max(lastEnd, r.endTime);
          finishOp(rank, *held, r);
        });
        return;
      }
      case OpKind::Compute: {
        ++out.computeOps;
        if (trace != nullptr && op.traced) {
          trace->recordCompute(op.tracePid, op.traceTid, sim->now(), op.compute, op.label);
        }
        ++st.outstanding;
        ++outstandingTotal;
        auto held = std::make_shared<WorkloadOp>(std::move(op));
        sim->schedule(held->compute, [this, rank, held] {
          IoResult r;
          r.endTime = sim->now();
          r.startTime = r.endTime - held->compute;
          lastEnd = std::max(lastEnd, r.endTime);
          finishOp(rank, *held, r);
        });
        return;
      }
      case OpKind::Barrier:
        // Barriers never reach issue(): drain() parks the rank instead,
        // and open mode does not support them.
        throw std::logic_error("WorkloadRunner: barrier op in open-loop stream");
    }
  }

  void onIoComplete(std::size_t rank, const WorkloadOp& op, const IoResult& r) {
    lastEnd = std::max(lastEnd, r.endTime);
    // r.bytes is already the aggregate payload (the class completion
    // reports bytes * members); the op counters scale explicitly.
    const std::uint64_t members = std::max<std::uint32_t>(1, op.io.members);
    if (r.failed) {
      out.opsFailed += members;
    } else {
      out.bytesMoved += r.bytes;
      out.opsCompleted += members;
    }
    if (plan.collectOpLatency && !r.failed) out.opLatencies.push_back(r.elapsed());
    if (watchdog != nullptr && !r.failed) watchdog->observeOpLatency(r.endTime - start, r.elapsed());
    if (trace != nullptr && op.traced) {
      const bool rd = isRead(op.io.pattern);
      trace->record(TraceEvent{op.label, rd ? TraceEventKind::Read : TraceEventKind::Write,
                               op.tracePid, op.traceTid, r.startTime, r.elapsed(), r.bytes});
    }
    finishOp(rank, op, r);
  }

  void finishOp(std::size_t rank, const WorkloadOp& op, const IoResult& r) {
    --ranks[rank].outstanding;
    --outstandingTotal;
    source->onComplete(rank, op, r);
    if (plan.mode == DriveMode::Closed) {
      drain(rank);
      maybeReleaseBarrier();
    }
  }

  // ---- goodput timeline sampling ----

  /// Feed one closed slice to the watchdog. Chaos landmarks (when the
  /// run carries an injected fault schedule) drive the recovery floor
  /// the same way the chaos drill does: the healthy estimate is the mean
  /// of slices that close before the first fault, and the recovery clock
  /// starts at the last restore.
  void feedWatchdog(const WorkloadSample& s) {
    if (watchdog == nullptr) return;
    if (haveLandmarks) {
      if (start + s.end <= firstFaultAt + 1e-9) {
        healthy.sum += s.gbs;
        ++healthy.n;
      }
      if (lastRestoreAt >= 0.0 && healthy.n > 0) {
        watchdog->setRecoveryContext(lastRestoreAt - start,
                                     healthy.sum / static_cast<double>(healthy.n),
                                     degradedTolerance);
      }
    }
    watchdog->observeSlice(s.start, s.end, s.gbs);
  }

  /// Open-loop plans sample to the horizon, exactly as before. Closed
  /// plans (horizonSec == 0) have no natural end, so sampling stops at
  /// the first slice boundary after the workload drains.
  void scheduleSample(std::size_t slice) {
    const SimTime end = start + static_cast<SimTime>(slice + 1) * plan.sampleIntervalSec;
    if (plan.horizonSec > 0.0 && end > start + plan.horizonSec + 1e-9) return;
    sim->scheduleAt(end, [this, slice, end] {
      WorkloadSample s;
      s.start = static_cast<SimTime>(slice) * plan.sampleIntervalSec;
      s.end = end - start;
      s.gbs = static_cast<double>(out.bytesMoved - sampledBytes) / plan.sampleIntervalSec / 1e9;
      sampledBytes = out.bytesMoved;
      out.timeline.push_back(s);
      if (probe::FlightRecorder* rec = sim->recorder()) {
        rec->record(end, probe::RecordKind::GoodputSample,
                    static_cast<std::uint32_t>(slice), s.gbs);
      }
      feedWatchdog(s);
      if (plan.horizonSec <= 0.0 && live == 0 && outstandingTotal == 0) return;
      scheduleSample(slice + 1);
    });
  }
};

WorkloadOutcome WorkloadRunner::run(WorkloadSource& source) {
  Impl impl;
  impl.source = &source;
  impl.sim = &bench_.sim();
  impl.fs = &fs_;
  impl.trace = trace_;
  WorkloadContext ctx;
  ctx.fs = &fs_;
  ctx.sim = impl.sim;
  impl.plan = source.load(ctx);
  if (sampleIntervalOverride_ > 0.0) impl.plan.sampleIntervalSec = sampleIntervalOverride_;
  impl.out.generator = source.name();
  impl.out.ranks = impl.plan.ranks;
  impl.out.clientsPerRank = std::max<std::uint32_t>(1, impl.plan.clientsPerRank);

  probe::WatchdogSet watchdog(monitors_);
  impl.out.monitors = watchdog.monitorCount();
  if (watchdog.active()) {
    impl.watchdog = &watchdog;
    watchdog.setRecorder(impl.sim->recorder());
    impl.haveLandmarks = haveLandmarks_;
    impl.firstFaultAt = firstFaultAt_;
    impl.lastRestoreAt = lastRestoreAt_;
    impl.degradedTolerance = degradedTolerance_;
  }

  fs_.beginPhase(impl.plan.phase);
  impl.start = impl.sim->now();
  impl.lastEnd = impl.start;
  impl.ranks.resize(impl.plan.ranks);
  for (Impl::RankState& st : impl.ranks) {
    st.session = std::make_unique<ClientSession>(fs_, ClientId{}, 0);
    if (retryEnabled_) st.session->enableRetry(*impl.sim, retry_);
    st.nextArrival = impl.start;
  }
  impl.live = impl.plan.ranks;

  if (impl.plan.mode == DriveMode::Closed) {
    for (std::size_t r = 0; r < impl.ranks.size(); ++r) impl.drain(r);
    impl.maybeReleaseBarrier();
  } else {
    for (std::size_t r = 0; r < impl.ranks.size(); ++r) impl.scheduleArrival(r);
  }
  // Open-loop plans sample over their horizon as before; closed plans
  // only sample when the interval was set explicitly (the spec knob or
  // setSampleInterval) so existing closed runs stay byte-identical.
  const bool closedSampling =
      impl.plan.mode == DriveMode::Closed && sampleIntervalOverride_ > 0.0;
  if (impl.plan.sampleIntervalSec > 0.0 && (impl.plan.horizonSec > 0.0 || closedSampling)) {
    impl.scheduleSample(0);
  }

  impl.sim->run();
  fs_.endPhase();

  if (impl.outstandingTotal != 0) {
    throw std::logic_error("WorkloadRunner: simulation drained with outstanding I/O");
  }
  if (impl.live != 0) {
    throw std::logic_error("WorkloadRunner: simulation drained with live ranks");
  }

  WorkloadOutcome out = std::move(impl.out);
  out.elapsed = impl.lastEnd - impl.start;
  out.simElapsed = impl.sim->now() - impl.start;
  for (const Impl::RankState& st : impl.ranks) {
    out.retries += st.session->retries();
    out.lateCompletions += st.session->lateCompletions();
  }
  if (watchdog.active()) {
    watchdog.finish(out.simElapsed);
    out.breaches = watchdog.breaches();
  }
  return out;
}

}  // namespace hcsim::workload
