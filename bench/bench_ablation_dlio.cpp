// Ablation: the DL input pipeline — the paper attributes Cosmoflow's
// poor VAST showing to its mere 4 I/O threads ("The smaller number of
// I/O threads in Cosmoflow can provide a contrasting scenario"). Sweep
// I/O threads, prefetch depth and compute time per batch on both file
// systems at 8 nodes.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

DlioResult runWith(StorageKind kind, DlioWorkload w) {
  DlioConfig cfg;
  cfg.workload = w;
  cfg.nodes = 8;
  cfg.procsPerNode = 4;
  return runDlio(Site::Lassen, kind, cfg);
}

}  // namespace

int main() {
  std::printf("== Ablation: DL input pipeline (Cosmoflow geometry, 8 nodes) ==\n\n");

  {
    ResultTable t("I/O threads per rank (paper: 4 vs ResNet's 8)");
    t.setHeader({"io threads", "fs", "non-overlap I/O s", "app GB/s", "sys GB/s"});
    t.setPrecision(3);
    for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      for (StorageKind kind : {StorageKind::Vast, StorageKind::Gpfs}) {
        DlioWorkload w = DlioWorkload::cosmoflow();
        w.ioThreads = threads;
        const DlioResult r = runWith(kind, w);
        t.addRow({static_cast<double>(threads), std::string(toString(kind)),
                  r.breakdown.nonOverlappingIo, units::toGBs(r.throughput.application),
                  units::toGBs(r.throughput.system)});
      }
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("Prefetch depth (batches buffered ahead)");
    t.setHeader({"depth", "fs", "non-overlap I/O s", "runtime s"});
    t.setPrecision(3);
    for (std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
      for (StorageKind kind : {StorageKind::Vast, StorageKind::Gpfs}) {
        DlioWorkload w = DlioWorkload::cosmoflow();
        w.prefetchDepth = depth;
        const DlioResult r = runWith(kind, w);
        t.addRow({static_cast<double>(depth), std::string(toString(kind)),
                  r.breakdown.nonOverlappingIo, r.runtime});
      }
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("Compute time per batch (I/O hiding headroom)");
    t.setHeader({"compute ms", "fs", "non-overlap I/O s", "overlap I/O s"});
    t.setPrecision(3);
    for (double ms : {30.0, 60.0, 120.0, 240.0, 480.0}) {
      for (StorageKind kind : {StorageKind::Vast, StorageKind::Gpfs}) {
        DlioWorkload w = DlioWorkload::cosmoflow();
        w.computeTimePerBatch = units::msec(ms);
        const DlioResult r = runWith(kind, w);
        t.addRow({ms, std::string(toString(kind)), r.breakdown.nonOverlappingIo,
                  r.breakdown.overlappingIo});
      }
    }
    std::printf("%s\n", t.toString().c_str());
  }
  return 0;
}
