#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hcsim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nTotal = na + nb;
  mean_ += delta * nb / nTotal;
  m2_ += other.m2_ + delta * delta * na * nb / nTotal;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double v : samples) rs.add(v);
  s.count = rs.count();
  s.min = rs.min();
  s.max = rs.max();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.p50 = percentileSorted(samples, 50.0);
  s.p95 = percentileSorted(samples, 95.0);
  s.p99 = percentileSorted(samples, 99.0);
  return s;
}

}  // namespace hcsim
