#include "cache/lru_cache.hpp"

namespace hcsim {

LruCache::LruCache(Bytes capacity) : capacity_(capacity) {}

bool LruCache::touch(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void LruCache::insert(std::uint64_t key, Bytes bytes) {
  if (bytes > capacity_) return;  // would evict the whole cache for one entry
  auto it = map_.find(key);
  if (it != map_.end()) {
    size_ -= it->second->bytes;
    it->second->bytes = bytes;
    size_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, bytes});
    map_.emplace(key, lru_.begin());
    size_ += bytes;
  }
  if (size_ > capacity_) evictTo(capacity_);
}

void LruCache::evictTo(Bytes target) {
  while (size_ > target && !lru_.empty()) {
    const Entry& victim = lru_.back();
    // Never evict the entry we just inserted (front).
    if (lru_.size() == 1) break;
    size_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void LruCache::erase(std::uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  size_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::clear() {
  lru_.clear();
  map_.clear();
  size_ = 0;
}

void LruCache::resetCounters() {
  hits_ = misses_ = evictions_ = 0;
}

}  // namespace hcsim
