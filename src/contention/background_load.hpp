#pragma once
// Background load — the shared-machine reality the paper copes with by
// repeating runs: "our experiments are not performed in an isolated
// environment and all file systems, including VAST, are shared
// (typically GPFS and Lustre are more commonly used and they might
// experience contention effects)" (§IV-C).
//
// Instead of modelling that variability as output noise, this module
// makes it endogenous: N tenant jobs on *other* compute nodes issue
// bursts against the same storage model while the foreground benchmark
// runs, and the flow network arbitrates. Run-to-run spread then emerges
// from tenant phasing (the tenant seed), and the mean degradation from
// real bandwidth sharing.

#include <cstdint>

#include "cluster/deployments.hpp"
#include "fs/file_system_model.hpp"
#include "ior/ior_runner.hpp"
#include "util/random.hpp"

namespace hcsim {

struct TenantSpec {
  std::size_t tenants = 4;            ///< concurrent background jobs
  std::size_t procsPerTenant = 8;     ///< ranks per job (one node each)
  Bytes bytesPerBurst = units::GiB;   ///< volume of one job burst
  Seconds meanInterarrival = 2.0;     ///< exponential think time
  AccessPattern pattern = AccessPattern::SequentialRead;
  /// First compute-node index tenants occupy (foreground nodes come
  /// first; the TestBench must wire enough nodes for both).
  std::uint32_t firstNode = 0;
  std::uint64_t seed = 0xbadc0ffeeULL;
};

/// Drives tenant burst loops on a simulator. start() begins issuing;
/// stop() lets in-flight bursts finish but issues no more (so the
/// simulation drains).
class BackgroundLoad {
 public:
  BackgroundLoad(TestBench& bench, FileSystemModel& fs, TenantSpec spec);

  void start();
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  Bytes bytesCompleted() const { return bytesCompleted_; }
  std::size_t burstsCompleted() const { return burstsCompleted_; }

 private:
  void tenantLoop(std::size_t tenant);

  TestBench& bench_;
  FileSystemModel& fs_;
  TenantSpec spec_;
  Rng rng_;
  bool stopped_ = true;
  Bytes bytesCompleted_ = 0;
  std::size_t burstsCompleted_ = 0;
};

struct ContendedResult {
  IorResult foreground;
  Bytes backgroundBytes = 0;
  std::size_t backgroundBursts = 0;
};

/// Run one coalesced IOR experiment while `spec.tenants` background jobs
/// hammer the same storage from nodes [spec.firstNode, ...). The bench
/// must have wired foreground + tenant nodes. Tenants stop issuing when
/// the foreground finishes, so the simulation drains.
ContendedResult runIorUnderContention(TestBench& bench, FileSystemModel& fs,
                                      const IorConfig& cfg, TenantSpec spec);

}  // namespace hcsim
