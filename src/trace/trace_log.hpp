#pragma once
// TraceLog — DFTracer-style event capture (paper §IV-C2, §VI-A).
//
// DFTracer records system-level calls as "read" and "compute" events with
// timestamps and durations; the paper's Fig 4-6 analysis is computed from
// those logs. TraceLog is the in-simulator equivalent: DLIO worker
// threads record read events, trainers record compute events, and the
// analysis pass (overlap_analysis.hpp) derives non-overlapping vs
// overlapping I/O and application vs system throughput.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace hcsim {

enum class TraceEventKind { Read, Write, Compute, Other };

const char* toString(TraceEventKind k);

struct TraceEvent {
  std::string name;
  TraceEventKind kind = TraceEventKind::Other;
  std::uint32_t pid = 0;  ///< process (DLIO: one per rank)
  std::uint32_t tid = 0;  ///< thread within the process
  Seconds start = 0.0;
  Seconds duration = 0.0;
  Bytes bytes = 0;  ///< payload moved (0 for compute)

  Seconds end() const { return start + duration; }
};

class TraceLog {
 public:
  void record(TraceEvent ev) { events_.push_back(std::move(ev)); }

  /// Convenience recorders.
  void recordRead(std::uint32_t pid, std::uint32_t tid, Seconds start, Seconds duration,
                  Bytes bytes, std::string name = "read");
  void recordCompute(std::uint32_t pid, std::uint32_t tid, Seconds start, Seconds duration,
                     std::string name = "compute");

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Stable-sort events by start time (analysis requires it).
  void sortByStart();

  std::size_t count(TraceEventKind kind) const;
  Bytes totalBytes(TraceEventKind kind) const;
  Seconds totalDuration(TraceEventKind kind) const;

  /// [earliest start, latest end] across all events; (0,0) when empty.
  std::pair<Seconds, Seconds> timeSpan() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hcsim
