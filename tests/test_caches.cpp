#include "cache/lru_cache.hpp"
#include "cache/prefetch_cache.hpp"
#include "cache/writeback_buffer.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace hcsim {
namespace {

// ---------------- LruCache ----------------

TEST(LruCache, StartsEmpty) {
  LruCache c(1000);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.entries(), 0u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LruCache, InsertAndTouch) {
  LruCache c(1000);
  c.insert(1, 100);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.touch(1));
  EXPECT_FALSE(c.touch(2));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hitRatio(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(300);
  c.insert(1, 100);
  c.insert(2, 100);
  c.insert(3, 100);
  c.touch(1);        // promote 1; LRU order now 1,3,2
  c.insert(4, 100);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(4));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, ReinsertUpdatesSize) {
  LruCache c(1000);
  c.insert(1, 100);
  c.insert(1, 300);
  EXPECT_EQ(c.size(), 300u);
  EXPECT_EQ(c.entries(), 1u);
}

TEST(LruCache, OversizedEntryNotCached) {
  LruCache c(100);
  c.insert(1, 200);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, EraseRemovesEntry) {
  LruCache c(1000);
  c.insert(1, 100);
  c.erase(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 0u);
  c.erase(42);  // no-op
}

TEST(LruCache, ClearKeepsCounters) {
  LruCache c(1000);
  c.insert(1, 100);
  c.touch(1);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.hits(), 1u);
  c.resetCounters();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_DOUBLE_EQ(c.hitRatio(), 0.0);
}

TEST(LruCache, SizeNeverExceedsCapacity) {
  LruCache c(1000);
  for (std::uint64_t k = 0; k < 100; ++k) c.insert(k, 64);
  EXPECT_LE(c.size(), 1000u);
}

// ---------------- PrefetchCache ----------------

TEST(PrefetchCache, ZeroBlockSizeThrows) {
  EXPECT_THROW(PrefetchCache(1024, 0, 4), std::invalid_argument);
}

TEST(PrefetchCache, ColdReadGoesToBackend) {
  PrefetchCache c(units::MiB, 4096, 0);
  const auto r = c.read(1, 0, 4096);
  EXPECT_EQ(r.cachedBytes, 0u);
  EXPECT_EQ(r.backendBytes, 4096u);
}

TEST(PrefetchCache, RereadHits) {
  PrefetchCache c(units::MiB, 4096, 0);
  c.read(1, 0, 4096);
  const auto r = c.read(1, 0, 4096);
  EXPECT_EQ(r.cachedBytes, 4096u);
  EXPECT_EQ(r.backendBytes, 0u);
}

TEST(PrefetchCache, SequentialRunTriggersReadahead) {
  PrefetchCache c(units::MiB, 4096, 4, /*runThreshold=*/2);
  c.read(1, 0, 4096);
  c.read(1, 4096, 4096);  // run length 2 -> prefetch blocks 2..5
  EXPECT_GT(c.prefetchedBytes(), 0u);
  const auto r = c.read(1, 8192, 4096);  // block 2 was prefetched
  EXPECT_EQ(r.cachedBytes, 4096u);
}

TEST(PrefetchCache, ReadaheadChargesBackendBytes) {
  PrefetchCache c(units::MiB, 4096, 4, 2);
  c.read(1, 0, 4096);
  const auto r = c.read(1, 4096, 4096);
  // The request itself missed (4096) + 4 blocks readahead.
  EXPECT_EQ(r.backendBytes, 4096u * 5);
}

TEST(PrefetchCache, RandomAccessDefeatsPrefetch) {
  PrefetchCache c(units::MiB, 4096, 4, 2);
  // Stride far apart: no sequential run forms.
  c.read(1, 0, 4096);
  c.read(1, 40960, 4096);
  c.read(1, 81920, 4096);
  EXPECT_EQ(c.prefetchedBytes(), 0u);
}

TEST(PrefetchCache, SequentialHitRatioBeatsRandom) {
  PrefetchCache seq(256 * units::KiB, 4096, 8, 2);
  PrefetchCache rnd(256 * units::KiB, 4096, 8, 2);
  // Sequential scan of 2 MiB with a cache of 256 KiB: prefetch keeps
  // hits coming despite capacity misses.
  for (Bytes off = 0; off < 2 * units::MiB; off += 4096) seq.read(1, off, 4096);
  // Random-ish scan: large prime stride defeats run detection.
  Bytes off = 0;
  for (int i = 0; i < 512; ++i) {
    rnd.read(1, off % (2 * units::MiB), 4096);
    off += 1224899;  // prime-ish stride, block-aligned enough to jump
  }
  EXPECT_GT(seq.hitRatio(), rnd.hitRatio());
}

TEST(PrefetchCache, PerFileStreamsAreIndependent) {
  PrefetchCache c(units::MiB, 4096, 4, 2);
  c.read(1, 0, 4096);
  c.read(2, 0, 4096);  // different file: does not extend file 1's run
  c.read(1, 4096, 4096);
  EXPECT_GT(c.prefetchedBytes(), 0u);  // file 1 run is 2 long
}

TEST(PrefetchCache, WriteAllocatePopulates) {
  PrefetchCache c(units::MiB, 4096, 0);
  c.writeAllocate(1, 0, 8192);
  EXPECT_EQ(c.read(1, 0, 8192).cachedBytes, 8192u);
}

TEST(PrefetchCache, InvalidateAllDropsResidency) {
  PrefetchCache c(units::MiB, 4096, 0);
  c.writeAllocate(1, 0, 4096);
  c.invalidateAll();
  EXPECT_EQ(c.read(1, 0, 4096).cachedBytes, 0u);
}

TEST(PrefetchCache, MultiBlockReadSplitsCorrectly) {
  PrefetchCache c(units::MiB, 4096, 0);
  c.writeAllocate(1, 0, 4096);  // only first block resident
  const auto r = c.read(1, 0, 12288);
  EXPECT_EQ(r.cachedBytes, 4096u);
  EXPECT_EQ(r.backendBytes, 8192u);
}

TEST(PrefetchCache, UnalignedReadCountsPartialSpans) {
  PrefetchCache c(units::MiB, 4096, 0);
  const auto r = c.read(1, 1000, 100);  // inside block 0
  EXPECT_EQ(r.backendBytes, 100u);
  const auto r2 = c.read(1, 1000, 100);
  EXPECT_EQ(r2.cachedBytes, 100u);
}

// ---------------- WritebackBuffer ----------------

TEST(WritebackBuffer, InvalidDrainRateThrows) {
  EXPECT_THROW(WritebackBuffer(100, 0.0), std::invalid_argument);
  EXPECT_THROW(WritebackBuffer(100, -1.0), std::invalid_argument);
}

TEST(WritebackBuffer, AbsorbsUpToCapacity) {
  WritebackBuffer wb(1000, 10.0);
  EXPECT_EQ(wb.absorb(600, 0.0), 0u);
  EXPECT_EQ(wb.dirty(0.0), 600u);
  EXPECT_EQ(wb.absorb(600, 0.0), 200u);  // 200 overflow
  EXPECT_EQ(wb.dirty(0.0), 1000u);
}

TEST(WritebackBuffer, DrainsOverTime) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(500, 0.0);
  EXPECT_EQ(wb.dirty(10.0), 400u);
  EXPECT_EQ(wb.dirty(50.0), 0u);
}

TEST(WritebackBuffer, DrainFreesRoomForLaterWrites) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(1000, 0.0);
  // At t=50, 500 have drained.
  EXPECT_EQ(wb.absorb(600, 50.0), 100u);
}

TEST(WritebackBuffer, FsyncDelayIsDirtyOverRate) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(500, 0.0);
  EXPECT_DOUBLE_EQ(wb.fsyncDelay(0.0), 50.0);
  EXPECT_DOUBLE_EQ(wb.fsyncDelay(25.0), 25.0);
  EXPECT_DOUBLE_EQ(wb.fsyncDelay(100.0), 0.0);
}

TEST(WritebackBuffer, DrainCompleteTime) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(100, 0.0);
  EXPECT_DOUBLE_EQ(wb.drainCompleteTime(0.0), 10.0);
}

TEST(WritebackBuffer, ResetDropsDirty) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(500, 0.0);
  wb.reset(1.0);
  EXPECT_EQ(wb.dirty(1.0), 0u);
}

TEST(WritebackBuffer, SetDrainRateValidates) {
  WritebackBuffer wb(1000, 10.0);
  wb.setDrainRate(20.0);
  EXPECT_DOUBLE_EQ(wb.drainRate(), 20.0);
  EXPECT_THROW(wb.setDrainRate(0.0), std::invalid_argument);
}

TEST(WritebackBuffer, TimeMovingBackwardIsIgnored) {
  WritebackBuffer wb(1000, 10.0);
  wb.absorb(500, 10.0);
  // Query at an earlier time: no negative drain.
  EXPECT_EQ(wb.dirty(5.0), 500u);
}

}  // namespace
}  // namespace hcsim
