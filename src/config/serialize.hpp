#pragma once
// JSON (de)serialization for every configuration struct — the interface
// a downstream user scripts experiments through (and what the hcsim CLI
// consumes). Deserialization is lenient: absent keys keep the struct's
// defaults, so a config file only states what it overrides.

#include <string>

#include "cluster/machine.hpp"
#include "daos/daos_config.hpp"
#include "dlio/dlio_config.hpp"
#include "gpfs/gpfs_config.hpp"
#include "ior/ior_config.hpp"
#include "lustre/lustre_config.hpp"
#include "mdtest/mdtest.hpp"
#include "nvme/nvme_local.hpp"
#include "unifyfs/unifyfs_model.hpp"
#include "util/json.hpp"
#include "vast/vast_config.hpp"

namespace hcsim {

// ---- enums ----
JsonValue toJson(AccessPattern p);
bool fromJson(const JsonValue& j, AccessPattern& out);
JsonValue toJson(NfsTransport t);
bool fromJson(const JsonValue& j, NfsTransport& out);
JsonValue toJson(ScalingMode m);
bool fromJson(const JsonValue& j, ScalingMode& out);
JsonValue toJson(UnifyFsPlacement p);
bool fromJson(const JsonValue& j, UnifyFsPlacement& out);

// ---- device specs ----
JsonValue toJson(const SsdSpec& s);
bool fromJson(const JsonValue& j, SsdSpec& out);
JsonValue toJson(const HddSpec& s);
bool fromJson(const JsonValue& j, HddSpec& out);

// ---- machines & storage configs ----
JsonValue toJson(const Machine& m);
bool fromJson(const JsonValue& j, Machine& out);
JsonValue toJson(const GatewaySpec& g);
bool fromJson(const JsonValue& j, GatewaySpec& out);
JsonValue toJson(const VastConfig& c);
bool fromJson(const JsonValue& j, VastConfig& out);
JsonValue toJson(const GpfsConfig& c);
bool fromJson(const JsonValue& j, GpfsConfig& out);
JsonValue toJson(const LustreConfig& c);
bool fromJson(const JsonValue& j, LustreConfig& out);
JsonValue toJson(const NvmeLocalConfig& c);
bool fromJson(const JsonValue& j, NvmeLocalConfig& out);
JsonValue toJson(const UnifyFsConfig& c);
bool fromJson(const JsonValue& j, UnifyFsConfig& out);
/// DaosConfig embeds its transport::TransportProfile under "fabric"
/// (profile (de)serializers live in transport/transport_profile.hpp).
JsonValue toJson(const DaosConfig& c);
bool fromJson(const JsonValue& j, DaosConfig& out);

// ---- workload configs ----
JsonValue toJson(const IorConfig& c);
bool fromJson(const JsonValue& j, IorConfig& out);
JsonValue toJson(const DlioWorkload& w);
bool fromJson(const JsonValue& j, DlioWorkload& out);
JsonValue toJson(const DlioConfig& c);
bool fromJson(const JsonValue& j, DlioConfig& out);
JsonValue toJson(const MdtestConfig& c);
bool fromJson(const JsonValue& j, MdtestConfig& out);

// ---- file helpers ----
/// Write any serializable config to a pretty-printed JSON file.
template <typename T>
bool saveConfig(const T& config, const std::string& path);
/// Load a config from a JSON file (absent keys keep defaults).
template <typename T>
bool loadConfig(const std::string& path, T& out);

}  // namespace hcsim
