file(REMOVE_RECURSE
  "CMakeFiles/custom_deployment.dir/custom_deployment.cpp.o"
  "CMakeFiles/custom_deployment.dir/custom_deployment.cpp.o.d"
  "custom_deployment"
  "custom_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
