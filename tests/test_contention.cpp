#include "contention/background_load.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

IorConfig smallIor(std::size_t nodes) {
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, nodes, 8);
  cfg.segments = 256;
  return cfg;
}

TEST(TenantSpec, Validation) {
  TestBench bench(Machine::lassen(), 2);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  TenantSpec bad;
  bad.tenants = 0;
  EXPECT_THROW(BackgroundLoad(bench, *fs, bad), std::invalid_argument);
  bad = TenantSpec{};
  bad.bytesPerBurst = 0;
  EXPECT_THROW(BackgroundLoad(bench, *fs, bad), std::invalid_argument);
  bad = TenantSpec{};
  bad.meanInterarrival = 0.0;
  EXPECT_THROW(BackgroundLoad(bench, *fs, bad), std::invalid_argument);
}

TEST(Contention, RequiresEnoughWiredNodes) {
  TestBench bench(Machine::lassen(), 2);  // no room for tenants
  auto fs = bench.attachGpfs(gpfsOnLassen());
  TenantSpec spec;
  spec.tenants = 4;
  EXPECT_THROW(runIorUnderContention(bench, *fs, smallIor(2), spec),
               std::invalid_argument);
}

TEST(Contention, BackgroundTenantsActuallyRun) {
  TestBench bench(Machine::lassen(), 8);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  TenantSpec spec;
  spec.tenants = 4;
  spec.meanInterarrival = 0.2;
  const ContendedResult r = runIorUnderContention(bench, *fs, smallIor(2), spec);
  EXPECT_GT(r.backgroundBursts, 0u);
  EXPECT_GT(r.backgroundBytes, 0u);
  EXPECT_GT(r.foreground.bandwidth.mean, 0.0);
}

TEST(Contention, SlowsTheForegroundDown) {
  // Baseline without tenants.
  const auto baseline = [] {
    TestBench bench(Machine::lassen(), 8);
    auto fs = bench.attachGpfs(gpfsOnLassen());
    IorRunner runner(bench, *fs);
    return runner.run(smallIor(2)).bandwidth.mean;
  }();
  // Contended: tenants saturating the same NSD pool from 6 other nodes.
  TestBench bench(Machine::lassen(), 8);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  TenantSpec spec;
  spec.tenants = 6;
  spec.procsPerTenant = 44;
  spec.bytesPerBurst = 8ull * units::GiB;
  spec.meanInterarrival = 0.05;  // near-continuous load
  const ContendedResult r = runIorUnderContention(bench, *fs, smallIor(2), spec);
  EXPECT_LT(r.foreground.bandwidth.mean, baseline * 0.999);
}

TEST(Contention, SpreadEmergesFromTenantSeeds) {
  // Different tenant phasings -> different foreground results, i.e. the
  // run-to-run variability the paper handles by repeating 10 times.
  std::vector<double> samples;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    TestBench bench(Machine::lassen(), 8);
    auto fs = bench.attachGpfs(gpfsOnLassen());
    TenantSpec spec;
    spec.tenants = 4;
    spec.procsPerTenant = 44;
    spec.bytesPerBurst = 2ull * units::GiB;
    spec.meanInterarrival = 0.5;
    spec.seed = seed;
    samples.push_back(
        runIorUnderContention(bench, *fs, smallIor(2), spec).foreground.bandwidth.mean);
  }
  const Summary s = summarize(samples);
  EXPECT_GT(s.max, s.min);  // phasing matters
}

TEST(Contention, StoppedLoadIssuesNothing) {
  TestBench bench(Machine::lassen(), 8);
  auto fs = bench.attachGpfs(gpfsOnLassen());
  TenantSpec spec;
  spec.firstNode = 2;
  BackgroundLoad load(bench, *fs, spec);
  EXPECT_TRUE(load.stopped());
  load.start();
  load.stop();
  bench.sim().run();  // first bursts may fire, then the loops end
  const auto bursts = load.burstsCompleted();
  bench.sim().runUntil(bench.sim().now() + 100.0);
  EXPECT_EQ(load.burstsCompleted(), bursts);  // nothing new after stop
}

}  // namespace
}  // namespace hcsim
