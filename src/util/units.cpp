#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace hcsim {

std::string formatBytes(Bytes n) {
  static constexpr std::array<const char*, 6> suffix{"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(n);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[64];
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, suffix[i]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, suffix[i]);
  }
  return buf;
}

std::string formatBandwidth(Bandwidth bytesPerSec) {
  char buf[64];
  if (bytesPerSec >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytesPerSec / 1e9);
  } else if (bytesPerSec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB/s", bytesPerSec / 1e6);
  } else if (bytesPerSec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f KB/s", bytesPerSec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f B/s", bytesPerSec);
  }
  return buf;
}

std::string formatSeconds(Seconds t) {
  char buf[64];
  const double a = std::fabs(t);
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", t);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", t * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", t * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", t * 1e9);
  }
  return buf;
}

}  // namespace hcsim
