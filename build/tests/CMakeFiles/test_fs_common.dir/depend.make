# Empty dependencies file for test_fs_common.
# This may be replaced when dependencies are built.
