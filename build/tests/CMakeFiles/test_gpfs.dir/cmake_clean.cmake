file(REMOVE_RECURSE
  "CMakeFiles/test_gpfs.dir/test_gpfs.cpp.o"
  "CMakeFiles/test_gpfs.dir/test_gpfs.cpp.o.d"
  "test_gpfs"
  "test_gpfs.pdb"
  "test_gpfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
