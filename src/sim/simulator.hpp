#pragma once
// The discrete-event engine at the heart of hcsim.
//
// A Simulator owns a time-ordered queue of events (callbacks). Components
// (network flows, device queues, DLIO worker threads, ...) schedule
// callbacks at future simulated times; `run()` dispatches them in
// (time, insertion-order) order, so same-timestamp events are FIFO and the
// simulation is fully deterministic.
//
// Events can be cancelled (lazy deletion); the flow-level network model
// relies on this to re-rate in-flight transfers whenever the set of active
// flows changes.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace hcsim {

using SimTime = Seconds;

/// Handle for a scheduled event; can be used to cancel it.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0; negative
  /// delays are clamped to zero to keep time monotone).
  EventId schedule(SimTime delay, std::function<void()> fn) {
    return scheduleAt(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  EventId scheduleAt(SimTime t, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if it was pending.
  bool cancel(EventId id);

  /// Dispatch events until the queue is empty.
  void run();

  /// Dispatch events with time <= `t`, then set now() = t.
  void runUntil(SimTime t);

  /// Dispatch a single event; returns false if the queue was empty.
  bool step();

  /// Number of events dispatched since construction.
  std::uint64_t eventsDispatched() const { return dispatched_; }

  /// Pending (non-cancelled) event count.
  std::size_t pendingEvents() const { return pending_.size(); }

  bool empty() const { return pending_.empty(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop the next live (non-cancelled) entry; false if none remain.
  bool popNext(Entry& out);

  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // seqs scheduled and not yet fired/cancelled
};

}  // namespace hcsim
