#pragma once
// Experiment framework — the paper's contribution is a *methodology*:
// evaluate a storage system across (1) diverse workloads, (2) storage
// configurations and (3) deployment methods. This module packages that
// methodology as a library: pick a site and a storage system, run IOR
// node/process sweeps or DLIO training runs, get summarized series.

#include <memory>
#include <string>
#include <vector>

#include "cluster/deployments.hpp"
#include "dlio/dlio_runner.hpp"
#include "ior/ior_runner.hpp"
#include "transport/transport.hpp"
#include "util/json.hpp"

namespace hcsim {

enum class Site { Lassen, Ruby, Quartz, Wombat };
enum class StorageKind { Vast, Gpfs, Lustre, NvmeLocal, Daos };

const char* toString(Site s);
const char* toString(StorageKind k);

Machine machineFor(Site site);

/// A TestBench + an attached storage model, owned together. When a spec
/// carries a "transport" section (or the model is DAOS, which always
/// routes through the fabric), `transport` holds the NIC/transport layer
/// the model's transfers are posted through; otherwise it stays null and
/// the launch path is byte-identical to a build without hcsim::transport.
/// Declaration order matters: `fs` is destroyed before `transport`,
/// which is destroyed before `bench`.
struct Environment {
  std::unique_ptr<TestBench> bench;
  std::unique_ptr<transport::TransportFabric> transport;
  std::unique_ptr<FileSystemModel> fs;
};

/// Build the paper's deployment of `kind` as reached from `site`, with
/// `nodes` compute nodes wired. Throws std::invalid_argument for
/// combinations the paper does not define (e.g. GPFS on Wombat).
Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes);

/// As above, with optional JSON overrides merged onto the site preset's
/// storage config (lenient fromJson: the object only states what it
/// changes). nullptr = preset as-is. Shared by sweep trials and chaos
/// scenarios so a "storageConfig" section means the same everywhere.
Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes,
                            const JsonValue* storageOverrides);

/// As above, plus the spec's optional "transport" section. When present
/// (even as an empty object `{}`), the model's declaredTransportProfile()
/// is merged with the section's knobs and a TransportFabric is attached,
/// so transfers pay first-principles endpoint costs. nullptr = no fabric
/// (byte-identical to before hcsim::transport existed) — except for
/// StorageKind::Daos, which always runs on its config-embedded profile.
Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes,
                            const JsonValue* storageOverrides, const JsonValue* transportSection);

/// One point of a bandwidth series.
struct BandwidthPoint {
  std::size_t x = 0;  ///< nodes (scalability) or processes (single-node)
  double meanGBs = 0.0;
  double minGBs = 0.0;
  double maxGBs = 0.0;
};

/// Fig 2-style node sweep: full-node IOR at each node count.
std::vector<BandwidthPoint> runIorNodeSweep(Site site, StorageKind kind, AccessPattern access,
                                            const std::vector<std::size_t>& nodeCounts,
                                            std::size_t procsPerNode, std::size_t repetitions = 1,
                                            double noiseFrac = 0.0);

/// Fig 3-style process sweep: single node, fsync-per-write, per-op sim.
std::vector<BandwidthPoint> runIorProcSweep(Site site, StorageKind kind, AccessPattern access,
                                            const std::vector<std::size_t>& procCounts,
                                            std::size_t repetitions = 1, double noiseFrac = 0.0);

/// One DLIO training run on a fresh environment.
DlioResult runDlio(Site site, StorageKind kind, const DlioConfig& cfg);

}  // namespace hcsim
