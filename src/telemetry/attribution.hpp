#pragma once
// Bottleneck attribution — turning op spans into "where did the time
// go" (the paper's headline claims are exactly this shape: the Lassen
// gateway's single TCP pipe, CNode saturation, cache-served GPFS reads).
//
// Every span accrues per-stage residency while it is in flight: at each
// progress update the elapsed interval is charged to the stage that was
// limiting the flow's rate (the saturated link it froze on during
// progressive filling, its per-stream cap, or the startup/RPC latency).
// The attribution report aggregates those residencies across spans into
// a per-stage time/bytes breakdown, grouped by *stage family* — link
// instances like "VAST@Lassen.gw[1]" or ".sess.n3[0]" collapse into
// "gw" / "sess" so the report reads as architecture stages, not as a
// per-link dump.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace hcsim::telemetry {

/// Collapse a link name into its stage family:
///  * drop the leading component (model/machine name up to the first '.');
///  * drop "[i]" instance suffixes and per-node "nN" components.
/// "VAST@Lassen.gw[1]" -> "gw", "VAST@Lassen.sess.n3[0]" -> "sess",
/// "Lassen.nic.n5" -> "nic", "NVMe@Wombat.n2.read" -> "read",
/// "VAST@Lassen.qlc.read" -> "qlc.read". Pseudo stages ("startup",
/// "stream-cap") have no '.' and pass through unchanged.
std::string stageFamily(const std::string& linkName);

struct StageTotal {
  std::string stage;      ///< stage family name
  Seconds seconds = 0.0;  ///< summed span residency charged to this stage
  double bytes = 0.0;     ///< bytes moved while this stage was the bottleneck
  double sharePct = 0.0;  ///< seconds as % of the total across stages
};

struct AttributionReport {
  std::vector<StageTotal> stages;  ///< sorted by seconds, descending
  Seconds totalSeconds = 0.0;      ///< sum over stages
  std::size_t spans = 0;           ///< spans aggregated
  std::string dominantStage;       ///< stages.front().stage ("" when empty)
  double dominantSharePct = 0.0;

  /// Markdown-ish per-stage table plus the dominant-stage line the CLI
  /// greps for ("dominant stage: gw (78.2% of op time)").
  std::string renderTable() const;
};

}  // namespace hcsim::telemetry
