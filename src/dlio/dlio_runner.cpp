#include "dlio/dlio_runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hcsim {

// One training rank: a bounded-prefetch input pipeline (ioThreads
// concurrent batch fetches) + an in-order trainer.
struct DlioRunner::Rank {
  Simulator* sim = nullptr;
  FileSystemModel* fs = nullptr;
  TraceLog* trace = nullptr;
  const DlioConfig* cfg = nullptr;
  std::size_t* running = nullptr;

  std::uint32_t pid = 0;
  ClientId client{};
  std::uint64_t fileBase = 0;
  std::size_t samplesPerRank = 0;
  std::size_t totalBatches = 0;

  std::size_t nextFetch = 0;
  std::size_t nextTrain = 0;
  std::size_t inFlight = 0;
  bool trainerBusy = false;
  std::vector<bool> ready;
  Rng rng;
  std::size_t batchesTrained = 0;

  void start() {
    ready.assign(totalBatches, false);
    if (totalBatches == 0) {
      --*running;
      return;
    }
    pump();
  }

  std::size_t window() const {
    return std::max(cfg->workload.prefetchDepth, cfg->workload.ioThreads);
  }

  void pump() {
    while (nextFetch < totalBatches && inFlight < cfg->workload.ioThreads &&
           nextFetch - nextTrain < window()) {
      fetch(nextFetch++);
    }
  }

  void fetch(std::size_t batch) {
    ++inFlight;
    const DlioWorkload& w = cfg->workload;
    // A batch = batchSize samples, each its own file, read concurrently
    // by this worker; completion when the last sample arrives.
    auto remaining = std::make_shared<std::size_t>(w.batchSize);
    const auto tid = static_cast<std::uint32_t>(1 + batch % w.ioThreads);
    for (std::size_t s = 0; s < w.batchSize; ++s) {
      const std::size_t sampleIdx = (batch * w.batchSize + s) % samplesPerRank;
      IoRequest req;
      req.client = client;
      req.fileId = fileBase + sampleIdx;
      req.offset = 0;
      req.bytes = w.sampleSize;
      req.pattern = AccessPattern::RandomRead;  // shuffled sample order
      req.ops = w.transfersPerSample();
      fs->submit(req, [this, batch, tid, remaining](const IoResult& r) {
        trace->recordRead(pid, tid, r.startTime, r.elapsed(), r.bytes, "sample-read");
        if (--*remaining == 0) onBatchReady(batch);
      });
    }
  }

  void onBatchReady(std::size_t batch) {
    --inFlight;
    ready[batch] = true;
    pump();
    tryTrain();
  }

  void tryTrain() {
    if (trainerBusy || nextTrain >= totalBatches || !ready[nextTrain]) return;
    trainerBusy = true;
    const Seconds mean = cfg->workload.computeTimePerBatch;
    const Seconds dur =
        cfg->computeJitterFrac > 0.0
            ? rng.normalAtLeast(mean, mean * cfg->computeJitterFrac, mean * 0.1)
            : mean;
    trace->recordCompute(pid, 0, sim->now(), dur, "train-step");
    sim->schedule(dur, [this] { onComputeDone(); });
  }

  void onComputeDone() {
    trainerBusy = false;
    ++nextTrain;
    ++batchesTrained;
    const DlioWorkload& w = cfg->workload;
    if (w.checkpointEvery > 0 && w.checkpointBytes > 0 && client.proc == 0 &&
        nextTrain % w.checkpointEvery == 0 && nextTrain < totalBatches) {
      // Rank 0 of the node writes model state synchronously; training
      // stalls until the checkpoint is durable.
      trainerBusy = true;
      IoRequest req;
      req.client = client;
      req.fileId = fileBase + 1000000 + nextTrain;
      req.bytes = w.checkpointBytes;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = std::max<std::uint64_t>(1, w.checkpointBytes / (4 * units::MiB));
      fs->submit(req, [this](const IoResult& r) {
        trace->record(TraceEvent{"checkpoint", TraceEventKind::Write, pid, 0, r.startTime,
                                 r.elapsed(), r.bytes});
        trainerBusy = false;
        pump();
        tryTrain();
      });
      return;
    }
    if (nextTrain >= totalBatches) {
      --*running;
      return;
    }
    pump();
    tryTrain();
  }
};

DlioResult DlioRunner::run(const DlioConfig& cfg) {
  cfg.validate();
  if (cfg.nodes > bench_.nodesUsed()) {
    throw std::invalid_argument("DlioRunner: config uses more nodes than the TestBench wired");
  }
  const DlioWorkload& w = cfg.workload;

  DlioResult result;
  result.datasetBytes = cfg.datasetBytes();

  PhaseSpec phase;
  phase.pattern = AccessPattern::RandomRead;
  phase.requestSize = w.transferSize;
  phase.nodes = static_cast<std::uint32_t>(cfg.nodes);
  phase.procsPerNode = static_cast<std::uint32_t>(cfg.procsPerNode);
  // DLIO generates the dataset on one set of nodes and trains on another
  // (paper §VI-A) so client caches never serve the reads.
  phase.readerDiffersFromWriter = true;
  phase.workingSetBytes = result.datasetBytes;
  fs_.beginPhase(phase);

  const std::size_t samplesPerRank = cfg.samplesPerRank();
  const std::size_t batchesPerEpoch =
      std::max<std::size_t>(1, samplesPerRank / w.batchSize);
  const std::size_t totalBatches = batchesPerEpoch * w.epochs;

  std::size_t running = cfg.totalRanks();
  std::vector<std::unique_ptr<Rank>> ranks;
  ranks.reserve(cfg.totalRanks());
  const SimTime start = bench_.sim().now();

  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t p = 0; p < cfg.procsPerNode; ++p) {
      auto r = std::make_unique<Rank>();
      r->sim = &bench_.sim();
      r->fs = &fs_;
      r->trace = &result.trace;
      r->cfg = &cfg;
      r->running = &running;
      r->pid = n * static_cast<std::uint32_t>(cfg.procsPerNode) + p;
      r->client = ClientId{n, p};
      r->fileBase = static_cast<std::uint64_t>(r->pid) * samplesPerRank + 1;
      r->samplesPerRank = samplesPerRank;
      r->totalBatches = totalBatches;
      r->rng.reseed(cfg.seed ^ (0x9e3779b97f4a7c15ull * (r->pid + 1)));
      ranks.push_back(std::move(r));
    }
  }
  for (auto& r : ranks) r->start();
  bench_.sim().run();
  fs_.endPhase();

  if (running != 0) {
    throw std::logic_error("DlioRunner: simulation drained with live ranks");
  }

  result.trace.sortByStart();
  result.breakdown = analyzeOverlap(result.trace);
  result.throughput = computeThroughput(result.trace);
  result.runtime = bench_.sim().now() - start;
  result.bytesRead = result.trace.totalBytes(TraceEventKind::Read);
  result.bytesCheckpointed = result.trace.totalBytes(TraceEventKind::Write);
  for (const auto& r : ranks) result.batchesTrained += r->batchesTrained;
  return result;
}

}  // namespace hcsim
