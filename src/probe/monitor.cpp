#include "probe/monitor.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "probe/flight_recorder.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/stats.hpp"

namespace hcsim::probe {

namespace {
constexpr double kEps = 1e-9;
constexpr double kStallGBs = 1e-12;  // a slice at or below this counts as stalled
}  // namespace

const char* toString(MonitorMetric metric) {
  switch (metric) {
    case MonitorMetric::GoodputGBs: return "goodputGBs";
    case MonitorMetric::P99OpLatencySec: return "p99OpLatencySec";
    case MonitorMetric::RecoverySec: return "recoverySec";
    case MonitorMetric::StallSec: return "stallSec";
  }
  return "unknown";
}

void parseMonitors(const JsonValue& root, std::vector<MonitorSpec>& out,
                   std::vector<std::string>& problems) {
  const JsonValue* monitors = root.find("monitors");
  if (!monitors) return;
  const std::size_t before = problems.size();
  std::vector<MonitorSpec> parsed;
  const JsonArray* arr = monitors->array();
  if (!arr) {
    problems.push_back("'monitors' must be an array of monitor objects");
    return;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const JsonValue& m = (*arr)[i];
    const std::string where = "monitors[" + std::to_string(i) + "]";
    if (!m.isObject()) {
      problems.push_back(where + " must be an object");
      continue;
    }
    MonitorSpec spec;
    const std::string metric = m.stringOr("metric", "");
    if (metric == "goodputGBs") {
      spec.metric = MonitorMetric::GoodputGBs;
      const JsonValue* min = m.find("min");
      if (!min || !min->isNumber() || *min->number() <= 0.0) {
        problems.push_back(where + ": goodputGBs requires 'min' > 0 (GB/s floor)");
      } else {
        spec.min = *min->number();
      }
      spec.windowSec = m.numberOr("windowSec", 0.0);
      if (spec.windowSec < 0.0 || (m.find("windowSec") && spec.windowSec <= 0.0)) {
        problems.push_back(where + ": 'windowSec' must be > 0 when present");
      }
    } else if (metric == "p99OpLatencySec" || metric == "recoverySec" || metric == "stallSec") {
      spec.metric = metric == "p99OpLatencySec" ? MonitorMetric::P99OpLatencySec
                    : metric == "recoverySec"   ? MonitorMetric::RecoverySec
                                                : MonitorMetric::StallSec;
      const JsonValue* max = m.find("max");
      if (!max || !max->isNumber() || *max->number() <= 0.0) {
        problems.push_back(where + ": " + metric + " requires 'max' > 0 (seconds ceiling)");
      } else {
        spec.max = *max->number();
      }
    } else {
      problems.push_back(where + ": unknown 'metric' \"" + metric +
                         "\" (expected goodputGBs, p99OpLatencySec, recoverySec or stallSec)");
      continue;
    }
    spec.name = m.stringOr("name", toString(spec.metric));
    parsed.push_back(std::move(spec));
  }
  if (problems.size() == before) {
    for (auto& s : parsed) out.push_back(std::move(s));
  }
}

WatchdogSet::WatchdogSet(std::vector<MonitorSpec> specs) {
  states_.reserve(specs.size());
  for (auto& s : specs) {
    State st;
    st.spec = std::move(s);
    states_.push_back(std::move(st));
  }
}

void WatchdogSet::setRecoveryContext(double lastRestoreAt, double healthyGBs,
                                     double degradedTolerance) {
  haveRecovery_ = true;
  lastRestoreAt_ = lastRestoreAt;
  degradedFloor_ = healthyGBs * (1.0 - degradedTolerance);
}

void WatchdogSet::fire(std::size_t idx, double observed, double limit, double atSec) {
  State& st = states_[idx];
  ++st.occurrences;
  if (!st.fired) {
    st.fired = true;
    breaches_.push_back(Breach{st.spec.name, st.spec.metric, observed, limit, atSec, 1});
    if (recorder_) {
      recorder_->record(atSec, RecordKind::MonitorBreach, static_cast<std::uint32_t>(idx),
                        observed);
    }
  }
  for (Breach& b : breaches_) {
    if (b.monitor == st.spec.name && b.metric == st.spec.metric) b.occurrences = st.occurrences;
  }
}

void WatchdogSet::observeSlice(double start, double end, double gbs) {
  if (states_.empty()) return;
  lastSliceEnd_ = std::max(lastSliceEnd_, end);
  // Recovery clock shared by every RecoverySec monitor: the close of the
  // first slice at or above the degraded floor whose start is past the
  // last restore — exactly the ChaosOutcome timeToRecover definition.
  if (haveRecovery_ && recoveredAt_ < 0.0 && start >= lastRestoreAt_ - kEps &&
      gbs >= degradedFloor_ - kEps) {
    recoveredAt_ = end;
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    switch (st.spec.metric) {
      case MonitorMetric::GoodputGBs: {
        st.window.push_back(SliceWindow{start, end, gbs});
        const double w = st.spec.windowSec;
        if (w <= 0.0) {
          if (gbs < st.spec.min - kEps) fire(i, gbs, st.spec.min, end);
          st.window.clear();
          break;
        }
        const double from = end - w;
        while (!st.window.empty() && st.window.front().end <= from + kEps) {
          st.window.erase(st.window.begin());
        }
        // Only judge once a full window of timeline exists.
        if (st.window.front().start > from + kEps) break;
        double sum = 0.0, dur = 0.0;
        for (const SliceWindow& s : st.window) {
          const double lo = std::max(s.start, from);
          const double d = s.end - lo;
          sum += s.gbs * d;
          dur += d;
        }
        const double mean = dur > 0.0 ? sum / dur : 0.0;
        if (mean < st.spec.min - kEps) fire(i, mean, st.spec.min, end);
        break;
      }
      case MonitorMetric::P99OpLatencySec: {
        // Online p99 is re-evaluated only when the sample count has
        // doubled since the last evaluation (amortized O(n log n) over a
        // run; a per-slice sort would be quadratic). finish() always
        // runs the exact final check.
        if (latencies_.size() < st.nextLatencyEval) break;
        st.nextLatencyEval = latencies_.size() * 2;
        std::vector<double> sorted(latencies_);
        std::sort(sorted.begin(), sorted.end());
        const double p99 = percentileSorted(sorted, 99.0);
        if (p99 > st.spec.max + kEps) fire(i, p99, st.spec.max, end);
        break;
      }
      case MonitorMetric::RecoverySec: {
        if (st.fired || !haveRecovery_) break;
        if (recoveredAt_ >= 0.0) {
          const double took = recoveredAt_ - lastRestoreAt_;
          if (took > st.spec.max + kEps) fire(i, took, st.spec.max, recoveredAt_);
        } else if (end - lastRestoreAt_ > st.spec.max + kEps && end > lastRestoreAt_) {
          fire(i, end - lastRestoreAt_, st.spec.max, end);
        }
        break;
      }
      case MonitorMetric::StallSec: {
        if (gbs <= kStallGBs) {
          if (st.stallStart < 0.0) {
            st.stallStart = start;
            st.stallFiredStretch = false;
          }
          const double stalled = end - st.stallStart;
          if (stalled > st.spec.max + kEps && !st.stallFiredStretch) {
            st.stallFiredStretch = true;
            fire(i, stalled, st.spec.max, end);
          }
        } else {
          st.stallStart = -1.0;
        }
        break;
      }
    }
  }
}

void WatchdogSet::observeOpLatency(double t, double latencySec) {
  (void)t;
  if (states_.empty()) return;
  bool wanted = false;
  for (const State& st : states_) {
    if (st.spec.metric == MonitorMetric::P99OpLatencySec) wanted = true;
  }
  if (wanted) latencies_.push_back(latencySec);
}

void WatchdogSet::finish(double endSec) {
  if (states_.empty()) return;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    switch (st.spec.metric) {
      case MonitorMetric::P99OpLatencySec: {
        if (st.fired || latencies_.empty()) break;
        std::vector<double> sorted(latencies_);
        std::sort(sorted.begin(), sorted.end());
        const double p99 = percentileSorted(sorted, 99.0);
        if (p99 > st.spec.max + kEps) fire(i, p99, st.spec.max, endSec);
        break;
      }
      case MonitorMetric::RecoverySec: {
        if (st.fired || !haveRecovery_) break;
        if (recoveredAt_ >= 0.0) {
          const double took = recoveredAt_ - lastRestoreAt_;
          if (took > st.spec.max + kEps) fire(i, took, st.spec.max, recoveredAt_);
        } else if (endSec - lastRestoreAt_ > st.spec.max + kEps) {
          fire(i, endSec - lastRestoreAt_, st.spec.max, endSec);
        }
        break;
      }
      case MonitorMetric::StallSec: {
        if (st.stallStart >= 0.0 && !st.stallFiredStretch) {
          const double stalled = endSec - st.stallStart;
          if (stalled > st.spec.max + kEps) {
            st.stallFiredStretch = true;
            fire(i, stalled, st.spec.max, endSec);
          }
        }
        break;
      }
      case MonitorMetric::GoodputGBs:
        break;
    }
  }
}

void WatchdogSet::exportTo(telemetry::MetricsRegistry& reg) const {
  if (states_.empty()) return;
  reg.gauge("probe.monitors", static_cast<double>(states_.size()));
  reg.gauge("probe.breaches", static_cast<double>(breaches_.size()));
  for (const State& st : states_) {
    reg.gauge("probe.monitor." + st.spec.name + ".breaches",
              static_cast<double>(st.occurrences));
  }
}

namespace {

std::string objective(const MonitorSpec& s) {
  std::ostringstream os;
  switch (s.metric) {
    case MonitorMetric::GoodputGBs:
      os << ">= " << s.min << " GB/s";
      if (s.windowSec > 0.0) os << " over trailing " << s.windowSec << " s";
      break;
    case MonitorMetric::P99OpLatencySec: os << "p99 <= " << s.max << " s"; break;
    case MonitorMetric::RecoverySec: os << "recover within " << s.max << " s of restore"; break;
    case MonitorMetric::StallSec: os << "no stall > " << s.max << " s"; break;
  }
  return os.str();
}

}  // namespace

std::string WatchdogSet::renderTable() const {
  if (states_.empty()) return "";
  std::ostringstream os;
  os << "monitors:\n";
  for (const State& st : states_) {
    os << "  " << std::left << std::setw(22) << st.spec.name << " " << std::setw(38)
       << objective(st.spec);
    if (!st.fired) {
      os << " ok\n";
    } else {
      const Breach* b = nullptr;
      for (const Breach& x : breaches_) {
        if (x.monitor == st.spec.name && x.metric == st.spec.metric) b = &x;
      }
      os << " BREACH";
      if (b) {
        os << ": observed " << b->observed << " vs limit " << b->limit << " at t=" << b->atSec
           << "s";
        if (b->occurrences > 1) os << " (x" << b->occurrences << ")";
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string renderBreachTable(const std::vector<Breach>& breaches) {
  if (breaches.empty()) return "";
  std::ostringstream os;
  os << "SLO breaches:\n";
  for (const Breach& b : breaches) {
    os << "  " << std::left << std::setw(22) << b.monitor << " " << toString(b.metric)
       << ": observed " << b.observed << " vs limit " << b.limit << " at t=" << b.atSec << "s";
    if (b.occurrences > 1) os << " (x" << b.occurrences << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace hcsim::probe
