file(REMOVE_RECURSE
  "CMakeFiles/test_lustre.dir/test_lustre.cpp.o"
  "CMakeFiles/test_lustre.dir/test_lustre.cpp.o.d"
  "test_lustre"
  "test_lustre.pdb"
  "test_lustre[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
