# Empty compiler generated dependencies file for bench_sharedfile.
# This may be replaced when dependencies are built.
