#pragma once
// WritebackBuffer — dirty-data buffering with background drain.
//
// Models (a) the OS page cache on Wombat's node-local NVMe ("Operating
// System cache write-back is allowed on this test to replicate a
// realistic user scenario") and (b) VAST's SCM write buffer in front of
// the QLC tier. Writes are absorbed at memory speed until the buffer is
// full; a background drain moves dirty bytes to the backend at
// `drainRate`; fsync must wait for the drain.

#include "util/units.hpp"

namespace hcsim {

class WritebackBuffer {
 public:
  WritebackBuffer(Bytes capacity, Bandwidth drainRate);

  Bytes capacity() const { return capacity_; }
  Bandwidth drainRate() const { return drainRate_; }
  void setDrainRate(Bandwidth rate);

  /// Dirty bytes at time `now` (credits background drain since the last
  /// event).
  Bytes dirty(Seconds now) const;

  /// Absorb a write of `bytes` at time `now`. Returns the number of bytes
  /// that did NOT fit (overflow) and therefore must be written through to
  /// the backend synchronously by the caller.
  Bytes absorb(Bytes bytes, Seconds now);

  /// Time at which the buffer becomes empty if no further writes arrive.
  Seconds drainCompleteTime(Seconds now) const;

  /// fsync semantics: seconds the caller must wait at `now` for all
  /// currently dirty bytes to reach the backend.
  Seconds fsyncDelay(Seconds now) const;

  /// Drop all dirty data (e.g. file deleted before writeback).
  void reset(Seconds now);

 private:
  void advance(Seconds now) const;

  Bytes capacity_;
  Bandwidth drainRate_;
  mutable double dirty_ = 0.0;
  mutable Seconds lastUpdate_ = 0.0;
};

}  // namespace hcsim
