#include "chaos/chaos_runner.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "net/topology.hpp"
#include "probe/flight_recorder.hpp"
#include "scale/flow_class.hpp"
#include "util/units.hpp"

namespace hcsim::chaos {

namespace {

std::string componentKey(const FaultSpec& f) {
  if (f.component == "link") return "link:" + f.link;
  return f.component + ":" + std::to_string(f.index);
}

/// Components not healthy just before time `t` (events at exactly `t` fire
/// after the sampler that closes the interval ending at `t`, so they are
/// strictly excluded).
std::size_t activeFaultsBefore(const ChaosSpec& spec, Seconds t) {
  std::map<std::string, bool> unhealthy;
  for (const ChaosEvent& ev : spec.events) {
    if (ev.at >= t) break;  // validated non-decreasing
    unhealthy[componentKey(ev.fault)] = ev.fault.action != FaultAction::Restore;
  }
  std::size_t n = 0;
  for (const auto& [key, bad] : unhealthy) {
    (void)key;
    if (bad) ++n;
  }
  return n;
}

}  // namespace

void scheduleFaults(Environment& env, const std::vector<ChaosEvent>& events,
                    RebuildStats* stats) {
  Simulator& sim = env.bench->sim();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ChaosEvent& ev = events[i];
    sim.scheduleAt(ev.at, [&env, stats, ev, i] {
      Topology& topo = env.bench->topo();
      FlowNetwork& net = topo.network();
      if (probe::FlightRecorder* rec = env.bench->sim().recorder()) {
        if (ev.fault.action == FaultAction::Restore) {
          rec->record(env.bench->sim().now(), probe::RecordKind::FaultRestore,
                      static_cast<std::uint32_t>(i), ev.rebuildGiB);
        } else {
          rec->record(env.bench->sim().now(), probe::RecordKind::FaultInject,
                      static_cast<std::uint32_t>(i),
                      ev.fault.action == FaultAction::FailSlow ? ev.fault.severity : 0.0);
        }
      }
      if (ev.fault.component == "link") {
        const double h = ev.fault.action == FaultAction::Fail        ? 0.0
                         : ev.fault.action == FaultAction::FailSlow ? ev.fault.severity
                                                                    : 1.0;
        net.setLinkHealth(topo.link(ev.fault.link), h);
      } else {
        env.fs->applyFault(ev.fault);
      }
      if (ev.fault.action == FaultAction::Restore && ev.rebuildGiB > 0.0) {
        // Background resync: the restored component re-reads its share of
        // data over the model's rebuild route, contending with clients.
        const Route route = env.fs->rebuildRoute(ev.fault);
        if (!route.empty()) {
          FlowSpec rf;
          rf.bytes = static_cast<Bytes>(ev.rebuildGiB * static_cast<double>(units::GiB));
          rf.route = route;
          rf.spanName = "rebuild";
          net.startFlow(rf, [stats](const FlowCompletion& c) {
            if (stats == nullptr) return;
            stats->bytes += c.bytes;
            stats->completedAt = c.endTime;
          });
        }
      }
    });
  }
}

ChaosOutcome runChaosOn(Environment& env, const ChaosSpec& spec) {
  {
    const std::vector<std::string> problems =
        validateSchedule(spec, *env.fs, env.bench->topo());
    if (!problems.empty()) {
      std::string msg = "chaos: invalid scenario:";
      for (const std::string& p : problems) msg += "\n  - " + p;
      throw std::invalid_argument(msg);
    }
  }

  Simulator& sim = env.bench->sim();
  FileSystemModel& fs = *env.fs;
  const ChaosWorkload& w = spec.workload;

  PhaseSpec phase;
  phase.pattern = w.access;
  phase.requestSize = w.requestBytes;
  phase.nodes = static_cast<std::uint32_t>(w.nodes);
  phase.procsPerNode = static_cast<std::uint32_t>(w.procsPerNode);
  phase.readerDiffersFromWriter = true;
  fs.beginPhase(phase);

  // Shared accounting the samplers and drivers update.
  Bytes completedBytes = 0;
  ChaosOutcome out;
  out.name = spec.name;
  out.site = spec.site;
  out.storage = spec.storage;
  const std::size_t members = std::max<std::size_t>(1, w.clientsPerProc);
  out.flowClasses = static_cast<std::uint64_t>(w.nodes) * w.procsPerNode;
  out.clientsTotal = out.flowClasses * members;

  // Fault-schedule landmarks, needed both online (watchdog) and post-run.
  const Seconds firstEventAt = spec.events.empty()
                                   ? std::numeric_limits<Seconds>::infinity()
                                   : spec.events.front().at;
  Seconds lastRestoreAt = -1.0;
  for (const ChaosEvent& ev : spec.events) {
    if (ev.fault.action == FaultAction::Restore) lastRestoreAt = std::max(lastRestoreAt, ev.at);
  }

  // SLO watchdog: observes the sampler slices below, never schedules
  // anything itself — with every monitor satisfied the run is
  // byte-identical to a monitor-free one.
  probe::WatchdogSet watchdog(spec.monitors);
  out.monitors = watchdog.monitorCount();
  watchdog.setRecorder(sim.recorder());
  struct HealthyOnline {
    double sum = 0.0;
    std::size_t n = 0;
    double maxGBs = 0.0;
  } healthyOnline;

  std::vector<std::unique_ptr<ClientSession>> sessions;
  sessions.reserve(w.nodes * w.procsPerNode);
  for (std::uint32_t n = 0; n < w.nodes; ++n) {
    for (std::uint32_t p = 0; p < w.procsPerNode; ++p) {
      auto s = std::make_unique<ClientSession>(fs, ClientId{n, p},
                                               static_cast<std::uint64_t>(n) * w.procsPerNode + p);
      if (spec.retryEnabled) s->enableRetry(sim, spec.retry);
      sessions.push_back(std::move(s));
    }
  }
  const auto sumRetries = [&sessions] {
    std::uint64_t n = 0;
    for (const auto& s : sessions) n += s->retries();
    return n;
  };

  // Samplers first: at an equal timestamp they take an earlier FIFO seq
  // than fault events and op completions, so each slice closes before the
  // next slice's events apply — the timeline is deterministic.
  struct SamplerState {
    Seconds lastT = 0.0;
    Bytes lastBytes = 0;
    std::uint64_t lastRetries = 0;
  } samp;
  std::vector<Seconds> sampleTimes;
  const std::size_t fullSlices =
      static_cast<std::size_t>(std::floor(spec.horizon / spec.interval + 1e-9));
  for (std::size_t k = 1; k <= fullSlices; ++k) {
    sampleTimes.push_back(static_cast<double>(k) * spec.interval);
  }
  if (sampleTimes.empty() || sampleTimes.back() < spec.horizon - 1e-9) {
    sampleTimes.push_back(spec.horizon);  // trailing partial slice
  }
  for (Seconds t : sampleTimes) {
    sim.scheduleAt(t, [&, t] {
      IntervalSample s;
      s.start = samp.lastT;
      s.end = t;
      const std::uint64_t retriesNow = sumRetries();
      s.gbs = units::toGBs(static_cast<double>(completedBytes - samp.lastBytes) /
                           (t - samp.lastT));
      s.retries = retriesNow - samp.lastRetries;
      s.activeFaults = activeFaultsBefore(spec, t);
      out.timeline.push_back(s);
      samp.lastT = t;
      samp.lastBytes = completedBytes;
      samp.lastRetries = retriesNow;
      if (probe::FlightRecorder* rec = sim.recorder()) {
        rec->record(t, probe::RecordKind::GoodputSample,
                    static_cast<std::uint32_t>(out.timeline.size() - 1), s.gbs);
      }
      if (watchdog.active()) {
        if (s.end <= firstEventAt + 1e-9) {
          healthyOnline.sum += s.gbs;
          ++healthyOnline.n;
        }
        healthyOnline.maxGBs = std::max(healthyOnline.maxGBs, s.gbs);
        if (lastRestoreAt >= 0.0) {
          // Same healthy estimate the post-run availability metrics use,
          // but built incrementally: pre-fault slices all close before
          // any fault slice, so by restore time the floor is final.
          const double healthyEst = healthyOnline.n > 0
                                        ? healthyOnline.sum / static_cast<double>(healthyOnline.n)
                                        : healthyOnline.maxGBs;
          watchdog.setRecoveryContext(lastRestoreAt, healthyEst, spec.degradedTolerance);
        }
        watchdog.observeSlice(s.start, s.end, s.gbs);
      }
    });
  }

  // Fault schedule.
  RebuildStats rebuild;
  scheduleFaults(env, spec.events, &rebuild);

  // Drivers: one request-sized op in flight per session, re-issued on
  // completion until the horizon. With clientsPerProc > 1 each session
  // drives a flow class: one op standing for `members` identical
  // clients (IoRequest::members), with the same cursor semantics as the
  // singleton path — members == 1 goes through the legacy calls and is
  // byte-identical to the pre-knob drill.
  std::function<void(std::size_t)> issue = [&](std::size_t i) {
    ClientSession& s = *sessions[i];
    const auto done = [&, i](const IoResult& r) {
      if (!r.failed) completedBytes += r.bytes;
      if (sim.now() < spec.horizon) issue(i);
    };
    if (members > 1) {
      IoRequest req;
      req.client = s.client();
      req.fileId = s.fileId();
      req.bytes = w.requestBytes;
      req.pattern = w.access;
      req.members = static_cast<std::uint32_t>(members);
      switch (w.access) {
        case AccessPattern::SequentialWrite:
        case AccessPattern::SequentialRead:
          req.offset = s.cursor();
          s.seek(s.cursor() + w.requestBytes);
          break;
        case AccessPattern::RandomRead:
        case AccessPattern::RandomWrite:
          req.offset = 0;
          break;
      }
      s.submitRequest(req, done);
      return;
    }
    switch (w.access) {
      case AccessPattern::SequentialWrite: s.write(w.requestBytes, false, done); break;
      case AccessPattern::SequentialRead: s.read(w.requestBytes, done); break;
      case AccessPattern::RandomRead: s.readAt(0, w.requestBytes, done); break;
      case AccessPattern::RandomWrite: s.writeAt(0, w.requestBytes, false, done); break;
    }
  };
  for (std::size_t i = 0; i < sessions.size(); ++i) issue(i);

  sim.runUntil(spec.horizon);
  fs.endPhase();

  // ---- Availability metrics over the timeline. ----
  out.rebuildBytes = rebuild.bytes;
  out.rebuildCompletedAt = rebuild.completedAt;
  out.foregroundBytes = completedBytes;
  out.retries = sumRetries();
  for (const auto& s : sessions) {
    out.failedOps += s->failedOps();
    out.lateCompletions += s->lateCompletions();
  }

  watchdog.finish(spec.horizon);
  out.breaches = watchdog.breaches();

  if (!out.timeline.empty()) {
    double healthySum = 0.0;
    std::size_t healthyN = 0;
    double sum = 0.0;
    out.minGBs = std::numeric_limits<double>::infinity();
    for (const IntervalSample& s : out.timeline) {
      sum += s.gbs;
      out.minGBs = std::min(out.minGBs, s.gbs);
      out.maxGBs = std::max(out.maxGBs, s.gbs);
      if (s.end <= firstEventAt + 1e-9) {
        healthySum += s.gbs;
        ++healthyN;
      }
    }
    out.meanGBs = sum / static_cast<double>(out.timeline.size());
    // Steady state before the first fault; when the schedule strikes
    // before the first slice closes, the best observed slice stands in.
    out.healthyGBs = healthyN > 0 ? healthySum / static_cast<double>(healthyN) : out.maxGBs;
    out.finalGBs = out.timeline.back().gbs;

    const double floor_ = out.healthyGBs * (1.0 - spec.degradedTolerance);
    for (IntervalSample& s : out.timeline) {
      s.degraded = s.gbs < floor_;
      if (s.degraded) out.degradedSeconds += s.end - s.start;
    }

    if (lastRestoreAt >= 0.0) {
      for (const IntervalSample& s : out.timeline) {
        if (s.start >= lastRestoreAt - 1e-9 && !s.degraded) {
          out.timeToRecover = s.end - lastRestoreAt;
          break;
        }
      }
    }
  }
  return out;
}

ChaosOutcome runChaos(const ChaosSpec& spec) {
  Environment env = makeEnvironment(spec.site, spec.storage, spec.workload.nodes,
                                    spec.storageConfig.isNull() ? nullptr : &spec.storageConfig,
                                    spec.transport.isNull() ? nullptr : &spec.transport);
  return runChaosOn(env, spec);
}

ResultTable renderTimeline(const ChaosOutcome& out) {
  ResultTable t("chaos: " + out.name + " (" + toString(out.storage) + " @ " +
                toString(out.site) + ")");
  t.setHeader({"t0(s)", "t1(s)", "GB/s", "faults", "retries", "state"});
  for (const IntervalSample& s : out.timeline) {
    t.addRow({s.start, s.end, s.gbs, static_cast<double>(s.activeFaults),
              static_cast<double>(s.retries),
              std::string(s.degraded ? "DEGRADED" : "ok")});
  }
  return t;
}

std::string toJsonl(const ChaosOutcome& out) {
  std::ostringstream os;
  {
    JsonObject summary;
    summary["healthyGBs"] = out.healthyGBs;
    summary["meanGBs"] = out.meanGBs;
    summary["minGBs"] = out.minGBs;
    summary["maxGBs"] = out.maxGBs;
    summary["finalGBs"] = out.finalGBs;
    summary["degradedSec"] = out.degradedSeconds;
    summary["timeToRecoverSec"] = out.timeToRecover;
    summary["retries"] = static_cast<double>(out.retries);
    summary["failedOps"] = static_cast<double>(out.failedOps);
    summary["lateCompletions"] = static_cast<double>(out.lateCompletions);
    summary["foregroundBytes"] = static_cast<double>(out.foregroundBytes);
    summary["rebuildBytes"] = static_cast<double>(out.rebuildBytes);
    summary["rebuildCompletedAtSec"] = out.rebuildCompletedAt;
    JsonObject root;
    root["scenario"] = out.name;
    root["site"] = std::string(toString(out.site));
    root["storage"] = std::string(toString(out.storage));
    root["summary"] = JsonValue(std::move(summary));
    os << writeJson(JsonValue(std::move(root))) << "\n";
  }
  for (std::size_t i = 0; i < out.timeline.size(); ++i) {
    const IntervalSample& s = out.timeline[i];
    JsonObject row;
    row["interval"] = static_cast<double>(i);
    row["startSec"] = s.start;
    row["endSec"] = s.end;
    row["GBs"] = s.gbs;
    row["activeFaults"] = static_cast<double>(s.activeFaults);
    row["retries"] = static_cast<double>(s.retries);
    row["degraded"] = s.degraded;
    os << writeJson(JsonValue(std::move(row))) << "\n";
  }
  return os.str();
}

void exportTo(const ChaosOutcome& out, telemetry::MetricsRegistry& reg) {
  if (out.clientsTotal > out.flowClasses) {
    scale::exportTo(scale::ClassStats{out.flowClasses, out.clientsTotal}, reg);
  }
  if (out.monitors > 0) {
    reg.gauge("probe.monitors", static_cast<double>(out.monitors));
    reg.gauge("probe.breaches", static_cast<double>(out.breaches.size()));
  }
  reg.gauge("chaos.healthy_gbs", out.healthyGBs);
  reg.gauge("chaos.mean_gbs", out.meanGBs);
  reg.gauge("chaos.min_gbs", out.minGBs);
  reg.gauge("chaos.final_gbs", out.finalGBs);
  reg.gauge("chaos.degraded_sec", out.degradedSeconds);
  reg.gauge("chaos.time_to_recover_sec", out.timeToRecover);
  reg.gauge("chaos.retries", static_cast<double>(out.retries));
  reg.gauge("chaos.failed_ops", static_cast<double>(out.failedOps));
  reg.gauge("chaos.late_completions", static_cast<double>(out.lateCompletions));
  reg.gauge("chaos.rebuild_bytes", static_cast<double>(out.rebuildBytes));
}

}  // namespace hcsim::chaos
