file(REMOVE_RECURSE
  "CMakeFiles/what_if_replay.dir/what_if_replay.cpp.o"
  "CMakeFiles/what_if_replay.dir/what_if_replay.cpp.o.d"
  "what_if_replay"
  "what_if_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
