// Extension bench: N-N (file-per-process) vs N-1 (shared file).
//
// §IV-C1 justifies the paper's choice of N-N: N-1's "contention, file
// locking and metadata overhead ... can make the isolation of the
// storage system behavior challenging". This bench quantifies that
// penalty per file system — the measurement the paper chose not to run.

#include <cstdio>

#include "core/experiment.hpp"
#include "ior/ior_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

double runGBs(Site site, StorageKind kind, bool filePerProcess, AccessPattern access) {
  Environment env = makeEnvironment(site, kind, 4);
  IorRunner runner(*env.bench, *env.fs);
  IorConfig cfg = IorConfig::scalability(access, 4, 16);
  cfg.segments = 512;
  cfg.filePerProcess = filePerProcess;
  return units::toGBs(runner.run(cfg).bandwidth.mean);
}

}  // namespace

int main() {
  std::printf("== N-N vs N-1: the cost of a shared file (4 nodes x 16 procs) ==\n\n");
  ResultTable t("IOR sequential write, N-N vs N-1");
  t.setHeader({"deployment", "N-N GB/s", "N-1 GB/s", "N-1 penalty"});
  const struct {
    Site site;
    StorageKind kind;
  } targets[] = {
      {Site::Lassen, StorageKind::Gpfs},
      {Site::Quartz, StorageKind::Lustre},
      {Site::Wombat, StorageKind::Vast},
      {Site::Wombat, StorageKind::NvmeLocal},
  };
  for (const auto& tgt : targets) {
    const double nn = runGBs(tgt.site, tgt.kind, true, AccessPattern::SequentialWrite);
    const double n1 = runGBs(tgt.site, tgt.kind, false, AccessPattern::SequentialWrite);
    t.addRow({std::string(toString(tgt.kind)) + "@" + toString(tgt.site), nn, n1,
              std::string("-") +
                  std::to_string(static_cast<int>((1.0 - n1 / nn) * 100.0 + 0.5)) + "%"});
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("GPFS pays the steepest N-1 price (byte-range token ping-pong), which is\n"
              "exactly why the paper isolates storage behaviour with N-N.\n");
  return 0;
}
