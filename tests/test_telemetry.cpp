// hcsim::telemetry — metrics registry, stage-family collapsing, span
// accrual through the flow network, engine-counter export, the
// telemetry-off/on result-identity contract, and bottleneck attribution
// on the paper's Lassen gateway deployment.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cluster/deployments.hpp"
#include "core/experiment.hpp"
#include "ior/ior_runner.hpp"
#include "oracle/golden.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/trial_cache.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace_import.hpp"

namespace hcsim {
namespace {

using telemetry::AttributionReport;
using telemetry::MetricsRegistry;
using telemetry::Telemetry;

// ---------- MetricsRegistry ----------

TEST(MetricsRegistry, CountersAndGaugesSnapshot) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("engine.events.dispatched", 10.0);
  reg.counter("engine.events.dispatched", 12.0);  // snapshot overwrites
  reg.gauge("net.flows.active", 3.0);
  EXPECT_DOUBLE_EQ(reg.counterOr("engine.events.dispatched", 0.0), 12.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("net.flows.active", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(reg.counterOr("missing", -1.0), -1.0);
  EXPECT_TRUE(reg.hasCounter("engine.events.dispatched"));
  EXPECT_FALSE(reg.hasCounter("net.flows.active"));  // it's a gauge
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, HistogramFirstBoundsWin) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", 1e-6, 10.0, 16);
  h.add(0.5);
  Histogram& again = reg.histogram("lat", 1.0, 2.0, 4);  // same object back
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.total(), 1u);
  ASSERT_NE(reg.findHistogram("lat"), nullptr);
  EXPECT_EQ(reg.findHistogram("nope"), nullptr);
}

TEST(MetricsRegistry, JsonAndTableAreDeterministic) {
  MetricsRegistry reg;
  reg.counter("b.second", 2.0);
  reg.counter("a.first", 1.0);
  reg.gauge("z.gauge", 9.0);
  reg.histogram("h", 1e-3, 1e3, 8).add(1.0);
  const std::string j = writeJson(reg.toJson());
  // std::map ordering: "a.first" serializes before "b.second".
  EXPECT_LT(j.find("a.first"), j.find("b.second"));
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  const std::string t = reg.renderTable();
  EXPECT_NE(t.find("counters:"), std::string::npos);
  EXPECT_NE(t.find("gauges:"), std::string::npos);
  EXPECT_NE(t.find("histograms:"), std::string::npos);
}

// ---------- stage families ----------

TEST(Attribution, StageFamilyCollapsesLinkNames) {
  using telemetry::stageFamily;
  EXPECT_EQ(stageFamily("VAST@Lassen.gw[1]"), "gw");
  EXPECT_EQ(stageFamily("VAST@Lassen.sess.n3[0]"), "sess");
  EXPECT_EQ(stageFamily("Lassen.nic.n5"), "nic");
  EXPECT_EQ(stageFamily("NVMe@Wombat.n2.read"), "read");
  EXPECT_EQ(stageFamily("VAST@Lassen.qlc.read"), "qlc.read");
  EXPECT_EQ(stageFamily("VAST@Lassen.cnode[12]"), "cnode");
  // Pseudo stages carry no '.' and pass through.
  EXPECT_EQ(stageFamily("startup"), "startup");
  EXPECT_EQ(stageFamily("stream-cap"), "stream-cap");
}

// ---------- span store ----------

TEST(Telemetry, SpanLifecycleAndAttribution) {
  Telemetry tel;
  tel.setEnabled(true);
  const std::uint32_t s = tel.beginSpan("vast.read", 3, 1, 10.0, 100.0);
  const std::uint32_t gw = tel.stageId("gw");
  const std::uint32_t cap = tel.stageId("stream-cap");
  tel.accrue(s, gw, 3.0, 60.0);
  tel.accrue(s, cap, 1.0, 40.0);
  tel.accrue(s, gw, 1.0, 0.0);  // same stage accumulates
  tel.endSpan(s, 15.0);

  ASSERT_EQ(tel.spanCount(), 1u);
  const telemetry::Span& sp = tel.spans()[0];
  EXPECT_TRUE(sp.closed());
  EXPECT_DOUBLE_EQ(sp.duration(), 5.0);
  ASSERT_EQ(sp.stages.size(), 2u);

  const AttributionReport rep = tel.attribution();
  EXPECT_EQ(rep.spans, 1u);
  EXPECT_DOUBLE_EQ(rep.totalSeconds, 5.0);
  ASSERT_EQ(rep.stages.size(), 2u);
  EXPECT_EQ(rep.dominantStage, "gw");
  EXPECT_DOUBLE_EQ(rep.dominantSharePct, 80.0);
  EXPECT_DOUBLE_EQ(rep.stages[0].bytes, 60.0);
  const std::string table = rep.renderTable();
  EXPECT_NE(table.find("dominant stage: gw"), std::string::npos);
}

TEST(Telemetry, ExportToRegistry) {
  Telemetry tel;
  tel.setEnabled(true);
  const std::uint32_t s = tel.beginSpan("f", 0, 0, 0.0, 8.0);
  tel.accrue(s, tel.stageId("gw"), 2.0, 8.0);
  tel.endSpan(s, 2.0);
  tel.beginSpan("open", 0, 0, 1.0, 4.0);  // stays open

  MetricsRegistry reg;
  tel.exportTo(reg);
  EXPECT_DOUBLE_EQ(reg.counterOr("telemetry.spans", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(reg.gaugeOr("telemetry.spans.open", 0.0), 1.0);
  const Histogram* lat = reg.findHistogram("telemetry.span.latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->total(), 1u);  // only closed spans carry a latency
}

// ---------- flow-network integration ----------

TEST(TelemetryFlows, DisabledSinkCostsNothing) {
  TestBench bench(Machine::lassen(), 2);
  auto fs = bench.attachVast(vastOnLassen());
  IorRunner runner(bench, *fs);
  runner.run(IorConfig::scalability(AccessPattern::SequentialWrite, 2, 2));
  EXPECT_FALSE(bench.telemetry().enabled());
  EXPECT_EQ(bench.telemetry().spanCount(), 0u);
  EXPECT_EQ(bench.telemetry().stageCount(), 0u);
}

TEST(TelemetryFlows, SpansCoverFlowLifetimes) {
  TestBench bench(Machine::lassen(), 2);
  auto fs = bench.attachVast(vastOnLassen());
  bench.telemetry().setEnabled(true);
  IorRunner runner(bench, *fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 2, 2);
  cfg.repetitions = 1;
  runner.run(cfg);

  const Telemetry& tel = bench.telemetry();
  ASSERT_GT(tel.spanCount(), 0u);
  for (const telemetry::Span& sp : tel.spans()) {
    EXPECT_TRUE(sp.closed()) << sp.name << " left open";
    EXPECT_GT(sp.bytes, 0.0);
    double charged = 0.0;
    for (const auto& st : sp.stages) charged += st.seconds;
    // Residency is charged over the whole life of the flow (startup
    // included), so per-stage seconds must add up to its duration.
    EXPECT_NEAR(charged, sp.duration(), 1e-9 * std::max(1.0, sp.duration()));
    EXPECT_NE(sp.name.find("VAST@Lassen.write"), std::string::npos);
  }
  const AttributionReport rep = tel.attribution();
  EXPECT_EQ(rep.spans, tel.spanCount());
  EXPECT_FALSE(rep.dominantStage.empty());
}

// Satellite: engine schedule/cancel/adjust counters and the network's
// rerate count must surface through the registry, matching the engine.
TEST(TelemetryFlows, EngineCountersExportThroughRegistry) {
  TestBench bench(Machine::lassen(), 4);
  auto fs = bench.attachVast(vastOnLassen());
  IorRunner runner(bench, *fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 4, 4);
  cfg.repetitions = 1;
  runner.run(cfg);

  // Two unequal flows on a private link: when the short one finishes,
  // the survivor's completion is re-rated through the in-place
  // adjust-key path, so `adjusted` must move.
  FlowNetwork& net = bench.topo().network();
  const LinkId shared = net.addLink("test.shared", 1e9);
  FlowSpec small;
  small.bytes = 1000;
  small.route = {shared};
  FlowSpec large;
  large.bytes = 50000;
  large.route = {shared};
  net.startFlow(small, [](const FlowCompletion&) {});
  net.startFlow(large, [](const FlowCompletion&) {});
  bench.sim().run();

  MetricsRegistry reg;
  bench.collectMetrics(reg, fs.get());
  const Simulator& sim = bench.sim();
  EXPECT_DOUBLE_EQ(reg.counterOr("engine.events.scheduled", -1.0),
                   static_cast<double>(sim.eventsScheduled()));
  EXPECT_DOUBLE_EQ(reg.counterOr("engine.events.cancelled", -1.0),
                   static_cast<double>(sim.eventsCancelled()));
  EXPECT_DOUBLE_EQ(reg.counterOr("engine.events.adjusted", -1.0),
                   static_cast<double>(sim.eventsAdjusted()));
  EXPECT_DOUBLE_EQ(reg.counterOr("engine.events.dispatched", -1.0),
                   static_cast<double>(sim.eventsDispatched()));
  EXPECT_DOUBLE_EQ(reg.counterOr("net.rerates", -1.0),
                   static_cast<double>(bench.topo().network().rerates()));
  EXPECT_GT(sim.eventsScheduled(), 0u);
  EXPECT_GE(sim.eventsScheduled(), sim.eventsDispatched());
  EXPECT_GT(bench.topo().network().rerates(), 0u);
  // Multi-flow runs re-rate through the in-place adjust path.
  EXPECT_GT(sim.eventsAdjusted(), 0u);
  // Model metrics ride along under the model-name prefix.
  EXPECT_TRUE(reg.hasCounter("VAST@Lassen.meta.ops_completed"));
}

// ---------- the acceptance scenario ----------

// The paper's headline: IOR reads from Lassen bind on the single
// gateway node's TCP pipe. Attribution must name the gateway family as
// dominant at scale.
TEST(TelemetryFlows, LassenGatewayDominatesSeqRead) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, 32);
  env.bench->telemetry().setEnabled(true);
  IorRunner runner(*env.bench, *env.fs);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 32, 8);
  cfg.segments = 64;
  cfg.repetitions = 1;
  runner.run(cfg);

  const AttributionReport rep = env.bench->telemetry().attribution();
  ASSERT_FALSE(rep.stages.empty());
  EXPECT_EQ(rep.dominantStage, "gw");
  EXPECT_GT(rep.dominantSharePct, 50.0);
}

// ---------- merged chrome trace ----------

TEST(TelemetryTrace, MergedJsonRoundTripsThroughImporter) {
  TestBench bench(Machine::lassen(), 2);
  auto fs = bench.attachVast(vastOnLassen());
  bench.telemetry().setEnabled(true);
  TraceLog app;
  IorRunner runner(bench, *fs);
  runner.setTraceLog(&app);
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialWrite, 2, 2);
  cfg.repetitions = 1;
  runner.run(cfg);
  ASSERT_GT(app.events().size(), 0u);

  const std::string json = telemetry::mergedChromeTraceJson(app, bench.telemetry());
  EXPECT_NE(json.find("\"cat\":\"internal\""), std::string::npos);

  TraceLog imported;
  TraceImportStats stats;
  ASSERT_TRUE(parseChromeTraceJson(json, imported, &stats));
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(imported.events().size(), app.events().size() + bench.telemetry().spanCount());
  // Internal spans live on their own pid rows, above kInternalPidBase.
  std::size_t internal = 0;
  for (const auto& e : imported.events()) {
    if (e.pid >= telemetry::kInternalPidBase) ++internal;
  }
  EXPECT_EQ(internal, bench.telemetry().spanCount());
}

// ---------- telemetry-off/on result identity ----------

sweep::SweepSpec tinySpec() {
  sweep::SweepSpec spec;
  spec.name = "telemetry-identity";
  spec.experiment = "ior";
  JsonObject ior;
  ior["segments"] = 16;
  ior["procsPerNode"] = 2;
  ior["repetitions"] = 2;
  ior["noiseStdDevFrac"] = 0.02;
  JsonObject base;
  base["site"] = "lassen";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));
  spec.axes.push_back({"storage", {JsonValue("gpfs"), JsonValue("vast")}});
  spec.axes.push_back({"ior.access", {JsonValue("seq-write"), JsonValue("seq-read")}});
  spec.axes.push_back({"ior.nodes", {JsonValue(1), JsonValue(2)}});
  return spec;
}

std::string jsonlOf(const sweep::SweepOutcome& out) {
  std::string all;
  for (const auto& r : out.results) all += sweep::toJsonlLine(r) + "\n";
  return all;
}

// Satellite: simulated results must be byte-identical with telemetry on
// — collection observes, it never perturbs.
TEST(TelemetryIdentity, SweepJsonlIsByteIdenticalAfterStrippingTelemetry) {
  const sweep::SweepSpec spec = tinySpec();
  const sweep::SweepOutcome off = sweep::runSweep(spec, 2, nullptr, {});
  sweep::TrialOptions telemetryOn;
  telemetryOn.telemetry = true;
  sweep::SweepOutcome on = sweep::runSweep(spec, 2, nullptr, telemetryOn);

  ASSERT_EQ(on.results.size(), off.results.size());
  for (std::size_t i = 0; i < on.results.size(); ++i) {
    ASSERT_TRUE(on.results[i].metrics.ok) << on.results[i].metrics.error;
    EXPECT_TRUE(on.results[i].metrics.hasTelemetry);
    EXPECT_GT(on.results[i].metrics.eventsDispatched, 0.0);
    EXPECT_FALSE(on.results[i].metrics.dominantStage.empty());
  }
  const std::string onJsonl = jsonlOf(on);
  EXPECT_NE(onJsonl.find("\"telemetry\":"), std::string::npos);

  // Strip the telemetry sub-object: the remaining bytes must match the
  // telemetry-off run exactly (no FP drift, no reordering).
  for (auto& r : on.results) r.metrics.hasTelemetry = false;
  EXPECT_EQ(jsonlOf(on), jsonlOf(off));
  EXPECT_EQ(jsonlOf(off).find("\"telemetry\":"), std::string::npos);
}

TEST(TelemetryIdentity, CsvGrowsColumnsOnlyWithTelemetry) {
  const sweep::SweepSpec spec = tinySpec();
  const sweep::SweepOutcome off = sweep::runSweep(spec, 2, nullptr, {});
  sweep::TrialOptions telemetryOn;
  telemetryOn.telemetry = true;
  const sweep::SweepOutcome on = sweep::runSweep(spec, 2, nullptr, telemetryOn);
  const std::string offCsv = sweep::toCsv(off);
  const std::string onCsv = sweep::toCsv(on);
  EXPECT_EQ(offCsv.find("dominantStage"), std::string::npos);
  EXPECT_NE(onCsv.find("dominantStage"), std::string::npos);
  // Shared prefix: the off-CSV header is a prefix of the on-CSV header.
  const std::string offHeader = offCsv.substr(0, offCsv.find('\n'));
  const std::string onHeader = onCsv.substr(0, onCsv.find('\n'));
  EXPECT_EQ(onHeader.rfind(offHeader, 0), 0u);
}

// Satellite: golden snapshots and figure checks must not notice
// telemetry at all.
TEST(TelemetryIdentity, GoldenRecordAndCheckIgnoreTelemetry) {
  const oracle::GoldenFigure* fig = oracle::findFigure("fig2b");
  ASSERT_NE(fig, nullptr);
  oracle::GoldenFigure small = *fig;  // shrink for test runtime
  small.spec.axes.back().values = {JsonValue(1), JsonValue(2)};

  const std::string dirOff = ::testing::TempDir() + "golden-tel-off";
  const std::string dirOn = ::testing::TempDir() + "golden-tel-on";
  std::filesystem::create_directories(dirOff);
  std::filesystem::create_directories(dirOn);
  std::string error;
  sweep::TrialOptions telemetryOn;
  telemetryOn.telemetry = true;
  ASSERT_TRUE(oracle::recordFigure(small, dirOff, 2, error)) << error;
  ASSERT_TRUE(oracle::recordFigure(small, dirOn, 2, error, nullptr, telemetryOn)) << error;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string snapOff = slurp(oracle::goldenPath(dirOff, small.name));
  const std::string snapOn = slurp(oracle::goldenPath(dirOn, small.name));
  ASSERT_FALSE(snapOff.empty());
  EXPECT_EQ(snapOff, snapOn);
  EXPECT_EQ(snapOn.find("telemetry"), std::string::npos);

  const oracle::FigureCheck checkOff = oracle::checkFigure(small, dirOff, 2, 2.0);
  const oracle::FigureCheck checkOn =
      oracle::checkFigure(small, dirOff, 2, 2.0, nullptr, telemetryOn);
  EXPECT_TRUE(checkOff.pass());
  EXPECT_TRUE(checkOn.pass());
  EXPECT_EQ(oracle::deltaTable(checkOn, 2.0, true), oracle::deltaTable(checkOff, 2.0, true));
}

// ---------- trial cache ----------

TEST(TelemetryCache, MetricsRoundTripAndKeySeparation) {
  sweep::TrialCache cache;
  sweep::TrialMetrics m;
  m.ok = true;
  m.meanGBs = 1.5;
  m.hasTelemetry = true;
  m.rerates = 12.0;
  m.eventsScheduled = 100.0;
  m.eventsCancelled = 3.0;
  m.eventsAdjusted = 40.0;
  m.eventsDispatched = 97.0;
  m.dominantStage = "gw";
  m.dominantSharePct = 81.25;
  cache.insert("k", m);

  const std::string path = ::testing::TempDir() + "telemetry-cache.jsonl";
  ASSERT_TRUE(cache.saveFile(path));
  sweep::TrialCache loaded;
  ASSERT_TRUE(loaded.loadFile(path));
  const auto hit = loaded.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->hasTelemetry);
  EXPECT_DOUBLE_EQ(hit->rerates, 12.0);
  EXPECT_DOUBLE_EQ(hit->eventsScheduled, 100.0);
  EXPECT_DOUBLE_EQ(hit->eventsCancelled, 3.0);
  EXPECT_DOUBLE_EQ(hit->eventsAdjusted, 40.0);
  EXPECT_DOUBLE_EQ(hit->eventsDispatched, 97.0);
  EXPECT_EQ(hit->dominantStage, "gw");
  EXPECT_DOUBLE_EQ(hit->dominantSharePct, 81.25);
  std::remove(path.c_str());

  // A telemetry run memoizes under a distinct key, so a warm plain
  // cache never serves (telemetry-free) metrics to a telemetry sweep.
  sweep::SweepSpec spec = tinySpec();
  spec.axes.resize(1);  // 2 trials is enough
  sweep::TrialCache shared;
  const sweep::SweepOutcome plain = sweep::runSweep(spec, 1, &shared);
  EXPECT_EQ(plain.cacheMisses, plain.results.size());
  sweep::TrialOptions telemetryOn;
  telemetryOn.telemetry = true;
  const sweep::SweepOutcome tele = sweep::runSweep(spec, 1, &shared, telemetryOn);
  EXPECT_EQ(tele.cacheMisses, tele.results.size()) << "plain entries must not hit";
  for (const auto& r : tele.results) EXPECT_TRUE(r.metrics.hasTelemetry);
  // And a second telemetry sweep is served entirely from the cache,
  // with the columns intact.
  const sweep::SweepOutcome warm = sweep::runSweep(spec, 1, &shared, telemetryOn);
  EXPECT_EQ(warm.cacheHits, warm.results.size());
  for (const auto& r : warm.results) EXPECT_TRUE(r.metrics.hasTelemetry);
}

}  // namespace
}  // namespace hcsim
