#pragma once
// Byte-capacity LRU cache. Keys are opaque 64-bit ids (callers pack
// file-id + block-index). Used as the building block of the GPFS
// pagepool / VAST DNode cache models.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/units.hpp"

namespace hcsim {

class LruCache {
 public:
  explicit LruCache(Bytes capacity);

  Bytes capacity() const { return capacity_; }
  Bytes size() const { return size_; }
  std::size_t entries() const { return map_.size(); }

  /// True if the key is resident (does not touch LRU order or counters).
  bool contains(std::uint64_t key) const { return map_.count(key) > 0; }

  /// Lookup-and-promote. Counts a hit or a miss.
  bool touch(std::uint64_t key);

  /// Insert (or refresh) an entry of `bytes` size, evicting LRU entries
  /// as needed. Entries larger than the whole capacity are not cached.
  void insert(std::uint64_t key, Bytes bytes);

  /// Remove an entry if present.
  void erase(std::uint64_t key);

  /// Drop everything (counters are kept).
  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hitRatio() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  void resetCounters();

 private:
  struct Entry {
    std::uint64_t key;
    Bytes bytes;
  };
  using List = std::list<Entry>;

  void evictTo(Bytes target);

  Bytes capacity_;
  Bytes size_ = 0;
  List lru_;  // front = most recent
  std::unordered_map<std::uint64_t, List::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hcsim
