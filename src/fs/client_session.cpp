#include "fs/client_session.hpp"

#include <utility>

namespace hcsim {

void ClientSession::submit(Bytes offset, Bytes size, std::uint64_t ops, AccessPattern pattern,
                           bool fsync, std::function<void(const IoResult&)> done) {
  IoRequest req;
  req.client = client_;
  req.fileId = fileId_;
  req.offset = offset;
  req.bytes = size * ops;
  req.pattern = pattern;
  req.fsync = fsync;
  req.ops = ops;
  fs_->submit(req, std::move(done));
}

void ClientSession::write(Bytes size, bool fsync, std::function<void(const IoResult&)> done) {
  submit(cursor_, size, 1, AccessPattern::SequentialWrite, fsync, std::move(done));
  cursor_ += size;
}

void ClientSession::read(Bytes size, std::function<void(const IoResult&)> done) {
  submit(cursor_, size, 1, AccessPattern::SequentialRead, false, std::move(done));
  cursor_ += size;
}

void ClientSession::readAt(Bytes offset, Bytes size, std::function<void(const IoResult&)> done) {
  submit(offset, size, 1, AccessPattern::RandomRead, false, std::move(done));
}

void ClientSession::writeRun(Bytes size, std::uint64_t ops, bool fsync,
                             std::function<void(const IoResult&)> done) {
  submit(cursor_, size, ops, AccessPattern::SequentialWrite, fsync, std::move(done));
  cursor_ += size * ops;
}

void ClientSession::readRun(Bytes size, std::uint64_t ops,
                            std::function<void(const IoResult&)> done) {
  submit(cursor_, size, ops, AccessPattern::SequentialRead, false, std::move(done));
  cursor_ += size * ops;
}

void ClientSession::randomReadRun(Bytes size, std::uint64_t ops,
                                  std::function<void(const IoResult&)> done) {
  submit(0, size, ops, AccessPattern::RandomRead, false, std::move(done));
}

}  // namespace hcsim
