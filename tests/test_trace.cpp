#include "trace/chrome_trace.hpp"
#include "trace/overlap_analysis.hpp"
#include "trace/trace_import.hpp"
#include "trace/trace_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hcsim {
namespace {

TEST(TraceLog, RecordAndCount) {
  TraceLog log;
  log.recordRead(0, 1, 0.0, 1.0, 100);
  log.recordCompute(0, 0, 1.0, 2.0);
  log.recordRead(1, 1, 0.5, 0.5, 50);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(TraceEventKind::Read), 2u);
  EXPECT_EQ(log.count(TraceEventKind::Compute), 1u);
  EXPECT_EQ(log.totalBytes(TraceEventKind::Read), 150u);
  EXPECT_DOUBLE_EQ(log.totalDuration(TraceEventKind::Read), 1.5);
}

TEST(TraceLog, TimeSpan) {
  TraceLog log;
  EXPECT_EQ(log.timeSpan(), (std::pair<Seconds, Seconds>{0.0, 0.0}));
  log.recordRead(0, 0, 2.0, 3.0, 1);
  log.recordCompute(0, 0, 1.0, 0.5);
  const auto [lo, hi] = log.timeSpan();
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 5.0);
}

TEST(TraceLog, SortByStart) {
  TraceLog log;
  log.recordRead(0, 0, 5.0, 1.0, 1);
  log.recordRead(0, 0, 1.0, 1.0, 1);
  log.sortByStart();
  EXPECT_DOUBLE_EQ(log.events()[0].start, 1.0);
}

TEST(TraceLog, ClearEmpties) {
  TraceLog log;
  log.recordRead(0, 0, 0.0, 1.0, 1);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(TraceEventKind, Names) {
  EXPECT_STREQ(toString(TraceEventKind::Read), "read");
  EXPECT_STREQ(toString(TraceEventKind::Compute), "compute");
}

TEST(ChromeTrace, ProducesWellFormedJson) {
  TraceLog log;
  log.recordRead(1, 2, 0.001, 0.002, 4096, "sample\"quoted\"");
  log.recordCompute(1, 0, 0.003, 0.004);
  const std::string json = toChromeTraceJson(log);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  // Timestamps in microseconds.
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  TraceLog log;
  log.recordRead(0, 0, 0.0, 1.0, 1);
  const std::string path = "/tmp/hcsim_trace_test.json";
  ASSERT_TRUE(writeChromeTrace(log, path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, toChromeTraceJson(log));
  std::remove(path.c_str());
}

TEST(ChromeTrace, FailsOnBadPath) {
  TraceLog log;
  EXPECT_FALSE(writeChromeTrace(log, "/nonexistent-dir/x.json"));
}

// ---- Import / round trip ----

TEST(TraceImport, RoundTripsEmittedJson) {
  TraceLog original;
  original.recordRead(1, 2, 0.5, 0.25, 4096, "sample-read");
  original.recordCompute(1, 0, 0.75, 1.5, "train-step");
  original.record(TraceEvent{"ckpt", TraceEventKind::Write, 3, 1, 2.0, 0.125, 1024});

  TraceLog parsed;
  ASSERT_TRUE(parseChromeTraceJson(toChromeTraceJson(original), parsed));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const TraceEvent& a = original.events()[i];
    const TraceEvent& b = parsed.events()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_NEAR(a.start, b.start, 1e-9);
    EXPECT_NEAR(a.duration, b.duration, 1e-9);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(TraceImport, RoundTripPreservesAnalysis) {
  TraceLog original;
  original.recordCompute(0, 0, 1.0, 10.0);
  original.recordRead(0, 1, 0.0, 4.0, 100);
  TraceLog parsed;
  ASSERT_TRUE(parseChromeTraceJson(toChromeTraceJson(original), parsed));
  const IoTimeBreakdown a = analyzeOverlap(original);
  const IoTimeBreakdown b = analyzeOverlap(parsed);
  EXPECT_NEAR(a.nonOverlappingIo, b.nonOverlappingIo, 1e-9);
  EXPECT_NEAR(a.overlappingIo, b.overlappingIo, 1e-9);
  EXPECT_EQ(a.ioBytes, b.ioBytes);
}

TEST(TraceImport, EscapedStringsSurvive) {
  TraceLog original;
  original.recordRead(0, 0, 0.0, 1.0, 1, "a \"b\"\n\tc\\d");
  TraceLog parsed;
  ASSERT_TRUE(parseChromeTraceJson(toChromeTraceJson(original), parsed));
  EXPECT_EQ(parsed.events()[0].name, "a \"b\"\n\tc\\d");
}

TEST(TraceImport, RejectsMalformedJson) {
  TraceLog out;
  EXPECT_FALSE(parseChromeTraceJson("", out));
  EXPECT_FALSE(parseChromeTraceJson("{", out));
  EXPECT_FALSE(parseChromeTraceJson("[]", out));
  EXPECT_FALSE(parseChromeTraceJson("{\"traceEvents\":42}", out));
  EXPECT_FALSE(parseChromeTraceJson("{\"traceEvents\":[{\"ph\":\"X\"}", out));
  EXPECT_TRUE(out.empty());
}

TEST(TraceImport, SkipsNonCompleteEvents) {
  const std::string json =
      "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"x\"},"
      "{\"ph\":\"X\",\"name\":\"y\",\"cat\":\"read\",\"ts\":0,\"dur\":1000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"bytes\":7}}]}";
  TraceLog out;
  ASSERT_TRUE(parseChromeTraceJson(json, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.events()[0].name, "y");
  EXPECT_EQ(out.events()[0].bytes, 7u);
}

TEST(TraceImport, UnknownCategoryMapsToOther) {
  const std::string json =
      "{\"traceEvents\":[{\"ph\":\"X\",\"cat\":\"mystery\",\"ts\":0,\"dur\":1}]}";
  TraceLog out;
  ASSERT_TRUE(parseChromeTraceJson(json, out));
  EXPECT_EQ(out.events()[0].kind, TraceEventKind::Other);
}

// Malformed elements inside an otherwise well-formed document are
// skipped and counted, never fatal — a partially corrupted DFTracer
// dump still yields every salvageable event.
TEST(TraceImport, SkipAndCountMalformedElements) {
  const std::string json =
      "{\"traceEvents\":["
      "42,"                                                         // not an object
      "{\"ph\":\"X\",\"name\":\"no-ts\"},"                          // X without ts/dur
      "{\"ph\":\"X\",\"name\":\"bad-ts\",\"ts\":\"soon\",\"dur\":1},"
      "{\"ph\":\"M\",\"name\":\"meta\"},"                           // ignored, not skipped
      "{\"ph\":\"X\",\"name\":\"good\",\"cat\":\"read\",\"ts\":1000,\"dur\":500,"
      "\"pid\":2,\"tid\":3,\"args\":{\"bytes\":64}}]}";
  TraceLog out;
  TraceImportStats stats;
  ASSERT_TRUE(parseChromeTraceJson(json, out, &stats));
  EXPECT_EQ(stats.imported, 1u);
  EXPECT_EQ(stats.skipped, 3u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.events()[0].name, "good");
  EXPECT_EQ(out.events()[0].bytes, 64u);
}

TEST(TraceImport, WellFormedEmptyDocumentIsNotAnError) {
  TraceLog out;
  TraceImportStats stats;
  EXPECT_TRUE(parseChromeTraceJson("{\"traceEvents\":[]}", out, &stats));
  EXPECT_EQ(stats.imported, 0u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(out.empty());
}

// A truncated document (run killed mid-write) loses its outer JSON, but
// complete per-line events are salvaged with the damage counted.
TEST(TraceImport, SalvagesTruncatedDocumentLineByLine) {
  const std::string json =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"X\",\"name\":\"a\",\"cat\":\"read\",\"ts\":0,\"dur\":100,\"args\":{\"bytes\":1}},\n"
      "{\"ph\":\"X\",\"name\":\"b\",\"cat\":\"write\",\"ts\":50,\"dur\":25},\n"
      "{\"ph\":\"X\",\"name\":\"broken\",\"ts\":60,\"du";  // truncated here
  TraceLog out;
  TraceImportStats stats;
  ASSERT_TRUE(parseChromeTraceJson(json, out, &stats));
  EXPECT_EQ(stats.imported, 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.events()[0].name, "a");
  EXPECT_EQ(out.events()[1].name, "b");
  EXPECT_EQ(out.events()[1].kind, TraceEventKind::Write);
  // Importing into a non-empty log appends rather than clobbers.
  ASSERT_TRUE(parseChromeTraceJson(json, out, &stats));
  EXPECT_EQ(out.size(), 4u);
}

TEST(TraceImport, TotallyUnsalvageableInputStillFails) {
  TraceLog out;
  TraceImportStats stats;
  EXPECT_FALSE(parseChromeTraceJson("{\"traceEvents\":[\nnot json at all\n", out, &stats));
  EXPECT_TRUE(out.empty());
}

// Sub-microsecond offsets and long runs must survive the JSON number
// formatting: default ostream precision (6 significant digits) used to
// collapse ts=123456789.123 to 1.23457e+08.
TEST(TraceImport, LargeTimestampsRoundTripLosslessly) {
  TraceLog original;
  original.recordRead(0, 0, 123.456789125, 0.000001375, 7, "late-read");
  original.recordCompute(0, 0, 9876.5432101, 0.25);
  TraceLog parsed;
  ASSERT_TRUE(parseChromeTraceJson(toChromeTraceJson(original), parsed));
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    // One us->s scaling each way costs at most a couple of ulps.
    EXPECT_NEAR(parsed.events()[i].start, original.events()[i].start, 1e-9);
    EXPECT_NEAR(parsed.events()[i].duration, original.events()[i].duration, 1e-12);
  }
}

TEST(TraceImport, HostileNamesRoundTripByteExact) {
  TraceLog original;
  original.recordRead(0, 0, 0.0, 1.0, 1, "quote\" slash\\ tab\t nl\n bell\x07 end");
  original.recordRead(0, 1, 0.0, 1.0, 1, "unicode \xc3\xa9\xe2\x82\xac survives");
  TraceLog parsed;
  ASSERT_TRUE(parseChromeTraceJson(toChromeTraceJson(original), parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.events()[0].name, original.events()[0].name);
  EXPECT_EQ(parsed.events()[1].name, original.events()[1].name);
}

TEST(TraceImport, ReadsFileWrittenByExporter) {
  TraceLog original;
  original.recordRead(0, 0, 0.0, 1.0, 128);
  const std::string path = "/tmp/hcsim_trace_roundtrip.json";
  ASSERT_TRUE(writeChromeTrace(original, path));
  TraceLog parsed;
  ASSERT_TRUE(readChromeTrace(path, parsed));
  EXPECT_EQ(parsed.size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(readChromeTrace("/nonexistent/x.json", parsed));
}

// ---- Overlap analysis ----

TEST(OverlapAnalysis, EmptyLog) {
  const IoTimeBreakdown b = analyzeOverlap(TraceLog{});
  EXPECT_DOUBLE_EQ(b.totalIo, 0.0);
  EXPECT_DOUBLE_EQ(b.runtime, 0.0);
  EXPECT_EQ(b.ioBytes, 0u);
}

TEST(OverlapAnalysis, FullyOverlappedIo) {
  TraceLog log;
  log.recordCompute(0, 0, 0.0, 10.0);
  log.recordRead(0, 1, 2.0, 3.0, 100);
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 3.0);
  EXPECT_DOUBLE_EQ(b.nonOverlappingIo, 0.0);
  EXPECT_DOUBLE_EQ(b.totalIo, 3.0);
  EXPECT_DOUBLE_EQ(b.computeOnly, 7.0);
  EXPECT_EQ(b.ioBytes, 100u);
}

TEST(OverlapAnalysis, FullyExposedIo) {
  TraceLog log;
  log.recordRead(0, 1, 0.0, 2.0, 100);
  log.recordCompute(0, 0, 2.0, 5.0);
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.nonOverlappingIo, 2.0);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 0.0);
  EXPECT_DOUBLE_EQ(b.runtime, 7.0);
}

TEST(OverlapAnalysis, PartialOverlapSplits) {
  TraceLog log;
  log.recordRead(0, 1, 0.0, 4.0, 100);   // I/O [0,4)
  log.recordCompute(0, 0, 2.0, 4.0);     // compute [2,6)
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 2.0);     // [2,4)
  EXPECT_DOUBLE_EQ(b.nonOverlappingIo, 2.0);  // [0,2)
  EXPECT_DOUBLE_EQ(b.computeOnly, 2.0);       // [4,6)
}

TEST(OverlapAnalysis, CrossPidDoesNotOverlap) {
  // I/O of pid 0 is not hidden by compute of pid 1.
  TraceLog log;
  log.recordRead(0, 1, 0.0, 2.0, 100);
  log.recordCompute(1, 0, 0.0, 10.0);
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.nonOverlappingIo, 2.0);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 0.0);
}

TEST(OverlapAnalysis, ConcurrentReaderThreadsEachCount) {
  // Two reader threads overlapping the same compute: both durations count
  // (DFTracer sums per-event time).
  TraceLog log;
  log.recordCompute(0, 0, 0.0, 10.0);
  log.recordRead(0, 1, 1.0, 2.0, 10);
  log.recordRead(0, 2, 1.0, 2.0, 10);
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 4.0);
  EXPECT_DOUBLE_EQ(b.totalIo, 4.0);
}

TEST(OverlapAnalysis, FragmentedComputeIntervalsMerge) {
  TraceLog log;
  log.recordCompute(0, 0, 0.0, 2.0);
  log.recordCompute(0, 0, 1.0, 3.0);  // overlaps -> merged [0,4)
  log.recordRead(0, 1, 3.5, 1.0, 10);
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.overlappingIo, 0.5);
  EXPECT_DOUBLE_EQ(b.nonOverlappingIo, 0.5);
}

TEST(OverlapAnalysis, WriteEventsCountAsIo) {
  TraceLog log;
  log.record(TraceEvent{"w", TraceEventKind::Write, 0, 0, 0.0, 1.0, 42});
  const IoTimeBreakdown b = analyzeOverlap(log);
  EXPECT_DOUBLE_EQ(b.totalIo, 1.0);
  EXPECT_EQ(b.ioBytes, 42u);
}

TEST(Throughput, ApplicationVsSystemDefinitions) {
  TraceLog log;
  // 100 bytes, 4s total I/O of which 1s exposed.
  log.recordCompute(0, 0, 1.0, 10.0);
  log.recordRead(0, 1, 0.0, 4.0, 100);
  const ThroughputReport t = computeThroughput(log);
  EXPECT_DOUBLE_EQ(t.application, 100.0 / 1.0);
  EXPECT_DOUBLE_EQ(t.system, 100.0 / 4.0);
  EXPECT_EQ(t.ioBytes, 100u);
}

TEST(Throughput, ZeroIoIsZero) {
  TraceLog log;
  log.recordCompute(0, 0, 0.0, 1.0);
  const ThroughputReport t = computeThroughput(log);
  EXPECT_DOUBLE_EQ(t.system, 0.0);
  EXPECT_DOUBLE_EQ(t.application, 0.0);
}

TEST(Throughput, FullyHiddenIoHasInfiniteLikeAppThroughput) {
  // No non-overlapping I/O: application throughput reported as 0 (no
  // stall to divide by) — callers treat it as "I/O fully hidden".
  TraceLog log;
  log.recordCompute(0, 0, 0.0, 10.0);
  log.recordRead(0, 1, 1.0, 2.0, 100);
  const ThroughputReport t = computeThroughput(log);
  EXPECT_DOUBLE_EQ(t.application, 0.0);
  EXPECT_GT(t.system, 0.0);
}

}  // namespace
}  // namespace hcsim
