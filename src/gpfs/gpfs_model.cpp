#include "gpfs/gpfs_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

GpfsModel::GpfsModel(Simulator& sim, Topology& topo, GpfsConfig config,
                     std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      raid_(cfg_.hdd, cfg_.nsdServers * cfg_.spindlesPerServer, cfg_.raidParityOverhead) {
  cfg_.validate();
  configureMetadataPath(cfg_.nsdServers, cfg_.metadataServiceTime, cfg_.rpcLatency,
                        cfg_.metadataSharedDirPenalty);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
  serverLink_ = topology().addLink(cfg_.name + ".nsd",
                                   static_cast<double>(cfg_.nsdServers) * cfg_.serverReadBandwidth,
                                   cfg_.rpcLatency / 4);
  deviceLink_ = topology().addLink(
      cfg_.name + ".raid", raid_.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB));
}

LinkId GpfsModel::clientCapLink(std::uint32_t node) {
  auto it = clientCaps_.find(node);
  if (it != clientCaps_.end()) return it->second;
  // Created lazily mid-phase: capacity must match the phase in effect.
  const Bandwidth cap =
      !inPhase() || isRead(phase().pattern) ? cfg_.clientReadCap : cfg_.clientWriteCap;
  const LinkId id = topology().addLink(cfg_.name + ".client.n" + std::to_string(node), cap);
  clientCaps_.emplace(node, id);
  return id;
}

void GpfsModel::applyCapacities() {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  FlowNetwork& net = topology().network();
  const bool readPhase = !inPhase() || isRead(ph.pattern);
  const double frac = nsdFraction();

  net.setLinkCapacity(serverLink_, static_cast<double>(cfg_.nsdServers) * frac *
                                       (readPhase ? cfg_.serverReadBandwidth
                                                  : cfg_.serverWriteBandwidth));
  net.setLinkCapacity(deviceLink_, raid_.effectiveBandwidth(ph.pattern, req) * frac);
  for (auto& [node, id] : clientCaps_) {
    net.setLinkCapacity(id, readPhase ? cfg_.clientReadCap : cfg_.clientWriteCap);
  }
}

double GpfsModel::nsdFraction() const {
  double alive = 0.0;
  for (std::size_t i = 0; i < cfg_.nsdServers; ++i) {
    if (failedNsd_.count(i)) continue;
    const auto slow = slowNsd_.find(i);
    alive += slow == slowNsd_.end() ? 1.0 : slow->second;
  }
  return alive / static_cast<double>(cfg_.nsdServers);
}

void GpfsModel::failNsdServer(std::size_t index) {
  if (index >= cfg_.nsdServers) throw std::out_of_range("failNsdServer: bad index");
  failedNsd_.insert(index);
  slowNsd_.erase(index);  // fail-stop supersedes fail-slow
  applyCapacities();
  recomputeHitRatio();
}

void GpfsModel::restoreNsdServer(std::size_t index) {
  failedNsd_.erase(index);
  slowNsd_.erase(index);
  applyCapacities();
  recomputeHitRatio();
}

bool GpfsModel::applyFault(const FaultSpec& f) {
  if (f.component != "nsd") return false;
  if (f.index >= cfg_.nsdServers) throw std::out_of_range("gpfs: nsd index out of range");
  switch (f.action) {
    case FaultAction::Fail:
      failNsdServer(f.index);
      break;
    case FaultAction::FailSlow:
      slowNsd_[f.index] = f.severity;
      applyCapacities();
      recomputeHitRatio();
      break;
    case FaultAction::Restore:
      restoreNsdServer(f.index);
      break;
  }
  return true;
}

std::size_t GpfsModel::faultComponentCount(const std::string& component) const {
  return component == "nsd" ? cfg_.nsdServers : 0;
}

Route GpfsModel::rebuildRoute(const FaultSpec&) { return {serverLink_, deviceLink_}; }

void GpfsModel::onPhaseChange() {
  applyCapacities();
  recomputeHitRatio();
}

void GpfsModel::recomputeHitRatio() {
  if (!inPhase()) return;
  const PhaseSpec& ph = phase();
  const bool readPhase = isRead(ph.pattern);

  // Server cache: holds recently written/read data. Sequential prefetch
  // makes streaming reads effectively cache-speed regardless of working
  // set; for random reads only true residency helps.
  if (readPhase) {
    const Bytes cache = static_cast<Bytes>(static_cast<double>(cfg_.nsdServers) *
                                           nsdFraction() * cfg_.serverCacheBytes);
    if (isSequential(ph.pattern)) {
      hitRatio_ = 1.0;  // prefetch pipeline: served at server speed
    } else if (ph.workingSetBytes > 0) {
      // Working sets inside the churn-resistant resident core hit fully;
      // beyond it the hit ratio decays exponentially with the excess.
      const double resident =
          static_cast<double>(cache) * cfg_.randomCacheResidencyFactor;
      const double ws = static_cast<double>(ph.workingSetBytes);
      hitRatio_ = ws <= resident
                      ? 1.0
                      : std::exp(-(ws - resident) /
                                 static_cast<double>(cfg_.randomCacheDecayBytes));
    } else {
      hitRatio_ = 0.0;
    }
  } else {
    hitRatio_ = 0.0;
  }
}

Bandwidth GpfsModel::deviceCapacity() const {
  return topology().network().link(deviceLink_).capacity;
}

void GpfsModel::exportMetrics(telemetry::MetricsRegistry& reg) const {
  StorageModelBase::exportMetrics(reg);
  const std::string& n = name();
  reg.gauge(n + ".cache.server_hit_ratio", hitRatio_);
  reg.gauge(n + ".device.capacity_bps", deviceCapacity());
  reg.gauge(n + ".nsd.alive", static_cast<double>(aliveNsdServers()));
  reg.gauge(n + ".background.bytes_in_flight", static_cast<double>(backgroundInFlight_));
}

void GpfsModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.rpcLatency, [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }

  // Requests from clients outside the active phase's node range are
  // background tenants sharing the machine; track their in-flight bytes
  // so phase clients can be charged the prefetch churn that competing
  // traffic causes at the NSD pool.
  Seconds stall = 0.0;
  if (inPhase() && req.client.node >= phase().nodes) {
    // A flow class is `members` background tenants' worth of bytes.
    backgroundInFlight_ += req.bytes * req.members;
    cb = [this, bytes = req.bytes * req.members, inner = std::move(cb)](const IoResult& r) {
      backgroundInFlight_ -= bytes;
      if (inner) inner(r);
    };
  } else {
    stall = cfg_.prefetchChurnPerGiB *
            (static_cast<double>(backgroundInFlight_) / static_cast<double>(units::GiB));
  }
  const Seconds perOpBase = cfg_.rpcLatency + stall;

  // Common prefix: client NIC -> per-node GPFS client ceiling -> NSD pool.
  Route route;
  route.push_back(clientNic(req.client.node));
  route.push_back(clientCapLink(req.client.node));
  route.push_back(serverLink_);

  if (!isRead(req.pattern)) {
    route.push_back(deviceLink_);  // writes stream through to RAID
    Seconds perOp = perOpBase;
    if (req.fsync) perOp += cfg_.commitLatency;
    launchTransfer(req, req.bytes, route, kUncapped, perOp, perOpBase, std::move(cb));
    return;
  }

  // Reads: the ops of a stream sample the server cache at the phase hit
  // ratio, so the stream pays the hit/miss *mixture* of per-op dead
  // times — hits cost the RPC only, misses add the RAID request latency
  // and (for random access) the prefetch-thrash penalty. Charging the
  // mixture to one flow, instead of splitting into concurrent hit/miss
  // flows whose completion the slower portion dominates, makes aggregate
  // bandwidth degrade smoothly as the working set outgrows the resident
  // cache core. Single-op requests resolve the draw individually.
  const double hit = req.ops <= 1 && req.members <= 1
                         ? (rng().uniform() < hitRatio_ ? 1.0 : 0.0)
                         : hitRatio_;
  Seconds perOp = perOpBase;
  if (hit < 1.0) {
    route.push_back(deviceLink_);  // misses fall through to the RAID pool
    Seconds missExtra = raid_.requestLatency(req.pattern);
    if (!isSequential(req.pattern)) missExtra += cfg_.randomReadPenalty;
    perOp += (1.0 - hit) * missExtra;
  }
  launchTransfer(req, req.bytes, route, kUncapped, perOp, perOpBase, std::move(cb));
}


transport::TransportProfile GpfsModel::declaredTransportProfile() const {
  transport::TransportProfile p = transport::TransportProfile::tcp();
  p.lanes = 1;
  p.baseRtt = cfg_.rpcLatency;
  return p;
}

}  // namespace hcsim
