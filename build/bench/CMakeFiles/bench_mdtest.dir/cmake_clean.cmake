file(REMOVE_RECURSE
  "CMakeFiles/bench_mdtest.dir/bench_mdtest.cpp.o"
  "CMakeFiles/bench_mdtest.dir/bench_mdtest.cpp.o.d"
  "bench_mdtest"
  "bench_mdtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
