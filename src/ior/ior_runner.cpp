#include "ior/ior_runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsim {

PhaseSpec IorRunner::phaseFor(const IorConfig& cfg) const {
  PhaseSpec ph;
  ph.pattern = cfg.access;
  ph.requestSize = cfg.transferSize;
  ph.nodes = static_cast<std::uint32_t>(cfg.nodes);
  ph.procsPerNode = static_cast<std::uint32_t>(cfg.procsPerNode);
  ph.readerDiffersFromWriter = cfg.reorderTasks;
  ph.workingSetBytes = cfg.totalBytes();
  ph.fsync = cfg.fsyncPerWrite && !isRead(cfg.access);
  return ph;
}

ClientId IorRunner::issuingClient(const IorConfig& cfg, std::uint32_t node,
                                  std::uint32_t proc) const {
  ClientId c{node, proc};
  if (isRead(cfg.access) && cfg.reorderTasks && cfg.nodes > 1) {
    // IOR -C: shift ranks by one node so the reader differs from the
    // writer of the same file.
    c.node = (node + 1) % static_cast<std::uint32_t>(cfg.nodes);
  }
  return c;
}

IorResult IorRunner::run(const IorConfig& cfg) {
  cfg.validate();
  if (cfg.nodes > bench_.nodesUsed()) {
    throw std::invalid_argument("IorRunner: config uses more nodes than the TestBench wired");
  }
  IorResult result;
  Rng noise(cfg.seed ^ 0x5eedull);
  RunningStats elapsedStats;
  // A coalesced run is fully deterministic, so one simulation serves all
  // repetitions; the run-to-run spread of a shared production system is
  // then layered on as multiplicative noise. Per-op runs re-simulate
  // (their request streams are seed-dependent).
  const bool simulateEachRep = cfg.mode == IorConfig::Mode::PerOp;
  const RunOutcome base = simulateEachRep ? RunOutcome{} : runOnce(cfg);
  result.totalBytes = simulateEachRep ? 0 : base.bytes;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    const RunOutcome outcome = simulateEachRep ? runOnce(cfg) : base;
    if (rep == 0) {
      result.totalBytes = outcome.bytes;
      result.opLatency = summarize(outcome.opLatencies);
    }
    Seconds elapsed = outcome.elapsed;
    if (cfg.noiseStdDevFrac > 0.0 && cfg.repetitions > 1) {
      elapsed *= noise.normalAtLeast(1.0, cfg.noiseStdDevFrac, 0.2);
    }
    elapsedStats.add(elapsed);
    result.samples.push_back(static_cast<double>(outcome.bytes) / elapsed);
  }
  result.bandwidth = summarize(result.samples);
  result.meanElapsed = elapsedStats.mean();
  return result;
}

IorRunner::RunOutcome IorRunner::runOnce(const IorConfig& cfg) {
  fs_.beginPhase(phaseFor(cfg));
  const RunOutcome outcome =
      cfg.mode == IorConfig::Mode::Coalesced ? runCoalesced(cfg) : runPerOp(cfg);
  fs_.endPhase();
  return outcome;
}

IorRunner::RunOutcome IorRunner::runCoalesced(const IorConfig& cfg) {
  Simulator& sim = bench_.sim();
  const SimTime start = sim.now();
  SimTime lastEnd = start;
  std::size_t outstanding = 0;

  // Symmetric ranks on a node are aggregated into one flow per parallel
  // client channel (DESIGN.md §5): `slots` flows per node, each carrying
  // `streams` process streams. With nconnect sessions this keeps every
  // session loaded; per-process rate caps are scaled inside the models.
  const std::size_t slots =
      std::min<std::size_t>(cfg.procsPerNode, std::max<std::size_t>(1, fs_.clientParallelism()));
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      // Ranks p with p % slots == slot collapse into this flow.
      const std::uint32_t streams =
          static_cast<std::uint32_t>((cfg.procsPerNode - slot + slots - 1) / slots);
      IoRequest req;
      req.client = issuingClient(cfg, n, slot);
      // N-N: file id = first aggregated rank; N-1: shared file 0.
      req.fileId = cfg.filePerProcess
                       ? static_cast<std::uint64_t>(n) * cfg.procsPerNode + slot + 1
                       : 0;
      req.offset = 0;
      req.bytes = cfg.bytesPerProc() * streams;
      req.pattern = cfg.access;
      req.fsync = cfg.fsyncPerWrite && !isRead(cfg.access);
      req.sharedFile = !cfg.filePerProcess;
      req.ops = cfg.transfersPerProc() * streams;
      req.streams = streams;
      ++outstanding;
      const std::uint32_t pid = req.client.node;
      const bool rd = isRead(cfg.access);
      fs_.submit(req, [this, &outstanding, &lastEnd, pid, slot, rd](const IoResult& r) {
        lastEnd = std::max(lastEnd, r.endTime);
        if (trace_) {
          trace_->record(TraceEvent{rd ? "ior.read" : "ior.write",
                                    rd ? TraceEventKind::Read : TraceEventKind::Write, pid, slot,
                                    r.startTime, r.elapsed(), r.bytes});
        }
        --outstanding;
      });
    }
  }
  sim.run();
  if (outstanding != 0) {
    throw std::logic_error("IorRunner: simulation drained with outstanding I/O");
  }
  return RunOutcome{lastEnd - start, cfg.totalBytes()};
}

IorRunner::RunOutcome IorRunner::runPerOp(const IorConfig& cfg) {
  Simulator& sim = bench_.sim();
  const SimTime start = sim.now();
  SimTime lastEnd = start;
  std::size_t running = cfg.totalProcs();
  Bytes movedBytes = 0;
  std::vector<double> opLatencies;
  opLatencies.reserve(std::min<std::uint64_t>(cfg.transfersPerProc() * cfg.totalProcs(),
                                              1u << 20));
  Rng offsets(cfg.seed);

  // Each process is a self-rescheduling chain of transfer ops.
  struct Proc {
    IorRunner* self;
    const IorConfig* cfg;
    ClientId client;
    std::uint64_t fileId;
    std::uint64_t remainingOps;
    Bytes cursor = 0;
    Rng rng;
    SimTime phaseStart = 0.0;
    SimTime* lastEnd;
    std::size_t* running;
    Bytes* movedBytes;
    std::vector<double>* opLatencies;

    void issueNext() {
      IoRequest req;
      req.client = client;
      req.fileId = fileId;
      req.bytes = cfg->transferSize;
      req.pattern = cfg->access;
      req.fsync = cfg->fsyncPerWrite && !isRead(cfg->access);
      req.sharedFile = !cfg->filePerProcess;
      req.ops = 1;
      if (cfg->access == AccessPattern::RandomRead ||
          cfg->access == AccessPattern::RandomWrite) {
        const std::uint64_t slots = cfg->bytesPerProc() / cfg->transferSize;
        req.offset = rng.uniformInt(slots ? slots : 1) * cfg->transferSize;
      } else {
        req.offset = cursor;
        cursor += cfg->transferSize;
      }
      const bool rd = isRead(cfg->access);
      self->fs_.submit(req, [this, rd](const IoResult& r) {
        *lastEnd = std::max(*lastEnd, r.endTime);
        *movedBytes += r.bytes;
        opLatencies->push_back(r.elapsed());
        if (self->trace_) {
          self->trace_->record(TraceEvent{rd ? "ior.read" : "ior.write",
                                          rd ? TraceEventKind::Read : TraceEventKind::Write,
                                          client.node, client.proc, r.startTime, r.elapsed(),
                                          r.bytes});
        }
        const bool hitStonewall = cfg->stonewallSeconds > 0.0 &&
                                  r.endTime - phaseStart >= cfg->stonewallSeconds;
        if (--remainingOps > 0 && !hitStonewall) {
          issueNext();
        } else {
          --*running;
        }
      });
    }
  };

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg.totalProcs());
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t p = 0; p < cfg.procsPerNode; ++p) {
      auto proc = std::make_unique<Proc>();
      proc->self = this;
      proc->cfg = &cfg;
      proc->client = issuingClient(cfg, n, p);
      const std::uint64_t rank = static_cast<std::uint64_t>(n) * cfg.procsPerNode + p + 1;
      proc->fileId = cfg.filePerProcess ? rank : 0;
      proc->remainingOps = cfg.transfersPerProc();
      proc->rng.reseed(cfg.seed ^ (rank * 0x9e3779b97f4a7c15ull));
      proc->phaseStart = start;
      proc->lastEnd = &lastEnd;
      proc->running = &running;
      proc->movedBytes = &movedBytes;
      proc->opLatencies = &opLatencies;
      procs.push_back(std::move(proc));
    }
  }
  for (auto& proc : procs) proc->issueNext();
  sim.run();
  if (running != 0) {
    throw std::logic_error("IorRunner: per-op simulation drained with live processes");
  }
  return RunOutcome{lastEnd - start, movedBytes, std::move(opLatencies)};
}

}  // namespace hcsim
