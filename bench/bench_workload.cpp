// Workload-subsystem throughput: drive every registered generator
// through the generic WorkloadRunner on a mid-size config and report
// both the simulated outcome (ops, bytes, goodput) and the simulator's
// wall-clock throughput (completed ops simulated per wall second) — the
// number the check.sh perf gate floors against BENCH_workload.json.
//
//   bench_workload                        human-readable table
//   bench_workload --hcsim_json OUT      write machine-readable results
//   bench_workload --hcsim_compare REF   fail (exit 1) when any
//       [--hcsim_max_regress 0.30]       generator's wall ops/sec drops
//                                        below REF * (1 - tolerance)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "trace/chrome_trace.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/workload_spec.hpp"

using namespace hcsim;

namespace {

struct GenResult {
  std::string generator;
  workload::WorkloadOutcome outcome;
  double wallSec = 0.0;
  double wallOpsPerSec() const {
    return wallSec > 0.0 ? static_cast<double>(outcome.opsCompleted) / wallSec : 0.0;
  }
};

/// The six registered generators on mid-size configs. The replay spec
/// needs a trace on disk, so %TRACE% is substituted with a file this
/// bench records first (a grammar run exported as chrome-trace JSON).
std::vector<std::pair<std::string, std::string>> benchSpecs() {
  return {
      {"ior", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"ior","nodes":2,"procsPerNode":8,"segments":64,
        "blockSize":16777216,"transferSize":1048576,"mode":"per-op",
        "seed":21}})"},
      {"dlio", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"dlio","nodes":2,"procsPerNode":4,"workload":{
          "name":"resnet-small","samples":256,"sampleSize":153600,
          "transferSize":153600,"ioThreads":4,"computeTimePerBatch":0.01}}})"},
      {"replay", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"replay","trace":"%TRACE%","pidsPerNode":4}})"},
      {"io500", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"io500","nodes":2,"procsPerNode":8,"scale":2,
        "easyOpsMedian":32,"hardOpsMedian":128,"seed":10500}})"},
      {"grammar", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"grammar","nodes":2,"procsPerNode":8,"seed":7,
        "fileBytes":268435456,"rules":{
          "main":[{"rule":"epoch","repeat":4},{"op":"sync"}],
          "epoch":[{"op":"open"},"burst",{"compute":0.02},"drain",{"barrier":true}],
          "burst":[{"op":"write","bytes":4194304,"count":16,"pattern":"seq"}],
          "drain":[{"op":"read","bytes":1048576,"count":16,"pattern":"random"}]}}})"},
      {"openloop", R"({"site":"lassen","storage":"vast","workload":{
        "generator":"openloop","clients":32,"clientsPerNode":8,
        "ratePerClientHz":50,"horizonSec":10,"objects":1024,"zipfTheta":0.99,
        "objectBytes":4194304,"requestBytes":131072,"seed":1007}})"},
  };
}

GenResult runOne(const std::string& generator, const std::string& specText) {
  JsonValue doc;
  if (!parseJson(specText, doc)) {
    std::cerr << "bench_workload: internal spec for '" << generator << "' does not parse\n";
    std::exit(2);
  }
  workload::WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(doc, spec, problems);
  if (!problems.empty()) {
    std::cerr << "bench_workload: invalid spec for '" << generator << "':\n";
    for (const std::string& p : problems) std::cerr << "  - " << p << "\n";
    std::exit(2);
  }
  // Best-of-3: wall-clock rates on a shared machine are noisy; the
  // fastest repetition is the closest to the machine's true capability
  // (the same run simulates identical events every time).
  GenResult r;
  r.generator = generator;
  for (int rep = 0; rep < 3; ++rep) {
    workload::SourceBundle bundle = workload::makeSource(spec, problems);
    if (bundle.source == nullptr) {
      std::cerr << "bench_workload: cannot instantiate '" << generator << "'\n";
      std::exit(2);
    }
    Environment env = makeEnvironment(spec.site, spec.storage, bundle.nodes,
                                      spec.storageConfig.isNull() ? nullptr : &spec.storageConfig);
    const auto t0 = std::chrono::steady_clock::now();
    workload::WorkloadOutcome out = workload::runWorkload(env, spec, *bundle.source);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (rep == 0 || wall < r.wallSec) {
      r.outcome = std::move(out);
      r.wallSec = wall;
    }
  }
  return r;
}

/// Record a small grammar run as the chrome trace the replay spec eats.
std::string recordReplayInput() {
  const std::string path = "/tmp/hcsim-bench-workload-trace.json";
  JsonValue doc;
  parseJson(R"({"site":"lassen","storage":"vast","workload":{
    "generator":"grammar","nodes":2,"procsPerNode":4,"seed":3,
    "fileBytes":134217728,"rules":{"main":[
      {"op":"write","bytes":4194304,"count":32,"pattern":"seq"},
      {"compute":0.02},
      {"op":"read","bytes":1048576,"count":32,"pattern":"random"}]}}})",
            doc);
  workload::WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(doc, spec, problems);
  workload::SourceBundle bundle = workload::makeSource(spec, problems);
  Environment env = makeEnvironment(spec.site, spec.storage, bundle.nodes, nullptr);
  TraceLog log;
  workload::runWorkload(env, spec, *bundle.source, &log);
  if (!writeChromeTrace(log, path)) {
    std::cerr << "bench_workload: cannot write " << path << "\n";
    std::exit(2);
  }
  return path;
}

std::string readFileOrDie(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "bench_workload: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int compareAgainst(const std::vector<GenResult>& results, const std::string& refPath,
                   double maxRegress) {
  JsonValue ref;
  if (!parseJson(readFileOrDie(refPath), ref)) {
    std::cerr << "bench_workload: " << refPath << " is not valid JSON\n";
    return 2;
  }
  const JsonValue* gens = ref.find("generators");
  if (gens == nullptr || !gens->isObject()) {
    std::cerr << "bench_workload: " << refPath << " has no \"generators\" object\n";
    return 2;
  }
  int failures = 0;
  for (const GenResult& r : results) {
    const JsonValue* entry = gens->find(r.generator);
    const JsonValue* rate = entry != nullptr ? entry->find("wall_ops_per_sec") : nullptr;
    if (rate == nullptr || rate->number() == nullptr) {
      std::cout << "perf skip " << r.generator << ": no reference rate\n";
      continue;
    }
    const double floor = *rate->number() * (1.0 - maxRegress);
    if (r.wallOpsPerSec() < floor) {
      std::cerr << "PERF FAIL " << r.generator << ": wall_ops_per_sec " << r.wallOpsPerSec()
                << " < floor " << floor << " (ref " << *rate->number() << ", tolerance "
                << maxRegress * 100.0 << "%)\n";
      ++failures;
    } else {
      std::cout << "perf ok " << r.generator << ": wall_ops_per_sec " << r.wallOpsPerSec()
                << " vs ref " << *rate->number() << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

void writeJsonOut(const std::vector<GenResult>& results, const std::string& path) {
  JsonObject gens;
  for (const GenResult& r : results) {
    JsonObject g;
    g["ops"] = static_cast<double>(r.outcome.opsCompleted);
    g["bytes"] = static_cast<double>(r.outcome.bytesMoved);
    g["sim_elapsed_sec"] = r.outcome.elapsed;
    g["goodput_gbs"] = r.outcome.goodputGBs();
    g["wall_ops_per_sec"] = r.wallOpsPerSec();
    gens[r.generator] = JsonValue(std::move(g));
  }
  JsonObject doc;
  doc["schema"] = std::string("hcsim-bench-workload-v1");
  doc["generators"] = JsonValue(std::move(gens));
  std::ofstream f(path, std::ios::trunc);
  f << writeJson(JsonValue(std::move(doc)), 2) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut;
  std::string compareRef;
  double maxRegress = 0.30;
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag, std::string& dst) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::cerr << "bench_workload: " << flag << " needs a value\n";
        std::exit(2);
      }
      dst = argv[++i];
      return true;
    };
    std::string tol;
    if (takeValue("--hcsim_json", jsonOut)) {
    } else if (takeValue("--hcsim_compare", compareRef)) {
    } else if (takeValue("--hcsim_max_regress", tol)) {
      maxRegress = std::stod(tol);
    } else {
      std::cerr << "bench_workload: unknown argument " << argv[i] << "\n";
      return 2;
    }
  }

  const std::string tracePath = recordReplayInput();
  std::vector<GenResult> results;
  for (auto& [generator, specText] : benchSpecs()) {
    std::string text = specText;
    if (const auto pos = text.find("%TRACE%"); pos != std::string::npos) {
      text.replace(pos, 7, tracePath);
    }
    results.push_back(runOne(generator, text));
  }

  ResultTable t("workload generators on vast@lassen (WorkloadRunner)");
  t.setHeader({"generator", "ops", "GiB", "sim s", "goodput GB/s", "wall ms", "wall kops/s"});
  for (const GenResult& r : results) {
    char ops[32], gib[32], sim[32], gbs[32], wall[32], rate[32];
    std::snprintf(ops, sizeof ops, "%llu",
                  static_cast<unsigned long long>(r.outcome.opsCompleted));
    std::snprintf(gib, sizeof gib, "%.2f",
                  static_cast<double>(r.outcome.bytesMoved) / (1024.0 * 1024.0 * 1024.0));
    std::snprintf(sim, sizeof sim, "%.2f", r.outcome.elapsed);
    std::snprintf(gbs, sizeof gbs, "%.3f", r.outcome.goodputGBs());
    std::snprintf(wall, sizeof wall, "%.1f", r.wallSec * 1e3);
    std::snprintf(rate, sizeof rate, "%.1f", r.wallOpsPerSec() / 1e3);
    t.addRow({r.generator, ops, gib, sim, gbs, wall, rate});
  }
  std::printf("%s", t.toString().c_str());

  if (!jsonOut.empty()) writeJsonOut(results, jsonOut);
  if (!compareRef.empty()) return compareAgainst(results, compareRef, maxRegress);
  return 0;
}
