#!/usr/bin/env bash
# Build everything, run the full test suite, then regenerate every table
# and figure of the paper (plus the extension benches), teeing the
# outputs the repo's docs reference.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --timeout 300 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
