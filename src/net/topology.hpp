#pragma once
// Topology — a small registry layered over FlowNetwork that names links
// and models multipath groups.
//
// Deployments in the paper differ exactly here: Lassen reaches VAST over
// ONE gateway with one TCP session per client; Wombat reaches VAST over
// RDMA with `nconnect=16` and multipathing, i.e. each client spreads its
// traffic over many sessions and several physical links. A MultipathGroup
// captures "several equivalent parallel links + round-robin placement".

#include <cstddef>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow_network.hpp"

namespace hcsim {

/// Handle to a multipath group inside a Topology.
struct GroupId {
  std::uint32_t value = UINT32_MAX;
  bool valid() const { return value != UINT32_MAX; }
};

class Topology {
 public:
  explicit Topology(FlowNetwork& net) : net_(net) {}

  FlowNetwork& network() { return net_; }
  const FlowNetwork& network() const { return net_; }

  /// Create a named link. Throws std::invalid_argument on duplicate names.
  LinkId addLink(const std::string& name, Bandwidth capacity, Seconds latency = 0.0);

  /// Look up a link created through this Topology.
  LinkId link(const std::string& name) const;
  bool hasLink(const std::string& name) const { return byName_.count(name) > 0; }

  /// Create `count` parallel links named "<name>[i]" with identical
  /// capacity/latency, grouped for round-robin selection.
  GroupId addGroup(const std::string& name, std::size_t count, Bandwidth capacityEach,
                   Seconds latency = 0.0);

  /// Round-robin pick of the next link in a group (stateful).
  LinkId pick(GroupId group);

  /// Deterministic pick by index (e.g. hash a client id to a path).
  LinkId pickAt(GroupId group, std::size_t index) const;

  std::size_t groupSize(GroupId group) const;

  /// Aggregate capacity of a group (sum of member links).
  Bandwidth groupCapacity(GroupId group) const;

 private:
  struct Group {
    std::vector<LinkId> links;
    std::size_t next = 0;
  };

  FlowNetwork& net_;
  std::unordered_map<std::string, LinkId> byName_;
  std::vector<Group> groups_;
};

}  // namespace hcsim
