# Empty dependencies file for what_if_replay.
# This may be replaced when dependencies are built.
