// Extension bench: contention on a shared machine. The paper repeats
// every test 10 times because "all file systems are shared"; here the
// sharing is simulated directly — background tenants hammer GPFS (the
// system "all users on the Livermore Computing clusters more commonly
// use") while the foreground benchmark runs — quantifying the takeaway
// that offloading low-I/O jobs to VAST "reduces the contention effect
// of GPFS".

#include <cstdio>

#include "cluster/deployments.hpp"
#include "contention/background_load.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

double contendedGBs(StorageKind kind, std::size_t tenants, std::uint64_t seed) {
  TestBench bench(Machine::lassen(), 10);
  std::unique_ptr<FileSystemModel> fs;
  if (kind == StorageKind::Gpfs) {
    fs = bench.attachGpfs(gpfsOnLassen());
  } else {
    fs = bench.attachVast(vastOnLassen());
  }
  IorConfig cfg = IorConfig::scalability(AccessPattern::SequentialRead, 2, 44);
  cfg.segments = 512;
  if (tenants == 0) {
    IorRunner runner(bench, *fs);
    return units::toGBs(runner.run(cfg).bandwidth.mean);
  }
  TenantSpec spec;
  spec.tenants = tenants;
  spec.procsPerTenant = 44;
  spec.bytesPerBurst = 4ull * units::GiB;
  spec.meanInterarrival = 0.2;
  spec.seed = seed;
  return units::toGBs(
      runIorUnderContention(bench, *fs, cfg, spec).foreground.bandwidth.mean);
}

}  // namespace

int main() {
  std::printf("== Contention: foreground seq-read (2 nodes) vs background tenants ==\n\n");

  ResultTable t("foreground GB/s under background load (Lassen)");
  t.setHeader({"tenants", "GPFS", "VAST (TCP)"});
  for (std::size_t tenants : {0u, 2u, 4u, 8u}) {
    t.addRow({static_cast<double>(tenants), contendedGBs(StorageKind::Gpfs, tenants, 11),
              contendedGBs(StorageKind::Vast, tenants, 11)});
  }
  std::printf("%s\n", t.toString().c_str());

  ResultTable v("run-to-run spread from tenant phasing (GPFS, 4 tenants)");
  v.setHeader({"seed", "foreground GB/s"});
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    v.addRow({static_cast<double>(seed), contendedGBs(StorageKind::Gpfs, 4, seed)});
  }
  std::printf("%s\n", v.toString().c_str());
  std::printf("This is the variability the paper absorbs by repeating runs 10x — and\n"
              "the GPFS column shows the contention that motivates offloading\n"
              "low-I/O workloads to VAST (takeaway for application users).\n");
  return 0;
}
