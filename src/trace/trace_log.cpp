#include "trace/trace_log.hpp"

#include <algorithm>

namespace hcsim {

const char* toString(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Read: return "read";
    case TraceEventKind::Write: return "write";
    case TraceEventKind::Compute: return "compute";
    case TraceEventKind::Other: return "other";
  }
  return "?";
}

void TraceLog::recordRead(std::uint32_t pid, std::uint32_t tid, Seconds start, Seconds duration,
                          Bytes bytes, std::string name) {
  record(TraceEvent{std::move(name), TraceEventKind::Read, pid, tid, start, duration, bytes});
}

void TraceLog::recordCompute(std::uint32_t pid, std::uint32_t tid, Seconds start,
                             Seconds duration, std::string name) {
  record(TraceEvent{std::move(name), TraceEventKind::Compute, pid, tid, start, duration, 0});
}

void TraceLog::sortByStart() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.start < b.start; });
}

std::size_t TraceLog::count(TraceEventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

Bytes TraceLog::totalBytes(TraceEventKind kind) const {
  Bytes n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) n += e.bytes;
  }
  return n;
}

Seconds TraceLog::totalDuration(TraceEventKind kind) const {
  Seconds t = 0.0;
  for (const auto& e : events_) {
    if (e.kind == kind) t += e.duration;
  }
  return t;
}

std::pair<Seconds, Seconds> TraceLog::timeSpan() const {
  if (events_.empty()) return {0.0, 0.0};
  Seconds lo = events_.front().start;
  Seconds hi = events_.front().end();
  for (const auto& e : events_) {
    lo = std::min(lo, e.start);
    hi = std::max(hi, e.end());
  }
  return {lo, hi};
}

}  // namespace hcsim
