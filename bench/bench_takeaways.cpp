// §VII takeaways — every quantitative claim of the conclusion, measured
// by running the simulated experiments and compared against the paper's
// numbers. The markdown block this prints is what EXPERIMENTS.md embeds.

#include <cstdio>

#include "core/takeaways.hpp"

using namespace hcsim;

int main() {
  std::printf("== Paper takeaways (section VII), measured from simulation ==\n\n");

  const RdmaVsTcp rt = measureRdmaVsTcp();
  std::printf("Takeaway (system administrators): RDMA vs TCP deployment of VAST\n");
  std::printf("  TCP  (Lassen):  write %.2f GB/s/node, read %.2f GB/s/node\n",
              rt.tcpWriteGBsPerNode, rt.tcpReadGBsPerNode);
  std::printf("  RDMA (Wombat):  write %.2f GB/s/node, read %.2f GB/s/node\n",
              rt.rdmaWriteGBsPerNode, rt.rdmaReadGBsPerNode);
  std::printf("  factors: write %.1fx, read %.1fx (paper: up to 8x)\n\n", rt.writeFactor(),
              rt.readFactor());

  const SeqVsRandom sr = measureSeqVsRandom();
  std::printf("Takeaway (I/O researchers): sequential vs random reads\n");
  std::printf("  GPFS: seq %.2f GB/s/node, random %.2f GB/s/node (drop %.0f%%; paper: 90%%)\n",
              sr.gpfsSeqGBs, sr.gpfsRandGBs, sr.gpfsDropFraction() * 100.0);
  std::printf("  VAST: seq %.2f GB/s/node, random %.2f GB/s/node (drop %.0f%%; paper: ~22%%)\n\n",
              sr.vastSeqGBs, sr.vastRandGBs, sr.vastDropFraction() * 100.0);

  const DlViability dl = measureDlViability(8);
  std::printf("Takeaway (application users): ResNet-50 on VAST vs GPFS (8 nodes)\n");
  std::printf("  application throughput: VAST %.3f GB/s vs GPFS %.3f GB/s (GPFS/VAST %.2fx)\n",
              dl.vastAppGBs, dl.gpfsAppGBs, dl.appRatio());
  std::printf("  system throughput:      VAST %.3f GB/s vs GPFS %.3f GB/s\n\n", dl.vastSysGBs,
              dl.gpfsSysGBs);

  std::printf("Paper-vs-measured checks:\n%s\n",
              calibration::toMarkdown(runAllChecks()).c_str());
  return 0;
}
