#include "dlio/dlio_runner.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace hcsim {
namespace {

DlioConfig smallConfig(DlioWorkload w, std::size_t nodes = 1) {
  DlioConfig cfg;
  w.samples = 32;  // keep tests quick
  cfg.workload = w;
  cfg.nodes = nodes;
  cfg.procsPerNode = 2;
  return cfg;
}

TEST(DlioConfig, ValidateRejectsBadValues) {
  DlioConfig c;
  c.workload = DlioWorkload::resnet50();
  c.workload.samples = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.workload = DlioWorkload::resnet50();
  c.workload.ioThreads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.workload = DlioWorkload::resnet50();
  c.nodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.nodes = 1;
  c.workload.prefetchDepth = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(DlioWorkload, PresetsMatchPaperDescriptions) {
  const DlioWorkload r = DlioWorkload::resnet50();
  EXPECT_EQ(r.sampleSize, 150 * units::KB);  // "1024 JPEG samples, each 150 KB"
  EXPECT_EQ(r.batchSize, 1u);                // "one batch-sized"
  EXPECT_EQ(r.epochs, 1u);                   // "one full epoch"
  EXPECT_EQ(r.ioThreads, 8u);
  EXPECT_EQ(r.scaling, ScalingMode::Weak);

  const DlioWorkload c = DlioWorkload::cosmoflow();
  EXPECT_EQ(c.samples, 1024u);               // "1024 TFRecord samples"
  EXPECT_EQ(c.transferSize, 256 * units::KB);  // "constant at 256 KB"
  EXPECT_EQ(c.epochs, 4u);                   // "four full epochs"
  EXPECT_EQ(c.ioThreads, 4u);                // "four threads for the I/O pipeline"
  EXPECT_EQ(c.computeThreads, 8u);           // "eight threads ... computation"
  EXPECT_EQ(c.scaling, ScalingMode::Strong);
}

TEST(DlioConfig, WeakScalingGrowsDataset) {
  DlioConfig c;
  c.workload = DlioWorkload::resnet50();
  c.nodes = 1;
  c.procsPerNode = 4;
  const Bytes one = c.datasetBytes();
  c.nodes = 4;
  EXPECT_EQ(c.datasetBytes(), 4 * one);
  EXPECT_EQ(c.samplesPerRank(), c.workload.samples);
}

TEST(DlioConfig, StrongScalingSplitsDataset) {
  DlioConfig c;
  c.workload = DlioWorkload::cosmoflow();
  c.nodes = 4;
  c.procsPerNode = 4;
  EXPECT_EQ(c.samplesPerRank(), 1024u / 16u);
  const Bytes ds = c.datasetBytes();
  c.nodes = 8;
  EXPECT_EQ(c.datasetBytes(), ds);  // dataset constant under strong scaling
}

TEST(DlioConfig, TransfersPerSampleCeils) {
  DlioWorkload w = DlioWorkload::cosmoflow();
  w.sampleSize = 1000 * units::KB;
  w.transferSize = 256 * units::KB;
  EXPECT_EQ(w.transfersPerSample(), 4u);
}

TEST(DlioRunner, TrainsAllBatchesAndReadsAllBytes) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  const DlioConfig cfg = smallConfig(DlioWorkload::resnet50());
  const DlioResult r = runner.run(cfg);
  // 32 samples x 2 ranks, batch 1, 1 epoch.
  EXPECT_EQ(r.batchesTrained, 64u);
  EXPECT_EQ(r.bytesRead, 64u * 150 * units::KB);
  EXPECT_GT(r.runtime, 0.0);
  EXPECT_EQ(r.trace.count(TraceEventKind::Read), 64u);
  EXPECT_EQ(r.trace.count(TraceEventKind::Compute), 64u);
}

TEST(DlioRunner, MultipleEpochsRereadDataset) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioWorkload w = DlioWorkload::cosmoflow();
  w.scaling = ScalingMode::Weak;
  DlioConfig cfg = smallConfig(w);
  const DlioResult r = runner.run(cfg);
  EXPECT_EQ(r.batchesTrained, 32u * 2u * 4u);  // samples x ranks x epochs
}

TEST(DlioRunner, ComputeBoundWorkloadHidesIo) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioWorkload w = DlioWorkload::resnet50();
  w.computeTimePerBatch = units::msec(500);  // huge compute per batch
  const DlioResult r = runner.run(smallConfig(w));
  // Steady-state I/O fully hidden; only pipeline warmup is exposed.
  EXPECT_LT(r.breakdown.nonOverlappingIo, 0.1 * r.breakdown.totalIo + 0.1);
}

TEST(DlioRunner, ZeroComputeExposesAllIo) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioWorkload w = DlioWorkload::resnet50();
  w.computeTimePerBatch = 0.0;
  DlioConfig cfg = smallConfig(w);
  cfg.computeJitterFrac = 0.0;
  const DlioResult r = runner.run(cfg);
  EXPECT_NEAR(r.breakdown.overlappingIo, 0.0, 1e-9);
  EXPECT_GT(r.breakdown.nonOverlappingIo, 0.0);
}

TEST(DlioRunner, MoreIoThreadsReduceStalls) {
  const auto stall = [](std::size_t threads) {
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, 1);
    DlioRunner runner(*env.bench, *env.fs);
    DlioWorkload w = DlioWorkload::cosmoflow();
    w.scaling = ScalingMode::Weak;
    w.ioThreads = threads;
    w.prefetchDepth = threads;
    return runner.run(smallConfig(w)).breakdown.nonOverlappingIo;
  };
  EXPECT_LT(stall(8), stall(1));
}

TEST(DlioRunner, DeterministicForSameSeed) {
  const auto once = [] {
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, 1);
    DlioRunner runner(*env.bench, *env.fs);
    return runner.run(smallConfig(DlioWorkload::resnet50())).runtime;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(DlioRunner, ThrowsWhenNodesExceedBench) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioConfig cfg = smallConfig(DlioWorkload::resnet50(), 4);
  EXPECT_THROW(runner.run(cfg), std::invalid_argument);
}

TEST(DlioRunner, ThroughputConsistentWithBreakdown) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, 1);
  DlioRunner runner(*env.bench, *env.fs);
  const DlioResult r = runner.run(smallConfig(DlioWorkload::resnet50()));
  if (r.breakdown.nonOverlappingIo > 0) {
    EXPECT_NEAR(r.throughput.application,
                static_cast<double>(r.bytesRead) / r.breakdown.nonOverlappingIo,
                r.throughput.application * 1e-9);
  }
  EXPECT_NEAR(r.throughput.system, static_cast<double>(r.bytesRead) / r.breakdown.totalIo,
              r.throughput.system * 1e-9);
}

TEST(DlioRunner, ScalingModeToString) {
  EXPECT_STREQ(toString(ScalingMode::Weak), "weak");
  EXPECT_STREQ(toString(ScalingMode::Strong), "strong");
}

TEST(DlioWorkload, Unet3dPresetIsCheckpointHeavy) {
  const DlioWorkload w = DlioWorkload::unet3d();
  EXPECT_GT(w.sampleSize, 100 * units::MB);  // huge 3D volumes
  EXPECT_GT(w.checkpointEvery, 0u);
  EXPECT_GE(w.checkpointBytes, units::GB);
  EXPECT_EQ(w.scaling, ScalingMode::Weak);
}

TEST(DlioRunner, CheckpointsAreWrittenByRankZeroOnly) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioConfig cfg;
  cfg.workload = DlioWorkload::unet3d();
  cfg.workload.samples = 12;
  cfg.workload.checkpointEvery = 4;
  cfg.workload.checkpointBytes = 64 * units::MiB;
  cfg.nodes = 1;
  cfg.procsPerNode = 2;
  const DlioResult r = runner.run(cfg);
  // 12 samples x 2 epochs = 24 batches; checkpoints after batch 4..20
  // (not the final one): 5 checkpoints, rank 0 only.
  EXPECT_EQ(r.trace.count(TraceEventKind::Write), 5u);
  EXPECT_EQ(r.bytesCheckpointed, 5u * 64 * units::MiB);
  for (const auto& e : r.trace.events()) {
    if (e.kind == TraceEventKind::Write) EXPECT_EQ(e.pid % 2, 0u);
  }
}

TEST(DlioRunner, CheckpointingExtendsRuntime) {
  const auto runtime = [](std::size_t every) {
    Environment env = makeEnvironment(Site::Lassen, StorageKind::Vast, 1);
    DlioRunner runner(*env.bench, *env.fs);
    DlioConfig cfg;
    cfg.workload = DlioWorkload::unet3d();
    cfg.workload.samples = 12;
    cfg.workload.sampleSize = 4 * units::MB;  // shrink reads, keep ckpts
    cfg.workload.checkpointEvery = every;
    cfg.workload.checkpointBytes = 256 * units::MiB;
    cfg.nodes = 1;
    cfg.procsPerNode = 2;
    return runner.run(cfg).runtime;
  };
  EXPECT_GT(runtime(2), runtime(0) * 1.1);
}

TEST(DlioRunner, CheckpointBytesCountTowardSystemIoTime) {
  Environment env = makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1);
  DlioRunner runner(*env.bench, *env.fs);
  DlioConfig cfg;
  cfg.workload = DlioWorkload::unet3d();
  cfg.workload.samples = 8;
  cfg.workload.checkpointEvery = 4;
  cfg.nodes = 1;
  cfg.procsPerNode = 1;
  const DlioResult r = runner.run(cfg);
  EXPECT_GT(r.breakdown.ioBytes, r.bytesRead);  // includes checkpoint bytes
}

}  // namespace
}  // namespace hcsim
