# Empty compiler generated dependencies file for test_lustre.
# This may be replaced when dependencies are built.
