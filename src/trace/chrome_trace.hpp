#pragma once
// Chrome-trace export — DFTracer emits chrome://tracing-compatible JSON;
// so do we, so captured runs can be inspected in Perfetto/chrome.

#include <string>

#include "trace/trace_log.hpp"

namespace hcsim {

/// Serialize one event as a chrome-trace "X"-phase JSON object. Names
/// are escaped and ts/dur are written with round-trip precision, so an
/// emit -> import cycle reproduces the event exactly.
std::string chromeTraceEventJson(const TraceEvent& e);

/// Render the log as a chrome trace ("traceEvents" array of complete
/// "X"-phase events; timestamps in microseconds as the format requires).
std::string toChromeTraceJson(const TraceLog& log);

/// Write the JSON to `path`. Returns false on I/O failure.
bool writeChromeTrace(const TraceLog& log, const std::string& path);

}  // namespace hcsim
